#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "fr/algebra.h"
#include "semiring/semiring.h"
#include "util/rng.h"

namespace mpfdb::fr {
namespace {

TablePtr MakeTable(const std::string& name, std::vector<std::string> vars,
                   std::vector<std::pair<std::vector<VarValue>, double>> rows) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  for (auto& [v, m] : rows) t->AppendRow(v, m);
  return t;
}

TEST(ProductJoinTest, JoinsOnSharedVariable) {
  auto a = MakeTable("a", {"x", "y"}, {{{0, 0}, 2.0}, {{0, 1}, 3.0}, {{1, 0}, 5.0}});
  auto b = MakeTable("b", {"y", "z"}, {{{0, 7}, 10.0}, {{1, 7}, 100.0}});
  auto joined = ProductJoin(*a, *b, Semiring::SumProduct(), "j");
  ASSERT_TRUE(joined.ok());
  const Table& j = **joined;
  EXPECT_EQ(j.schema().variables(), (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(j.NumRows(), 3u);
  // Sorted canonically: (0,0,7;20), (0,1,7;300), (1,0,7;50).
  EXPECT_EQ(j.Row(0).var(0), 0);
  EXPECT_EQ(j.Row(0).var(1), 0);
  EXPECT_EQ(j.Row(0).var(2), 7);
  EXPECT_DOUBLE_EQ(j.Row(0).measure, 20.0);
  EXPECT_DOUBLE_EQ(j.Row(1).measure, 300.0);
  EXPECT_DOUBLE_EQ(j.Row(2).measure, 50.0);
}

TEST(ProductJoinTest, NoSharedVariablesIsCrossProduct) {
  auto a = MakeTable("a", {"x"}, {{{0}, 2.0}, {{1}, 3.0}});
  auto b = MakeTable("b", {"y"}, {{{0}, 5.0}, {{1}, 7.0}});
  auto joined = ProductJoin(*a, *b, Semiring::SumProduct(), "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->NumRows(), 4u);
  double total = 0;
  for (size_t i = 0; i < 4; ++i) total += (*joined)->measure(i);
  EXPECT_DOUBLE_EQ(total, (2.0 + 3.0) * (5.0 + 7.0));
}

TEST(ProductJoinTest, MinSumAddsMeasures) {
  auto a = MakeTable("a", {"x"}, {{{0}, 2.0}});
  auto b = MakeTable("b", {"x"}, {{{0}, 5.0}});
  auto joined = ProductJoin(*a, *b, Semiring::MinSum(), "j");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ((*joined)->NumRows(), 1u);
  EXPECT_DOUBLE_EQ((*joined)->measure(0), 7.0);
}

TEST(ProductJoinTest, ResultIsFunctionalRelation) {
  auto a = MakeTable("a", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 3.0}, {{1, 1}, 4.0}});
  auto b = MakeTable("b", {"y", "z"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 3.0}, {{1, 1}, 4.0}});
  auto joined = ProductJoin(*a, *b, Semiring::SumProduct(), "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(CheckFunctionalDependency(**joined).ok());
}

TEST(MarginalizeTest, GroupsAndSums) {
  auto t = MakeTable("t", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 4.0}, {{1, 1}, 8.0}});
  auto result = Marginalize(*t, {"x"}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(result.ok());
  const Table& m = **result;
  ASSERT_EQ(m.NumRows(), 2u);
  EXPECT_EQ(m.Row(0).var(0), 0);
  EXPECT_DOUBLE_EQ(m.Row(0).measure, 3.0);
  EXPECT_DOUBLE_EQ(m.Row(1).measure, 12.0);
}

TEST(MarginalizeTest, MinAggregation) {
  auto t = MakeTable("t", {"x", "y"},
                     {{{0, 0}, 5.0}, {{0, 1}, 2.0}, {{1, 0}, 9.0}});
  auto result = Marginalize(*t, {"x"}, Semiring::MinSum(), "m");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->measure(0), 2.0);
  EXPECT_DOUBLE_EQ((*result)->measure(1), 9.0);
}

TEST(MarginalizeTest, EmptyGroupVarsYieldsScalar) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.5}, {{1}, 2.5}});
  auto result = Marginalize(*t, {}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->NumRows(), 1u);
  EXPECT_EQ((*result)->schema().arity(), 0u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 4.0);
}

TEST(MarginalizeTest, UnknownVariableIsError) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  EXPECT_EQ(Marginalize(*t, {"zz"}, Semiring::SumProduct(), "m").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MarginalizeTest, ReordersOutputVariables) {
  auto t = MakeTable("t", {"x", "y"}, {{{1, 2}, 3.0}});
  auto result = Marginalize(*t, {"y", "x"}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().variables(),
            (std::vector<std::string>{"y", "x"}));
  EXPECT_EQ((*result)->Row(0).var(0), 2);
  EXPECT_EQ((*result)->Row(0).var(1), 1);
}

TEST(SelectTest, FiltersRows) {
  auto t = MakeTable("t", {"x", "y"},
                     {{{0, 0}, 1.0}, {{1, 0}, 2.0}, {{1, 1}, 3.0}});
  auto result = Select(*t, "x", 1, "s");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 2u);
  EXPECT_EQ((*result)->schema(), t->schema());
  EXPECT_FALSE(Select(*t, "zz", 0, "s").ok());
}

TEST(DivisionJoinTest, DividesMeasures) {
  auto a = MakeTable("a", {"x"}, {{{0}, 10.0}, {{1}, 9.0}});
  auto b = MakeTable("b", {"x"}, {{{0}, 2.0}, {{1}, 3.0}});
  auto result = DivisionJoin(*a, *b, Semiring::SumProduct(), "d");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->measure(0), 5.0);
  EXPECT_DOUBLE_EQ((*result)->measure(1), 3.0);
}

TEST(DivisionJoinTest, MinSumSubtracts) {
  auto a = MakeTable("a", {"x"}, {{{0}, 10.0}});
  auto b = MakeTable("b", {"x"}, {{{0}, 4.0}});
  auto result = DivisionJoin(*a, *b, Semiring::MinSum(), "d");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->measure(0), 6.0);
}

TEST(DivisionJoinTest, BooleanSemiringRejected) {
  auto a = MakeTable("a", {"x"}, {{{0}, 1.0}});
  EXPECT_EQ(DivisionJoin(*a, *a, Semiring::BoolOrAnd(), "d").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProductSemijoinTest, ReducesByMarginal) {
  // t(x,y), s(y,z): t ⋉* s multiplies each t row by s's marginal over y.
  auto t = MakeTable("t", {"x", "y"}, {{{0, 0}, 1.0}, {{0, 1}, 1.0}});
  auto s = MakeTable("s", {"y", "z"},
                     {{{0, 0}, 2.0}, {{0, 1}, 3.0}, {{1, 0}, 10.0}});
  auto result = ProductSemijoin(*t, *s, Semiring::SumProduct(), "r");
  ASSERT_TRUE(result.ok());
  const Table& r = **result;
  // Schema unchanged (t's variables).
  EXPECT_EQ(r.schema().variables(), (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(r.Row(0).measure, 5.0);   // 1 * (2+3)
  EXPECT_DOUBLE_EQ(r.Row(1).measure, 10.0);  // 1 * 10
}

TEST(ProductSemijoinTest, NoSharedVariablesIsError) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  auto s = MakeTable("s", {"y"}, {{{0}, 1.0}});
  EXPECT_EQ(ProductSemijoin(*t, *s, Semiring::SumProduct(), "r").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(UpdateSemijoinTest, DoesNotDoubleCount) {
  // Forward pass: s absorbed t's marginal. Backward update of t by s must
  // divide that marginal back out: t_new = t * marg(s)/marg(t).
  Semiring sr = Semiring::SumProduct();
  auto t = MakeTable("t", {"x", "y"}, {{{0, 0}, 2.0}, {{1, 0}, 3.0}});
  auto s = MakeTable("s", {"y", "z"}, {{{0, 0}, 1.0}, {{0, 1}, 4.0}});
  // Forward: s ⋉* t.
  auto s_updated = ProductSemijoin(*s, *t, sr, "s_upd");
  ASSERT_TRUE(s_updated.ok());
  // marg_y(t) = 5, so s_upd measures are {5, 20}.
  EXPECT_DOUBLE_EQ((*s_updated)->measure(0), 5.0);
  EXPECT_DOUBLE_EQ((*s_updated)->measure(1), 20.0);
  // Backward: t ⋉ s_upd. marg_y(s_upd) = 25, marg_y(t) = 5; message = 5.
  auto t_updated = UpdateSemijoin(*t, **s_updated, sr, "t_upd");
  ASSERT_TRUE(t_updated.ok());
  EXPECT_DOUBLE_EQ((*t_updated)->measure(0), 10.0);  // 2 * 5
  EXPECT_DOUBLE_EQ((*t_updated)->measure(1), 15.0);  // 3 * 5
  // Both tables now hold the joint's marginal onto their own variables:
  // joint(x,y,z) = t*s has total 25; t_upd sums to 25.
  auto check = Marginalize(**t_updated, {}, sr, "total");
  ASSERT_TRUE(check.ok());
  EXPECT_DOUBLE_EQ((*check)->measure(0), 25.0);
}

TEST(UpdateSemijoinTest, RequiresDivision) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  EXPECT_EQ(UpdateSemijoin(*t, *t, Semiring::BoolOrAnd(), "r").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckFunctionalDependencyTest, DetectsViolation) {
  auto good = MakeTable("g", {"x"}, {{{0}, 1.0}, {{1}, 2.0}});
  EXPECT_TRUE(CheckFunctionalDependency(*good).ok());
  auto bad = MakeTable("b", {"x"}, {{{0}, 1.0}, {{0}, 2.0}});
  EXPECT_EQ(CheckFunctionalDependency(*bad).code(),
            StatusCode::kFailedPrecondition);
}

TEST(IsCompleteTest, DetectsCompleteness) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 2).ok());
  auto full = MakeTable("full", {"x", "y"},
                        {{{0, 0}, 1.0}, {{0, 1}, 1.0}, {{1, 0}, 1.0}, {{1, 1}, 1.0}});
  auto partial = MakeTable("p", {"x", "y"}, {{{0, 0}, 1.0}});
  EXPECT_TRUE(*IsComplete(*full, catalog));
  EXPECT_FALSE(*IsComplete(*partial, catalog));
}

TEST(NormalizeTest, SumsToOne) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 3.0}});
  ASSERT_TRUE(NormalizeMeasure(*t, Semiring::SumProduct()).ok());
  EXPECT_DOUBLE_EQ(t->measure(0), 0.25);
  EXPECT_DOUBLE_EQ(t->measure(1), 0.75);
  EXPECT_EQ(NormalizeMeasure(*t, Semiring::MinSum()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TablesEqualTest, ComparesWithTolerance) {
  auto a = MakeTable("a", {"x"}, {{{0}, 1.0}});
  auto b = MakeTable("b", {"x"}, {{{0}, 1.0 + 1e-12}});
  auto c = MakeTable("c", {"x"}, {{{0}, 1.1}});
  EXPECT_TRUE(TablesEqual(*a, *b));
  EXPECT_FALSE(TablesEqual(*a, *c));
}

TEST(EvaluateNaiveMpfTest, ChainQuery) {
  // joint(x,y,z) = a(x,y) * b(y,z); query marginal over z.
  auto a = MakeTable("a", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 3.0}, {{1, 1}, 4.0}});
  auto b = MakeTable("b", {"y", "z"},
                     {{{0, 0}, 5.0}, {{0, 1}, 6.0}, {{1, 0}, 7.0}, {{1, 1}, 8.0}});
  auto result = EvaluateNaiveMpf({a, b}, {"z"}, {}, Semiring::SumProduct(), "q");
  ASSERT_TRUE(result.ok());
  const Table& q = **result;
  ASSERT_EQ(q.NumRows(), 2u);
  // marg_y(a): y=0 -> 4, y=1 -> 6. z=0: 4*5 + 6*7 = 62; z=1: 4*6 + 6*8 = 72.
  EXPECT_DOUBLE_EQ(q.Row(0).measure, 62.0);
  EXPECT_DOUBLE_EQ(q.Row(1).measure, 72.0);
}

TEST(EvaluateNaiveMpfTest, WithSelection) {
  auto a = MakeTable("a", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 3.0}, {{1, 1}, 4.0}});
  auto b = MakeTable("b", {"y", "z"},
                     {{{0, 0}, 5.0}, {{0, 1}, 6.0}, {{1, 0}, 7.0}, {{1, 1}, 8.0}});
  auto result = EvaluateNaiveMpf({a, b}, {"z"}, {{"y", 1}},
                                 Semiring::SumProduct(), "q");
  ASSERT_TRUE(result.ok());
  // Only y=1 rows: z=0 -> 6*7=42, z=1 -> 6*8=48.
  EXPECT_DOUBLE_EQ((*result)->Row(0).measure, 42.0);
  EXPECT_DOUBLE_EQ((*result)->Row(1).measure, 48.0);
}

TEST(MarginalizeTest, EmptyInputYieldsEmptyOutput) {
  auto t = MakeTable("t", {"x", "y"}, {});
  auto result = Marginalize(*t, {"x"}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 0u);
  // Even the scalar marginalization of an empty relation is empty (the
  // additive identity is the *implicit* value of absent rows).
  auto scalar = Marginalize(*t, {}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ((*scalar)->NumRows(), 0u);
}

TEST(ProductJoinTest, EmptyOperandYieldsEmptyJoin) {
  auto a = MakeTable("a", {"x"}, {{{0}, 1.0}});
  auto empty = MakeTable("e", {"x"}, {});
  auto joined = ProductJoin(*a, *empty, Semiring::SumProduct(), "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->NumRows(), 0u);
}

TEST(ProductSemijoinTest, MinSumSemantics) {
  // In min-sum, the semijoin adds s's MIN over the shared variables.
  auto t = MakeTable("t", {"x", "y"}, {{{0, 0}, 10.0}, {{1, 1}, 20.0}});
  auto s = MakeTable("s", {"y", "z"},
                     {{{0, 0}, 3.0}, {{0, 1}, 7.0}, {{1, 0}, 5.0}});
  auto result = ProductSemijoin(*t, *s, Semiring::MinSum(), "r");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->measure(0), 13.0);  // 10 + min(3,7)
  EXPECT_DOUBLE_EQ((*result)->measure(1), 25.0);  // 20 + 5
}

TEST(DivisionJoinTest, OperandRolesAreFixed) {
  // Division is not commutative: the left operand is always the dividend,
  // even when it is the larger relation (the hash join may not swap sides).
  auto big = MakeTable("big", {"x"},
                       {{{0}, 8.0}, {{1}, 9.0}, {{2}, 10.0}, {{3}, 12.0}});
  auto small = MakeTable("small", {"x"}, {{{0}, 2.0}, {{1}, 3.0}});
  auto result = DivisionJoin(*big, *small, Semiring::SumProduct(), "d");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->NumRows(), 2u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 4.0);  // 8/2, not 2/8
  EXPECT_DOUBLE_EQ((*result)->measure(1), 3.0);  // 9/3
}

TEST(EvaluateNaiveMpfTest, SingleRelationAndErrors) {
  auto a = MakeTable("a", {"x", "y"}, {{{0, 0}, 1.0}, {{0, 1}, 2.0}});
  auto result = EvaluateNaiveMpf({a}, {"x"}, {}, Semiring::SumProduct(), "q");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->measure(0), 3.0);
  EXPECT_FALSE(
      EvaluateNaiveMpf({}, {"x"}, {}, Semiring::SumProduct(), "q").ok());
}

TEST(TablesEqualTest, DetectsStructuralDifferences) {
  auto a = MakeTable("a", {"x"}, {{{0}, 1.0}, {{1}, 2.0}});
  auto fewer = MakeTable("b", {"x"}, {{{0}, 1.0}});
  auto other_vars = MakeTable("c", {"y"}, {{{0}, 1.0}, {{1}, 2.0}});
  auto other_values = MakeTable("d", {"x"}, {{{0}, 1.0}, {{2}, 2.0}});
  EXPECT_FALSE(TablesEqual(*a, *fewer));
  EXPECT_FALSE(TablesEqual(*a, *other_vars));
  EXPECT_FALSE(TablesEqual(*a, *other_values));
  // Infinities of the same sign compare equal (min/max semirings).
  auto inf1 = MakeTable("i1", {"x"},
                        {{{0}, std::numeric_limits<double>::infinity()}});
  auto inf2 = MakeTable("i2", {"x"},
                        {{{0}, std::numeric_limits<double>::infinity()}});
  EXPECT_TRUE(TablesEqual(*inf1, *inf2));
}

TEST(FilterMeasureTest, KeepsSchemaAndFilters) {
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 5.0}});
  auto result =
      FilterMeasure(*t, HavingClause{CompareOp::kGt, 2.0}, "filtered");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 1u);
  EXPECT_EQ((*result)->schema().variables(), t->schema().variables());
}

// Property sweep: for random instances, marginalization distributing over the
// product join (the GDL) must hold: GroupBy_X(a ⨝* b) computed directly
// equals pushing the group-by of b-only variables into b first.
class GdlPropertyTest : public ::testing::TestWithParam<SemiringKind> {};

TEST_P(GdlPropertyTest, GroupByPushdownIsSound) {
  Semiring sr((GetParam()));
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    // a(x,y), b(y,z) dense random; query var x.
    auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
    auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
    auto random_measure = [&]() -> double {
      if (GetParam() == SemiringKind::kBoolOrAnd) {
        return rng.Bernoulli(0.5) ? 1.0 : 0.0;
      }
      return rng.UniformDouble(0.5, 4.0);
    };
    for (VarValue x = 0; x < 3; ++x)
      for (VarValue y = 0; y < 3; ++y) a->AppendRow({x, y}, random_measure());
    for (VarValue y = 0; y < 3; ++y)
      for (VarValue z = 0; z < 4; ++z) b->AppendRow({y, z}, random_measure());

    // Unoptimized: marginalize the full join.
    auto joined = ProductJoin(*a, *b, sr, "j");
    ASSERT_TRUE(joined.ok());
    auto direct = Marginalize(**joined, {"x"}, sr, "direct");
    ASSERT_TRUE(direct.ok());

    // GDL-optimized: eliminate z inside b first.
    auto b_reduced = Marginalize(*b, {"y"}, sr, "b_red");
    ASSERT_TRUE(b_reduced.ok());
    auto joined2 = ProductJoin(*a, **b_reduced, sr, "j2");
    ASSERT_TRUE(joined2.ok());
    auto pushed = Marginalize(**joined2, {"x"}, sr, "pushed");
    ASSERT_TRUE(pushed.ok());

    EXPECT_TRUE(TablesEqual(**direct, **pushed, 1e-7))
        << "semiring=" << sr.name() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSemirings, GdlPropertyTest,
    ::testing::Values(SemiringKind::kSumProduct, SemiringKind::kMinSum,
                      SemiringKind::kMaxSum, SemiringKind::kMaxProduct,
                      SemiringKind::kBoolOrAnd),
    [](const ::testing::TestParamInfo<SemiringKind>& info) {
      return Semiring(info.param).name();
    });

}  // namespace
}  // namespace mpfdb::fr
