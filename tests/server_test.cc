// Tests for the concurrent serving layer: admission control (FIFO with
// per-session fairness), epoch-snapshot isolation of queries against
// concurrent updates, the shared plan cache's counters and invalidation,
// and a multi-session differential soak that replays every recorded query
// serially and demands bit-identical results (tolerance 0.0).

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "server/net/client.h"
#include "server/net/net_server.h"
#include "server/plan_cache.h"
#include "util/rng.h"

namespace mpfdb {
namespace {

using server::MpfServer;
using server::PickNextTicket;
using server::ServerOptions;
using server::Session;
using server::Ticket;

// Installs a RandomView's variables, tables, and view into a database.
void Install(const RandomView& rv, Database& db) {
  for (const auto& var : rv.vars) {
    ASSERT_TRUE(
        db.catalog().RegisterVariable(var, *rv.catalog.DomainSize(var)).ok());
  }
  for (const auto& table : rv.tables) {
    ASSERT_TRUE(db.CreateTable(table).ok());
  }
  ASSERT_TRUE(db.CreateMpfView(rv.view).ok());
}

// --- PickNextTicket: the pure admission policy ----------------------------

TEST(AdmissionPolicyTest, EmptyReturnsSize) {
  EXPECT_EQ(PickNextTicket({}, {}), 0u);
}

TEST(AdmissionPolicyTest, FifoWhenSessionsEquallyLoaded) {
  std::vector<Ticket> waiting = {{1, 10}, {2, 11}, {3, 12}};
  EXPECT_EQ(PickNextTicket(waiting, {}), 0u);
  std::map<uint64_t, size_t> load = {{1, 2}, {2, 2}, {3, 2}};
  EXPECT_EQ(PickNextTicket(waiting, load), 0u);
}

TEST(AdmissionPolicyTest, PrefersLeastLoadedSession) {
  // Session 1 arrived first but already has a query in flight; session 2's
  // later ticket wins.
  std::vector<Ticket> waiting = {{1, 10}, {2, 11}};
  std::map<uint64_t, size_t> load = {{1, 1}};
  EXPECT_EQ(PickNextTicket(waiting, load), 1u);
}

TEST(AdmissionPolicyTest, TieAmongLeastLoadedBreaksByArrival) {
  std::vector<Ticket> waiting = {{1, 20}, {2, 18}, {3, 19}};
  std::map<uint64_t, size_t> load = {{1, 0}, {2, 0}, {3, 0}};
  EXPECT_EQ(PickNextTicket(waiting, load), 1u);  // seq 18
}

// --- Threaded admission ordering and fairness -----------------------------

// One tiny database all the admission tests can query.
class ServerAdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rv_ = MakeRandomView(/*seed=*/7, /*num_vars=*/3, /*num_rels=*/3,
                         /*force_acyclic=*/true);
    Install(rv_, db_);
  }

  MpfQuerySpec AnyQuery() const { return MpfQuerySpec{{rv_.vars[0]}, {}}; }

  RandomView rv_;
  Database db_;
};

TEST_F(ServerAdmissionTest, PausedSubmissionsAdmitInFifoOrder) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.record_admission_trace = true;
  MpfServer server(db_, options);

  constexpr int kSessions = 5;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(server.CreateSession("s" + std::to_string(i)));
  }

  server.Pause();
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    // Stagger the submissions so the arrival order is exactly s0..s4: each
    // thread is only started once the previous one is visibly queued.
    threads.emplace_back([&, i] {
      auto result = sessions[static_cast<size_t>(i)]->Query(rv_.view.name,
                                                            AnyQuery());
      EXPECT_TRUE(result.ok()) << result.status().message();
    });
    while (server.stats().queued < static_cast<size_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(server.stats().queued, static_cast<size_t>(kSessions));
  EXPECT_EQ(server.stats().admitted, 0u);
  server.Resume();
  for (auto& t : threads) t.join();

  // Distinct idle sessions: fairness degenerates to pure FIFO.
  EXPECT_EQ(server.admission_trace(),
            (std::vector<std::string>{"s0", "s1", "s2", "s3", "s4"}));
  auto stats = server.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kSessions));
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.max_queue_depth, static_cast<size_t>(kSessions));
}

TEST_F(ServerAdmissionTest, FairnessPrefersIdleSessionOverBacklog) {
  // Queue [A, A, B] with two slots. The first admission takes A's first
  // ticket; the second must take B's — session A already holds a slot —
  // even though A's second ticket arrived earlier. Both picks happen in one
  // locked admission sweep at Resume, so the order is deterministic.
  ServerOptions options;
  options.max_concurrent = 2;
  options.record_admission_trace = true;
  MpfServer server(db_, options);
  auto a = server.CreateSession("A");
  auto b = server.CreateSession("B");

  server.Pause();
  std::vector<std::thread> threads;
  auto submit = [&](std::shared_ptr<Session> s, size_t want_queued) {
    threads.emplace_back([this, &server, s] {
      auto result = s->Query(rv_.view.name, AnyQuery());
      EXPECT_TRUE(result.ok()) << result.status().message();
    });
    while (server.stats().queued < want_queued) std::this_thread::yield();
  };
  submit(a, 1);
  submit(a, 2);
  submit(b, 3);
  server.Resume();
  for (auto& t : threads) t.join();

  EXPECT_EQ(server.admission_trace(),
            (std::vector<std::string>{"A", "B", "A"}));
}

TEST_F(ServerAdmissionTest, QueueFullRejectsAndShutdownDrains) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.max_queued = 1;
  MpfServer server(db_, options);
  auto session = server.CreateSession();

  server.Pause();
  std::thread queued([&] {
    auto result = session->Query(rv_.view.name, AnyQuery());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  while (server.stats().queued < 1) std::this_thread::yield();

  // The queue (capacity 1) is full: an immediate rejection, no blocking.
  auto rejected = session->Query(rv_.view.name, AnyQuery());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  server.Shutdown();
  queued.join();
  auto stats = server.stats();
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.admitted, 0u);

  // Post-shutdown submissions are refused outright.
  auto after = session->Query(rv_.view.name, AnyQuery());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
}

TEST_F(ServerAdmissionTest, SlotMemoryPartitionDegradesNotFails) {
  ServerOptions options;
  options.max_concurrent = 2;
  options.global_memory_limit = 2 << 20;  // 1 MiB per slot
  MpfServer server(db_, options);
  auto session = server.CreateSession();
  auto result = session->Query(rv_.view.name, AnyQuery());
  ASSERT_TRUE(result.ok()) << result.status().message();

  // The caller's context limit is tightened for the query, then restored.
  QueryContext ctx;
  auto governed = session->Query(rv_.view.name, AnyQuery(), "cs+nonlinear",
                                 &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status().message();
  EXPECT_EQ(ctx.memory_limit(), 0u);
}

// --- Queued-query deadline/cancel handling and lifecycle races ------------

TEST_F(ServerAdmissionTest, QueuedQueryHonorsDeadlineWhileWaiting) {
  ServerOptions options;
  options.max_concurrent = 1;
  options.shed_doomed_queries = false;  // exercise the in-queue timeout path
  MpfServer server(db_, options);
  auto session = server.CreateSession();

  server.Pause();
  QueryContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(60));
  auto started = std::chrono::steady_clock::now();
  auto result = session->Query(rv_.view.name, AnyQuery(), "cs+nonlinear",
                               &ctx);
  auto waited = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Fail-fast: within the deadline plus one poll tick, not until Resume.
  EXPECT_LT(waited, std::chrono::seconds(10));
  auto stats = server.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.queued, 0u);  // the dead ticket left the queue
  EXPECT_EQ(stats.admitted, 0u);

  // The queue still works afterwards: the dead ticket is never picked.
  server.Resume();
  EXPECT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
}

TEST_F(ServerAdmissionTest, QueuedQueryHonorsCancelWhileWaiting) {
  ServerOptions options;
  options.max_concurrent = 1;
  MpfServer server(db_, options);
  auto session = server.CreateSession();

  server.Pause();
  QueryContext ctx;
  std::thread waiter([&] {
    auto result = session->Query(rv_.view.name, AnyQuery(), "cs+nonlinear",
                                 &ctx);
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  });
  while (server.stats().queued < 1) std::this_thread::yield();
  ctx.RequestCancel();
  waiter.join();  // must return promptly, not wait for Resume/Shutdown
  auto stats = server.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.admitted, 0u);

  server.Resume();
  EXPECT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
}

TEST_F(ServerAdmissionTest, DoomedDeadlineIsShedAtEnqueueWithHint) {
  ServerOptions options;
  options.max_concurrent = 1;
  MpfServer server(db_, options);
  auto session = server.CreateSession();
  // Prime the service-time EMA so the estimator is live.
  ASSERT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
  EXPECT_GE(server.RetryAfterHintMs(), 1u);

  // Stage one queued request (paused server) so the estimated wait is a
  // full EMA service time, then submit an already-hopeless deadline: it
  // must be rejected at enqueue — immediately, with kResourceExhausted —
  // not queued to die.
  server.Pause();
  std::thread waiter([&] {
    auto result = session->Query(rv_.view.name, AnyQuery());
    EXPECT_TRUE(result.ok()) << result.status().message();
  });
  while (server.stats().queued < 1) std::this_thread::yield();
  QueryContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now());
  auto shed = session->Query(rv_.view.name, AnyQuery(), "cs+nonlinear", &ctx);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  auto stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.queued, 1u);  // only the staged waiter
  server.Resume();
  waiter.join();

  // With shedding disabled the same request queues and times out instead.
  ServerOptions no_shed = options;
  no_shed.shed_doomed_queries = false;
  MpfServer server2(db_, no_shed);
  auto session2 = server2.CreateSession();
  server2.Pause();
  QueryContext ctx2;
  ctx2.set_deadline(std::chrono::steady_clock::now());
  auto timed_out = session2->Query(rv_.view.name, AnyQuery(), "cs+nonlinear",
                                   &ctx2);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server2.stats().shed, 0u);
  EXPECT_EQ(server2.stats().timed_out, 1u);
  server2.Resume();
}

TEST_F(ServerAdmissionTest, ShutdownWithPopulatedQueueFailsEveryTicket) {
  ServerOptions options;
  options.max_concurrent = 1;
  MpfServer server(db_, options);
  auto session = server.CreateSession();

  server.Pause();
  constexpr int kQueued = 3;
  std::vector<std::thread> threads;
  for (int i = 0; i < kQueued; ++i) {
    threads.emplace_back([&] {
      auto result = session->Query(rv_.view.name, AnyQuery());
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    });
    while (server.stats().queued < static_cast<size_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  server.Shutdown();
  for (auto& t : threads) t.join();
  auto stats = server.stats();
  EXPECT_EQ(stats.rejected, static_cast<uint64_t>(kQueued));
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST_F(ServerAdmissionTest, ShutdownLetsInFlightWorkComplete) {
  ServerOptions options;
  options.max_concurrent = 1;
  MpfServer server(db_, options);
  auto session = server.CreateSession();

  std::thread worker([&] {
    auto result = session->Query(rv_.view.name, AnyQuery());
    EXPECT_TRUE(result.ok()) << result.status().message();
  });
  // Catch the query either in flight or already done, then shut down: the
  // admitted query must complete with its result, never be torn down.
  while (server.stats().in_flight == 0 && server.stats().completed == 0) {
    std::this_thread::yield();
  }
  server.Shutdown();
  worker.join();
  auto stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ServerAdmissionTest, PauseResumeRacingSubmissionsLosesNothing) {
  ServerOptions options;
  options.max_concurrent = 2;
  MpfServer server(db_, options);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 8;
  std::atomic<bool> start{false};
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = server.CreateSession("race-" + std::to_string(t));
      while (!start.load()) std::this_thread::yield();
      for (int op = 0; op < kOpsPerThread; ++op) {
        auto result = session->Query(rv_.view.name, AnyQuery());
        if (result.ok()) ++ok_count;
      }
    });
  }
  start.store(true);
  // Toggle Pause/Resume against the submission stream.
  for (int i = 0; i < 20; ++i) {
    server.Pause();
    std::this_thread::yield();
    server.Resume();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : threads) t.join();

  // Nothing lost, nothing stuck: every submission was admitted and
  // completed (Pause only delays, it never rejects).
  auto stats = server.stats();
  EXPECT_EQ(ok_count.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

// --- Slow-query log and the metrics dump ----------------------------------

TEST_F(ServerAdmissionTest, SlowQueryLogRecordsOverThreshold) {
  ServerOptions options;
  options.slow_query_seconds = 1e-9;  // record everything
  options.slow_query_log_capacity = 2;
  MpfServer server(db_, options);
  auto session = server.CreateSession("logger");

  MpfQuerySpec with_sel{{rv_.vars[0]}, {{rv_.vars[1], 0}}};
  ASSERT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
  ASSERT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
  ASSERT_TRUE(session->Query(rv_.view.name, with_sel).ok());

  // Capacity 2: the first record was evicted, latest two remain in order.
  auto log = server.slow_queries();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(server.stats().slow_queries, 3u);
  EXPECT_EQ(log[0].session, "logger");
  EXPECT_EQ(log[0].view, rv_.view.name);
  EXPECT_GT(log[0].seconds, 0.0);
  EXPECT_FALSE(log[1].canonical_query.empty());
  // The canonical form distinguishes the selection query.
  EXPECT_NE(log[0].canonical_query, log[1].canonical_query);

  // Threshold disabled: nothing is recorded.
  MpfServer quiet(db_, ServerOptions{});
  auto qsession = quiet.CreateSession();
  ASSERT_TRUE(qsession->Query(rv_.view.name, AnyQuery()).ok());
  EXPECT_TRUE(quiet.slow_queries().empty());
  EXPECT_EQ(quiet.stats().slow_queries, 0u);
}

TEST_F(ServerAdmissionTest, MetricsTextReportsCountersAndSlowQueries) {
  ServerOptions options;
  options.slow_query_seconds = 1e-9;
  MpfServer server(db_, options);
  auto session = server.CreateSession("mx");
  ASSERT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
  ASSERT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());

  std::string text = server.MetricsText();
  EXPECT_NE(text.find("server_submitted 2"), std::string::npos) << text;
  EXPECT_NE(text.find("server_completed 2"), std::string::npos) << text;
  EXPECT_NE(text.find("server_failed 0"), std::string::npos) << text;
  EXPECT_NE(text.find("server_shed 0"), std::string::npos) << text;
  EXPECT_NE(text.find("plan_cache_hits"), std::string::npos) << text;
  EXPECT_NE(text.find("plan_cache_hit_rate"), std::string::npos) << text;
  EXPECT_NE(text.find("slow_query session=mx"), std::string::npos) << text;
  EXPECT_NE(text.find("view=" + rv_.view.name), std::string::npos) << text;
}

// --- Epoch-snapshot isolation under concurrent updates --------------------

TEST(ServerEpochTest, ConcurrentUpdatesNeverTearQueries) {
  // One table r(x) with two rows. An updater rewrites row {0}'s measure to
  // 1 + k (update k bumps the epoch by exactly 1), while readers query the
  // view. Every result must be internally consistent with its reported
  // snapshot epoch: measure(x=0) == 1 + (epoch - base).
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("x", 2).ok());
  auto table = std::make_shared<Table>("r", Schema({"x"}, "f"));
  table->AppendRow({0}, 1.0);
  table->AppendRow({1}, 4.0);
  ASSERT_TRUE(db.CreateTable(table).ok());
  ASSERT_TRUE(db.CreateMpfView({"v", {"r"}, Semiring::SumProduct()}).ok());
  ASSERT_TRUE(db.BuildCache("v").ok());
  const uint64_t base = db.epoch();

  constexpr int kUpdates = 24;
  constexpr int kReaders = 3;
  std::atomic<bool> start{false};
  std::atomic<int> failures{0};

  std::thread updater([&] {
    while (!start.load()) std::this_thread::yield();
    for (int k = 1; k <= kUpdates; ++k) {
      Status s = db.ApplyMeasureUpdate("r", {0}, 1.0 + k);
      if (!s.ok()) ++failures;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < 40; ++i) {
        auto result = db.Query("v", MpfQuerySpec{{"x"}, {}});
        if (!result.ok()) {
          ++failures;
          continue;
        }
        const Table& t = *result->table;
        uint64_t k = result->snapshot_epoch - base;
        bool consistent = false;
        for (size_t row = 0; row < t.NumRows(); ++row) {
          if (t.Row(row).var(0) == 0) {
            consistent = t.measure(row) == 1.0 + static_cast<double>(k);
          }
        }
        if (!consistent) ++failures;

        // QueryCached pinned to one epoch (no update raced the call) must
        // agree with the refreshed cache for that epoch.
        uint64_t pre = db.epoch();
        auto cached = db.QueryCached("v", MpfQuerySpec{{"x"}, {}});
        uint64_t post = db.epoch();
        if (!cached.ok()) {
          ++failures;
        } else if (pre == post) {
          uint64_t ck = pre - base;
          for (size_t row = 0; row < (*cached)->NumRows(); ++row) {
            if ((*cached)->Row(row).var(0) == 0 &&
                (*cached)->measure(row) != 1.0 + static_cast<double>(ck)) {
              ++failures;
            }
          }
        }
      }
    });
  }
  start.store(true);
  updater.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db.epoch(), base + kUpdates);
}

TEST(ServerEpochTest, CacheRefreshTracksUpdatesNotStaleServing) {
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("x", 2).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("y", 2).ok());
  auto r0 = std::make_shared<Table>("r0", Schema({"x", "y"}, "f"));
  r0->AppendRow({0, 0}, 2.0);
  r0->AppendRow({0, 1}, 3.0);
  r0->AppendRow({1, 0}, 5.0);
  auto r1 = std::make_shared<Table>("r1", Schema({"y"}, "f"));
  r1->AppendRow({0}, 0.5);
  r1->AppendRow({1}, 4.0);
  ASSERT_TRUE(db.CreateTable(r0).ok());
  ASSERT_TRUE(db.CreateTable(r1).ok());
  ASSERT_TRUE(db.CreateMpfView({"v", {"r0", "r1"}, Semiring::SumProduct()})
                  .ok());
  ASSERT_TRUE(db.BuildCache("v").ok());

  ASSERT_TRUE(db.ApplyMeasureUpdate("r0", {0, 1}, 7.0).ok());

  // The cache must answer from the refreshed state: compare against an
  // uncached query at the same (current) epoch.
  auto cached = db.QueryCached("v", MpfQuerySpec{{"x"}, {}});
  ASSERT_TRUE(cached.ok()) << cached.status().message();
  auto fresh = db.Query("v", MpfQuerySpec{{"x"}, {}});
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fr::TablesEqual(**cached, *fresh->table, 1e-9));

  // The base table the reader snapshot saw before the update is untouched
  // (copy-on-write): the original shared_ptr still holds measure 3.0.
  EXPECT_EQ(r0->measure(1), 3.0);
}

// --- Plan cache counters and epoch invalidation ---------------------------

TEST(PlanCacheTest, HitMissInvalidationCounters) {
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("x", 3).ok());
  auto table = std::make_shared<Table>("r", Schema({"x"}, "f"));
  table->AppendRow({0}, 1.0);
  table->AppendRow({1}, 2.0);
  table->AppendRow({2}, 0.5);
  ASSERT_TRUE(db.CreateTable(table).ok());
  ASSERT_TRUE(db.CreateMpfView({"v", {"r"}, Semiring::SumProduct()}).ok());
  MpfQuerySpec query{{"x"}, {}};

  auto first = db.Query("v", query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->plan_cache_hit);
  auto second = db.Query("v", query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_TRUE(fr::TablesEqual(*first->table, *second->table, 0.0));

  auto stats = db.plan_cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // A different query misses; a permuted-selection query shares the entry.
  auto other = db.Query("v", MpfQuerySpec{{}, {{"x", 1}}});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->plan_cache_hit);
  EXPECT_EQ(db.plan_cache().stats().misses, 2u);

  // A measure update bumps only the data epoch: cached plans survive (a
  // plan depends on schema shape, not measure values) and the next query
  // hits while still reading the refreshed state.
  ASSERT_TRUE(db.ApplyMeasureUpdate("r", {1}, 6.0).ok());
  stats = db.plan_cache().stats();
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.entries, 2u);

  auto after = db.Query("v", query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->plan_cache_hit);
  // And the cached-plan result reflects the new measure.
  bool found = false;
  for (size_t i = 0; i < after->table->NumRows(); ++i) {
    if (after->table->Row(i).var(0) == 1) {
      EXPECT_EQ(after->table->measure(i), 6.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // A structural change (new table) bumps the structural epoch: every entry
  // is invalidated (counted) and the next query re-plans.
  ASSERT_TRUE(db.catalog().RegisterVariable("y", 2).ok());
  auto extra = std::make_shared<Table>("extra", Schema({"y"}, "f"));
  extra->AppendRow({0}, 1.0);
  extra->AppendRow({1}, 1.0);
  ASSERT_TRUE(db.CreateTable(extra).ok());
  stats = db.plan_cache().stats();
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.entries, 0u);

  auto replanned = db.Query("v", query);
  ASSERT_TRUE(replanned.ok());
  EXPECT_FALSE(replanned->plan_cache_hit);
  auto again = db.Query("v", query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->plan_cache_hit);
}

TEST(PlanCacheTest, DisabledCacheNeverHits) {
  Database db;
  db.set_plan_cache_enabled(false);
  ASSERT_TRUE(db.catalog().RegisterVariable("x", 2).ok());
  auto table = std::make_shared<Table>("r", Schema({"x"}, "f"));
  table->AppendRow({0}, 1.0);
  ASSERT_TRUE(db.CreateTable(table).ok());
  ASSERT_TRUE(db.CreateMpfView({"v", {"r"}, Semiring::SumProduct()}).ok());
  for (int i = 0; i < 3; ++i) {
    auto result = db.Query("v", MpfQuerySpec{{"x"}, {}});
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->plan_cache_hit);
  }
  EXPECT_EQ(db.plan_cache().stats().hits, 0u);
  EXPECT_EQ(db.plan_cache().stats().inserts, 0u);
}

TEST(PlanCacheTest, KeyCanonicalizationAndEviction) {
  using server::CanonicalQueryKey;
  MpfQuerySpec a{{"x", "y"}, {{"u", 1}, {"t", 0}}};
  MpfQuerySpec b{{"x", "y"}, {{"t", 0}, {"u", 1}}};
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
  MpfQuerySpec c{{"y", "x"}, {{"t", 0}, {"u", 1}}};
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(c));  // schema order kept

  server::PlanCache cache(/*capacity=*/2);
  auto plan = std::make_shared<server::CachedPlan>();
  cache.Insert("k1", 0, plan);
  cache.Insert("k2", 0, plan);
  EXPECT_NE(cache.Lookup("k1", 0), nullptr);  // k1 now most recent
  cache.Insert("k3", 0, plan);                // evicts k2 (LRU)
  EXPECT_EQ(cache.Lookup("k2", 0), nullptr);
  EXPECT_NE(cache.Lookup("k1", 0), nullptr);
  EXPECT_NE(cache.Lookup("k3", 0), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  // Stale lookup: counted as invalidation + miss, entry dropped.
  EXPECT_EQ(cache.Lookup("k1", 5), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- Multi-session differential soak --------------------------------------

struct RecordedQuery {
  size_t view = 0;  // index into the soak's views
  MpfQuerySpec spec;
  bool cached = false;     // QueryCached instead of Query
  uint64_t epoch = 0;      // snapshot epoch the result was served at
  bool epoch_exact = true; // false: cached call raced an update, skip replay
  TablePtr result;
};

TEST(ServerSoakTest, ConcurrentSessionsBitIdenticalToSerialReplay) {
  constexpr int kViews = 3;
  constexpr int kSessions = 4;
  constexpr int kOpsPerSession = 24;
  constexpr int kUpdates = 10;
  const uint64_t seed = CaseSeed(101);
  MPFDB_TRACE_SEED(seed);

  // Live database: kViews independent random views, VE-caches on all of
  // them; view 0's first relation receives the update stream.
  Database db;
  std::vector<RandomView> views;
  for (int i = 0; i < kViews; ++i) {
    views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i),
                                   /*num_vars=*/4, /*num_rels=*/3,
                                   /*force_acyclic=*/(i % 2 == 0),
                                   "s" + std::to_string(i) + "_"));
    Install(views.back(), db);
    ASSERT_TRUE(db.BuildCache(views.back().view.name).ok());
  }
  const uint64_t base = db.epoch();

  // The update stream: rewrite the measure of row 0 of view 0's first
  // relation to values never equal to the current one, so every update
  // commits (bumping the epoch by exactly 1) — epoch base + k means the
  // first k updates are visible.
  const Table& target = *views[0].tables[0];
  std::vector<VarValue> target_row(target.Row(0).vars,
                                   target.Row(0).vars + target.Row(0).arity);
  auto update_value = [](int k) { return 16.0 + k * 0.125; };  // exact in FP

  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::thread updater([&] {
    while (!start.load()) std::this_thread::yield();
    for (int k = 0; k < kUpdates; ++k) {
      ASSERT_TRUE(db.ApplyMeasureUpdate(views[0].tables[0]->name(),
                                        target_row, update_value(k))
                      .ok());
      std::this_thread::yield();
    }
    done.store(true);
  });

  server::ServerOptions options;
  options.max_concurrent = 3;
  options.global_memory_limit = 64u << 20;
  MpfServer server(db, options);
  std::vector<std::vector<RecordedQuery>> recorded(kSessions);
  std::vector<std::thread> workers;
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      auto session = server.CreateSession("soak-" + std::to_string(s));
      Rng rng(seed + 1000 + static_cast<uint64_t>(s));
      while (!start.load()) std::this_thread::yield();
      for (int op = 0; op < kOpsPerSession; ++op) {
        RecordedQuery rec;
        rec.view = static_cast<size_t>(rng.UniformInt(0, kViews - 1));
        const RandomView& rv = views[rec.view];
        MpfQuerySpec spec;
        spec.group_vars = {Pick(rv.present_vars, rng)};
        if (rng.Bernoulli(0.4)) {
          const std::string& sel = Pick(rv.present_vars, rng);
          if (sel != spec.group_vars[0]) {
            spec.selections.push_back(QuerySelection{
                sel, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel) - 1))});
          }
        }
        rec.spec = spec;
        rec.cached = rng.Bernoulli(0.3);
        if (rec.cached) {
          uint64_t pre = db.epoch();
          auto result = session->QueryCached(rv.view.name, spec);
          uint64_t post = db.epoch();
          ASSERT_TRUE(result.ok()) << result.status().message();
          rec.epoch = pre;
          rec.epoch_exact = pre == post;
          rec.result = *result;
        } else {
          auto result = session->Query(rv.view.name, spec);
          ASSERT_TRUE(result.ok()) << result.status().message();
          rec.epoch = result->snapshot_epoch;
          rec.result = result->table;
        }
        recorded[static_cast<size_t>(s)].push_back(std::move(rec));
      }
    });
  }
  start.store(true);
  updater.join();
  for (auto& t : workers) t.join();
  ASSERT_TRUE(done.load());
  ASSERT_EQ(db.epoch(), base + kUpdates);

  // The serving layer actually served concurrently and the plan cache
  // actually earned its keep.
  auto sstats = server.stats();
  EXPECT_EQ(sstats.admitted,
            static_cast<uint64_t>(kSessions * kOpsPerSession));
  EXPECT_EQ(sstats.completed, sstats.admitted);
  auto pstats = db.plan_cache().stats();
  EXPECT_GT(pstats.hits, 0u);
  // Plans are keyed on the structural epoch now, so the measure-update
  // stream must not have invalidated a single cached plan.
  EXPECT_EQ(pstats.invalidations, 0u);

  // Serial replay: a fresh database built from the same seeds, stepped
  // through the same update stream one epoch at a time. Every recorded
  // query re-runs serially at its epoch and must match bit-for-bit.
  Database replay;
  std::vector<RandomView> replay_views;
  for (int i = 0; i < kViews; ++i) {
    replay_views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i),
                                          4, 3, (i % 2 == 0),
                                          "s" + std::to_string(i) + "_"));
    Install(replay_views.back(), replay);
    ASSERT_TRUE(replay.BuildCache(replay_views.back().view.name).ok());
  }

  // Group recorded queries by the number of updates their epoch reflects.
  std::map<uint64_t, std::vector<const RecordedQuery*>> by_step;
  size_t replayed = 0, skipped = 0;
  for (const auto& session_log : recorded) {
    for (const auto& rec : session_log) {
      if (rec.cached && !rec.epoch_exact) {
        ++skipped;  // raced an update; no single epoch to replay at
        continue;
      }
      by_step[rec.epoch - base].push_back(&rec);
      ++replayed;
    }
  }
  for (uint64_t step = 0, applied = 0; step <= kUpdates; ++step) {
    while (applied < step) {
      ASSERT_TRUE(replay
                      .ApplyMeasureUpdate(replay_views[0].tables[0]->name(),
                                          target_row,
                                          update_value(static_cast<int>(
                                              applied)))
                      .ok());
      ++applied;
    }
    auto it = by_step.find(step);
    if (it == by_step.end()) continue;
    for (const RecordedQuery* rec : it->second) {
      const std::string& view_name = replay_views[rec->view].view.name;
      TablePtr expected;
      if (rec->cached) {
        auto result = replay.QueryCached(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = *result;
      } else {
        auto result = replay.Query(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = result->table;
      }
      EXPECT_TRUE(fr::TablesEqual(*expected, *rec->result,
                                  /*tolerance=*/0.0))
          << (rec->cached ? "cached" : "query") << " on view " << view_name
          << " at step " << step;
    }
  }
  // The race-skip path should be the exception, not the rule.
  EXPECT_GT(replayed, skipped);
}

// --- MVCC mixed readers+writers soak --------------------------------------

struct RecordedUpdate {
  uint64_t commit_epoch = 0;  // exact epoch of the commit (from the ack)
  std::string table;
  std::vector<VarValue> row_vars;
  double value = 0;
};

// Four sessions — two in-process, two over the wire — mix reads and writes
// at the parameterized write fraction. Every session writes only its own
// (table, row) target, so the order inside one coalesced commit batch never
// matters and the exact ack epochs define a serial schedule: a fresh
// database stepped through the recorded commits in epoch order must
// reproduce every recorded query result bit-for-bit (tolerance 0.0).
class MvccSoakTest : public ::testing::TestWithParam<double> {};

TEST_P(MvccSoakTest, MixedReadersWritersBitIdenticalToSerialReplay) {
  const double write_frac = GetParam();
  constexpr int kViews = 2;
  constexpr int kSessions = 4;
  constexpr int kOpsPerSession = 32;
  const uint64_t seed =
      CaseSeed(401 + static_cast<uint64_t>(write_frac * 1000));
  MPFDB_TRACE_SEED(seed);

  Database db;
  std::vector<RandomView> views;
  for (int i = 0; i < kViews; ++i) {
    views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i),
                                   /*num_vars=*/4, /*num_rels=*/3,
                                   /*force_acyclic=*/(i % 2 == 0),
                                   "m" + std::to_string(i) + "_"));
    Install(views.back(), db);
    ASSERT_TRUE(db.BuildCache(views.back().view.name).ok());
  }
  const uint64_t base = db.epoch();

  // Session s writes row 0 of views[s % kViews].tables[s / kViews]: four
  // distinct (table, row) targets, never a conflict inside a batch. Values
  // are exact in FP, session-disjoint, and strictly increasing, so no
  // update is ever a no-op.
  struct WriteTarget {
    std::string table;
    std::vector<VarValue> row;
  };
  std::vector<WriteTarget> targets;
  for (int s = 0; s < kSessions; ++s) {
    const RandomView& rv = views[static_cast<size_t>(s % kViews)];
    const Table& t = *rv.tables[static_cast<size_t>(s / kViews) %
                                rv.tables.size()];
    RowView r0 = t.Row(0);
    targets.push_back(
        {t.name(), std::vector<VarValue>(r0.vars, r0.vars + r0.arity)});
  }
  auto write_value = [](int s, int k) { return 128.0 + s * 16.0 + k * 0.125; };

  server::ServerOptions sopts;
  sopts.max_concurrent = 3;
  sopts.global_memory_limit = 64u << 20;
  MpfServer server(db, sopts);
  server::net::NetServer net(server);
  ASSERT_TRUE(net.Start().ok());

  std::vector<std::vector<RecordedQuery>> recorded(kSessions);
  std::vector<std::vector<RecordedUpdate>> written(kSessions);
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s] {
      const bool wire = s >= kSessions / 2;
      std::unique_ptr<server::net::NetClient> client;
      std::shared_ptr<Session> session;
      if (wire) {
        auto connected = server::net::NetClient::Connect(net.port());
        ASSERT_TRUE(connected.ok()) << connected.status().message();
        client = std::move(*connected);
        ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
      } else {
        session = server.CreateSession("mvcc-soak-" + std::to_string(s));
      }
      Rng rng(seed + 2000 + static_cast<uint64_t>(s));
      int writes = 0;
      while (!start.load()) std::this_thread::yield();
      for (int op = 0; op < kOpsPerSession; ++op) {
        if (rng.Bernoulli(write_frac)) {
          RecordedUpdate up;
          up.table = targets[static_cast<size_t>(s)].table;
          up.row_vars = targets[static_cast<size_t>(s)].row;
          up.value = write_value(s, writes++);
          if (wire) {
            auto epoch = client->Update(up.table, up.row_vars, up.value);
            ASSERT_TRUE(epoch.ok()) << epoch.status().message();
            up.commit_epoch = *epoch;
          } else {
            ASSERT_TRUE(session
                            ->Update(up.table, up.row_vars, up.value,
                                     &up.commit_epoch)
                            .ok());
          }
          written[static_cast<size_t>(s)].push_back(std::move(up));
          continue;
        }
        RecordedQuery rec;
        rec.view = static_cast<size_t>(rng.UniformInt(0, kViews - 1));
        const RandomView& rv = views[rec.view];
        MpfQuerySpec spec;
        spec.group_vars = {Pick(rv.present_vars, rng)};
        if (rng.Bernoulli(0.4)) {
          const std::string& sel = Pick(rv.present_vars, rng);
          if (sel != spec.group_vars[0]) {
            spec.selections.push_back(QuerySelection{
                sel, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel) - 1))});
          }
        }
        rec.spec = spec;
        rec.cached = rng.Bernoulli(0.4);
        if (wire) {
          auto result = client->Query(rv.view.name, spec, "", 0, rec.cached);
          ASSERT_TRUE(result.ok()) << result.status().message();
          rec.epoch = result->snapshot_epoch;
          rec.epoch_exact = !result->epoch_inexact;
          rec.result = result->table;
        } else if (rec.cached) {
          uint64_t pre = db.epoch();
          auto result = session->QueryCached(rv.view.name, spec);
          uint64_t post = db.epoch();
          ASSERT_TRUE(result.ok()) << result.status().message();
          rec.epoch = pre;
          rec.epoch_exact = pre == post;
          rec.result = *result;
        } else {
          auto result = session->Query(rv.view.name, spec);
          ASSERT_TRUE(result.ok()) << result.status().message();
          rec.epoch = result->snapshot_epoch;
          rec.result = result->table;
        }
        recorded[static_cast<size_t>(s)].push_back(std::move(rec));
      }
    });
  }
  start.store(true);
  for (auto& t : workers) t.join();

  // Accounting: every write was effective (distinct targets, fresh values),
  // every commit batch bumped the epoch exactly once, and the wire/local
  // acks all name real commit epochs.
  std::vector<const RecordedUpdate*> updates;
  for (const auto& session_log : written) {
    for (const auto& up : session_log) updates.push_back(&up);
  }
  std::sort(updates.begin(), updates.end(),
            [](const RecordedUpdate* a, const RecordedUpdate* b) {
              return a->commit_epoch < b->commit_epoch;
            });
  MvccStats mstats = db.mvcc_stats();
  EXPECT_EQ(mstats.updates_applied, updates.size());
  EXPECT_EQ(db.epoch(), base + mstats.commit_batches);
  for (const RecordedUpdate* up : updates) {
    EXPECT_GT(up->commit_epoch, base);
    EXPECT_LE(up->commit_epoch, db.epoch());
  }
  EXPECT_EQ(server.stats().updates, updates.size());
  // Measure commits never invalidate structurally-keyed plans.
  EXPECT_EQ(db.plan_cache().stats().invalidations, 0u);

  // Serial replay: a fresh database stepped through the recorded commits in
  // ack-epoch order; every exact-epoch query must match bit-for-bit.
  Database replay;
  std::vector<RandomView> replay_views;
  for (int i = 0; i < kViews; ++i) {
    replay_views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i), 4,
                                          3, (i % 2 == 0),
                                          "m" + std::to_string(i) + "_"));
    Install(replay_views.back(), replay);
    ASSERT_TRUE(replay.BuildCache(replay_views.back().view.name).ok());
  }
  std::map<uint64_t, std::vector<const RecordedQuery*>> by_epoch;
  size_t replayed = 0, skipped = 0;
  for (const auto& session_log : recorded) {
    for (const auto& rec : session_log) {
      if (rec.cached && !rec.epoch_exact) {
        ++skipped;  // raced an update; no single epoch to replay at
        continue;
      }
      by_epoch[rec.epoch].push_back(&rec);
      ++replayed;
    }
  }
  size_t next_update = 0;
  for (const auto& [epoch, queries] : by_epoch) {
    while (next_update < updates.size() &&
           updates[next_update]->commit_epoch <= epoch) {
      const RecordedUpdate* up = updates[next_update];
      ASSERT_TRUE(
          replay.ApplyMeasureUpdate(up->table, up->row_vars, up->value).ok());
      ++next_update;
    }
    for (const RecordedQuery* rec : queries) {
      const std::string& view_name = replay_views[rec->view].view.name;
      TablePtr expected;
      if (rec->cached) {
        auto result = replay.QueryCached(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = *result;
      } else {
        auto result = replay.Query(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = result->table;
      }
      EXPECT_TRUE(fr::TablesEqual(*expected, *rec->result,
                                  /*tolerance=*/0.0))
          << (rec->cached ? "cached" : "query") << " on view " << view_name
          << " at epoch " << epoch;
    }
  }
  // The race-skip path should be the exception, not the rule.
  EXPECT_GT(replayed, skipped);
}

INSTANTIATE_TEST_SUITE_P(Mixes, MvccSoakTest,
                         ::testing::Values(0.05, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param < 0.1 ? "Read95Write5"
                                                   : "Read50Write50";
                         });

}  // namespace
}  // namespace mpfdb
