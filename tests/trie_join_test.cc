// Unit-level contract of the LeapFrog TrieJoin and its sorted-array trie
// iterator: the Open/Up/Next/Seek protocol over handcrafted arenas
// (including hostile all-duplicate keys), and the operator's equivalences —
// against a binary hash cascade on the same inputs, serial vs morsel-
// parallel emission, in-memory vs spill-degraded execution — plus
// cancellation propagation from staging.

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "exec/trie_join.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "util/query_context.h"
#include "util/rng.h"

namespace mpfdb::exec {
namespace {

TablePtr PairTable(const std::string& name, const std::string& a,
                   const std::string& b, int64_t domain, size_t rows,
                   Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema({a, b}, "f"));
  std::set<std::pair<VarValue, VarValue>> seen;
  while (t->NumRows() < rows) {
    auto va = static_cast<VarValue>(rng.UniformInt(0, domain - 1));
    auto vb = static_cast<VarValue>(rng.UniformInt(0, domain - 1));
    if (!seen.insert({va, vb}).second) continue;
    t->AppendRow({va, vb}, rng.UniformDouble(0.25, 2.0));
  }
  return t;
}

// Canonical multiset form: rows sorted by variables then measure bits, so
// operators with different emission orders compare exactly.
TablePtr Canonical(const Table& t) {
  struct Entry {
    std::vector<VarValue> vars;
    double measure;
  };
  std::vector<Entry> entries;
  entries.reserve(t.NumRows());
  const size_t arity = t.schema().arity();
  for (size_t i = 0; i < t.NumRows(); ++i) {
    RowView row = t.Row(i);
    entries.push_back(
        Entry{std::vector<VarValue>(row.vars, row.vars + arity), row.measure});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    if (x.vars != y.vars) return x.vars < y.vars;
    return x.measure < y.measure;
  });
  auto out = std::make_shared<Table>(t.name() + "_canon", t.schema());
  for (const Entry& e : entries) out->AppendRow(e.vars, e.measure);
  return out;
}

// The forced-pairwise golden on the same children: hash cascade in child
// order (the same multiply grouping TrieJoin uses), projected to var_order.
OperatorPtr HashCascade(const std::vector<TablePtr>& tables,
                        const std::vector<std::string>& var_order,
                        const Semiring& semiring) {
  OperatorPtr op = std::make_unique<SeqScan>(tables[0]);
  for (size_t i = 1; i < tables.size(); ++i) {
    op = std::make_unique<HashProductJoin>(
        std::move(op), std::make_unique<SeqScan>(tables[i]), semiring);
  }
  return std::make_unique<StreamProject>(std::move(op), var_order);
}

// --- TrieIterator ----------------------------------------------------------

TEST(TrieIteratorTest, WalksImplicitTrie) {
  // Sorted arity-2 arena with a duplicate full key (2,5).
  const std::vector<VarValue> rows = {1, 10, 1, 20, 2, 5, 2, 5, 4, 7};
  TrieIterator it(rows.data(), 5, 2);
  EXPECT_EQ(it.depth(), -1);

  it.Open();
  EXPECT_EQ(it.depth(), 0);
  EXPECT_FALSE(it.AtEnd());
  EXPECT_EQ(it.Key(), 1);
  EXPECT_EQ(it.block_begin(), 0u);
  EXPECT_EQ(it.block_end(), 2u);

  it.Next();
  EXPECT_EQ(it.Key(), 2);
  it.Open();  // descend into key 2's run
  EXPECT_EQ(it.depth(), 1);
  EXPECT_EQ(it.Key(), 5);
  // Deepest level: the block is the duplicate-row run.
  EXPECT_EQ(it.block_begin(), 2u);
  EXPECT_EQ(it.block_end(), 4u);
  it.Next();
  EXPECT_TRUE(it.AtEnd());

  it.Up();
  EXPECT_EQ(it.depth(), 0);
  EXPECT_EQ(it.Key(), 2);
  it.Seek(3);
  EXPECT_EQ(it.Key(), 4);
  it.Open();
  EXPECT_EQ(it.Key(), 7);
  it.Up();

  // Seek never moves backwards.
  it.Seek(0);
  EXPECT_EQ(it.Key(), 4);
  it.Seek(100);
  EXPECT_TRUE(it.AtEnd());

  // Seeks and Nexts were counted per depth; Open is not counted.
  ASSERT_EQ(it.level_stats().size(), 2u);
  EXPECT_GT(it.level_stats()[0].seeks, 0u);
  EXPECT_GT(it.level_stats()[0].nexts, 0u);
  EXPECT_GT(it.level_stats()[1].nexts, 0u);
}

TEST(TrieIteratorTest, HostileAllDuplicateKeys) {
  // Every row is the identical key: each level has exactly one child whose
  // run is the whole arena.
  const size_t kRows = 6;
  std::vector<VarValue> rows;
  for (size_t i = 0; i < kRows; ++i) {
    rows.insert(rows.end(), {3, 3, 3});
  }
  TrieIterator it(rows.data(), kRows, 3);
  for (int d = 0; d < 3; ++d) {
    it.Open();
    EXPECT_EQ(it.depth(), d);
    ASSERT_FALSE(it.AtEnd());
    EXPECT_EQ(it.Key(), 3);
    EXPECT_EQ(it.block_begin(), 0u);
    EXPECT_EQ(it.block_end(), kRows);
  }
  // Seek within the level: landing on the only key, then past it.
  it.Seek(3);
  EXPECT_EQ(it.Key(), 3);
  it.Seek(4);
  EXPECT_TRUE(it.AtEnd());
  it.Up();
  EXPECT_EQ(it.depth(), 1);
  EXPECT_EQ(it.Key(), 3);
  it.Next();
  EXPECT_TRUE(it.AtEnd());
}

TEST(TrieIteratorTest, EmptyRelationIsAtEndImmediately) {
  TrieIterator it(nullptr, 0, 2);
  it.Open();
  EXPECT_TRUE(it.AtEnd());
}

// --- TrieJoin ---------------------------------------------------------------

class TrieJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const uint64_t seed = CaseSeed(17);
    Rng rng(seed);
    r_ = PairTable("r", "a", "b", 20, 140, rng);
    s_ = PairTable("s", "b", "c", 20, 140, rng);
    t_ = PairTable("t", "c", "a", 20, 140, rng);
  }

  std::unique_ptr<TrieJoin> MakeTriangle() {
    std::vector<OperatorPtr> children;
    children.push_back(std::make_unique<SeqScan>(r_));
    children.push_back(std::make_unique<SeqScan>(s_));
    children.push_back(std::make_unique<SeqScan>(t_));
    return std::make_unique<TrieJoin>(std::move(children), var_order_,
                                      Semiring::SumProduct());
  }

  TablePtr r_, s_, t_;
  const std::vector<std::string> var_order_ = {"a", "b", "c"};
};

TEST_F(TrieJoinTest, TriangleMatchesHashCascade) {
  auto golden_op = HashCascade({r_, s_, t_}, var_order_, Semiring::SumProduct());
  auto golden = RunBatch(*golden_op, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();

  auto trie = MakeTriangle();
  auto result = RunBatch(*trie, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT((*result)->NumRows(), 0u);
  EXPECT_TRUE(
      fr::TablesEqual(*Canonical(**golden), *Canonical(**result), 0.0));
}

TEST_F(TrieJoinTest, RowPathMatchesBatchPath) {
  auto batch_op = MakeTriangle();
  auto batches = RunBatch(*batch_op, "batches");
  ASSERT_TRUE(batches.ok()) << batches.status();
  auto row_op = MakeTriangle();
  auto rows = mpfdb::exec::Run(*row_op, "rows");
  ASSERT_TRUE(rows.ok()) << rows.status();
  // Same operator, both paths: emission order must match exactly.
  EXPECT_TRUE(fr::TablesEqual(**batches, **rows, 0.0));
}

TEST_F(TrieJoinTest, DuplicateKeysEmitFullCrossProduct) {
  // Two children over the same single variable with duplicate keys: 3 copies
  // of x=7 times 2 copies of x=7 must emit 6 rows (child-major order), each
  // measure a pure product.
  auto l = std::make_shared<Table>("l", Schema({"x"}, "f"));
  for (double m : {2.0, 3.0, 5.0}) l->AppendRow({7}, m);
  l->AppendRow({9}, 11.0);
  auto r = std::make_shared<Table>("rr", Schema({"x"}, "g"));
  for (double m : {0.5, 0.25}) r->AppendRow({7}, m);

  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<SeqScan>(l));
  children.push_back(std::make_unique<SeqScan>(r));
  TrieJoin join(std::move(children), {"x"}, Semiring::SumProduct());
  auto result = RunBatch(join, "out");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ((*result)->NumRows(), 6u);
  const std::vector<double> want = {2.0 * 0.5,  2.0 * 0.25, 3.0 * 0.5,
                                    3.0 * 0.25, 5.0 * 0.5,  5.0 * 0.25};
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*result)->Row(i).vars[0], 7);
    EXPECT_EQ((*result)->measure(i), want[i]);
  }
}

TEST_F(TrieJoinTest, MorselStreamsReproduceSerialOrder) {
  auto serial_op = MakeTriangle();
  auto serial = RunBatch(*serial_op, "serial");
  ASSERT_TRUE(serial.ok()) << serial.status();

  ThreadPool pool(4);
  QueryContext ctx;
  ctx.set_thread_pool(&pool);
  auto parallel_op = MakeTriangle();
  parallel_op->BindContext(&ctx);
  auto parallel = RunBatch(*parallel_op, "parallel", &ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  // Concatenated stream outputs must equal the serial emission bit for bit,
  // row order included.
  EXPECT_TRUE(fr::TablesEqual(**serial, **parallel, 0.0));
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

TEST_F(TrieJoinTest, SpillDegradationKeepsTheSameMultiset) {
  auto golden_op = MakeTriangle();
  auto golden = RunBatch(*golden_op, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();

  QueryContext ctx;
  ctx.set_memory_limit(1024);
  ctx.set_spill_enabled(true);
  ctx.set_spill_dir(::testing::TempDir());
  auto degraded_op = MakeTriangle();
  degraded_op->BindContext(&ctx);
  auto degraded = RunBatch(*degraded_op, "degraded", &ctx);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  // Degraded mode joins pairwise off disk: order may differ, the multiset —
  // including every measure bit — may not.
  EXPECT_TRUE(
      fr::TablesEqual(*Canonical(**golden), *Canonical(**degraded), 0.0));
  EXPECT_GT(ctx.stats().spill_files, 0u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

TEST_F(TrieJoinTest, CancellationPropagatesFromStaging) {
  QueryContext ctx;
  ctx.RequestCancel();
  auto op = MakeTriangle();
  op->BindContext(&ctx);
  auto result = RunBatch(*op, "out", &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(TrieJoinTest, OpenRejectsIncompleteVarOrder) {
  std::vector<OperatorPtr> children;
  children.push_back(std::make_unique<SeqScan>(r_));
  children.push_back(std::make_unique<SeqScan>(s_));
  TrieJoin join(std::move(children), {"a", "b"},  // misses "c"
                Semiring::SumProduct());
  EXPECT_FALSE(join.Open().ok());
}

}  // namespace
}  // namespace mpfdb::exec
