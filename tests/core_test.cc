#include <gtest/gtest.h>

#include "core/database.h"
#include "fr/algebra.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SupplyChainParams params;
    params.scale = 0.004;
    params.seed = 7;
    auto schema = workload::GenerateSupplyChain(params, db_.catalog());
    ASSERT_TRUE(schema.ok()) << schema.status();
    view_ = schema->view;
    ASSERT_TRUE(db_.CreateMpfView(view_).ok());
  }

  Database db_;
  MpfViewDef view_;
};

TEST_F(DatabaseTest, QueryRunsEndToEnd) {
  auto result = db_.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->table, nullptr);
  EXPECT_NE(result->plan, nullptr);
  EXPECT_GT(result->table->NumRows(), 0u);
  EXPECT_GE(result->planning_seconds, 0.0);
  EXPECT_GE(result->execution_seconds, 0.0);
}

TEST_F(DatabaseTest, OptimizersAgree) {
  TablePtr reference;
  for (const std::string spec :
       {"cs", "cs+", "cs+nonlinear", "ve(deg)", "ve(width)", "ve(elim_cost)",
        "ve(deg&width)", "ve(deg&elim_cost)", "ve(random)", "ve(deg) ext.",
        "ve(width) ext"}) {
    auto result = db_.Query("invest", MpfQuerySpec{{"wid"}, {}}, spec);
    ASSERT_TRUE(result.ok()) << spec << ": " << result.status();
    if (reference == nullptr) {
      reference = result->table;
    } else {
      EXPECT_TRUE(fr::TablesEqual(*reference, *result->table, 1e-6)) << spec;
    }
  }
}

TEST_F(DatabaseTest, ExplainRendersPlan) {
  auto text = db_.Explain("invest", MpfQuerySpec{{"tid"}, {}}, "ve(deg)");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("VE(deg)"), std::string::npos);
  EXPECT_NE(text->find("GroupBy"), std::string::npos);
  EXPECT_NE(text->find("group by tid"), std::string::npos);
}

TEST_F(DatabaseTest, ExplainAnalyzeReportsAccurateCounts) {
  auto text = db_.ExplainAnalyze("invest", MpfQuerySpec{{"tid"}, {}}, "cs+");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("actual="), std::string::npos);
  // The scan of transporters emits exactly its cardinality.
  int64_t transporters = *db_.catalog().Cardinality("transporters");
  EXPECT_NE(text->find("Scan(transporters)"), std::string::npos);
  EXPECT_NE(text->find("actual=" + std::to_string(transporters)),
            std::string::npos);
}

TEST_F(DatabaseTest, CacheLifecycle) {
  EXPECT_FALSE(db_.HasCache("invest"));
  EXPECT_EQ(db_.QueryCached("invest", MpfQuerySpec{{"cid"}, {}}).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db_.BuildCache("invest").ok());
  EXPECT_TRUE(db_.HasCache("invest"));
  auto cached = db_.QueryCached("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(cached.ok()) << cached.status();
  auto direct = db_.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(fr::TablesEqual(**cached, *direct->table, 1e-6));
}

TEST_F(DatabaseTest, ViewManagement) {
  EXPECT_TRUE(db_.GetView("invest").ok());
  EXPECT_FALSE(db_.GetView("nope").ok());
  EXPECT_EQ(db_.ViewNames(), (std::vector<std::string>{"invest"}));
  EXPECT_EQ(db_.CreateMpfView(view_).code(), StatusCode::kAlreadyExists);
  MpfViewDef bad{"bad", {"missing_table"}, Semiring::SumProduct()};
  EXPECT_EQ(db_.CreateMpfView(bad).code(), StatusCode::kNotFound);
  MpfViewDef empty{"empty", {}, Semiring::SumProduct()};
  EXPECT_EQ(db_.CreateMpfView(empty).code(), StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, UnknownOptimizerRejected) {
  EXPECT_FALSE(db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "bogus").ok());
  EXPECT_FALSE(db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "ve(nope)").ok());
  EXPECT_FALSE(db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "ve(deg").ok());
  EXPECT_FALSE(
      db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "ve(deg) bogus").ok());
}

TEST_F(DatabaseTest, PageCostModelAlsoWorks) {
  db_.set_cost_model(std::make_unique<PageCostModel>());
  auto result = db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "cs+nonlinear");
  ASSERT_TRUE(result.ok()) << result.status();
  auto simple = Database();
  // Same answer as the default model (plans may differ, answers must not).
  auto direct = db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "cs");
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(fr::TablesEqual(*result->table, *direct->table, 1e-6));
}

TEST_F(DatabaseTest, SortMergeExecutionAgreesWithHash) {
  auto hash_result = db_.Query("invest", MpfQuerySpec{{"wid"}, {}});
  ASSERT_TRUE(hash_result.ok());
  exec::ExecOptions options;
  options.join = exec::JoinAlgorithm::kSortMerge;
  options.agg = exec::AggAlgorithm::kSort;
  db_.set_exec_options(options);
  auto sort_result = db_.Query("invest", MpfQuerySpec{{"wid"}, {}});
  ASSERT_TRUE(sort_result.ok());
  EXPECT_TRUE(fr::TablesEqual(*hash_result->table, *sort_result->table, 1e-6));
}

TEST(MakeOptimizerTest, AllSpecsParse) {
  for (const std::string spec :
       {"cs", "CS", "cs+", "cs+linear", "cs+nonlinear", "ve(deg)",
        "ve(degree)", "ve(width)", "ve(elim_cost)", "ve(deg&width)",
        "ve(deg&elim_cost)", "ve(random)", "ve(min_fill)", "ve(deg) ext.",
        "ve(deg) ext", "ve(deg) ext+fd"}) {
    auto optimizer = MakeOptimizer(spec);
    EXPECT_TRUE(optimizer.ok()) << spec << ": " << optimizer.status();
  }
  EXPECT_FALSE(MakeOptimizer("").ok());
  EXPECT_FALSE(MakeOptimizer("postgres").ok());
}

}  // namespace
}  // namespace mpfdb
