// Unit and golden-snapshot tests for the logical->physical planning pass:
// per-algorithm cost formulas, admissibility rules (semiring order
// invariance, fold-context containment, the finite-memory hash rule),
// interesting-order propagation with sort skipping, Select(Scan) index
// fusion, force overrides, and planner determinism. Logical inputs are
// hand-annotated PlanNode trees with exact cardinalities, so every cost the
// planner computes — and therefore every choice — is a stable golden.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "plan/physical.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/schema.h"

namespace mpfdb {
namespace {

// --- Hand-annotated logical plan builders --------------------------------

std::shared_ptr<PlanNode> MakeScan(const std::string& table,
                                   std::vector<std::string> vars,
                                   double card) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kScan;
  node->table_name = table;
  node->output_vars = std::move(vars);
  node->est_card = card;
  return node;
}

std::shared_ptr<PlanNode> MakeJoin(PlanPtr left, PlanPtr right, double card) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kJoin;
  node->output_vars = varset::Union(left->output_vars, right->output_vars);
  node->left = std::move(left);
  node->right = std::move(right);
  node->est_card = card;
  return node;
}

std::shared_ptr<PlanNode> MakeGroupBy(PlanPtr child,
                                      std::vector<std::string> vars,
                                      double card) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kGroupBy;
  node->group_vars = vars;
  node->output_vars = std::move(vars);
  node->left = std::move(child);
  node->est_card = card;
  return node;
}

std::shared_ptr<PlanNode> MakeSelect(PlanPtr child, const std::string& var,
                                     VarValue value, double card) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNodeKind::kSelect;
  node->select_var = var;
  node->select_value = value;
  node->output_vars = child->output_vars;
  node->left = std::move(child);
  node->est_card = card;
  return node;
}

// The worked three-relation chain a(x,y) |x| b(y,z) |x| c(z,w), 10k rows
// each, inner join out 10k, top join out 1M, marginalized onto {z}. Under
// the page model the mixed plan (hash inner join, sort-merge top join whose
// (z) order lets the final sort-marginalize skip its sort) beats all-hash.
PlanPtr ChainOnZ() {
  auto a = MakeScan("a", {"x", "y"}, 10000);
  auto b = MakeScan("b", {"y", "z"}, 10000);
  auto c = MakeScan("c", {"z", "w"}, 10000);
  auto inner = MakeJoin(a, b, 10000);
  auto top = MakeJoin(inner, c, 1e6);
  return MakeGroupBy(top, {"z"}, 100);
}

std::unique_ptr<PhysicalPlanNode> PlanOrDie(const PlanNode& root,
                                            Semiring semiring,
                                            const CostModel& model,
                                            PhysicalPlannerOptions options = {},
                                            const Catalog* catalog = nullptr) {
  static const Catalog empty_catalog;
  PhysicalPlanner planner(catalog != nullptr ? *catalog : empty_catalog,
                          model, semiring, options);
  auto physical = planner.PlanTree(root);
  EXPECT_TRUE(physical.ok()) << physical.status();
  return std::move(*physical);
}

// --- Per-algorithm cost formulas -----------------------------------------

TEST(PhysicalPlanCost, PageModelPerAlgorithmFormulas) {
  PageCostModel model(100.0);  // unbounded memory
  const double lg100 = std::log2(100.0);

  // 10k rows = 100 pages per operand.
  EXPECT_DOUBLE_EQ(model.HashJoinCost(10000, 10000), 200.0);
  EXPECT_DOUBLE_EQ(model.SortMergeJoinCost(10000, 10000, true, true), 200.0);
  EXPECT_DOUBLE_EQ(model.SortMergeJoinCost(10000, 10000, false, false),
                   200.0 + 2.0 * 100.0 * lg100);
  EXPECT_DOUBLE_EQ(model.SortMergeJoinCost(10000, 10000, true, false),
                   200.0 + 100.0 * lg100);
  EXPECT_DOUBLE_EQ(model.NestedLoopJoinCost(10000, 10000),
                   100.0 + 100.0 * 100.0);

  // 1M input rows = 10k pages; 100 output rows = 1 page.
  EXPECT_DOUBLE_EQ(model.HashGroupByCost(1e6, 100), 2.0 * 10000.0 + 1.0);
  EXPECT_DOUBLE_EQ(model.SortGroupByCost(1e6, /*input_sorted=*/true), 10000.0);
  EXPECT_DOUBLE_EQ(model.SortGroupByCost(1e6, /*input_sorted=*/false),
                   10000.0 * std::log2(10000.0) + 10000.0);
  // The presorted streaming fold is cheaper than hashing the same input —
  // this gap is what pays for an order-producing plan below a GroupBy.
  EXPECT_LT(model.SortGroupByCost(1e6, true), model.HashGroupByCost(1e6, 100));
}

TEST(PhysicalPlanCost, GracePenaltyChargesOverflowPages) {
  // 10 pages of working memory; a 100-page build side overflows by 90
  // pages, each written and re-read once.
  PageCostModel tight(100.0, /*memory_pages=*/10.0);
  PageCostModel roomy(100.0);
  EXPECT_DOUBLE_EQ(tight.HashJoinCost(10000, 10000),
                   roomy.HashJoinCost(10000, 10000) + 2.0 * 90.0);
  EXPECT_DOUBLE_EQ(tight.SortMergeJoinCost(10000, 10000, false, false),
                   roomy.SortMergeJoinCost(10000, 10000, false, false) +
                       2.0 * 2.0 * 90.0);
  EXPECT_DOUBLE_EQ(tight.SortGroupByCost(10000, false),
                   roomy.SortGroupByCost(10000, false) + 2.0 * 90.0);
  // Fits-in-memory operands are unaffected.
  EXPECT_DOUBLE_EQ(tight.HashJoinCost(500, 500), roomy.HashJoinCost(500, 500));
}

TEST(PhysicalPlanCost, BaseModelDefaultsDelegate) {
  // Derived models that predate the physical planner keep working: hash
  // costs fall back to the generic JoinCost/GroupByCost.
  SimpleCostModel model;
  EXPECT_DOUBLE_EQ(model.HashJoinCost(300, 40), model.JoinCost(300, 40));
  EXPECT_DOUBLE_EQ(model.HashGroupByCost(300, 40), model.GroupByCost(300));
  EXPECT_DOUBLE_EQ(model.SortMergeJoinCost(300, 40, true, true), 340.0);
  EXPECT_DOUBLE_EQ(model.NestedLoopJoinCost(300, 40), 12000.0);
  EXPECT_DOUBLE_EQ(model.SortGroupByCost(300, true), 300.0);
}

TEST(PhysicalPlanCost, AddOrderInvariancePerSemiring) {
  EXPECT_FALSE(Semiring::SumProduct().AddIsOrderInvariant());
  EXPECT_FALSE(Semiring::LogSumProduct().AddIsOrderInvariant());
  EXPECT_TRUE(Semiring::MinSum().AddIsOrderInvariant());
  EXPECT_TRUE(Semiring::MaxSum().AddIsOrderInvariant());
  EXPECT_TRUE(Semiring::MaxProduct().AddIsOrderInvariant());
  EXPECT_TRUE(Semiring::BoolOrAnd().AddIsOrderInvariant());
}

// --- Golden physical plans ------------------------------------------------

TEST(PhysicalPlanGolden, MixedAlgorithmsInOneQuery) {
  auto root = ChainOnZ();
  PageCostModel model(100.0);
  auto phys = PlanOrDie(*root, Semiring::SumProduct(), model);

  // The chosen plan mixes join algorithms: the inner join stays hash (its
  // sort-merge order over (y) helps nobody, and under sum-product the fold
  // context was reset by the top join anyway), while the top join goes
  // sort-merge because its (z) order lets the GroupBy{z} stream.
  ASSERT_EQ(phys->kind, PlanNodeKind::kGroupBy);
  EXPECT_EQ(phys->agg, AggAlgorithm::kSort);
  EXPECT_TRUE(phys->skip_sort_input);
  ASSERT_EQ(phys->left->kind, PlanNodeKind::kJoin);
  EXPECT_EQ(phys->left->join, JoinAlgorithm::kSortMerge);
  EXPECT_EQ(phys->left->output_order, std::vector<std::string>{"z"});
  EXPECT_FALSE(phys->left->skip_sort_left);
  EXPECT_FALSE(phys->left->skip_sort_right);
  ASSERT_EQ(phys->left->left->kind, PlanNodeKind::kJoin);
  EXPECT_EQ(phys->left->left->join, JoinAlgorithm::kHash);

  // Exact total: 3 scans (100 pages each) + hash inner join (200) +
  // sort-merge top join with both sides sorted here (200 + 2*100*lg 100)
  // + streaming presorted sort-marginalize over 10k pages.
  const double expected = 300.0 + 200.0 +
                          (200.0 + 2.0 * 100.0 * std::log2(100.0)) + 10000.0;
  EXPECT_DOUBLE_EQ(phys->total_cost, expected);

  const std::string explain = ExplainPhysicalPlan(*phys);
  EXPECT_EQ(explain,
            "GroupBy{z}  [agg=sort presorted order=(z) est=100 cost=12028.8]\n"
            "  ProductJoin  [join=sort_merge order=(z) est=1e+06 "
            "cost=2028.77]\n"
            "    ProductJoin  [join=hash est=10000 cost=400]\n"
            "      Scan(a)  [est=10000 cost=100]\n"
            "      Scan(b)  [est=10000 cost=100]\n"
            "    Scan(c)  [est=10000 cost=100]\n");
}

TEST(PhysicalPlanGolden, SumSemiringOrderRuleForcesHash) {
  // Same chain marginalized onto {x}: the top join's shared variables {z}
  // are not contained in the fold's group variables, so reordering its
  // emission could reassociate sum-product Adds — sort-merge is
  // inadmissible and everything stays hash.
  auto a = MakeScan("a", {"x", "y"}, 10000);
  auto b = MakeScan("b", {"y", "z"}, 10000);
  auto c = MakeScan("c", {"z", "w"}, 10000);
  auto root = MakeGroupBy(MakeJoin(MakeJoin(a, b, 10000), c, 1e6),
                          {"x"}, 100);
  PageCostModel model(100.0);
  auto phys = PlanOrDie(*root, Semiring::SumProduct(), model);

  EXPECT_EQ(phys->agg, AggAlgorithm::kHash);
  EXPECT_EQ(phys->left->join, JoinAlgorithm::kHash);
  EXPECT_EQ(phys->left->left->join, JoinAlgorithm::kHash);
  const std::string explain = ExplainPhysicalPlan(*phys);
  EXPECT_EQ(explain.find("sort_merge"), std::string::npos) << explain;
  EXPECT_EQ(explain.find("nested_loop"), std::string::npos) << explain;
}

TEST(PhysicalPlanGolden, OrderInvariantSemiringUnlocksSortMerge) {
  // Join sharing (z,q) under GroupBy{z}: the shared set is NOT contained in
  // the group variables, so sum-product must refuse sort-merge — but
  // max-product's Add is order-invariant, the admissibility gate passes,
  // and the (z,q) order (of which the group key (z) is a prefix) lets the
  // marginalize stream.
  auto mk = [] {
    auto a = MakeScan("a", {"x", "z", "q"}, 10000);
    auto b = MakeScan("b", {"z", "q", "w"}, 10000);
    return MakeGroupBy(MakeJoin(a, b, 1e6), {"z"}, 100);
  };
  PageCostModel model(100.0);

  auto sum = PlanOrDie(*mk(), Semiring::SumProduct(), model);
  EXPECT_EQ(sum->left->join, JoinAlgorithm::kHash);
  EXPECT_EQ(sum->agg, AggAlgorithm::kHash);

  auto max = PlanOrDie(*mk(), Semiring::MaxProduct(), model);
  EXPECT_EQ(max->left->join, JoinAlgorithm::kSortMerge);
  EXPECT_EQ(max->left->output_order, (std::vector<std::string>{"z", "q"}));
  EXPECT_EQ(max->agg, AggAlgorithm::kSort);
  EXPECT_TRUE(max->skip_sort_input);
}

TEST(PhysicalPlanGolden, FiniteMemoryStaysOnSpillCapableHash) {
  // Order-invariant semiring, so only the memory rule is in play: with any
  // finite planner-visible budget, auto mode must keep the spill-capable
  // hash operators everywhere (sorts cannot spill).
  auto root = ChainOnZ();
  PageCostModel model(100.0);
  PhysicalPlannerOptions options;
  options.memory_limit = 64 * 1024;
  auto phys = PlanOrDie(*root, Semiring::MaxProduct(), model, options);

  EXPECT_EQ(phys->agg, AggAlgorithm::kHash);
  EXPECT_EQ(phys->left->join, JoinAlgorithm::kHash);
  EXPECT_EQ(phys->left->left->join, JoinAlgorithm::kHash);
}

TEST(PhysicalPlanGolden, ForcedOverridesApplyToEveryNode) {
  auto root = ChainOnZ();
  PageCostModel model(100.0);

  // Forcing sort-merge applies even where auto mode would refuse it (the
  // inner join, under sum-product) — forcing bypasses admissibility.
  PhysicalPlannerOptions force_sm;
  force_sm.force_join = JoinAlgorithm::kSortMerge;
  force_sm.force_agg = AggAlgorithm::kSort;
  auto sm = PlanOrDie(*root, Semiring::SumProduct(), model, force_sm);
  EXPECT_EQ(sm->agg, AggAlgorithm::kSort);
  EXPECT_EQ(sm->left->join, JoinAlgorithm::kSortMerge);
  EXPECT_EQ(sm->left->left->join, JoinAlgorithm::kSortMerge);

  PhysicalPlannerOptions force_nl;
  force_nl.force_join = JoinAlgorithm::kNestedLoop;
  auto nl = PlanOrDie(*root, Semiring::SumProduct(), model, force_nl);
  EXPECT_EQ(nl->left->join, JoinAlgorithm::kNestedLoop);
  EXPECT_EQ(nl->left->left->join, JoinAlgorithm::kNestedLoop);

  PhysicalPlannerOptions force_hash;
  force_hash.force_join = JoinAlgorithm::kHash;
  force_hash.force_agg = AggAlgorithm::kHash;
  auto hash = PlanOrDie(*root, Semiring::MaxProduct(), model, force_hash);
  EXPECT_EQ(hash->agg, AggAlgorithm::kHash);
  EXPECT_EQ(hash->left->join, JoinAlgorithm::kHash);
  EXPECT_EQ(hash->left->left->join, JoinAlgorithm::kHash);
}

TEST(PhysicalPlanGolden, IndexFusionCollapsesSelectOverScan) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 8).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 8).ok());
  auto t = std::make_shared<Table>("t", Schema({"x", "y"}, "f"));
  for (VarValue x = 0; x < 8; ++x) {
    for (VarValue y = 0; y < 8; ++y) t->AppendRow({x, y}, 1.0);
  }
  ASSERT_TRUE(catalog.RegisterTable(t).ok());
  ASSERT_TRUE(catalog.CreateIndex("t", "x").ok());

  auto root = MakeSelect(MakeScan("t", {"x", "y"}, 600), "x", 3, 75);
  PageCostModel model(100.0);

  auto fused = PlanOrDie(*root, Semiring::SumProduct(), model, {}, &catalog);
  ASSERT_EQ(fused->kind, PlanNodeKind::kIndexScan);
  EXPECT_TRUE(fused->index_fused);
  EXPECT_EQ(fused->left, nullptr);
  // The fused leaf keeps a pointer at the Select it absorbed, and renders
  // with the scanned table plus the lookup key. The dense index on x gets an
  // MPH backing, so the lookup is costed at the perfect-hash rate (0.5 + 1
  // output page) rather than the generic 1 + 1.
  EXPECT_EQ(fused->logical, root.get());
  EXPECT_EQ(ExplainPhysicalPlan(*fused),
            "IndexScan(t, x=3)  [fused est=75 cost=1.5]\n");

  // With the MPH costing knob off the same index is costed generically.
  PhysicalPlannerOptions no_mph;
  no_mph.mph_indexes = false;
  auto generic = PlanOrDie(*root, Semiring::SumProduct(), model, no_mph,
                           &catalog);
  ASSERT_EQ(generic->kind, PlanNodeKind::kIndexScan);
  EXPECT_EQ(ExplainPhysicalPlan(*generic),
            "IndexScan(t, x=3)  [fused est=75 cost=2]\n");

  // No index on y: the pair stays Select over Scan.
  auto no_index =
      MakeSelect(MakeScan("t", {"x", "y"}, 600), "y", 3, 75);
  auto unfused =
      PlanOrDie(*no_index, Semiring::SumProduct(), model, {}, &catalog);
  ASSERT_EQ(unfused->kind, PlanNodeKind::kSelect);
  ASSERT_NE(unfused->left, nullptr);
  EXPECT_EQ(unfused->left->kind, PlanNodeKind::kScan);

  // Fusion disabled by option.
  PhysicalPlannerOptions no_fusion;
  no_fusion.allow_index_fusion = false;
  auto off = PlanOrDie(*root, Semiring::SumProduct(), model, no_fusion,
                       &catalog);
  EXPECT_EQ(off->kind, PlanNodeKind::kSelect);
}

TEST(PhysicalPlanGolden, PlannerIsDeterministicAndCloneIsFaithful) {
  auto root = ChainOnZ();
  PageCostModel model(100.0);
  auto first = PlanOrDie(*root, Semiring::SumProduct(), model);
  auto second = PlanOrDie(*root, Semiring::SumProduct(), model);
  EXPECT_EQ(ExplainPhysicalPlan(*first), ExplainPhysicalPlan(*second));
  auto clone = first->Clone();
  EXPECT_EQ(ExplainPhysicalPlan(*first), ExplainPhysicalPlan(*clone));
}

}  // namespace
}  // namespace mpfdb
