// Operator-level tests of the Volcano execution engine, including edge cases
// (empty inputs, no shared variables, duplicate keys) and cross-checks
// between the three join algorithms and two aggregation algorithms.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "fr/algebra.h"
#include "util/rng.h"

namespace mpfdb::exec {
namespace {

TablePtr MakeTable(const std::string& name, std::vector<std::string> vars,
                   std::vector<std::pair<std::vector<VarValue>, double>> rows) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  for (auto& [v, m] : rows) t->AppendRow(v, m);
  return t;
}

TablePtr RandomTable(const std::string& name, std::vector<std::string> vars,
                     std::vector<int64_t> domains, size_t rows, Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, rng.UniformDouble(0.5, 2.0));
  }
  return t;
}

TEST(SeqScanTest, StreamsAllRows) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 2.0}});
  SeqScan scan(t);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 0);
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 1);
  EXPECT_FALSE(*scan.Next(&row));
  scan.Close();
  // Re-open rewinds.
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 0);
}

TEST(FilterTest, PassesMatchingRows) {
  TablePtr t = MakeTable("t", {"x", "y"},
                         {{{0, 1}, 1.0}, {{1, 1}, 2.0}, {{1, 2}, 3.0}});
  Filter filter(std::make_unique<SeqScan>(t), "x", 1);
  auto result = ::mpfdb::exec::Run(filter, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 2u);
}

TEST(FilterTest, UnknownVariableFailsAtOpen) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  Filter filter(std::make_unique<SeqScan>(t), "zz", 1);
  EXPECT_FALSE(filter.Open().ok());
}

TEST(MeasureFilterTest, FiltersOnMeasure) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 5.0}, {{2}, 3.0}});
  MeasureFilter filter(std::make_unique<SeqScan>(t),
                       HavingClause{CompareOp::kGe, 3.0});
  auto result = ::mpfdb::exec::Run(filter, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 2u);
}

TEST(StreamProjectTest, DropsColumns) {
  TablePtr t = MakeTable("t", {"x", "y", "z"}, {{{1, 2, 3}, 4.0}});
  StreamProject project(std::make_unique<SeqScan>(t), {"z", "x"});
  auto result = ::mpfdb::exec::Run(project, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().variables(),
            (std::vector<std::string>{"z", "x"}));
  EXPECT_EQ((*result)->Row(0).var(0), 3);
  EXPECT_EQ((*result)->Row(0).var(1), 1);
}

class JoinAlgorithmTest : public ::testing::TestWithParam<JoinAlgorithm> {
 protected:
  OperatorPtr MakeJoin(TablePtr left, TablePtr right) {
    switch (GetParam()) {
      case JoinAlgorithm::kSortMerge:
        return std::make_unique<SortMergeProductJoin>(
            std::make_unique<SeqScan>(left), std::make_unique<SeqScan>(right),
            Semiring::SumProduct());
      case JoinAlgorithm::kNestedLoop:
        return std::make_unique<NestedLoopProductJoin>(
            std::make_unique<SeqScan>(left), std::make_unique<SeqScan>(right),
            Semiring::SumProduct());
      case JoinAlgorithm::kAuto:
      case JoinAlgorithm::kHash:
      case JoinAlgorithm::kLeapfrog:  // n-ary only; not a binary algorithm
        break;
    }
    return std::make_unique<HashProductJoin>(std::make_unique<SeqScan>(left),
                                             std::make_unique<SeqScan>(right),
                                             Semiring::SumProduct());
  }

  // Canonically sorted result of joining left and right.
  TablePtr JoinTables(TablePtr left, TablePtr right) {
    OperatorPtr join = MakeJoin(std::move(left), std::move(right));
    auto result = ::mpfdb::exec::Run(*join, "out");
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<size_t> all((*result)->schema().arity());
    std::iota(all.begin(), all.end(), 0);
    (*result)->SortByVariables(all);
    return *result;
  }
};

TEST_P(JoinAlgorithmTest, MatchesReferenceAlgebra) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int trial = 0; trial < 5; ++trial) {
    TablePtr a = RandomTable("a", {"x", "y"}, {6, 4}, 15, rng);
    TablePtr b = RandomTable("b", {"y", "z"}, {4, 5}, 12, rng);
    auto expected = fr::ProductJoin(*a, *b, Semiring::SumProduct(), "ref");
    ASSERT_TRUE(expected.ok());
    TablePtr actual = JoinTables(a, b);
    EXPECT_TRUE(fr::TablesEqual(**expected, *actual, 1e-12)) << trial;
  }
}

TEST_P(JoinAlgorithmTest, EmptyInputs) {
  TablePtr a = MakeTable("a", {"x", "y"}, {});
  TablePtr b = MakeTable("b", {"y", "z"}, {{{0, 0}, 1.0}});
  EXPECT_EQ(JoinTables(a, b)->NumRows(), 0u);
  EXPECT_EQ(JoinTables(b, a)->NumRows(), 0u);
  EXPECT_EQ(JoinTables(a, a)->NumRows(), 0u);
}

TEST_P(JoinAlgorithmTest, CrossProductWhenNoSharedVars) {
  TablePtr a = MakeTable("a", {"x"}, {{{0}, 2.0}, {{1}, 3.0}});
  TablePtr b = MakeTable("b", {"y"}, {{{0}, 5.0}, {{1}, 7.0}, {{2}, 11.0}});
  TablePtr result = JoinTables(a, b);
  EXPECT_EQ(result->NumRows(), 6u);
}

TEST_P(JoinAlgorithmTest, DuplicateKeysProducePairwiseProduct) {
  // Two rows per key on each side -> 4 output rows per key; the join output
  // here is NOT a functional relation (y alone doesn't determine the rest),
  // which is why plans marginalize afterwards.
  TablePtr a = MakeTable("a", {"x", "y"},
                         {{{0, 0}, 2.0}, {{1, 0}, 3.0}, {{2, 1}, 5.0}});
  TablePtr b = MakeTable("b", {"y", "z"},
                         {{{0, 0}, 7.0}, {{0, 1}, 11.0}, {{1, 0}, 13.0}});
  TablePtr result = JoinTables(a, b);
  EXPECT_EQ(result->NumRows(), 5u);  // 2*2 for y=0, 1*1 for y=1
  double total = 0;
  for (size_t i = 0; i < result->NumRows(); ++i) total += result->measure(i);
  EXPECT_DOUBLE_EQ(total, (2.0 + 3.0) * (7.0 + 11.0) + 5.0 * 13.0);
}

TEST_P(JoinAlgorithmTest, MultiVariableSharedKeys) {
  Rng rng(7);
  TablePtr a = RandomTable("a", {"x", "y", "z"}, {3, 3, 3}, 12, rng);
  TablePtr b = RandomTable("b", {"y", "z", "w"}, {3, 3, 3}, 12, rng);
  auto expected = fr::ProductJoin(*a, *b, Semiring::SumProduct(), "ref");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, *JoinTables(a, b), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(AllJoins, JoinAlgorithmTest,
                         ::testing::Values(JoinAlgorithm::kHash,
                                           JoinAlgorithm::kSortMerge,
                                           JoinAlgorithm::kNestedLoop),
                         [](const auto& info) {
                           switch (info.param) {
                             case JoinAlgorithm::kAuto:
                               return "auto";
                             case JoinAlgorithm::kHash:
                               return "hash";
                             case JoinAlgorithm::kSortMerge:
                               return "sort_merge";
                             case JoinAlgorithm::kNestedLoop:
                               return "nested_loop";
                             case JoinAlgorithm::kLeapfrog:
                               return "leapfrog";
                           }
                           return "unknown";
                         });

class AggAlgorithmTest : public ::testing::TestWithParam<AggAlgorithm> {
 protected:
  OperatorPtr MakeAgg(TablePtr input, std::vector<std::string> group_vars,
                      Semiring semiring) {
    if (GetParam() == AggAlgorithm::kSort) {
      return std::make_unique<SortMarginalize>(
          std::make_unique<SeqScan>(input), std::move(group_vars), semiring);
    }
    return std::make_unique<HashMarginalize>(std::make_unique<SeqScan>(input),
                                             std::move(group_vars), semiring);
  }
};

TEST_P(AggAlgorithmTest, MatchesReferenceAlgebra) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    TablePtr t = RandomTable("t", {"x", "y", "z"}, {4, 3, 5}, 30, rng);
    for (const Semiring semiring :
         {Semiring::SumProduct(), Semiring::MinSum(), Semiring::MaxProduct()}) {
      auto expected = fr::Marginalize(*t, {"y"}, semiring, "ref");
      ASSERT_TRUE(expected.ok());
      OperatorPtr agg = MakeAgg(t, {"y"}, semiring);
      auto actual = ::mpfdb::exec::Run(*agg, "out");
      ASSERT_TRUE(actual.ok());
      std::vector<size_t> all((*actual)->schema().arity());
      std::iota(all.begin(), all.end(), 0);
      (*actual)->SortByVariables(all);
      EXPECT_TRUE(fr::TablesEqual(**expected, **actual, 1e-12))
          << semiring.name();
    }
  }
}

TEST_P(AggAlgorithmTest, EmptyInput) {
  TablePtr t = MakeTable("t", {"x"}, {});
  OperatorPtr agg = MakeAgg(t, {"x"}, Semiring::SumProduct());
  auto result = ::mpfdb::exec::Run(*agg, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 0u);
}

TEST_P(AggAlgorithmTest, GroupByNothingYieldsScalar) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.5}, {{1}, 2.5}});
  OperatorPtr agg = MakeAgg(t, {}, Semiring::SumProduct());
  auto result = ::mpfdb::exec::Run(*agg, "out");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->NumRows(), 1u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 4.0);
}

TEST_P(AggAlgorithmTest, UnknownGroupVariableFailsAtOpen) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  OperatorPtr agg = MakeAgg(t, {"zz"}, Semiring::SumProduct());
  EXPECT_FALSE(agg->Open().ok());
}

INSTANTIATE_TEST_SUITE_P(AllAggs, AggAlgorithmTest,
                         ::testing::Values(AggAlgorithm::kHash,
                                           AggAlgorithm::kSort),
                         [](const auto& info) {
                           return info.param == AggAlgorithm::kHash ? "hash"
                                                                    : "sort";
                         });

// Test double that fails at a chosen point, for error-propagation coverage.
class FailingOperator : public PhysicalOperator {
 public:
  enum class FailAt { kOpen, kNextImmediately, kNextAfterOne };

  FailingOperator(TablePtr table, FailAt fail_at)
      : table_(std::move(table)), fail_at_(fail_at) {}

  Status Open() override {
    if (fail_at_ == FailAt::kOpen) {
      return Status::Internal("injected open failure");
    }
    emitted_ = 0;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row* row) override {
    if (fail_at_ == FailAt::kNextImmediately ||
        (fail_at_ == FailAt::kNextAfterOne && emitted_ >= 1)) {
      return Status::Internal("injected next failure");
    }
    if (emitted_ >= table_->NumRows()) return false;
    RowView view = table_->Row(emitted_++);
    row->vars.assign(view.vars, view.vars + view.arity);
    row->measure = view.measure;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override { return "FailingOperator"; }

 private:
  TablePtr table_;
  FailAt fail_at_;
  size_t emitted_ = 0;
};

class FailureInjectionTest
    : public ::testing::TestWithParam<FailingOperator::FailAt> {
 protected:
  OperatorPtr Failing(TablePtr t) {
    return std::make_unique<FailingOperator>(std::move(t), GetParam());
  }
};

TEST_P(FailureInjectionTest, ErrorsPropagateThroughEveryOperator) {
  TablePtr t = MakeTable("t", {"x", "y"}, {{{0, 0}, 1.0}, {{1, 0}, 2.0}});
  TablePtr other = MakeTable("o", {"y", "z"}, {{{0, 0}, 1.0}, {{0, 1}, 2.0}});
  Semiring sr = Semiring::SumProduct();

  // Unary operators.
  {
    Filter op(Failing(t), "x", 0);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    HashMarginalize op(Failing(t), {"x"}, sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    SortMarginalize op(Failing(t), {"x"}, sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    StreamProject op(Failing(t), {"x"});
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    MeasureFilter op(Failing(t), HavingClause{CompareOp::kGt, 0.0});
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }

  // Joins, failing child on either side.
  {
    HashProductJoin op(Failing(t), std::make_unique<SeqScan>(other), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    HashProductJoin op(std::make_unique<SeqScan>(other), Failing(t), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    SortMergeProductJoin op(Failing(t), std::make_unique<SeqScan>(other), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    NestedLoopProductJoin op(std::make_unique<SeqScan>(other), Failing(t), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    FailPoints, FailureInjectionTest,
    ::testing::Values(FailingOperator::FailAt::kOpen,
                      FailingOperator::FailAt::kNextImmediately,
                      FailingOperator::FailAt::kNextAfterOne),
    [](const auto& info) {
      switch (info.param) {
        case FailingOperator::FailAt::kOpen:
          return "open";
        case FailingOperator::FailAt::kNextImmediately:
          return "first_next";
        case FailingOperator::FailAt::kNextAfterOne:
          return "second_next";
      }
      return "unknown";
    });

TEST(ExecutorTest, ComposedPipeline) {
  // Filter -> Join -> Marginalize pipeline built by hand.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("z", 3).ok());
  auto a = MakeTable("a", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 4.0}});
  auto b = MakeTable("b", {"y", "z"}, {{{0, 0}, 3.0}, {{1, 2}, 5.0}});
  ASSERT_TRUE(catalog.RegisterTable(a).ok());
  ASSERT_TRUE(catalog.RegisterTable(b).ok());

  SimpleCostModel cost_model;
  PlanBuilder builder(catalog, cost_model);
  auto scan_a = builder.Scan("a");
  auto scan_b = builder.Scan("b");
  ASSERT_TRUE(scan_a.ok() && scan_b.ok());
  auto filtered = builder.Select(*scan_a, "x", 0);
  ASSERT_TRUE(filtered.ok());
  auto joined = builder.Join(*filtered, *scan_b);
  ASSERT_TRUE(joined.ok());
  auto grouped = builder.GroupBy(*joined, {"z"});
  ASSERT_TRUE(grouped.ok());

  Executor executor(catalog, Semiring::SumProduct());
  auto result = executor.Execute(**grouped, "out");
  ASSERT_TRUE(result.ok());
  // x=0 rows: (0,0;1),(0,1;2); join: (0,0,0;3), (0,1,2;10); group by z.
  ASSERT_EQ((*result)->NumRows(), 2u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 3.0);
  EXPECT_DOUBLE_EQ((*result)->measure(1), 10.0);
}

// --- Packed key codec --------------------------------------------------------

TEST(PackedKeyCodecTest, RoundTripsAndPreservesLexOrder) {
  auto codec = PackedKeyCodec::Make({4, 8});
  ASSERT_TRUE(codec.has_value());
  EXPECT_EQ(codec->num_vars(), 2u);
  std::vector<uint64_t> keys;
  for (VarValue a = 0; a < 4; ++a) {
    for (VarValue b = 0; b < 8; ++b) {
      VarValue vals[] = {a, b};
      uint64_t key = 0;
      ASSERT_TRUE(codec->Encode(vals, &key));
      VarValue decoded[2];
      codec->Decode(key, decoded);
      EXPECT_EQ(decoded[0], a);
      EXPECT_EQ(decoded[1], b);
      keys.push_back(key);
    }
  }
  // The enumeration above is lexicographic, so the packed keys must be
  // strictly increasing — HashMarginalize sorts on the packed integer and
  // relies on that matching tuple order.
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::set<uint64_t>(keys.begin(), keys.end()).size(), keys.size());
}

TEST(PackedKeyCodecTest, RejectsKeysWiderThan64Bits) {
  // 33 + 32 = 65 bits: no packed representation.
  EXPECT_FALSE(
      PackedKeyCodec::Make({int64_t{1} << 33, int64_t{1} << 32}).has_value());
  // 32 + 31 = 63 bits still fits.
  EXPECT_TRUE(
      PackedKeyCodec::Make({int64_t{1} << 32, int64_t{1} << 31}).has_value());
  // Degenerate domains are rejected outright.
  EXPECT_FALSE(PackedKeyCodec::Make({0}).has_value());
  EXPECT_FALSE(PackedKeyCodec::Make({4, -1}).has_value());
}

TEST(PackedKeyCodecTest, DetectsOutOfDomainValues) {
  auto codec = PackedKeyCodec::Make({4, 4});  // 2 bits per component
  ASSERT_TRUE(codec.has_value());
  uint64_t key = 0;
  VarValue ok_vals[] = {3, 3};
  EXPECT_TRUE(codec->Encode(ok_vals, &key));
  VarValue bad_vals[] = {4, 0};
  EXPECT_FALSE(codec->Encode(bad_vals, &key));
  // The columnar variant flags the same violation.
  VarValue col0[] = {0, 4};
  VarValue col1[] = {0, 0};
  const VarValue* cols[] = {col0, col1};
  uint64_t keys[2];
  EXPECT_FALSE(codec->EncodeColumnar(cols, 2, keys));
}

TEST(PackedKeyCodecTest, ColumnarMatchesScalarEncode) {
  Rng rng(17);
  auto codec = PackedKeyCodec::Make({6, 10, 3});
  ASSERT_TRUE(codec.has_value());
  constexpr size_t kN = 257;
  std::vector<VarValue> c0(kN), c1(kN), c2(kN);
  for (size_t r = 0; r < kN; ++r) {
    c0[r] = static_cast<VarValue>(rng.UniformInt(0, 5));
    c1[r] = static_cast<VarValue>(rng.UniformInt(0, 9));
    c2[r] = static_cast<VarValue>(rng.UniformInt(0, 2));
  }
  const VarValue* cols[] = {c0.data(), c1.data(), c2.data()};
  std::vector<uint64_t> keys(kN);
  ASSERT_TRUE(codec->EncodeColumnar(cols, kN, keys.data()));
  for (size_t r = 0; r < kN; ++r) {
    VarValue vals[] = {c0[r], c1[r], c2[r]};
    uint64_t key = 0;
    ASSERT_TRUE(codec->Encode(vals, &key));
    EXPECT_EQ(keys[r], key);
  }
}

// --- Vectorized execution ----------------------------------------------------

class BatchExecutionTest : public ::testing::Test {
 protected:
  static TablePtr Canon(StatusOr<TablePtr> result) {
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<size_t> all((*result)->schema().arity());
    std::iota(all.begin(), all.end(), 0);
    (*result)->SortByVariables(all);
    return *result;
  }

  // Builds the tree twice (an operator instance must not mix Next and
  // NextBatch) and demands bit-identical materialized output.
  template <typename MakeTree>
  static void ExpectParity(const MakeTree& make_tree) {
    OperatorPtr row_tree = make_tree();
    OperatorPtr batch_tree = make_tree();
    TablePtr by_row = Canon(::mpfdb::exec::Run(*row_tree, "out"));
    TablePtr by_batch = Canon(::mpfdb::exec::RunBatch(*batch_tree, "out"));
    ASSERT_EQ(by_row->NumRows(), by_batch->NumRows());
    EXPECT_TRUE(fr::TablesEqual(*by_row, *by_batch, 0.0));
  }
};

TEST_F(BatchExecutionTest, JoinAggPipelineBitIdentical) {
  // Inputs larger than one batch so the pipeline crosses batch boundaries;
  // run with packed keys (catalog), the vector-key fallback (no catalog),
  // and semirings whose Multiply is *, +, and max-compatible.
  Rng rng(31);
  TablePtr a = RandomTable("a", {"x", "y"}, {4096, 64}, 3000, rng);
  TablePtr b = RandomTable("b", {"y", "z"}, {64, 4096}, 3000, rng);
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 4096).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 64).ok());
  ASSERT_TRUE(catalog.RegisterVariable("z", 4096).ok());
  for (const Semiring semiring :
       {Semiring::SumProduct(), Semiring::MinSum(), Semiring::MaxProduct()}) {
    for (const Catalog* cat :
         {static_cast<const Catalog*>(&catalog), (const Catalog*)nullptr}) {
      ExpectParity([&]() -> OperatorPtr {
        auto join = std::make_unique<HashProductJoin>(
            std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b),
            semiring, cat);
        return std::make_unique<HashMarginalize>(
            std::move(join), std::vector<std::string>{"x", "y"}, semiring, cat);
      });
    }
  }
}

TEST_F(BatchExecutionTest, PackedAndVectorKeysAgree) {
  Rng rng(37);
  TablePtr a = RandomTable("a", {"x", "y"}, {512, 16}, 1500, rng);
  TablePtr b = RandomTable("b", {"y", "z"}, {16, 512}, 1500, rng);
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 512).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 16).ok());
  ASSERT_TRUE(catalog.RegisterVariable("z", 512).ok());
  Semiring sr = Semiring::SumProduct();
  auto make_tree = [&](const Catalog* cat) -> OperatorPtr {
    auto join = std::make_unique<HashProductJoin>(
        std::make_unique<SeqScan>(a), std::make_unique<SeqScan>(b), sr, cat);
    return std::make_unique<HashMarginalize>(
        std::move(join), std::vector<std::string>{"y"}, sr, cat);
  };
  OperatorPtr packed_tree = make_tree(&catalog);
  OperatorPtr vector_tree = make_tree(nullptr);
  TablePtr packed = Canon(::mpfdb::exec::RunBatch(*packed_tree, "out"));
  TablePtr vec = Canon(::mpfdb::exec::RunBatch(*vector_tree, "out"));
  EXPECT_TRUE(fr::TablesEqual(*packed, *vec, 0.0));
}

TEST_F(BatchExecutionTest, StreamingOperatorsBitIdentical) {
  Rng rng(32);
  TablePtr t = RandomTable("t", {"x", "y", "z"}, {64, 8, 64}, 2500, rng);
  ExpectParity([&]() -> OperatorPtr {
    auto filter =
        std::make_unique<Filter>(std::make_unique<SeqScan>(t), "y", 3);
    auto having = std::make_unique<MeasureFilter>(
        std::move(filter), HavingClause{CompareOp::kGt, 1.0});
    return std::make_unique<StreamProject>(std::move(having),
                                           std::vector<std::string>{"z", "x"});
  });
}

TEST_F(BatchExecutionTest, GroupByNothingBitIdentical) {
  // Exercises the zero-arity packed codec (every row keys to 0).
  Rng rng(34);
  TablePtr t = RandomTable("t", {"x"}, {4096}, 2000, rng);
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 4096).ok());
  ExpectParity([&]() -> OperatorPtr {
    return std::make_unique<HashMarginalize>(std::make_unique<SeqScan>(t),
                                             std::vector<std::string>{},
                                             Semiring::SumProduct(), &catalog);
  });
}

TEST_F(BatchExecutionTest, DefaultAdapterCoversRowOnlyOperators) {
  // SortMarginalize now has a native NextBatch, but this test still pins the
  // batch-vs-row parity contract for it (RunBatch vs Run, bit for bit).
  Rng rng(33);
  TablePtr t = RandomTable("t", {"x", "y"}, {512, 8}, 2000, rng);
  ExpectParity([&]() -> OperatorPtr {
    return std::make_unique<SortMarginalize>(std::make_unique<SeqScan>(t),
                                             std::vector<std::string>{"y"},
                                             Semiring::SumProduct());
  });
}

TEST_F(BatchExecutionTest, EmptyInputs) {
  TablePtr empty = MakeTable("e", {"x", "y"}, {});
  TablePtr other = MakeTable("o", {"y", "z"}, {{{0, 0}, 1.0}});
  Semiring sr = Semiring::SumProduct();
  {
    HashProductJoin join(std::make_unique<SeqScan>(empty),
                         std::make_unique<SeqScan>(other), sr);
    auto result = ::mpfdb::exec::RunBatch(join, "out");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)->NumRows(), 0u);
  }
  {
    HashProductJoin join(std::make_unique<SeqScan>(other),
                         std::make_unique<SeqScan>(empty), sr);
    auto result = ::mpfdb::exec::RunBatch(join, "out");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)->NumRows(), 0u);
  }
  {
    HashMarginalize agg(std::make_unique<SeqScan>(empty),
                        std::vector<std::string>{"x"}, sr);
    auto result = ::mpfdb::exec::RunBatch(agg, "out");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)->NumRows(), 0u);
  }
}

TEST_F(BatchExecutionTest, ErrorsPropagateThroughRunBatch) {
  TablePtr t = MakeTable("t", {"x", "y"}, {{{0, 0}, 1.0}, {{1, 0}, 2.0}});
  TablePtr other = MakeTable("o", {"y", "z"}, {{{0, 0}, 1.0}});
  Semiring sr = Semiring::SumProduct();
  for (auto fail_at : {FailingOperator::FailAt::kOpen,
                       FailingOperator::FailAt::kNextImmediately,
                       FailingOperator::FailAt::kNextAfterOne}) {
    {
      HashMarginalize op(std::make_unique<FailingOperator>(t, fail_at), {"x"},
                         sr);
      EXPECT_FALSE(::mpfdb::exec::RunBatch(op, "out").ok());
    }
    {
      HashProductJoin op(std::make_unique<FailingOperator>(t, fail_at),
                         std::make_unique<SeqScan>(other), sr);
      EXPECT_FALSE(::mpfdb::exec::RunBatch(op, "out").ok());
    }
    {
      HashProductJoin op(std::make_unique<SeqScan>(other),
                         std::make_unique<FailingOperator>(t, fail_at), sr);
      EXPECT_FALSE(::mpfdb::exec::RunBatch(op, "out").ok());
    }
  }
}

TEST_F(BatchExecutionTest, OutOfDomainValueFailsUnderPackedKeys) {
  // The catalog declares dom(x) = 2 but the data contains x = 5: the packed
  // batch path must fail loudly rather than silently corrupt keys. The row
  // path ignores domain statistics and still succeeds.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 2).ok());
  TablePtr t = MakeTable("t", {"x", "y"}, {{{0, 0}, 1.0}, {{5, 1}, 2.0}});
  Semiring sr = Semiring::SumProduct();
  {
    HashMarginalize agg(std::make_unique<SeqScan>(t),
                        std::vector<std::string>{"x"}, sr, &catalog);
    auto result = ::mpfdb::exec::RunBatch(agg, "out");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    TablePtr u = MakeTable("u", {"y"}, {{{5}, 1.0}});
    HashProductJoin join(std::make_unique<SeqScan>(u),
                         std::make_unique<SeqScan>(t), sr, &catalog);
    EXPECT_FALSE(::mpfdb::exec::RunBatch(join, "out").ok());
  }
  {
    HashMarginalize agg(std::make_unique<SeqScan>(t),
                        std::vector<std::string>{"x"}, sr, &catalog);
    EXPECT_TRUE(::mpfdb::exec::Run(agg, "out").ok());
  }
}

TEST_F(BatchExecutionTest, ExecutorRespectsVectorizedOption) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 64).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 8).ok());
  Rng rng(35);
  TablePtr t = RandomTable("t", {"x", "y"}, {64, 8}, 300, rng);
  ASSERT_TRUE(catalog.RegisterTable(t).ok());
  SimpleCostModel cost_model;
  PlanBuilder builder(catalog, cost_model);
  auto scan = builder.Scan("t");
  ASSERT_TRUE(scan.ok());
  auto grouped = builder.GroupBy(*scan, {"y"});
  ASSERT_TRUE(grouped.ok());

  TablePtr results[4];
  int i = 0;
  for (bool vectorized : {false, true}) {
    for (bool packed : {false, true}) {
      ExecOptions options;
      options.vectorized = vectorized;
      options.packed_keys = packed;
      Executor executor(catalog, Semiring::SumProduct(), options);
      auto result = executor.Execute(**grouped, "out");
      ASSERT_TRUE(result.ok()) << result.status();
      results[i++] = *result;
    }
  }
  for (int j = 1; j < 4; ++j) {
    EXPECT_TRUE(fr::TablesEqual(*results[0], *results[j], 0.0)) << j;
  }
}

TEST(ExecutorTest, MissingTableFails) {
  Catalog catalog;
  SimpleCostModel cost_model;
  ASSERT_TRUE(catalog.RegisterVariable("x", 2).ok());
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  ASSERT_TRUE(catalog.RegisterTable(t).ok());
  PlanBuilder builder(catalog, cost_model);
  auto scan = builder.Scan("t");
  ASSERT_TRUE(scan.ok());
  // Executing against a different catalog without the table fails.
  Catalog empty;
  Executor executor(empty, Semiring::SumProduct());
  EXPECT_FALSE(executor.Execute(**scan, "out").ok());
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 257;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  Status s = pool.ParallelFor(kTasks, [&](size_t i) {
    runs[i].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s;
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReportsLowestIndexedFailure) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 20; ++rep) {
    Status s = pool.ParallelFor(64, [&](size_t i) {
      if (i == 7 || i == 50) {
        return Status::Internal("task " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(s.ok());
    // Task 50 may have been abandoned after 7 failed, but whenever both ran,
    // the lowest index wins; 7 always runs before abandonment can skip it.
    EXPECT_EQ(s.message(), "task 7") << rep;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  Status s = pool.ParallelFor(8, [&](size_t) {
    return pool.ParallelFor(8, [&](size_t) {
      total.fetch_add(1);
      return Status::Ok();
    });
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineAndSequentially) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  Status s = pool.ParallelFor(16, [&](size_t i) {
    order.push_back(i);  // safe: everything runs on this thread
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s;
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace mpfdb::exec
