// Operator-level tests of the Volcano execution engine, including edge cases
// (empty inputs, no shared variables, duplicate keys) and cross-checks
// between the three join algorithms and two aggregation algorithms.

#include <memory>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operator.h"
#include "fr/algebra.h"
#include "util/rng.h"

namespace mpfdb::exec {
namespace {

TablePtr MakeTable(const std::string& name, std::vector<std::string> vars,
                   std::vector<std::pair<std::vector<VarValue>, double>> rows) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  for (auto& [v, m] : rows) t->AppendRow(v, m);
  return t;
}

TablePtr RandomTable(const std::string& name, std::vector<std::string> vars,
                     std::vector<int64_t> domains, size_t rows, Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, rng.UniformDouble(0.5, 2.0));
  }
  return t;
}

TEST(SeqScanTest, StreamsAllRows) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 2.0}});
  SeqScan scan(t);
  ASSERT_TRUE(scan.Open().ok());
  Row row;
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 0);
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 1);
  EXPECT_FALSE(*scan.Next(&row));
  scan.Close();
  // Re-open rewinds.
  ASSERT_TRUE(scan.Open().ok());
  ASSERT_TRUE(*scan.Next(&row));
  EXPECT_EQ(row.vars[0], 0);
}

TEST(FilterTest, PassesMatchingRows) {
  TablePtr t = MakeTable("t", {"x", "y"},
                         {{{0, 1}, 1.0}, {{1, 1}, 2.0}, {{1, 2}, 3.0}});
  Filter filter(std::make_unique<SeqScan>(t), "x", 1);
  auto result = ::mpfdb::exec::Run(filter, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 2u);
}

TEST(FilterTest, UnknownVariableFailsAtOpen) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  Filter filter(std::make_unique<SeqScan>(t), "zz", 1);
  EXPECT_FALSE(filter.Open().ok());
}

TEST(MeasureFilterTest, FiltersOnMeasure) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}, {{1}, 5.0}, {{2}, 3.0}});
  MeasureFilter filter(std::make_unique<SeqScan>(t),
                       HavingClause{CompareOp::kGe, 3.0});
  auto result = ::mpfdb::exec::Run(filter, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 2u);
}

TEST(StreamProjectTest, DropsColumns) {
  TablePtr t = MakeTable("t", {"x", "y", "z"}, {{{1, 2, 3}, 4.0}});
  StreamProject project(std::make_unique<SeqScan>(t), {"z", "x"});
  auto result = ::mpfdb::exec::Run(project, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->schema().variables(),
            (std::vector<std::string>{"z", "x"}));
  EXPECT_EQ((*result)->Row(0).var(0), 3);
  EXPECT_EQ((*result)->Row(0).var(1), 1);
}

class JoinAlgorithmTest : public ::testing::TestWithParam<JoinAlgorithm> {
 protected:
  OperatorPtr MakeJoin(TablePtr left, TablePtr right) {
    switch (GetParam()) {
      case JoinAlgorithm::kSortMerge:
        return std::make_unique<SortMergeProductJoin>(
            std::make_unique<SeqScan>(left), std::make_unique<SeqScan>(right),
            Semiring::SumProduct());
      case JoinAlgorithm::kNestedLoop:
        return std::make_unique<NestedLoopProductJoin>(
            std::make_unique<SeqScan>(left), std::make_unique<SeqScan>(right),
            Semiring::SumProduct());
      case JoinAlgorithm::kHash:
        break;
    }
    return std::make_unique<HashProductJoin>(std::make_unique<SeqScan>(left),
                                             std::make_unique<SeqScan>(right),
                                             Semiring::SumProduct());
  }

  // Canonically sorted result of joining left and right.
  TablePtr JoinTables(TablePtr left, TablePtr right) {
    OperatorPtr join = MakeJoin(std::move(left), std::move(right));
    auto result = ::mpfdb::exec::Run(*join, "out");
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<size_t> all((*result)->schema().arity());
    std::iota(all.begin(), all.end(), 0);
    (*result)->SortByVariables(all);
    return *result;
  }
};

TEST_P(JoinAlgorithmTest, MatchesReferenceAlgebra) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  for (int trial = 0; trial < 5; ++trial) {
    TablePtr a = RandomTable("a", {"x", "y"}, {6, 4}, 15, rng);
    TablePtr b = RandomTable("b", {"y", "z"}, {4, 5}, 12, rng);
    auto expected = fr::ProductJoin(*a, *b, Semiring::SumProduct(), "ref");
    ASSERT_TRUE(expected.ok());
    TablePtr actual = JoinTables(a, b);
    EXPECT_TRUE(fr::TablesEqual(**expected, *actual, 1e-12)) << trial;
  }
}

TEST_P(JoinAlgorithmTest, EmptyInputs) {
  TablePtr a = MakeTable("a", {"x", "y"}, {});
  TablePtr b = MakeTable("b", {"y", "z"}, {{{0, 0}, 1.0}});
  EXPECT_EQ(JoinTables(a, b)->NumRows(), 0u);
  EXPECT_EQ(JoinTables(b, a)->NumRows(), 0u);
  EXPECT_EQ(JoinTables(a, a)->NumRows(), 0u);
}

TEST_P(JoinAlgorithmTest, CrossProductWhenNoSharedVars) {
  TablePtr a = MakeTable("a", {"x"}, {{{0}, 2.0}, {{1}, 3.0}});
  TablePtr b = MakeTable("b", {"y"}, {{{0}, 5.0}, {{1}, 7.0}, {{2}, 11.0}});
  TablePtr result = JoinTables(a, b);
  EXPECT_EQ(result->NumRows(), 6u);
}

TEST_P(JoinAlgorithmTest, DuplicateKeysProducePairwiseProduct) {
  // Two rows per key on each side -> 4 output rows per key; the join output
  // here is NOT a functional relation (y alone doesn't determine the rest),
  // which is why plans marginalize afterwards.
  TablePtr a = MakeTable("a", {"x", "y"},
                         {{{0, 0}, 2.0}, {{1, 0}, 3.0}, {{2, 1}, 5.0}});
  TablePtr b = MakeTable("b", {"y", "z"},
                         {{{0, 0}, 7.0}, {{0, 1}, 11.0}, {{1, 0}, 13.0}});
  TablePtr result = JoinTables(a, b);
  EXPECT_EQ(result->NumRows(), 5u);  // 2*2 for y=0, 1*1 for y=1
  double total = 0;
  for (size_t i = 0; i < result->NumRows(); ++i) total += result->measure(i);
  EXPECT_DOUBLE_EQ(total, (2.0 + 3.0) * (7.0 + 11.0) + 5.0 * 13.0);
}

TEST_P(JoinAlgorithmTest, MultiVariableSharedKeys) {
  Rng rng(7);
  TablePtr a = RandomTable("a", {"x", "y", "z"}, {3, 3, 3}, 12, rng);
  TablePtr b = RandomTable("b", {"y", "z", "w"}, {3, 3, 3}, 12, rng);
  auto expected = fr::ProductJoin(*a, *b, Semiring::SumProduct(), "ref");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, *JoinTables(a, b), 1e-12));
}

INSTANTIATE_TEST_SUITE_P(AllJoins, JoinAlgorithmTest,
                         ::testing::Values(JoinAlgorithm::kHash,
                                           JoinAlgorithm::kSortMerge,
                                           JoinAlgorithm::kNestedLoop),
                         [](const auto& info) {
                           switch (info.param) {
                             case JoinAlgorithm::kHash:
                               return "hash";
                             case JoinAlgorithm::kSortMerge:
                               return "sort_merge";
                             case JoinAlgorithm::kNestedLoop:
                               return "nested_loop";
                           }
                           return "unknown";
                         });

class AggAlgorithmTest : public ::testing::TestWithParam<AggAlgorithm> {
 protected:
  OperatorPtr MakeAgg(TablePtr input, std::vector<std::string> group_vars,
                      Semiring semiring) {
    if (GetParam() == AggAlgorithm::kSort) {
      return std::make_unique<SortMarginalize>(
          std::make_unique<SeqScan>(input), std::move(group_vars), semiring);
    }
    return std::make_unique<HashMarginalize>(std::make_unique<SeqScan>(input),
                                             std::move(group_vars), semiring);
  }
};

TEST_P(AggAlgorithmTest, MatchesReferenceAlgebra) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    TablePtr t = RandomTable("t", {"x", "y", "z"}, {4, 3, 5}, 30, rng);
    for (const Semiring semiring :
         {Semiring::SumProduct(), Semiring::MinSum(), Semiring::MaxProduct()}) {
      auto expected = fr::Marginalize(*t, {"y"}, semiring, "ref");
      ASSERT_TRUE(expected.ok());
      OperatorPtr agg = MakeAgg(t, {"y"}, semiring);
      auto actual = ::mpfdb::exec::Run(*agg, "out");
      ASSERT_TRUE(actual.ok());
      std::vector<size_t> all((*actual)->schema().arity());
      std::iota(all.begin(), all.end(), 0);
      (*actual)->SortByVariables(all);
      EXPECT_TRUE(fr::TablesEqual(**expected, **actual, 1e-12))
          << semiring.name();
    }
  }
}

TEST_P(AggAlgorithmTest, EmptyInput) {
  TablePtr t = MakeTable("t", {"x"}, {});
  OperatorPtr agg = MakeAgg(t, {"x"}, Semiring::SumProduct());
  auto result = ::mpfdb::exec::Run(*agg, "out");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->NumRows(), 0u);
}

TEST_P(AggAlgorithmTest, GroupByNothingYieldsScalar) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.5}, {{1}, 2.5}});
  OperatorPtr agg = MakeAgg(t, {}, Semiring::SumProduct());
  auto result = ::mpfdb::exec::Run(*agg, "out");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->NumRows(), 1u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 4.0);
}

TEST_P(AggAlgorithmTest, UnknownGroupVariableFailsAtOpen) {
  TablePtr t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  OperatorPtr agg = MakeAgg(t, {"zz"}, Semiring::SumProduct());
  EXPECT_FALSE(agg->Open().ok());
}

INSTANTIATE_TEST_SUITE_P(AllAggs, AggAlgorithmTest,
                         ::testing::Values(AggAlgorithm::kHash,
                                           AggAlgorithm::kSort),
                         [](const auto& info) {
                           return info.param == AggAlgorithm::kHash ? "hash"
                                                                    : "sort";
                         });

// Test double that fails at a chosen point, for error-propagation coverage.
class FailingOperator : public PhysicalOperator {
 public:
  enum class FailAt { kOpen, kNextImmediately, kNextAfterOne };

  FailingOperator(TablePtr table, FailAt fail_at)
      : table_(std::move(table)), fail_at_(fail_at) {}

  Status Open() override {
    if (fail_at_ == FailAt::kOpen) {
      return Status::Internal("injected open failure");
    }
    emitted_ = 0;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row* row) override {
    if (fail_at_ == FailAt::kNextImmediately ||
        (fail_at_ == FailAt::kNextAfterOne && emitted_ >= 1)) {
      return Status::Internal("injected next failure");
    }
    if (emitted_ >= table_->NumRows()) return false;
    RowView view = table_->Row(emitted_++);
    row->vars.assign(view.vars, view.vars + view.arity);
    row->measure = view.measure;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override { return "FailingOperator"; }

 private:
  TablePtr table_;
  FailAt fail_at_;
  size_t emitted_ = 0;
};

class FailureInjectionTest
    : public ::testing::TestWithParam<FailingOperator::FailAt> {
 protected:
  OperatorPtr Failing(TablePtr t) {
    return std::make_unique<FailingOperator>(std::move(t), GetParam());
  }
};

TEST_P(FailureInjectionTest, ErrorsPropagateThroughEveryOperator) {
  TablePtr t = MakeTable("t", {"x", "y"}, {{{0, 0}, 1.0}, {{1, 0}, 2.0}});
  TablePtr other = MakeTable("o", {"y", "z"}, {{{0, 0}, 1.0}, {{0, 1}, 2.0}});
  Semiring sr = Semiring::SumProduct();

  // Unary operators.
  {
    Filter op(Failing(t), "x", 0);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    HashMarginalize op(Failing(t), {"x"}, sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    SortMarginalize op(Failing(t), {"x"}, sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    StreamProject op(Failing(t), {"x"});
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    MeasureFilter op(Failing(t), HavingClause{CompareOp::kGt, 0.0});
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }

  // Joins, failing child on either side.
  {
    HashProductJoin op(Failing(t), std::make_unique<SeqScan>(other), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    HashProductJoin op(std::make_unique<SeqScan>(other), Failing(t), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    SortMergeProductJoin op(Failing(t), std::make_unique<SeqScan>(other), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
  {
    NestedLoopProductJoin op(std::make_unique<SeqScan>(other), Failing(t), sr);
    EXPECT_FALSE(::mpfdb::exec::Run(op, "out").ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    FailPoints, FailureInjectionTest,
    ::testing::Values(FailingOperator::FailAt::kOpen,
                      FailingOperator::FailAt::kNextImmediately,
                      FailingOperator::FailAt::kNextAfterOne),
    [](const auto& info) {
      switch (info.param) {
        case FailingOperator::FailAt::kOpen:
          return "open";
        case FailingOperator::FailAt::kNextImmediately:
          return "first_next";
        case FailingOperator::FailAt::kNextAfterOne:
          return "second_next";
      }
      return "unknown";
    });

TEST(ExecutorTest, ComposedPipeline) {
  // Filter -> Join -> Marginalize pipeline built by hand.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("z", 3).ok());
  auto a = MakeTable("a", {"x", "y"},
                     {{{0, 0}, 1.0}, {{0, 1}, 2.0}, {{1, 0}, 4.0}});
  auto b = MakeTable("b", {"y", "z"}, {{{0, 0}, 3.0}, {{1, 2}, 5.0}});
  ASSERT_TRUE(catalog.RegisterTable(a).ok());
  ASSERT_TRUE(catalog.RegisterTable(b).ok());

  SimpleCostModel cost_model;
  PlanBuilder builder(catalog, cost_model);
  auto scan_a = builder.Scan("a");
  auto scan_b = builder.Scan("b");
  ASSERT_TRUE(scan_a.ok() && scan_b.ok());
  auto filtered = builder.Select(*scan_a, "x", 0);
  ASSERT_TRUE(filtered.ok());
  auto joined = builder.Join(*filtered, *scan_b);
  ASSERT_TRUE(joined.ok());
  auto grouped = builder.GroupBy(*joined, {"z"});
  ASSERT_TRUE(grouped.ok());

  Executor executor(catalog, Semiring::SumProduct());
  auto result = executor.Execute(**grouped, "out");
  ASSERT_TRUE(result.ok());
  // x=0 rows: (0,0;1),(0,1;2); join: (0,0,0;3), (0,1,2;10); group by z.
  ASSERT_EQ((*result)->NumRows(), 2u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 3.0);
  EXPECT_DOUBLE_EQ((*result)->measure(1), 10.0);
}

TEST(ExecutorTest, MissingTableFails) {
  Catalog catalog;
  SimpleCostModel cost_model;
  ASSERT_TRUE(catalog.RegisterVariable("x", 2).ok());
  auto t = MakeTable("t", {"x"}, {{{0}, 1.0}});
  ASSERT_TRUE(catalog.RegisterTable(t).ok());
  PlanBuilder builder(catalog, cost_model);
  auto scan = builder.Scan("t");
  ASSERT_TRUE(scan.ok());
  // Executing against a different catalog without the table fails.
  Catalog empty;
  Executor executor(empty, Semiring::SumProduct());
  EXPECT_FALSE(executor.Execute(**scan, "out").ok());
}

}  // namespace
}  // namespace mpfdb::exec
