#include <cmath>

#include <gtest/gtest.h>

#include "bn/bayes_net.h"
#include "bn/inference.h"
#include "core/database.h"
#include "fr/algebra.h"

namespace mpfdb::bn {
namespace {

// The paper's Figure 2 network: A -> B, A -> C, {B, C} -> D, all binary,
// with hand-picked CPTs.
BayesNet Figure2Network() {
  BayesNet bn;
  auto cpt_a = std::make_shared<Table>("cpt_a", Schema({"a"}, "p"));
  cpt_a->AppendRow({0}, 0.6);
  cpt_a->AppendRow({1}, 0.4);
  auto cpt_b = std::make_shared<Table>("cpt_b", Schema({"a", "b"}, "p"));
  cpt_b->AppendRow({0, 0}, 0.7);
  cpt_b->AppendRow({0, 1}, 0.3);
  cpt_b->AppendRow({1, 0}, 0.2);
  cpt_b->AppendRow({1, 1}, 0.8);
  auto cpt_c = std::make_shared<Table>("cpt_c", Schema({"a", "c"}, "p"));
  cpt_c->AppendRow({0, 0}, 0.5);
  cpt_c->AppendRow({0, 1}, 0.5);
  cpt_c->AppendRow({1, 0}, 0.9);
  cpt_c->AppendRow({1, 1}, 0.1);
  auto cpt_d = std::make_shared<Table>("cpt_d", Schema({"b", "c", "d"}, "p"));
  cpt_d->AppendRow({0, 0, 0}, 0.1);
  cpt_d->AppendRow({0, 0, 1}, 0.9);
  cpt_d->AppendRow({0, 1, 0}, 0.4);
  cpt_d->AppendRow({0, 1, 1}, 0.6);
  cpt_d->AppendRow({1, 0, 0}, 0.35);
  cpt_d->AppendRow({1, 0, 1}, 0.65);
  cpt_d->AppendRow({1, 1, 0}, 0.8);
  cpt_d->AppendRow({1, 1, 1}, 0.2);
  BayesNet net;
  EXPECT_TRUE(net.AddNode("a", 2, {}, cpt_a).ok());
  EXPECT_TRUE(net.AddNode("b", 2, {"a"}, cpt_b).ok());
  EXPECT_TRUE(net.AddNode("c", 2, {"a"}, cpt_c).ok());
  EXPECT_TRUE(net.AddNode("d", 2, {"b", "c"}, cpt_d).ok());
  return net;
}

TEST(BayesNetTest, Figure2Validates) {
  BayesNet bn = Figure2Network();
  EXPECT_TRUE(bn.Validate().ok());
  EXPECT_EQ(bn.VariableNames(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(BayesNetTest, AddNodeRejectsBadInput) {
  BayesNet bn;
  EXPECT_TRUE(bn.AddNode("a", 2, {}).ok());
  EXPECT_EQ(bn.AddNode("a", 2, {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(bn.AddNode("b", 0, {}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bn.AddNode("b", 2, {"zz"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bn.AddNode("b", 2, {"b"}).code(), StatusCode::kInvalidArgument);
}

TEST(BayesNetTest, ValidateCatchesBadCpts) {
  // Non-normalized CPT.
  BayesNet bn;
  auto bad = std::make_shared<Table>("cpt_a", Schema({"a"}, "p"));
  bad->AppendRow({0}, 0.6);
  bad->AppendRow({1}, 0.6);
  ASSERT_TRUE(bn.AddNode("a", 2, {}, bad).ok());
  EXPECT_EQ(bn.Validate().code(), StatusCode::kFailedPrecondition);

  // Incomplete CPT.
  BayesNet bn2;
  auto incomplete = std::make_shared<Table>("cpt_a", Schema({"a"}, "p"));
  incomplete->AppendRow({0}, 1.0);
  ASSERT_TRUE(bn2.AddNode("a", 2, {}, incomplete).ok());
  EXPECT_EQ(bn2.Validate().code(), StatusCode::kFailedPrecondition);

  // Missing CPT.
  BayesNet bn3;
  ASSERT_TRUE(bn3.AddNode("a", 2, {}).ok());
  EXPECT_EQ(bn3.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(BayesNetTest, InferenceViaMpfMatchesEnumeration) {
  // Section 4's example query: Pr(C | A = 0) as
  //   select C, SUM(p) from joint where A=0 group by C.
  BayesNet bn = Figure2Network();
  Database db;
  auto view = bn.ToMpfView(db.catalog());
  ASSERT_TRUE(view.ok()) << view.status();
  ASSERT_TRUE(db.CreateMpfView(*view).ok());

  for (const std::string optimizer :
       {"cs", "cs+nonlinear", "ve(deg)", "ve(deg) ext."}) {
    MpfQuerySpec query{{"c"}, {{"a", 0}}};
    auto result = db.Query(view->name, query, optimizer);
    ASSERT_TRUE(result.ok()) << result.status();
    TablePtr marginal = result->table;
    ASSERT_TRUE(fr::NormalizeMeasure(*marginal, Semiring::SumProduct()).ok());

    auto expected = bn.EnumerateMarginal({"c"}, {{"a", 0}});
    ASSERT_TRUE(expected.ok()) << expected.status();
    EXPECT_TRUE(fr::TablesEqual(**expected, *marginal, 1e-9)) << optimizer;
    // With A=0 observed, Pr(C=0) is the CPT row directly: 0.5.
    EXPECT_NEAR(marginal->measure(0), 0.5, 1e-12);
  }
}

TEST(BayesNetTest, UnconditionalMarginal) {
  BayesNet bn = Figure2Network();
  Database db;
  auto view = bn.ToMpfView(db.catalog());
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(db.CreateMpfView(*view).ok());
  auto result = db.Query(view->name, MpfQuerySpec{{"d"}, {}}, "ve(deg)");
  ASSERT_TRUE(result.ok()) << result.status();
  // Pr(D) is already normalized (marginal of a distribution).
  double total = result->table->measure(0) + result->table->measure(1);
  EXPECT_NEAR(total, 1.0, 1e-9);
  auto expected = bn.EnumerateMarginal({"d"}, {});
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, *result->table, 1e-9));
}

TEST(BayesNetTest, GeneratorsProduceValidNetworks) {
  Rng rng(5);
  auto chain = ChainBayesNet(6, 3, rng);
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(chain->Validate().ok());
  EXPECT_EQ(chain->nodes().size(), 6u);

  auto tree = TreeBayesNet(7, 2, rng);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Validate().ok());

  auto random = RandomBayesNet(8, 3, 2, rng);
  ASSERT_TRUE(random.ok());
  EXPECT_TRUE(random->Validate().ok());

  EXPECT_FALSE(ChainBayesNet(0, 2, rng).ok());
  EXPECT_FALSE(RandomBayesNet(3, -1, 2, rng).ok());
}

TEST(BayesNetTest, UniformCpts) {
  BayesNet bn;
  ASSERT_TRUE(bn.AddNode("a", 4, {}).ok());
  ASSERT_TRUE(bn.AddNode("b", 2, {"a"}).ok());
  ASSERT_TRUE(bn.SetUniformCpts().ok());
  ASSERT_TRUE(bn.Validate().ok());
  EXPECT_DOUBLE_EQ(bn.nodes()[0].cpt->measure(0), 0.25);
  EXPECT_DOUBLE_EQ(bn.nodes()[1].cpt->measure(0), 0.5);
}

TEST(BayesNetTest, SamplingApproximatesMarginals) {
  Rng rng(17);
  BayesNet bn = Figure2Network();
  auto samples = bn.Sample(20000, rng);
  ASSERT_TRUE(samples.ok()) << samples.status();
  // Empirical Pr(A=1) should be near 0.4.
  auto marg = fr::Marginalize(**samples, {"a"}, Semiring::SumProduct(), "m");
  ASSERT_TRUE(marg.ok());
  double total = (*marg)->measure(0) + (*marg)->measure(1);
  EXPECT_NEAR((*marg)->measure(1) / total, 0.4, 0.02);
}

TEST(BayesNetTest, EstimateCptsRecoversDistribution) {
  Rng rng(23);
  BayesNet truth = Figure2Network();
  auto samples = truth.Sample(50000, rng);
  ASSERT_TRUE(samples.ok());

  // Structure-only copy.
  BayesNet structure;
  ASSERT_TRUE(structure.AddNode("a", 2, {}).ok());
  ASSERT_TRUE(structure.AddNode("b", 2, {"a"}).ok());
  ASSERT_TRUE(structure.AddNode("c", 2, {"a"}).ok());
  ASSERT_TRUE(structure.AddNode("d", 2, {"b", "c"}).ok());

  auto estimated = EstimateCpts(structure, **samples, 1.0);
  ASSERT_TRUE(estimated.ok()) << estimated.status();
  ASSERT_TRUE(estimated->Validate().ok());

  // Compare Pr(D | A=1) between truth and the re-estimated model.
  auto expected = truth.EnumerateMarginal({"d"}, {{"a", 1}});
  auto recovered = estimated->EnumerateMarginal({"d"}, {{"a", 1}});
  ASSERT_TRUE(expected.ok() && recovered.ok());
  EXPECT_NEAR((*expected)->measure(0), (*recovered)->measure(0), 0.02);
}

TEST(BayesNetTest, EstimateCptsRejectsBadInput) {
  BayesNet structure;
  ASSERT_TRUE(structure.AddNode("a", 2, {}).ok());
  Table counts("counts", Schema({"zz"}, "count"));
  EXPECT_EQ(EstimateCpts(structure, counts, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  Table counts2("counts", Schema({"a"}, "count"));
  EXPECT_EQ(EstimateCpts(structure, counts2, -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InferenceTest, InferMarginalHelper) {
  BayesNet bn = Figure2Network();
  auto marginal = InferMarginal(bn, "c", {{"a", 0}});
  ASSERT_TRUE(marginal.ok()) << marginal.status();
  EXPECT_NEAR((*marginal)->measure(0), 0.5, 1e-12);
  auto expected = bn.EnumerateMarginal({"c"}, {{"a", 0}});
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, **marginal, 1e-9));
}

// Enumeration ground truth for MPE: max joint probability consistent with
// the evidence.
double EnumerateMpe(const BayesNet& bn,
                    const std::vector<BayesNet::Evidence>& evidence) {
  Semiring sr = Semiring::SumProduct();
  TablePtr joint = bn.nodes()[0].cpt;
  for (size_t i = 1; i < bn.nodes().size(); ++i) {
    joint = *fr::ProductJoin(*joint, *bn.nodes()[i].cpt, sr, "joint");
  }
  for (const auto& e : evidence) {
    joint = *fr::Select(*joint, e.var, e.value, "joint");
  }
  double best = 0;
  for (size_t i = 0; i < joint->NumRows(); ++i) {
    best = std::max(best, joint->measure(i));
  }
  return best;
}

TEST(InferenceTest, MpeValueMatchesEnumeration) {
  BayesNet bn = Figure2Network();
  for (const std::vector<BayesNet::Evidence>& evidence :
       std::vector<std::vector<BayesNet::Evidence>>{
           {}, {{"a", 0}}, {{"d", 1}}, {{"a", 1}, {"d", 0}}}) {
    auto mpe = MpeValue(bn, evidence);
    ASSERT_TRUE(mpe.ok()) << mpe.status();
    EXPECT_NEAR(*mpe, EnumerateMpe(bn, evidence), 1e-12);
  }
}

TEST(InferenceTest, MpeAssignmentAchievesMpeValue) {
  Rng rng(77);
  auto bn = RandomBayesNet(7, 2, 3, rng);
  ASSERT_TRUE(bn.ok());
  for (const std::vector<BayesNet::Evidence>& evidence :
       std::vector<std::vector<BayesNet::Evidence>>{{}, {{"x2", 1}}}) {
    auto assignment = MpeAssignment(*bn, evidence);
    ASSERT_TRUE(assignment.ok()) << assignment.status();
    ASSERT_EQ(assignment->size(), bn->nodes().size());
    // The assignment's joint probability equals the MPE value.
    double p = 1.0;
    for (const BnNode& node : bn->nodes()) {
      const Schema& schema = node.cpt->schema();
      for (size_t r = 0; r < node.cpt->NumRows(); ++r) {
        RowView row = node.cpt->Row(r);
        bool match = true;
        for (size_t c = 0; c < schema.arity(); ++c) {
          if (row.var(c) != assignment->at(schema.variables()[c])) {
            match = false;
            break;
          }
        }
        if (match) {
          p *= row.measure;
          break;
        }
      }
    }
    auto mpe = MpeValue(*bn, evidence);
    ASSERT_TRUE(mpe.ok());
    EXPECT_NEAR(p, *mpe, 1e-9 * std::max(1.0, *mpe));
    // Evidence respected.
    for (const auto& e : evidence) {
      EXPECT_EQ(assignment->at(e.var), e.value);
    }
  }
}

TEST(InferenceTest, EstimateCptsFromMultiTableView) {
  // Training data vertically partitioned into two tables joined on b (the
  // Section 4 "counts from multi-table data via MPF queries" scenario):
  // the dataset is the product join d1(a,b) ⨝ d2(b,c) with count measures.
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("a", 2).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("b", 3).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("c", 2).ok());
  Rng rng(41);
  auto d1 = std::make_shared<Table>("d1", Schema({"a", "b"}, "n"));
  auto d2 = std::make_shared<Table>("d2", Schema({"b", "c"}, "n"));
  for (VarValue a = 0; a < 2; ++a)
    for (VarValue b = 0; b < 3; ++b)
      d1->AppendRow({a, b}, static_cast<double>(rng.UniformInt(1, 20)));
  for (VarValue b = 0; b < 3; ++b)
    for (VarValue c = 0; c < 2; ++c)
      d2->AppendRow({b, c}, static_cast<double>(rng.UniformInt(1, 20)));
  ASSERT_TRUE(db.CreateTable(d1).ok());
  ASSERT_TRUE(db.CreateTable(d2).ok());
  ASSERT_TRUE(db.CreateMpfView({"data", {"d1", "d2"}, Semiring::SumProduct()})
                  .ok());

  BayesNet structure;
  ASSERT_TRUE(structure.AddNode("a", 2, {}).ok());
  ASSERT_TRUE(structure.AddNode("b", 3, {"a"}).ok());
  ASSERT_TRUE(structure.AddNode("c", 2, {"b"}).ok());

  auto from_view = EstimateCptsFromView(structure, db, "data", 0.5);
  ASSERT_TRUE(from_view.ok()) << from_view.status();
  ASSERT_TRUE(from_view->Validate().ok());

  // Reference: materialize the joint counts and estimate from the single
  // table path.
  auto joint = fr::EvaluateNaiveMpf({d1, d2}, {"a", "b", "c"}, {},
                                    Semiring::SumProduct(), "joint");
  ASSERT_TRUE(joint.ok());
  auto reference = EstimateCpts(structure, **joint, 0.5);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < structure.nodes().size(); ++i) {
    EXPECT_TRUE(fr::TablesEqual(*from_view->nodes()[i].cpt,
                                *reference->nodes()[i].cpt, 1e-9))
        << structure.nodes()[i].name;
  }
}

TEST(InferenceTest, LogSpaceInferenceMatchesLinearSpace) {
  // Convert CPT measures to log space, run the same MPF query under the
  // log-sum-product semiring, and compare exp(result) to the linear-space
  // marginal — the isomorphism the log semiring exists for.
  Rng rng(88);
  auto bn = ChainBayesNet(7, 3, rng);
  ASSERT_TRUE(bn.ok());

  Database db;
  auto view = bn->ToMpfView(db.catalog());
  ASSERT_TRUE(view.ok());
  // Log-space clones of the CPT tables.
  Database log_db;
  for (const BnNode& node : bn->nodes()) {
    ASSERT_TRUE(
        log_db.catalog().RegisterVariable(node.name, node.domain_size).ok());
  }
  MpfViewDef log_view{"log_joint", {}, Semiring::LogSumProduct()};
  for (const BnNode& node : bn->nodes()) {
    TablePtr log_cpt(node.cpt->Clone("log_cpt_" + node.name));
    for (size_t i = 0; i < log_cpt->NumRows(); ++i) {
      log_cpt->set_measure(i, std::log(log_cpt->measure(i)));
    }
    ASSERT_TRUE(log_db.CreateTable(log_cpt).ok());
    log_view.relations.push_back(log_cpt->name());
  }
  ASSERT_TRUE(db.CreateMpfView(*view).ok());
  ASSERT_TRUE(log_db.CreateMpfView(log_view).ok());

  MpfQuerySpec query{{"x6"}, {{"x0", 1}}};
  auto linear = db.Query(view->name, query, "ve(deg)");
  auto logspace = log_db.Query("log_joint", query, "ve(deg)");
  ASSERT_TRUE(linear.ok() && logspace.ok());
  ASSERT_EQ(linear->table->NumRows(), logspace->table->NumRows());
  for (size_t i = 0; i < linear->table->NumRows(); ++i) {
    EXPECT_NEAR(std::exp(logspace->table->measure(i)),
                linear->table->measure(i),
                1e-9 * std::max(1.0, linear->table->measure(i)));
  }
}

TEST(BayesNetTest, LargerChainInferenceAcrossOptimizers) {
  Rng rng(31);
  auto bn = ChainBayesNet(8, 3, rng);
  ASSERT_TRUE(bn.ok());
  Database db;
  auto view = bn->ToMpfView(db.catalog());
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(db.CreateMpfView(*view).ok());

  auto expected = bn->EnumerateMarginal({"x7"}, {{"x0", 1}});
  ASSERT_TRUE(expected.ok());
  for (const std::string optimizer : {"cs+nonlinear", "ve(deg) ext."}) {
    auto result =
        db.Query(view->name, MpfQuerySpec{{"x7"}, {{"x0", 1}}}, optimizer);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(
        fr::NormalizeMeasure(*result->table, Semiring::SumProduct()).ok());
    EXPECT_TRUE(fr::TablesEqual(**expected, *result->table, 1e-9)) << optimizer;
  }
}

}  // namespace
}  // namespace mpfdb::bn
