// Execution-level contract of the physical planning layer: whatever the
// planner chooses must be bit-identical (tolerance 0.0) to the forced-hash
// baseline — across random views and plans, FP-sensitive and idempotent
// semirings, thread counts, and spill. Plus the operator-level guarantees
// the planner relies on: the sort operators' native batch path replays
// their row path exactly, and a presorted-skip (stable sort of already
// sorted input is the identity) changes nothing. Seeds shift with
// MPFDB_TEST_SEED like every property test.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "util/query_context.h"
#include "util/rng.h"

namespace mpfdb {
namespace {

// Random functional relation with unique variable tuples and random
// measures (FP-sensitive under sum-product: any fold reordering shows up
// at tolerance 0.0).
TablePtr RandomTable(const std::string& name, std::vector<std::string> vars,
                     std::vector<int64_t> domains, size_t rows, Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, rng.UniformDouble(0.25, 2.0));
  }
  return t;
}

// Same, but rows appended in sorted order by the first `sort_keys` columns
// (stable on the remaining columns), so an operator claiming the input
// presorted by those variables is telling the truth.
TablePtr SortedRandomTable(const std::string& name,
                           std::vector<std::string> vars,
                           std::vector<int64_t> domains, size_t rows,
                           size_t sort_keys, Rng& rng) {
  TablePtr unsorted = RandomTable(name, vars, domains, rows, rng);
  std::vector<size_t> order(unsorted->NumRows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < sort_keys; ++k) {
      VarValue va = unsorted->Row(a).var(k);
      VarValue vb = unsorted->Row(b).var(k);
      if (va != vb) return va < vb;
    }
    return false;
  });
  auto t = std::make_shared<Table>(name, unsorted->schema());
  for (size_t i : order) {
    t->AppendRowRaw(unsorted->Row(i).vars, unsorted->measure(i));
  }
  return t;
}

exec::ExecOptions ForcedHash() {
  return exec::ExecOptions{.join = exec::JoinAlgorithm::kHash,
                           .agg = exec::AggAlgorithm::kHash,
                           .vectorized = true,
                           .packed_keys = true};
}

class PhysicalExecDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

// The planner's central promise, empirically: per-node cost-based choices
// (kAuto) reproduce the forced-hash golden bit for bit over random views x
// random optimizer plans x {sum-product, max-product} x threads x spill.
TEST_P(PhysicalExecDifferentialTest, AutoSelectionMatchesForcedHash) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  Rng rng(seed + 9000);

  for (const Semiring& semiring :
       {Semiring::SumProduct(), Semiring::MaxProduct()}) {
    RandomView rv = MakeRandomView(seed + 9000, 6, 5, /*force_acyclic=*/false);
    rv.view.semiring = semiring;

    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.4)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }

    for (const std::string spec : {"cs+", "ve(width)"}) {
      auto optimizer = MakeOptimizer(spec, seed);
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();

      exec::Executor golden_exec(rv.catalog, rv.view.semiring, ForcedHash());
      auto golden = golden_exec.Execute(**plan, "golden");
      ASSERT_TRUE(golden.ok()) << spec << ": " << golden.status();

      exec::Executor auto_exec(rv.catalog, rv.view.semiring,
                               exec::ExecOptions{});  // kAuto everywhere
      for (size_t threads : {1u, 4u}) {
        exec::ThreadPool pool(threads);
        for (bool spill : {false, true}) {
          QueryContext ctx;
          ctx.set_thread_pool(&pool);
          if (spill) {
            ctx.set_memory_limit(2 * 1024);
            ctx.set_spill_enabled(true);
            ctx.set_spill_dir(::testing::TempDir());
          }
          auto result = auto_exec.Execute(**plan, "out", &ctx);
          std::string where = std::string(semiring.name()) + "/" + spec +
                              "/threads=" + std::to_string(threads) +
                              (spill ? "/spill" : "/mem");
          ASSERT_TRUE(result.ok()) << where << ": " << result.status();
          EXPECT_TRUE(fr::TablesEqual(**golden, **result, /*tolerance=*/0.0))
              << where;
          EXPECT_EQ(ctx.stats().bytes_in_use, 0u) << where;
        }
      }
    }
  }
}

// ISSUE acceptance for the FAQ planner: on acyclic views it must delegate
// to the shared binary planning path, and whatever it emits must reproduce
// the forced-hash golden bit for bit across semirings x threads x spill.
TEST_P(PhysicalExecDifferentialTest, FaqAcyclicMatchesForcedHash) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  Rng rng(seed + 17000);

  for (const Semiring& semiring :
       {Semiring::SumProduct(), Semiring::MaxProduct()}) {
    RandomView rv = MakeRandomView(seed + 17000, 6, 5, /*force_acyclic=*/true);
    rv.view.semiring = semiring;

    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};

    auto optimizer = MakeOptimizer("faq", seed);
    ASSERT_TRUE(optimizer.ok());
    auto plan = (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
    ASSERT_TRUE(plan.ok()) << plan.status();
    // Acyclic views never plan into the multiway node.
    EXPECT_EQ(PlanSignature(**plan).find("MultiwayJoin"), std::string::npos);

    exec::Executor golden_exec(rv.catalog, rv.view.semiring, ForcedHash());
    auto golden = golden_exec.Execute(**plan, "golden");
    ASSERT_TRUE(golden.ok()) << golden.status();

    exec::Executor auto_exec(rv.catalog, rv.view.semiring,
                             exec::ExecOptions{});
    for (size_t threads : {1u, 4u}) {
      exec::ThreadPool pool(threads);
      for (bool spill : {false, true}) {
        QueryContext ctx;
        ctx.set_thread_pool(&pool);
        if (spill) {
          ctx.set_memory_limit(2 * 1024);
          ctx.set_spill_enabled(true);
          ctx.set_spill_dir(::testing::TempDir());
        }
        auto result = auto_exec.Execute(**plan, "out", &ctx);
        std::string where = std::string(semiring.name()) +
                            "/threads=" + std::to_string(threads) +
                            (spill ? "/spill" : "/mem");
        ASSERT_TRUE(result.ok()) << where << ": " << result.status();
        EXPECT_TRUE(fr::TablesEqual(**golden, **result, /*tolerance=*/0.0))
            << where;
        EXPECT_EQ(ctx.stats().bytes_in_use, 0u) << where;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhysicalExecDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// Hand-annotated logical chain whose estimates steer the planner into a
// *mixed* physical plan — hash inner join, sort-merge top join, presorted
// sort-marginalize — executed against real (small) tables. The estimates
// deliberately diverge from the true cardinalities: physical choices may be
// arbitrarily misguided without ever changing a bit of the answer.
TEST(PhysicalExecTest, MixedPlanBitIdenticalToForcedHash) {
  const uint64_t seed = CaseSeed(42);
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed);
  Catalog catalog;
  for (const char* v : {"x", "y", "z", "w"}) {
    ASSERT_TRUE(catalog.RegisterVariable(v, 30).ok());
  }
  ASSERT_TRUE(
      catalog.RegisterTable(RandomTable("a", {"x", "y"}, {30, 30}, 300, rng))
          .ok());
  ASSERT_TRUE(
      catalog.RegisterTable(RandomTable("b", {"y", "z"}, {30, 30}, 300, rng))
          .ok());
  ASSERT_TRUE(
      catalog.RegisterTable(RandomTable("c", {"z", "w"}, {30, 30}, 300, rng))
          .ok());

  auto scan = [](const std::string& t, std::vector<std::string> vars,
                 double card) {
    auto node = std::make_shared<PlanNode>();
    node->kind = PlanNodeKind::kScan;
    node->table_name = t;
    node->output_vars = std::move(vars);
    node->est_card = card;
    return node;
  };
  auto inner = std::make_shared<PlanNode>();
  inner->kind = PlanNodeKind::kJoin;
  inner->left = scan("a", {"x", "y"}, 10000);
  inner->right = scan("b", {"y", "z"}, 10000);
  inner->output_vars = {"x", "y", "z"};
  inner->est_card = 10000;
  auto top = std::make_shared<PlanNode>();
  top->kind = PlanNodeKind::kJoin;
  top->left = inner;
  top->right = scan("c", {"z", "w"}, 10000);
  top->output_vars = {"x", "y", "z", "w"};
  top->est_card = 1e6;
  auto root = std::make_shared<PlanNode>();
  root->kind = PlanNodeKind::kGroupBy;
  root->left = top;
  root->group_vars = {"z"};
  root->output_vars = {"z"};
  root->est_card = 100;

  const Semiring semiring = Semiring::SumProduct();
  exec::Executor auto_exec(catalog, semiring, exec::ExecOptions{});
  auto physical = auto_exec.PlanPhysical(*root);
  ASSERT_TRUE(physical.ok()) << physical.status();
  // The premise of the test: the chosen plan really does mix algorithms.
  ASSERT_EQ((*physical)->agg, AggAlgorithm::kSort);
  ASSERT_TRUE((*physical)->skip_sort_input);
  ASSERT_EQ((*physical)->left->join, JoinAlgorithm::kSortMerge);
  ASSERT_EQ((*physical)->left->left->join, JoinAlgorithm::kHash);

  exec::Executor hash_exec(catalog, semiring, ForcedHash());
  auto golden = hash_exec.Execute(*root, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();
  auto mixed = auto_exec.Execute(*root, "out");
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_TRUE(fr::TablesEqual(**golden, **mixed, /*tolerance=*/0.0));
  EXPECT_GT((*mixed)->NumRows(), 0u);
}

// Native batch drains of the sort operators replay the row path exactly,
// including emission order (no canonical re-sort before comparing).
TEST(PhysicalExecTest, SortOperatorBatchPathReplaysRowPath) {
  const uint64_t seed = CaseSeed(7);
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed * 31);
  TablePtr l = RandomTable("l", {"x", "y"}, {50, 20}, 700, rng);
  TablePtr r = RandomTable("r", {"y", "z"}, {20, 50}, 700, rng);

  {
    exec::SortMergeProductJoin row_op(std::make_unique<exec::SeqScan>(l),
                                      std::make_unique<exec::SeqScan>(r),
                                      Semiring::SumProduct());
    exec::SortMergeProductJoin batch_op(std::make_unique<exec::SeqScan>(l),
                                        std::make_unique<exec::SeqScan>(r),
                                        Semiring::SumProduct());
    auto rows = exec::Run(row_op, "rows");
    auto batches = exec::RunBatch(batch_op, "batches");
    ASSERT_TRUE(rows.ok()) << rows.status();
    ASSERT_TRUE(batches.ok()) << batches.status();
    EXPECT_TRUE(fr::TablesEqual(**rows, **batches, /*tolerance=*/0.0));
  }
  {
    exec::SortMarginalize row_op(std::make_unique<exec::SeqScan>(l),
                                 std::vector<std::string>{"y"},
                                 Semiring::SumProduct());
    exec::SortMarginalize batch_op(std::make_unique<exec::SeqScan>(l),
                                   std::vector<std::string>{"y"},
                                   Semiring::SumProduct());
    auto rows = exec::Run(row_op, "rows");
    auto batches = exec::RunBatch(batch_op, "batches");
    ASSERT_TRUE(rows.ok()) << rows.status();
    ASSERT_TRUE(batches.ok()) << batches.status();
    EXPECT_TRUE(fr::TablesEqual(**rows, **batches, /*tolerance=*/0.0));
  }
}

// Interesting-order reuse at the operator level: on genuinely presorted
// input, skipping the sort (a stable sort of sorted input is the identity)
// is bit-identical to sorting again — in both row and batch modes.
TEST(PhysicalExecTest, PresortedSkipIsBitIdentical) {
  const uint64_t seed = CaseSeed(11);
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed * 127);
  // Left/right sorted by their first column = the shared variable "y".
  TablePtr l = SortedRandomTable("l", {"y", "x"}, {20, 50}, 800, 1, rng);
  TablePtr r = SortedRandomTable("r", {"y", "z"}, {20, 50}, 800, 1, rng);

  for (bool batch_mode : {false, true}) {
    exec::SortMergeProductJoin sorting(std::make_unique<exec::SeqScan>(l),
                                       std::make_unique<exec::SeqScan>(r),
                                       Semiring::SumProduct());
    exec::SortMergeProductJoin skipping(std::make_unique<exec::SeqScan>(l),
                                        std::make_unique<exec::SeqScan>(r),
                                        Semiring::SumProduct(),
                                        /*left_presorted=*/true,
                                        /*right_presorted=*/true);
    auto a = batch_mode ? exec::RunBatch(sorting, "a")
                        : exec::Run(sorting, "a");
    auto b = batch_mode ? exec::RunBatch(skipping, "b")
                        : exec::Run(skipping, "b");
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_TRUE(fr::TablesEqual(**a, **b, /*tolerance=*/0.0))
        << (batch_mode ? "batch" : "row");

    exec::SortMarginalize agg_sorting(std::make_unique<exec::SeqScan>(l),
                                      std::vector<std::string>{"y"},
                                      Semiring::SumProduct());
    exec::SortMarginalize agg_skipping(std::make_unique<exec::SeqScan>(l),
                                       std::vector<std::string>{"y"},
                                       Semiring::SumProduct(),
                                       /*input_presorted=*/true);
    auto c = batch_mode ? exec::RunBatch(agg_sorting, "c")
                        : exec::Run(agg_sorting, "c");
    auto d = batch_mode ? exec::RunBatch(agg_skipping, "d")
                        : exec::Run(agg_skipping, "d");
    ASSERT_TRUE(c.ok()) << c.status();
    ASSERT_TRUE(d.ok()) << d.status();
    EXPECT_TRUE(fr::TablesEqual(**c, **d, /*tolerance=*/0.0))
        << (batch_mode ? "batch" : "row");
  }
}

// The runtime stats spine: ExecuteAnalyze returns the same table as
// Execute, populates per-logical-node stats, and the rendered EXPLAIN
// ANALYZE carries actuals, q-error, and the per-operator counters.
TEST(PhysicalExecTest, ExecuteAnalyzePopulatesStatsSpine) {
  const uint64_t seed = CaseSeed(3);
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  RandomView rv = MakeRandomView(seed + 500, 5, 4, /*force_acyclic=*/false);
  MpfQuerySpec query;
  query.group_vars = {rv.present_vars.front()};
  auto optimizer = MakeOptimizer("cs+", seed);
  ASSERT_TRUE(optimizer.ok());
  auto plan = (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();

  exec::Executor executor(rv.catalog, rv.view.semiring, exec::ExecOptions{});
  auto plain = executor.Execute(**plan, "out");
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto analyzed = executor.ExecuteAnalyze(**plan, "out");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  EXPECT_TRUE(fr::TablesEqual(**plain, *analyzed->table, /*tolerance=*/0.0));

  ASSERT_NE(analyzed->physical, nullptr);
  ASSERT_FALSE(analyzed->stats.empty());
  // The root's recorded output is exactly the returned table.
  ASSERT_TRUE(analyzed->stats.count(plan->get()));
  const OperatorStats& root_stats = analyzed->stats.at(plan->get());
  EXPECT_EQ(root_stats.output_rows, analyzed->table->NumRows());
  EXPECT_GT(root_stats.batches, 0u);
  EXPECT_GT(root_stats.wall_nanos, 0u);
  // Streaming operators (e.g. a presorted sort-aggregate) materialize
  // nothing, so the root may legitimately report zero bytes; some node in
  // the plan must still have charged memory.
  size_t max_peak = 0;
  for (const auto& [node, stats] : analyzed->stats) {
    max_peak = std::max(max_peak, stats.peak_bytes);
  }
  EXPECT_GT(max_peak, 0u);

  const std::string rendered =
      exec::ExplainAnalyzePlan(*analyzed->physical, analyzed->stats);
  EXPECT_NE(rendered.find("actual="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("q="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("wall_us="), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("peak_bytes="), std::string::npos) << rendered;
}

// Governed analyzed run: under a tiny budget the (hash, per the memory
// rule) operators spill, and the spine reports the partition counts.
TEST(PhysicalExecTest, AnalyzeReportsSpillPartitionsUnderBudget) {
  const uint64_t seed = CaseSeed(4);
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  RandomView rv = MakeRandomView(seed + 800, 6, 5, /*force_acyclic=*/false);
  MpfQuerySpec query;
  query.group_vars = {rv.present_vars.front()};
  auto optimizer = MakeOptimizer("cs+", seed);
  ASSERT_TRUE(optimizer.ok());
  auto plan = (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();

  exec::Executor executor(rv.catalog, rv.view.semiring, exec::ExecOptions{});
  QueryContext ctx;
  ctx.set_memory_limit(2 * 1024);
  ctx.set_spill_enabled(true);
  ctx.set_spill_dir(::testing::TempDir());
  auto analyzed = executor.ExecuteAnalyze(**plan, "out", &ctx);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  // The finite budget forced every node onto hash operators...
  for (const PhysicalPlanNode* node = analyzed->physical.get();
       node != nullptr; node = node->left.get()) {
    if (node->kind == PlanNodeKind::kJoin) {
      EXPECT_EQ(node->join, JoinAlgorithm::kHash);
    }
    if (node->kind == PlanNodeKind::kGroupBy) {
      EXPECT_EQ(node->agg, AggAlgorithm::kHash);
    }
  }
  // ...and at least one of them had to spill, which the spine records.
  size_t total_parts = 0;
  for (const auto& [logical, stats] : analyzed->stats) {
    total_parts += stats.spill_partitions;
  }
  EXPECT_GT(total_parts, 0u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

}  // namespace
}  // namespace mpfdb
