#include <memory>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "fr/algebra.h"
#include "opt/cs.h"
#include "opt/optimizer.h"
#include "opt/ve.h"
#include "workload/generators.h"

namespace mpfdb::opt {
namespace {

using workload::GenerateSupplyChain;
using workload::GenerateSynthetic;
using workload::SupplyChainParams;
using workload::SupplyChainSchema;
using workload::SyntheticKind;
using workload::SyntheticParams;
using workload::SyntheticSchema;

// Builds every optimizer configuration the paper evaluates.
std::vector<std::unique_ptr<Optimizer>> AllOptimizers() {
  std::vector<std::unique_ptr<Optimizer>> optimizers;
  optimizers.push_back(std::make_unique<CsOptimizer>());
  optimizers.push_back(std::make_unique<CsPlusOptimizer>(/*nonlinear=*/false));
  optimizers.push_back(std::make_unique<CsPlusOptimizer>(/*nonlinear=*/true));
  for (VeHeuristic h :
       {VeHeuristic::kDegree, VeHeuristic::kWidth, VeHeuristic::kElimCost,
        VeHeuristic::kDegreeWidth, VeHeuristic::kDegreeElimCost,
        VeHeuristic::kRandom, VeHeuristic::kMinFill}) {
    for (bool extended : {false, true}) {
      VeOptions options;
      options.heuristic = h;
      options.extended = extended;
      options.seed = 13;
      optimizers.push_back(std::make_unique<VeOptimizer>(options));
    }
  }
  {
    VeOptions options;
    options.heuristic = VeHeuristic::kDegree;
    options.extended = true;
    options.fd_pruning = true;
    optimizers.push_back(std::make_unique<VeOptimizer>(options));
  }
  return optimizers;
}

class SmallSupplyChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplyChainParams params;
    params.scale = 0.005;  // pid=500, sid=50, wid=25, cid=5, tid=2
    params.seed = 321;
    auto schema = GenerateSupplyChain(params, catalog_);
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = *schema;
  }

  StatusOr<TablePtr> Naive(const MpfQuerySpec& query) {
    std::vector<TablePtr> tables;
    for (const auto& rel : schema_.view.relations) {
      tables.push_back(*catalog_.GetTable(rel));
    }
    std::vector<fr::Selection> selections;
    for (const auto& sel : query.selections) {
      selections.push_back({sel.var, sel.value});
    }
    return fr::EvaluateNaiveMpf(tables, query.group_vars, selections,
                                schema_.view.semiring, "naive");
  }

  StatusOr<TablePtr> RunPlan(const PlanNode& plan) {
    exec::Executor executor(catalog_, schema_.view.semiring);
    return executor.Execute(plan, "result");
  }

  Catalog catalog_;
  SupplyChainSchema schema_;
  SimpleCostModel cost_model_;
};

TEST_F(SmallSupplyChainTest, AllOptimizersAgreeWithNaiveBasicQuery) {
  for (const auto& var : {"wid", "cid", "tid", "pid", "sid"}) {
    MpfQuerySpec query{{var}, {}};
    auto expected = Naive(query);
    ASSERT_TRUE(expected.ok()) << expected.status();
    for (auto& optimizer : AllOptimizers()) {
      auto plan = optimizer->Optimize(schema_.view, query, catalog_, cost_model_);
      ASSERT_TRUE(plan.ok()) << optimizer->name() << ": " << plan.status();
      auto result = RunPlan(**plan);
      ASSERT_TRUE(result.ok()) << optimizer->name() << ": " << result.status();
      EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6))
          << optimizer->name() << " on group-by " << var << "\nplan:\n"
          << ExplainPlan(**plan);
    }
  }
}

TEST_F(SmallSupplyChainTest, AllOptimizersAgreeWithNaiveConstrainedDomain) {
  // "How much money would each contractor lose if transporter 1 went
  // off-line?" — constrained-domain query form.
  MpfQuerySpec query{{"cid"}, {{"tid", 1}}};
  auto expected = Naive(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (auto& optimizer : AllOptimizers()) {
    auto plan = optimizer->Optimize(schema_.view, query, catalog_, cost_model_);
    ASSERT_TRUE(plan.ok()) << optimizer->name() << ": " << plan.status();
    auto result = RunPlan(**plan);
    ASSERT_TRUE(result.ok()) << optimizer->name() << ": " << result.status();
    EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6))
        << optimizer->name();
  }
}

TEST_F(SmallSupplyChainTest, AllOptimizersAgreeWithNaiveRestrictedAnswer) {
  // Restricted-answer form: selection on the query variable itself.
  MpfQuerySpec query{{"wid"}, {{"wid", 3}}};
  auto expected = Naive(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (auto& optimizer : AllOptimizers()) {
    auto plan = optimizer->Optimize(schema_.view, query, catalog_, cost_model_);
    ASSERT_TRUE(plan.ok()) << optimizer->name() << ": " << plan.status();
    auto result = RunPlan(**plan);
    ASSERT_TRUE(result.ok()) << optimizer->name() << ": " << result.status();
    EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6))
        << optimizer->name();
  }
}

TEST_F(SmallSupplyChainTest, MultiVariableGroupBy) {
  MpfQuerySpec query{{"cid", "tid"}, {}};
  auto expected = Naive(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  for (auto& optimizer : AllOptimizers()) {
    auto plan = optimizer->Optimize(schema_.view, query, catalog_, cost_model_);
    ASSERT_TRUE(plan.ok()) << optimizer->name() << ": " << plan.status();
    auto result = RunPlan(**plan);
    ASSERT_TRUE(result.ok()) << optimizer->name();
    EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6))
        << optimizer->name();
  }
}

TEST_F(SmallSupplyChainTest, MinSumSemiringAgreesWithNaive) {
  MpfViewDef view = schema_.view;
  view.semiring = Semiring::MinSum();
  MpfQuerySpec query{{"cid"}, {}};
  std::vector<TablePtr> tables;
  for (const auto& rel : view.relations) tables.push_back(*catalog_.GetTable(rel));
  auto expected =
      fr::EvaluateNaiveMpf(tables, query.group_vars, {}, view.semiring, "naive");
  ASSERT_TRUE(expected.ok());
  CsPlusOptimizer cs_plus(/*nonlinear=*/true);
  auto plan = cs_plus.Optimize(view, query, catalog_, cost_model_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  exec::Executor executor(catalog_, view.semiring);
  auto result = executor.Execute(**plan, "result");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6));
}

TEST_F(SmallSupplyChainTest, CsProducesSingleRootGroupBy) {
  CsOptimizer cs;
  MpfQuerySpec query{{"wid"}, {}};
  auto plan = cs.Optimize(schema_.view, query, catalog_, cost_model_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->GroupByCount(), 1);
  EXPECT_EQ((*plan)->kind, PlanNodeKind::kGroupBy);
  EXPECT_TRUE((*plan)->IsLinear());
  EXPECT_EQ((*plan)->JoinCount(), 4);
}

TEST_F(SmallSupplyChainTest, CsPlusNoWorseThanCs) {
  for (const auto& var : {"wid", "cid", "tid", "pid", "sid"}) {
    MpfQuerySpec query{{var}, {}};
    CsOptimizer cs;
    CsPlusOptimizer cs_plus_linear(false);
    CsPlusOptimizer cs_plus_nonlinear(true);
    auto p0 = cs.Optimize(schema_.view, query, catalog_, cost_model_);
    auto p1 = cs_plus_linear.Optimize(schema_.view, query, catalog_, cost_model_);
    auto p2 = cs_plus_nonlinear.Optimize(schema_.view, query, catalog_, cost_model_);
    ASSERT_TRUE(p0.ok() && p1.ok() && p2.ok());
    // The greedy-conservative guarantee: CS+ is no worse than the single
    // root-GroupBy plan, and the nonlinear space contains the linear one.
    EXPECT_LE((*p1)->est_cost, (*p0)->est_cost) << var;
    EXPECT_LE((*p2)->est_cost, (*p1)->est_cost) << var;
  }
}

TEST_F(SmallSupplyChainTest, ExtendedVeNoWorseThanPlainVe) {
  for (VeHeuristic h : {VeHeuristic::kDegree, VeHeuristic::kWidth,
                        VeHeuristic::kElimCost}) {
    for (const auto& var : {"wid", "cid", "sid"}) {
      MpfQuerySpec query{{var}, {}};
      VeOptions plain{h, false, false, 0};
      VeOptions extended{h, true, false, 0};
      VeOptimizer ve_plain(plain);
      VeOptimizer ve_ext(extended);
      auto p0 = ve_plain.Optimize(schema_.view, query, catalog_, cost_model_);
      auto p1 = ve_ext.Optimize(schema_.view, query, catalog_, cost_model_);
      ASSERT_TRUE(p0.ok() && p1.ok());
      EXPECT_LE((*p1)->est_cost, (*p0)->est_cost)
          << VeHeuristicName(h) << " group-by " << var;
    }
  }
}

TEST_F(SmallSupplyChainTest, VeRecordsEliminationOrder) {
  VeOptions options;
  VeOptimizer ve(options);
  MpfQuerySpec query{{"wid"}, {}};
  auto plan = ve.Optimize(schema_.view, query, catalog_, cost_model_);
  ASSERT_TRUE(plan.ok());
  // Every explicitly eliminated variable is a non-query variable; a single
  // GroupBy may absorb several clique-local variables at once, so the order
  // can be shorter than the four non-query variables but never empty.
  EXPECT_GE(ve.last_elimination_order().size(), 1u);
  EXPECT_LE(ve.last_elimination_order().size(), 4u);
  EXPECT_FALSE(varset::Contains(ve.last_elimination_order(), "wid"));
  for (const auto& var : ve.last_elimination_order()) {
    EXPECT_TRUE(varset::Contains({"pid", "sid", "cid", "tid"}, var)) << var;
  }
}

TEST_F(SmallSupplyChainTest, FdPruningUsesProjection) {
  // With fd_pruning, sid (key member only via contracts' (pid,sid) key...)
  // Only variables outside *every* key are projection-eligible. In the
  // supply-chain schema cid is not part of warehouses' key (wid) nor any
  // other key... cid is in ctdeals' key (cid,tid). So the only candidate
  // would be a variable in no key at all; the schema has none, hence
  // fd_pruning must not change results.
  VeOptions options;
  options.extended = true;
  options.fd_pruning = true;
  VeOptimizer ve(options);
  MpfQuerySpec query{{"wid"}, {}};
  auto plan = ve.Optimize(schema_.view, query, catalog_, cost_model_);
  ASSERT_TRUE(plan.ok());
  auto expected = Naive(query);
  ASSERT_TRUE(expected.ok());
  auto result = RunPlan(**plan);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6));
}

TEST(FdPruningTest, ProjectsNonKeyVariables) {
  // Dedicated schema where a variable is determined by every table's key:
  // t1(a, b; f) with key {a}, t2(a, c; f) with key {a}. Variable b and c are
  // in no key, so querying {a} can project them away without aggregation.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 4).ok());
  ASSERT_TRUE(catalog.RegisterVariable("b", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("c", 3).ok());
  auto t1 = std::make_shared<Table>("t1", Schema({"a", "b"}, "f"));
  auto t2 = std::make_shared<Table>("t2", Schema({"a", "c"}, "f"));
  for (VarValue a = 0; a < 4; ++a) {
    t1->AppendRow({a, static_cast<VarValue>(a % 3)}, 1.0 + a);
    t2->AppendRow({a, static_cast<VarValue>((a + 1) % 3)}, 2.0 + a);
  }
  ASSERT_TRUE(t1->SetKeyVars({"a"}).ok());
  ASSERT_TRUE(t2->SetKeyVars({"a"}).ok());
  ASSERT_TRUE(catalog.RegisterTable(t1).ok());
  ASSERT_TRUE(catalog.RegisterTable(t2).ok());

  MpfViewDef view{"v", {"t1", "t2"}, Semiring::SumProduct()};
  MpfQuerySpec query{{"a"}, {}};
  SimpleCostModel cost_model;
  VeOptions options;
  options.extended = true;
  options.fd_pruning = true;
  VeOptimizer ve(options);
  auto plan = ve.Optimize(view, query, catalog, cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The plan must use a Project (not GroupBy) at the root.
  EXPECT_EQ((*plan)->kind, PlanNodeKind::kProject);

  exec::Executor executor(catalog, view.semiring);
  auto result = executor.Execute(**plan, "result");
  ASSERT_TRUE(result.ok());
  auto expected = fr::EvaluateNaiveMpf({t1, t2}, {"a"}, {},
                                       Semiring::SumProduct(), "naive");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-9));
}

TEST(LinearityTest, PaperExampleValues) {
  // Section 7.1: for Q1, sigma_cid = 1000 and sigma_hat_cid = 5000 -> the
  // inequality does NOT hold (nonlinear plans preferred). For Q2,
  // sigma_tid = sigma_hat_tid = 500 -> it holds.
  EXPECT_FALSE(LinearPlanAdmissible(1000.0, 5000.0));
  EXPECT_TRUE(LinearPlanAdmissible(500.0, 500.0));
}

TEST(LinearityTest, CatalogDriven) {
  Catalog catalog;
  SupplyChainParams params;  // full Table 1 sizes; generation not needed --
  params.scale = 0.01;       // use a small instance, check via statistics
  auto schema = GenerateSupplyChain(params, catalog);
  ASSERT_TRUE(schema.ok());
  // At scale 0.01: sigma_cid=10, smallest relation with cid is warehouses
  // (50 rows) or ctdeals (10*5=50)... both larger than sigma, test runs.
  auto r = LinearPlanAdmissible(schema->view, "tid", catalog);
  ASSERT_TRUE(r.ok());
  auto r2 = LinearPlanAdmissible(schema->view, "nope", catalog);
  EXPECT_FALSE(r2.ok());
}

TEST(SyntheticSchemaTest, OptimizersAgreeOnAllSchemas) {
  SimpleCostModel cost_model;
  for (SyntheticKind kind : {SyntheticKind::kStar, SyntheticKind::kLinear,
                             SyntheticKind::kMultistar}) {
    Catalog catalog;
    SyntheticParams params;
    params.kind = kind;
    params.num_tables = 4;
    params.domain_size = 3;
    auto schema = GenerateSynthetic(params, catalog);
    ASSERT_TRUE(schema.ok()) << schema.status();
    MpfQuerySpec query{{schema->linear_vars[0]}, {}};

    std::vector<TablePtr> tables;
    for (const auto& rel : schema->view.relations) {
      tables.push_back(*catalog.GetTable(rel));
    }
    auto expected = fr::EvaluateNaiveMpf(tables, query.group_vars, {},
                                         schema->view.semiring, "naive");
    ASSERT_TRUE(expected.ok());

    for (auto& optimizer : AllOptimizers()) {
      auto plan = optimizer->Optimize(schema->view, query, catalog, cost_model);
      ASSERT_TRUE(plan.ok())
          << optimizer->name() << " on " << SyntheticKindName(kind) << ": "
          << plan.status();
      exec::Executor executor(catalog, schema->view.semiring);
      auto result = executor.Execute(**plan, "result");
      ASSERT_TRUE(result.ok()) << optimizer->name();
      EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-6))
          << optimizer->name() << " on " << SyntheticKindName(kind);
    }
  }
}

TEST(SafeRetainVarsTest, KeepsQueryAndSharedVariables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("b", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("c", 2).ok());
  auto t1 = std::make_shared<Table>("t1", Schema({"a", "b"}, "f"));
  auto t2 = std::make_shared<Table>("t2", Schema({"b", "c"}, "f"));
  t1->AppendRow({0, 0}, 1.0);
  t2->AppendRow({0, 0}, 1.0);
  ASSERT_TRUE(catalog.RegisterTable(t1).ok());
  ASSERT_TRUE(catalog.RegisterTable(t2).ok());
  SimpleCostModel cost_model;
  MpfViewDef view{"v", {"t1", "t2"}, Semiring::SumProduct()};
  MpfQuerySpec query{{"c"}, {}};
  auto ctx = QueryContext::Make(view, query, catalog, cost_model);
  ASSERT_TRUE(ctx.ok());
  // Subplan covering only t1 (mask 0b01): must retain c (query var, absent
  // anyway) and b (shared with uncovered t2); may drop a.
  auto safe = SafeRetainVars(*ctx, 0b01, {"a", "b"});
  EXPECT_EQ(safe, (std::vector<std::string>{"b"}));
  // Covering both: only query vars survive.
  auto safe_all = SafeRetainVars(*ctx, 0b11, {"a", "b", "c"});
  EXPECT_EQ(safe_all, (std::vector<std::string>{"c"}));
}

TEST(QueryContextTest, RejectsBadQueries) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 2).ok());
  auto t1 = std::make_shared<Table>("t1", Schema({"a"}, "f"));
  t1->AppendRow({0}, 1.0);
  ASSERT_TRUE(catalog.RegisterTable(t1).ok());
  SimpleCostModel cost_model;
  MpfViewDef view{"v", {"t1"}, Semiring::SumProduct()};

  EXPECT_FALSE(QueryContext::Make(MpfViewDef{"e", {}, Semiring::SumProduct()},
                                  MpfQuerySpec{{"a"}, {}}, catalog, cost_model)
                   .ok());
  EXPECT_FALSE(
      QueryContext::Make(view, MpfQuerySpec{{"zz"}, {}}, catalog, cost_model)
          .ok());
  EXPECT_FALSE(QueryContext::Make(view, MpfQuerySpec{{"a"}, {{"zz", 0}}},
                                  catalog, cost_model)
                   .ok());
  EXPECT_FALSE(QueryContext::Make(MpfViewDef{"v", {"missing"}, Semiring::SumProduct()},
                                  MpfQuerySpec{{"a"}, {}}, catalog, cost_model)
                   .ok());
}

TEST(SingleRelationViewTest, Works) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("b", 2).ok());
  auto t1 = std::make_shared<Table>("t1", Schema({"a", "b"}, "f"));
  t1->AppendRow({0, 0}, 1.0);
  t1->AppendRow({0, 1}, 2.0);
  t1->AppendRow({1, 0}, 4.0);
  ASSERT_TRUE(catalog.RegisterTable(t1).ok());
  SimpleCostModel cost_model;
  MpfViewDef view{"v", {"t1"}, Semiring::SumProduct()};
  MpfQuerySpec query{{"a"}, {}};
  CsPlusOptimizer optimizer(true);
  auto plan = optimizer.Optimize(view, query, catalog, cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();
  exec::Executor executor(catalog, view.semiring);
  auto result = executor.Execute(**plan, "r");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->NumRows(), 2u);
  EXPECT_DOUBLE_EQ((*result)->measure(0), 3.0);
  EXPECT_DOUBLE_EQ((*result)->measure(1), 4.0);
}

}  // namespace
}  // namespace mpfdb::opt
