#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/csv.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace mpfdb {
namespace {

TEST(SchemaTest, IndexOfAndHasVariable) {
  Schema schema({"a", "b", "c"}, "f");
  EXPECT_EQ(schema.arity(), 3u);
  EXPECT_EQ(*schema.IndexOf("b"), 1u);
  EXPECT_FALSE(schema.IndexOf("z").has_value());
  EXPECT_TRUE(schema.HasVariable("c"));
  EXPECT_EQ(schema.measure_name(), "f");
  EXPECT_EQ(schema.ToString(), "(a, b, c; f)");
}

TEST(VarsetTest, UnionPreservesOrder) {
  EXPECT_EQ(varset::Union({"a", "b"}, {"b", "c"}),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(varset::Union({}, {"x"}), (std::vector<std::string>{"x"}));
}

TEST(VarsetTest, IntersectAndDifference) {
  EXPECT_EQ(varset::Intersect({"a", "b", "c"}, {"c", "a"}),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(varset::Difference({"a", "b", "c"}, {"b"}),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(varset::Intersect({"a"}, {"b"}).empty());
}

TEST(VarsetTest, SubsetAndSetEquals) {
  EXPECT_TRUE(varset::IsSubset({"a"}, {"b", "a"}));
  EXPECT_FALSE(varset::IsSubset({"a", "z"}, {"a"}));
  EXPECT_TRUE(varset::SetEquals({"a", "b"}, {"b", "a"}));
  EXPECT_FALSE(varset::SetEquals({"a", "b"}, {"a"}));
  EXPECT_TRUE(varset::IsSubset({}, {}));
}

TEST(TableTest, AppendAndRead) {
  Table t("t", Schema({"x", "y"}, "f"));
  t.AppendRow({1, 2}, 0.5);
  t.AppendRow({3, 4}, 1.5);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Row(0).var(0), 1);
  EXPECT_EQ(t.Row(0).var(1), 2);
  EXPECT_EQ(t.Row(0).measure, 0.5);
  EXPECT_EQ(t.Row(1).var(0), 3);
  EXPECT_EQ(t.Row(1).measure, 1.5);
}

TEST(TableTest, ZeroArityTableHoldsScalar) {
  Table t("scalar", Schema({}, "f"));
  t.AppendRow(std::vector<VarValue>{}, 7.25);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Row(0).arity, 0u);
  EXPECT_EQ(t.Row(0).measure, 7.25);
}

TEST(TableTest, SortByVariables) {
  Table t("t", Schema({"x", "y"}, "f"));
  t.AppendRow({2, 1}, 1.0);
  t.AppendRow({1, 9}, 2.0);
  t.AppendRow({1, 3}, 3.0);
  t.SortByVariables({0, 1});
  EXPECT_EQ(t.Row(0).var(0), 1);
  EXPECT_EQ(t.Row(0).var(1), 3);
  EXPECT_EQ(t.Row(0).measure, 3.0);
  EXPECT_EQ(t.Row(1).var(1), 9);
  EXPECT_EQ(t.Row(2).var(0), 2);
}

TEST(TableTest, SortBySecondKeyOnly) {
  Table t("t", Schema({"x", "y"}, "f"));
  t.AppendRow({5, 3}, 1.0);
  t.AppendRow({6, 1}, 2.0);
  t.SortByVariables({1});
  EXPECT_EQ(t.Row(0).var(1), 1);
  EXPECT_EQ(t.Row(1).var(1), 3);
}

TEST(TableTest, CloneIsDeep) {
  Table t("t", Schema({"x"}, "f"));
  t.AppendRow({1}, 1.0);
  auto copy = t.Clone("copy");
  copy->AppendRow({2}, 2.0);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(copy->NumRows(), 2u);
  EXPECT_EQ(copy->name(), "copy");
}

TEST(TableTest, ToStringTruncates) {
  Table t("t", Schema({"x"}, "f"));
  for (int i = 0; i < 30; ++i) t.AppendRow({i}, 1.0);
  std::string dump = t.ToString(5);
  EXPECT_NE(dump.find("... 25 more rows"), std::string::npos);
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.RegisterVariable("x", 10).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("y", 5).ok());
  }

  Catalog catalog_;
};

TEST_F(CatalogTest, VariableRegistration) {
  EXPECT_TRUE(catalog_.HasVariable("x"));
  EXPECT_FALSE(catalog_.HasVariable("z"));
  EXPECT_EQ(*catalog_.DomainSize("x"), 10);
  EXPECT_FALSE(catalog_.DomainSize("z").ok());
  // Same size re-registration is OK; conflicting size is an error.
  EXPECT_TRUE(catalog_.RegisterVariable("x", 10).ok());
  EXPECT_EQ(catalog_.RegisterVariable("x", 11).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.RegisterVariable("bad", 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, TableRegistration) {
  auto t = std::make_shared<Table>("t", Schema({"x", "y"}, "f"));
  t->AppendRow({1, 2}, 1.0);
  ASSERT_TRUE(catalog_.RegisterTable(t).ok());
  EXPECT_TRUE(catalog_.HasTable("t"));
  EXPECT_EQ(*catalog_.Cardinality("t"), 1);
  EXPECT_EQ(catalog_.RegisterTable(t).code(), StatusCode::kAlreadyExists);

  auto bad = std::make_shared<Table>("bad", Schema({"nope"}, "f"));
  EXPECT_EQ(catalog_.RegisterTable(bad).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(catalog_.RegisterTable(nullptr).code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(catalog_.DropTable("t").ok());
  EXPECT_FALSE(catalog_.HasTable("t"));
  EXPECT_EQ(catalog_.DropTable("t").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, SmallestRelationWith) {
  auto big = std::make_shared<Table>("big", Schema({"x", "y"}, "f"));
  for (int i = 0; i < 20; ++i) big->AppendRow({i % 10, i % 5}, 1.0);
  auto small = std::make_shared<Table>("small", Schema({"x"}, "f"));
  for (int i = 0; i < 3; ++i) small->AppendRow({i}, 1.0);
  ASSERT_TRUE(catalog_.RegisterTable(big).ok());
  ASSERT_TRUE(catalog_.RegisterTable(small).ok());

  EXPECT_EQ(*catalog_.SmallestRelationWith("x", {"big", "small"}), 3);
  EXPECT_EQ(*catalog_.SmallestRelationWith("y", {"big", "small"}), 20);
  EXPECT_FALSE(catalog_.SmallestRelationWith("y", {"small"}).ok());
}

TEST_F(CatalogTest, Density) {
  auto t = std::make_shared<Table>("t", Schema({"x", "y"}, "f"));
  for (int i = 0; i < 25; ++i) t->AppendRow({i % 10, i % 5}, 1.0);
  ASSERT_TRUE(catalog_.RegisterTable(t).ok());
  EXPECT_DOUBLE_EQ(*catalog_.Density("t"), 25.0 / 50.0);
}

TEST(CsvTest, RoundTrip) {
  Table t("t", Schema({"x", "y"}, "f"));
  t.AppendRow({1, 2}, 0.25);
  t.AppendRow({3, 4}, 1.75);
  std::string path =
      (std::filesystem::temp_directory_path() / "mpfdb_csv_test.csv").string();
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  auto loaded = ReadTableCsv("t2", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumRows(), 2u);
  EXPECT_EQ((*loaded)->schema().variables(),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ((*loaded)->schema().measure_name(), "f");
  EXPECT_EQ((*loaded)->Row(1).var(0), 3);
  EXPECT_DOUBLE_EQ((*loaded)->Row(1).measure, 1.75);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadTableCsv("t", "/nonexistent/nope.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, MalformedRowIsInvalidArgument) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mpfdb_csv_bad.csv").string();
  {
    std::ofstream out(path);
    out << "x,f\n1,2\nbroken\n";
  }
  EXPECT_EQ(ReadTableCsv("t", path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// Writes `body` to a temp CSV, reads it back, and returns the status.
Status ReadCorruptCsv(const std::string& name, const std::string& body) {
  std::string path =
      (std::filesystem::temp_directory_path() / ("mpfdb_csv_" + name + ".csv"))
          .string();
  {
    std::ofstream out(path);
    out << body;
  }
  Status status = ReadTableCsv("t", path).status();
  std::remove(path.c_str());
  return status;
}

TEST(CsvTest, WrongArityReportsLineNumberAndCounts) {
  Status s = ReadCorruptCsv("arity", "x,y,f\n1,2,0.5\n3,4\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("expected 3 fields, got 2"), std::string::npos)
      << s.message();
}

TEST(CsvTest, UnparseableVariableNamesColumnAndLine) {
  Status s = ReadCorruptCsv("badvar", "x,y,f\n1,abc,0.5\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("'abc'"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("column 'y'"), std::string::npos) << s.message();
}

TEST(CsvTest, TrailingGarbageInVariableIsRejected) {
  Status s = ReadCorruptCsv("trailvar", "x,f\n12abc,0.5\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("'12abc'"), std::string::npos) << s.message();
}

TEST(CsvTest, VariableOverflowing32BitsIsRejected) {
  Status s = ReadCorruptCsv("overflow", "x,f\n99999999999999,0.5\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s.message();
}

TEST(CsvTest, UnparseableMeasureReportsLine) {
  Status s = ReadCorruptCsv("badmeasure", "x,f\n1,0.5\n2,oops\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("'oops'"), std::string::npos) << s.message();
}

TEST(CsvTest, NanMeasureIsRejected) {
  Status s = ReadCorruptCsv("nanmeasure", "x,f\n1,nan\n");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("NaN"), std::string::npos) << s.message();
}

TEST(CsvTest, WhitespacePaddedNumericsStillParse) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mpfdb_csv_ws.csv").string();
  {
    std::ofstream out(path);
    out << "x,f\n1 ,0.5 \n";
  }
  auto loaded = ReadTableCsv("t", path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->NumRows(), 1u);
  EXPECT_EQ((*loaded)->Row(0).var(0), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpfdb
