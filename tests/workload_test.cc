#include <gtest/gtest.h>

#include "fr/algebra.h"
#include "workload/bp.h"
#include "workload/generators.h"
#include "workload/loopy_bp.h"
#include "workload/vecache.h"

namespace mpfdb::workload {
namespace {

// Small supply chain used throughout.
class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SupplyChainParams params;
    params.scale = 0.004;  // pid=400, sid=40, wid=20, cid=4, tid=2
    params.seed = 99;
    auto schema = GenerateSupplyChain(params, catalog_);
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = *schema;
    for (const auto& rel : schema_.view.relations) {
      tables_.push_back(*catalog_.GetTable(rel));
    }
  }

  // Ground-truth marginal of the full view onto `vars` (with selections).
  TablePtr Truth(const std::vector<std::string>& vars,
                 const std::vector<fr::Selection>& selections = {}) {
    auto result = fr::EvaluateNaiveMpf(tables_, vars, selections,
                                       schema_.view.semiring, "truth");
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  Catalog catalog_;
  SupplyChainSchema schema_;
  std::vector<TablePtr> tables_;
};

TEST_F(WorkloadTest, BpEstablishesCorrectnessInvariant) {
  auto updated = BeliefPropagation(tables_, schema_.view.semiring);
  ASSERT_TRUE(updated.ok()) << updated.status();
  ASSERT_EQ(updated->size(), tables_.size());
  // Definition 5: marginalizing any updated table onto any of its variables
  // must equal the view-level marginal.
  for (const TablePtr& t : *updated) {
    for (const auto& var : t->schema().variables()) {
      auto from_table =
          fr::Marginalize(*t, {var}, schema_.view.semiring, "from_table");
      ASSERT_TRUE(from_table.ok());
      EXPECT_TRUE(fr::TablesEqual(*Truth({var}), **from_table, 1e-6))
          << "table " << t->name() << " variable " << var;
    }
  }
}

TEST_F(WorkloadTest, BpDoesNotModifyInputs) {
  size_t rows_before = tables_[0]->NumRows();
  double measure_before = tables_[0]->measure(0);
  auto updated = BeliefPropagation(tables_, schema_.view.semiring);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(tables_[0]->NumRows(), rows_before);
  EXPECT_EQ(tables_[0]->measure(0), measure_before);
}

TEST_F(WorkloadTest, BpRejectsCyclicSchema) {
  auto view = AddStdeals(schema_, catalog_, 1.0);
  ASSERT_TRUE(view.ok()) << view.status();
  std::vector<TablePtr> cyclic = tables_;
  cyclic.push_back(*catalog_.GetTable("stdeals"));
  auto updated = BeliefPropagation(cyclic, schema_.view.semiring);
  EXPECT_EQ(updated.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WorkloadTest, BpRejectsBooleanSemiring) {
  auto updated = BeliefPropagation(tables_, Semiring::BoolOrAnd());
  EXPECT_EQ(updated.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WorkloadTest, JunctionTreeBpHandlesCyclicSchema) {
  auto view = AddStdeals(schema_, catalog_, 1.0);
  ASSERT_TRUE(view.ok()) << view.status();
  std::vector<TablePtr> cyclic = tables_;
  cyclic.push_back(*catalog_.GetTable("stdeals"));

  auto result = JunctionTreeBp(cyclic, schema_.view.semiring, catalog_);
  ASSERT_TRUE(result.ok()) << result.status();

  // Ground truth over the extended view.
  auto truth = [&](const std::string& var) {
    auto r = fr::EvaluateNaiveMpf(cyclic, {var}, {}, schema_.view.semiring,
                                  "truth");
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  };
  for (const TablePtr& t : result->clique_tables) {
    for (const auto& var : t->schema().variables()) {
      auto from_table =
          fr::Marginalize(*t, {var}, schema_.view.semiring, "from_table");
      ASSERT_TRUE(from_table.ok());
      EXPECT_TRUE(fr::TablesEqual(*truth(var), **from_table, 1e-6))
          << "clique " << t->name() << " variable " << var;
    }
  }
}

TEST_F(WorkloadTest, VeCacheSatisfiesInvariant) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok()) << cache.status();
  EXPECT_FALSE(cache->caches().empty());
  EXPECT_EQ(cache->elimination_order().size(), 5u);

  // Theorem 4: answering any single-variable query from the cache equals
  // evaluating against the view.
  for (const auto& var : {"pid", "sid", "wid", "cid", "tid"}) {
    MpfQuerySpec query{{var}, {}};
    auto answer = cache->Answer(query);
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(*Truth({var}), **answer, 1e-6)) << var;
  }
}

TEST_F(WorkloadTest, VeCacheRestrictedDomainProtocol) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok()) << cache.status();
  // "How much would each contractor lose if transporter 1 went off-line?"
  MpfQuerySpec query{{"cid"}, {{"tid", 1}}};
  auto answer = cache->Answer(query);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(fr::TablesEqual(*Truth({"cid"}, {{"tid", 1}}), **answer, 1e-6));

  // Selection on a variable co-located with the query variable.
  MpfQuerySpec query2{{"wid"}, {{"cid", 2}}};
  auto answer2 = cache->Answer(query2);
  ASSERT_TRUE(answer2.ok()) << answer2.status();
  EXPECT_TRUE(fr::TablesEqual(*Truth({"wid"}, {{"cid", 2}}), **answer2, 1e-6));
}

TEST_F(WorkloadTest, VeCacheRestrictedAnswerQueries) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok()) << cache.status();
  // Restricted answer: selection on the query variable itself.
  MpfQuerySpec query{{"wid"}, {{"wid", 3}}};
  auto answer = cache->Answer(query);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(fr::TablesEqual(*Truth({"wid"}, {{"wid", 3}}), **answer, 1e-6));
}

TEST_F(WorkloadTest, VeCacheAnswersMultiVariableQueries) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok()) << cache.status();
  // Pairs spanning different caches of the chain: the cross-clique
  // combination must divide out separators so mass is not double-counted.
  const std::vector<std::vector<std::string>> var_sets = {
      {"cid", "tid"}, {"pid", "tid"}, {"sid", "cid"},
      {"wid", "tid"}, {"pid", "sid", "wid"}};
  for (const auto& vars : var_sets) {
    auto answer = cache->Answer(MpfQuerySpec{vars, {}});
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(*Truth(vars), **answer, 1e-6))
        << "group by " << vars[0] << "...";
  }
  // With a selection too.
  MpfQuerySpec query{{"pid", "tid"}, {{"cid", 1}}};
  auto answer = cache->Answer(query);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(
      fr::TablesEqual(*Truth({"pid", "tid"}, {{"cid", 1}}), **answer, 1e-6));
}

TEST_F(WorkloadTest, VeCacheWidthHeuristic) {
  VeCacheOptions options;
  options.use_width_heuristic = true;
  auto cache = VeCache::Build(schema_.view, catalog_, options);
  ASSERT_TRUE(cache.ok()) << cache.status();
  for (const auto& var : {"wid", "tid"}) {
    MpfQuerySpec query{{var}, {}};
    auto answer = cache->Answer(query);
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(*Truth({var}), **answer, 1e-6)) << var;
  }
}

TEST_F(WorkloadTest, VeCacheUnknownVariableRejected) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->Answer(MpfQuerySpec{{"nope"}, {}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cache->WithSelection("nope", 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(WorkloadTest, VeCacheRejectsBooleanSemiring) {
  MpfViewDef view = schema_.view;
  view.semiring = Semiring::BoolOrAnd();
  EXPECT_EQ(VeCache::Build(view, catalog_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(WorkloadTest, VeCacheTotalRowsPositive) {
  auto cache = VeCache::Build(schema_.view, catalog_);
  ASSERT_TRUE(cache.ok());
  EXPECT_GT(cache->TotalCacheRows(), 0);
}

TEST(LoopyBpTest, ExactOnTreeFactorGraphs) {
  // On an acyclic schema, loopy BP converges to the exact marginals.
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("b", 3).ok());
  ASSERT_TRUE(catalog.RegisterVariable("c", 2).ok());
  Rng rng(4);
  auto t1 = std::make_shared<Table>("t1", Schema({"a", "b"}, "f"));
  auto t2 = std::make_shared<Table>("t2", Schema({"b", "c"}, "f"));
  for (VarValue a = 0; a < 3; ++a)
    for (VarValue b = 0; b < 3; ++b)
      t1->AppendRow({a, b}, rng.UniformDouble(0.1, 2.0));
  for (VarValue b = 0; b < 3; ++b)
    for (VarValue c = 0; c < 2; ++c)
      t2->AppendRow({b, c}, rng.UniformDouble(0.1, 2.0));

  auto result = LoopyBeliefPropagation({t1, t2}, catalog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  for (const auto& var : {"a", "b", "c"}) {
    auto truth = fr::EvaluateNaiveMpf({t1, t2}, {var}, {},
                                      Semiring::SumProduct(), "truth");
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(fr::NormalizeMeasure(**truth, Semiring::SumProduct()).ok());
    EXPECT_TRUE(
        fr::TablesEqual(**truth, *result->marginals.at(var), 1e-6))
        << var;
  }
}

TEST(LoopyBpTest, ApproximatesCyclicSchemas) {
  // Triangle a-b, b-c, c-a: cyclic, so loopy BP is approximate; estimates
  // must still be close to exact for mild potentials.
  Catalog catalog;
  for (const auto& v : {"a", "b", "c"}) {
    ASSERT_TRUE(catalog.RegisterVariable(v, 2).ok());
  }
  Rng rng(15);
  auto make = [&](const std::string& name, const std::string& x,
                  const std::string& y) {
    auto t = std::make_shared<Table>(name, Schema({x, y}, "f"));
    for (VarValue i = 0; i < 2; ++i)
      for (VarValue j = 0; j < 2; ++j)
        t->AppendRow({i, j}, rng.UniformDouble(0.6, 1.4));
    return t;
  };
  std::vector<TablePtr> tables = {make("t1", "a", "b"), make("t2", "b", "c"),
                                  make("t3", "c", "a")};
  LoopyBpOptions options;
  options.damping = 0.3;
  auto result = LoopyBeliefPropagation(tables, catalog, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  for (const auto& var : {"a", "b", "c"}) {
    auto truth = fr::EvaluateNaiveMpf(tables, {var}, {},
                                      Semiring::SumProduct(), "truth");
    ASSERT_TRUE(truth.ok());
    ASSERT_TRUE(fr::NormalizeMeasure(**truth, Semiring::SumProduct()).ok());
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_NEAR((*truth)->measure(i), result->marginals.at(var)->measure(i),
                  0.05)
          << var;
    }
  }
}

TEST(LoopyBpTest, RejectsBadOptions) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("a", 2).ok());
  auto t = std::make_shared<Table>("t", Schema({"a"}, "f"));
  t->AppendRow({0}, 1.0);
  t->AppendRow({1}, 2.0);
  LoopyBpOptions bad;
  bad.damping = 1.0;
  EXPECT_FALSE(LoopyBeliefPropagation({t}, catalog, bad).ok());
  EXPECT_FALSE(LoopyBeliefPropagation({}, catalog).ok());
  // Single-factor graph: belief equals the normalized factor.
  auto result = LoopyBeliefPropagation({t}, catalog);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->marginals.at("a")->measure(0), 1.0 / 3, 1e-12);
  EXPECT_NEAR(result->marginals.at("a")->measure(1), 2.0 / 3, 1e-12);
}

TEST(GeneratorTest, SupplyChainCardinalitiesMatchTable1Ratios) {
  SupplyChainParams params;
  EXPECT_EQ(params.num_parts(), 100000);
  EXPECT_EQ(params.num_suppliers(), 10000);
  EXPECT_EQ(params.num_warehouses(), 5000);
  EXPECT_EQ(params.num_contractors(), 1000);
  EXPECT_EQ(params.num_transporters(), 500);
  EXPECT_EQ(params.contracts_rows(), 100000);
  EXPECT_EQ(params.location_rows(), 1000000);
  EXPECT_EQ(params.ctdeals_rows(), 500000);
}

TEST(GeneratorTest, GeneratedTablesHonorFdAndCardinality) {
  Catalog catalog;
  SupplyChainParams params;
  params.scale = 0.01;
  auto schema = GenerateSupplyChain(params, catalog);
  ASSERT_TRUE(schema.ok()) << schema.status();
  for (const auto& rel : schema->view.relations) {
    TablePtr t = *catalog.GetTable(rel);
    EXPECT_TRUE(fr::CheckFunctionalDependency(*t).ok()) << rel;
    EXPECT_GT(t->NumRows(), 0u) << rel;
  }
  EXPECT_EQ((*catalog.GetTable("warehouses"))->NumRows(), 50u);
  EXPECT_EQ((*catalog.GetTable("transporters"))->NumRows(), 5u);
}

TEST(GeneratorTest, SyntheticSchemasAreCompleteRelations) {
  for (SyntheticKind kind : {SyntheticKind::kStar, SyntheticKind::kLinear,
                             SyntheticKind::kMultistar}) {
    Catalog catalog;
    SyntheticParams params;
    params.kind = kind;
    params.num_tables = 5;
    params.domain_size = 4;
    auto schema = GenerateSynthetic(params, catalog);
    ASSERT_TRUE(schema.ok()) << schema.status();
    EXPECT_EQ(schema->view.relations.size(), 5u);
    EXPECT_EQ(schema->linear_vars.size(), 6u);
    for (const auto& rel : schema->view.relations) {
      TablePtr t = *catalog.GetTable(rel);
      auto complete = fr::IsComplete(*t, catalog);
      ASSERT_TRUE(complete.ok());
      EXPECT_TRUE(*complete) << SyntheticKindName(kind) << "/" << rel;
    }
    switch (kind) {
      case SyntheticKind::kStar:
        EXPECT_EQ(schema->common_vars.size(), 1u);
        break;
      case SyntheticKind::kLinear:
        EXPECT_TRUE(schema->common_vars.empty());
        break;
      case SyntheticKind::kMultistar:
        EXPECT_GE(schema->common_vars.size(), 2u);
        break;
    }
  }
}

TEST(GeneratorTest, DensityKnobControlsCtdeals) {
  Catalog catalog;
  SupplyChainParams params;
  params.scale = 0.01;
  params.ctdeals_density = 0.5;
  auto schema = GenerateSupplyChain(params, catalog);
  ASSERT_TRUE(schema.ok());
  // cid domain 10, tid domain 5, density 0.5 -> about 25 rows (Bernoulli
  // thinning makes it approximate).
  TablePtr ctdeals = *catalog.GetTable("ctdeals");
  EXPECT_GT(ctdeals->NumRows(), 10u);
  EXPECT_LT(ctdeals->NumRows(), 40u);
}

TEST(GeneratorTest, SyntheticRejectsBadParams) {
  Catalog catalog;
  SyntheticParams params;
  params.num_tables = 0;
  EXPECT_FALSE(GenerateSynthetic(params, catalog).ok());
}

}  // namespace
}  // namespace mpfdb::workload
