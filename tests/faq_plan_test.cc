// The FAQ planner's contract: GYO reduction finds cyclic cores, cyclic
// workloads (triangle / longer cycles / grids) plan into a worst-case-
// optimal MultiwayJoin whose golden signatures are stable, acyclic views
// delegate to the shared binary planner (no multiway node, answers equal to
// the other optimizers' bit for bit on exact measures), and EXPLAIN /
// EXPLAIN ANALYZE render the chosen variable order and per-variable trie
// iterator counters.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "fr/algebra.h"
#include "opt/faq.h"
#include "random_view.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

// Deterministic triangle with small-integer measures: products and sums stay
// exact in doubles, so plans with different shapes must agree at tol 0.0.
Catalog IntegerTriangle(int64_t domain, double density, uint64_t seed) {
  Catalog catalog;
  Rng rng(seed);
  for (const char* v : {"a", "b", "c"}) {
    EXPECT_TRUE(catalog.RegisterVariable(v, domain).ok());
  }
  auto fill = [&](const std::string& name, const std::string& x,
                  const std::string& y) {
    auto t = std::make_shared<Table>(name, Schema({x, y}, "f"));
    for (int64_t i = 0; i < domain; ++i) {
      for (int64_t j = 0; j < domain; ++j) {
        if (!rng.Bernoulli(density)) continue;
        t->AppendRow({static_cast<VarValue>(i), static_cast<VarValue>(j)},
                     static_cast<double>(rng.UniformInt(1, 8)));
      }
    }
    if (t->Empty()) t->AppendRow({0, 0}, 1.0);
    EXPECT_TRUE(catalog.RegisterTable(t).ok());
  };
  fill("r", "a", "b");
  fill("s", "b", "c");
  fill("t", "c", "a");
  return catalog;
}

MpfViewDef TriangleView() {
  MpfViewDef view;
  view.name = "tri";
  view.relations = {"r", "s", "t"};
  view.semiring = Semiring::SumProduct();
  return view;
}

TEST(GyoTest, FindsCyclicCores) {
  using Edges = std::vector<std::vector<std::string>>;
  // A chain is acyclic: everything reduces away.
  EXPECT_TRUE(opt::GyoCyclicCore(Edges{{"a", "b"}, {"b", "c"}, {"c", "d"}})
                  .empty());
  // So is a star, and a relation contained in another.
  EXPECT_TRUE(opt::GyoCyclicCore(Edges{{"a", "b", "c"}, {"b"}, {"c", "d"}})
                  .empty());
  // The triangle survives whole.
  EXPECT_EQ(opt::GyoCyclicCore(Edges{{"a", "b"}, {"b", "c"}, {"c", "a"}}),
            (std::vector<size_t>{0, 1, 2}));
  // A pendant edge hanging off a triangle is shaved; the core remains.
  EXPECT_EQ(opt::GyoCyclicCore(
                Edges{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "d"}}),
            (std::vector<size_t>{0, 1, 2}));
  // Two equal edges are not a cycle.
  EXPECT_TRUE(opt::GyoCyclicCore(Edges{{"a", "b"}, {"a", "b"}}).empty());
}

TEST(FaqPlanTest, TriangleGoldenSignature) {
  Catalog catalog;
  auto schema = workload::GenerateCycle(workload::CycleParams{}, catalog);
  ASSERT_TRUE(schema.ok()) << schema.status();
  SimpleCostModel cost_model;
  opt::FaqOptimizer faq;
  auto plan = faq.Optimize(schema->view, MpfQuerySpec{{"x0"}, {}}, catalog,
                           cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(PlanSignature(**plan),
            "GroupBy{x0}(MultiwayJoin{x0,x1,x2}("
            "Scan(e0), Scan(e1), Scan(e2)))");
  // The variable-order IR reports the eliminated variables in search order.
  EXPECT_EQ(faq.last_variable_order(),
            (std::vector<std::string>{"x1", "x2"}));
}

TEST(FaqPlanTest, LongerCycleFallsBackWhenAgmBoundIsLoose) {
  // The AGM bound of a 4-cycle is N^2 — no better than the pairwise join's
  // worst case — so the honest cost comparison keeps the binary plan (the
  // multiway node only pays off when the fractional cover beats pairwise,
  // as on the triangle's N^1.5). The fallback still reports its variable
  // order through the shared IR.
  Catalog catalog;
  workload::CycleParams params;
  params.num_vars = 4;
  auto schema = workload::GenerateCycle(params, catalog);
  ASSERT_TRUE(schema.ok()) << schema.status();
  SimpleCostModel cost_model;
  opt::FaqOptimizer faq;
  auto plan = faq.Optimize(schema->view, MpfQuerySpec{{"x0"}, {}}, catalog,
                           cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(PlanSignature(**plan),
            "GroupBy{x0}(Join(GroupBy{x0,x3}(Join(GroupBy{x0,x2}("
            "Join(Scan(e0), Scan(e1))), Scan(e2))), Scan(e3)))");
  EXPECT_FALSE(faq.last_variable_order().empty());
}

TEST(FaqPlanTest, GridGoldenSignature) {
  // A 2x2 grid is a 4-cycle of complete d^2-row potentials. Every even
  // cycle has fractional edge-cover number 2, so the AGM bound is the full
  // pairwise worst case while group-by pushdown caps the binary plan's
  // intermediates at the domain product — the honest cost comparison keeps
  // the binary plan (worst-case-optimal joins pay off on triangle-like
  // cores with rho* < 2, covered by the triangle golden above). The golden
  // pins both the fallback shape and the variable-order IR with the grid's
  // deliberately multi-character names.
  Catalog catalog;
  workload::GridParams params;
  params.rows = 2;
  params.cols = 2;
  params.domain_size = 8;
  auto schema = workload::GenerateGrid(params, catalog);
  ASSERT_TRUE(schema.ok()) << schema.status();
  SimpleCostModel cost_model;
  opt::FaqOptimizer faq;
  auto plan = faq.Optimize(schema->view, MpfQuerySpec{{"g0_0"}, {}}, catalog,
                           cost_model);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(PlanSignature(**plan),
            "GroupBy{g0_0}(Join(GroupBy{g0_0,g1_0}(Join(GroupBy{g0_0,g1_1}("
            "Join(Scan(p_g0_0_g0_1), Scan(p_g0_1_g1_1))), "
            "Scan(p_g1_0_g1_1))), Scan(p_g0_0_g1_0)))");
  EXPECT_EQ(faq.last_variable_order(),
            (std::vector<std::string>{"g0_1", "g1_1", "g1_0"}));

  // Multi-character grid names render unquoted (they are plain identifiers)
  // and in a stable order inside a multiway node's annotation: pin the
  // rendering with a directly built node, independent of cost selection.
  PlanBuilder builder(catalog, cost_model);
  std::vector<PlanPtr> scans;
  for (const auto& rel : schema->view.relations) {
    auto scan = builder.Scan(rel);
    ASSERT_TRUE(scan.ok()) << scan.status();
    scans.push_back(*scan);
  }
  auto multiway = builder.MultiwayJoin(
      scans, {"g0_0", "g0_1", "g1_0", "g1_1"});
  ASSERT_TRUE(multiway.ok()) << multiway.status();
  EXPECT_EQ(PlanSignature(**multiway),
            "MultiwayJoin{g0_0,g0_1,g1_0,g1_1}("
            "Scan(p_g0_0_g0_1), Scan(p_g0_0_g1_0), Scan(p_g0_1_g1_1), "
            "Scan(p_g1_0_g1_1))");
}

TEST(FaqPlanTest, AcyclicViewsDelegateToBinaryPlanning) {
  SimpleCostModel cost_model;
  {
    Catalog catalog;
    auto chain =
        workload::GenerateMatrixChain(workload::MatrixChainParams{}, catalog);
    ASSERT_TRUE(chain.ok()) << chain.status();
    opt::FaqOptimizer faq;
    auto plan = faq.Optimize(
        chain->view,
        MpfQuerySpec{{chain->vars.front(), chain->vars.back()}, {}}, catalog,
        cost_model);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(PlanSignature(**plan).find("MultiwayJoin"), std::string::npos);
  }
  {
    Catalog catalog;
    auto reach = workload::GenerateReachability(
        workload::ReachabilityParams{}, catalog);
    ASSERT_TRUE(reach.ok()) << reach.status();
    opt::FaqOptimizer faq;
    auto plan = faq.Optimize(
        reach->view,
        MpfQuerySpec{{reach->vars.front(), reach->vars.back()}, {}}, catalog,
        cost_model);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(PlanSignature(**plan).find("MultiwayJoin"), std::string::npos);
  }
}

TEST(FaqPlanTest, CyclicAnswersMatchCsPlusOnExactMeasures) {
  Catalog catalog = IntegerTriangle(40, 0.3, CaseSeed(23));
  MpfViewDef view = TriangleView();
  SimpleCostModel cost_model;
  MpfQuerySpec query{{"a"}, {}};

  for (const Semiring& semiring :
       {Semiring::SumProduct(), Semiring::MaxProduct(), Semiring::MinSum()}) {
    view.semiring = semiring;
    opt::FaqOptimizer faq;
    auto faq_plan = faq.Optimize(view, query, catalog, cost_model);
    ASSERT_TRUE(faq_plan.ok()) << faq_plan.status();
    // Premise: the cyclic core really is handled by the multiway node.
    ASSERT_NE(PlanSignature(**faq_plan).find("MultiwayJoin"),
              std::string::npos);

    auto cs = MakeOptimizer("cs+nonlinear", 0);
    ASSERT_TRUE(cs.ok());
    auto cs_plan = (*cs)->Optimize(view, query, catalog, cost_model);
    ASSERT_TRUE(cs_plan.ok()) << cs_plan.status();

    exec::Executor executor(catalog, semiring, exec::ExecOptions{});
    auto faq_result = executor.Execute(**faq_plan, "faq_out");
    ASSERT_TRUE(faq_result.ok()) << faq_result.status();
    auto cs_result = executor.Execute(**cs_plan, "cs_out");
    ASSERT_TRUE(cs_result.ok()) << cs_result.status();
    EXPECT_TRUE(fr::TablesEqual(**faq_result, **cs_result, /*tolerance=*/0.0))
        << semiring.name();
    EXPECT_GT((*faq_result)->NumRows(), 0u);
  }
}

TEST(FaqPlanTest, ReachabilityAgreesWithVe) {
  Catalog catalog;
  auto reach =
      workload::GenerateReachability(workload::ReachabilityParams{}, catalog);
  ASSERT_TRUE(reach.ok()) << reach.status();
  SimpleCostModel cost_model;
  MpfQuerySpec query{{reach->vars.front(), reach->vars.back()}, {}};

  opt::FaqOptimizer faq;
  auto faq_plan = faq.Optimize(reach->view, query, catalog, cost_model);
  ASSERT_TRUE(faq_plan.ok()) << faq_plan.status();
  auto ve = MakeOptimizer("ve(width)", 0);
  ASSERT_TRUE(ve.ok());
  auto ve_plan = (*ve)->Optimize(reach->view, query, catalog, cost_model);
  ASSERT_TRUE(ve_plan.ok()) << ve_plan.status();

  exec::Executor executor(catalog, reach->view.semiring, exec::ExecOptions{});
  auto a = executor.Execute(**faq_plan, "a");
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = executor.Execute(**ve_plan, "b");
  ASSERT_TRUE(b.ok()) << b.status();
  // Boolean measures are exact under or/and: tolerance 0.
  EXPECT_TRUE(fr::TablesEqual(**a, **b, /*tolerance=*/0.0));
}

TEST(FaqPlanTest, FormatVarListQuotesAmbiguousNames) {
  EXPECT_EQ(FormatVarList({"a", "g0_0"}), "a,g0_0");
  EXPECT_EQ(FormatVarList({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatVarList({"w z"}), "\"w z\"");
  EXPECT_EQ(FormatVarList({"q\"t"}), "\"q\\\"t\"");
  EXPECT_EQ(FormatVarList({""}), "\"\"");
}

class FaqDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CycleParams params;
    params.domain_size = 30;
    params.density = 0.25;
    auto schema = workload::GenerateCycle(params, db_.catalog());
    ASSERT_TRUE(schema.ok()) << schema.status();
    view_ = schema->view;
    ASSERT_TRUE(db_.CreateMpfView(view_).ok());
  }

  Database db_;
  MpfViewDef view_;
};

TEST_F(FaqDatabaseTest, OptimizerSpecParsesAndExplains) {
  auto text = db_.Explain("cycle3", MpfQuerySpec{{"x0"}, {}}, "faq");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("-- optimizer: FAQ"), std::string::npos) << *text;
  EXPECT_NE(text->find("-- variable order: (x1,x2)"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("MultiwayJoin[3]"), std::string::npos) << *text;
  // The physical rendering names the algorithm and the trie variable order.
  EXPECT_NE(text->find("leapfrog"), std::string::npos) << *text;

  auto unknown = db_.Explain("cycle3", MpfQuerySpec{{"x0"}, {}}, "faq(x)");
  EXPECT_FALSE(unknown.ok());
}

TEST_F(FaqDatabaseTest, ExplainAnalyzeRendersTrieIteratorStats) {
  auto text = db_.ExplainAnalyze("cycle3", MpfQuerySpec{{"x0"}, {}}, "faq");
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("MultiwayJoin[3](leapfrog)"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("seeks="), std::string::npos) << *text;
  EXPECT_NE(text->find("nexts="), std::string::npos) << *text;
  EXPECT_NE(text->find("q="), std::string::npos) << *text;
  EXPECT_NE(text->find("-- variable order: (x1,x2)"), std::string::npos)
      << *text;
}

TEST_F(FaqDatabaseTest, FaqQueryAgreesWithOtherOptimizers) {
  // Random doubles, so compare with a small tolerance: different plan shapes
  // legitimately reorder FP folds. (The tol-0.0 guarantees are within one
  // plan shape, covered elsewhere.)
  auto faq = db_.Query("cycle3", MpfQuerySpec{{"x1"}, {}}, "faq");
  ASSERT_TRUE(faq.ok()) << faq.status();
  auto cs = db_.Query("cycle3", MpfQuerySpec{{"x1"}, {}}, "cs+");
  ASSERT_TRUE(cs.ok()) << cs.status();
  EXPECT_TRUE(fr::TablesEqual(*faq->table, *cs->table, 1e-9));
}

}  // namespace
}  // namespace mpfdb
