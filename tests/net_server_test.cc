// Tests for the epoll network front end: wire-vs-in-process differential
// correctness (bit-identical, tolerance 0.0, including under a concurrent
// update stream), overload behaviour (queue-full rejection with backoff
// hints, queued-deadline error frames, per-connection backpressure, the
// slow-reader kick, the connection cap), graceful drain, protocol-error
// handling, and a seeded socket-fault chaos soak in which every request must
// observe exactly one definite outcome.

#include "server/net/net_server.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "server/net/client.h"
#include "server/net/wire.h"
#include "server/server.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

using server::MpfServer;
using server::ServerOptions;
using server::net::ErrorFrame;
using server::net::Frame;
using server::net::FrameType;
using server::net::NetClient;
using server::net::NetServer;
using server::net::NetServerOptions;
using server::net::QueryRequestFrame;

void Install(const RandomView& rv, Database& db) {
  for (const auto& var : rv.vars) {
    ASSERT_TRUE(
        db.catalog().RegisterVariable(var, *rv.catalog.DomainSize(var)).ok());
  }
  for (const auto& table : rv.tables) {
    ASSERT_TRUE(db.CreateTable(table).ok());
  }
  ASSERT_TRUE(db.CreateMpfView(rv.view).ok());
}

std::unique_ptr<NetClient> MustConnect(uint16_t port) {
  auto client = NetClient::Connect(port);
  EXPECT_TRUE(client.ok()) << client.status().message();
  return std::move(client).value();
}

// One server over one small database, for the plumbing-level tests.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rv_ = MakeRandomView(/*seed=*/7, /*num_vars=*/3, /*num_rels=*/3,
                         /*force_acyclic=*/true);
    Install(rv_, db_);
    ASSERT_TRUE(db_.BuildCache(rv_.view.name).ok());
  }

  void StartNet(ServerOptions sopts = {}, NetServerOptions nopts = {}) {
    mpf_ = std::make_unique<MpfServer>(db_, sopts);
    net_ = std::make_unique<NetServer>(*mpf_, nopts);
    ASSERT_TRUE(net_->Start().ok());
  }

  MpfQuerySpec AnyQuery() const { return MpfQuerySpec{{rv_.vars[0]}, {}}; }

  RandomView rv_;
  Database db_;
  std::unique_ptr<MpfServer> mpf_;
  std::unique_ptr<NetServer> net_;
};

TEST_F(NetServerTest, QueryRoundtripMatchesInProcessBitIdentical) {
  StartNet();
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());

  auto wire = client->Query(rv_.view.name, AnyQuery());
  ASSERT_TRUE(wire.ok()) << wire.status().message();
  auto local = db_.Query(rv_.view.name, AnyQuery());
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(fr::TablesEqual(*wire->table, *local->table, /*tolerance=*/0.0));
  EXPECT_EQ(wire->snapshot_epoch, local->snapshot_epoch);

  // Cached path too, at a quiescent epoch.
  auto cached = client->Query(rv_.view.name, AnyQuery(), "", 0,
                              /*cached=*/true);
  ASSERT_TRUE(cached.ok()) << cached.status().message();
  EXPECT_FALSE(cached->epoch_inexact);
  auto local_cached = db_.QueryCached(rv_.view.name, AnyQuery());
  ASSERT_TRUE(local_cached.ok());
  EXPECT_TRUE(fr::TablesEqual(*cached->table, **local_cached, 0.0));

  auto stats = net_->stats();
  EXPECT_EQ(stats.results_sent, 2u);
  EXPECT_EQ(stats.errors_sent, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(NetServerTest, UnknownViewYieldsNonRetryableErrorFrame) {
  StartNet();
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  auto result = client->Query("no_such_view", AnyQuery());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->last_error().from_frame);
  EXPECT_FALSE(client->last_error().retryable);
  // The connection survives a semantic error.
  auto again = client->Query(rv_.view.name, AnyQuery());
  EXPECT_TRUE(again.ok()) << again.status().message();
}

TEST_F(NetServerTest, MetricsOverWire) {
  StartNet();
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  ASSERT_TRUE(client->Query(rv_.view.name, AnyQuery()).ok());
  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().message();
  EXPECT_NE(metrics->find("server_completed 1"), std::string::npos);
  EXPECT_NE(metrics->find("plan_cache_hits"), std::string::npos);
}

TEST_F(NetServerTest, MalformedBytesDrawErrorFrameAndClose) {
  StartNet();
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  // A hostile length prefix: the server must answer with a connection-scoped
  // error frame (request id 0) and close; it must not hang or crash.
  const uint8_t garbage[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02, 0x03};
  ASSERT_TRUE(client->SendRaw(garbage, sizeof(garbage)).ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame->type, FrameType::kError);
  EXPECT_EQ(frame->error.request_id, 0u);
  EXPECT_EQ(frame->error.code, StatusCode::kInvalidArgument);
  EXPECT_FALSE(frame->error.retryable);
  // Then the close.
  auto eof = client->ReadFrame();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kCancelled);
  // Spin briefly: the close is counted on the loop thread.
  for (int i = 0; i < 1000 && net_->stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto stats = net_->stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.open_connections, 0u);
}

TEST_F(NetServerTest, QueueFullRejectionCarriesBackoffHint) {
  ServerOptions sopts;
  sopts.max_concurrent = 1;
  sopts.max_queued = 1;
  StartNet(sopts);
  mpf_->Pause();

  auto blocked = MustConnect(net_->port());
  ASSERT_TRUE(blocked->set_recv_timeout_ms(30000).ok());
  QueryRequestFrame first;
  first.request_id = blocked->NextRequestId();
  first.view = rv_.view.name;
  first.query = AnyQuery();
  ASSERT_TRUE(blocked->SendQuery(first).ok());
  // Wait until it is visibly queued, then overflow the queue.
  while (mpf_->stats().queued < 1) std::this_thread::yield();

  auto overflow = MustConnect(net_->port());
  ASSERT_TRUE(overflow->set_recv_timeout_ms(30000).ok());
  auto rejected = overflow->Query(rv_.view.name, AnyQuery());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(overflow->last_error().retryable);
  EXPECT_GE(overflow->last_error().retry_after_ms, 1u);

  mpf_->Resume();
  auto frame = blocked->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->type, FrameType::kResult);
}

TEST_F(NetServerTest, QueuedDeadlineExpiresIntoErrorFrame) {
  ServerOptions sopts;
  sopts.max_concurrent = 1;
  sopts.shed_doomed_queries = false;  // force the queued-timeout path
  StartNet(sopts);
  mpf_->Pause();

  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  auto result = client->Query(rv_.view.name, AnyQuery(), "",
                              /*deadline_ms=*/60);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(client->last_error().retryable);
  EXPECT_EQ(mpf_->stats().timed_out, 1u);
  EXPECT_EQ(mpf_->stats().queued, 0u);  // the dead ticket left the queue
  mpf_->Resume();
}

TEST_F(NetServerTest, DoomedDeadlineFailsFastBeforeExecution) {
  ServerOptions sopts;
  sopts.max_concurrent = 1;
  StartNet(sopts);
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  // Prime the service-time EMA, then stage a queue the estimator can see.
  ASSERT_TRUE(client->Query(rv_.view.name, AnyQuery()).ok());
  mpf_->Pause();
  QueryRequestFrame waiter;
  waiter.request_id = client->NextRequestId();
  waiter.view = rv_.view.name;
  waiter.query = AnyQuery();
  ASSERT_TRUE(client->SendQuery(waiter).ok());
  while (mpf_->stats().queued < 1) std::this_thread::yield();

  // A 1ms deadline behind a paused, occupied queue is doomed. Depending on
  // dispatch timing it is shed at enqueue (kResourceExhausted, retryable,
  // with a backoff hint) or fails the deadline before/while queued — but it
  // must fail fast, never sit in the queue until Resume.
  auto second = MustConnect(net_->port());
  ASSERT_TRUE(second->set_recv_timeout_ms(30000).ok());
  auto started = std::chrono::steady_clock::now();
  auto doomed = second->Query(rv_.view.name, AnyQuery(), "",
                              /*deadline_ms=*/1);
  auto seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  ASSERT_FALSE(doomed.ok());
  EXPECT_LT(seconds, 10.0);
  EXPECT_TRUE(doomed.status().code() == StatusCode::kResourceExhausted ||
              doomed.status().code() == StatusCode::kDeadlineExceeded)
      << doomed.status().ToString();
  if (doomed.status().code() == StatusCode::kResourceExhausted) {
    EXPECT_TRUE(second->last_error().retryable);
    EXPECT_GE(second->last_error().retry_after_ms, 1u);
    EXPECT_GE(mpf_->stats().shed, 1u);
  }
  // Only the staged waiter remains queued.
  EXPECT_LE(mpf_->stats().queued, 1u);

  mpf_->Resume();
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  EXPECT_EQ(frame->type, FrameType::kResult);
}

TEST_F(NetServerTest, BackpressurePausesReadsThenRecovers) {
  NetServerOptions nopts;
  nopts.max_inflight_per_connection = 2;
  ServerOptions sopts;
  sopts.max_concurrent = 1;
  StartNet(sopts, nopts);
  mpf_->Pause();  // stack the admission queue so responses cannot drain

  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  constexpr int kPipelined = 6;
  std::vector<uint64_t> ids;
  for (int i = 0; i < kPipelined; ++i) {
    QueryRequestFrame req;
    req.request_id = client->NextRequestId();
    req.view = rv_.view.name;
    req.query = AnyQuery();
    ids.push_back(req.request_id);
    ASSERT_TRUE(client->SendQuery(req).ok());
  }
  // The loop must stop reading at 2 unanswered requests, not buffer all 6.
  for (int i = 0; i < 10000 && net_->stats().reads_paused == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(net_->stats().reads_paused, 1u);
  EXPECT_LE(mpf_->stats().queued + mpf_->stats().in_flight, 2u);

  mpf_->Resume();
  std::map<uint64_t, int> answered;
  for (int i = 0; i < kPipelined; ++i) {
    auto frame = client->ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    ASSERT_EQ(frame->type, FrameType::kResult);
    ++answered[frame->result.request_id];
  }
  for (uint64_t id : ids) {
    EXPECT_EQ(answered[id], 1) << "request " << id;
  }
}

TEST_F(NetServerTest, SlowReaderIsKicked) {
  NetServerOptions nopts;
  nopts.max_write_buffer_bytes = 8192;
  nopts.send_buffer_bytes = 4096;  // tiny kernel buffer: backlog lands on us
  StartNet({}, nopts);

  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_buffer_bytes(4096).ok());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  // Pipeline metrics requests and never read: replies (a few hundred bytes
  // each) fill the tiny kernel buffers, then the server-side write buffer,
  // then the cap. The server must disconnect us, not buffer forever.
  bool send_failed = false;
  for (int i = 0; i < 2000 && !send_failed; ++i) {
    Status s = client->SendMetricsRequest(client->NextRequestId());
    send_failed = !s.ok();
    if (net_->stats().slow_reader_kicks > 0) break;
  }
  for (int i = 0; i < 10000 && net_->stats().slow_reader_kicks == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(net_->stats().slow_reader_kicks, 1u);
  // And the client observes a definite outcome: connection closed.
  for (;;) {
    auto frame = client->ReadFrame();
    if (!frame.ok()) {
      EXPECT_EQ(frame.status().code(), StatusCode::kCancelled);
      break;
    }
  }
}

TEST_F(NetServerTest, ConnectionCapRefusesExtraClients) {
  NetServerOptions nopts;
  nopts.max_connections = 1;
  StartNet({}, nopts);
  auto first = MustConnect(net_->port());
  ASSERT_TRUE(first->set_recv_timeout_ms(30000).ok());
  ASSERT_TRUE(first->Query(rv_.view.name, AnyQuery()).ok());

  // The kernel completes the handshake, then the server closes immediately.
  auto second = MustConnect(net_->port());
  ASSERT_TRUE(second->set_recv_timeout_ms(30000).ok());
  auto refused = second->ReadFrame();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
  EXPECT_GE(net_->stats().connections_refused, 1u);
  // The first client is unaffected.
  EXPECT_TRUE(first->Query(rv_.view.name, AnyQuery()).ok());
}

TEST_F(NetServerTest, GracefulDrainGivesEveryRequestADefiniteOutcome) {
  ServerOptions sopts;
  sopts.max_concurrent = 2;
  NetServerOptions nopts;
  nopts.drain_timeout_ms = 20000;
  StartNet(sopts, nopts);
  const uint16_t port = net_->port();

  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> definite{0}, indefinite{0}, completed_ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = NetClient::Connect(port);
      if (!client.ok()) return;
      ASSERT_TRUE((*client)->set_recv_timeout_ms(20000).ok());
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        auto result = (*client)->Query(rv_.view.name, AnyQuery());
        if (result.ok()) {
          ++completed_ok;
          ++definite;
          continue;
        }
        StatusCode code = result.status().code();
        if (code == StatusCode::kDeadlineExceeded) {
          ++indefinite;  // client-side receive timeout: a dropped request
          return;
        }
        ++definite;
        // Drain notice or closed connection: both definite. Stop here —
        // the server is going away.
        if ((*client)->last_error().from_frame) {
          EXPECT_TRUE((*client)->last_error().retryable);
        }
        return;
      }
    });
  }
  // Let traffic flow, then drain mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto drain_started = std::chrono::steady_clock::now();
  net_->Shutdown();
  auto drain_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - drain_started)
                           .count();
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_LT(drain_seconds, 20.0) << "drain hung";
  EXPECT_GT(completed_ok.load(), 0);
  EXPECT_EQ(indefinite.load(), 0) << "a request vanished without an outcome";
  auto stats = net_->stats();
  EXPECT_EQ(stats.open_connections, 0u);
  // New connections are refused after drain.
  auto late = NetClient::Connect(port);
  if (late.ok()) {
    ASSERT_TRUE((*late)->set_recv_timeout_ms(5000).ok());
    auto frame = (*late)->ReadFrame();
    EXPECT_FALSE(frame.ok());
  }
  // The MpfServer itself is still serving in-process callers.
  auto session = mpf_->CreateSession();
  EXPECT_TRUE(session->Query(rv_.view.name, AnyQuery()).ok());
}

TEST_F(NetServerTest, ShutdownIsIdempotentAndImmediateWhenIdle) {
  StartNet();
  auto started = std::chrono::steady_clock::now();
  net_->Shutdown();
  net_->Shutdown();
  auto seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  EXPECT_LT(seconds, 5.0);
}

// --- Wire vs in-process differential under an update stream ---------------

struct WireRecord {
  size_t view = 0;
  MpfQuerySpec spec;
  bool cached = false;
  uint64_t epoch = 0;
  bool epoch_exact = true;
  TablePtr result;
};

TEST(NetServerDifferentialTest, WireResultsBitIdenticalToSerialReplay) {
  constexpr int kViews = 2;
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 18;
  constexpr int kUpdates = 8;
  const uint64_t seed = CaseSeed(202);
  MPFDB_TRACE_SEED(seed);

  Database db;
  std::vector<RandomView> views;
  for (int i = 0; i < kViews; ++i) {
    views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i),
                                   /*num_vars=*/4, /*num_rels=*/3,
                                   /*force_acyclic=*/(i % 2 == 0),
                                   "w" + std::to_string(i) + "_"));
    Install(views.back(), db);
    ASSERT_TRUE(db.BuildCache(views.back().view.name).ok());
  }
  const uint64_t base = db.epoch();
  const Table& target = *views[0].tables[0];
  std::vector<VarValue> target_row(target.Row(0).vars,
                                   target.Row(0).vars + target.Row(0).arity);
  auto update_value = [](int k) { return 16.0 + k * 0.125; };  // exact in FP

  server::ServerOptions sopts;
  sopts.max_concurrent = 3;
  MpfServer server(db, sopts);
  NetServer net(server);
  ASSERT_TRUE(net.Start().ok());

  std::atomic<bool> start{false};
  std::thread updater([&] {
    while (!start.load()) std::this_thread::yield();
    for (int k = 0; k < kUpdates; ++k) {
      ASSERT_TRUE(db.ApplyMeasureUpdate(views[0].tables[0]->name(),
                                        target_row, update_value(k))
                      .ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::vector<WireRecord>> recorded(kClients);
  std::vector<std::thread> clients;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      auto client = NetClient::Connect(net.port());
      ASSERT_TRUE(client.ok()) << client.status().message();
      ASSERT_TRUE((*client)->set_recv_timeout_ms(60000).ok());
      Rng rng(seed + 500 + static_cast<uint64_t>(cidx));
      while (!start.load()) std::this_thread::yield();
      for (int op = 0; op < kOpsPerClient; ++op) {
        WireRecord rec;
        rec.view = static_cast<size_t>(rng.UniformInt(0, kViews - 1));
        const RandomView& rv = views[rec.view];
        MpfQuerySpec spec;
        spec.group_vars = {Pick(rv.present_vars, rng)};
        if (rng.Bernoulli(0.4)) {
          const std::string& sel = Pick(rv.present_vars, rng);
          if (sel != spec.group_vars[0]) {
            spec.selections.push_back(QuerySelection{
                sel, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel) - 1))});
          }
        }
        rec.spec = spec;
        rec.cached = rng.Bernoulli(0.3);
        auto result = (*client)->Query(rv.view.name, spec, "", 0, rec.cached);
        ASSERT_TRUE(result.ok()) << result.status().message();
        rec.epoch = result->snapshot_epoch;
        rec.epoch_exact = !result->epoch_inexact;
        rec.result = result->table;
        recorded[static_cast<size_t>(cidx)].push_back(std::move(rec));
      }
    });
  }
  start.store(true);
  updater.join();
  for (auto& t : clients) t.join();
  ASSERT_EQ(db.epoch(), base + kUpdates);
  net.Shutdown();
  auto nstats = net.stats();
  EXPECT_EQ(nstats.results_sent,
            static_cast<uint64_t>(kClients * kOpsPerClient));
  EXPECT_EQ(nstats.errors_sent, 0u);

  // Serial replay on a fresh database stepped through the same updates.
  Database replay;
  std::vector<RandomView> replay_views;
  for (int i = 0; i < kViews; ++i) {
    replay_views.push_back(MakeRandomView(seed + static_cast<uint64_t>(i), 4,
                                          3, (i % 2 == 0),
                                          "w" + std::to_string(i) + "_"));
    Install(replay_views.back(), replay);
    ASSERT_TRUE(replay.BuildCache(replay_views.back().view.name).ok());
  }
  std::map<uint64_t, std::vector<const WireRecord*>> by_step;
  size_t replayed = 0, skipped = 0;
  for (const auto& log : recorded) {
    for (const auto& rec : log) {
      if (rec.cached && !rec.epoch_exact) {
        ++skipped;  // raced an update; no single epoch to replay at
        continue;
      }
      by_step[rec.epoch - base].push_back(&rec);
      ++replayed;
    }
  }
  for (uint64_t step = 0, applied = 0; step <= kUpdates; ++step) {
    while (applied < step) {
      ASSERT_TRUE(replay
                      .ApplyMeasureUpdate(replay_views[0].tables[0]->name(),
                                          target_row,
                                          update_value(static_cast<int>(
                                              applied)))
                      .ok());
      ++applied;
    }
    auto it = by_step.find(step);
    if (it == by_step.end()) continue;
    for (const WireRecord* rec : it->second) {
      const std::string& view_name = replay_views[rec->view].view.name;
      TablePtr expected;
      if (rec->cached) {
        auto result = replay.QueryCached(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = *result;
      } else {
        auto result = replay.Query(view_name, rec->spec);
        ASSERT_TRUE(result.ok()) << result.status().message();
        expected = result->table;
      }
      EXPECT_TRUE(fr::TablesEqual(*expected, *rec->result,
                                  /*tolerance=*/0.0))
          << (rec->cached ? "cached" : "query") << " over the wire on view "
          << view_name << " at step " << step;
    }
  }
  EXPECT_GT(replayed, skipped);
}

// --- Seeded socket-fault chaos soak ----------------------------------------

// Every request under fault injection must reach exactly one definite
// outcome: an OK result (bit-identical to the expected answer), an error
// frame, or a closed connection. Hangs surface as client receive timeouts
// and fail the test; crashes and leaks surface under ASan/TSan in CI.
TEST(NetServerChaosTest, SoakSurvivesSocketFaultSeeds) {
  RandomView rv = MakeRandomView(/*seed=*/11, /*num_vars=*/3, /*num_rels=*/3,
                                 /*force_acyclic=*/true, "chaos_");
  Database db;
  Install(rv, db);
  ASSERT_TRUE(db.BuildCache(rv.view.name).ok());

  // Precompute the expected answer for each group var: no updates run, so
  // every successful wire result must match bit-for-bit.
  std::map<std::string, TablePtr> expected;
  for (const auto& var : rv.present_vars) {
    auto result = db.Query(rv.view.name, MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(result.ok());
    expected[var] = result->table;
  }

  uint64_t base_seed = 1;
  if (const char* env = std::getenv("MPFDB_FAULT_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
  }
  constexpr int kSeeds = 8;
  constexpr int kClients = 3;
  constexpr int kOpsPerClient = 12;

  for (int s = 0; s < kSeeds; ++s) {
    const uint64_t seed = base_seed + static_cast<uint64_t>(s);
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    server::ServerOptions sopts;
    sopts.max_concurrent = 2;
    MpfServer server(db, sopts);
    NetServerOptions nopts;
    nopts.io_threads = 2;
    nopts.drain_timeout_ms = 20000;
    NetServer net(server, nopts);
    ASSERT_TRUE(net.Start().ok());

    ScopedFaultInjection faults(FaultInjector::Config{
        seed, /*probability=*/0.0, /*fail_nth=*/0,
        /*socket_probability=*/0.08});

    std::atomic<int> ok_results{0}, error_frames{0}, closed{0},
        timeouts{0}, mismatches{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(seed * 977 + static_cast<uint64_t>(c));
        std::unique_ptr<NetClient> client;
        for (int op = 0; op < kOpsPerClient; ++op) {
          if (client == nullptr) {
            auto conn = NetClient::Connect(net.port());
            if (!conn.ok()) {
              // Connect refused under accept faults: definite, retry.
              ++closed;
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
              --op;
              continue;
            }
            client = std::move(conn).value();
            if (!client->set_recv_timeout_ms(20000).ok()) return;
          }
          const std::string& var = Pick(rv.present_vars, rng);
          auto result = client->Query(rv.view.name, MpfQuerySpec{{var}, {}});
          if (result.ok()) {
            ++ok_results;
            if (!fr::TablesEqual(*expected[var], *result->table, 0.0)) {
              ++mismatches;
            }
          } else if (result.status().code() == StatusCode::kDeadlineExceeded &&
                     !client->last_error().from_frame) {
            ++timeouts;  // no definite outcome: the bug this test hunts
            client.reset();
          } else if (client->last_error().from_frame) {
            ++error_frames;
          } else {
            ++closed;  // reset/kick/refusal: definite, reconnect
            client.reset();
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    auto drain_started = std::chrono::steady_clock::now();
    net.Shutdown();
    auto drain_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - drain_started)
                             .count();
    EXPECT_LT(drain_seconds, 20.0) << "drain hung under faults";
    EXPECT_EQ(timeouts.load(), 0) << "request(s) got no definite outcome";
    EXPECT_EQ(mismatches.load(), 0) << "fault injection corrupted a result";
    EXPECT_GT(ok_results.load() + error_frames.load() + closed.load(), 0);
    server.Shutdown();
  }
}

// --- approximate queries over the wire ---------------------------------------

TEST_F(NetServerTest, ApproxQueryOnAcyclicViewIsExactOverWire) {
  // Two overlapping pair relations over three variables make a genuinely
  // acyclic path (the fixture's own 3-relation "path" wraps into a cycle).
  RandomView acyclic = MakeRandomView(/*seed=*/8, /*num_vars=*/3,
                                      /*num_rels=*/2, /*force_acyclic=*/true,
                                      "ac_");
  Install(acyclic, db_);
  StartNet();
  auto client = MustConnect(net_->port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());

  // On an acyclic view the approximate path degenerates to the exact
  // answer: no approximate flag, no bound payload on the wire.
  MpfQuerySpec query{{acyclic.vars[0]}, {}};
  auto wire = client->QueryApprox(acyclic.view.name, query);
  ASSERT_TRUE(wire.ok()) << wire.status().message();
  EXPECT_FALSE(wire->approximate);
  EXPECT_FALSE(wire->deadline_degraded);
  EXPECT_EQ(wire->lower, nullptr);
  EXPECT_EQ(wire->upper, nullptr);
  auto local = db_.Query(acyclic.view.name, query);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(fr::TablesEqual(*wire->table, *local->table, 0.0));
}

TEST(NetServerApproxTest, ApproxCyclicQueryShipsBoundsBitIdentical) {
  Database db;
  workload::CycleParams params;
  params.num_vars = 4;
  params.domain_size = 5;
  params.density = 0.7;
  params.seed = 61;
  auto schema = workload::GenerateCycle(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());
  MpfServer server(db, ServerOptions{});
  NetServer net(server, NetServerOptions{});
  ASSERT_TRUE(net.Start().ok());

  auto client = MustConnect(net.port());
  ASSERT_TRUE(client->set_recv_timeout_ms(30000).ok());
  MpfQuerySpec query{{schema->vars[0]}, {}};
  auto wire = client->QueryApprox(schema->view.name, query, /*eps=*/1e-6,
                                  /*max_rounds=*/4, /*seed=*/17);
  ASSERT_TRUE(wire.ok()) << wire.status().message();
  EXPECT_TRUE(wire->approximate);
  ASSERT_NE(wire->lower, nullptr);
  ASSERT_NE(wire->upper, nullptr);

  ApproxOptions approx;
  approx.eps = 1e-6;
  approx.max_rounds = 4;
  approx.seed = 17;
  auto local = db.QueryApprox(schema->view.name, query, approx);
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ(wire->samples, local->samples);
  EXPECT_EQ(wire->bound_gap, local->max_gap);
  EXPECT_TRUE(fr::TablesEqual(*wire->table, *local->estimate, 0.0));
  EXPECT_TRUE(fr::TablesEqual(*wire->lower, *local->lower, 0.0));
  EXPECT_TRUE(fr::TablesEqual(*wire->upper, *local->upper, 0.0));

  net.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace mpfdb
