// Resource-governed execution: memory budgets with spill-based graceful
// degradation, cooperative cancellation, wall-clock deadlines, and the
// QueryContext charge/release protocol. Spilled runs must return results
// bit-identical to unconstrained runs; cancelled runs must unwind cleanly
// (the ASan preset verifies no leak) and stop within about one batch.

#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "exec/gibbs.h"
#include "exec/operator.h"
#include "fr/algebra.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mpfdb::exec {
namespace {

TablePtr MakeTable(const std::string& name, std::vector<std::string> vars,
                   std::vector<std::pair<std::vector<VarValue>, double>> rows) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  for (auto& [v, m] : rows) t->AppendRow(v, m);
  return t;
}

// Random table with unique variable tuples; `unit_measures` makes every
// measure 1.0 so sums stay small integers and comparisons can be exact.
TablePtr RandomTable(const std::string& name, std::vector<std::string> vars,
                     std::vector<int64_t> domains, size_t rows, Rng& rng,
                     bool unit_measures = false) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, unit_measures ? 1.0 : rng.UniformDouble(0.5, 2.0));
  }
  return t;
}

void SortCanonically(Table& table) {
  std::vector<size_t> all(table.schema().arity());
  std::iota(all.begin(), all.end(), 0);
  table.SortByVariables(all);
}

// --- QueryContext protocol --------------------------------------------------

TEST(QueryContextTest, ChargeEnforcesLimitWithoutPartialCharges) {
  QueryContext ctx;
  ctx.set_memory_limit(100);
  EXPECT_TRUE(ctx.Charge(60, "op").ok());
  Status too_much = ctx.Charge(60, "op");
  EXPECT_EQ(too_much.code(), StatusCode::kResourceExhausted);
  // Nothing was charged by the failed call.
  EXPECT_EQ(ctx.stats().bytes_in_use, 60u);
  EXPECT_NE(too_much.message().find("op"), std::string::npos);
  EXPECT_TRUE(ctx.Charge(40, "op").ok());
  ctx.Release(100);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  EXPECT_EQ(ctx.stats().peak_bytes, 100u);
}

TEST(QueryContextTest, PollReportsCancellationStickily) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.Poll().ok());
  ctx.RequestCancel();
  EXPECT_EQ(ctx.Poll().code(), StatusCode::kCancelled);
  // Sticky: still cancelled on later polls.
  EXPECT_EQ(ctx.Poll().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, ExpiredDeadlineSurfacesWithinOnePollInterval) {
  QueryContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds(0));
  Status status = Status::Ok();
  size_t polls = 0;
  while (status.ok() && polls < 4 * QueryContext::kPollIntervalRows) {
    status = ctx.Poll(1);
    ++polls;
  }
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(polls, QueryContext::kPollIntervalRows + 1);
}

TEST(QueryContextTest, MemoryGuardReleasesOnDestruction) {
  QueryContext ctx;
  ctx.set_memory_limit(1000);
  {
    MemoryGuard guard(&ctx);
    EXPECT_TRUE(guard.Charge(500, "op").ok());
    EXPECT_EQ(ctx.stats().bytes_in_use, 500u);
  }
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

// --- spill-based degradation ------------------------------------------------

// Aggregation under a tiny budget spills and still returns a bit-identical
// result, in both drive modes and both key representations.
TEST(GovernedExecTest, HashMarginalizeSpillIsBitIdentical) {
  Rng rng(42);
  // Domain 40 > PackedKeyCodec threshold per var? Keep small so packed keys
  // engage; duplicates across z force real aggregation.
  TablePtr t = RandomTable("t", {"x", "y", "z"}, {8, 8, 24}, 600, rng);
  for (bool vectorized : {false, true}) {
    // Golden: unconstrained.
    HashMarginalize golden_op(std::make_unique<SeqScan>(t), {"x", "y"},
                              Semiring::SumProduct());
    auto golden = vectorized ? ::mpfdb::exec::RunBatch(golden_op, "golden")
                             : ::mpfdb::exec::Run(golden_op, "golden");
    ASSERT_TRUE(golden.ok()) << golden.status();

    QueryContext ctx;
    // Below even the packed-key footprint (the catalog-free 32-bit packing
    // keeps the batch path at ~24 bytes per group), so both drive modes
    // degrade to partitioned aggregation.
    ctx.set_memory_limit(512);
    HashMarginalize gov_op(std::make_unique<SeqScan>(t), {"x", "y"},
                           Semiring::SumProduct());
    gov_op.BindContext(&ctx);
    auto governed =
        vectorized ? ::mpfdb::exec::RunBatch(gov_op, "governed", &ctx) : ::mpfdb::exec::Run(gov_op, "governed", &ctx);
    ASSERT_TRUE(governed.ok()) << governed.status();
    EXPECT_GT(ctx.stats().spill_files, 0u) << "budget never triggered a spill";
    // Bit-identical: zero tolerance.
    EXPECT_TRUE(fr::TablesEqual(**golden, **governed, 0.0))
        << (vectorized ? "batch" : "row");
    EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  }
}

// Catalog-less aggregation with three group keys (3 * 32 bits overflows the
// catalog-free packing, so no codec applies) exercises the vector-key spill.
TEST(GovernedExecTest, VectorKeyAggregationSpillIsBitIdentical) {
  Rng rng(7);
  TablePtr t = RandomTable("t", {"a", "b", "c", "d"}, {25, 5, 4, 6}, 800, rng);
  HashMarginalize golden_op(std::make_unique<SeqScan>(t), {"a", "b", "c"},
                            Semiring::MinSum());
  auto golden = ::mpfdb::exec::RunBatch(golden_op, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();

  QueryContext ctx;
  ctx.set_memory_limit(1024);
  HashMarginalize gov_op(std::make_unique<SeqScan>(t), {"a", "b", "c"},
                         Semiring::MinSum());
  gov_op.BindContext(&ctx);
  auto governed = ::mpfdb::exec::RunBatch(gov_op, "governed", &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_GT(ctx.stats().spill_files, 0u);
  EXPECT_TRUE(fr::TablesEqual(**golden, **governed, 0.0));
}

// Join under a tiny budget Grace-partitions both sides; after the canonical
// sort the result set is bit-identical (each output row's measure is one
// multiply in both modes).
TEST(GovernedExecTest, HashProductJoinSpillMatchesUnconstrained) {
  Rng rng(11);
  TablePtr left = RandomTable("l", {"x", "y"}, {60, 16}, 500, rng);
  TablePtr right = RandomTable("r", {"y", "z"}, {16, 60}, 500, rng);
  for (bool vectorized : {false, true}) {
    HashProductJoin golden_op(std::make_unique<SeqScan>(left),
                              std::make_unique<SeqScan>(right),
                              Semiring::SumProduct());
    auto golden = vectorized ? ::mpfdb::exec::RunBatch(golden_op, "golden")
                             : ::mpfdb::exec::Run(golden_op, "golden");
    ASSERT_TRUE(golden.ok()) << golden.status();
    SortCanonically(**golden);

    QueryContext ctx;
    ctx.set_memory_limit(4096);
    HashProductJoin gov_op(std::make_unique<SeqScan>(left),
                           std::make_unique<SeqScan>(right),
                           Semiring::SumProduct());
    gov_op.BindContext(&ctx);
    auto governed = vectorized ? ::mpfdb::exec::RunBatch(gov_op, "governed", &ctx)
                               : ::mpfdb::exec::Run(gov_op, "governed", &ctx);
    ASSERT_TRUE(governed.ok()) << governed.status();
    EXPECT_GT(ctx.stats().spill_files, 0u) << "budget never triggered a spill";
    SortCanonically(**governed);
    EXPECT_TRUE(fr::TablesEqual(**golden, **governed, 0.0))
        << (vectorized ? "batch" : "row");
  }
}

// A join feeding an aggregation, all under budget: both operators degrade
// and the composition stays exact thanks to unit measures (integer sums).
TEST(GovernedExecTest, SpilledJoinIntoSpilledAggregationStaysExact) {
  Rng rng(23);
  TablePtr left = RandomTable("l", {"x", "y"}, {40, 16}, 400, rng,
                              /*unit_measures=*/true);
  TablePtr right = RandomTable("r", {"y", "z"}, {16, 40}, 400, rng,
                               /*unit_measures=*/true);
  auto make_tree = [&]() {
    return std::make_unique<HashMarginalize>(
        std::make_unique<HashProductJoin>(std::make_unique<SeqScan>(left),
                                          std::make_unique<SeqScan>(right),
                                          Semiring::SumProduct()),
        std::vector<std::string>{"x", "z"}, Semiring::SumProduct());
  };
  auto golden_op = make_tree();
  auto golden = ::mpfdb::exec::RunBatch(*golden_op, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();

  QueryContext ctx;
  ctx.set_memory_limit(4096);
  auto gov_op = make_tree();
  gov_op->BindContext(&ctx);
  auto governed = ::mpfdb::exec::RunBatch(*gov_op, "governed", &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_GT(ctx.stats().spill_files, 0u);
  EXPECT_TRUE(fr::TablesEqual(**golden, **governed, 0.0));
}

// With spilling disabled, the budget breach is a hard error naming the
// operator that hit it.
TEST(GovernedExecTest, SpillDisabledFailsWithResourceExhausted) {
  Rng rng(5);
  TablePtr t = RandomTable("t", {"x", "y"}, {50, 50}, 1000, rng);
  QueryContext ctx;
  ctx.set_memory_limit(512);
  ctx.set_spill_enabled(false);
  HashMarginalize op(std::make_unique<SeqScan>(t), {"x"},
                     Semiring::SumProduct());
  op.BindContext(&ctx);
  auto result = ::mpfdb::exec::RunBatch(op, "out", &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("HashMarginalize"),
            std::string::npos)
      << result.status().message();
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

// Fallback operators (no spill strategy) also surface the breach cleanly.
TEST(GovernedExecTest, SortMergeJoinHonorsBudgetWithoutSpill) {
  Rng rng(9);
  TablePtr left = RandomTable("l", {"x", "y"}, {60, 20}, 600, rng);
  TablePtr right = RandomTable("r", {"y", "z"}, {20, 60}, 600, rng);
  QueryContext ctx;
  ctx.set_memory_limit(1024);
  SortMergeProductJoin op(std::make_unique<SeqScan>(left),
                          std::make_unique<SeqScan>(right),
                          Semiring::SumProduct());
  op.BindContext(&ctx);
  auto result = ::mpfdb::exec::Run(op, "out", &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("SortMergeProductJoin"),
            std::string::npos)
      << result.status().message();
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

// --- cancellation and deadlines ---------------------------------------------

// Transparent wrapper that requests cancellation on the bound context after
// its child has emitted `n` rows, counting everything it passes through.
class CancelAfterN : public PhysicalOperator {
 public:
  CancelAfterN(OperatorPtr child, QueryContext* target, size_t n)
      : child_(std::move(child)), target_(target), n_(n) {}

  Status Open() override { return child_->Open(); }
  StatusOr<bool> Next(Row* row) override {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has && ++pulled_ >= n_) target_->RequestCancel();
    return has;
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (has) {
      pulled_ += batch->num_rows();
      if (pulled_ >= n_) target_->RequestCancel();
    }
    return has;
  }
  void Close() override { child_->Close(); }
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "CancelAfterN"; }
  size_t pulled() const { return pulled_; }

 private:
  OperatorPtr child_;
  QueryContext* target_;
  size_t n_;
  size_t pulled_ = 0;
};

// Cancelling mid-drain returns kCancelled within about one batch of the
// cancel point and releases every charge (ASan verifies no leak).
TEST(GovernedExecTest, CancellationStopsWithinOneBatchAndFreesMemory) {
  Rng rng(3);
  TablePtr t = RandomTable("t", {"x", "y"}, {200, 100}, 8000, rng);
  for (bool vectorized : {false, true}) {
    QueryContext ctx;
    constexpr size_t kCancelAt = 2000;
    auto wrapper = std::make_unique<CancelAfterN>(std::make_unique<SeqScan>(t),
                                                  &ctx, kCancelAt);
    CancelAfterN* counter = wrapper.get();
    HashMarginalize op(std::move(wrapper), {"x"}, Semiring::SumProduct());
    op.BindContext(&ctx);
    auto result =
        vectorized ? ::mpfdb::exec::RunBatch(op, "out", &ctx) : ::mpfdb::exec::Run(op, "out", &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status();
    // The scan polls the context every row (batch: every batch), so at most
    // one more batch of rows is pulled after the cancel fires.
    EXPECT_LE(counter->pulled(), kCancelAt + kBatchSize);
    EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  }
}

// An already-expired deadline surfaces as kDeadlineExceeded, also mid-drain.
TEST(GovernedExecTest, ExpiredDeadlineCancelsExecution) {
  Rng rng(13);
  TablePtr t = RandomTable("t", {"x", "y"}, {200, 100}, 6000, rng);
  for (bool vectorized : {false, true}) {
    QueryContext ctx;
    ctx.set_deadline_after(std::chrono::nanoseconds(0));
    HashMarginalize op(std::make_unique<SeqScan>(t), {"x"},
                       Semiring::SumProduct());
    op.BindContext(&ctx);
    auto result =
        vectorized ? ::mpfdb::exec::RunBatch(op, "out", &ctx) : ::mpfdb::exec::Run(op, "out", &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status();
    EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  }
}

// --- end-to-end through Database / VeCache ----------------------------------

class GovernedDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SupplyChainParams params;
    params.scale = 0.004;
    params.seed = 7;
    auto schema = workload::GenerateSupplyChain(params, db_.catalog());
    ASSERT_TRUE(schema.ok()) << schema.status();
    ASSERT_TRUE(db_.CreateMpfView(schema->view).ok());
  }

  Database db_;
};

TEST_F(GovernedDatabaseTest, GovernedQueryMatchesUngoverned) {
  auto plain = db_.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(plain.ok()) << plain.status();

  QueryContext ctx;  // pure accounting: no limit, no deadline
  auto governed = db_.Query("invest", MpfQuerySpec{{"cid"}, {}},
                            "cs+nonlinear", &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_TRUE(fr::TablesEqual(*plain->table, *governed->table, 0.0));
  EXPECT_GT(ctx.stats().peak_bytes, 0u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

TEST_F(GovernedDatabaseTest, BudgetedQuerySpillsAndMatches) {
  auto plain = db_.Query("invest", MpfQuerySpec{{"wid"}, {}});
  ASSERT_TRUE(plain.ok()) << plain.status();

  QueryContext ctx;
  ctx.set_memory_limit(16 * 1024);
  auto governed =
      db_.Query("invest", MpfQuerySpec{{"wid"}, {}}, "cs+nonlinear", &ctx);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_TRUE(fr::TablesEqual(*plain->table, *governed->table, 1e-9));
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

TEST_F(GovernedDatabaseTest, CancelledQueryReturnsCancelled) {
  QueryContext ctx;
  ctx.RequestCancel();
  auto result =
      db_.Query("invest", MpfQuerySpec{{"cid"}, {}}, "cs+nonlinear", &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernedDatabaseTest, CacheBuildHonorsBudget) {
  QueryContext ctx;
  ctx.set_memory_limit(256);  // far too small for any cache table
  Status status = db_.BuildCache("invest", &ctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("VeCache::Build"), std::string::npos)
      << status.message();
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  // Unbounded build still works.
  ASSERT_TRUE(db_.BuildCache("invest").ok());
}

// --- anytime approximate inference under governance --------------------------

// A small cyclic view for the Gibbs anytime-iterator tests (acyclic views
// never reach the sampler).
workload::CycleSchema MakeGovernedCycle(Database& db, uint64_t seed) {
  workload::CycleParams params;
  params.num_vars = 4;
  params.domain_size = 5;
  params.density = 0.7;
  params.seed = seed;
  auto schema = workload::GenerateCycle(params, db.catalog());
  EXPECT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(db.CreateMpfView(schema->view).ok());
  return *schema;
}

TEST(GibbsAnytimeTest, GibbsCancellationMidChainLeavesEstimateUntorn) {
  Database db;
  auto schema = MakeGovernedCycle(db, 51);
  MpfQuerySpec query{{schema.vars[0]}, {}};
  QueryContext ctx;
  GibbsOptions options;
  options.seed = 5;
  options.sweeps_per_round = 64;
  options.burn_in_sweeps = 0;
  auto est = GibbsEstimator::Create(schema.view, query, db.catalog(),
                                    options, &ctx);
  ASSERT_TRUE(est.ok()) << est.status();
  ASSERT_TRUE((*est)->RunRound().ok());
  const size_t rounds_before = (*est)->rounds();
  const uint64_t samples_before = (*est)->samples();
  auto published = (*est)->EstimateTable("snapshot");
  ASSERT_GT(published->NumRows(), 0u);

  ctx.RequestCancel();
  Status st = (*est)->RunRound();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // The abandoned round must not tear or partially update anything the
  // caller can observe: same rounds, same samples, bit-identical estimate.
  EXPECT_EQ((*est)->rounds(), rounds_before);
  EXPECT_EQ((*est)->samples(), samples_before);
  EXPECT_TRUE(fr::TablesEqual(*published, *(*est)->EstimateTable("again"), 0));
}

TEST(GibbsAnytimeTest, GibbsExpiredDeadlineFailsRoundBeforeFirstPublish) {
  Database db;
  auto schema = MakeGovernedCycle(db, 52);
  MpfQuerySpec query{{schema.vars[0]}, {}};
  QueryContext ctx;
  GibbsOptions options;
  options.seed = 6;
  auto est = GibbsEstimator::Create(schema.view, query, db.catalog(),
                                    options, &ctx);
  ASSERT_TRUE(est.ok()) << est.status();
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  Status st = (*est)->RunRound();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ((*est)->rounds(), 0u);
  EXPECT_EQ((*est)->samples(), 0u);
  EXPECT_EQ((*est)->EstimateTable("empty")->NumRows(), 0u);
}

TEST(GibbsAnytimeTest, GibbsDeadlineFailureIsStickyAcrossRounds) {
  // A doomed context stays doomed (QueryContext's sticky-poll contract), so
  // every later round fails immediately and the published state freezes at
  // its last good value — the caller's "best answer so far".
  Database db;
  auto schema = MakeGovernedCycle(db, 53);
  MpfQuerySpec query{{schema.vars[0]}, {}};
  QueryContext ctx;
  GibbsOptions options;
  options.seed = 7;
  options.burn_in_sweeps = 0;
  auto est = GibbsEstimator::Create(schema.view, query, db.catalog(),
                                    options, &ctx);
  ASSERT_TRUE(est.ok()) << est.status();
  ASSERT_TRUE((*est)->RunRound().ok());
  auto frozen = (*est)->EstimateTable("frozen");
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ((*est)->RunRound().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ((*est)->rounds(), 1u);
  EXPECT_TRUE(fr::TablesEqual(*frozen, *(*est)->EstimateTable("after"), 0));
}

TEST(GovernedApproxTest, ApproxCancelledQueryReturnsCancelled) {
  Database db;
  auto schema = MakeGovernedCycle(db, 54);
  MpfQuerySpec query{{schema.vars[0]}, {}};
  QueryContext ctx;
  ctx.RequestCancel();
  auto approx = db.QueryApprox(schema.view.name, query, ApproxOptions{},
                               "cs+nonlinear", &ctx);
  ASSERT_FALSE(approx.ok());
  // Cancellation is a caller decision, never silently degraded to bounds.
  EXPECT_EQ(approx.status().code(), StatusCode::kCancelled);
}

TEST(GovernedApproxTest, ApproxSamplingOnlyTightensDissociationBounds) {
  // The sampler's incumbent merges into the dissociation/conditioning
  // bounds: with sampling the interval must be nowhere wider than without.
  Database db;
  auto schema = MakeGovernedCycle(db, 55);
  MpfQuerySpec query{{schema.vars[0]}, {}};
  ApproxOptions bounds_only;
  bounds_only.eps = 0;
  bounds_only.sampling = false;
  auto plain = db.QueryApprox(schema.view.name, query, bounds_only);
  ASSERT_TRUE(plain.ok()) << plain.status();

  ApproxOptions sampled = bounds_only;
  sampled.sampling = true;
  sampled.seed = 13;
  sampled.max_rounds = 8;
  auto tightened = db.QueryApprox(schema.view.name, query, sampled);
  ASSERT_TRUE(tightened.ok()) << tightened.status();
  EXPECT_LE(tightened->max_gap, plain->max_gap + 1e-12);

  // Sampling may surface new groups; on every group both runs report, the
  // interval must only shrink.
  auto keyed = [](const Table& t) {
    std::map<std::vector<VarValue>, double> out;
    for (size_t i = 0; i < t.NumRows(); ++i) {
      RowView row = t.Row(i);
      out[std::vector<VarValue>(row.vars, row.vars + row.arity)] =
          row.measure;
    }
    return out;
  };
  auto plain_lower = keyed(*plain->lower);
  auto plain_upper = keyed(*plain->upper);
  for (const auto& [group, value] : keyed(*tightened->lower)) {
    auto it = plain_lower.find(group);
    if (it != plain_lower.end()) {
      EXPECT_GE(value, it->second) << "lower bound widened";
    }
  }
  for (const auto& [group, value] : keyed(*tightened->upper)) {
    auto it = plain_upper.find(group);
    if (it != plain_upper.end()) {
      EXPECT_LE(value, it->second) << "upper bound widened";
    }
  }
}

}  // namespace
}  // namespace mpfdb::exec
