#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"

namespace mpfdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("hello"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  MPFDB_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, ToLowerAndPrefix) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT x FROM t", "select"));
  EXPECT_FALSE(StartsWithIgnoreCase("SEL", "select"));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsZeroWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

}  // namespace
}  // namespace mpfdb
