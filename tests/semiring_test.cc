#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "semiring/semiring.h"
#include "util/rng.h"

namespace mpfdb {
namespace {

// Property-style sweep: every semiring instance must satisfy the commutative
// semiring laws (Section 2 of the paper) on sampled values from its carrier.
class SemiringLawsTest : public ::testing::TestWithParam<SemiringKind> {
 protected:
  Semiring semiring() const { return Semiring(GetParam()); }

  // Sampled carrier values appropriate for the semiring.
  std::vector<double> SampleValues() {
    Rng rng(42);
    std::vector<double> values;
    if (GetParam() == SemiringKind::kBoolOrAnd) {
      values = {0.0, 1.0};
    } else if (GetParam() == SemiringKind::kLogSumProduct) {
      for (int i = 0; i < 24; ++i) values.push_back(rng.UniformDouble(-8, 3));
      values.push_back(0.0);
    } else if (GetParam() == SemiringKind::kMaxProduct ||
               GetParam() == SemiringKind::kSumProduct) {
      for (int i = 0; i < 24; ++i) values.push_back(rng.UniformDouble(0, 10));
      values.push_back(0.0);
      values.push_back(1.0);
    } else {
      for (int i = 0; i < 24; ++i) values.push_back(rng.UniformDouble(-10, 10));
      values.push_back(0.0);
    }
    return values;
  }

  static void ExpectNear(double a, double b) {
    if (std::isinf(a) || std::isinf(b)) {
      EXPECT_EQ(a, b);
    } else {
      EXPECT_NEAR(a, b, 1e-9);
    }
  }
};

TEST_P(SemiringLawsTest, AddCommutativeAssociative) {
  Semiring s = semiring();
  auto values = SampleValues();
  for (double a : values) {
    for (double b : values) {
      ExpectNear(s.Add(a, b), s.Add(b, a));
      for (double c : values) {
        ExpectNear(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c)));
      }
    }
  }
}

TEST_P(SemiringLawsTest, MultiplyCommutativeAssociative) {
  Semiring s = semiring();
  auto values = SampleValues();
  for (double a : values) {
    for (double b : values) {
      ExpectNear(s.Multiply(a, b), s.Multiply(b, a));
      for (double c : values) {
        ExpectNear(s.Multiply(s.Multiply(a, b), c),
                   s.Multiply(a, s.Multiply(b, c)));
      }
    }
  }
}

TEST_P(SemiringLawsTest, Distributivity) {
  // The law the whole paper rests on: a * (b + c) == a*b + a*c.
  Semiring s = semiring();
  auto values = SampleValues();
  for (double a : values) {
    for (double b : values) {
      for (double c : values) {
        double lhs = s.Multiply(a, s.Add(b, c));
        double rhs = s.Add(s.Multiply(a, b), s.Multiply(a, c));
        if (std::isinf(lhs) || std::isinf(rhs)) continue;  // inf - inf traps
        EXPECT_NEAR(lhs, rhs, 1e-7);
      }
    }
  }
}

TEST_P(SemiringLawsTest, Identities) {
  Semiring s = semiring();
  auto values = SampleValues();
  for (double a : values) {
    ExpectNear(s.Add(a, s.AddIdentity()), a);
    ExpectNear(s.Multiply(a, s.MultiplyIdentity()), a);
  }
}

TEST_P(SemiringLawsTest, DivisionInvertsMultiply) {
  Semiring s = semiring();
  if (!s.HasDivision()) GTEST_SKIP() << "no division";
  auto values = SampleValues();
  for (double a : values) {
    for (double b : values) {
      if (b == 0.0 && (GetParam() == SemiringKind::kSumProduct ||
                       GetParam() == SemiringKind::kMaxProduct)) {
        continue;  // zero is not invertible
      }
      ExpectNear(s.Divide(s.Multiply(a, b), b), a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSemirings, SemiringLawsTest,
    ::testing::Values(SemiringKind::kSumProduct, SemiringKind::kMinSum,
                      SemiringKind::kMaxSum, SemiringKind::kMaxProduct,
                      SemiringKind::kBoolOrAnd, SemiringKind::kLogSumProduct),
    [](const ::testing::TestParamInfo<SemiringKind>& info) {
      return Semiring(info.param).name();
    });

TEST(SemiringTest, FromName) {
  EXPECT_EQ(Semiring::FromName("sum_product")->kind(), SemiringKind::kSumProduct);
  EXPECT_EQ(Semiring::FromName("SUM")->kind(), SemiringKind::kSumProduct);
  EXPECT_EQ(Semiring::FromName("min_sum")->kind(), SemiringKind::kMinSum);
  EXPECT_EQ(Semiring::FromName("max_sum")->kind(), SemiringKind::kMaxSum);
  EXPECT_EQ(Semiring::FromName("max_product")->kind(), SemiringKind::kMaxProduct);
  EXPECT_EQ(Semiring::FromName("or")->kind(), SemiringKind::kBoolOrAnd);
  EXPECT_FALSE(Semiring::FromName("bogus").ok());
}

TEST(SemiringTest, AggregateNames) {
  EXPECT_EQ(Semiring::SumProduct().aggregate_name(), "SUM");
  EXPECT_EQ(Semiring::MinSum().aggregate_name(), "MIN");
  EXPECT_EQ(Semiring::MaxSum().aggregate_name(), "MAX");
  EXPECT_EQ(Semiring::MaxProduct().aggregate_name(), "MAX");
  EXPECT_EQ(Semiring::BoolOrAnd().aggregate_name(), "OR");
}

TEST(SemiringTest, BooleanHasNoDivision) {
  EXPECT_FALSE(Semiring::BoolOrAnd().HasDivision());
  EXPECT_TRUE(Semiring::SumProduct().HasDivision());
  EXPECT_TRUE(Semiring::MinSum().HasDivision());
}

TEST(SemiringTest, DivideByZeroConvention) {
  // 0/0 == 0 keeps zero-probability states at zero during BP updates.
  EXPECT_EQ(Semiring::SumProduct().Divide(0.0, 0.0), 0.0);
  EXPECT_EQ(Semiring::MaxProduct().Divide(5.0, 0.0), 0.0);
}

TEST(SemiringTest, LogSumProductIsIsomorphicToSumProduct) {
  // exp(Add_log(log a, log b)) == a + b and exp(Mul_log(..)) == a * b.
  Semiring log_sr = Semiring::LogSumProduct();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    double a = rng.UniformDouble(1e-6, 5.0);
    double b = rng.UniformDouble(1e-6, 5.0);
    EXPECT_NEAR(std::exp(log_sr.Add(std::log(a), std::log(b))), a + b,
                1e-9 * (a + b));
    EXPECT_NEAR(std::exp(log_sr.Multiply(std::log(a), std::log(b))), a * b,
                1e-9 * a * b);
    EXPECT_NEAR(std::exp(log_sr.Divide(std::log(a), std::log(b))), a / b,
                1e-9 * a / b);
  }
  // Stability: adding two tiny log-probabilities does not underflow.
  double tiny = -800.0;  // exp(-800) underflows a double
  EXPECT_NEAR(log_sr.Add(tiny, tiny), tiny + std::log(2.0), 1e-9);
  EXPECT_EQ(Semiring::FromName("log_sum_product")->kind(),
            SemiringKind::kLogSumProduct);
  EXPECT_EQ(log_sr.aggregate_name(), "LOGSUM");
}

TEST(SemiringTest, MinSumIdentities) {
  Semiring s = Semiring::MinSum();
  EXPECT_TRUE(std::isinf(s.AddIdentity()));
  EXPECT_GT(s.AddIdentity(), 0);
  EXPECT_EQ(s.MultiplyIdentity(), 0.0);
  EXPECT_EQ(s.Multiply(3.0, 4.0), 7.0);
  EXPECT_EQ(s.Add(3.0, 4.0), 3.0);
}

}  // namespace
}  // namespace mpfdb
