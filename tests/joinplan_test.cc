// Unit tests of the shared join-plan search (BestJoinPlan /
// FixedOrderJoinPlan): plan spaces, cross-product fallback, the
// greedy-conservative GroupBy pushdown, and the Theorem 1 inclusion
// relationships measured on concrete schemas.

#include <gtest/gtest.h>

#include "opt/cs.h"
#include "opt/joinplan.h"
#include "opt/optimizer.h"
#include "opt/ve.h"
#include "workload/generators.h"

namespace mpfdb::opt {
namespace {

class JoinPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.RegisterVariable("a", 10).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("b", 10).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("c", 10).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("d", 10).ok());
    AddTable("t0", {"a", "b"}, 100);
    AddTable("t1", {"b", "c"}, 50);
    AddTable("t2", {"c", "d"}, 25);
    AddTable("iso", {"d"}, 5);  // shares d with t2 only
    view_ = MpfViewDef{"v", {"t0", "t1", "t2"}, Semiring::SumProduct()};
  }

  void AddTable(const std::string& name, std::vector<std::string> vars,
                int rows) {
    auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
    for (int i = 0; i < rows; ++i) {
      std::vector<VarValue> row;
      for (size_t c = 0; c < t->schema().arity(); ++c) {
        row.push_back((i + static_cast<int>(c)) % 10);
      }
      if (t->schema().arity() >= 2) row[1] = (i / 10) % 10;
      t->AppendRow(row, 1.0);
    }
    ASSERT_TRUE(catalog_.RegisterTable(t).ok());
  }

  StatusOr<QueryContext> MakeContext(const MpfViewDef& view,
                                     const MpfQuerySpec& query) {
    return QueryContext::Make(view, query, catalog_, cost_model_);
  }

  std::vector<Factor> Leaves(const QueryContext& ctx) {
    std::vector<Factor> factors;
    for (size_t i = 0; i < ctx.leaves.size(); ++i) {
      factors.push_back(Factor{ctx.leaves[i], uint64_t{1} << i});
    }
    return factors;
  }

  Catalog catalog_;
  SimpleCostModel cost_model_;
  MpfViewDef view_;
};

TEST_F(JoinPlanTest, SingleFactorReturnsItself) {
  auto ctx = MakeContext(MpfViewDef{"v", {"t0"}, Semiring::SumProduct()},
                         MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  auto plan = BestJoinPlan(*ctx, Leaves(*ctx), JoinPlanOptions{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind, PlanNodeKind::kScan);
}

TEST_F(JoinPlanTest, EmptyFactorsRejected) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  EXPECT_FALSE(BestJoinPlan(*ctx, {}, JoinPlanOptions{}).ok());
}

TEST_F(JoinPlanTest, LinearSearchCoversAllFactors) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  JoinPlanOptions opts;
  auto plan = BestJoinPlan(*ctx, Leaves(*ctx), opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->JoinCount(), 2);
  EXPECT_TRUE((*plan)->IsLinear());
  auto tables = (*plan)->BaseTables();
  EXPECT_TRUE(varset::SetEquals(tables, {"t0", "t1", "t2"}));
}

TEST_F(JoinPlanTest, BushyNotWorseThanLinear) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  JoinPlanOptions linear{false, true, true};
  JoinPlanOptions bushy{true, true, true};
  auto p_linear = BestJoinPlan(*ctx, Leaves(*ctx), linear);
  auto p_bushy = BestJoinPlan(*ctx, Leaves(*ctx), bushy);
  ASSERT_TRUE(p_linear.ok() && p_bushy.ok());
  EXPECT_LE((*p_bushy)->est_cost, (*p_linear)->est_cost);
}

TEST_F(JoinPlanTest, GroupByPushdownNotWorseThanPlain) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"d"}, {}});
  ASSERT_TRUE(ctx.ok());
  JoinPlanOptions plain{false, false, true};
  JoinPlanOptions pushdown{false, true, true};
  auto p0 = BestJoinPlan(*ctx, Leaves(*ctx), plain);
  auto p1 = BestJoinPlan(*ctx, Leaves(*ctx), pushdown);
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_LE((*p1)->est_cost, (*p0)->est_cost);
  EXPECT_EQ((*p0)->GroupByCount(), 0);  // plain never inserts GroupBys
}

TEST_F(JoinPlanTest, CrossProductFallbackForDisconnectedSets) {
  // t0(a,b) and iso(d) share nothing: the planner must fall back to a cross
  // product rather than fail.
  MpfViewDef disconnected{"v", {"t0", "iso"}, Semiring::SumProduct()};
  auto ctx = MakeContext(disconnected, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  for (bool bushy : {false, true}) {
    JoinPlanOptions opts{bushy, false, true};
    auto plan = BestJoinPlan(*ctx, Leaves(*ctx), opts);
    ASSERT_TRUE(plan.ok()) << (bushy ? "bushy" : "linear");
    EXPECT_EQ((*plan)->JoinCount(), 1);
  }
}

TEST_F(JoinPlanTest, FixedOrderJoinsAscendingByCardinality) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  auto plan = FixedOrderJoinPlan(*ctx, Leaves(*ctx));
  ASSERT_TRUE(plan.ok());
  // Smallest first: t2 (25) then t1 (50) then t0 (100).
  EXPECT_EQ((*plan)->BaseTables(),
            (std::vector<std::string>{"t2", "t1", "t0"}));
  EXPECT_FALSE(FixedOrderJoinPlan(*ctx, {}).ok());
}

TEST_F(JoinPlanTest, FactorLimitEnforced) {
  auto ctx = MakeContext(view_, MpfQuerySpec{{"a"}, {}});
  ASSERT_TRUE(ctx.ok());
  std::vector<Factor> many;
  for (int i = 0; i < 21; ++i) many.push_back(Leaves(*ctx)[0]);
  JoinPlanOptions opts;
  EXPECT_FALSE(BestJoinPlan(*ctx, many, opts).ok());
  opts.bushy = true;
  std::vector<Factor> seventeen(17, Leaves(*ctx)[0]);
  EXPECT_FALSE(BestJoinPlan(*ctx, seventeen, opts).ok());
}

// Theorem 1 measured: on the synthetic schemas, cost(CS+) <= cost(CS) and
// cost of VE's chosen plan >= cost of CS+'s (nonlinear) plan, since
// GDLPlan(VE) ⊂ GDLPlan(CS+).
TEST(PlanSpaceInclusionTest, Theorem1CostOrdering) {
  SimpleCostModel cost_model;
  for (auto kind : {workload::SyntheticKind::kStar,
                    workload::SyntheticKind::kMultistar,
                    workload::SyntheticKind::kLinear}) {
    Catalog catalog;
    workload::SyntheticParams params;
    params.kind = kind;
    params.num_tables = 5;
    params.domain_size = 6;
    auto schema = workload::GenerateSynthetic(params, catalog);
    ASSERT_TRUE(schema.ok());
    for (const auto& var : schema->linear_vars) {
      MpfQuerySpec query{{var}, {}};
      CsOptimizer cs;
      CsPlusOptimizer cs_plus(true);
      auto p_cs = cs.Optimize(schema->view, query, catalog, cost_model);
      auto p_csp = cs_plus.Optimize(schema->view, query, catalog, cost_model);
      ASSERT_TRUE(p_cs.ok() && p_csp.ok());
      EXPECT_LE((*p_csp)->est_cost, (*p_cs)->est_cost)
          << workload::SyntheticKindName(kind) << "/" << var;
      for (VeHeuristic h :
           {VeHeuristic::kDegree, VeHeuristic::kWidth, VeHeuristic::kMinFill}) {
        VeOptimizer ve(VeOptions{h, false, false, 0});
        auto p_ve = ve.Optimize(schema->view, query, catalog, cost_model);
        ASSERT_TRUE(p_ve.ok());
        EXPECT_GE((*p_ve)->est_cost - (*p_csp)->est_cost, -1e-6)
            << workload::SyntheticKindName(kind) << "/" << var << "/"
            << VeHeuristicName(h);
      }
    }
  }
}

}  // namespace
}  // namespace mpfdb::opt
