// Shared randomized-schema machinery for property-style tests: a generator
// for random MPF views over random functional relations, plus the seed
// plumbing that lets one environment variable re-seed every property test.
//
// MPFDB_TEST_SEED (a non-negative integer, default 0) offsets the seed of
// every parameterized test case, so CI can sweep fresh schedules without a
// code change while any failure stays replayable: each test scopes a trace
// naming the exact seed it ran with.

#ifndef MPFDB_TESTS_RANDOM_VIEW_H_
#define MPFDB_TESTS_RANDOM_VIEW_H_

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "util/rng.h"

namespace mpfdb {

// A random view: `num_vars` variables with random small domains; `num_rels`
// relations over random variable subsets, each relation a random-density
// functional relation. The relation set is chained enough to be connected.
struct RandomView {
  Catalog catalog;
  MpfViewDef view;
  std::vector<TablePtr> tables;
  std::vector<std::string> vars;          // all registered variables
  std::vector<std::string> present_vars;  // variables appearing in the view
};

// `name_prefix` namespaces every variable, table, and the view name, so
// several random views can coexist in one catalog/database (the concurrent
// serving tests host N independent views in one Database).
inline RandomView MakeRandomView(uint64_t seed, int num_vars, int num_rels,
                                 bool force_acyclic,
                                 const std::string& name_prefix = "") {
  Rng rng(seed);
  RandomView rv;
  for (int i = 0; i < num_vars; ++i) {
    std::string name = name_prefix + "v" + std::to_string(i);
    EXPECT_TRUE(rv.catalog.RegisterVariable(name, rng.UniformInt(2, 4)).ok());
    rv.vars.push_back(name);
  }
  rv.view.name = name_prefix + "view";
  rv.view.semiring = Semiring::SumProduct();
  for (int r = 0; r < num_rels; ++r) {
    std::vector<std::string> vars;
    if (force_acyclic) {
      // A path of overlapping pairs is guaranteed acyclic.
      vars = {rv.vars[static_cast<size_t>(r) % rv.vars.size()],
              rv.vars[static_cast<size_t>(r + 1) % rv.vars.size()]};
      if (vars[0] == vars[1]) vars.pop_back();
    } else {
      // Random 1-3 variable scope, chained to the previous relation.
      size_t anchor = static_cast<size_t>(rng.UniformInt(
          0, std::min<int64_t>(r, static_cast<int64_t>(rv.vars.size()) - 1)));
      std::set<std::string> scope = {rv.vars[anchor]};
      int extra = static_cast<int>(rng.UniformInt(0, 2));
      for (int e = 0; e < extra; ++e) {
        scope.insert(rv.vars[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rv.vars.size()) - 1))]);
      }
      vars.assign(scope.begin(), scope.end());
    }
    auto table = std::make_shared<Table>(name_prefix + "r" + std::to_string(r),
                                         Schema(vars, "f"));
    // Random-density FR over the scope's cross product.
    std::vector<int64_t> domains;
    for (const auto& v : vars) domains.push_back(*rv.catalog.DomainSize(v));
    std::vector<VarValue> row(vars.size(), 0);
    while (true) {
      if (rng.Bernoulli(0.8)) {
        table->AppendRow(row, rng.UniformDouble(0.25, 2.0));
      }
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < domains[pos]) break;
        row[pos] = 0;
        ++pos;
      }
      if (row.empty() || pos == row.size()) break;
    }
    if (table->Empty()) {
      // Guarantee at least one row so the view is non-degenerate.
      table->AppendRow(std::vector<VarValue>(vars.size(), 0), 1.0);
    }
    EXPECT_TRUE(rv.catalog.RegisterTable(table).ok());
    rv.present_vars = varset::Union(rv.present_vars, vars);
    rv.tables.push_back(table);
    rv.view.relations.push_back(table->name());
  }
  return rv;
}

// Uniform choice from a non-empty list.
inline const std::string& Pick(const std::vector<std::string>& items,
                               Rng& rng) {
  return items[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
}

// The MPFDB_TEST_SEED offset, parsed once.
inline uint64_t TestSeedOffset() {
  static const uint64_t offset = [] {
    const char* env = std::getenv("MPFDB_TEST_SEED");
    if (env == nullptr || *env == '\0') return static_cast<uint64_t>(0);
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }();
  return offset;
}

// Effective seed of one parameterized case. Use exactly this value for every
// Rng in the test body so a failure replays from the printed seed alone.
inline uint64_t CaseSeed(uint64_t param) { return param + TestSeedOffset(); }

// Attaches the effective seed to every assertion failure in scope.
#define MPFDB_TRACE_SEED(seed)                                             \
  SCOPED_TRACE(::testing::Message()                                        \
               << "effective seed " << (seed) << " (MPFDB_TEST_SEED="      \
               << ::mpfdb::TestSeedOffset()                                \
               << "; rerun with the same value to reproduce)")

}  // namespace mpfdb

#endif  // MPFDB_TESTS_RANDOM_VIEW_H_
