// Tests of the paged storage layer: page packing, the paged file, LRU buffer
// pool behavior (hits/misses/eviction/pinning/writeback), disk tables, and
// binary persistence.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/persistence.h"
#include "fr/algebra.h"
#include "storage/buffer_pool.h"
#include "storage/disk_table.h"
#include "storage/page.h"
#include "storage/paged_file.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

TEST(DataPageTest, RowPackingRoundTrip) {
  std::vector<std::byte> buffer(kPageSize, std::byte{0});
  DataPage page(buffer.data());
  const size_t arity = 3;
  ASSERT_GE(DataPage::RowCapacity(arity), 2u);
  page.set_row_count(2);
  VarValue row0[] = {1, 2, 3};
  VarValue row1[] = {-4, 5, 6};
  page.WriteRow(0, arity, row0, 0.5);
  page.WriteRow(1, arity, row1, -2.25);

  EXPECT_EQ(page.row_count(), 2u);
  VarValue out[3];
  double measure;
  page.ReadRow(0, arity, out, &measure);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[2], 3);
  EXPECT_DOUBLE_EQ(measure, 0.5);
  page.ReadRow(1, arity, out, &measure);
  EXPECT_EQ(out[0], -4);
  EXPECT_DOUBLE_EQ(measure, -2.25);
}

TEST(DataPageTest, CapacityScalesWithArity) {
  EXPECT_GT(DataPage::RowCapacity(1), DataPage::RowCapacity(8));
  // 8KB page, 1-var rows of 12 bytes: hundreds of rows.
  EXPECT_GT(DataPage::RowCapacity(1), 500u);
}

TEST(PagedFileTest, AllocateReadWrite) {
  std::string path = TempPath("mpfdb_paged_file_test.bin");
  auto file = PagedFile::Create(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->page_count(), 0u);

  auto p0 = (*file)->AllocatePage();
  auto p1 = (*file)->AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);

  std::vector<std::byte> data(kPageSize, std::byte{0x5A});
  ASSERT_TRUE((*file)->WritePage(1, data.data()).ok());
  std::vector<std::byte> read(kPageSize);
  ASSERT_TRUE((*file)->ReadPage(1, read.data()).ok());
  EXPECT_EQ(read[100], std::byte{0x5A});
  ASSERT_TRUE((*file)->ReadPage(0, read.data()).ok());
  EXPECT_EQ(read[100], std::byte{0});  // allocated pages are zeroed

  EXPECT_EQ((*file)->ReadPage(7, read.data()).code(), StatusCode::kOutOfRange);
  EXPECT_GE((*file)->stats().reads, 2u);

  // Reopen and find both pages.
  file->reset();
  auto reopened = PagedFile::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 2u);
  ASSERT_TRUE((*reopened)->ReadPage(1, read.data()).ok());
  EXPECT_EQ(read[0], std::byte{0x5A});
  fs::remove(path);
}

TEST(PagedFileTest, OpenRejectsBadFiles) {
  EXPECT_EQ(PagedFile::Open("/nonexistent/x.bin").status().code(),
            StatusCode::kNotFound);
  std::string path = TempPath("mpfdb_unaligned.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a page";
  }
  EXPECT_EQ(PagedFile::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  fs::remove(path);
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("mpfdb_bufferpool_test.bin");
    auto file = PagedFile::Create(path_);
    ASSERT_TRUE(file.ok());
    file_ = std::move(*file);
    // Eight pages stamped with their id.
    for (uint32_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(file_->AllocatePage().ok());
      std::vector<std::byte> data(kPageSize, std::byte{static_cast<uint8_t>(i)});
      ASSERT_TRUE(file_->WritePage(i, data.data()).ok());
    }
  }
  void TearDown() override {
    file_.reset();
    fs::remove(path_);
  }

  std::string path_;
  std::unique_ptr<PagedFile> file_;
};

TEST_F(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(file_.get(), 4);
  auto page = pool.FetchPage(3);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)[0], std::byte{3});
  ASSERT_TRUE(pool.Unpin(3, false).ok());
  // Second fetch hits.
  ASSERT_TRUE(pool.FetchPage(3).ok());
  ASSERT_TRUE(pool.Unpin(3, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, LruEviction) {
  BufferPool pool(file_.get(), 2);
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(pool.FetchPage(i).ok());
    ASSERT_TRUE(pool.Unpin(i, false).ok());
  }
  // Page 0 was least recently used and got evicted; page 2 is cached.
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(2).ok());
  ASSERT_TRUE(pool.Unpin(2, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  ASSERT_TRUE(pool.FetchPage(0).ok());
  ASSERT_TRUE(pool.Unpin(0, false).ok());
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(file_.get(), 2);
  ASSERT_TRUE(pool.FetchPage(0).ok());  // pinned
  ASSERT_TRUE(pool.FetchPage(1).ok());  // pinned
  // Every frame pinned: further fetch fails with kResourceExhausted.
  EXPECT_EQ(pool.FetchPage(2).status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.Unpin(1, false).ok());
  EXPECT_TRUE(pool.FetchPage(2).ok());
  ASSERT_TRUE(pool.Unpin(2, false).ok());
  ASSERT_TRUE(pool.Unpin(0, false).ok());
}

TEST_F(BufferPoolTest, AllFramesPinnedReportsPoolStatsAndRecovers) {
  constexpr size_t kFrames = 4;
  BufferPool pool(file_.get(), kFrames);
  for (uint32_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(pool.FetchPage(i).ok());  // pin every frame
  }
  auto full = pool.FetchPage(static_cast<uint32_t>(kFrames));
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kResourceExhausted);
  // The message names the pinned/total frame counts and the remedy.
  EXPECT_NE(full.status().message().find("pinned=4/total=4"),
            std::string::npos)
      << full.status().message();
  EXPECT_NE(full.status().message().find("Unpin"), std::string::npos)
      << full.status().message();
  // Unpinning one frame makes the pool usable again.
  ASSERT_TRUE(pool.Unpin(0, false).ok());
  ASSERT_TRUE(pool.FetchPage(static_cast<uint32_t>(kFrames)).ok());
  ASSERT_TRUE(pool.Unpin(static_cast<uint32_t>(kFrames), false).ok());
  for (uint32_t i = 1; i < kFrames; ++i) {
    ASSERT_TRUE(pool.Unpin(i, false).ok());
  }
}

TEST_F(BufferPoolTest, UnpinErrors) {
  BufferPool pool(file_.get(), 2);
  EXPECT_EQ(pool.Unpin(5, false).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(pool.FetchPage(0).ok());
  ASSERT_TRUE(pool.Unpin(0, false).ok());
  EXPECT_EQ(pool.Unpin(0, false).code(), StatusCode::kFailedPrecondition);
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBack) {
  {
    BufferPool pool(file_.get(), 2);
    auto page = pool.FetchPage(4);
    ASSERT_TRUE(page.ok());
    (*page)[0] = std::byte{0xEE};
    ASSERT_TRUE(pool.Unpin(4, /*dirty=*/true).ok());
    ASSERT_TRUE(pool.FlushAll().ok());
    EXPECT_EQ(pool.stats().writebacks, 1u);
  }
  std::vector<std::byte> read(kPageSize);
  ASSERT_TRUE(file_->ReadPage(4, read.data()).ok());
  EXPECT_EQ(read[0], std::byte{0xEE});
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyVictim) {
  BufferPool pool(file_.get(), 1);
  auto page = pool.FetchPage(5);
  ASSERT_TRUE(page.ok());
  (*page)[1] = std::byte{0x77};
  ASSERT_TRUE(pool.Unpin(5, true).ok());
  // Fetching another page evicts the dirty page 5 and writes it back.
  ASSERT_TRUE(pool.FetchPage(6).ok());
  ASSERT_TRUE(pool.Unpin(6, false).ok());
  EXPECT_GE(pool.stats().writebacks, 1u);
  std::vector<std::byte> read(kPageSize);
  ASSERT_TRUE(file_->ReadPage(5, read.data()).ok());
  EXPECT_EQ(read[1], std::byte{0x77});
}

TEST(DiskTableTest, RoundTripLargeTable) {
  Rng rng(61);
  Table original("big", Schema({"a", "b", "c"}, "f"));
  original.SetKeyVars({"a", "b"}).ok();
  for (int i = 0; i < 5000; ++i) {
    original.AppendRow({i % 50, i / 50, i % 7}, rng.UniformDouble(0, 10));
  }
  std::string path = TempPath("mpfdb_disktable_test.mpft");
  ASSERT_TRUE(DiskTable::Write(original, path).ok());

  auto disk = DiskTable::Open(path, /*pool_pages=*/4);
  ASSERT_TRUE(disk.ok()) << disk.status();
  EXPECT_EQ((*disk)->NumRows(), 5000u);
  EXPECT_EQ((*disk)->schema().variables(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*disk)->key_vars(), (std::vector<std::string>{"a", "b"}));

  auto loaded = (*disk)->ReadAll("big");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(fr::TablesEqual(original, **loaded, 0.0));
  // More data pages than pool frames: the scan must have missed repeatedly.
  EXPECT_GT((*disk)->buffer_pool().stats().misses, 4u);
  fs::remove(path);
}

TEST(DiskTableTest, RandomAccessAndErrors) {
  Table original("t", Schema({"x"}, "f"));
  for (int i = 0; i < 100; ++i) original.AppendRow({i}, i * 0.5);
  std::string path = TempPath("mpfdb_disktable_small.mpft");
  ASSERT_TRUE(DiskTable::Write(original, path).ok());
  auto disk = DiskTable::Open(path);
  ASSERT_TRUE(disk.ok());

  std::vector<VarValue> vars;
  double measure;
  ASSERT_TRUE((*disk)->ReadRow(42, &vars, &measure).ok());
  EXPECT_EQ(vars[0], 42);
  EXPECT_DOUBLE_EQ(measure, 21.0);
  EXPECT_EQ((*disk)->ReadRow(100, &vars, &measure).code(),
            StatusCode::kOutOfRange);
  fs::remove(path);
}

TEST(DiskTableTest, ReadRangeMatchesReadRow) {
  Rng rng(67);
  Table original("t", Schema({"a", "b"}, "f"));
  for (int i = 0; i < 1700; ++i) {
    original.AppendRow({i, i % 13}, rng.UniformDouble(0, 10));
  }
  std::string path = TempPath("mpfdb_disktable_range.mpft");
  ASSERT_TRUE(DiskTable::Write(original, path).ok());
  auto disk = DiskTable::Open(path, /*pool_pages=*/4);
  ASSERT_TRUE(disk.ok());

  // Ranges chosen to start mid-page, span page boundaries, and hit the tail.
  for (auto [start, n] : std::vector<std::pair<uint64_t, size_t>>{
           {0, 1}, {0, 1700}, {3, 700}, {711, 989}, {1699, 1}}) {
    std::vector<VarValue> vars(n * 2);
    std::vector<double> measures(n);
    ASSERT_TRUE((*disk)->ReadRange(start, n, vars.data(), measures.data()).ok())
        << start << "+" << n;
    for (size_t r = 0; r < n; ++r) {
      std::vector<VarValue> row;
      double measure;
      ASSERT_TRUE((*disk)->ReadRow(start + r, &row, &measure).ok());
      EXPECT_EQ(vars[r * 2], row[0]);
      EXPECT_EQ(vars[r * 2 + 1], row[1]);
      EXPECT_EQ(measures[r], measure);
    }
  }
  // Reading past the end fails rather than truncating.
  std::vector<VarValue> vars(4);
  std::vector<double> measures(2);
  EXPECT_EQ((*disk)->ReadRange(1699, 2, vars.data(), measures.data()).code(),
            StatusCode::kOutOfRange);
  fs::remove(path);
}

TEST(DiskTableTest, EmptyAndZeroArityTables) {
  Table empty("e", Schema({"x"}, "f"));
  std::string path = TempPath("mpfdb_disktable_empty.mpft");
  ASSERT_TRUE(DiskTable::Write(empty, path).ok());
  auto disk = DiskTable::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->NumRows(), 0u);
  auto loaded = (*disk)->ReadAll("e");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->NumRows(), 0u);
  fs::remove(path);

  Table scalar("s", Schema({}, "f"));
  scalar.AppendRow(std::vector<VarValue>{}, 3.5);
  std::string path2 = TempPath("mpfdb_disktable_scalar.mpft");
  ASSERT_TRUE(DiskTable::Write(scalar, path2).ok());
  auto disk2 = DiskTable::Open(path2);
  ASSERT_TRUE(disk2.ok());
  auto loaded2 = (*disk2)->ReadAll("s");
  ASSERT_TRUE(loaded2.ok());
  ASSERT_EQ((*loaded2)->NumRows(), 1u);
  EXPECT_DOUBLE_EQ((*loaded2)->measure(0), 3.5);
  fs::remove(path2);
}

TEST(DiskTableTest, OpenRejectsNonDiskTable) {
  std::string path = TempPath("mpfdb_not_a_table.mpft");
  {
    auto file = PagedFile::Create(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->AllocatePage().ok());  // zeroed page: bad magic
  }
  EXPECT_EQ(DiskTable::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  fs::remove(path);
}

TEST(DiskScanTest, StreamsThroughFullPipeline) {
  // A join + marginalization pipeline whose base inputs stream straight off
  // disk pages through the buffer pool, never materialized.
  Rng rng(73);
  Table a("a", Schema({"x", "y"}, "f"));
  Table b("b", Schema({"y", "z"}, "f"));
  for (int i = 0; i < 3000; ++i) {
    a.AppendRow({i, i % 40}, rng.UniformDouble(0.5, 2.0));
    b.AppendRow({i % 40, i}, rng.UniformDouble(0.5, 2.0));
  }
  std::string pa = TempPath("mpfdb_diskscan_a.mpft");
  std::string pb = TempPath("mpfdb_diskscan_b.mpft");
  ASSERT_TRUE(DiskTable::Write(a, pa).ok());
  ASSERT_TRUE(DiskTable::Write(b, pb).ok());
  auto da = DiskTable::Open(pa, 4);
  auto db = DiskTable::Open(pb, 4);
  ASSERT_TRUE(da.ok() && db.ok());

  Semiring sr = Semiring::SumProduct();
  auto join = std::make_unique<exec::HashProductJoin>(
      std::make_unique<exec::DiskScan>(da->get()),
      std::make_unique<exec::DiskScan>(db->get()), sr);
  exec::HashMarginalize agg(std::move(join), {"y"}, sr);
  auto result = exec::Run(agg, "out");
  ASSERT_TRUE(result.ok()) << result.status();

  auto expected_join = fr::ProductJoin(a, b, sr, "j");
  ASSERT_TRUE(expected_join.ok());
  auto expected = fr::Marginalize(**expected_join, {"y"}, sr, "m");
  ASSERT_TRUE(expected.ok());
  std::vector<size_t> all((*result)->schema().arity());
  std::iota(all.begin(), all.end(), 0);
  (*result)->SortByVariables(all);
  EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-9));
  // The scans actually hit the disk pages.
  EXPECT_GT((*da)->buffer_pool().stats().misses, 0u);
  fs::remove(pa);
  fs::remove(pb);
}

TEST(DiskScanTest, BatchScanMatchesRowScan) {
  // DiskScan's native NextBatch (page-wise ReadRange) must materialize the
  // same table as its row-at-a-time path, bit for bit.
  Rng rng(79);
  Table t("t", Schema({"x", "y"}, "f"));
  for (int i = 0; i < 2600; ++i) {
    t.AppendRow({i, i % 17}, rng.UniformDouble(0.5, 2.0));
  }
  std::string path = TempPath("mpfdb_diskscan_batch.mpft");
  ASSERT_TRUE(DiskTable::Write(t, path).ok());
  auto disk = DiskTable::Open(path, 4);
  ASSERT_TRUE(disk.ok());

  exec::DiskScan row_scan(disk->get());
  exec::DiskScan batch_scan(disk->get());
  auto by_row = exec::Run(row_scan, "out");
  auto by_batch = exec::RunBatch(batch_scan, "out");
  ASSERT_TRUE(by_row.ok()) << by_row.status();
  ASSERT_TRUE(by_batch.ok()) << by_batch.status();
  ASSERT_EQ((*by_batch)->NumRows(), 2600u);
  EXPECT_TRUE(fr::TablesEqual(**by_row, **by_batch, 0.0));
  fs::remove(path);
}

TEST(BinaryPersistenceTest, SaveLoadRoundTrip) {
  std::string dir = TempPath("mpfdb_binary_persist");
  fs::remove_all(dir);

  Database original;
  workload::SupplyChainParams params;
  params.scale = 0.004;
  auto schema = workload::GenerateSupplyChain(params, original.catalog());
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(original.CreateMpfView(schema->view).ok());
  ASSERT_TRUE(SaveDatabase(original, dir, /*binary=*/true).ok());

  // The table files are the binary format.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "location.mpft"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "location.csv"));

  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, loaded).ok());
  auto a = original.Query("invest", MpfQuerySpec{{"cid"}, {}});
  auto b = loaded.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(a.ok() && b.ok());
  // Binary round trip is bit-exact.
  EXPECT_TRUE(fr::TablesEqual(*a->table, *b->table, 0.0));
  EXPECT_EQ((*loaded.catalog().GetTable("warehouses"))->key_vars(),
            (*original.catalog().GetTable("warehouses"))->key_vars());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpfdb
