// Randomized property tests over generated schemas: every optimizer must
// agree with naive evaluation on random views; Belief Propagation and
// VE-cache must satisfy the Definition 5 invariant on random acyclic
// schemas; the Junction Tree construction must always yield the running
// intersection property. Parameterized over seeds so each seed is an
// independently reported test case.

#include <set>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "fr/algebra.h"
#include "graph/junction_tree.h"
#include "util/rng.h"
#include "workload/bp.h"
#include "workload/vecache.h"

namespace mpfdb {
namespace {

// A random view: `num_vars` variables with random small domains; `num_rels`
// relations over random variable subsets, each relation a random-density
// functional relation. The relation set is chained enough to be connected.
struct RandomView {
  Catalog catalog;
  MpfViewDef view;
  std::vector<TablePtr> tables;
  std::vector<std::string> vars;          // all registered variables
  std::vector<std::string> present_vars;  // variables appearing in the view
};

RandomView MakeRandomView(uint64_t seed, int num_vars, int num_rels,
                          bool force_acyclic) {
  Rng rng(seed);
  RandomView rv;
  for (int i = 0; i < num_vars; ++i) {
    std::string name = "v" + std::to_string(i);
    EXPECT_TRUE(rv.catalog.RegisterVariable(name, rng.UniformInt(2, 4)).ok());
    rv.vars.push_back(name);
  }
  rv.view.name = "view";
  rv.view.semiring = Semiring::SumProduct();
  for (int r = 0; r < num_rels; ++r) {
    std::vector<std::string> vars;
    if (force_acyclic) {
      // A path of overlapping pairs is guaranteed acyclic.
      vars = {rv.vars[static_cast<size_t>(r) % rv.vars.size()],
              rv.vars[static_cast<size_t>(r + 1) % rv.vars.size()]};
      if (vars[0] == vars[1]) vars.pop_back();
    } else {
      // Random 1-3 variable scope, chained to the previous relation.
      size_t anchor = static_cast<size_t>(rng.UniformInt(
          0, std::min<int64_t>(r, static_cast<int64_t>(rv.vars.size()) - 1)));
      std::set<std::string> scope = {rv.vars[anchor]};
      int extra = static_cast<int>(rng.UniformInt(0, 2));
      for (int e = 0; e < extra; ++e) {
        scope.insert(rv.vars[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rv.vars.size()) - 1))]);
      }
      vars.assign(scope.begin(), scope.end());
    }
    auto table = std::make_shared<Table>("r" + std::to_string(r),
                                         Schema(vars, "f"));
    // Random-density FR over the scope's cross product.
    std::vector<int64_t> domains;
    for (const auto& v : vars) domains.push_back(*rv.catalog.DomainSize(v));
    std::vector<VarValue> row(vars.size(), 0);
    while (true) {
      if (rng.Bernoulli(0.8)) {
        table->AppendRow(row, rng.UniformDouble(0.25, 2.0));
      }
      size_t pos = 0;
      while (pos < row.size()) {
        if (++row[pos] < domains[pos]) break;
        row[pos] = 0;
        ++pos;
      }
      if (row.empty() || pos == row.size()) break;
    }
    if (table->Empty()) {
      // Guarantee at least one row so the view is non-degenerate.
      table->AppendRow(std::vector<VarValue>(vars.size(), 0), 1.0);
    }
    EXPECT_TRUE(rv.catalog.RegisterTable(table).ok());
    rv.present_vars = varset::Union(rv.present_vars, vars);
    rv.tables.push_back(table);
    rv.view.relations.push_back(table->name());
  }
  return rv;
}

// Uniform choice from a non-empty list.
const std::string& Pick(const std::vector<std::string>& items, Rng& rng) {
  return items[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
}

class RandomSchemaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemaTest, AllOptimizersAgreeWithNaive) {
  RandomView rv = MakeRandomView(GetParam(), 6, 5, /*force_acyclic=*/false);
  SimpleCostModel cost_model;
  Rng rng(GetParam() + 1000);

  // Three random queries per schema: random single query variable, random
  // optional selection on another variable.
  for (int q = 0; q < 3; ++q) {
    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.5)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }
    std::vector<fr::Selection> selections;
    for (const auto& s : query.selections) {
      selections.push_back({s.var, s.value});
    }
    auto expected = fr::EvaluateNaiveMpf(rv.tables, query.group_vars,
                                         selections, rv.view.semiring, "ref");
    ASSERT_TRUE(expected.ok()) << expected.status();

    for (const std::string spec :
         {"cs", "cs+", "cs+nonlinear", "ve(deg)", "ve(width)", "ve(elim_cost)",
          "ve(random)", "ve(min_fill)", "ve(deg) ext.", "ve(width) ext."}) {
      auto optimizer = MakeOptimizer(spec, GetParam());
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();
      exec::Executor executor(rv.catalog, rv.view.semiring);
      auto result = executor.Execute(**plan, "out");
      ASSERT_TRUE(result.ok()) << spec;
      EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-7))
          << spec << " query " << q << "\n"
          << ExplainPlan(**plan);
    }
  }
}

// The vectorized engine is an execution-mode choice, not a semantics choice:
// over random schemas, random optimizer plans, and the counting, probability,
// and max-product semirings, batch execution (with and without packed keys)
// must reproduce the row-at-a-time output bit for bit.
TEST_P(RandomSchemaTest, VectorizedExecutionMatchesRowAtATime) {
  struct Variant {
    const char* label;
    Semiring semiring;
    bool unit_measures;  // counting semantics: every tuple weighs exactly 1
  };
  const Variant variants[] = {
      {"counting", Semiring::SumProduct(), true},
      {"probability", Semiring::SumProduct(), false},
      {"max_product", Semiring::MaxProduct(), false},
  };
  SimpleCostModel cost_model;
  Rng rng(GetParam() + 9000);
  for (const Variant& variant : variants) {
    RandomView rv =
        MakeRandomView(GetParam() + 2000, 6, 5, /*force_acyclic=*/false);
    rv.view.semiring = variant.semiring;
    if (variant.unit_measures) {
      for (const TablePtr& t : rv.tables) {
        for (size_t r = 0; r < t->NumRows(); ++r) t->set_measure(r, 1.0);
      }
    }
    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.5)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }
    for (const std::string spec : {"cs+", "ve(width)", "ve(random)"}) {
      auto optimizer = MakeOptimizer(spec, GetParam());
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();

      const exec::ExecOptions configs[] = {
          {.vectorized = false},
          {.vectorized = true, .packed_keys = false},
          {.vectorized = true, .packed_keys = true},
      };
      TablePtr reference;
      for (const exec::ExecOptions& options : configs) {
        exec::Executor executor(rv.catalog, rv.view.semiring, options);
        auto result = executor.Execute(**plan, "out");
        ASSERT_TRUE(result.ok()) << variant.label << "/" << spec;
        if (reference == nullptr) {
          reference = *result;
        } else {
          EXPECT_TRUE(fr::TablesEqual(*reference, **result, /*tolerance=*/0.0))
              << variant.label << "/" << spec << "\n"
              << ExplainPlan(**plan);
        }
      }
    }
  }
}

TEST_P(RandomSchemaTest, BpInvariantOnAcyclicSchemas) {
  RandomView rv = MakeRandomView(GetParam(), 6, 5, /*force_acyclic=*/true);
  auto updated = workload::BeliefPropagation(rv.tables, rv.view.semiring);
  ASSERT_TRUE(updated.ok()) << updated.status();
  for (const TablePtr& t : *updated) {
    for (const auto& var : t->schema().variables()) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {var}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto marginal =
          fr::Marginalize(*t, {var}, rv.view.semiring, "from_table");
      ASSERT_TRUE(marginal.ok());
      EXPECT_TRUE(fr::TablesEqual(**truth, **marginal, 1e-7))
          << t->name() << "/" << var;
    }
  }
}

TEST_P(RandomSchemaTest, JunctionTreeBpOnArbitrarySchemas) {
  RandomView rv = MakeRandomView(GetParam(), 5, 5, /*force_acyclic=*/false);
  auto result =
      workload::JunctionTreeBp(rv.tables, rv.view.semiring, rv.catalog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(graph::SatisfiesRunningIntersection(result->junction_tree.tree));
  for (const TablePtr& t : result->clique_tables) {
    for (const auto& var : t->schema().variables()) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {var}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto marginal =
          fr::Marginalize(*t, {var}, rv.view.semiring, "from_table");
      ASSERT_TRUE(marginal.ok());
      EXPECT_TRUE(fr::TablesEqual(**truth, **marginal, 1e-7))
          << t->name() << "/" << var;
    }
  }
}

TEST_P(RandomSchemaTest, VeCacheInvariant) {
  RandomView rv = MakeRandomView(GetParam(), 6, 5, /*force_acyclic=*/false);
  auto cache = workload::VeCache::Build(rv.view, rv.catalog);
  ASSERT_TRUE(cache.ok()) << cache.status();
  for (const auto& var : rv.vars) {
    // Only variables that actually occur in the view can be queried.
    bool present = false;
    for (const TablePtr& t : rv.tables) {
      if (t->schema().HasVariable(var)) present = true;
    }
    if (!present) continue;
    auto truth =
        fr::EvaluateNaiveMpf(rv.tables, {var}, {}, rv.view.semiring, "truth");
    ASSERT_TRUE(truth.ok());
    auto answer = cache->Answer(MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-7)) << var;
  }
  // A random variable pair, exercising the cross-clique combination (the
  // pair may even span var-disjoint components).
  Rng rng(GetParam() + 5000);
  if (rv.present_vars.size() >= 2) {
    std::string a = Pick(rv.present_vars, rng);
    std::string b = Pick(rv.present_vars, rng);
    if (a != b) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {a, b}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto answer = cache->Answer(MpfQuerySpec{{a, b}, {}});
      ASSERT_TRUE(answer.ok()) << answer.status();
      EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-7)) << a << "," << b;
    }
  }
}

TEST_P(RandomSchemaTest, JunctionTreeAlwaysHasRip) {
  Rng rng(GetParam());
  // Random hypergraph: 6 variables, 6 relations of scope 1-3.
  std::vector<std::vector<std::string>> relation_vars;
  for (int r = 0; r < 6; ++r) {
    std::set<std::string> scope;
    int size = static_cast<int>(rng.UniformInt(1, 3));
    for (int s = 0; s < size; ++s) {
      scope.insert("v" + std::to_string(rng.UniformInt(0, 5)));
    }
    relation_vars.emplace_back(scope.begin(), scope.end());
  }
  auto jt = graph::BuildJunctionTree(relation_vars);
  ASSERT_TRUE(jt.ok()) << jt.status();
  EXPECT_TRUE(graph::SatisfiesRunningIntersection(jt->tree));
  for (size_t r = 0; r < relation_vars.size(); ++r) {
    EXPECT_TRUE(varset::IsSubset(relation_vars[r],
                                 jt->tree.node_vars[jt->assignment[r]]));
  }
  // The triangulated graph is chordal.
  graph::VariableGraph g = graph::VariableGraph::FromSchema(relation_vars);
  auto chordal = g.Triangulate(jt->elimination_order);
  ASSERT_TRUE(chordal.ok());
  EXPECT_TRUE(chordal->IsChordal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace mpfdb
