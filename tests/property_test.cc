// Randomized property tests over generated schemas: every optimizer must
// agree with naive evaluation on random views; Belief Propagation and
// VE-cache must satisfy the Definition 5 invariant on random acyclic
// schemas; the Junction Tree construction must always yield the running
// intersection property. Parameterized over seeds so each seed is an
// independently reported test case. Every case re-seeds from MPFDB_TEST_SEED
// (see tests/random_view.h): the env var shifts all seeds for fresh CI
// sweeps, and each test prints its effective seed on failure.

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "fr/algebra.h"
#include "graph/junction_tree.h"
#include "random_view.h"
#include "util/rng.h"
#include "workload/bp.h"
#include "workload/vecache.h"

namespace mpfdb {
namespace {

class RandomSchemaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemaTest, AllOptimizersAgreeWithNaive) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 6, 5, /*force_acyclic=*/false);
  SimpleCostModel cost_model;
  Rng rng(seed + 1000);

  // Three random queries per schema: random single query variable, random
  // optional selection on another variable.
  for (int q = 0; q < 3; ++q) {
    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.5)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }
    std::vector<fr::Selection> selections;
    for (const auto& s : query.selections) {
      selections.push_back({s.var, s.value});
    }
    auto expected = fr::EvaluateNaiveMpf(rv.tables, query.group_vars,
                                         selections, rv.view.semiring, "ref");
    ASSERT_TRUE(expected.ok()) << expected.status();

    for (const std::string spec :
         {"cs", "cs+", "cs+nonlinear", "ve(deg)", "ve(width)", "ve(elim_cost)",
          "ve(random)", "ve(min_fill)", "ve(deg) ext.", "ve(width) ext."}) {
      auto optimizer = MakeOptimizer(spec, seed);
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();
      exec::Executor executor(rv.catalog, rv.view.semiring);
      auto result = executor.Execute(**plan, "out");
      ASSERT_TRUE(result.ok()) << spec;
      EXPECT_TRUE(fr::TablesEqual(**expected, **result, 1e-7))
          << spec << " query " << q << "\n"
          << ExplainPlan(**plan);
    }
  }
}

// The vectorized engine is an execution-mode choice, not a semantics choice:
// over random schemas, random optimizer plans, and the counting, probability,
// and max-product semirings, batch execution (with and without packed keys)
// must reproduce the row-at-a-time output bit for bit.
TEST_P(RandomSchemaTest, VectorizedExecutionMatchesRowAtATime) {
  struct Variant {
    const char* label;
    Semiring semiring;
    bool unit_measures;  // counting semantics: every tuple weighs exactly 1
  };
  const Variant variants[] = {
      {"counting", Semiring::SumProduct(), true},
      {"probability", Semiring::SumProduct(), false},
      {"max_product", Semiring::MaxProduct(), false},
  };
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  Rng rng(seed + 9000);
  for (const Variant& variant : variants) {
    RandomView rv =
        MakeRandomView(seed + 2000, 6, 5, /*force_acyclic=*/false);
    rv.view.semiring = variant.semiring;
    if (variant.unit_measures) {
      for (const TablePtr& t : rv.tables) {
        for (size_t r = 0; r < t->NumRows(); ++r) t->set_measure(r, 1.0);
      }
    }
    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.5)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }
    for (const std::string spec : {"cs+", "ve(width)", "ve(random)"}) {
      auto optimizer = MakeOptimizer(spec, seed);
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();

      const exec::ExecOptions configs[] = {
          {.vectorized = false},
          {.vectorized = true, .packed_keys = false},
          {.vectorized = true, .packed_keys = true},
      };
      TablePtr reference;
      for (const exec::ExecOptions& options : configs) {
        exec::Executor executor(rv.catalog, rv.view.semiring, options);
        auto result = executor.Execute(**plan, "out");
        ASSERT_TRUE(result.ok()) << variant.label << "/" << spec;
        if (reference == nullptr) {
          reference = *result;
        } else {
          EXPECT_TRUE(fr::TablesEqual(*reference, **result, /*tolerance=*/0.0))
              << variant.label << "/" << spec << "\n"
              << ExplainPlan(**plan);
        }
      }
    }
  }
}

TEST_P(RandomSchemaTest, BpInvariantOnAcyclicSchemas) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 6, 5, /*force_acyclic=*/true);
  auto updated = workload::BeliefPropagation(rv.tables, rv.view.semiring);
  ASSERT_TRUE(updated.ok()) << updated.status();
  for (const TablePtr& t : *updated) {
    for (const auto& var : t->schema().variables()) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {var}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto marginal =
          fr::Marginalize(*t, {var}, rv.view.semiring, "from_table");
      ASSERT_TRUE(marginal.ok());
      EXPECT_TRUE(fr::TablesEqual(**truth, **marginal, 1e-7))
          << t->name() << "/" << var;
    }
  }
}

TEST_P(RandomSchemaTest, JunctionTreeBpOnArbitrarySchemas) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 5, 5, /*force_acyclic=*/false);
  auto result =
      workload::JunctionTreeBp(rv.tables, rv.view.semiring, rv.catalog);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(graph::SatisfiesRunningIntersection(result->junction_tree.tree));
  for (const TablePtr& t : result->clique_tables) {
    for (const auto& var : t->schema().variables()) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {var}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto marginal =
          fr::Marginalize(*t, {var}, rv.view.semiring, "from_table");
      ASSERT_TRUE(marginal.ok());
      EXPECT_TRUE(fr::TablesEqual(**truth, **marginal, 1e-7))
          << t->name() << "/" << var;
    }
  }
}

TEST_P(RandomSchemaTest, VeCacheInvariant) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 6, 5, /*force_acyclic=*/false);
  auto cache = workload::VeCache::Build(rv.view, rv.catalog);
  ASSERT_TRUE(cache.ok()) << cache.status();
  for (const auto& var : rv.vars) {
    // Only variables that actually occur in the view can be queried.
    bool present = false;
    for (const TablePtr& t : rv.tables) {
      if (t->schema().HasVariable(var)) present = true;
    }
    if (!present) continue;
    auto truth =
        fr::EvaluateNaiveMpf(rv.tables, {var}, {}, rv.view.semiring, "truth");
    ASSERT_TRUE(truth.ok());
    auto answer = cache->Answer(MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-7)) << var;
  }
  // A random variable pair, exercising the cross-clique combination (the
  // pair may even span var-disjoint components).
  Rng rng(seed + 5000);
  if (rv.present_vars.size() >= 2) {
    std::string a = Pick(rv.present_vars, rng);
    std::string b = Pick(rv.present_vars, rng);
    if (a != b) {
      auto truth = fr::EvaluateNaiveMpf(rv.tables, {a, b}, {},
                                        rv.view.semiring, "truth");
      ASSERT_TRUE(truth.ok());
      auto answer = cache->Answer(MpfQuerySpec{{a, b}, {}});
      ASSERT_TRUE(answer.ok()) << answer.status();
      EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-7)) << a << "," << b;
    }
  }
}

TEST_P(RandomSchemaTest, JunctionTreeAlwaysHasRip) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed);
  // Random hypergraph: 6 variables, 6 relations of scope 1-3.
  std::vector<std::vector<std::string>> relation_vars;
  for (int r = 0; r < 6; ++r) {
    std::set<std::string> scope;
    int size = static_cast<int>(rng.UniformInt(1, 3));
    for (int s = 0; s < size; ++s) {
      scope.insert("v" + std::to_string(rng.UniformInt(0, 5)));
    }
    relation_vars.emplace_back(scope.begin(), scope.end());
  }
  auto jt = graph::BuildJunctionTree(relation_vars);
  ASSERT_TRUE(jt.ok()) << jt.status();
  EXPECT_TRUE(graph::SatisfiesRunningIntersection(jt->tree));
  for (size_t r = 0; r < relation_vars.size(); ++r) {
    EXPECT_TRUE(varset::IsSubset(relation_vars[r],
                                 jt->tree.node_vars[jt->assignment[r]]));
  }
  // The triangulated graph is chordal.
  graph::VariableGraph g = graph::VariableGraph::FromSchema(relation_vars);
  auto chordal = g.Triangulate(jt->elimination_order);
  ASSERT_TRUE(chordal.ok());
  EXPECT_TRUE(chordal->IsChordal());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace mpfdb
