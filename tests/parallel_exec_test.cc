// Differential harness for intra-query morsel parallelism: the parallel
// engine must be an execution-mode choice with zero semantic surface. Over
// random schemas and random optimizer plans, every combination of
//
//   num_threads in {1, 2, 4, 8}
//     x drive mode in {row-at-a-time, batch, batch + packed keys, and
//       batch with kAuto physical planning (cost-chosen operators)}
//     x spill {off, on (tiny budget forcing Grace spills)}
//
// must reproduce the forced-hash serial golden answer bit for bit
// (tolerance 0.0) — including the auto mode, which is the physical
// planner's central bit-identity promise. The
// same MPFDB_TEST_SEED env knob as property_test shifts every seed, and each
// case prints its effective seed on failure.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

namespace fs = std::filesystem;

// A fresh directory under the system temp dir, so spill-file leak checks
// are not confused by other tests (or other runs) spilling concurrently.
class ScopedSpillDir {
 public:
  explicit ScopedSpillDir(const std::string& tag) {
    dir_ = (fs::temp_directory_path() /
            ("mpfdb_parallel_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + std::to_string(reinterpret_cast<uintptr_t>(this))))
               .string();
    fs::create_directories(dir_);
  }
  ~ScopedSpillDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  const std::string& path() const { return dir_; }

  size_t NumFiles() const {
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

 private:
  std::string dir_;
};

struct DriveMode {
  const char* label;
  exec::ExecOptions options;
};

const DriveMode kDriveModes[] = {
    {"row",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = false}},
    {"batch",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = true,
      .packed_keys = false}},
    {"batch+packed",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = true,
      .packed_keys = true}},
    // kAuto: the physical planner picks per-node algorithms (sort-merge
    // joins / sort marginalize where admissible and cheaper). Must still
    // match the forced-hash golden at tolerance 0.0.
    {"auto",
     {.join = exec::JoinAlgorithm::kAuto,
      .agg = exec::AggAlgorithm::kAuto,
      .vectorized = true,
      .packed_keys = true}},
    // hash_impl = kStd re-runs the three hash drive modes on the legacy
    // chaining tables: the Swiss-table golden and the std runs must agree
    // bit for bit across the whole (threads, spill) matrix.
    {"row/std",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = false,
      .hash_impl = exec::HashImpl::kStd}},
    {"batch/std",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = true,
      .packed_keys = false,
      .hash_impl = exec::HashImpl::kStd}},
    {"batch+packed/std",
     {.join = exec::JoinAlgorithm::kHash,
      .agg = exec::AggAlgorithm::kHash,
      .vectorized = true,
      .packed_keys = true,
      .hash_impl = exec::HashImpl::kStd}},
    // MPH costing off: the planner prices every index generically, which may
    // legally change access-path choices — never result bits.
    {"auto/nomph",
     {.join = exec::JoinAlgorithm::kAuto,
      .agg = exec::AggAlgorithm::kAuto,
      .vectorized = true,
      .packed_keys = true,
      .mph_indexes = false}},
};

class ParallelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Random views x random plans x the full (threads, mode, spill) matrix,
// under both an FP-sensitive semiring (sum-product over random doubles,
// where any reassociation of Adds would show up at tolerance 0.0) and
// max-product (idempotent Add, exercising a different combine).
TEST_P(ParallelDifferentialTest, BitIdenticalAcrossThreadsModesAndSpill) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  SimpleCostModel cost_model;
  Rng rng(seed + 4000);

  for (const Semiring& semiring :
       {Semiring::SumProduct(), Semiring::MaxProduct()}) {
    RandomView rv = MakeRandomView(seed + 4000, 6, 5, /*force_acyclic=*/false);
    rv.view.semiring = semiring;

    MpfQuerySpec query;
    query.group_vars = {Pick(rv.present_vars, rng)};
    if (rng.Bernoulli(0.5)) {
      std::string sel_var = Pick(rv.present_vars, rng);
      if (sel_var != query.group_vars[0]) {
        query.selections.push_back(QuerySelection{
            sel_var, static_cast<VarValue>(rng.UniformInt(
                         0, *rv.catalog.DomainSize(sel_var) - 1))});
      }
    }

    for (const std::string spec : {"cs+", "ve(width)"}) {
      auto optimizer = MakeOptimizer(spec, seed);
      ASSERT_TRUE(optimizer.ok());
      auto plan =
          (*optimizer)->Optimize(rv.view, query, rv.catalog, cost_model);
      ASSERT_TRUE(plan.ok()) << spec << ": " << plan.status();

      // Serial golden: forced-hash, batch + packed keys, no context, no
      // pool. Forcing hash pins the baseline the auto drive mode must
      // reproduce bit for bit.
      exec::Executor golden_exec(
          rv.catalog, rv.view.semiring,
          exec::ExecOptions{.join = exec::JoinAlgorithm::kHash,
                            .agg = exec::AggAlgorithm::kHash,
                            .vectorized = true,
                            .packed_keys = true});
      auto golden = golden_exec.Execute(**plan, "golden");
      ASSERT_TRUE(golden.ok()) << spec << ": " << golden.status();

      for (size_t threads : {1u, 2u, 4u, 8u}) {
        exec::ThreadPool pool(threads);
        for (const DriveMode& mode : kDriveModes) {
          for (bool spill : {false, true}) {
            ScopedSpillDir spill_dir("diff");
            QueryContext ctx;
            ctx.set_thread_pool(&pool);
            if (spill) {
              // A budget this small forces the hash operators to degrade to
              // partitioned spills on every non-trivial plan.
              ctx.set_memory_limit(2 * 1024);
              ctx.set_spill_enabled(true);
              ctx.set_spill_dir(spill_dir.path());
            }
            exec::Executor executor(rv.catalog, rv.view.semiring,
                                    mode.options);
            auto result = executor.Execute(**plan, "out", &ctx);
            std::string where = std::string(semiring.name()) + "/" + spec +
                                "/threads=" + std::to_string(threads) + "/" +
                                mode.label + (spill ? "/spill" : "/mem");
            ASSERT_TRUE(result.ok()) << where << ": " << result.status();
            EXPECT_TRUE(fr::TablesEqual(**golden, **result, /*tolerance=*/0.0))
                << where;
            // All charges unwound, no spill files left behind.
            EXPECT_EQ(ctx.stats().bytes_in_use, 0u) << where;
            EXPECT_EQ(spill_dir.NumFiles(), 0u) << where;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Range<uint64_t>(1, 9));

// Unit-measure random table with unique variable tuples: sum-product results
// are exact small integers, but the test still compares at tolerance 0.0.
TablePtr RandomUnitTable(const std::string& name,
                         std::vector<std::string> vars,
                         std::vector<int64_t> domains, size_t rows, Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, 1.0);
  }
  return t;
}

void SortCanonically(Table& table) {
  std::vector<size_t> all(table.schema().arity());
  std::iota(all.begin(), all.end(), 0);
  table.SortByVariables(all);
}

// Large join-join-marginalize chains driven at the operator level, where the
// inputs are big enough that every thread really owns several morsel
// streams, the join build pre-drains in parallel, and the aggregation's
// thread-local pre-aggregation merges across partitions.
TEST(ParallelChainTest, LargeChainBitIdenticalUnderThreadsAndSpill) {
  const uint64_t seed = CaseSeed(1);
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed * 7919);
  const int64_t dom = 90;
  TablePtr a = RandomUnitTable("a", {"x", "y"}, {dom, dom}, 4000, rng);
  TablePtr b = RandomUnitTable("b", {"y", "z"}, {dom, dom}, 4000, rng);
  TablePtr c = RandomUnitTable("c", {"z", "w"}, {dom, dom}, 4000, rng);

  auto build = [&]() -> exec::OperatorPtr {
    auto ab = std::make_unique<exec::HashProductJoin>(
        std::make_unique<exec::SeqScan>(a), std::make_unique<exec::SeqScan>(b),
        Semiring::SumProduct());
    auto abc = std::make_unique<exec::HashProductJoin>(
        std::move(ab), std::make_unique<exec::SeqScan>(c),
        Semiring::SumProduct());
    return std::make_unique<exec::HashMarginalize>(
        std::move(abc), std::vector<std::string>{"x", "w"},
        Semiring::SumProduct());
  };

  auto golden_root = build();
  auto golden = exec::RunBatch(*golden_root, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();
  SortCanonically(**golden);

  for (size_t threads : {2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    for (bool spill : {false, true}) {
      ScopedSpillDir spill_dir("chain");
      QueryContext ctx;
      ctx.set_thread_pool(&pool);
      if (spill) {
        ctx.set_memory_limit(64 * 1024);
        ctx.set_spill_enabled(true);
        ctx.set_spill_dir(spill_dir.path());
      }
      auto root = build();
      root->BindContext(&ctx);
      auto result = exec::RunBatch(*root, "out", &ctx);
      std::string where = "threads=" + std::to_string(threads) +
                          (spill ? "/spill" : "/mem");
      ASSERT_TRUE(result.ok()) << where << ": " << result.status();
      SortCanonically(**result);
      EXPECT_TRUE(fr::TablesEqual(**golden, **result, /*tolerance=*/0.0))
          << where;
      EXPECT_EQ(ctx.stats().bytes_in_use, 0u) << where;
      EXPECT_EQ(spill_dir.NumFiles(), 0u) << where;
      if (spill) {
        EXPECT_GT(ctx.stats().spill_files, 0u) << where;
      }
    }
  }
}

// The stream order contract at the raw operator level: without any final
// sort, the concatenation of a parallel scan's morsel streams must replay
// the serial row stream exactly, in order.
TEST(ParallelChainTest, MorselStreamsConcatenateToSerialOrder) {
  const uint64_t seed = CaseSeed(2);
  MPFDB_TRACE_SEED(seed);
  Rng rng(seed);
  TablePtr t = RandomUnitTable("t", {"x", "y"}, {64, 64}, 3000, rng);

  auto drain = [](exec::PhysicalOperator& op,
                  std::vector<std::vector<VarValue>>* rows,
                  std::vector<double>* measures) {
    ASSERT_TRUE(op.Open().ok());
    exec::RowBatch batch;
    while (true) {
      auto more = op.NextBatch(&batch);
      ASSERT_TRUE(more.ok()) << more.status();
      if (!*more) break;
      const size_t arity = op.output_schema().arity();
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        std::vector<VarValue> row(arity);
        for (size_t c = 0; c < arity; ++c) row[c] = batch.col(c)[r];
        rows->push_back(std::move(row));
        measures->push_back(batch.measures()[r]);
      }
    }
    op.Close();
  };

  exec::SeqScan serial(t);
  std::vector<std::vector<VarValue>> serial_rows, parallel_rows;
  std::vector<double> serial_measures, parallel_measures;
  drain(serial, &serial_rows, &serial_measures);

  exec::SeqScan parallel(t);
  ASSERT_TRUE(parallel.SupportsMorselStreams());
  auto streams = parallel.MakeMorselStreams(5);
  ASSERT_TRUE(streams.ok()) << streams.status();
  ASSERT_GT(streams->size(), 1u);
  for (auto& stream : *streams) {
    drain(*stream, &parallel_rows, &parallel_measures);
  }

  EXPECT_EQ(serial_rows, parallel_rows);
  EXPECT_EQ(serial_measures, parallel_measures);
}

// End-to-end through Database: the num_threads knob changes nothing about
// any answer, whichever way the pool is engaged.
TEST(DatabaseParallelTest, ThreadCountNeverChangesAnswers) {
  Database db;
  workload::SupplyChainParams params;
  params.scale = 0.004;
  params.seed = 7;
  auto schema = workload::GenerateSupplyChain(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());

  const MpfQuerySpec queries[] = {
      MpfQuerySpec{{"cid"}, {}},
      MpfQuerySpec{{"wid"}, {}},
  };
  for (const MpfQuerySpec& query : queries) {
    TablePtr reference;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      exec::ExecOptions options;
      options.vectorized = true;
      options.packed_keys = true;
      options.num_threads = threads;
      db.set_exec_options(options);
      auto result = db.Query("invest", query);
      ASSERT_TRUE(result.ok()) << result.status();
      if (reference == nullptr) {
        reference = result->table;
      } else {
        EXPECT_TRUE(
            fr::TablesEqual(*reference, *result->table, /*tolerance=*/0.0))
            << "threads=" << threads;
      }
    }
  }
}

// A caller-provided QueryContext that already carries a pool wins over the
// Database-owned one, and governed parallel queries still account cleanly.
TEST(DatabaseParallelTest, CallerContextPoolIsRespected) {
  Database db;
  workload::SupplyChainParams params;
  params.scale = 0.004;
  params.seed = 11;
  auto schema = workload::GenerateSupplyChain(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());

  auto serial = db.Query("invest", MpfQuerySpec{{"cid"}, {}}, "cs+");
  ASSERT_TRUE(serial.ok()) << serial.status();

  exec::ThreadPool pool(4);
  QueryContext ctx;
  ctx.set_thread_pool(&pool);
  auto parallel = db.Query("invest", MpfQuerySpec{{"cid"}, {}}, "cs+", &ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_TRUE(fr::TablesEqual(*serial->table, *parallel->table, 0.0));
  // The context still points at the caller's pool afterwards.
  EXPECT_EQ(ctx.thread_pool(), &pool);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
}

}  // namespace
}  // namespace mpfdb
