// Tests of hash indexes and the index-scan access path: storage-level
// behavior, optimizer plan choice, execution correctness and staleness
// detection.

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/executor.h"
#include "fr/algebra.h"
#include "parser/sql.h"
#include "storage/index.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

TEST(HashIndexTest, LookupFindsAllMatches) {
  Table t("t", Schema({"x", "y"}, "f"));
  t.AppendRow({0, 0}, 1.0);
  t.AppendRow({1, 0}, 2.0);
  t.AppendRow({0, 1}, 3.0);
  auto index = HashIndex::Build(t, "x");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->var(), "x");
  EXPECT_EQ((*index)->Lookup(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ((*index)->Lookup(1), (std::vector<size_t>{1}));
  EXPECT_TRUE((*index)->Lookup(99).empty());
  EXPECT_FALSE(HashIndex::Build(t, "zz").ok());
}

TEST(CatalogIndexTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 4).ok());
  auto t = std::make_shared<Table>("t", Schema({"x"}, "f"));
  t->AppendRow({1}, 1.0);
  ASSERT_TRUE(catalog.RegisterTable(t).ok());

  EXPECT_EQ(catalog.GetIndex("t", "x"), nullptr);
  ASSERT_TRUE(catalog.CreateIndex("t", "x").ok());
  EXPECT_NE(catalog.GetIndex("t", "x"), nullptr);
  EXPECT_FALSE(catalog.CreateIndex("t", "zz").ok());
  EXPECT_FALSE(catalog.CreateIndex("missing", "x").ok());

  // Dropping the table drops its indexes.
  ASSERT_TRUE(catalog.DropTable("t").ok());
  EXPECT_EQ(catalog.GetIndex("t", "x"), nullptr);
}

class IndexedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SupplyChainParams params;
    params.scale = 0.005;
    params.seed = 42;
    auto schema = workload::GenerateSupplyChain(params, db_.catalog());
    ASSERT_TRUE(schema.ok());
    view_ = schema->view;
    ASSERT_TRUE(db_.CreateMpfView(view_).ok());
  }

  Database db_;
  MpfViewDef view_;
};

TEST_F(IndexedQueryTest, PlansUseIndexScanWhenAvailable) {
  MpfQuerySpec query{{"cid"}, {{"tid", 1}}};
  // Without an index: plain Select over Scan.
  auto before = db_.Explain("invest", query, "cs+nonlinear");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->find("IndexScan"), std::string::npos);

  ASSERT_TRUE(db_.catalog().CreateIndex("ctdeals", "tid").ok());
  ASSERT_TRUE(db_.catalog().CreateIndex("transporters", "tid").ok());
  auto after = db_.Explain("invest", query, "cs+nonlinear");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("IndexScan(ctdeals, tid=1)"), std::string::npos)
      << *after;
}

TEST_F(IndexedQueryTest, IndexedAndUnindexedAnswersAgree) {
  MpfQuerySpec query{{"cid"}, {{"tid", 1}}};
  auto without = db_.Query("invest", query, "ve(deg) ext.");
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(db_.catalog().CreateIndex("ctdeals", "tid").ok());
  ASSERT_TRUE(db_.catalog().CreateIndex("transporters", "tid").ok());
  auto with = db_.Query("invest", query, "ve(deg) ext.");
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(fr::TablesEqual(*without->table, *with->table, 1e-9));
  // The indexed plan should be estimated cheaper.
  EXPECT_LE(with->plan->est_cost, without->plan->est_cost);
}

TEST_F(IndexedQueryTest, MultipleSelectionsLayerOverIndex) {
  ASSERT_TRUE(db_.catalog().CreateIndex("ctdeals", "tid").ok());
  MpfQuerySpec query{{"wid"}, {{"tid", 1}, {"cid", 2}}};
  auto result = db_.Query("invest", query, "cs+nonlinear");
  ASSERT_TRUE(result.ok()) << result.status();

  // Ground truth via naive evaluation.
  std::vector<TablePtr> tables;
  for (const auto& rel : view_.relations) {
    tables.push_back(*db_.catalog().GetTable(rel));
  }
  auto truth = fr::EvaluateNaiveMpf(tables, {"wid"}, {{"tid", 1}, {"cid", 2}},
                                    view_.semiring, "truth");
  ASSERT_TRUE(truth.ok());
  EXPECT_TRUE(fr::TablesEqual(**truth, *result->table, 1e-6));
}

TEST_F(IndexedQueryTest, StaleIndexDetectedAtExecution) {
  ASSERT_TRUE(db_.catalog().CreateIndex("transporters", "tid").ok());
  // Mutate the table after building the index.
  TablePtr transporters = *db_.catalog().GetTable("transporters");
  transporters->AppendRow({static_cast<VarValue>(0)}, 1.0);
  MpfQuerySpec query{{"cid"}, {{"tid", 0}}};
  auto result = db_.Query("invest", query, "cs+nonlinear");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(IndexedQueryTest, CreateIndexViaSql) {
  parser::SqlSession session(db_);
  auto created = session.Execute("create index on ctdeals (tid)");
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_NE(db_.catalog().GetIndex("ctdeals", "tid"), nullptr);
  EXPECT_FALSE(session.Execute("create index on nope (tid)").ok());
  EXPECT_FALSE(session.Execute("create index on ctdeals (nope)").ok());
  // Indexed query through SQL.
  auto result = session.Execute(
      "select cid, SUM(f) from invest where tid=1 group by cid");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->table, nullptr);
}

TEST_F(IndexedQueryTest, WhatIfDropsStaleIndexCleanly) {
  // The scratch catalog clones the modified table and drops its indexes, so
  // a what-if query after index creation still works.
  ASSERT_TRUE(db_.catalog().CreateIndex("ctdeals", "tid").ok());
  TablePtr ctdeals = *db_.catalog().GetTable("ctdeals");
  RowView row = ctdeals->Row(0);
  WhatIf what_if;
  what_if.measure_updates.push_back(
      {"ctdeals", {{"cid", row.var(0)}, {"tid", row.var(1)}}, 0.9});
  auto result = db_.QueryWhatIf("invest", MpfQuerySpec{{"cid"}, {{"tid", 1}}},
                                what_if);
  EXPECT_TRUE(result.ok()) << result.status();
}

}  // namespace
}  // namespace mpfdb
