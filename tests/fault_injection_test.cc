// Deterministic fault-injection harness: seedable IO failures driven through
// random governed plans. The property under test is robustness, not any
// particular answer: every run either completes with results bit-identical
// to an unconstrained fault-free run, or fails with a clean, descriptive
// Status from the small set of expected codes — never a crash, never a leak
// (the ASan preset checks the latter), never a silently truncated result.
//
// The seed sweep is widened by the MPFDB_FAULT_SEED environment variable, so
// CI can run the same binary under many schedules.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <thread>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/thread_pool.h"
#include "fr/algebra.h"
#include "storage/disk_table.h"
#include "util/fault_injector.h"
#include "util/query_context.h"
#include "util/rng.h"

namespace mpfdb::exec {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// Base seed mixed from the environment so a CI matrix sweeping
// MPFDB_FAULT_SEED explores disjoint schedules with the same binary.
uint64_t EnvSeed() {
  const char* env = std::getenv("MPFDB_FAULT_SEED");
  if (env == nullptr) return 0;
  return std::strtoull(env, nullptr, 10);
}

// Unit-measure random table with unique variable tuples: SumProduct results
// are exact small integers, so completed runs can be compared bit-for-bit.
TablePtr RandomUnitTable(const std::string& name,
                         std::vector<std::string> vars,
                         std::vector<int64_t> domains, size_t rows, Rng& rng) {
  auto t = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  std::set<std::vector<VarValue>> seen;
  while (t->NumRows() < rows) {
    std::vector<VarValue> row;
    for (int64_t d : domains) {
      row.push_back(static_cast<VarValue>(rng.UniformInt(0, d - 1)));
    }
    if (!seen.insert(row).second) continue;
    t->AppendRow(row, 1.0);
  }
  return t;
}

void SortCanonically(Table& table) {
  std::vector<size_t> all(table.schema().arity());
  std::iota(all.begin(), all.end(), 0);
  table.SortByVariables(all);
}

// --- injector determinism ---------------------------------------------------

TEST(FaultInjectorTest, FailsExactlyTheNthIo) {
  FaultInjector::Config config;
  config.fail_nth = 3;
  ScopedFaultInjection scoped(config);
  EXPECT_TRUE(FaultInjector::MaybeFail("site").ok());
  EXPECT_TRUE(FaultInjector::MaybeFail("site").ok());
  Status third = FaultInjector::MaybeFail("site");
  EXPECT_EQ(third.code(), StatusCode::kInternal);
  EXPECT_NE(third.message().find("injected fault"), std::string::npos);
  EXPECT_NE(third.message().find("site"), std::string::npos);
  EXPECT_TRUE(FaultInjector::MaybeFail("site").ok());
  EXPECT_EQ(FaultInjector::op_count(), 4u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameSchedule) {
  auto schedule = [](uint64_t seed) {
    FaultInjector::Config config;
    config.seed = seed;
    config.probability = 0.2;
    ScopedFaultInjection scoped(config);
    std::vector<bool> failures;
    for (int i = 0; i < 200; ++i) {
      failures.push_back(!FaultInjector::MaybeFail("s").ok());
    }
    return failures;
  };
  EXPECT_EQ(schedule(99), schedule(99));
  EXPECT_NE(schedule(99), schedule(100));
  // Probability 0.2 over 200 draws: some but not all IOs fail.
  auto s = schedule(99);
  size_t fails = static_cast<size_t>(std::count(s.begin(), s.end(), true));
  EXPECT_GT(fails, 0u);
  EXPECT_LT(fails, s.size());
}

TEST(FaultInjectorTest, InactiveInjectorNeverFails) {
  ASSERT_FALSE(FaultInjector::active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FaultInjector::MaybeFail("site").ok());
  }
}

// A fault injected into a disk scan surfaces as an annotated error, and the
// exact same seed reproduces the exact same failure.
TEST(FaultInjectorTest, DiskScanFaultIsDeterministicallyReproducible) {
  Rng rng(1);
  TablePtr t = RandomUnitTable("t", {"x", "y"}, {20, 20}, 300, rng);
  std::string path = TempPath("mpfdb_fault_scan.tbl");
  ASSERT_TRUE(DiskTable::Write(*t, path).ok());

  auto run_once = [&]() -> Status {
    FaultInjector::Config config;
    config.fail_nth = 5;
    ScopedFaultInjection scoped(config);
    auto disk = DiskTable::Open(path, /*pool_pages=*/2);
    if (!disk.ok()) return disk.status();
    DiskScan scan(disk->get());
    auto result = ::mpfdb::exec::Run(scan, "out");
    return result.status();
  };
  Status first = run_once();
  Status second = run_once();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_EQ(first.message(), second.message());
  EXPECT_NE(first.message().find("injected fault"), std::string::npos);
  fs::remove(path);
}

// --- random-plan robustness property ----------------------------------------

struct GovernorConfig {
  const char* label;
  size_t memory_limit = 0;
  bool spill_enabled = true;
  bool expired_deadline = false;
};

struct RunOutcome {
  Status status = Status::Ok();
  TablePtr table;
};

// Builds join-then-marginalize trees over three tables sharing a variable
// chain; shape varies with the seed.
struct RandomPlan {
  TablePtr a, b, c;
  std::vector<std::string> group_vars;

  static RandomPlan Make(Rng& rng) {
    RandomPlan p;
    // Keep rows comfortably below dom^2 so unique-tuple sampling terminates.
    size_t rows = 100 + static_cast<size_t>(rng.UniformInt(0, 100));
    int64_t dom = 20 + rng.UniformInt(0, 8);
    p.a = RandomUnitTable("a", {"x", "y"}, {dom, dom}, rows, rng);
    p.b = RandomUnitTable("b", {"y", "z"}, {dom, dom}, rows, rng);
    p.c = RandomUnitTable("c", {"z", "w"}, {dom, dom}, rows, rng);
    p.group_vars = rng.UniformInt(0, 1) == 0
                       ? std::vector<std::string>{"x"}
                       : std::vector<std::string>{"x", "w"};
    return p;
  }

  OperatorPtr Build() const {
    auto ab = std::make_unique<HashProductJoin>(std::make_unique<SeqScan>(a),
                                                std::make_unique<SeqScan>(b),
                                                Semiring::SumProduct());
    auto abc = std::make_unique<HashProductJoin>(
        std::move(ab), std::make_unique<SeqScan>(c), Semiring::SumProduct());
    return std::make_unique<HashMarginalize>(std::move(abc), group_vars,
                                             Semiring::SumProduct());
  }
};

RunOutcome RunGoverned(const RandomPlan& plan, const GovernorConfig& config,
                       bool vectorized) {
  QueryContext ctx;
  if (config.memory_limit > 0) ctx.set_memory_limit(config.memory_limit);
  ctx.set_spill_enabled(config.spill_enabled);
  if (config.expired_deadline) {
    ctx.set_deadline_after(std::chrono::nanoseconds(0));
  }
  auto root = plan.Build();
  root->BindContext(&ctx);
  RunOutcome outcome;
  auto result =
      vectorized ? ::mpfdb::exec::RunBatch(*root, "out", &ctx) : ::mpfdb::exec::Run(*root, "out", &ctx);
  outcome.status = result.status();
  if (result.ok()) outcome.table = *result;
  // Whatever happened, every charge must have been unwound.
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u)
      << config.label << (vectorized ? " batch" : " row");
  return outcome;
}

// Every (seed × governor × drive-mode × fault) combination either completes
// with the fault-free unconstrained answer, or fails with a clean expected
// Status. Eight base seeds; MPFDB_FAULT_SEED shifts the whole sweep.
TEST(FaultInjectionPropertyTest, RandomPlansDegradeCleanlyUnderFaults) {
  const uint64_t env_seed = EnvSeed();
  const std::set<StatusCode> allowed = {
      StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted, StatusCode::kInternal};
  const GovernorConfig governors[] = {
      {"unconstrained"},
      {"budget+spill", 8 * 1024, true, false},
      {"budget-no-spill", 8 * 1024, false, false},
      {"expired-deadline", 0, true, true},
  };

  size_t completed = 0, failed = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919 + env_seed * 104729);
    RandomPlan plan = RandomPlan::Make(rng);

    // Golden: no governor, no faults.
    auto golden_root = plan.Build();
    auto golden = ::mpfdb::exec::RunBatch(*golden_root, "golden");
    ASSERT_TRUE(golden.ok()) << golden.status();
    SortCanonically(**golden);

    for (const GovernorConfig& governor : governors) {
      for (bool vectorized : {false, true}) {
        for (double probability : {0.0, 0.02}) {
          FaultInjector::Config fault;
          fault.seed = seed ^ (env_seed * 0x9e3779b97f4a7c15ULL);
          fault.probability = probability;
          ScopedFaultInjection scoped(fault);

          RunOutcome outcome = RunGoverned(plan, governor, vectorized);
          std::string where = std::string(governor.label) +
                              (vectorized ? "/batch" : "/row") + "/p=" +
                              std::to_string(probability) + "/seed=" +
                              std::to_string(seed);
          if (outcome.status.ok()) {
            ++completed;
            SortCanonically(*outcome.table);
            EXPECT_TRUE(fr::TablesEqual(**golden, *outcome.table, 0.0))
                << where;
          } else {
            ++failed;
            EXPECT_TRUE(allowed.count(outcome.status.code()))
                << where << ": " << outcome.status;
            EXPECT_FALSE(outcome.status.message().empty()) << where;
          }
        }
      }
    }
  }
  // The sweep must actually exercise both outcomes: plenty of clean
  // completions (unconstrained, fault-free) and plenty of clean failures
  // (expired deadlines at minimum).
  EXPECT_GT(completed, 0u);
  EXPECT_GT(failed, 0u);
}

// Focused variant: faults aimed specifically at spill IO. With a tiny budget
// the plan must spill; a mid-spill fault has to unwind cleanly and remove
// its temporary files.
TEST(FaultInjectionPropertyTest, SpillIoFaultsUnwindCleanly) {
  const uint64_t env_seed = EnvSeed();
  size_t injected_failures = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 31 + env_seed);
    RandomPlan plan = RandomPlan::Make(rng);
    GovernorConfig governor{"budget+spill", 4 * 1024, true, false};

    // First pass, no faults: count the spill IOs this plan performs.
    uint64_t spill_ios = 0;
    {
      FaultInjector::Config observe;  // never fails, only counts
      ScopedFaultInjection scoped(observe);
      RunOutcome outcome = RunGoverned(plan, governor, /*vectorized=*/true);
      ASSERT_TRUE(outcome.status.ok()) << outcome.status;
      spill_ios = FaultInjector::op_count();
    }
    if (spill_ios == 0) continue;  // plan fit in budget; nothing to aim at

    // Second pass: fail an IO in the middle of the observed schedule.
    FaultInjector::Config fault;
    fault.fail_nth = spill_ios / 2 + 1;
    ScopedFaultInjection scoped(fault);
    RunOutcome outcome = RunGoverned(plan, governor, /*vectorized=*/true);
    ASSERT_FALSE(outcome.status.ok());
    EXPECT_EQ(outcome.status.code(), StatusCode::kInternal);
    EXPECT_NE(outcome.status.message().find("injected fault"),
              std::string::npos)
        << outcome.status.message();
    ++injected_failures;
  }
  // The tiny budget guarantees spills, so the aimed fault must have fired
  // for every seed.
  EXPECT_EQ(injected_failures, 8u);
}

// --- parallel-query stress --------------------------------------------------

// A private spill directory per run, so "no leaked spill files" is checked
// against an initially empty directory instead of the shared system temp.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag) {
    dir_ = TempPath("mpfdb_fi_" + tag + "_" +
                    std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  const std::string& path() const { return dir_; }

  size_t NumFiles() const {
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

 private:
  std::string dir_;
};

// Cancellation requested from a separate thread in the middle of a parallel
// query: every worker observes the flag, the query either completes with the
// correct answer (the cancel raced past the finish) or unwinds with a clean
// kCancelled — and either way all memory charges and spill files are gone.
TEST(ParallelStressTest, MidQueryCancellationFromAnotherThread) {
  Rng rng(42);
  RandomPlan plan = RandomPlan::Make(rng);
  auto golden_root = plan.Build();
  auto golden = ::mpfdb::exec::RunBatch(*golden_root, "golden");
  ASSERT_TRUE(golden.ok()) << golden.status();
  SortCanonically(**golden);

  ThreadPool pool(4);
  size_t cancelled = 0;
  const auto delays = {std::chrono::microseconds(0),
                       std::chrono::microseconds(50),
                       std::chrono::microseconds(200),
                       std::chrono::microseconds(1000),
                       std::chrono::microseconds(5000)};
  for (auto delay : delays) {
    for (int rep = 0; rep < 4; ++rep) {
      ScopedTempDir spill_dir("cancel");
      QueryContext ctx;
      ctx.set_thread_pool(&pool);
      ctx.set_memory_limit(8 * 1024);
      ctx.set_spill_enabled(true);
      ctx.set_spill_dir(spill_dir.path());
      auto root = plan.Build();
      root->BindContext(&ctx);

      std::thread canceller([&ctx, delay] {
        std::this_thread::sleep_for(delay);
        ctx.RequestCancel();
      });
      auto result = ::mpfdb::exec::RunBatch(*root, "out", &ctx);
      canceller.join();

      if (result.ok()) {
        SortCanonically(**result);
        EXPECT_TRUE(fr::TablesEqual(**golden, **result, 0.0));
      } else {
        ++cancelled;
        EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
            << result.status();
      }
      EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
      EXPECT_EQ(spill_dir.NumFiles(), 0u);
    }
  }
  // A cancel requested before any work must always take effect; the delayed
  // ones may race either way.
  EXPECT_GT(cancelled, 0u);
}

// Deadlines on parallel queries: an expired deadline always surfaces as
// kDeadlineExceeded; a mid-flight deadline either beats the query or stops
// it cleanly. Charges and spill files unwind in every outcome.
TEST(ParallelStressTest, DeadlineObservedByParallelWorkers) {
  Rng rng(43);
  RandomPlan plan = RandomPlan::Make(rng);
  ThreadPool pool(4);

  // Already-expired deadline: must fail, never crash or hang.
  {
    ScopedTempDir spill_dir("deadline");
    QueryContext ctx;
    ctx.set_thread_pool(&pool);
    ctx.set_spill_dir(spill_dir.path());
    ctx.set_deadline_after(std::chrono::nanoseconds(0));
    auto root = plan.Build();
    root->BindContext(&ctx);
    auto result = ::mpfdb::exec::RunBatch(*root, "out", &ctx);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status();
    EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
    EXPECT_EQ(spill_dir.NumFiles(), 0u);
  }

  // Tight-but-live deadlines across a few magnitudes: whichever side of the
  // race each run lands on, the outcome is clean.
  for (auto budget : {std::chrono::microseconds(50),
                      std::chrono::microseconds(500),
                      std::chrono::microseconds(5000)}) {
    ScopedTempDir spill_dir("deadline");
    QueryContext ctx;
    ctx.set_thread_pool(&pool);
    ctx.set_memory_limit(8 * 1024);
    ctx.set_spill_enabled(true);
    ctx.set_spill_dir(spill_dir.path());
    ctx.set_deadline_after(budget);
    auto root = plan.Build();
    root->BindContext(&ctx);
    auto result = ::mpfdb::exec::RunBatch(*root, "out", &ctx);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status();
    }
    EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
    EXPECT_EQ(spill_dir.NumFiles(), 0u);
  }
}

// Injected IO faults under parallel spilling execution, seeds 1-8: each run
// either completes bit-identical to the fault-free golden or fails with a
// clean expected Status, and never leaks a spill file from any worker. The
// fault schedule depends on the thread schedule, which is exactly the point:
// many interleavings, one invariant.
TEST(ParallelStressTest, FaultSeedsUnderParallelSpillLeaveNoSpillFiles) {
  const uint64_t env_seed = EnvSeed();
  const std::set<StatusCode> allowed = {
      StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted, StatusCode::kInternal};
  ThreadPool pool(4);
  size_t completed = 0, failed = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 7919 + env_seed * 104729);
    RandomPlan plan = RandomPlan::Make(rng);

    auto golden_root = plan.Build();
    auto golden = ::mpfdb::exec::RunBatch(*golden_root, "golden");
    ASSERT_TRUE(golden.ok()) << golden.status();
    SortCanonically(**golden);

    for (double probability : {0.005, 0.02}) {
      ScopedTempDir spill_dir("faults");
      FaultInjector::Config fault;
      fault.seed = seed ^ (env_seed * 0x9e3779b97f4a7c15ULL);
      fault.probability = probability;
      ScopedFaultInjection scoped(fault);

      QueryContext ctx;
      ctx.set_thread_pool(&pool);
      ctx.set_memory_limit(4 * 1024);
      ctx.set_spill_enabled(true);
      ctx.set_spill_dir(spill_dir.path());
      auto root = plan.Build();
      root->BindContext(&ctx);
      auto result = ::mpfdb::exec::RunBatch(*root, "out", &ctx);
      std::string where =
          "seed=" + std::to_string(seed) + "/p=" + std::to_string(probability);
      if (result.ok()) {
        ++completed;
        SortCanonically(**result);
        EXPECT_TRUE(fr::TablesEqual(**golden, **result, 0.0)) << where;
      } else {
        ++failed;
        EXPECT_TRUE(allowed.count(result.status().code()))
            << where << ": " << result.status();
        EXPECT_FALSE(result.status().message().empty()) << where;
      }
      EXPECT_EQ(ctx.stats().bytes_in_use, 0u) << where;
      EXPECT_EQ(spill_dir.NumFiles(), 0u) << where;
    }
  }
  // The spilling plans perform enough IO that a 2% fault rate must break
  // some runs, and a 0.5% rate must let some complete.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(failed, 0u);
}

}  // namespace
}  // namespace mpfdb::exec
