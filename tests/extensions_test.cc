// Tests for the extension features beyond the paper's core: constrained-range
// (HAVING) queries, hypothetical what-if queries (alternate measure/domain),
// incremental VE-cache maintenance, and database persistence.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/persistence.h"
#include "fr/algebra.h"
#include "parser/sql.h"
#include "workload/generators.h"
#include "workload/vecache.h"

namespace mpfdb {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SupplyChainParams params;
    params.scale = 0.004;
    params.seed = 55;
    auto schema = workload::GenerateSupplyChain(params, db_.catalog());
    ASSERT_TRUE(schema.ok()) << schema.status();
    view_ = schema->view;
    ASSERT_TRUE(db_.CreateMpfView(view_).ok());
  }

  Database db_;
  MpfViewDef view_;
};

TEST_F(ExtensionsTest, HavingFiltersAggregatedMeasure) {
  // Baseline: unfiltered result.
  auto all = db_.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(all.ok());
  // Threshold in the middle of the widest gap between sorted measures, so
  // float noise across plans cannot flip a row over the boundary.
  std::vector<double> sorted = all->table->measures();
  std::sort(sorted.begin(), sorted.end());
  ASSERT_GE(sorted.size(), 2u);
  double threshold = (sorted[0] + sorted[1]) / 2;
  double best_gap = 0;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i + 1] - sorted[i] > best_gap) {
      best_gap = sorted[i + 1] - sorted[i];
      threshold = (sorted[i] + sorted[i + 1]) / 2;
    }
  }

  MpfQuerySpec query{{"cid"}, {}};
  query.having = HavingClause{CompareOp::kLt, threshold};
  for (const std::string optimizer : {"cs", "cs+nonlinear", "ve(deg) ext."}) {
    auto result = db_.Query("invest", query, optimizer);
    ASSERT_TRUE(result.ok()) << optimizer << ": " << result.status();
    // Every surviving row is under the threshold...
    ASSERT_LT(result->table->NumRows(), all->table->NumRows());
    for (size_t i = 0; i < result->table->NumRows(); ++i) {
      EXPECT_LT(result->table->measure(i), threshold) << optimizer;
    }
    // ...and the measures of surviving groups are unchanged.
    auto filtered = fr::FilterMeasure(
        *all->table, HavingClause{CompareOp::kLt, threshold}, "expected");
    ASSERT_TRUE(filtered.ok());
    EXPECT_TRUE(fr::TablesEqual(**filtered, *result->table, 1e-6)) << optimizer;
  }
}

TEST_F(ExtensionsTest, HavingAllCompareOps) {
  auto all = db_.Query("invest", MpfQuerySpec{{"tid"}, {}});
  ASSERT_TRUE(all.ok());
  double v0 = all->table->measure(0);
  struct Case {
    CompareOp op;
    bool keeps_first;
  };
  for (const Case c : {Case{CompareOp::kLe, true}, Case{CompareOp::kGe, true},
                       Case{CompareOp::kEq, true}, Case{CompareOp::kNe, false},
                       Case{CompareOp::kLt, false},
                       Case{CompareOp::kGt, false}}) {
    MpfQuerySpec query{{"tid"}, {}};
    query.having = HavingClause{c.op, v0};
    auto result = db_.Query("invest", query);
    ASSERT_TRUE(result.ok());
    bool found = false;
    for (size_t i = 0; i < result->table->NumRows(); ++i) {
      if (result->table->measure(i) == v0) found = true;
    }
    EXPECT_EQ(found, c.keeps_first) << CompareOpSymbol(c.op);
  }
}

TEST_F(ExtensionsTest, HavingViaSql) {
  parser::SqlSession session(db_);
  auto result = session.Execute(
      "select cid, SUM(f) from invest group by cid having f > 0");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->table, nullptr);
  auto none = session.Execute(
      "select cid, SUM(f) from invest group by cid having f < 0");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->table->NumRows(), 0u);
  // <= and <> parse too.
  EXPECT_TRUE(session
                  .Execute("select cid, SUM(f) from invest group by cid "
                           "having f <= 100")
                  .ok());
  EXPECT_TRUE(session
                  .Execute("select cid, SUM(f) from invest group by cid "
                           "having f <> 0")
                  .ok());
  EXPECT_FALSE(session
                   .Execute("select cid, SUM(f) from invest group by cid "
                            "having f like 3")
                   .ok());
}

TEST_F(ExtensionsTest, WhatIfMeasureUpdateChangesOnlyHypothetically) {
  auto baseline = db_.Query("invest", MpfQuerySpec{{"tid"}, {}});
  ASSERT_TRUE(baseline.ok());

  // Pick a real ctdeals row and hypothetically change its discount.
  TablePtr ctdeals = *db_.catalog().GetTable("ctdeals");
  ASSERT_GT(ctdeals->NumRows(), 0u);
  RowView row = ctdeals->Row(0);
  WhatIf what_if;
  what_if.measure_updates.push_back(
      {"ctdeals",
       {{"cid", row.var(0)}, {"tid", row.var(1)}},
       row.measure * 10.0});

  auto hypothetical =
      db_.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, what_if);
  ASSERT_TRUE(hypothetical.ok()) << hypothetical.status();
  EXPECT_FALSE(
      fr::TablesEqual(*baseline->table, *hypothetical->table, 1e-9));

  // The stored table was not modified, and a fresh query matches baseline.
  EXPECT_EQ((*db_.catalog().GetTable("ctdeals"))->measure(0), row.measure);
  auto again = db_.Query("invest", MpfQuerySpec{{"tid"}, {}});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(fr::TablesEqual(*baseline->table, *again->table, 1e-12));
}

TEST_F(ExtensionsTest, WhatIfMeasureUpdateMatchesManualRecomputation) {
  TablePtr ctdeals = *db_.catalog().GetTable("ctdeals");
  RowView row = ctdeals->Row(1);
  const double new_measure = 0.123;
  WhatIf what_if;
  what_if.measure_updates.push_back(
      {"ctdeals", {{"cid", row.var(0)}, {"tid", row.var(1)}}, new_measure});
  auto hypothetical =
      db_.QueryWhatIf("invest", MpfQuerySpec{{"cid"}, {}}, what_if);
  ASSERT_TRUE(hypothetical.ok());

  // Recompute naively on manually modified copies.
  std::vector<TablePtr> tables;
  for (const auto& rel : view_.relations) {
    TablePtr t = *db_.catalog().GetTable(rel);
    if (rel == "ctdeals") {
      auto modified = t->Clone("ctdeals");
      modified->set_measure(1, new_measure);
      t = TablePtr(std::move(modified));
    }
    tables.push_back(t);
  }
  auto expected =
      fr::EvaluateNaiveMpf(tables, {"cid"}, {}, view_.semiring, "naive");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(fr::TablesEqual(**expected, *hypothetical->table, 1e-6));
}

TEST_F(ExtensionsTest, WhatIfDomainUpdateTransfersDeal) {
  // Transfer ctdeals row 0 from its transporter to another one.
  TablePtr ctdeals = *db_.catalog().GetTable("ctdeals");
  RowView row = ctdeals->Row(0);
  VarValue other_tid = row.var(1) == 0 ? 1 : 0;
  // Ensure no FD collision: (cid, other_tid) must not already exist.
  bool exists = false;
  for (size_t i = 0; i < ctdeals->NumRows(); ++i) {
    if (ctdeals->Row(i).var(0) == row.var(0) &&
        ctdeals->Row(i).var(1) == other_tid) {
      exists = true;
    }
  }
  WhatIf what_if;
  what_if.domain_updates.push_back(
      {"ctdeals", {{"cid", row.var(0)}, {"tid", row.var(1)}}, "tid", other_tid});
  auto hypothetical =
      db_.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, what_if);
  if (exists) {
    EXPECT_EQ(hypothetical.status().code(), StatusCode::kFailedPrecondition);
  } else {
    ASSERT_TRUE(hypothetical.ok()) << hypothetical.status();
    auto baseline = db_.Query("invest", MpfQuerySpec{{"tid"}, {}});
    ASSERT_TRUE(baseline.ok());
    EXPECT_FALSE(
        fr::TablesEqual(*baseline->table, *hypothetical->table, 1e-9));
  }
}

TEST_F(ExtensionsTest, WhatIfErrors) {
  WhatIf nothing_matches;
  nothing_matches.measure_updates.push_back(
      {"ctdeals", {{"cid", 9999}}, 1.0});
  EXPECT_EQ(db_.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}},
                            nothing_matches)
                .status()
                .code(),
            StatusCode::kNotFound);

  WhatIf bad_table;
  bad_table.measure_updates.push_back({"nope", {}, 1.0});
  EXPECT_FALSE(
      db_.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, bad_table).ok());

  WhatIf bad_var;
  bad_var.measure_updates.push_back({"ctdeals", {{"pid", 0}}, 1.0});
  EXPECT_EQ(db_.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, bad_var)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExtensionsTest, VeCacheIncrementalMaintenance) {
  auto cache = workload::VeCache::Build(view_, db_.catalog());
  ASSERT_TRUE(cache.ok()) << cache.status();

  // Update one warehouses row's overhead through the cache.
  TablePtr warehouses = *db_.catalog().GetTable("warehouses");
  RowView row = warehouses->Row(3);
  std::vector<VarValue> key(row.vars, row.vars + row.arity);
  double old_measure = row.measure;
  double new_measure = row.measure * 2.5;
  ASSERT_TRUE(
      cache->ApplyBaseMeasureUpdate("warehouses", key, new_measure).ok());
  // Multi-version maintenance: the cache adopted a new version of the base
  // table; the catalog's version is untouched (readers keep their snapshot).
  EXPECT_DOUBLE_EQ(warehouses->measure(3), old_measure);
  auto wh_index = cache->BaseIndexOf("warehouses");
  ASSERT_TRUE(wh_index.ok());
  EXPECT_DOUBLE_EQ(cache->base_tables()[*wh_index]->measure(3), new_measure);

  // Every single-variable query from the cache must now match naive
  // evaluation over the cache's (updated) base-table versions.
  const std::vector<TablePtr>& tables = cache->base_tables();
  for (const auto& var : {"pid", "sid", "wid", "cid", "tid"}) {
    auto truth =
        fr::EvaluateNaiveMpf(tables, {var}, {}, view_.semiring, "truth");
    ASSERT_TRUE(truth.ok());
    auto answer = cache->Answer(MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-6)) << var;
  }

  // A second update on a different table keeps the invariant.
  TablePtr transporters = *db_.catalog().GetTable("transporters");
  RowView trow = transporters->Row(0);
  ASSERT_TRUE(cache
                  ->ApplyBaseMeasureUpdate("transporters", {trow.var(0)},
                                           trow.measure + 0.75)
                  .ok());
  const std::vector<TablePtr>& tables2 = cache->base_tables();
  for (const auto& var : {"tid", "pid"}) {
    auto truth =
        fr::EvaluateNaiveMpf(tables2, {var}, {}, view_.semiring, "truth");
    ASSERT_TRUE(truth.ok());
    auto answer = cache->Answer(MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(answer.ok());
    EXPECT_TRUE(fr::TablesEqual(**truth, **answer, 1e-6)) << var;
  }
}

TEST_F(ExtensionsTest, VeCacheMaintenanceMphMatchesScanExactly) {
  // The MPH row locator is a pure accelerator: a cache maintained through it
  // must stay bit-identical (tolerance 0.0) to one maintained through the
  // linear scan, across several updates on several base tables.
  workload::VeCacheOptions with_mph;
  with_mph.mph_indexes = true;
  with_mph.epoch = 42;
  workload::VeCacheOptions without_mph;
  without_mph.mph_indexes = false;
  auto fast = workload::VeCache::Build(view_, db_.catalog(), with_mph);
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto slow = workload::VeCache::Build(view_, db_.catalog(), without_mph);
  ASSERT_TRUE(slow.ok()) << slow.status();

  // Clone both so updates don't race through the shared catalog tables.
  workload::VeCache fast_copy = fast->CloneDeep();
  workload::VeCache slow_copy = slow->CloneDeep();
  for (const char* table_name : {"warehouses", "transporters", "warehouses"}) {
    TablePtr table = *db_.catalog().GetTable(table_name);
    RowView row = table->Row(1);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    const double new_measure = row.measure * 1.5 + 0.25;
    ASSERT_TRUE(
        fast_copy.ApplyBaseMeasureUpdate(table_name, key, new_measure).ok());
    ASSERT_TRUE(
        slow_copy.ApplyBaseMeasureUpdate(table_name, key, new_measure).ok());
    ASSERT_EQ(fast_copy.caches().size(), slow_copy.caches().size());
    for (size_t i = 0; i < fast_copy.caches().size(); ++i) {
      EXPECT_TRUE(fr::TablesEqual(*fast_copy.caches()[i],
                                  *slow_copy.caches()[i],
                                  /*tolerance=*/0.0))
          << table_name << " cache " << i;
    }
  }
  // Absent rows must keep reporting NotFound through the fast path.
  EXPECT_EQ(
      fast_copy.ApplyBaseMeasureUpdate("warehouses", {9999, 9999}, 1.0).code(),
      StatusCode::kNotFound);
}

TEST_F(ExtensionsTest, VeCacheMaintenanceErrors) {
  auto cache = workload::VeCache::Build(view_, db_.catalog());
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache->ApplyBaseMeasureUpdate("nope", {0}, 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cache->ApplyBaseMeasureUpdate("warehouses", {0}, 1.0).code(),
            StatusCode::kInvalidArgument);  // wrong arity
  EXPECT_EQ(
      cache->ApplyBaseMeasureUpdate("warehouses", {9999, 9999}, 1.0).code(),
      StatusCode::kNotFound);  // no such row
}

TEST_F(ExtensionsTest, VeCacheZeroMeasureUpdateRejected) {
  // Force a zero measure and verify the incremental path refuses (no
  // multiplicative inverse), directing the caller to rebuild.
  TablePtr warehouses = *db_.catalog().GetTable("warehouses");
  warehouses->set_measure(0, 0.0);
  auto cache = workload::VeCache::Build(view_, db_.catalog());
  ASSERT_TRUE(cache.ok());
  RowView row = warehouses->Row(0);
  EXPECT_EQ(cache
                ->ApplyBaseMeasureUpdate("warehouses",
                                         {row.var(0), row.var(1)}, 5.0)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "mpfdb_persist_test").string();
  fs::remove_all(dir);

  Database original;
  workload::SupplyChainParams params;
  params.scale = 0.004;
  auto schema = workload::GenerateSupplyChain(params, original.catalog());
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(original.CreateMpfView(schema->view).ok());
  ASSERT_TRUE(SaveDatabase(original, dir).ok());

  Database loaded;
  ASSERT_TRUE(LoadDatabase(dir, loaded).ok());
  EXPECT_EQ(loaded.catalog().TableNames(), original.catalog().TableNames());
  EXPECT_EQ(loaded.ViewNames(), original.ViewNames());
  EXPECT_EQ((*loaded.catalog().GetTable("warehouses"))->key_vars(),
            (*original.catalog().GetTable("warehouses"))->key_vars());
  EXPECT_EQ(*loaded.catalog().DomainSize("pid"),
            *original.catalog().DomainSize("pid"));

  // Same query, same answer.
  auto a = original.Query("invest", MpfQuerySpec{{"cid"}, {}});
  auto b = loaded.Query("invest", MpfQuerySpec{{"cid"}, {}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(fr::TablesEqual(*a->table, *b->table, 1e-9));

  fs::remove_all(dir);
}

TEST(PersistenceTest, LoadErrors) {
  Database db;
  EXPECT_EQ(LoadDatabase("/nonexistent/mpfdb", db).code(),
            StatusCode::kNotFound);

  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "mpfdb_bad_manifest").string();
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "manifest");
    out << "gizmo|x|1\n";
  }
  Database db2;
  EXPECT_EQ(LoadDatabase(dir, db2).code(), StatusCode::kInvalidArgument);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mpfdb
