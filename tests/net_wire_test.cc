// Tests for the wire protocol codec: frame roundtrips (every frame type,
// every flag), incremental byte-at-a-time feeding, pipelined frames in one
// buffer, and rejection of malformed input — unknown types, hostile length
// prefixes, truncated payloads, trailing garbage, implausible counts.

#include "server/net/wire.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fr/algebra.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace mpfdb {
namespace {

using server::net::ErrorFrame;
using server::net::Frame;
using server::net::FrameReader;
using server::net::FrameType;
using server::net::MetricsReplyFrame;
using server::net::MetricsRequestFrame;
using server::net::QueryRequestFrame;
using server::net::ResultFrame;

// Feeds one encoded buffer to a fresh reader and expects exactly one frame.
Frame DecodeOne(const std::vector<uint8_t>& bytes) {
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  EXPECT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.ok() && *got);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
  return frame;
}

TEST(NetWireTest, QueryRoundtripFull) {
  QueryRequestFrame req;
  req.request_id = 0xDEADBEEFCAFE1234ull;
  req.cached = true;
  req.deadline_ms = 2500;
  req.view = "sales_view";
  req.optimizer = "cs+nonlinear";
  req.query.group_vars = {"region", "product"};
  req.query.selections = {{"quarter", 3}, {"channel", -1}};
  req.query.having = HavingClause{CompareOp::kGe, 0.125};

  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kQuery);
  const QueryRequestFrame& out = frame.query;
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_TRUE(out.cached);
  EXPECT_EQ(out.deadline_ms, 2500u);
  EXPECT_EQ(out.view, "sales_view");
  EXPECT_EQ(out.optimizer, "cs+nonlinear");
  EXPECT_EQ(out.query.group_vars, req.query.group_vars);
  ASSERT_EQ(out.query.selections.size(), 2u);
  EXPECT_EQ(out.query.selections[0].var, "quarter");
  EXPECT_EQ(out.query.selections[0].value, 3);
  EXPECT_EQ(out.query.selections[1].value, -1);
  ASSERT_TRUE(out.query.having.has_value());
  EXPECT_EQ(out.query.having->op, CompareOp::kGe);
  EXPECT_EQ(out.query.having->threshold, 0.125);
}

TEST(NetWireTest, QueryRoundtripMinimal) {
  QueryRequestFrame req;
  req.request_id = 1;
  req.view = "v";

  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kQuery);
  EXPECT_FALSE(frame.query.cached);
  EXPECT_EQ(frame.query.deadline_ms, 0u);
  EXPECT_TRUE(frame.query.optimizer.empty());
  EXPECT_TRUE(frame.query.query.group_vars.empty());
  EXPECT_TRUE(frame.query.query.selections.empty());
  EXPECT_FALSE(frame.query.query.having.has_value());
}

TEST(NetWireTest, ResultRoundtripBitIdentical) {
  auto table = std::make_shared<Table>("answer", Schema({"x", "y"}, "prob"));
  table->AppendRow({0, 1}, 0.375);
  table->AppendRow({2, -3}, 1e-300);          // subnormal-adjacent magnitude
  table->AppendRow({5, 7}, -0.0);             // signed zero must survive
  table->AppendRow({1, 1}, 1.0 / 3.0);        // non-terminating binary

  ResultFrame res;
  res.request_id = 42;
  res.snapshot_epoch = 917;
  res.plan_cache_hit = true;
  res.epoch_inexact = true;
  res.table = table;

  std::vector<uint8_t> bytes;
  EncodeResult(res, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kResult);
  const ResultFrame& out = frame.result;
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.snapshot_epoch, 917u);
  EXPECT_TRUE(out.plan_cache_hit);
  EXPECT_TRUE(out.epoch_inexact);
  ASSERT_NE(out.table, nullptr);
  EXPECT_EQ(out.table->name(), "answer");
  EXPECT_EQ(out.table->schema().measure_name(), "prob");
  // Bit-identical: tolerance 0.0, including the signed zero.
  EXPECT_TRUE(fr::TablesEqual(*table, *out.table, 0.0));
  EXPECT_TRUE(std::signbit(out.table->measure(2)));
}

TEST(NetWireTest, ResultRoundtripEmptyTable) {
  ResultFrame res;
  res.request_id = 9;
  res.table = std::make_shared<Table>("empty", Schema({}, "f"));
  std::vector<uint8_t> bytes;
  EncodeResult(res, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_FALSE(frame.result.plan_cache_hit);
  EXPECT_FALSE(frame.result.epoch_inexact);
  EXPECT_EQ(frame.result.table->NumRows(), 0u);
  EXPECT_EQ(frame.result.table->schema().arity(), 0u);
}

TEST(NetWireTest, ErrorRoundtrip) {
  ErrorFrame err;
  err.request_id = 77;
  err.code = StatusCode::kResourceExhausted;
  err.retryable = true;
  err.retry_after_ms = 230;
  err.message = "request shed: estimated queue wait exceeds deadline";

  std::vector<uint8_t> bytes;
  EncodeError(err, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.request_id, 77u);
  EXPECT_EQ(frame.error.code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(frame.error.retryable);
  EXPECT_EQ(frame.error.retry_after_ms, 230u);
  EXPECT_EQ(frame.error.message, err.message);
}

TEST(NetWireTest, MetricsRoundtrips) {
  std::vector<uint8_t> bytes;
  EncodeMetricsRequest(MetricsRequestFrame{13}, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kMetrics);
  EXPECT_EQ(frame.metrics.request_id, 13u);

  bytes.clear();
  EncodeMetricsReply(MetricsReplyFrame{13, "server_completed 8\n"}, &bytes);
  frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kMetricsReply);
  EXPECT_EQ(frame.metrics_reply.request_id, 13u);
  EXPECT_EQ(frame.metrics_reply.text, "server_completed 8\n");
}

TEST(NetWireTest, ByteAtATimeFeeding) {
  // A frame split into 1-byte appends must produce no frame until the last
  // byte lands — exactly what short reads under fault injection exercise.
  QueryRequestFrame req;
  req.request_id = 5;
  req.view = "v";
  req.query.group_vars = {"x"};
  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);

  FrameReader reader;
  Frame frame;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.Append(&bytes[i], 1);
    auto got = reader.Next(&frame);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got) << "frame surfaced early at byte " << i;
  }
  reader.Append(&bytes[bytes.size() - 1], 1);
  auto got = reader.Next(&frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.query.request_id, 5u);
}

TEST(NetWireTest, PipelinedFramesInOneBuffer) {
  std::vector<uint8_t> bytes;
  for (uint64_t id = 1; id <= 5; ++id) {
    QueryRequestFrame req;
    req.request_id = id;
    req.view = "v" + std::to_string(id);
    EncodeQuery(req, &bytes);
  }
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  for (uint64_t id = 1; id <= 5; ++id) {
    Frame frame;
    auto got = reader.Next(&frame);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    EXPECT_EQ(frame.query.request_id, id);
    EXPECT_EQ(frame.query.view, "v" + std::to_string(id));
  }
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(NetWireTest, LongLivedReaderCompacts) {
  // Thousands of frames through one reader: buffered_bytes stays bounded
  // by one frame, i.e. the consumed prefix is actually reclaimed.
  QueryRequestFrame req;
  req.request_id = 1;
  req.view = std::string(512, 'v');
  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);

  FrameReader reader;
  Frame frame;
  for (int i = 0; i < 4000; ++i) {
    reader.Append(bytes.data(), bytes.size());
    auto got = reader.Next(&frame);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
    ASSERT_LE(reader.buffered_bytes(), bytes.size());
  }
}

TEST(NetWireTest, RejectsUnknownFrameType) {
  std::vector<uint8_t> bytes = {1, 0, 0, 0, /*type=*/99, /*payload=*/0};
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsHostileLengthPrefix) {
  // 4 GiB-ish length: must be rejected from the header alone, before any
  // attempt to buffer that much.
  std::vector<uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 1};
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsTruncatedPayload) {
  QueryRequestFrame req;
  req.request_id = 1;
  req.view = "view";
  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  // Chop the last 2 payload bytes and shrink the length prefix to match:
  // the frame is "complete" per the header but decodes short.
  bytes.resize(bytes.size() - 2);
  uint32_t len = static_cast<uint32_t>(bytes.size()) -
                 static_cast<uint32_t>(server::net::kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
  }
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsTrailingGarbage) {
  QueryRequestFrame req;
  req.request_id = 1;
  req.view = "view";
  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  // Append garbage inside the frame and grow the length prefix to cover it.
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  uint32_t len = static_cast<uint32_t>(bytes.size()) -
                 static_cast<uint32_t>(server::net::kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
  }
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsImplausibleListCount) {
  // Hand-build a query frame whose group-var count claims 2^30 entries;
  // the decoder must reject the count, not attempt the reserve.
  std::vector<uint8_t> payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // request_id
  payload.push_back(0);                              // flags
  put_u32(0);                                        // deadline_ms
  put_u32(1);                                        // view length
  payload.push_back('v');
  put_u32(0);             // optimizer length
  put_u32(1u << 30);      // group count: implausible
  std::vector<uint8_t> bytes;
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  bytes.push_back(static_cast<uint8_t>(FrameType::kQuery));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsBadStatusCodeInErrorFrame) {
  ErrorFrame err;
  err.request_id = 1;
  err.code = StatusCode::kInternal;
  err.message = "x";
  std::vector<uint8_t> bytes;
  EncodeError(err, &bytes);
  // Patch the code byte (payload offset 8) to an out-of-range value.
  bytes[server::net::kFrameHeaderBytes + 8] = 0xEE;
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RejectsRowBlockSizeMismatch) {
  ResultFrame res;
  res.request_id = 3;
  auto table = std::make_shared<Table>("t", Schema({"x"}, "f"));
  table->AppendRow({1}, 2.0);
  res.table = table;
  std::vector<uint8_t> bytes;
  EncodeResult(res, &bytes);
  // Inflate the claimed row count without supplying the bytes. The row
  // count sits right before the 12-byte row block (1 i32 + 1 f64).
  size_t count_off = bytes.size() - 12 - 4;
  bytes[count_off] = 7;
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

// --- approximate-query extension -------------------------------------------

TEST(NetWireTest, ApproxQueryRoundtripCarriesKnobs) {
  QueryRequestFrame req;
  req.request_id = 77;
  req.approx = true;
  req.eps = 0.015625;  // exactly representable: roundtrip must be bitwise
  req.max_rounds = 129;
  req.seed = 0x1234ABCD5678EF00ull;
  req.deadline_ms = 400;
  req.view = "cyclic_view";
  req.query.group_vars = {"x0"};
  req.query.having = HavingClause{CompareOp::kGe, 0.5};

  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kQuery);
  EXPECT_TRUE(frame.query.approx);
  EXPECT_EQ(frame.query.eps, 0.015625);
  EXPECT_EQ(frame.query.max_rounds, 129u);
  EXPECT_EQ(frame.query.seed, 0x1234ABCD5678EF00ull);
  EXPECT_EQ(frame.query.deadline_ms, 400u);
  ASSERT_TRUE(frame.query.query.having.has_value());
}

TEST(NetWireTest, ApproxQueryFlagAbsentLeavesDefaults) {
  // A legacy (non-approx) frame must decode with the approx knobs at their
  // defaults — the extension is strictly flag-gated.
  QueryRequestFrame req;
  req.request_id = 5;
  req.view = "v";
  std::vector<uint8_t> bytes;
  EncodeQuery(req, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kQuery);
  EXPECT_FALSE(frame.query.approx);
  EXPECT_EQ(frame.query.eps, 0.05);
  EXPECT_EQ(frame.query.max_rounds, 64u);
  EXPECT_EQ(frame.query.seed, 0u);
}

TEST(NetWireTest, ApproxResultRoundtripWithBoundTables) {
  auto estimate = std::make_shared<Table>("est", Schema({"x"}, "f"));
  estimate->AppendRow({0}, 0.25);
  estimate->AppendRow({1}, 0.75);
  auto lower = std::make_shared<Table>("lo", Schema({"x"}, "f"));
  lower->AppendRow({0}, 0.125);
  lower->AppendRow({1}, 1.0 / 3.0);
  auto upper = std::make_shared<Table>("hi", Schema({"x"}, "f"));
  upper->AppendRow({0}, 0.5);
  upper->AppendRow({1}, -0.0);  // signed zero must survive in bound tables

  ResultFrame res;
  res.request_id = 11;
  res.snapshot_epoch = 3;
  res.approximate = true;
  res.deadline_degraded = true;
  res.samples = 4096;
  res.bound_gap = 0.375;
  res.table = estimate;
  res.lower = lower;
  res.upper = upper;

  std::vector<uint8_t> bytes;
  EncodeResult(res, &bytes);
  Frame frame = DecodeOne(bytes);
  ASSERT_EQ(frame.type, FrameType::kResult);
  const ResultFrame& out = frame.result;
  EXPECT_TRUE(out.approximate);
  EXPECT_TRUE(out.deadline_degraded);
  EXPECT_EQ(out.samples, 4096u);
  EXPECT_EQ(out.bound_gap, 0.375);
  ASSERT_NE(out.lower, nullptr);
  ASSERT_NE(out.upper, nullptr);
  EXPECT_TRUE(fr::TablesEqual(*estimate, *out.table, 0.0));
  EXPECT_TRUE(fr::TablesEqual(*lower, *out.lower, 0.0));
  EXPECT_TRUE(fr::TablesEqual(*upper, *out.upper, 0.0));
  EXPECT_TRUE(std::signbit(out.upper->measure(1)));
}

TEST(NetWireTest, ApproxResultWithoutFlagOmitsBoundPayload) {
  // Non-approx results carry no bound payload: an encode of a plain result
  // followed by a decode must leave the extras reset even if the structs
  // were dirtied beforehand.
  ResultFrame res;
  res.request_id = 2;
  res.table = std::make_shared<Table>("t", Schema({"x"}, "f"));
  res.table->AppendRow({4}, 2.0);
  std::vector<uint8_t> plain_bytes;
  EncodeResult(res, &plain_bytes);

  ResultFrame approx = res;
  approx.approximate = true;
  approx.lower = res.table;
  approx.upper = res.table;
  std::vector<uint8_t> approx_bytes;
  EncodeResult(approx, &approx_bytes);
  EXPECT_LT(plain_bytes.size(), approx_bytes.size());

  Frame frame = DecodeOne(plain_bytes);
  ASSERT_EQ(frame.type, FrameType::kResult);
  EXPECT_FALSE(frame.result.approximate);
  EXPECT_FALSE(frame.result.deadline_degraded);
  EXPECT_EQ(frame.result.samples, 0u);
  EXPECT_EQ(frame.result.bound_gap, 0.0);
  EXPECT_EQ(frame.result.lower, nullptr);
  EXPECT_EQ(frame.result.upper, nullptr);
}

TEST(NetWireTest, ApproxRejectsTruncatedBoundTables) {
  ResultFrame res;
  res.request_id = 6;
  res.approximate = true;
  res.samples = 10;
  res.bound_gap = 0.5;
  auto t = std::make_shared<Table>("t", Schema({"x"}, "f"));
  t->AppendRow({1}, 2.0);
  res.table = t;
  res.lower = t;
  res.upper = t;
  std::vector<uint8_t> full;
  EncodeResult(res, &full);

  // Every truncation point inside the appended approx payload must be
  // rejected, never silently accepted or over-read.
  std::vector<uint8_t> plain_len;
  {
    ResultFrame p = res;
    p.approximate = false;
    EncodeResult(p, &plain_len);
  }
  for (size_t cut = plain_len.size(); cut < full.size(); ++cut) {
    std::vector<uint8_t> bytes(full.begin(),
                               full.begin() + static_cast<long>(cut));
    uint32_t len = static_cast<uint32_t>(bytes.size()) -
                   static_cast<uint32_t>(server::net::kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i) {
      bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(len >> (8 * i));
    }
    FrameReader reader;
    reader.Append(bytes.data(), bytes.size());
    Frame frame;
    auto got = reader.Next(&frame);
    ASSERT_FALSE(got.ok()) << "accepted truncation at " << cut;
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(NetWireTest, ApproxRejectsInflatedInnerRowCount) {
  // Inflate the lower-bound table's row count: the inner block bounds check
  // (Need) must fail instead of reading into the upper table's bytes.
  ResultFrame res;
  res.request_id = 8;
  res.approximate = true;
  auto t = std::make_shared<Table>("t", Schema({"x"}, "f"));
  t->AppendRow({1}, 2.0);
  res.table = t;
  res.lower = t;
  res.upper = t;
  std::vector<uint8_t> bytes;
  EncodeResult(res, &bytes);
  // The upper table block is last: 4+1 (name "t") + 4+1 (measure "f") + 4
  // (arity) + 4+1 (var "x") + 4 (row count) + 12 (one row) = 35 bytes. The
  // lower block of identical shape sits right before it; its row count is
  // 12 + 4 bytes from its own block's end.
  const size_t upper_block = 5 + 5 + 4 + 5 + 4 + 12;
  size_t lower_count_off = bytes.size() - upper_block - 12 - 4;
  bytes[lower_count_off] = 200;
  FrameReader reader;
  reader.Append(bytes.data(), bytes.size());
  Frame frame;
  auto got = reader.Next(&frame);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mpfdb
