// The MVCC concurrency battery: delta-vs-rebuild differential properties
// (an incrementally refreshed VE-cache must be bit-identical to a full
// rebuild, across semirings and under concurrent application), snapshot
// isolation with chunk-level structural sharing and epoch GC (a pinned
// reader never observes a writer's commits; releasing the pin reclaims
// every dead version), and group-commit coalescing/fairness (N concurrent
// writers fold into ceil(N/batch) version bumps and never starve readers).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "fr/algebra.h"
#include "random_view.h"
#include "server/server.h"
#include "storage/mvcc.h"
#include "util/rng.h"
#include "workload/vecache.h"

namespace mpfdb {
namespace {

using server::MpfServer;
using server::ServerOptions;
using workload::VeCache;
using workload::VeCacheDeltaOp;

// Installs a RandomView's variables, tables, and view into a database.
void Install(const RandomView& rv, Database& db) {
  for (const auto& var : rv.vars) {
    ASSERT_TRUE(
        db.catalog().RegisterVariable(var, *rv.catalog.DomainSize(var)).ok());
  }
  for (const auto& table : rv.tables) {
    ASSERT_TRUE(db.CreateTable(table).ok());
  }
  ASSERT_TRUE(db.CreateMpfView(rv.view).ok());
}

// A random measure-update batch over the view's base tables: 1-3 tables,
// 1-3 rows each, values in a range disjoint from MakeRandomView's so no
// update is a no-op and none introduces a zero.
std::vector<VeCacheDeltaOp> RandomBatch(const RandomView& rv, Rng& rng) {
  std::vector<VeCacheDeltaOp> ops;
  int num_tables = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<size_t> chosen;
  for (int t = 0; t < num_tables; ++t) {
    size_t idx = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(rv.tables.size()) - 1));
    if (std::find(chosen.begin(), chosen.end(), idx) != chosen.end()) continue;
    chosen.push_back(idx);
    const Table& table = *rv.tables[idx];
    VeCacheDeltaOp op;
    op.table = table.name();
    std::map<size_t, double> rows;
    int num_rows = static_cast<int>(rng.UniformInt(1, 3));
    for (int r = 0; r < num_rows; ++r) {
      size_t row = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(table.NumRows()) - 1));
      rows[row] = rng.UniformDouble(4.0, 8.0);
    }
    op.rows.assign(rows.begin(), rows.end());
    ops.push_back(std::move(op));
  }
  return ops;
}

// Full rebuild against a catalog with the batch applied — the ground truth
// the delta path must reproduce bit-for-bit.
StatusOr<VeCache> RebuildWithBatch(const RandomView& rv,
                                   const std::vector<VeCacheDeltaOp>& ops) {
  Catalog cat = rv.catalog;
  for (const auto& op : ops) {
    auto table = cat.GetTable(op.table);
    if (!table.ok()) return table.status();
    Status replaced =
        cat.ReplaceTable((*table)->WithMeasureUpdates(op.rows, op.table));
    if (!replaced.ok()) return replaced;
  }
  return VeCache::Build(rv.view, cat);
}

void ExpectCachesBitIdentical(const VeCache& got, const VeCache& want,
                              const std::string& label) {
  ASSERT_EQ(got.caches().size(), want.caches().size()) << label;
  for (size_t i = 0; i < got.caches().size(); ++i) {
    EXPECT_TRUE(
        fr::TablesEqual(*got.caches()[i], *want.caches()[i], /*tolerance=*/0.0))
        << label << " cache " << i;
  }
}

// --- Delta-vs-rebuild differential ----------------------------------------

class MvccDeltaDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Random view x random measure-update batch x semiring x {1,4} threads:
// WithMeasureDelta must equal a full Build against the updated catalog,
// bitwise (tolerance 0.0). With 4 threads the same immutable base cache is
// shared and each thread applies its own independent batch concurrently.
TEST_P(MvccDeltaDifferentialTest, DeltaMatchesRebuildBitwise) {
  const uint64_t seed = CaseSeed(GetParam());
  MPFDB_TRACE_SEED(seed);
  const Semiring semirings[] = {Semiring::SumProduct(), Semiring::MaxProduct()};
  for (size_t sr = 0; sr < 2; ++sr) {
    for (int threads : {1, 4}) {
      RandomView rv = MakeRandomView(seed, /*num_vars=*/5, /*num_rels=*/4,
                                     /*force_acyclic=*/(GetParam() % 2 == 0));
      rv.view.semiring = semirings[sr];
      auto base = VeCache::Build(rv.view, rv.catalog);
      ASSERT_TRUE(base.ok()) << base.status().message();
      ASSERT_TRUE(base->SupportsDelta());

      std::vector<std::vector<VeCacheDeltaOp>> batches(
          static_cast<size_t>(threads));
      for (int t = 0; t < threads; ++t) {
        Rng rng(seed * 31 + sr * 7 + static_cast<uint64_t>(threads * 100 + t));
        batches[static_cast<size_t>(t)] = RandomBatch(rv, rng);
      }

      // Each worker applies its own batch to the shared base concurrently;
      // results are compared on the main thread.
      std::vector<std::unique_ptr<StatusOr<VeCache>>> deltas(
          static_cast<size_t>(threads));
      std::vector<std::thread> workers;
      for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          deltas[static_cast<size_t>(t)] = std::make_unique<StatusOr<VeCache>>(
              base->WithMeasureDelta(batches[static_cast<size_t>(t)]));
        });
      }
      for (auto& w : workers) w.join();

      for (int t = 0; t < threads; ++t) {
        const std::string label = "semiring " + std::to_string(sr) +
                                  " threads " + std::to_string(threads) +
                                  " worker " + std::to_string(t);
        StatusOr<VeCache>& delta = *deltas[static_cast<size_t>(t)];
        ASSERT_TRUE(delta.ok()) << label << ": " << delta.status().message();
        auto rebuilt = RebuildWithBatch(rv, batches[static_cast<size_t>(t)]);
        ASSERT_TRUE(rebuilt.ok()) << label << ": "
                                  << rebuilt.status().message();
        ExpectCachesBitIdentical(*delta, *rebuilt, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvccDeltaDifferentialTest,
                         ::testing::Range<uint64_t>(0, 6));

// An absorbing zero in a product semiring breaks exact replay (the backward
// pass would divide by the zero's contribution): the delta path must refuse
// with kFailedPrecondition, and the full-rebuild fallback must be correct.
TEST(MvccDeltaFallbackTest, AbsorbingZeroFallsBackToRebuild) {
  const uint64_t seed = CaseSeed(77);
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 4, 3, /*force_acyclic=*/true);
  rv.tables[0]->set_measure(0, 0.0);  // plant the absorbing zero pre-Build
  auto base = VeCache::Build(rv.view, rv.catalog);
  ASSERT_TRUE(base.ok()) << base.status().message();

  VeCacheDeltaOp op;
  op.table = rv.tables[0]->name();
  op.rows = {{0, 5.0}};
  auto refused = base->WithMeasureDelta({op});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // The fallback a caller performs: rebuild against the updated catalog.
  // (Naive evaluation folds in a different order, hence the tolerance here;
  // the 0.0-tolerance delta-vs-rebuild guarantee is covered above.)
  auto rebuilt = RebuildWithBatch(rv, {op});
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().message();
  auto truth = fr::EvaluateNaiveMpf(rebuilt->base_tables(),
                                    {rv.present_vars[0]}, {},
                                    rv.view.semiring, "truth");
  ASSERT_TRUE(truth.ok());
  auto answer = rebuilt->Answer(MpfQuerySpec{{rv.present_vars[0]}, {}});
  ASSERT_TRUE(answer.ok()) << answer.status().message();
  EXPECT_TRUE(fr::TablesEqual(**truth, **answer, /*tolerance=*/1e-9));
}

// Database-level fallback: a commit touching an absorbing-zero row (or
// driving a row to zero) still refreshes the published cache correctly —
// the full_rebuilds counter proves the incremental path stepped aside.
TEST(MvccDeltaFallbackTest, DatabaseCommitFallsBackOnZero) {
  const uint64_t seed = CaseSeed(78);
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 4, 3, /*force_acyclic=*/false);
  Database db;
  Install(rv, db);
  ASSERT_TRUE(db.BuildCache(rv.view.name).ok());

  // Drive a row to zero (delta may refuse), then update the zero row (delta
  // must refuse); the cache stays exact either way.
  const std::string table = rv.tables[0]->name();
  RowView row = rv.tables[0]->Row(0);
  std::vector<VarValue> key(row.vars, row.vars + row.arity);
  ASSERT_TRUE(db.ApplyMeasureUpdate(table, key, 0.0).ok());
  ASSERT_TRUE(db.ApplyMeasureUpdate(table, key, 3.5).ok());
  auto stats = db.mvcc_stats();
  EXPECT_GE(stats.full_rebuilds, 1u);

  auto snap_tables = db.snapshot();
  std::vector<TablePtr> current;
  for (const auto& rel : rv.view.relations) {
    current.push_back(*snap_tables->catalog.GetTable(rel));
  }
  for (const auto& var : rv.present_vars) {
    auto truth = fr::EvaluateNaiveMpf(current, {var}, {}, rv.view.semiring,
                                      "truth");
    ASSERT_TRUE(truth.ok());
    auto cached = db.QueryCached(rv.view.name, MpfQuerySpec{{var}, {}});
    ASSERT_TRUE(cached.ok()) << cached.status().message();
    // Naive evaluation folds in a different order than the cache pipeline.
    EXPECT_TRUE(fr::TablesEqual(**truth, **cached, /*tolerance=*/1e-9)) << var;
  }
}

// The boolean semiring has no division, so the VE-cache (whose backward
// pass needs the update semijoin) must refuse to build — and the database
// update path must stay correct without any cache: a full Query after a
// commit matches naive evaluation bitwise.
TEST(MvccDeltaFallbackTest, BooleanSemiringHasNoCacheButCommitsStayExact) {
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("x", 3).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("y", 3).ok());
  auto r0 = std::make_shared<Table>("b0", Schema({"x", "y"}, "f"));
  auto r1 = std::make_shared<Table>("b1", Schema({"y"}, "f"));
  for (VarValue x = 0; x < 3; ++x) {
    for (VarValue y = 0; y < 3; ++y) r0->AppendRow({x, y}, (x + y) % 2);
  }
  for (VarValue y = 0; y < 3; ++y) r1->AppendRow({y}, 1.0);
  ASSERT_TRUE(db.CreateTable(r0).ok());
  ASSERT_TRUE(db.CreateTable(r1).ok());
  ASSERT_TRUE(db.CreateMpfView({"bv", {"b0", "b1"}, Semiring::BoolOrAnd()})
                  .ok());

  Status build = db.BuildCache("bv");
  ASSERT_FALSE(build.ok());
  EXPECT_EQ(build.code(), StatusCode::kFailedPrecondition);

  // Toggle measures through the MVCC commit path and check the full query
  // path differentially after each commit.
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(
        db.ApplyMeasureUpdate("b0", {static_cast<VarValue>(k % 3), 1},
                              k % 2 == 0 ? 1.0 : 0.0)
            .ok());
    auto snap = db.snapshot();
    std::vector<TablePtr> tables = {*snap->catalog.GetTable("b0"),
                                    *snap->catalog.GetTable("b1")};
    for (const char* var : {"x", "y"}) {
      auto truth = fr::EvaluateNaiveMpf(tables, {var}, {},
                                        Semiring::BoolOrAnd(), "truth");
      ASSERT_TRUE(truth.ok());
      auto got = db.Query("bv", MpfQuerySpec{{var}, {}});
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_TRUE(fr::TablesEqual(**truth, *got->table, /*tolerance=*/0.0))
          << "var " << var << " step " << k;
    }
  }
}

// --- Snapshot isolation and version GC ------------------------------------

// A reader's pinned snapshot survives 100 commits untouched; versions share
// all unchanged chunks; releasing the pin lets GC reclaim every dead
// version, returning the live-chunk count to its baseline.
TEST(MvccSnapshotTest, PinnedReaderUnchangedAndGcReclaimsAfterRelease) {
  constexpr size_t kRows = 4 * mvcc::MeasureChunk::kRows;  // 4 chunks
  constexpr int kCommits = 100;
  Database db;
  ASSERT_TRUE(
      db.catalog().RegisterVariable("x", static_cast<int64_t>(kRows)).ok());
  auto table = std::make_shared<Table>("big", Schema({"x"}, "f"));
  for (size_t i = 0; i < kRows; ++i) {
    table->AppendRow({static_cast<VarValue>(i)}, 1.0 + i * 0.5);
  }
  ASSERT_TRUE(db.CreateTable(table).ok());
  ASSERT_EQ(table->NumMeasureChunks(), 4u);
  const int64_t baseline = mvcc::MeasureChunk::LiveCount();
  const uint64_t epoch0 = db.epoch();

  // Pin a snapshot and remember everything it can see.
  Database::SnapshotPtr snap = db.snapshot();
  TablePtr pinned = *snap->catalog.GetTable("big");
  std::vector<double> before(kRows);
  for (size_t i = 0; i < kRows; ++i) before[i] = pinned->measure(i);

  // Writer: 100 sequential commits, all hitting row 7 (same chunk).
  for (int k = 1; k <= kCommits; ++k) {
    ASSERT_TRUE(db.ApplyMeasureUpdate("big", {7}, 1000.0 + k).ok());
  }
  ASSERT_EQ(db.epoch(), epoch0 + kCommits);

  // Reader isolation: the pinned version is bitwise untouched.
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(pinned->measure(i), before[i]) << "row " << i;
  }

  // Structural sharing: the current version shares every chunk the writer
  // did not touch (3 of 4) with the pinned one.
  Database::SnapshotPtr cur = db.snapshot();
  TablePtr latest = *cur->catalog.GetTable("big");
  EXPECT_EQ(latest->measure(7), 1000.0 + kCommits);
  EXPECT_EQ(latest->SharedMeasureChunksWith(*pinned), 3u);

  // While the pin is held: all 100 superseded versions retired, but only
  // the pinned one survives collection (intermediates were born and died
  // with no pin covering them), so a 100-version history costs one extra
  // chunk, not 100 table copies (400 chunks).
  MvccStats held = db.mvcc_stats();
  EXPECT_EQ(held.versions_retired, static_cast<uint64_t>(kCommits));
  EXPECT_EQ(held.versions_retained, 1u);
  EXPECT_GE(held.pinned_snapshots, 1u);
  EXPECT_LE(static_cast<int64_t>(held.live_measure_chunks) - baseline, 2);

  // Release every reference to the old version and nudge GC with one more
  // commit (which also flushes the database's internal snapshot cache).
  snap.reset();
  cur.reset();
  pinned.reset();
  latest.reset();
  table.reset();
  ASSERT_TRUE(db.ApplyMeasureUpdate("big", {7}, 2000.0).ok());
  MvccStats after = db.mvcc_stats();
  EXPECT_EQ(after.versions_retired, static_cast<uint64_t>(kCommits) + 1);
  EXPECT_EQ(after.versions_collected, after.versions_retired);
  EXPECT_EQ(after.versions_retained, 0u);
  EXPECT_EQ(after.pinned_snapshots, 0u);
  // Every dead version's private chunk is gone: the live count is back to
  // the baseline (the current version's private chunk replaces the seed
  // version's copy of chunk 0).
  EXPECT_EQ(mvcc::MeasureChunk::LiveCount(), baseline);
}

// Commit cost is O(touched chunks), not O(table): a single-row update on a
// chunked table copies exactly one chunk no matter how large the table is.
TEST(MvccSnapshotTest, CommitAllocatesOnlyTouchedChunks) {
  constexpr size_t kRows = 8 * mvcc::MeasureChunk::kRows;  // 8 chunks
  Database db;
  ASSERT_TRUE(
      db.catalog().RegisterVariable("x", static_cast<int64_t>(kRows)).ok());
  auto table = std::make_shared<Table>("wide", Schema({"x"}, "f"));
  for (size_t i = 0; i < kRows; ++i) {
    table->AppendRow({static_cast<VarValue>(i)}, 2.0);
  }
  ASSERT_TRUE(db.CreateTable(table).ok());

  Database::SnapshotPtr snap = db.snapshot();  // pin the seed version
  const int64_t baseline = mvcc::MeasureChunk::LiveCount();
  ASSERT_TRUE(db.ApplyMeasureUpdate("wide", {3}, 9.0).ok());
  // One commit with both versions alive: exactly one chunk was copied.
  EXPECT_EQ(mvcc::MeasureChunk::LiveCount() - baseline, 1);
  TablePtr latest = *db.snapshot()->catalog.GetTable("wide");
  EXPECT_EQ(latest->SharedMeasureChunksWith(**snap->catalog.GetTable("wide")),
            7u);
}

// --- Group commit: coalescing and fairness --------------------------------

// N concurrent single-row writers must coalesce into at most ceil(N/batch)
// version bumps, every writer's row must land, and each ack's commit epoch
// must be exact.
TEST(MvccGroupCommitTest, ConcurrentWritersCoalesce) {
  constexpr int kWriters = 16;
  constexpr size_t kBatch = 4;
  DatabaseOptions options;
  options.commit_batch_max = kBatch;
  options.commit_linger_us = 200000;  // 200ms: arrivals beat the linger
  Database db(options);
  ASSERT_TRUE(db.catalog().RegisterVariable("x", kWriters).ok());
  auto table = std::make_shared<Table>("t", Schema({"x"}, "f"));
  for (VarValue i = 0; i < kWriters; ++i) table->AppendRow({i}, 1.0);
  ASSERT_TRUE(db.CreateTable(table).ok());
  const uint64_t epoch0 = db.epoch();

  std::atomic<int> ready{0};
  std::vector<uint64_t> commit_epochs(kWriters, 0);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kWriters) std::this_thread::yield();
      ASSERT_TRUE(db.ApplyMeasureUpdate("t", {static_cast<VarValue>(w)},
                                        100.0 + w,
                                        &commit_epochs[static_cast<size_t>(w)])
                      .ok());
    });
  }
  for (auto& w : writers) w.join();

  MvccStats stats = db.mvcc_stats();
  EXPECT_EQ(stats.updates_applied, static_cast<uint64_t>(kWriters));
  // Coalescing: strictly fewer version bumps than writers, bounded by the
  // batch quantum (the 200ms linger makes a premature drain all but
  // impossible; the bound still leaves one short batch of slack).
  EXPECT_LT(stats.commit_batches, static_cast<uint64_t>(kWriters));
  EXPECT_LE(stats.commit_batches,
            static_cast<uint64_t>(kWriters / kBatch + 1));
  EXPECT_EQ(stats.updates_coalesced,
            static_cast<uint64_t>(kWriters) - stats.commit_batches);
  // One epoch bump per batch, no more.
  EXPECT_EQ(db.epoch() - epoch0, stats.commit_batches);

  // Every writer's row landed, and its ack epoch is a real commit epoch at
  // which the row is visible.
  TablePtr latest = *db.snapshot()->catalog.GetTable("t");
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(latest->measure(static_cast<size_t>(w)), 100.0 + w) << w;
    EXPECT_GT(commit_epochs[static_cast<size_t>(w)], epoch0) << w;
    EXPECT_LE(commit_epochs[static_cast<size_t>(w)], db.epoch()) << w;
  }
}

// A saturating writer stream must not starve queued readers: writers bypass
// admission (they coalesce in the commit queue), so reader latency stays
// bounded and every reader makes steady progress.
TEST(MvccGroupCommitTest, WriterStreamDoesNotStarveReaders) {
  const uint64_t seed = CaseSeed(303);
  MPFDB_TRACE_SEED(seed);
  RandomView rv = MakeRandomView(seed, 4, 3, /*force_acyclic=*/true);
  Database db;
  Install(rv, db);
  ASSERT_TRUE(db.BuildCache(rv.view.name).ok());

  ServerOptions options;
  options.max_concurrent = 2;
  MpfServer server(db, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  const std::string target = rv.tables[0]->name();
  RowView row0 = rv.tables[0]->Row(0);
  std::vector<VarValue> key(row0.vars, row0.vars + row0.arity);
  std::thread writer([&] {
    auto session = server.CreateSession("writer");
    int k = 0;
    while (!stop.load()) {
      ASSERT_TRUE(session->Update(target, key, 64.0 + (k++ % 512) * 0.125)
                      .ok());
      writes.fetch_add(1);
    }
  });

  constexpr int kReaders = 2;
  constexpr int kReadsEach = 40;
  std::vector<std::vector<double>> latencies(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto session = server.CreateSession("reader-" + std::to_string(r));
      Rng rng(seed + 50 + static_cast<uint64_t>(r));
      for (int i = 0; i < kReadsEach; ++i) {
        MpfQuerySpec spec{{Pick(rv.present_vars, rng)}, {}};
        auto begin = std::chrono::steady_clock::now();
        if (rng.Bernoulli(0.5)) {
          auto result = session->QueryCached(rv.view.name, spec);
          ASSERT_TRUE(result.ok()) << result.status().message();
        } else {
          auto result = session->Query(rv.view.name, spec);
          ASSERT_TRUE(result.ok()) << result.status().message();
        }
        auto end = std::chrono::steady_clock::now();
        latencies[static_cast<size_t>(r)].push_back(
            std::chrono::duration<double>(end - begin).count());
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();

  EXPECT_GT(writes.load(), 0u);
  EXPECT_EQ(server.stats().updates, writes.load());
  for (int r = 0; r < kReaders; ++r) {
    auto& lat = latencies[static_cast<size_t>(r)];
    ASSERT_EQ(lat.size(), static_cast<size_t>(kReadsEach));
    std::sort(lat.begin(), lat.end());
    // Admission p99 bound: generous (seconds) — the point is that readers
    // are never parked behind an unbounded writer stream, not a benchmark.
    EXPECT_LT(lat[static_cast<size_t>(kReadsEach * 99 / 100)], 5.0)
        << "reader " << r << " p99";
  }
  // The writer really did contend the whole time (values never repeat
  // back-to-back, so every write was effective).
  MvccStats stats = db.mvcc_stats();
  EXPECT_EQ(stats.updates_applied, writes.load());
}

}  // namespace
}  // namespace mpfdb
