// Unit + randomized differential tests for the Swiss-table hash layer and
// the CHD minimal-perfect-hash index (src/exec/hash_table.h). Every
// randomized case derives its seed through CaseSeed so MPFDB_TEST_SEED
// sweeps reach the DIB/backward-shift machinery, and the whole suite runs
// twice — SIMD and forced-scalar — to keep both probe loops honest.

#include "exec/hash_table.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "random_view.h"

namespace mpfdb::exec {
namespace {

// Value-parameterized over the probe implementation: false = SSE2 (when
// compiled in), true = forced scalar fallback.
class HashTableTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = ScalarHashProbesForced();
    SetForceScalarHashProbes(GetParam());
  }
  void TearDown() override { SetForceScalarHashProbes(saved_); }

 private:
  bool saved_ = false;
};

TEST_P(HashTableTest, InsertProbeErase) {
  SwissTable<int> table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(42), nullptr);

  auto [v1, fresh1] = table.FindOrInsert(42, 7);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(*v1, 7);
  auto [v2, fresh2] = table.FindOrInsert(42, 99);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(*v2, 7);
  *v2 = 11;
  EXPECT_EQ(*table.Find(42), 11);
  EXPECT_EQ(table.size(), 1u);

  EXPECT_TRUE(table.Erase(42));
  EXPECT_FALSE(table.Erase(42));
  EXPECT_EQ(table.Find(42), nullptr);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.ValidateInvariants());
}

TEST_P(HashTableTest, GrowthKeepsAllKeysAndInvariants) {
  const uint64_t seed = CaseSeed(1);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  SwissTable<uint64_t> table(4);
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    uint64_t key = rng() % 30000;
    uint64_t val = rng();
    auto [slot, fresh] = table.FindOrInsert(key, val);
    auto [it, ref_fresh] = ref.try_emplace(key, val);
    ASSERT_EQ(fresh, ref_fresh);
    ASSERT_EQ(*slot, it->second);
  }
  ASSERT_EQ(table.size(), ref.size());
  ASSERT_TRUE(table.ValidateInvariants());
  size_t seen = 0;
  table.ForEach([&](uint64_t key, const uint64_t& val) {
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(val, it->second);
    ++seen;
  });
  EXPECT_EQ(seen, ref.size());
}

TEST_P(HashTableTest, EraseBackwardShiftLeavesNoTombstones) {
  const uint64_t seed = CaseSeed(2);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  SwissTable<int> table;
  std::unordered_map<uint64_t, int> ref;
  // Mixed churn: the table repeatedly shrinks and refills, so any tombstone
  // scheme would accumulate dead slots; the DIB invariant plus the equal
  // capacity after churn prove backward-shift keeps the chains packed.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      uint64_t key = rng() % 500;
      table.FindOrInsert(key, round);
      ref.try_emplace(key, round);
    }
    for (int i = 0; i < 150; ++i) {
      uint64_t key = rng() % 500;
      ASSERT_EQ(table.Erase(key), ref.erase(key) > 0);
    }
    ASSERT_EQ(table.size(), ref.size());
    ASSERT_TRUE(table.ValidateInvariants());
  }
  for (const auto& [key, val] : ref) {
    int* found = table.Find(key);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(*found, val);
  }
  // 500 possible keys never need more than the 512-slot table the churn
  // peaks at; tombstone-based deletion would have forced growth long ago.
  EXPECT_LE(table.capacity(), 1024u);
}

TEST_P(HashTableTest, ReserveAvoidsRehash) {
  SwissTable<int> table;
  table.Reserve(10000);
  size_t cap = table.capacity();
  for (uint64_t i = 0; i < 10000; ++i) table.FindOrInsert(i, 1);
  EXPECT_EQ(table.capacity(), cap);
  EXPECT_TRUE(table.ValidateInvariants());
}

TEST_P(HashTableTest, AdversarialHomeCollisions) {
  // Keys engineered to share low hash bits stress the displacement logic:
  // every insert lands on an occupied home slot.
  SwissTable<uint64_t> table(16);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; keys.size() < 64; ++k) {
    if ((swiss::MixU64(k) >> 7) % 16 == 3) keys.push_back(k);
  }
  for (uint64_t k : keys) table.FindOrInsert(k, k * 2);
  ASSERT_TRUE(table.ValidateInvariants());
  for (uint64_t k : keys) {
    auto* v = table.Find(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k * 2);
  }
}

TEST_P(HashTableTest, RandomizedDifferentialVsStdUnorderedMap) {
  for (uint64_t c = 0; c < 4; ++c) {
    const uint64_t seed = CaseSeed(10 + c);
    MPFDB_TRACE_SEED(seed);
    std::mt19937_64 rng(seed);
    SwissTable<int64_t> table;
    std::unordered_map<uint64_t, int64_t> ref;
    for (int op = 0; op < 30000; ++op) {
      uint64_t key = rng() % 4096;
      switch (rng() % 4) {
        case 0:
        case 1: {
          int64_t val = static_cast<int64_t>(rng() % 1000);
          auto [slot, fresh] = table.FindOrInsert(key, val);
          auto [it, ref_fresh] = ref.try_emplace(key, val);
          ASSERT_EQ(fresh, ref_fresh);
          if (!fresh) {
            *slot += val;
            it->second += val;
          }
          break;
        }
        case 2: {
          int64_t* found = table.Find(key);
          auto it = ref.find(key);
          ASSERT_EQ(found != nullptr, it != ref.end());
          if (found != nullptr) {
            ASSERT_EQ(*found, it->second);
          }
          break;
        }
        case 3:
          ASSERT_EQ(table.Erase(key), ref.erase(key) > 0);
          break;
      }
    }
    ASSERT_EQ(table.size(), ref.size());
    ASSERT_TRUE(table.ValidateInvariants());
  }
}

TEST_P(HashTableTest, BytesTableInsertProbeErase) {
  SwissBytesTable<int> table;
  std::string a = "alpha", b = "beta";
  auto [v1, fresh1] = table.FindOrInsert(a.data(), a.size(), 1);
  EXPECT_TRUE(fresh1);
  auto [v2, fresh2] = table.FindOrInsert(b.data(), b.size(), 2);
  EXPECT_TRUE(fresh2);
  EXPECT_EQ(*v2, 2);
  EXPECT_EQ(*table.Find(a.data(), a.size()), 1);
  EXPECT_EQ(table.Find("gamma", 5), nullptr);
  EXPECT_TRUE(table.Erase(a.data(), a.size()));
  EXPECT_EQ(table.Find(a.data(), a.size()), nullptr);
  EXPECT_EQ(*table.Find(b.data(), b.size()), 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.ValidateInvariants());
}

TEST_P(HashTableTest, BytesTableArenaCompactsUnderChurn) {
  const uint64_t seed = CaseSeed(3);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  SwissBytesTable<int> table;
  // Plan-cache-style churn: insert/erase long string keys far beyond the
  // live set size. Without arena compaction the arena grows linearly with
  // the number of inserts (~6 MB here); with it, it stays near live bytes.
  for (int i = 0; i < 20000; ++i) {
    std::string key = "query-fingerprint-" + std::to_string(rng() % 64);
    key.resize(300, 'x');
    if (rng() % 2 == 0) {
      table.FindOrInsert(key.data(), key.size(), i);
    } else {
      table.Erase(key.data(), key.size());
    }
    ASSERT_TRUE(table.size() <= 64);
  }
  EXPECT_LE(table.arena_bytes(), 300u * 64 * 4);
  EXPECT_TRUE(table.ValidateInvariants());
}

TEST_P(HashTableTest, BytesTableRandomizedDifferential) {
  const uint64_t seed = CaseSeed(4);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  SwissBytesTable<int64_t> table;
  std::map<std::string, int64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    // Variable-length keys, including empty and embedded NULs.
    size_t len = rng() % 24;
    std::string key(len, '\0');
    for (auto& ch : key) ch = static_cast<char>(rng() % 7);
    switch (rng() % 3) {
      case 0: {
        int64_t val = static_cast<int64_t>(rng() % 100);
        auto [slot, fresh] = table.FindOrInsert(key.data(), key.size(), val);
        auto [it, ref_fresh] = ref.try_emplace(key, val);
        ASSERT_EQ(fresh, ref_fresh);
        ASSERT_EQ(*slot, it->second);
        break;
      }
      case 1: {
        int64_t* found = table.Find(key.data(), key.size());
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
      case 2:
        ASSERT_EQ(table.Erase(key.data(), key.size()), ref.erase(key) > 0);
        break;
    }
  }
  ASSERT_EQ(table.size(), ref.size());
  ASSERT_TRUE(table.ValidateInvariants());
  std::map<std::string, int64_t> drained;
  table.ForEach([&](const char* key, size_t len, const int64_t& val) {
    drained.emplace(std::string(key, len), val);
  });
  EXPECT_EQ(drained, ref);
}

INSTANTIATE_TEST_SUITE_P(ProbeImpl, HashTableTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Scalar" : "Simd";
                         });

TEST(HashTableDispatchTest, ScalarAndSimdScanAgree) {
  const uint64_t seed = CaseSeed(5);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  for (int c = 0; c < 1000; ++c) {
    uint8_t ctrl[swiss::kGroup];
    for (auto& b : ctrl) {
      b = (rng() % 3 == 0) ? swiss::kEmpty
                           : static_cast<uint8_t>(rng() & 0x7f);
    }
    uint8_t h2 = static_cast<uint8_t>(rng() & 0x7f);
    swiss::GroupMask scalar = swiss::ScanGroupScalar(ctrl, h2);
    swiss::GroupMask dispatched = swiss::ScanGroup(ctrl, h2);
    ASSERT_EQ(scalar.match, dispatched.match);
    ASSERT_EQ(scalar.empty, dispatched.empty);
  }
}

TEST(PerfectHashIndexTest, ExhaustiveProbeOverBuiltKeySet) {
  const uint64_t seed = CaseSeed(6);
  MPFDB_TRACE_SEED(seed);
  std::mt19937_64 rng(seed);
  for (size_t n : {0u, 1u, 2u, 7u, 100u, 5000u}) {
    std::unordered_map<uint64_t, size_t> ref;
    std::vector<uint64_t> keys;
    while (keys.size() < n) {
      uint64_t k = rng();
      if (ref.try_emplace(k, keys.size()).second) keys.push_back(k);
    }
    PerfectHashIndex index;
    ASSERT_TRUE(PerfectHashIndex::Build(keys, /*epoch=*/3, &index)) << n;
    EXPECT_EQ(index.size(), n);
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(index.Lookup(keys[i], 3), i);
    }
    // Absent keys miss (slot occupied by some other key fails the stored
    // key comparison).
    for (int probe = 0; probe < 1000; ++probe) {
      uint64_t k = rng();
      size_t got = index.Lookup(k, 3);
      auto it = ref.find(k);
      ASSERT_EQ(got, it == ref.end() ? PerfectHashIndex::kNotFound
                                     : it->second);
    }
  }
}

TEST(PerfectHashIndexTest, MinimalAndCollisionFree) {
  // Minimality: n keys occupy exactly slots [0, n) — every slot id returned
  // once. (Lookup returns build positions; the slot permutation underneath
  // is what's minimal, so probe every key and check the id set.)
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.push_back(i * 1000003 + 17);
  PerfectHashIndex index;
  ASSERT_TRUE(PerfectHashIndex::Build(keys, 1, &index));
  std::vector<bool> seen(keys.size(), false);
  for (uint64_t k : keys) {
    size_t id = index.Lookup(k, 1);
    ASSERT_LT(id, keys.size());
    ASSERT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(PerfectHashIndexTest, StaleEpochRejected) {
  std::vector<uint64_t> keys = {10, 20, 30};
  PerfectHashIndex index;
  ASSERT_TRUE(PerfectHashIndex::Build(keys, /*epoch=*/7, &index));
  EXPECT_EQ(index.Lookup(20, 7), 1u);
  EXPECT_EQ(index.Lookup(20, 8), PerfectHashIndex::kNotFound);
  EXPECT_EQ(index.Lookup(20, 6), PerfectHashIndex::kNotFound);
  EXPECT_EQ(index.epoch(), 7u);
}

TEST(PerfectHashIndexTest, DuplicateKeysFailBuild) {
  std::vector<uint64_t> keys = {1, 2, 3, 2};
  PerfectHashIndex index;
  EXPECT_FALSE(PerfectHashIndex::Build(keys, 0, &index));
}

TEST(PerfectHashIndexTest, DenseSequentialKeys) {
  // Packed keys from the codec are near-dense integers — the exact regime
  // the mixer must spread before bucketing.
  std::vector<uint64_t> keys(20000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  PerfectHashIndex index;
  ASSERT_TRUE(PerfectHashIndex::Build(keys, 2, &index));
  for (size_t i = 0; i < keys.size(); i += 97) {
    ASSERT_EQ(index.Lookup(keys[i], 2), i);
  }
  EXPECT_EQ(index.Lookup(keys.size() + 5, 2), PerfectHashIndex::kNotFound);
}

}  // namespace
}  // namespace mpfdb::exec
