// Approximate & anytime inference: dissociation bounds, the conditioned
// companion query, the Gibbs sampling backend, and Database::QueryApprox's
// anytime contract. The bracketing property — lower <= exact <= upper for
// every group — is checked across semirings and seeds on committed cyclic
// workloads; every sampled estimate must be bit-reproducible from its seed
// (the nightly determinism-audit CI leg replays these suites byte-for-byte).

#include <chrono>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/database.h"
#include "exec/gibbs.h"
#include "fr/algebra.h"
#include "opt/dissociate.h"
#include "random_view.h"
#include "util/query_context.h"
#include "workload/generators.h"

namespace mpfdb {
namespace {

// Rows of a result-style table keyed by their variable values.
std::map<std::vector<VarValue>, double> RowsOf(const Table& table) {
  std::map<std::vector<VarValue>, double> out;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.Row(i);
    out[std::vector<VarValue>(row.vars, row.vars + row.arity)] = row.measure;
  }
  return out;
}

// lower <= value <= upper with relative float slack (the bound queries fold
// in a different order than the exact one).
void ExpectBracketed(double lower, double value, double upper) {
  double slack =
      1e-9 * std::max({1.0, std::fabs(lower), std::fabs(value),
                       std::fabs(upper)});
  EXPECT_LE(lower, value + slack);
  EXPECT_LE(value, upper + slack);
}

// A small cyclic workload under `semiring`, hosted in a Database.
struct CycleFixture {
  Database db;
  workload::CycleSchema schema;
};

void MakeCycleFixture(uint64_t seed, const Semiring& semiring,
                      CycleFixture* fx) {
  workload::CycleParams params;
  params.num_vars = 4;
  params.domain_size = 6;
  params.density = 0.6;
  params.seed = seed;
  auto schema = workload::GenerateCycle(params, fx->db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  fx->schema = *schema;
  fx->schema.view.semiring = semiring;
  ASSERT_TRUE(fx->db.CreateMpfView(fx->schema.view).ok());
}

// --- dissociation pass ----------------------------------------------------

TEST(DissociateTest, DissocSplitsCyclicCoreAndSparesProtectedVars) {
  CycleFixture fx;
  MakeCycleFixture(101, Semiring::SumProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};
  auto split = opt::ChooseSplitVars(fx.schema.view, query, fx.db.catalog());
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_FALSE(split->empty());
  for (const auto& v : *split) EXPECT_NE(v, fx.schema.vars[0]);

  // Re-running the GYO simulation to a fixpoint means DissociateView's
  // rewritten hypergraph is acyclic: the FAQ planner should agree by
  // finding no multiway core (indirectly: the rewrite itself succeeds and
  // registers one copy per occurrence).
  auto dissoc = opt::DissociateView(fx.schema.view, query, fx.db.catalog(),
                                    *split);
  ASSERT_TRUE(dissoc.ok()) << dissoc.status();
  EXPECT_FALSE(dissoc->copy_vars.empty());
  for (const auto& copy : dissoc->copy_vars) {
    auto domain = dissoc->catalog.DomainSize(copy);
    ASSERT_TRUE(domain.ok());
    EXPECT_EQ(*domain, 6);
  }
  // Clones share row data and the view references them.
  EXPECT_NE(dissoc->view.name, fx.schema.view.name);
}

TEST(DissociateTest, DissocRejectsGroupVariableSplit) {
  CycleFixture fx;
  MakeCycleFixture(102, Semiring::SumProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};
  auto dissoc = opt::DissociateView(fx.schema.view, query, fx.db.catalog(),
                                    {fx.schema.vars[0]});
  ASSERT_FALSE(dissoc.ok());
  EXPECT_EQ(dissoc.status().code(), StatusCode::kInvalidArgument);
}

TEST(DissociateTest, DissocAcyclicViewNeedsNoSplit) {
  Database db;
  auto chain = workload::GenerateMatrixChain(workload::MatrixChainParams{},
                                             db.catalog());
  ASSERT_TRUE(chain.ok()) << chain.status();
  MpfQuerySpec query{{chain->vars.front(), chain->vars.back()}, {}};
  auto split = opt::ChooseSplitVars(chain->view, query, db.catalog());
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_TRUE(split->empty());
}

TEST(DissociateTest, DissocBoundSideFollowsAddMonotonicity) {
  EXPECT_EQ(opt::DissociatedBoundSide(Semiring::SumProduct()),
            opt::BoundSide::kUpper);
  EXPECT_EQ(opt::DissociatedBoundSide(Semiring::MaxSum()),
            opt::BoundSide::kUpper);
  EXPECT_EQ(opt::DissociatedBoundSide(Semiring::MaxProduct()),
            opt::BoundSide::kUpper);
  EXPECT_EQ(opt::DissociatedBoundSide(Semiring::BoolOrAnd()),
            opt::BoundSide::kUpper);
  EXPECT_EQ(opt::DissociatedBoundSide(Semiring::MinSum()),
            opt::BoundSide::kLower);
}

TEST(DissociateTest, DissocNegativeMeasureRejectedUnderSumProduct) {
  Database db;
  ASSERT_TRUE(db.catalog().RegisterVariable("a", 2).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("b", 2).ok());
  ASSERT_TRUE(db.catalog().RegisterVariable("c", 2).ok());
  struct Rel {
    std::string name, x, y;
  };
  for (const Rel& rel :
       {Rel{"t0", "a", "b"}, Rel{"t1", "b", "c"}, Rel{"t2", "c", "a"}}) {
    auto t =
        std::make_shared<Table>(rel.name, Schema({rel.x, rel.y}, "f"));
    for (VarValue i = 0; i < 2; ++i) {
      for (VarValue j = 0; j < 2; ++j) t->AppendRow({i, j}, 1.0);
    }
    ASSERT_TRUE(db.catalog().RegisterTable(t).ok());
  }
  // Poison one row of one relation.
  (*db.catalog().GetTable("t1"))->set_measure(0, -0.5);
  MpfViewDef view{"neg", {"t0", "t1", "t2"}, Semiring::SumProduct()};
  ASSERT_TRUE(db.CreateMpfView(view).ok());
  MpfQuerySpec query{{"a"}, {}};
  auto split = opt::ChooseSplitVars(view, query, db.catalog());
  ASSERT_TRUE(split.ok() && !split->empty());
  auto dissoc = opt::DissociateView(view, query, db.catalog(), *split);
  ASSERT_FALSE(dissoc.ok());
  EXPECT_EQ(dissoc.status().code(), StatusCode::kFailedPrecondition);

  auto approx = db.QueryApprox("neg", query);
  ASSERT_FALSE(approx.ok());
  EXPECT_EQ(approx.status().code(), StatusCode::kFailedPrecondition);
}

// --- bracketing property: every semiring x every seed ---------------------

struct BracketCase {
  uint64_t seed;
  SemiringKind kind;
};

class ApproxBracketTest : public ::testing::TestWithParam<BracketCase> {};

TEST_P(ApproxBracketTest, ApproxBoundsBracketExactOnCycle) {
  const uint64_t seed = CaseSeed(GetParam().seed);
  MPFDB_TRACE_SEED(seed);
  const Semiring semiring(GetParam().kind);
  CycleFixture fx;
  MakeCycleFixture(seed, semiring, &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};

  auto exact = fx.db.Query(fx.schema.view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();

  ApproxOptions options;
  options.eps = 1e-4;
  options.seed = seed;
  options.max_rounds = 8;
  auto approx = fx.db.QueryApprox(fx.schema.view.name, query, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_TRUE(approx->approximate);
  EXPECT_FALSE(approx->split_vars.empty());

  auto lower = RowsOf(*approx->lower);
  auto upper = RowsOf(*approx->upper);
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    RowView row = exact->table->Row(i);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    auto lo = lower.find(key);
    auto hi = upper.find(key);
    // A group of the exact answer must appear in the (superset) bound on
    // each side — the aligned maps share one key set.
    ASSERT_TRUE(lo != lower.end()) << "group missing from lower bound";
    ASSERT_TRUE(hi != upper.end()) << "group missing from upper bound";
    ExpectBracketed(lo->second, row.measure, hi->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SemiringsBySeeds, ApproxBracketTest,
    ::testing::Values(
        BracketCase{1, SemiringKind::kSumProduct},
        BracketCase{2, SemiringKind::kSumProduct},
        BracketCase{3, SemiringKind::kSumProduct},
        BracketCase{1, SemiringKind::kMinSum},
        BracketCase{2, SemiringKind::kMinSum},
        BracketCase{1, SemiringKind::kMaxSum},
        BracketCase{2, SemiringKind::kMaxSum},
        BracketCase{1, SemiringKind::kMaxProduct},
        BracketCase{2, SemiringKind::kMaxProduct},
        BracketCase{1, SemiringKind::kBoolOrAnd},
        BracketCase{2, SemiringKind::kBoolOrAnd},
        BracketCase{1, SemiringKind::kLogSumProduct},
        BracketCase{2, SemiringKind::kLogSumProduct}));

TEST(ApproxQueryTest, ApproxBoundsBracketExactOnGrid) {
  Database db;
  workload::GridParams params;
  params.rows = 2;
  params.cols = 3;
  params.domain_size = 3;
  auto schema = workload::GenerateGrid(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());
  MpfQuerySpec query{{schema->vars[0]}, {}};

  auto exact = db.Query(schema->view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();
  ApproxOptions options;
  options.seed = 5;
  options.max_rounds = 4;
  auto approx = db.QueryApprox(schema->view.name, query, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_TRUE(approx->approximate);
  auto lower = RowsOf(*approx->lower);
  auto upper = RowsOf(*approx->upper);
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    RowView row = exact->table->Row(i);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    ASSERT_TRUE(lower.count(key) && upper.count(key));
    ExpectBracketed(lower[key], row.measure, upper[key]);
  }
}

// --- QueryApprox contract -------------------------------------------------

TEST(ApproxQueryTest, ApproxAcyclicViewAnswersExactly) {
  Database db;
  auto chain = workload::GenerateMatrixChain(workload::MatrixChainParams{},
                                             db.catalog());
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_TRUE(db.CreateMpfView(chain->view).ok());
  MpfQuerySpec query{{chain->vars.front(), chain->vars.back()}, {}};

  auto exact = db.Query(chain->view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();
  auto approx = db.QueryApprox(chain->view.name, query);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_FALSE(approx->approximate);
  EXPECT_TRUE(approx->converged);
  EXPECT_TRUE(approx->split_vars.empty());
  EXPECT_EQ(approx->max_gap, 0.0);
  EXPECT_TRUE(fr::TablesEqual(*exact->table, *approx->estimate, 1e-12));
  EXPECT_TRUE(fr::TablesEqual(*exact->table, *approx->lower, 1e-12));
  EXPECT_TRUE(fr::TablesEqual(*exact->table, *approx->upper, 1e-12));
}

TEST(ApproxQueryTest, ApproxBoundsOnlyWhenSamplingDisabled) {
  CycleFixture fx;
  MakeCycleFixture(7, Semiring::SumProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};
  ApproxOptions options;
  options.eps = 0;  // unreachable: forces the sampling decision
  options.sampling = false;
  auto approx = fx.db.QueryApprox(fx.schema.view.name, query, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_TRUE(approx->approximate);
  EXPECT_EQ(approx->gibbs_rounds, 0u);
  EXPECT_EQ(approx->samples, 0u);
  ASSERT_NE(approx->estimate, nullptr);
}

TEST(ApproxQueryTest, GibbsSameSeedIsBitIdentical) {
  ApproxOptions options;
  options.eps = 1e-6;
  options.seed = 42;
  options.max_rounds = 6;
  std::vector<std::map<std::vector<VarValue>, double>> estimates;
  std::vector<uint64_t> samples;
  for (int run = 0; run < 2; ++run) {
    CycleFixture fx;
    MakeCycleFixture(11, Semiring::SumProduct(), &fx);
    MpfQuerySpec query{{fx.schema.vars[0]}, {}};
    auto approx = fx.db.QueryApprox(fx.schema.view.name, query, options);
    ASSERT_TRUE(approx.ok()) << approx.status();
    estimates.push_back(RowsOf(*approx->estimate));
    samples.push_back(approx->samples);
  }
  EXPECT_EQ(samples[0], samples[1]);
  ASSERT_EQ(estimates[0].size(), estimates[1].size());
  auto b = estimates[1].begin();
  for (const auto& [group, value] : estimates[0]) {
    EXPECT_EQ(group, b->first);
    // Bit-for-bit, not approximately: the determinism audit diffs hex
    // renderings of exactly these values.
    EXPECT_EQ(value, b->second);
    ++b;
  }
}

TEST(ApproxQueryTest, GibbsSeedZeroUsesExecOptionsSamplingSeed) {
  ApproxOptions explicit_seed;
  explicit_seed.eps = 1e-6;
  explicit_seed.seed = 77;
  explicit_seed.max_rounds = 4;
  ApproxOptions deferred = explicit_seed;
  deferred.seed = 0;

  std::map<std::vector<VarValue>, double> via_explicit, via_exec_options;
  {
    CycleFixture fx;
    MakeCycleFixture(12, Semiring::SumProduct(), &fx);
    MpfQuerySpec query{{fx.schema.vars[0]}, {}};
    auto approx =
        fx.db.QueryApprox(fx.schema.view.name, query, explicit_seed);
    ASSERT_TRUE(approx.ok()) << approx.status();
    via_explicit = RowsOf(*approx->estimate);
  }
  {
    CycleFixture fx;
    MakeCycleFixture(12, Semiring::SumProduct(), &fx);
    exec::ExecOptions eo;
    eo.sampling_seed = 77;
    fx.db.set_exec_options(eo);
    MpfQuerySpec query{{fx.schema.vars[0]}, {}};
    auto approx = fx.db.QueryApprox(fx.schema.view.name, query, deferred);
    ASSERT_TRUE(approx.ok()) << approx.status();
    via_exec_options = RowsOf(*approx->estimate);
  }
  EXPECT_EQ(via_explicit, via_exec_options);
}

TEST(ApproxQueryTest, GibbsEstimateConvergesToNormalizedExact) {
  // A dense 3-cycle with a tiny domain mixes fast; at a fixed seed the
  // visit-frequency estimate of the normalized marginal must land within
  // eps of the exact normalized answer.
  Database db;
  workload::CycleParams params;
  params.num_vars = 3;
  params.domain_size = 3;
  params.density = 1.0;
  params.seed = 31;
  auto schema = workload::GenerateCycle(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());
  MpfQuerySpec query{{schema->vars[0]}, {}};

  auto exact = db.Query(schema->view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();
  double total = 0;
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    total += exact->table->Row(i).measure;
  }
  ASSERT_GT(total, 0);

  ApproxOptions options;
  options.eps = 1e-4;
  options.seed = 9;
  options.max_rounds = 200;
  options.sweeps_per_round = 200;
  auto approx = db.QueryApprox(schema->view.name, query, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  ASSERT_GT(approx->gibbs_rounds, 0u);
  auto estimate = RowsOf(*approx->estimate);
  const double eps = 0.05;
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    RowView row = exact->table->Row(i);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    double normalized = row.measure / total;
    auto it = estimate.find(key);
    if (it == estimate.end()) {
      // A never-visited group must be negligible.
      EXPECT_LT(normalized, eps);
      continue;
    }
    EXPECT_NEAR(it->second, normalized, eps)
        << "group " << key[0] << " diverged";
  }
}

TEST(ApproxQueryTest, ApproxDeadlineMidSamplingDegradesToBestSoFar) {
  CycleFixture fx;
  MakeCycleFixture(21, Semiring::SumProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};

  auto exact = fx.db.Query(fx.schema.view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();

  // eps < 0 can never be met by gap or round delta, and the round budget is
  // effectively infinite — only the deadline can stop this query. The
  // bounds themselves complete in microseconds on this workload, so the
  // deadline must land mid-sampling.
  ApproxOptions options;
  options.eps = -1.0;
  options.seed = 3;
  options.max_rounds = size_t{1} << 40;
  QueryContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(200));
  auto approx = fx.db.QueryApprox(fx.schema.view.name, query, options,
                                  "cs+nonlinear", &ctx);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_TRUE(approx->deadline_hit);
  EXPECT_TRUE(approx->approximate);
  EXPECT_FALSE(approx->converged);

  // The degraded answer still carries valid bounds around the exact one.
  auto lower = RowsOf(*approx->lower);
  auto upper = RowsOf(*approx->upper);
  for (size_t i = 0; i < exact->table->NumRows(); ++i) {
    RowView row = exact->table->Row(i);
    std::vector<VarValue> key(row.vars, row.vars + row.arity);
    ASSERT_TRUE(lower.count(key) && upper.count(key));
    ExpectBracketed(lower[key], row.measure, upper[key]);
  }
}

TEST(ApproxQueryTest, ApproxExplainAnalyzeReportsGapAndSamples) {
  CycleFixture fx;
  MakeCycleFixture(23, Semiring::SumProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};
  ApproxOptions options;
  options.eps = 1e-6;
  options.seed = 2;
  options.max_rounds = 3;
  auto text =
      fx.db.ExplainAnalyzeApprox(fx.schema.view.name, query, options);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("-- split vars: ("), std::string::npos) << *text;
  EXPECT_NE(text->find("-- bound gap: max "), std::string::npos) << *text;
  EXPECT_NE(text->find("samples/sec="), std::string::npos) << *text;
  EXPECT_NE(text->find("-- lower bound ("), std::string::npos) << *text;
  EXPECT_NE(text->find("-- upper bound ("), std::string::npos) << *text;
}

TEST(ApproxQueryTest, ApproxUnknownViewIsNotFound) {
  Database db;
  auto approx = db.QueryApprox("nope", MpfQuerySpec{{}, {}});
  ASSERT_FALSE(approx.ok());
  EXPECT_EQ(approx.status().code(), StatusCode::kNotFound);
}

// --- GibbsEstimator unit behavior -----------------------------------------

TEST(GibbsEstimatorTest, GibbsPublishesOnlyAtRoundBoundaries) {
  CycleFixture fx;
  MakeCycleFixture(33, Semiring::MaxProduct(), &fx);
  MpfQuerySpec query{{fx.schema.vars[0]}, {}};
  exec::GibbsOptions options;
  options.seed = 4;
  options.sweeps_per_round = 32;
  options.burn_in_sweeps = 8;
  auto est = exec::GibbsEstimator::Create(fx.schema.view, query,
                                          fx.db.catalog(), options);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_EQ((*est)->rounds(), 0u);
  EXPECT_EQ((*est)->EstimateTable("e")->NumRows(), 0u);
  ASSERT_TRUE((*est)->RunRound().ok());
  EXPECT_EQ((*est)->rounds(), 1u);
  EXPECT_GT((*est)->samples(), 0u);
  EXPECT_GT((*est)->EstimateTable("e")->NumRows(), 0u);
}

TEST(GibbsEstimatorTest, GibbsIncumbentBoundsExactSelection) {
  // Under max_product the incumbent is a lower bound on the exact max and
  // only tightens; with enough sweeps on a dense tiny workload it reaches
  // the exact answer.
  Database db;
  workload::CycleParams params;
  params.num_vars = 3;
  params.domain_size = 3;
  params.density = 1.0;
  params.seed = 35;
  auto schema = workload::GenerateCycle(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  schema->view.semiring = Semiring::MaxProduct();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());
  MpfQuerySpec query{{schema->vars[0]}, {}};
  auto exact = db.Query(schema->view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();
  auto exact_rows = RowsOf(*exact->table);

  exec::GibbsOptions options;
  options.seed = 6;
  options.sweeps_per_round = 64;
  options.burn_in_sweeps = 0;
  auto est = exec::GibbsEstimator::Create(schema->view, query, db.catalog(),
                                          options);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_TRUE((*est)->IncumbentIsLowerBound());
  std::map<std::vector<VarValue>, double> prev;
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE((*est)->RunRound().ok());
    auto incumbent = RowsOf(*(*est)->IncumbentTable("inc"));
    for (const auto& [group, value] : incumbent) {
      auto e = exact_rows.find(group);
      ASSERT_TRUE(e != exact_rows.end());
      EXPECT_LE(value, e->second + 1e-9);
      auto p = prev.find(group);
      if (p != prev.end()) {
        EXPECT_GE(value, p->second) << "incumbent widened";
      }
    }
    prev = std::move(incumbent);
  }
}

TEST(GibbsEstimatorTest, GibbsSumIncumbentDedupsRevisitedStates) {
  // The sum-product incumbent folds each distinct assignment once; over a
  // long chain on a tiny state space it must stay a lower bound on the
  // exact total rather than growing with revisits.
  Database db;
  workload::CycleParams params;
  params.num_vars = 3;
  params.domain_size = 2;
  params.density = 1.0;
  params.seed = 36;
  auto schema = workload::GenerateCycle(params, db.catalog());
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(db.CreateMpfView(schema->view).ok());
  MpfQuerySpec query{{schema->vars[0]}, {}};
  auto exact = db.Query(schema->view.name, query);
  ASSERT_TRUE(exact.ok()) << exact.status();
  auto exact_rows = RowsOf(*exact->table);

  exec::GibbsOptions options;
  options.seed = 8;
  options.sweeps_per_round = 512;  // revisits every state many times over
  options.burn_in_sweeps = 0;
  auto est = exec::GibbsEstimator::Create(schema->view, query, db.catalog(),
                                          options);
  ASSERT_TRUE(est.ok()) << est.status();
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE((*est)->RunRound().ok());
  }
  auto incumbent = RowsOf(*(*est)->IncumbentTable("inc"));
  EXPECT_FALSE(incumbent.empty());
  for (const auto& [group, value] : incumbent) {
    auto e = exact_rows.find(group);
    ASSERT_TRUE(e != exact_rows.end());
    EXPECT_LE(value, e->second + 1e-9 * std::fabs(e->second));
  }
}

}  // namespace
}  // namespace mpfdb
