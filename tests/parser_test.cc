#include <gtest/gtest.h>

#include "parser/sql.h"
#include "parser/tokenizer.h"

namespace mpfdb::parser {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("select x, SUM(f) from v where y=3 group by x;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().text, "select");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(TokenizerTest, Numbers) {
  auto tokens = Tokenize("1 -2 3.5 -4.25 1e-3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "1");
  EXPECT_EQ((*tokens)[1].text, "-2");
  EXPECT_EQ((*tokens)[2].text, "3.5");
  EXPECT_EQ((*tokens)[3].text, "-4.25");
  EXPECT_EQ((*tokens)[4].text, "1e-3");
}

TEST(TokenizerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("select @").ok());
}

TEST(TokenCursorTest, KeywordMatchingIsCaseInsensitive) {
  auto tokens = Tokenize("SELECT foo");
  ASSERT_TRUE(tokens.ok());
  TokenCursor cursor(*tokens);
  EXPECT_TRUE(cursor.TryKeyword("select"));
  EXPECT_FALSE(cursor.TryKeyword("from"));
  EXPECT_TRUE(cursor.ExpectIdentifier().ok());
  EXPECT_TRUE(cursor.AtEnd());
}

class SqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<SqlSession>(db_);
    Run("create variable x domain 3");
    Run("create variable y domain 3");
    Run("create variable z domain 2");
    Run("create table t1 (x, y; f) key (x, y)");
    Run("create table t2 (y, z; f)");
    Run("insert into t1 values (0,0,1.0),(0,1,2.0),(1,0,3.0),(1,1,4.0),"
        "(2,0,5.0),(2,2,6.0)");
    Run("insert into t2 values (0,0,1.0),(0,1,2.0),(1,0,3.0),(1,1,0.5),"
        "(2,1,2.5)");
    Run("create mpfview v as select * from t1, t2");
  }

  SqlResult Run(const std::string& statement) {
    auto result = session_->Execute(statement);
    EXPECT_TRUE(result.ok()) << statement << " -> " << result.status();
    return result.ok() ? *result : SqlResult{};
  }

  Database db_;
  std::unique_ptr<SqlSession> session_;
};

TEST_F(SqlSessionTest, DdlAndDmlWork) {
  EXPECT_TRUE(db_.catalog().HasTable("t1"));
  EXPECT_TRUE(db_.catalog().HasTable("t2"));
  EXPECT_EQ(*db_.catalog().Cardinality("t1"), 6);
  EXPECT_EQ((*db_.catalog().GetTable("t1"))->key_vars(),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(db_.GetView("v").ok());
}

TEST_F(SqlSessionTest, BasicQuery) {
  SqlResult result = Run("select x, SUM(f) from v group by x");
  ASSERT_NE(result.table, nullptr);
  // x=0: rows (0,0)*t2(0,*) + (0,1)*t2(1,*): 1*(1+2) + 2*(3+0.5) = 10.
  EXPECT_EQ(result.table->Row(0).var(0), 0);
  EXPECT_DOUBLE_EQ(result.table->Row(0).measure, 10.0);
}

TEST_F(SqlSessionTest, WhereClauseAndOptimizerChoice) {
  SqlResult result = Run(
      "select z, SUM(f) from v where x=1 group by z using optimizer ve(deg) "
      "ext.");
  ASSERT_NE(result.table, nullptr);
  // x=1: t1 rows (1,0;3),(1,1;4); z=0: 3*1 + 4*3 = 15; z=1: 3*2 + 4*0.5 = 8.
  EXPECT_DOUBLE_EQ(result.table->Row(0).measure, 15.0);
  EXPECT_DOUBLE_EQ(result.table->Row(1).measure, 8.0);
}

TEST_F(SqlSessionTest, ExplainProducesPlanText) {
  SqlResult result = Run("explain select x, SUM(f) from v group by x");
  EXPECT_EQ(result.table, nullptr);
  EXPECT_NE(result.message.find("GroupBy"), std::string::npos);
}

TEST_F(SqlSessionTest, CreateTableAsSelect) {
  // The result of an MPF query is a functional relation (Section 2); it can
  // be materialized and joined into further views.
  Run("create table xz as select x, z, SUM(f) from v group by x, z");
  ASSERT_TRUE(db_.catalog().HasTable("xz"));
  TablePtr xz = *db_.catalog().GetTable("xz");
  EXPECT_TRUE(varset::SetEquals(xz->schema().variables(), {"x", "z"}));
  // The query variables are a key of the materialized result.
  EXPECT_TRUE(varset::SetEquals(xz->key_vars(), {"x", "z"}));

  // Use it as a subquery relation in a further MPF view.
  Run("create mpfview v2 as select * from xz, t1");
  SqlResult nested = Run("select z, SUM(f) from v2 group by z");
  ASSERT_NE(nested.table, nullptr);

  EXPECT_FALSE(
      session_->Execute("create table dup as select x, SUM(f) from nosuch "
                        "group by x")
          .ok());
}

TEST_F(SqlSessionTest, OrderByAndLimit) {
  SqlResult top = Run(
      "select x, SUM(f) from v group by x order by f desc limit 2");
  ASSERT_NE(top.table, nullptr);
  ASSERT_EQ(top.table->NumRows(), 2u);
  EXPECT_GE(top.table->measure(0), top.table->measure(1));

  SqlResult bottom =
      Run("select x, SUM(f) from v group by x order by f asc limit 1");
  ASSERT_EQ(bottom.table->NumRows(), 1u);
  // The ascending head is the minimum of the full result.
  SqlResult all = Run("select x, SUM(f) from v group by x");
  double min_measure = all.table->measure(0);
  for (size_t i = 1; i < all.table->NumRows(); ++i) {
    min_measure = std::min(min_measure, all.table->measure(i));
  }
  EXPECT_DOUBLE_EQ(bottom.table->measure(0), min_measure);

  SqlResult limited = Run("select x, SUM(f) from v group by x limit 0");
  EXPECT_EQ(limited.table->NumRows(), 0u);
  EXPECT_FALSE(
      session_->Execute("select x, SUM(f) from v group by x limit -3").ok());
}

TEST_F(SqlSessionTest, ExplainAnalyzeShowsActualRows) {
  SqlResult result =
      Run("explain analyze select x, SUM(f) from v group by x");
  EXPECT_EQ(result.table, nullptr);
  EXPECT_NE(result.message.find("actual="), std::string::npos);
  EXPECT_NE(result.message.find("est="), std::string::npos);
}

TEST_F(SqlSessionTest, CacheStatements) {
  Run("build cache on v");
  SqlResult result = Run("select y, SUM(f) from v group by y");
  SqlResult cached = Run("select y, SUM(f) from cache v group by y");
  ASSERT_NE(result.table, nullptr);
  ASSERT_NE(cached.table, nullptr);
  ASSERT_EQ(result.table->NumRows(), cached.table->NumRows());
  for (size_t i = 0; i < result.table->NumRows(); ++i) {
    EXPECT_NEAR(result.table->measure(i), cached.table->measure(i), 1e-9);
  }
}

TEST_F(SqlSessionTest, MinSumView) {
  Run("create mpfview vmin as select * from t1, t2 using min_sum");
  SqlResult result = Run("select x, MIN(f) from vmin group by x");
  ASSERT_NE(result.table, nullptr);
  // Min over x=0 chains: min over y,z of t1+t2: y=0: 1+min(1,2)=2;
  // y=1: 2+min(3,0.5)=2.5 -> overall 2.
  EXPECT_DOUBLE_EQ(result.table->Row(0).measure, 2.0);
}

TEST_F(SqlSessionTest, ErrorsAreReported) {
  EXPECT_FALSE(session_->Execute("drop table t1").ok());
  EXPECT_FALSE(session_->Execute("create gizmo g").ok());
  EXPECT_FALSE(session_->Execute("select x, AVG(f) from v group by x").ok());
  EXPECT_FALSE(session_->Execute("select x, MIN(f) from v group by x").ok());
  EXPECT_FALSE(
      session_->Execute("select x, SUM(f) from v group by x trailing").ok());
  EXPECT_FALSE(
      session_->Execute("select y, SUM(f) from v group by x").ok());
  EXPECT_FALSE(session_->Execute("insert into t1 values (9,0,1.0)").ok());
  EXPECT_FALSE(session_->Execute("insert into missing values (0,1.0)").ok());
  EXPECT_FALSE(session_->Execute("create variable x domain 99").ok());
}

TEST_F(SqlSessionTest, DropAndShowStatements) {
  SqlResult tables = Run("show tables");
  EXPECT_NE(tables.message.find("t1"), std::string::npos);
  EXPECT_NE(tables.message.find("t2"), std::string::npos);
  SqlResult views = Run("show views");
  EXPECT_NE(views.message.find("v"), std::string::npos);
  EXPECT_NE(views.message.find("sum_product"), std::string::npos);

  // Cannot drop a table a view references.
  EXPECT_FALSE(session_->Execute("drop table t1").ok());
  Run("drop mpfview v");
  Run("drop table t1");
  EXPECT_FALSE(db_.catalog().HasTable("t1"));
  EXPECT_FALSE(session_->Execute("drop table t1").ok());
  EXPECT_FALSE(session_->Execute("drop mpfview v").ok());
  EXPECT_FALSE(session_->Execute("drop gizmo g").ok());
  EXPECT_FALSE(session_->Execute("show gizmos").ok());
}

TEST_F(SqlSessionTest, TableWithoutSemicolonSchema) {
  Run("create variable w domain 2");
  // Last column becomes the measure when ';' is omitted.
  Run("create table t3 (w, g)");
  TablePtr t3 = *db_.catalog().GetTable("t3");
  EXPECT_EQ(t3->schema().variables(), (std::vector<std::string>{"w"}));
  EXPECT_EQ(t3->schema().measure_name(), "g");
}

}  // namespace
}  // namespace mpfdb::parser
