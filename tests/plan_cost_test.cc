// Tests of the plan layer (PlanBuilder annotations, plan-shape helpers,
// EXPLAIN rendering) and of both cost models.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "plan/plan.h"

namespace mpfdb {
namespace {

class PlanBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.RegisterVariable("x", 10).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("y", 20).ok());
    ASSERT_TRUE(catalog_.RegisterVariable("z", 5).ok());
    auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
    auto b = std::make_shared<Table>("b", Schema({"y", "z"}, "f"));
    for (int i = 0; i < 100; ++i) a->AppendRow({i % 10, i % 20}, 1.0);
    for (int i = 0; i < 40; ++i) b->AppendRow({i % 20, i % 5}, 1.0);
    ASSERT_TRUE(catalog_.RegisterTable(a).ok());
    ASSERT_TRUE(catalog_.RegisterTable(b).ok());
  }

  Catalog catalog_;
  SimpleCostModel cost_model_;
};

TEST_F(PlanBuilderTest, ScanAnnotations) {
  PlanBuilder builder(catalog_, cost_model_);
  auto scan = builder.Scan("a");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->kind, PlanNodeKind::kScan);
  EXPECT_EQ((*scan)->est_card, 100);
  EXPECT_EQ((*scan)->est_cost, 100);  // SimpleCostModel charges |R| per scan
  EXPECT_EQ((*scan)->output_vars, (std::vector<std::string>{"x", "y"}));
  EXPECT_FALSE(builder.Scan("nope").ok());
}

TEST_F(PlanBuilderTest, SelectReducesCardinality) {
  PlanBuilder builder(catalog_, cost_model_);
  auto scan = builder.Scan("a");
  auto select = builder.Select(*scan, "x", 3);
  ASSERT_TRUE(select.ok());
  EXPECT_DOUBLE_EQ((*select)->est_card, 10.0);  // 100 / |x|=10
  EXPECT_GT((*select)->est_cost, (*scan)->est_cost);
  EXPECT_FALSE(builder.Select(*scan, "z", 0).ok());  // z not in a
  EXPECT_FALSE(builder.Select(nullptr, "x", 0).ok());
}

TEST_F(PlanBuilderTest, JoinEstimates) {
  PlanBuilder builder(catalog_, cost_model_);
  auto a = builder.Scan("a");
  auto b = builder.Scan("b");
  auto join = builder.Join(*a, *b);
  ASSERT_TRUE(join.ok());
  // Independence: 100 * 40 / |y|=20 = 200, below the domain cap 10*20*5.
  EXPECT_DOUBLE_EQ((*join)->est_card, 200.0);
  // Cost adds |L||R| to the children's costs.
  EXPECT_DOUBLE_EQ((*join)->est_cost, 100 + 40 + 100.0 * 40.0);
  EXPECT_EQ((*join)->output_vars, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_FALSE(builder.Join(*a, nullptr).ok());
}

TEST_F(PlanBuilderTest, JoinCardinalityCappedByDomainProduct) {
  // Join with no shared vars: independence gives 100*40 = 4000, but the
  // output domain product is 10*20*20*5 = 20000 -> no cap; shrink domains to
  // force the cap instead.
  Catalog small;
  ASSERT_TRUE(small.RegisterVariable("u", 2).ok());
  ASSERT_TRUE(small.RegisterVariable("v", 2).ok());
  auto t1 = std::make_shared<Table>("t1", Schema({"u"}, "f"));
  auto t2 = std::make_shared<Table>("t2", Schema({"v"}, "f"));
  for (int i = 0; i < 2; ++i) {
    t1->AppendRow({i}, 1.0);
    t2->AppendRow({i}, 1.0);
  }
  ASSERT_TRUE(small.RegisterTable(t1).ok());
  ASSERT_TRUE(small.RegisterTable(t2).ok());
  PlanBuilder builder(small, cost_model_);
  auto join = builder.Join(*builder.Scan("t1"), *builder.Scan("t2"));
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ((*join)->est_card, 4.0);  // capped at 2*2
}

TEST_F(PlanBuilderTest, GroupByEstimates) {
  PlanBuilder builder(catalog_, cost_model_);
  auto scan = builder.Scan("a");
  auto groupby = builder.GroupBy(*scan, {"x"});
  ASSERT_TRUE(groupby.ok());
  EXPECT_DOUBLE_EQ((*groupby)->est_card, 10.0);  // min(100, |x|)
  EXPECT_EQ((*groupby)->output_vars, (std::vector<std::string>{"x"}));
  EXPECT_FALSE(builder.GroupBy(*scan, {"z"}).ok());
}

TEST_F(PlanBuilderTest, ProjectKeepsCardinality) {
  PlanBuilder builder(catalog_, cost_model_);
  auto scan = builder.Scan("a");
  auto project = builder.Project(*scan, {"x"});
  ASSERT_TRUE(project.ok());
  EXPECT_DOUBLE_EQ((*project)->est_card, 100.0);
  EXPECT_FALSE(builder.Project(*scan, {"z"}).ok());
}

TEST_F(PlanBuilderTest, PlanShapeHelpers) {
  PlanBuilder builder(catalog_, cost_model_);
  auto a = builder.Scan("a");
  auto b = builder.Scan("b");
  auto linear = builder.Join(*builder.Join(*a, *b), *a);
  ASSERT_TRUE(linear.ok());
  EXPECT_TRUE((*linear)->IsLinear());
  EXPECT_EQ((*linear)->JoinCount(), 2);
  EXPECT_EQ((*linear)->GroupByCount(), 0);
  EXPECT_EQ((*linear)->BaseTables(),
            (std::vector<std::string>{"a", "b", "a"}));

  auto bushy = builder.Join(*builder.Join(*a, *b), *builder.Join(*b, *a));
  ASSERT_TRUE(bushy.ok());
  EXPECT_FALSE((*bushy)->IsLinear());
  EXPECT_EQ((*bushy)->JoinCount(), 3);
}

TEST_F(PlanBuilderTest, ExplainAndSignature) {
  PlanBuilder builder(catalog_, cost_model_);
  auto a = builder.Scan("a");
  auto select = builder.Select(*a, "x", 1);
  auto groupby = builder.GroupBy(*select, {"y"});
  auto filtered =
      builder.MeasureFilter(*groupby, HavingClause{CompareOp::kLt, 5.0});
  ASSERT_TRUE(filtered.ok());
  std::string explain = ExplainPlan(**filtered);
  EXPECT_NE(explain.find("Scan(a)"), std::string::npos);
  EXPECT_NE(explain.find("Select(x=1)"), std::string::npos);
  EXPECT_NE(explain.find("GroupBy{y}"), std::string::npos);
  EXPECT_NE(explain.find("MeasureFilter(f < 5)"), std::string::npos);
  EXPECT_EQ(PlanSignature(**filtered),
            "MeasureFilter{<5}(GroupBy{y}(Select{x=1}(Scan(a))))");
}

TEST(CompareOpTest, SymbolsAndEval) {
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGe), ">=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kNe), "<>");
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, 1, 2));
  EXPECT_FALSE(EvalCompare(CompareOp::kLt, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kGt, 3, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kGe, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, 1, 2));
}

TEST(SimpleCostModelTest, PaperFormulas) {
  SimpleCostModel model;
  EXPECT_DOUBLE_EQ(model.JoinCost(100, 50), 5000.0);
  EXPECT_DOUBLE_EQ(model.GroupByCost(8), 8 * 3.0);  // n log2 n
  EXPECT_DOUBLE_EQ(model.ScanCost(42), 42.0);
  EXPECT_DOUBLE_EQ(model.SelectCost(42), 42.0);
  // Degenerate inputs stay sane.
  EXPECT_GE(model.GroupByCost(1), 0.0);
  EXPECT_GE(model.GroupByCost(0), 0.0);
}

TEST(PageCostModelTest, PageRounding) {
  PageCostModel model(100.0);
  EXPECT_DOUBLE_EQ(model.ScanCost(1), 1.0);    // min one page
  EXPECT_DOUBLE_EQ(model.ScanCost(100), 1.0);
  EXPECT_DOUBLE_EQ(model.ScanCost(101), 2.0);
  // Hash join: both inputs plus 2x build side.
  EXPECT_DOUBLE_EQ(model.JoinCost(1000, 100), 10 + 1 + 2 * 1);
  EXPECT_GT(model.GroupByCost(100000), model.GroupByCost(1000));
}

TEST(CostModelTest, MonotoneInInputSize) {
  SimpleCostModel simple;
  PageCostModel page;
  for (double small = 10; small < 1e6; small *= 10) {
    double big = small * 10;
    EXPECT_LE(simple.JoinCost(small, small), simple.JoinCost(big, big));
    EXPECT_LE(simple.GroupByCost(small), simple.GroupByCost(big));
    EXPECT_LE(page.JoinCost(small, small), page.JoinCost(big, big));
    EXPECT_LE(page.GroupByCost(small), page.GroupByCost(big));
  }
}

TEST(MpfViewDefTest, AllVariables) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterVariable("x", 2).ok());
  ASSERT_TRUE(catalog.RegisterVariable("y", 2).ok());
  auto a = std::make_shared<Table>("a", Schema({"x", "y"}, "f"));
  auto b = std::make_shared<Table>("b", Schema({"y"}, "f"));
  ASSERT_TRUE(catalog.RegisterTable(a).ok());
  ASSERT_TRUE(catalog.RegisterTable(b).ok());
  MpfViewDef view{"v", {"a", "b"}, Semiring::SumProduct()};
  auto vars = view.AllVariables(catalog);
  ASSERT_TRUE(vars.ok());
  EXPECT_EQ(*vars, (std::vector<std::string>{"x", "y"}));
  MpfViewDef bad{"v", {"missing"}, Semiring::SumProduct()};
  EXPECT_FALSE(bad.AllVariables(catalog).ok());
}

TEST(MpfQuerySpecTest, ToStringFormats) {
  MpfViewDef view{"v", {}, Semiring::MinSum()};
  MpfQuerySpec query{{"a", "b"}, {{"c", 3}}};
  query.having = HavingClause{CompareOp::kLt, 7.5};
  EXPECT_EQ(query.ToString(view),
            "select a, b, MIN(f) from v where c=3 group by a, b having f < 7.5");
}

}  // namespace
}  // namespace mpfdb
