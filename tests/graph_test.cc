#include <gtest/gtest.h>

#include "graph/junction_tree.h"
#include "graph/variable_graph.h"
#include "storage/schema.h"

namespace mpfdb::graph {
namespace {

// The paper's supply-chain schema (Figure 1): contracts(pid,sid),
// warehouses(wid,cid), transporters(tid), location(pid,wid), ctdeals(cid,tid).
std::vector<std::vector<std::string>> SupplyChainVars() {
  return {{"pid", "sid"}, {"wid", "cid"}, {"tid"}, {"pid", "wid"}, {"cid", "tid"}};
}

// The cyclic extension with stdeals(sid, tid) (appendix, Figure 12).
std::vector<std::vector<std::string>> CyclicSupplyChainVars() {
  auto vars = SupplyChainVars();
  vars.push_back({"sid", "tid"});
  return vars;
}

TEST(VariableGraphTest, FromSchemaBuildsCooccurrenceEdges) {
  VariableGraph g = VariableGraph::FromSchema(SupplyChainVars());
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_TRUE(g.HasEdge("pid", "sid"));
  EXPECT_TRUE(g.HasEdge("pid", "wid"));
  EXPECT_TRUE(g.HasEdge("wid", "cid"));
  EXPECT_TRUE(g.HasEdge("cid", "tid"));
  EXPECT_FALSE(g.HasEdge("sid", "tid"));
  EXPECT_FALSE(g.HasEdge("pid", "cid"));
  EXPECT_EQ(g.NumEdges(), 4u);
}

TEST(VariableGraphTest, AcyclicSupplyChainIsChordal) {
  // Figure 13: the variable graph of the original schema is chordal.
  VariableGraph g = VariableGraph::FromSchema(SupplyChainVars());
  EXPECT_TRUE(g.IsChordal());
}

TEST(VariableGraphTest, CyclicSupplyChainIsNotChordal) {
  // Adding stdeals creates the chordless 5-cycle pid-sid-tid-cid-wid-pid
  // (the paper: "a cycle of length 5 that has no chord").
  VariableGraph g = VariableGraph::FromSchema(CyclicSupplyChainVars());
  EXPECT_FALSE(g.IsChordal());
}

TEST(VariableGraphTest, TriangulationMakesChordal) {
  VariableGraph g = VariableGraph::FromSchema(CyclicSupplyChainVars());
  // The paper's Figure 14 uses the vertex order tid, sid (then the rest).
  std::vector<std::pair<std::string, std::string>> fill;
  auto chordal = g.Triangulate({"tid", "sid", "pid", "wid", "cid"}, &fill);
  ASSERT_TRUE(chordal.ok()) << chordal.status();
  EXPECT_TRUE(chordal->IsChordal());
  EXPECT_FALSE(fill.empty());
  // Eliminating tid first connects its neighbors sid and cid.
  EXPECT_TRUE(chordal->HasEdge("sid", "cid"));
}

TEST(VariableGraphTest, TriangulateRejectsBadOrder) {
  VariableGraph g = VariableGraph::FromSchema(SupplyChainVars());
  EXPECT_FALSE(g.Triangulate({"pid"}).ok());
  EXPECT_FALSE(
      g.Triangulate({"pid", "sid", "wid", "cid", "bogus"}).ok());
}

TEST(VariableGraphTest, MinFillOnChordalGraphAddsNothing) {
  VariableGraph g = VariableGraph::FromSchema(SupplyChainVars());
  auto result = g.TriangulateMinFill();
  EXPECT_TRUE(result.fill_edges.empty());
  EXPECT_TRUE(result.chordal.IsChordal());
  EXPECT_EQ(result.order.size(), 5u);
}

TEST(VariableGraphTest, CyclesDetected) {
  // A 4-cycle without chord.
  VariableGraph g;
  g.AddEdge("a", "b");
  g.AddEdge("b", "c");
  g.AddEdge("c", "d");
  g.AddEdge("d", "a");
  EXPECT_FALSE(g.IsChordal());
  g.AddEdge("a", "c");
  EXPECT_TRUE(g.IsChordal());
}

TEST(VariableGraphTest, MaximalCliquesOfChordalGraph) {
  VariableGraph g = VariableGraph::FromSchema(SupplyChainVars());
  auto cliques = g.MaximalCliques();
  ASSERT_TRUE(cliques.ok()) << cliques.status();
  // The chain's maximal cliques are the relation schemas themselves (minus
  // the contained {tid}).
  EXPECT_EQ(cliques->size(), 4u);
}

TEST(VariableGraphTest, MaximalCliquesRejectsNonChordal) {
  VariableGraph g = VariableGraph::FromSchema(CyclicSupplyChainVars());
  EXPECT_FALSE(g.MaximalCliques().ok());
}

TEST(AcyclicSchemaTest, PaperExamples) {
  EXPECT_TRUE(IsAcyclicSchema(SupplyChainVars()));
  EXPECT_FALSE(IsAcyclicSchema(CyclicSupplyChainVars()));
}

TEST(AcyclicSchemaTest, EdgeCases) {
  EXPECT_TRUE(IsAcyclicSchema({}));
  EXPECT_TRUE(IsAcyclicSchema({{"a"}}));
  EXPECT_TRUE(IsAcyclicSchema({{"a", "b"}, {"b", "c"}}));
  // Classic triangle of pairwise-sharing relations is cyclic.
  EXPECT_FALSE(IsAcyclicSchema({{"a", "b"}, {"b", "c"}, {"c", "a"}}));
  // But adding the covering relation makes it acyclic.
  EXPECT_TRUE(
      IsAcyclicSchema({{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "b", "c"}}));
}

TEST(JoinTreeTest, MaxSpanningTreeSatisfiesRipOnAcyclicSchema) {
  JoinTree tree = MaxSpanningJoinTree(SupplyChainVars());
  EXPECT_EQ(tree.edges.size(), 4u);
  EXPECT_TRUE(SatisfiesRunningIntersection(tree));
}

TEST(JoinTreeTest, RipViolationDetected) {
  // Path a-b, b-c, with (a,c) shared var x placed badly: nodes {x,a},{b},{x,c}
  // chained through {b} violates RIP.
  JoinTree tree;
  tree.node_vars = {{"x", "a"}, {"b", "a", "c"}, {"x", "c"}};
  tree.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(SatisfiesRunningIntersection(tree));
}

TEST(JunctionTreeTest, AcyclicSchemaNeedsNoFill) {
  auto jt = BuildJunctionTree(SupplyChainVars());
  ASSERT_TRUE(jt.ok()) << jt.status();
  EXPECT_TRUE(jt->fill_edges.empty());
  EXPECT_TRUE(SatisfiesRunningIntersection(jt->tree));
  // Every relation is assigned to a clique covering it.
  auto vars = SupplyChainVars();
  for (size_t r = 0; r < vars.size(); ++r) {
    EXPECT_TRUE(mpfdb::varset::IsSubset(
        vars[r], jt->tree.node_vars[jt->assignment[r]]));
  }
}

TEST(JunctionTreeTest, CyclicSchemaGetsTriangulated) {
  auto jt = BuildJunctionTree(CyclicSupplyChainVars());
  ASSERT_TRUE(jt.ok()) << jt.status();
  EXPECT_FALSE(jt->fill_edges.empty());
  EXPECT_TRUE(SatisfiesRunningIntersection(jt->tree));
  auto vars = CyclicSupplyChainVars();
  for (size_t r = 0; r < vars.size(); ++r) {
    EXPECT_TRUE(mpfdb::varset::IsSubset(
        vars[r], jt->tree.node_vars[jt->assignment[r]]));
  }
}

TEST(JunctionTreeTest, PaperEliminationOrder) {
  // Figure 14's order tid, sid yields the junction tree of Figure 15 whose
  // cliques include {sid, cid, tid} (from eliminating tid) and {pid, sid,
  // wid, cid} territory from eliminating sid.
  auto jt = BuildJunctionTree(CyclicSupplyChainVars(),
                              {"tid", "sid", "pid", "wid", "cid"});
  ASSERT_TRUE(jt.ok()) << jt.status();
  bool found_sct = false;
  for (const auto& clique : jt->tree.node_vars) {
    if (mpfdb::varset::SetEquals(clique, {"sid", "cid", "tid"})) {
      found_sct = true;
    }
  }
  EXPECT_TRUE(found_sct);
}

TEST(JunctionTreeTest, EmptySchemaRejected) {
  EXPECT_FALSE(BuildJunctionTree({}).ok());
}

}  // namespace
}  // namespace mpfdb::graph
