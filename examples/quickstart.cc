// Quickstart: define functional relations, an MPF view, and run MPF queries
// through both the SQL frontend and the C++ API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/database.h"
#include "parser/sql.h"

namespace {

// Executes one statement and prints its outcome.
void Run(mpfdb::parser::SqlSession& session, const std::string& statement) {
  std::cout << "mpfdb> " << statement << "\n";
  auto result = session.Execute(statement);
  if (!result.ok()) {
    std::cout << "  ERROR: " << result.status() << "\n";
    return;
  }
  if (result->table != nullptr) {
    std::cout << result->table->ToString(10);
  } else {
    std::cout << "  " << result->message << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  mpfdb::Database db;
  mpfdb::parser::SqlSession session(db);

  std::cout << "== mpfdb quickstart ==\n\n"
            << "A functional relation stores a function: variable columns\n"
            << "plus one measure column the variables determine. An MPF view\n"
            << "is the product join of several functional relations, and an\n"
            << "MPF query aggregates it over a GROUP BY (the 'marginalize a\n"
            << "product function' problem).\n\n";

  // A two-hop shipping network: cost(src, mid) and cost(mid, dst).
  Run(session, "create variable src domain 3");
  Run(session, "create variable mid domain 2");
  Run(session, "create variable dst domain 3");
  Run(session, "create table leg1 (src, mid; cost)");
  Run(session, "create table leg2 (mid, dst; cost)");
  Run(session,
      "insert into leg1 values (0,0,4.0),(0,1,2.5),(1,0,1.0),(1,1,3.0),"
      "(2,0,2.0),(2,1,2.0)");
  Run(session,
      "insert into leg2 values (0,0,1.5),(0,1,4.0),(0,2,2.0),(1,0,3.5),"
      "(1,1,1.0),(1,2,5.0)");

  // Min-sum semiring: product join adds leg costs, the aggregate takes the
  // minimum -- i.e., cheapest route.
  Run(session, "create mpfview routes as select * from leg1, leg2 using min_sum");
  Run(session, "select src, dst, MIN(cost) from routes group by src, dst");
  Run(session, "select dst, MIN(cost) from routes where src=1 group by dst");

  // Sum-product semiring on the same tables: total flow-weighted cost mass.
  Run(session, "create mpfview volume as select * from leg1, leg2");
  Run(session, "select mid, SUM(cost) from volume group by mid");

  // EXPLAIN shows the optimized plan; USING OPTIMIZER picks the algorithm.
  Run(session,
      "explain select src, MIN(cost) from routes group by src using optimizer "
      "ve(deg) ext.");

  // The same query through the C++ API.
  mpfdb::MpfQuerySpec query{{"src"}, {}};
  auto result = db.Query("routes", query, "cs+nonlinear");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "C++ API result (cheapest route from each src):\n"
            << result->table->ToString() << "\n"
            << "planning took " << result->planning_seconds * 1e3
            << " ms, execution " << result->execution_seconds * 1e3 << " ms\n";
  return 0;
}
