// Interactive mpfdb shell: a line-oriented SQL REPL over the Database
// facade, with \save and \load for persistence. Reads statements from stdin
// (so it also works non-interactively: `./mpfdb_shell < script.sql`).
//
// Statements: see src/parser/sql.h. Meta-commands:
//   \tables            list tables
//   \views             list MPF views
//   \save <dir>        persist the database
//   \load <dir>        load a persisted database (into a fresh session)
//   \quit              exit

#include <iostream>
#include <string>

#include "core/database.h"
#include "core/persistence.h"
#include "parser/sql.h"
#include "util/strings.h"

int main() {
  auto db = std::make_unique<mpfdb::Database>();
  auto session = std::make_unique<mpfdb::parser::SqlSession>(*db);

  std::cout << "mpfdb shell — MPF queries over functional relations.\n"
            << "End statements with newline; \\quit exits.\n";

  std::string line;
  while (true) {
    std::cout << "mpfdb> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(mpfdb::StripWhitespace(line));
    if (trimmed.empty()) continue;

    if (trimmed[0] == '\\') {
      if (trimmed == "\\quit" || trimmed == "\\q") break;
      if (trimmed == "\\tables") {
        for (const auto& name : db->catalog().TableNames()) {
          auto table = *db->catalog().GetTable(name);
          std::cout << "  " << name << " " << table->schema().ToString()
                    << " [" << table->NumRows() << " rows]\n";
        }
        continue;
      }
      if (trimmed == "\\views") {
        for (const auto& name : db->ViewNames()) {
          const mpfdb::MpfViewDef* view = *db->GetView(name);
          std::cout << "  " << name << " over";
          for (const auto& rel : view->relations) std::cout << " " << rel;
          std::cout << " (" << view->semiring.name() << ")\n";
        }
        continue;
      }
      if (trimmed.rfind("\\save ", 0) == 0) {
        auto status = mpfdb::SaveDatabase(*db, trimmed.substr(6));
        std::cout << (status.ok() ? "saved" : status.ToString()) << "\n";
        continue;
      }
      if (trimmed.rfind("\\load ", 0) == 0) {
        auto fresh = std::make_unique<mpfdb::Database>();
        auto status = mpfdb::LoadDatabase(trimmed.substr(6), *fresh);
        if (status.ok()) {
          db = std::move(fresh);
          session = std::make_unique<mpfdb::parser::SqlSession>(*db);
          std::cout << "loaded\n";
        } else {
          std::cout << status << "\n";
        }
        continue;
      }
      std::cout << "unknown meta-command: " << trimmed << "\n";
      continue;
    }

    auto result = session->Execute(trimmed);
    if (!result.ok()) {
      std::cout << "ERROR: " << result.status() << "\n";
      continue;
    }
    if (result->table != nullptr) {
      std::cout << result->table->ToString(25);
    } else {
      std::cout << result->message << "\n";
    }
  }
  std::cout << "\n";
  return 0;
}
