// The paper's running decision-support scenario (Section 3): a supply-chain
// schema whose `invest` MPF view joins contracts, warehouses, transporters,
// location and ctdeals, with total investment as the measure. Demonstrates
// every optimizable MPF query form, the plan-linearity test of Section 5.1,
// and how different optimizers plan the same query.
//
//   ./build/examples/supply_chain [scale]   (default scale 0.01)

#include <cstdlib>
#include <iostream>

#include "core/database.h"
#include "opt/optimizer.h"
#include "workload/generators.h"

using mpfdb::Database;
using mpfdb::MpfQuerySpec;

namespace {

void RunAndShow(Database& db, const std::string& title,
                const MpfQuerySpec& query, const std::string& optimizer) {
  std::cout << "-- " << title << "\n";
  auto view = db.GetView("invest");
  std::cout << "   " << query.ToString(**view) << "   [" << optimizer << "]\n";
  auto result = db.Query("invest", query, optimizer);
  if (!result.ok()) {
    std::cout << "   ERROR: " << result.status() << "\n\n";
    return;
  }
  std::cout << result->table->ToString(5)
            << "   plan cost=" << result->plan->est_cost
            << "  planning=" << result->planning_seconds * 1e3
            << "ms  execution=" << result->execution_seconds * 1e3 << "ms\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  Database db;
  mpfdb::workload::SupplyChainParams params;
  params.scale = scale;
  auto schema = mpfdb::workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  if (auto s = db.CreateMpfView(schema->view); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  std::cout << "== supply-chain decision support (scale " << scale << ") ==\n";
  std::cout << "tables:";
  for (const auto& rel : schema->view.relations) {
    std::cout << " " << rel << "(" << *db.catalog().Cardinality(rel) << ")";
  }
  std::cout << "\n\n";

  // Section 3.1's query forms.
  RunAndShow(db, "Basic: minimum investment commitment per contractor",
             MpfQuerySpec{{"cid"}, {}}, "cs+nonlinear");
  RunAndShow(db, "Restricted answer: cost for warehouse 1 to go off-line",
             MpfQuerySpec{{"wid"}, {{"wid", 1}}}, "ve(deg) ext.");
  RunAndShow(db,
             "Constrained domain: per-contractor loss if transporter 0 "
             "goes off-line",
             MpfQuerySpec{{"cid"}, {{"tid", 0}}}, "ve(deg) ext.");
  RunAndShow(db, "Multi-variable grouping: investment per (cid, tid)",
             MpfQuerySpec{{"cid", "tid"}, {}}, "cs+nonlinear");

  // The Section 5.1 linearity test, as the Figure 7 experiment applies it.
  std::cout << "-- plan-linearity test (Eq. 1)\n";
  for (const std::string var : {"cid", "tid", "wid"}) {
    auto admissible = mpfdb::opt::LinearPlanAdmissible(schema->view, var,
                                                       db.catalog());
    if (admissible.ok()) {
      std::cout << "   group-by " << var << ": linear plans "
                << (*admissible ? "admissible" : "NOT admissible — use "
                                                 "nonlinear search")
                << "\n";
    }
  }
  std::cout << "\n";

  // Same query, three optimizers: compare the plans.
  for (const std::string optimizer : {"cs", "cs+", "ve(deg) ext."}) {
    auto text = db.Explain("invest", MpfQuerySpec{{"wid"}, {}}, optimizer);
    if (text.ok()) std::cout << *text << "\n";
  }
  return 0;
}
