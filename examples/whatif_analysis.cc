// Hypothetical ("what-if") decision support — the Alternate-measure and
// Alternate-domain query forms the paper lists as future work (Section 3.1),
// plus MPE inference over the max-product semiring.
//
//   ./build/examples/whatif_analysis

#include <iostream>

#include "bn/bayes_net.h"
#include "bn/inference.h"
#include "core/database.h"
#include "workload/generators.h"

using mpfdb::Database;
using mpfdb::MpfQuerySpec;
using mpfdb::WhatIf;

int main() {
  Database db;
  mpfdb::workload::SupplyChainParams params;
  params.scale = 0.01;
  auto schema = mpfdb::workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  std::cout << "== what-if analysis on the supply chain ==\n\n";
  auto baseline = db.Query("invest", MpfQuerySpec{{"tid"}, {}});
  if (!baseline.ok()) return 1;
  std::cout << "baseline investment per transporter:\n"
            << baseline->table->ToString() << "\n";

  // Alternate measure: what if the first contractor-transporter deal's
  // discount improved to 0.5?
  mpfdb::TablePtr ctdeals = *db.catalog().GetTable("ctdeals");
  mpfdb::RowView deal = ctdeals->Row(0);
  WhatIf better_deal;
  better_deal.measure_updates.push_back(
      {"ctdeals", {{"cid", deal.var(0)}, {"tid", deal.var(1)}}, 0.5});
  auto hypothetical =
      db.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, better_deal);
  if (hypothetical.ok()) {
    std::cout << "what if deal (cid=" << deal.var(0) << ", tid=" << deal.var(1)
              << ") had discount 0.5 (was " << deal.measure << "):\n"
              << hypothetical->table->ToString() << "\n";
  }

  // Alternate domain: what if that deal moved to a different transporter?
  mpfdb::VarValue other = deal.var(1) == 0 ? 1 : 0;
  WhatIf transfer;
  transfer.domain_updates.push_back(
      {"ctdeals", {{"cid", deal.var(0)}, {"tid", deal.var(1)}}, "tid", other});
  auto transferred =
      db.QueryWhatIf("invest", MpfQuerySpec{{"tid"}, {}}, transfer);
  if (transferred.ok()) {
    std::cout << "what if that deal transferred to transporter " << other
              << ":\n"
              << transferred->table->ToString() << "\n";
  } else {
    std::cout << "transfer rejected: " << transferred.status() << "\n\n";
  }
  // The stored data is untouched either way.
  auto after = db.Query("invest", MpfQuerySpec{{"tid"}, {}});
  std::cout << "stored data unchanged: "
            << (after.ok() &&
                        after->table->measure(0) == baseline->table->measure(0)
                    ? "yes"
                    : "no")
            << "\n\n";

  // MPE over the max-product semiring: the single most likely world of a
  // small Bayesian network, as an MPF query.
  std::cout << "== MPE via max-product (same engine, different semiring) ==\n";
  mpfdb::Rng rng(9);
  auto bn = mpfdb::bn::ChainBayesNet(6, 3, rng);
  if (!bn.ok()) return 1;
  auto mpe = mpfdb::bn::MpeValue(*bn, {{"x0", 2}});
  auto assignment = mpfdb::bn::MpeAssignment(*bn, {{"x0", 2}});
  if (mpe.ok() && assignment.ok()) {
    std::cout << "max probability world given x0=2 has P = " << *mpe << "\n  ";
    for (const auto& [var, value] : *assignment) {
      std::cout << var << "=" << value << " ";
    }
    std::cout << "\n";
  }
  return 0;
}
