// Probabilistic inference as MPF queries (Section 4): builds the paper's
// Figure 2 Bayesian network, materializes its joint distribution as an MPF
// view of CPT functional relations, and answers inference tasks with plain
// MPF queries — including the paper's example Pr(C | A = 0). Also shows the
// estimation loop: sample the network, re-estimate CPTs from the counts
// relation, and compare.
//
//   ./build/examples/bayes_inference

#include <iostream>

#include "bn/bayes_net.h"
#include "core/database.h"
#include "fr/algebra.h"

using mpfdb::Database;
using mpfdb::MpfQuerySpec;
using mpfdb::Semiring;
using mpfdb::TablePtr;

namespace {

mpfdb::bn::BayesNet Figure2Network() {
  using mpfdb::Schema;
  using mpfdb::Table;
  auto cpt_a = std::make_shared<Table>("cpt_a", Schema({"a"}, "p"));
  cpt_a->AppendRow({0}, 0.6);
  cpt_a->AppendRow({1}, 0.4);
  auto cpt_b = std::make_shared<Table>("cpt_b", Schema({"a", "b"}, "p"));
  cpt_b->AppendRow({0, 0}, 0.7);
  cpt_b->AppendRow({0, 1}, 0.3);
  cpt_b->AppendRow({1, 0}, 0.2);
  cpt_b->AppendRow({1, 1}, 0.8);
  auto cpt_c = std::make_shared<Table>("cpt_c", Schema({"a", "c"}, "p"));
  cpt_c->AppendRow({0, 0}, 0.5);
  cpt_c->AppendRow({0, 1}, 0.5);
  cpt_c->AppendRow({1, 0}, 0.9);
  cpt_c->AppendRow({1, 1}, 0.1);
  auto cpt_d = std::make_shared<Table>("cpt_d", Schema({"b", "c", "d"}, "p"));
  cpt_d->AppendRow({0, 0, 0}, 0.1);
  cpt_d->AppendRow({0, 0, 1}, 0.9);
  cpt_d->AppendRow({0, 1, 0}, 0.4);
  cpt_d->AppendRow({0, 1, 1}, 0.6);
  cpt_d->AppendRow({1, 0, 0}, 0.35);
  cpt_d->AppendRow({1, 0, 1}, 0.65);
  cpt_d->AppendRow({1, 1, 0}, 0.8);
  cpt_d->AppendRow({1, 1, 1}, 0.2);
  mpfdb::bn::BayesNet bn;
  (void)bn.AddNode("a", 2, {}, cpt_a);
  (void)bn.AddNode("b", 2, {"a"}, cpt_b);
  (void)bn.AddNode("c", 2, {"a"}, cpt_c);
  (void)bn.AddNode("d", 2, {"b", "c"}, cpt_d);
  return bn;
}

// Runs P(query_var | evidence) as an MPF query and prints the distribution.
void Infer(Database& db, const std::string& view, const std::string& var,
           const std::vector<mpfdb::QuerySelection>& evidence) {
  MpfQuerySpec query{{var}, evidence};
  auto result = db.Query(view, query, "ve(deg) ext.");
  if (!result.ok()) {
    std::cout << "ERROR: " << result.status() << "\n";
    return;
  }
  TablePtr marginal = result->table;
  (void)mpfdb::fr::NormalizeMeasure(*marginal, Semiring::SumProduct());
  std::cout << "P(" << var;
  if (!evidence.empty()) {
    std::cout << " |";
    for (const auto& e : evidence) std::cout << " " << e.var << "=" << e.value;
  }
  std::cout << ") =";
  for (size_t i = 0; i < marginal->NumRows(); ++i) {
    std::cout << "  " << var << "=" << marginal->Row(i).var(0) << ": "
              << marginal->measure(i);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Bayesian inference as MPF queries (Figure 2 network) ==\n\n"
            << "Pr(A,B,C,D) = Pr(A) Pr(B|A) Pr(C|A) Pr(D|B,C), each factor a\n"
            << "functional relation; the joint is the MPF view over their\n"
            << "product join and every inference task is an MPF query.\n\n";

  mpfdb::bn::BayesNet bn = Figure2Network();
  Database db;
  auto view = bn.ToMpfView(db.catalog());
  if (!view.ok() || !db.CreateMpfView(*view).ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  // The paper's example: select C, SUM(p) from joint where A=0 group by C.
  Infer(db, view->name, "c", {{"a", 0}});
  Infer(db, view->name, "d", {});
  Infer(db, view->name, "a", {{"d", 1}});          // diagnostic reasoning
  Infer(db, view->name, "b", {{"d", 1}, {"c", 0}});

  std::cout << "\nplan for the paper's query (VE order mirrors variable "
               "elimination in a BN):\n";
  auto text =
      db.Explain(view->name, MpfQuerySpec{{"c"}, {{"a", 0}}}, "ve(deg)");
  if (text.ok()) std::cout << *text;

  // Estimation loop: sample, count, re-estimate (Section 4's "counts from
  // data are required to derive these estimates").
  std::cout << "\n== CPT estimation from sampled data ==\n";
  mpfdb::Rng rng(2024);
  auto samples = bn.Sample(50000, rng);
  if (!samples.ok()) return 1;
  std::cout << "drew 50000 ancestral samples ("
            << (*samples)->NumRows() << " distinct assignments)\n";

  mpfdb::bn::BayesNet structure;
  (void)structure.AddNode("a", 2, {});
  (void)structure.AddNode("b", 2, {"a"});
  (void)structure.AddNode("c", 2, {"a"});
  (void)structure.AddNode("d", 2, {"b", "c"});
  auto estimated = mpfdb::bn::EstimateCpts(structure, **samples, 1.0);
  if (!estimated.ok()) return 1;

  auto truth = bn.EnumerateMarginal({"d"}, {{"a", 0}});
  auto learned = estimated->EnumerateMarginal({"d"}, {{"a", 0}});
  if (truth.ok() && learned.ok()) {
    std::cout << "P(D=1 | A=0): true model " << (*truth)->measure(1)
              << " vs re-estimated " << (*learned)->measure(1) << "\n";
  }
  return 0;
}
