// MPF workload optimization (Section 6): builds the VE-cache for the
// supply-chain view — the materialized-view set produced by Algorithm 3 —
// and contrasts answering a workload of single-variable MPF queries from the
// cache against optimizing and executing each query from scratch.
//
//   ./build/examples/workload_cache [scale]   (default scale 0.01)

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/database.h"
#include "fr/algebra.h"
#include "workload/generators.h"
#include "workload/vecache.h"

using Clock = std::chrono::steady_clock;

namespace {

double Ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  mpfdb::Database db;
  mpfdb::workload::SupplyChainParams params;
  params.scale = scale;
  auto schema = mpfdb::workload::GenerateSupplyChain(params, db.catalog());
  if (!schema.ok() || !db.CreateMpfView(schema->view).ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  std::cout << "== VE-cache workload optimization (scale " << scale << ") ==\n\n";

  // The workload: every variable queried, some with restricted domains.
  std::vector<mpfdb::workload::WorkloadQuery> workload = {
      {{{"pid"}, {}}, 0.3},        {{{"wid"}, {}}, 0.2},
      {{{"cid"}, {}}, 0.2},        {{{"tid"}, {}}, 0.1},
      {{{"cid"}, {{"tid", 0}}}, 0.1}, {{{"wid"}, {{"cid", 1}}}, 0.1},
  };

  // Build the cache (Algorithm 3).
  auto build_start = Clock::now();
  auto cache = mpfdb::workload::VeCache::Build(schema->view, db.catalog());
  if (!cache.ok()) {
    std::cerr << cache.status() << "\n";
    return 1;
  }
  double build_ms = Ms(build_start);
  std::cout << "built " << cache->caches().size() << " cached tables ("
            << cache->TotalCacheRows() << " total rows) in " << build_ms
            << " ms; elimination order:";
  for (const auto& v : cache->elimination_order()) std::cout << " " << v;
  std::cout << "\ncached schemas:\n";
  for (const auto& t : cache->caches()) {
    std::cout << "  " << t->name() << " " << t->schema().ToString() << " ["
              << t->NumRows() << " rows]\n";
  }
  std::cout << "\n";

  // Answer the workload twice: from the cache and from scratch.
  double cache_ms = 0, scratch_ms = 0, expected_cache = 0, expected_scratch = 0;
  for (const auto& wq : workload) {
    auto t0 = Clock::now();
    auto from_cache = cache->Answer(wq.spec);
    double this_cache_ms = Ms(t0);

    auto t1 = Clock::now();
    auto from_scratch = db.Query("invest", wq.spec, "ve(deg) ext.");
    double this_scratch_ms = Ms(t1);

    if (!from_cache.ok() || !from_scratch.ok()) {
      std::cerr << "query failed\n";
      return 1;
    }
    bool agree =
        mpfdb::fr::TablesEqual(**from_cache, *from_scratch->table, 1e-6);
    std::cout << "  " << wq.spec.ToString(schema->view) << "\n    cache "
              << this_cache_ms << " ms vs scratch " << this_scratch_ms
              << " ms  (answers " << (agree ? "agree" : "DISAGREE") << ")\n";
    cache_ms += this_cache_ms;
    scratch_ms += this_scratch_ms;
    expected_cache += wq.probability * this_cache_ms;
    expected_scratch += wq.probability * this_scratch_ms;
  }

  std::cout << "\nworkload totals: cache " << cache_ms << " ms vs scratch "
            << scratch_ms << " ms\n"
            << "expected per-query cost (probability-weighted): cache "
            << expected_cache << " ms vs scratch " << expected_scratch
            << " ms\n"
            << "cache amortizes after ~"
            << (expected_scratch > expected_cache
                    ? build_ms / (expected_scratch - expected_cache)
                    : 0)
            << " queries\n";
  return 0;
}
