// Boolean-semiring MPF queries: graph reachability as marginalization over
// ({0,1}, OR, AND) — the "other pertinent allowable domain" Section 2 calls
// out. Edges are functional relations with measure 1; a k-hop reachability
// query is an MPF query over the product join of k edge relations, and the
// transitive closure is the fixpoint of CREATE TABLE AS SELECT iterations.
//
//   ./build/examples/reachability

#include <iostream>
#include <set>
#include <utility>

#include "core/database.h"
#include "fr/algebra.h"

using mpfdb::Database;
using mpfdb::MpfQuerySpec;
using mpfdb::Schema;
using mpfdb::Semiring;
using mpfdb::Table;
using mpfdb::TablePtr;

int main() {
  // A small directed graph over 6 nodes:
  //   0 -> 1 -> 2 -> 3,  1 -> 4,  5 isolated from the others' component.
  Database db;
  const int n = 6;
  for (const char* var : {"src", "mid", "dst"}) {
    if (!db.catalog().RegisterVariable(var, n).ok()) return 1;
  }
  auto edges1 = std::make_shared<Table>("edges1", Schema({"src", "mid"}, "e"));
  auto edges2 = std::make_shared<Table>("edges2", Schema({"mid", "dst"}, "e"));
  const std::vector<std::pair<int, int>> edge_list = {
      {0, 1}, {1, 2}, {2, 3}, {1, 4}, {4, 5}};
  for (const auto& [u, v] : edge_list) {
    edges1->AppendRow({u, v}, 1.0);
    edges2->AppendRow({u, v}, 1.0);
  }
  if (!db.CreateTable(edges1).ok() || !db.CreateTable(edges2).ok()) return 1;
  if (!db.CreateMpfView({"paths2", {"edges1", "edges2"},
                         Semiring::BoolOrAnd()})
           .ok()) {
    return 1;
  }

  std::cout << "== reachability over the boolean semiring ==\n\n"
            << "edges:";
  for (const auto& [u, v] : edge_list) std::cout << " " << u << "->" << v;
  std::cout << "\n\n";

  // Two-hop reachability: select src, dst, OR(e) from paths2 group by src,dst.
  auto two_hop = db.Query("paths2", MpfQuerySpec{{"src", "dst"}, {}});
  if (!two_hop.ok()) {
    std::cerr << two_hop.status() << "\n";
    return 1;
  }
  std::cout << "2-hop pairs (src, dst):";
  for (size_t i = 0; i < two_hop->table->NumRows(); ++i) {
    auto row = two_hop->table->Row(i);
    if (row.measure != 0.0) {
      std::cout << " (" << row.var(0) << "," << row.var(1) << ")";
    }
  }
  std::cout << "\n";

  // Transitive closure by squaring: R_{2k} = R_k ∘ R_k ∪ R_k, iterated with
  // the fr:: algebra until a fixpoint.
  Semiring boolean = Semiring::BoolOrAnd();
  TablePtr closure(edges1->Clone("closure"));  // (src, mid) pairs, 1 hop
  for (int round = 0; round < 4; ++round) {
    // compose: closure(src, mid) ⨝ step(mid, dst) -> (src, dst)
    TablePtr step(closure->Clone("step"));
    auto renamed = std::make_shared<Table>("step", Schema({"mid", "dst"}, "e"));
    for (size_t i = 0; i < step->NumRows(); ++i) {
      renamed->AppendRowRaw(step->Row(i).vars, step->Row(i).measure);
    }
    auto joined = mpfdb::fr::ProductJoin(*closure, *renamed, boolean, "j");
    if (!joined.ok()) return 1;
    auto composed =
        mpfdb::fr::Marginalize(**joined, {"src", "dst"}, boolean, "c");
    if (!composed.ok()) return 1;
    // Union with the current closure: rename (src,dst)->(src,mid) and merge.
    size_t before = closure->NumRows();
    auto merged = std::make_shared<Table>("closure", Schema({"src", "mid"}, "e"));
    std::set<std::pair<mpfdb::VarValue, mpfdb::VarValue>> seen;
    for (size_t i = 0; i < closure->NumRows(); ++i) {
      auto row = closure->Row(i);
      if (seen.insert({row.var(0), row.var(1)}).second) {
        merged->AppendRowRaw(row.vars, 1.0);
      }
    }
    for (size_t i = 0; i < (*composed)->NumRows(); ++i) {
      auto row = (*composed)->Row(i);
      if (row.measure != 0.0 && seen.insert({row.var(0), row.var(1)}).second) {
        merged->AppendRowRaw(row.vars, 1.0);
      }
    }
    closure = merged;
    if (closure->NumRows() == before) break;  // fixpoint
  }
  std::cout << "transitive closure:";
  for (size_t i = 0; i < closure->NumRows(); ++i) {
    auto row = closure->Row(i);
    std::cout << " (" << row.var(0) << "," << row.var(1) << ")";
  }
  std::cout << "\n\nSame data, same operators — only the semiring changed.\n";
  return 0;
}
