#ifndef MPFDB_EXEC_GIBBS_H_
#define MPFDB_EXEC_GIBBS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/query_context.h"
#include "util/rng.h"
#include "util/status.h"

namespace mpfdb::exec {

// Knobs of one Gibbs chain. The seed fully determines the sample stream
// (util::SplitMix64), so a fixed (seed, options, workload) triple is
// bit-reproducible — the determinism-audit CI leg depends on it.
struct GibbsOptions {
  uint64_t seed = 1;
  // Full-state sweeps per RunRound call; the estimate is only published at
  // round boundaries, so this is the anytime iterator's granularity.
  size_t sweeps_per_round = 64;
  // Sweeps discarded before visit counting starts (chain warm-up).
  size_t burn_in_sweeps = 64;
};

// Gibbs sampling over factor-graph state (Wick et al.'s MCMC-over-possible-
// worlds, specialized to one MPF view): the state is a full assignment of
// the view's variables (query selections pin theirs), and each sweep
// resamples every free variable from its conditional under the view's
// semiring — measures act as potentials (multiplicative for the product
// semirings, exponentiated for the additive ones, negated for kMinSum).
//
// Exposed as an *anytime iterator*: RunRound() advances the chain by a fixed
// number of sweeps and publishes a fresh estimate; a failed round (deadline,
// cancellation, via QueryContext::Poll once per sweep) leaves the previous
// round's published estimate fully intact, so callers never observe a torn
// estimate. What the estimate means depends on the semiring:
//
//  * kSumProduct / kLogSumProduct: the visit-frequency estimate of the
//    normalized marginal over the group variables (log-frequency for
//    kLogSumProduct). Bounds stay with the dissociation pass; the sampler
//    contributes the distribution's shape.
//  * kMaxProduct / kMaxSum / kMinSum / kBoolOrAnd: the per-group incumbent —
//    the semiring-Add fold of every valid full assignment's score seen so
//    far. Since Add only tightens (max/or upward, min downward), the
//    incumbent is a monotone non-widening bound on the exact answer
//    (IncumbentSide says which side).
class GibbsEstimator {
 public:
  // Validates the query, builds per-factor lookup tables (charged against
  // `ctx`'s memory budget when non-null), and constructs a deterministic
  // initial assignment. Fails kFailedPrecondition on negative measures under
  // kSumProduct (no probability reading) and kInvalidArgument on malformed
  // queries.
  static StatusOr<std::unique_ptr<GibbsEstimator>> Create(
      const MpfViewDef& view, const MpfQuerySpec& query, const Catalog& catalog,
      const GibbsOptions& options, QueryContext* ctx = nullptr);

  // Advances the chain by sweeps_per_round sweeps and publishes the updated
  // estimate. On a Poll failure (cancel / deadline / sticky doom) the round
  // is abandoned: the chain state is wherever the failure caught it, but
  // nothing published moves.
  Status RunRound();

  // The last published estimate as a result-style table (group variables +
  // measure column "f"), canonically sorted. Empty table before the first
  // completed post-burn-in round.
  TablePtr EstimateTable(const std::string& name) const;

  // The incumbent bound table (valid for every semiring; for the sum kinds
  // it is a lower bound on each group's unnormalized total — the fold runs
  // over *distinct* visited assignments, each of which contributes one term
  // of the exact sum). Groups without a valid visited assignment are absent.
  TablePtr IncumbentTable(const std::string& name) const;
  // Side of the exact answer IncumbentTable bounds: lower for every kind
  // except kMinSum (where a best-so-far cost only bounds from above).
  bool IncumbentIsLowerBound() const;

  // Completed (published) rounds.
  size_t rounds() const { return rounds_; }
  // Post-burn-in states recorded into the estimate.
  uint64_t samples() const { return samples_; }
  // Max absolute per-group movement of the published estimate in the most
  // recent completed round — the anytime convergence signal.
  double last_round_delta() const { return last_delta_; }

 private:
  struct FactorTable {
    std::vector<size_t> var_idx;       // global variable indices, schema order
    std::vector<uint64_t> stride;      // mixed-radix strides, same order
    std::unordered_map<uint64_t, double> rows;
  };

  GibbsEstimator(Semiring semiring, GibbsOptions options, QueryContext* ctx)
      : semiring_(semiring), options_(options), ctx_(ctx), rng_(options.seed) {}

  uint64_t FactorKey(const FactorTable& f) const;
  // Measure of factor `f` at the current state with variable `var` set to
  // `value`; false when the factor has no such row.
  bool FactorMeasureAt(const FactorTable& f, size_t var, VarValue value,
                       double* measure) const;
  void ResampleVariable(size_t var);
  // Multiply-fold of every factor at the current state; false when some
  // factor has no matching row (the state is outside the joint support).
  bool StateScore(double* score) const;
  void RecordState();
  std::map<std::vector<VarValue>, double> ComputeEstimate() const;
  TablePtr RenderTable(const std::string& name,
                       const std::map<std::vector<VarValue>, double>& groups) const;

  Semiring semiring_;
  GibbsOptions options_;
  QueryContext* ctx_;
  SplitMix64 rng_;
  MemoryGuard guard_;

  std::vector<std::string> var_names_;
  std::vector<int64_t> domains_;
  std::vector<bool> fixed_;
  std::vector<VarValue> state_;
  std::vector<size_t> group_idx_;  // group variables, query order
  std::vector<FactorTable> factors_;
  std::vector<std::vector<size_t>> factors_of_var_;

  // Chain statistics (live; mutated mid-round).
  uint64_t total_sweeps_ = 0;
  uint64_t samples_ = 0;
  std::map<std::vector<VarValue>, uint64_t> visits_;
  std::map<std::vector<VarValue>, double> incumbent_;
  // Sum kinds only: distinct full assignments already folded into the
  // incumbent (Add is not idempotent there, so revisits must not re-fold).
  // When the set hits the memory budget the incumbent freezes, staying a
  // valid — just no longer tightening — bound.
  std::set<std::vector<VarValue>> seen_states_;
  bool seen_states_saturated_ = false;
  // Scratch for ResampleVariable (avoids per-step allocation).
  std::vector<double> weight_scratch_;

  // Published at round boundaries only.
  size_t rounds_ = 0;
  double last_delta_ = 0;
  std::map<std::vector<VarValue>, double> published_estimate_;
  std::map<std::vector<VarValue>, double> published_incumbent_;
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_GIBBS_H_
