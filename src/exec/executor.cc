#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "exec/trie_join.h"
#include "util/strings.h"

namespace mpfdb::exec {
namespace {

// Bytes-per-row estimate used only to translate the query memory budget
// into cost-model pages; coarse on purpose (the hard admissibility rule —
// no sort operators under a finite budget — does the safety work, the page
// translation only shades hash-vs-hash comparisons).
constexpr double kPlannerBytesPerRow = 16.0;
constexpr double kPlannerRowsPerPage = 100.0;

// Transparent decorator measuring the rows/batches its child emits and the
// wall time spent inside the child's Open/Next/NextBatch (inclusive of the
// child's whole subtree). The wrapped operator additionally routes its
// MemoryGuard peaks and spill partition counts into the same record via
// set_stats. Deliberately does not forward SupportsMorselStreams: analyzed
// runs stay serial at decorated boundaries so the single-threaded stats
// spine needs no synchronization (results are bit-identical either way).
class StatsOperator : public PhysicalOperator {
 public:
  StatsOperator(OperatorPtr child, OperatorStats* record)
      : child_(std::move(child)), record_(record) {
    child_->set_stats(record_);
  }

  Status Open() override {
    Timer t(record_);
    return child_->Open();
  }
  StatusOr<bool> Next(Row* row) override {
    Timer t(record_);
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++record_->output_rows;
    return has;
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    Timer t(record_);
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (has) {
      record_->output_rows += batch->num_rows();
      ++record_->batches;
    }
    return has;
  }
  void Close() override { child_->Close(); }
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return child_->name(); }

 private:
  // Accumulates elapsed wall time into the record on scope exit.
  class Timer {
   public:
    explicit Timer(OperatorStats* record)
        : record_(record), start_(std::chrono::steady_clock::now()) {}
    ~Timer() {
      record_->wall_nanos += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }

   private:
    OperatorStats* record_;
    std::chrono::steady_clock::time_point start_;
  };

  OperatorPtr child_;
  OperatorStats* record_;
};

}  // namespace

StatusOr<std::unique_ptr<PhysicalPlanNode>> Executor::PlanPhysical(
    const PlanNode& plan, QueryContext* ctx) const {
  PhysicalPlannerOptions popts;
  popts.force_join = options_.join;
  popts.force_agg = options_.agg;
  popts.mph_indexes = options_.mph_indexes;
  popts.memory_limit = ctx != nullptr ? ctx->memory_limit() : 0;
  double memory_pages =
      popts.memory_limit == 0
          ? 1e18
          : static_cast<double>(popts.memory_limit) /
                (kPlannerRowsPerPage * kPlannerBytesPerRow);
  PageCostModel cost_model(kPlannerRowsPerPage, memory_pages);
  PhysicalPlanner planner(catalog_, cost_model, semiring_, popts);
  return planner.PlanTree(plan);
}

StatusOr<OperatorPtr> Executor::BuildNode(
    const PhysicalPlanNode& phys,
    std::map<const PlanNode*, OperatorStats>* stats) const {
  const PlanNode& plan = *phys.logical;
  OperatorPtr op;
  switch (phys.kind) {
    case PlanNodeKind::kScan: {
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(plan.table_name));
      op = std::make_unique<SeqScan>(std::move(table));
      break;
    }
    case PlanNodeKind::kIndexScan: {
      // Either a logical index scan or a Select(Scan) pair the physical
      // planner fused; in the fused case the table lives on the absorbed
      // scan child while the selection fields are on the Select node.
      const std::string& table_name =
          phys.index_fused ? plan.left->table_name : plan.table_name;
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(table_name));
      const HashIndex* index = catalog_.GetIndex(table_name, plan.select_var);
      if (index == nullptr) {
        return Status::FailedPrecondition("plan uses missing index on " +
                                          table_name + "(" + plan.select_var +
                                          ")");
      }
      op = std::make_unique<IndexScan>(std::move(table), index,
                                       plan.select_value);
      break;
    }
    case PlanNodeKind::kSelect: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*phys.left, stats));
      op = std::make_unique<Filter>(std::move(child), plan.select_var,
                                    plan.select_value);
      break;
    }
    case PlanNodeKind::kMeasureFilter: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*phys.left, stats));
      op = std::make_unique<MeasureFilter>(std::move(child), plan.having);
      break;
    }
    case PlanNodeKind::kProject: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*phys.left, stats));
      op = std::make_unique<StreamProject>(std::move(child), plan.group_vars);
      break;
    }
    case PlanNodeKind::kGroupBy: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*phys.left, stats));
      switch (phys.agg) {
        case AggAlgorithm::kSort:
          op = std::make_unique<SortMarginalize>(std::move(child),
                                                 plan.group_vars, semiring_,
                                                 phys.skip_sort_input);
          break;
        case AggAlgorithm::kAuto:
        case AggAlgorithm::kHash:
          op = std::make_unique<HashMarginalize>(
              std::move(child), plan.group_vars, semiring_,
              options_.packed_keys ? &catalog_ : nullptr, options_.hash_impl);
          break;
      }
      break;
    }
    case PlanNodeKind::kJoin: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr left, BuildNode(*phys.left, stats));
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr right, BuildNode(*phys.right, stats));
      switch (phys.join) {
        case JoinAlgorithm::kSortMerge:
          op = std::make_unique<SortMergeProductJoin>(
              std::move(left), std::move(right), semiring_,
              phys.skip_sort_left, phys.skip_sort_right);
          break;
        case JoinAlgorithm::kNestedLoop:
          op = std::make_unique<NestedLoopProductJoin>(
              std::move(left), std::move(right), semiring_);
          break;
        case JoinAlgorithm::kAuto:
        case JoinAlgorithm::kHash:
        case JoinAlgorithm::kLeapfrog:
          op = std::make_unique<HashProductJoin>(
              std::move(left), std::move(right), semiring_,
              options_.packed_keys ? &catalog_ : nullptr, options_.hash_impl,
              options_.mph_indexes);
          break;
      }
      break;
    }
    case PlanNodeKind::kMultiwayJoin: {
      std::vector<OperatorPtr> inputs;
      inputs.reserve(phys.children.size());
      for (const auto& child : phys.children) {
        MPFDB_ASSIGN_OR_RETURN(OperatorPtr input, BuildNode(*child, stats));
        inputs.push_back(std::move(input));
      }
      // output_vars doubles as the global variable order on multiway nodes.
      op = std::make_unique<TrieJoin>(std::move(inputs), plan.output_vars,
                                      semiring_);
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan node kind");
  if (stats != nullptr) {
    // std::map gives stable addresses, so the record can be handed to the
    // operator and the decorator while the map keeps growing.
    OperatorStats& record = (*stats)[phys.logical];
    op = std::make_unique<StatsOperator>(std::move(op), &record);
  }
  return op;
}

StatusOr<OperatorPtr> Executor::BuildPhysical(
    const PhysicalPlanNode& plan) const {
  return BuildNode(plan, nullptr);
}

StatusOr<OperatorPtr> Executor::BuildPhysical(const PlanNode& plan) const {
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> phys,
                         PlanPhysical(plan));
  return BuildNode(*phys, nullptr);
}

StatusOr<TablePtr> Executor::Execute(const PlanNode& plan,
                                     const std::string& result_name,
                                     QueryContext* ctx) const {
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlanNode> phys,
                         PlanPhysical(plan, ctx));
  return ExecutePhysical(*phys, result_name, ctx);
}

StatusOr<TablePtr> Executor::ExecutePhysical(const PhysicalPlanNode& plan,
                                             const std::string& result_name,
                                             QueryContext* ctx) const {
  MPFDB_ASSIGN_OR_RETURN(OperatorPtr root, BuildNode(plan, nullptr));
  if (ctx != nullptr) root->BindContext(ctx);
  MPFDB_ASSIGN_OR_RETURN(TablePtr result,
                         options_.vectorized
                             ? RunBatch(*root, result_name, ctx)
                             : Run(*root, result_name, ctx));
  std::vector<size_t> all(result->schema().arity());
  std::iota(all.begin(), all.end(), 0);
  result->SortByVariables(all);
  return result;
}

StatusOr<Executor::AnalyzedResult> Executor::ExecuteAnalyze(
    const PlanNode& plan, const std::string& result_name,
    QueryContext* ctx) const {
  AnalyzedResult analyzed;
  MPFDB_ASSIGN_OR_RETURN(analyzed.physical, PlanPhysical(plan, ctx));
  MPFDB_ASSIGN_OR_RETURN(OperatorPtr root,
                         BuildNode(*analyzed.physical, &analyzed.stats));
  // Bind a local ungoverned context when the caller supplied none, so the
  // operators' MemoryGuard charges flow and peak_bytes gets populated
  // (guards on a null context are no-ops). An empty QueryContext imposes no
  // budget or deadline, so execution semantics are unchanged.
  QueryContext local_ctx;
  root->BindContext(ctx != nullptr ? ctx : &local_ctx);
  MPFDB_ASSIGN_OR_RETURN(analyzed.table,
                         options_.vectorized
                             ? RunBatch(*root, result_name, ctx)
                             : Run(*root, result_name, ctx));
  std::vector<size_t> all(analyzed.table->schema().arity());
  std::iota(all.begin(), all.end(), 0);
  analyzed.table->SortByVariables(all);
  return analyzed;
}

namespace {

void ExplainAnalyzeRec(const PhysicalPlanNode& phys,
                       const std::map<const PlanNode*, OperatorStats>& stats,
                       int depth, std::ostringstream& os) {
  const PlanNode& node = *phys.logical;
  os << std::string(static_cast<size_t>(depth) * 2, ' ');
  switch (phys.kind) {
    case PlanNodeKind::kScan:
      os << "Scan(" << node.table_name << ")";
      break;
    case PlanNodeKind::kIndexScan: {
      const std::string& table =
          phys.index_fused ? node.left->table_name : node.table_name;
      os << "IndexScan(" << table << ", " << node.select_var << "="
         << node.select_value << ")";
      break;
    }
    case PlanNodeKind::kSelect:
      os << "Select(" << node.select_var << "=" << node.select_value << ")";
      break;
    case PlanNodeKind::kJoin:
      os << "ProductJoin(" << JoinAlgorithmName(phys.join) << ")";
      break;
    case PlanNodeKind::kMultiwayJoin:
      os << "MultiwayJoin[" << phys.children.size() << "]("
         << JoinAlgorithmName(phys.join) << ")";
      break;
    case PlanNodeKind::kGroupBy:
      os << "GroupBy{" << FormatVarList(node.group_vars) << "}("
         << AggAlgorithmName(phys.agg) << ")";
      break;
    case PlanNodeKind::kProject:
      os << "Project{" << FormatVarList(node.group_vars) << "}";
      break;
    case PlanNodeKind::kMeasureFilter:
      os << "MeasureFilter(f " << CompareOpSymbol(node.having.op) << " "
         << node.having.threshold << ")";
      break;
  }
  os << "  [est=" << node.est_card;
  auto it = stats.find(phys.logical);
  if (it != stats.end()) {
    const OperatorStats& s = it->second;
    os << " actual=" << s.output_rows;
    if (node.est_card > 0.0 && s.output_rows > 0) {
      double actual = static_cast<double>(s.output_rows);
      double q = std::max(node.est_card / actual, actual / node.est_card);
      os << " q=" << std::fixed << std::setprecision(2) << q
         << std::defaultfloat;
    }
    os << " cost=" << phys.total_cost << "]";
    os << " [batches=" << s.batches << " peak_bytes=" << s.peak_bytes
       << " spill_parts=" << s.spill_partitions
       << " wall_us=" << s.wall_nanos / 1000 << "]\n";
    if (!s.trie_vars.empty()) {
      // Per-variable trie-iterator counters, names left-aligned to the
      // widest variable so multi-character names line up in columns.
      size_t width = 0;
      for (const auto& tv : s.trie_vars) {
        width = std::max(width, tv.var.size());
      }
      for (const auto& tv : s.trie_vars) {
        os << std::string(static_cast<size_t>(depth) * 2 + 2, ' ') << "~ "
           << tv.var << std::string(width - tv.var.size(), ' ')
           << "  seeks=" << tv.seeks << " nexts=" << tv.nexts << "\n";
      }
    }
  } else {
    os << " cost=" << phys.total_cost << "]\n";
  }
  if (phys.left != nullptr) ExplainAnalyzeRec(*phys.left, stats, depth + 1, os);
  if (phys.right != nullptr) {
    ExplainAnalyzeRec(*phys.right, stats, depth + 1, os);
  }
  for (const auto& child : phys.children) {
    ExplainAnalyzeRec(*child, stats, depth + 1, os);
  }
}

}  // namespace

std::string ExplainAnalyzePlan(
    const PhysicalPlanNode& root,
    const std::map<const PlanNode*, OperatorStats>& stats) {
  std::ostringstream os;
  ExplainAnalyzeRec(root, stats, 0, os);
  return os.str();
}

}  // namespace mpfdb::exec
