#include "exec/executor.h"

#include <numeric>
#include <sstream>

#include "util/strings.h"

namespace mpfdb::exec {
namespace {

// Transparent decorator counting the rows its child emits.
class CountingOperator : public PhysicalOperator {
 public:
  CountingOperator(OperatorPtr child, std::shared_ptr<size_t> counter)
      : child_(std::move(child)), counter_(std::move(counter)) {}

  Status Open() override { return child_->Open(); }
  StatusOr<bool> Next(Row* row) override {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++*counter_;
    return has;
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (has) *counter_ += batch->num_rows();
    return has;
  }
  void Close() override { child_->Close(); }
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return child_->name(); }

 private:
  OperatorPtr child_;
  std::shared_ptr<size_t> counter_;
};

}  // namespace

StatusOr<OperatorPtr> Executor::BuildNode(
    const PlanNode& plan,
    std::map<const PlanNode*, std::shared_ptr<size_t>>* counters) const {
  OperatorPtr op;
  switch (plan.kind) {
    case PlanNodeKind::kScan: {
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(plan.table_name));
      op = std::make_unique<SeqScan>(std::move(table));
      break;
    }
    case PlanNodeKind::kIndexScan: {
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog_.GetTable(plan.table_name));
      const HashIndex* index =
          catalog_.GetIndex(plan.table_name, plan.select_var);
      if (index == nullptr) {
        return Status::FailedPrecondition("plan uses missing index on " +
                                          plan.table_name + "(" +
                                          plan.select_var + ")");
      }
      op = std::make_unique<IndexScan>(std::move(table), index,
                                       plan.select_value);
      break;
    }
    case PlanNodeKind::kSelect: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*plan.left, counters));
      op = std::make_unique<Filter>(std::move(child), plan.select_var,
                                    plan.select_value);
      break;
    }
    case PlanNodeKind::kMeasureFilter: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*plan.left, counters));
      op = std::make_unique<MeasureFilter>(std::move(child), plan.having);
      break;
    }
    case PlanNodeKind::kProject: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*plan.left, counters));
      op = std::make_unique<StreamProject>(std::move(child), plan.group_vars);
      break;
    }
    case PlanNodeKind::kGroupBy: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr child, BuildNode(*plan.left, counters));
      if (options_.agg == AggAlgorithm::kSort) {
        op = std::make_unique<SortMarginalize>(std::move(child),
                                               plan.group_vars, semiring_);
      } else {
        op = std::make_unique<HashMarginalize>(
            std::move(child), plan.group_vars, semiring_,
            options_.packed_keys ? &catalog_ : nullptr);
      }
      break;
    }
    case PlanNodeKind::kJoin: {
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr left, BuildNode(*plan.left, counters));
      MPFDB_ASSIGN_OR_RETURN(OperatorPtr right, BuildNode(*plan.right, counters));
      switch (options_.join) {
        case JoinAlgorithm::kSortMerge:
          op = std::make_unique<SortMergeProductJoin>(
              std::move(left), std::move(right), semiring_);
          break;
        case JoinAlgorithm::kNestedLoop:
          op = std::make_unique<NestedLoopProductJoin>(
              std::move(left), std::move(right), semiring_);
          break;
        case JoinAlgorithm::kHash:
          op = std::make_unique<HashProductJoin>(
              std::move(left), std::move(right), semiring_,
              options_.packed_keys ? &catalog_ : nullptr);
          break;
      }
      break;
    }
  }
  if (op == nullptr) return Status::Internal("unknown plan node kind");
  if (counters != nullptr) {
    auto counter = std::make_shared<size_t>(0);
    (*counters)[&plan] = counter;
    op = std::make_unique<CountingOperator>(std::move(op), std::move(counter));
  }
  return op;
}

StatusOr<OperatorPtr> Executor::BuildPhysical(const PlanNode& plan) const {
  return BuildNode(plan, nullptr);
}

StatusOr<TablePtr> Executor::Execute(const PlanNode& plan,
                                     const std::string& result_name,
                                     QueryContext* ctx) const {
  MPFDB_ASSIGN_OR_RETURN(OperatorPtr root, BuildPhysical(plan));
  if (ctx != nullptr) root->BindContext(ctx);
  MPFDB_ASSIGN_OR_RETURN(TablePtr result,
                         options_.vectorized
                             ? RunBatch(*root, result_name, ctx)
                             : Run(*root, result_name, ctx));
  std::vector<size_t> all(result->schema().arity());
  std::iota(all.begin(), all.end(), 0);
  result->SortByVariables(all);
  return result;
}

StatusOr<Executor::AnalyzedResult> Executor::ExecuteAnalyze(
    const PlanNode& plan, const std::string& result_name,
    QueryContext* ctx) const {
  std::map<const PlanNode*, std::shared_ptr<size_t>> counters;
  MPFDB_ASSIGN_OR_RETURN(OperatorPtr root, BuildNode(plan, &counters));
  if (ctx != nullptr) root->BindContext(ctx);
  AnalyzedResult analyzed;
  MPFDB_ASSIGN_OR_RETURN(analyzed.table,
                         options_.vectorized
                             ? RunBatch(*root, result_name, ctx)
                             : Run(*root, result_name, ctx));
  std::vector<size_t> all(analyzed.table->schema().arity());
  std::iota(all.begin(), all.end(), 0);
  analyzed.table->SortByVariables(all);
  for (const auto& [node, counter] : counters) {
    analyzed.actual_rows[node] = *counter;
  }
  return analyzed;
}

namespace {

void ExplainAnalyzeRec(const PlanNode& node,
                       const std::map<const PlanNode*, size_t>& actual_rows,
                       int depth, std::ostringstream& os) {
  os << std::string(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case PlanNodeKind::kScan:
      os << "Scan(" << node.table_name << ")";
      break;
    case PlanNodeKind::kIndexScan:
      os << "IndexScan(" << node.table_name << ", " << node.select_var << "="
         << node.select_value << ")";
      break;
    case PlanNodeKind::kSelect:
      os << "Select(" << node.select_var << "=" << node.select_value << ")";
      break;
    case PlanNodeKind::kJoin:
      os << "ProductJoin";
      break;
    case PlanNodeKind::kGroupBy:
      os << "GroupBy{" << Join(node.group_vars, ",") << "}";
      break;
    case PlanNodeKind::kProject:
      os << "Project{" << Join(node.group_vars, ",") << "}";
      break;
    case PlanNodeKind::kMeasureFilter:
      os << "MeasureFilter(f " << CompareOpSymbol(node.having.op) << " "
         << node.having.threshold << ")";
      break;
  }
  auto it = actual_rows.find(&node);
  os << "  [est=" << node.est_card;
  if (it != actual_rows.end()) {
    os << " actual=" << it->second;
  }
  os << " cost=" << node.est_cost << "]\n";
  if (node.left) ExplainAnalyzeRec(*node.left, actual_rows, depth + 1, os);
  if (node.right) ExplainAnalyzeRec(*node.right, actual_rows, depth + 1, os);
}

}  // namespace

std::string ExplainAnalyzePlan(
    const PlanNode& root, const std::map<const PlanNode*, size_t>& actual_rows) {
  std::ostringstream os;
  ExplainAnalyzeRec(root, actual_rows, 0, os);
  return os.str();
}

}  // namespace mpfdb::exec
