#include "exec/spill.h"

#include <algorithm>
#include <filesystem>

namespace mpfdb {

SpillFile::SpillFile(std::string path, std::unique_ptr<PagedFile> file,
                     size_t arity)
    : path_(std::move(path)),
      file_(std::move(file)),
      arity_(arity),
      rows_per_page_(DataPage::RowCapacity(arity)),
      buffer_(kPageSize, std::byte{0}) {}

StatusOr<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& path,
                                                       size_t arity) {
  MPFDB_ASSIGN_OR_RETURN(std::unique_ptr<PagedFile> file,
                         PagedFile::Create(path));
  return std::unique_ptr<SpillFile>(
      new SpillFile(path, std::move(file), arity));
}

SpillFile::~SpillFile() {
  // Close the stream before unlinking; spills must never survive the
  // operator, OK path or error path alike.
  file_.reset();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

Status SpillFile::Append(const VarValue* vars, double measure) {
  if (reading_) {
    return Status::FailedPrecondition("append to a rewound spill file");
  }
  DataPage page(buffer_.data());
  page.WriteRow(rows_in_buffer_, arity_, vars, measure);
  ++rows_in_buffer_;
  ++rows_;
  if (rows_in_buffer_ == rows_per_page_) {
    MPFDB_RETURN_IF_ERROR(FlushBuffer());
  }
  return Status::Ok();
}

Status SpillFile::FlushBuffer() {
  DataPage page(buffer_.data());
  page.set_row_count(static_cast<uint32_t>(rows_in_buffer_));
  MPFDB_RETURN_IF_ERROR(file_->AppendPage(buffer_.data()).status());
  rows_in_buffer_ = 0;
  std::fill(buffer_.begin(), buffer_.end(), std::byte{0});
  return Status::Ok();
}

Status SpillFile::Rewind() {
  if (!reading_) {
    if (rows_in_buffer_ > 0) MPFDB_RETURN_IF_ERROR(FlushBuffer());
    reading_ = true;
  }
  read_page_ = 0;
  read_slot_ = 0;
  read_row_ = 0;
  if (file_->page_count() > 0) MPFDB_RETURN_IF_ERROR(LoadPage(0));
  return Status::Ok();
}

Status SpillFile::LoadPage(uint32_t page_id) {
  MPFDB_RETURN_IF_ERROR(file_->ReadPage(page_id, buffer_.data()));
  read_page_ = page_id;
  read_slot_ = 0;
  return Status::Ok();
}

StatusOr<bool> SpillFile::Next(VarValue* vars, double* measure) {
  if (!reading_) {
    return Status::FailedPrecondition("read from a spill file before Rewind");
  }
  if (read_row_ >= rows_) return false;
  DataPage page(buffer_.data());
  if (read_slot_ >= page.row_count()) {
    MPFDB_RETURN_IF_ERROR(LoadPage(read_page_ + 1));
  }
  DataPage current(buffer_.data());
  current.ReadRow(read_slot_, arity_, vars, measure);
  ++read_slot_;
  ++read_row_;
  return true;
}

uint64_t SpillFile::bytes_written() const {
  return static_cast<uint64_t>(file_->page_count()) * kPageSize;
}

}  // namespace mpfdb
