#ifndef MPFDB_EXEC_TRIE_JOIN_H_
#define MPFDB_EXEC_TRIE_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/spill.h"
#include "semiring/semiring.h"
#include "storage/schema.h"
#include "util/query_context.h"
#include "util/status.h"

namespace mpfdb::exec {

// --- Trie iterator ----------------------------------------------------------

// Per-depth seek/next counters for one trie iterator; surfaced per variable
// through OperatorStats::trie_vars for EXPLAIN ANALYZE.
struct TrieLevelStats {
  uint64_t seeks = 0;
  uint64_t nexts = 0;
};

// Sorted-array trie cursor over one staged relation: `num_rows` rows of
// `arity` VarValues each, row-major and sorted lexicographically. The trie
// is implicit — depth d ranges over the distinct values of column d within
// the parent key's row run, so Open/Up push and pop [begin, end) ranges and
// Seek/Next move by binary search instead of pointer chasing.
//
// Protocol (LeapFrog TrieJoin's linear-iterator contract): at depth d the
// iterator is positioned on a key (the distinct value run [block_begin,
// block_end)) or AtEnd. Open() descends into the current key's run and
// positions on its first child key; Up() returns to the parent key; Next()
// advances to the following distinct key at this depth; Seek(v) advances to
// the first key >= v. Seek never moves backwards — LFTJ only seeks forward.
// At the deepest level every column is fixed, so [block_begin, block_end) is
// exactly the run of duplicate rows matching the full key.
class TrieIterator {
 public:
  TrieIterator(const VarValue* rows, size_t num_rows, size_t arity);

  // Requires depth() + 1 < arity and, when depth() >= 0, !AtEnd().
  void Open();
  // Requires depth() >= 0.
  void Up();
  // Requires depth() >= 0 and !AtEnd().
  void Next();
  void Seek(VarValue v);

  bool AtEnd() const;
  VarValue Key() const;
  // -1 before the first Open (positioned above the root).
  int depth() const { return static_cast<int>(levels_.size()) - 1; }
  size_t arity() const { return arity_; }

  // Row run of the current key at the current depth.
  size_t block_begin() const { return levels_.back().pos; }
  size_t block_end() const { return levels_.back().end; }

  // One entry per trie depth.
  const std::vector<TrieLevelStats>& level_stats() const { return stats_; }

 private:
  struct Level {
    size_t range_begin = 0;  // parent key's row run
    size_t range_end = 0;
    size_t pos = 0;  // current key's run [pos, end); pos == range_end at end
    size_t end = 0;
  };

  VarValue At(size_t row, size_t col) const {
    return rows_[row * arity_ + col];
  }
  // First row in [lo, hi) whose `col` value is >= v.
  size_t LowerBound(size_t col, size_t lo, size_t hi, VarValue v) const;
  // End of the run of rows equal to At(pos, col) within [pos, hi).
  size_t RunEnd(size_t col, size_t pos, size_t hi) const;

  const VarValue* rows_;
  size_t num_rows_;
  size_t arity_;
  std::vector<Level> levels_;
  std::vector<TrieLevelStats> stats_;
};

// --- Operator ---------------------------------------------------------------

// LeapFrog TrieJoin: the worst-case-optimal n-ary product join backing the
// kMultiwayJoin physical node. Children are drained into per-child columnar
// arenas whose columns are permuted to the global variable order restricted
// to the child's variables, then sorted lexicographically (stable, so
// duplicate rows keep arrival order). The join intersects the tries one
// variable at a time in `var_order`, emitting output tuples in lexicographic
// var_order order — which is why the physical planner claims var_order as
// this node's interesting order. Duplicate-key runs produce the full cross
// product, child-major (child 0 varies slowest), with measures combined by
// Multiply in child order.
//
// Governance: staging charges the arenas against the query's memory budget;
// on kResourceExhausted with spills enabled the operator degrades to a
// binary Grace-hash-join cascade over SpillFile-backed scans (LFTJ's trie
// positions are not globally monotone — relations lacking the outer
// variables re-scan per binding — so the tries themselves cannot stream from
// disk). The degraded pipeline emits the same multiset of rows in a
// different order; downstream marginalizes aggregate per key, and the bit-
// identity guarantees of auto-selected plans are unaffected because the FAQ
// planner only emits multiway nodes for cyclic cores. Cancellation and
// deadlines are polled throughout staging and search.
//
// Morsel parallelism: streams partition the outermost variable's candidate
// values into contiguous ranges; stream outputs concatenated in index order
// reproduce the serial lexicographic emission exactly (each output row's
// measure is a pure product — no fold happens inside the join — so parallel
// results are bit-identical).
class TrieJoin : public PhysicalOperator {
 public:
  // `var_order` must equal the union of the children's variables; children
  // must be >= 2.
  TrieJoin(std::vector<OperatorPtr> children,
           std::vector<std::string> var_order, Semiring semiring);
  ~TrieJoin() override;

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override;
  bool SupportsMorselStreams() const override { return true; }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override;
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "TrieJoin"; }

 private:
  // One staged child relation.
  struct ChildStage {
    std::vector<std::string> vars;   // trie column order
    std::vector<size_t> from_child;  // trie column -> child schema column
    size_t arity = 0;
    std::vector<VarValue> rows;  // row-major, sorted lexicographically
    std::vector<double> measures;
    std::unique_ptr<SpillFile> spill;  // degraded mode only
  };

  // Morsel-stream constructor: shares the owner's staged arenas and
  // restricts the outermost variable to [lo, hi] (inclusive).
  TrieJoin(const TrieJoin* owner, VarValue lo, VarValue hi);

  Status EnsureStaged();
  Status StageChildren();
  Status SortStage(ChildStage* stage);
  // Switches to spill mode: staged arenas are written out and released;
  // children still draining append straight to their spill files.
  Status DegradeToSpill();
  Status AppendToSpill(ChildStage* stage, const RowBatch& batch);
  Status BuildDegradedPipeline();

  Status InitMachine();
  void TearDownMachine();
  // Positions the machine on the next full variable assignment; every
  // child's deepest block is then its duplicate-row match run.
  StatusOr<bool> FindNextMatch();
  void OpenLevel(size_t k);
  void CloseLevel(size_t k);
  // Leapfrog intersection at level k; fills bound_[k] on success.
  StatusOr<bool> SearchLevel(size_t k);
  StatusOr<bool> AdvanceLevel(size_t k);
  void CollectIteratorStats();

  std::vector<OperatorPtr> children_;
  std::vector<std::string> var_order_;
  Semiring semiring_;
  Schema schema_;
  MemoryGuard memory_;

  // Staging state. Streams read the owner's stages through stage_view_.
  bool staged_ = false;
  bool degraded_ = false;
  std::vector<ChildStage> stages_;
  const std::vector<ChildStage>* stage_view_ = &stages_;
  OperatorPtr degraded_root_;

  // Children participating at each global level (indices into stages).
  std::vector<std::vector<size_t>> active_;

  // Morsel-stream identity: non-null owner means this instance shares the
  // owner's arenas and restricts level 0 to [v0_lo_, v0_hi_].
  const TrieJoin* owner_ = nullptr;
  VarValue v0_lo_ = std::numeric_limits<VarValue>::min();
  VarValue v0_hi_ = std::numeric_limits<VarValue>::max();

  // LFTJ machine.
  std::vector<std::unique_ptr<TrieIterator>> iters_;  // one per child
  bool started_ = false;
  bool done_ = false;
  std::vector<VarValue> bound_;  // matched key per level
  // Cross-product odometer over the match runs (valid while have_match_).
  bool have_match_ = false;
  std::vector<size_t> odo_;

  // Row-at-a-time adapter over the native batch path.
  RowBatch row_buf_;
  size_t row_pos_ = 0;
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_TRIE_JOIN_H_
