#ifndef MPFDB_EXEC_HASH_TABLE_H_
#define MPFDB_EXEC_HASH_TABLE_H_

// Purpose-built execution hash layer (ROADMAP open item 2).
//
// Three structures share one design:
//
//  * SwissTable<V>       — packed 64-bit keys -> V (the hot join/agg path).
//  * SwissBytesTable<V>  — arbitrary byte-string keys -> V (vector-key
//                          fallback, fr-algebra clique maps, plan cache).
//  * PerfectHashIndex    — CHD-style minimal perfect hash over a key set
//                          frozen at epoch-commit time (VE-cache base rows,
//                          dimension-side index probes).
//
// The Swiss tables are open-addressing with one control byte per slot:
// 0x80 marks an empty slot, otherwise the byte holds the low 7 bits of the
// key's hash (H2) and the remaining bits (H1) pick the home slot. Probes
// scan 16-byte control groups with SSE2 (_mm_cmpeq_epi8 for H2 candidates;
// empties fall out of _mm_movemask_epi8 directly because 0x80 is the only
// control value with the sign bit set), with a portable scalar fallback
// selected at compile time on non-SSE2 targets and at runtime via
// SetForceScalarHashProbes (sanitizer/bench A-B runs). The control array
// carries a 16-byte mirror of its head so group loads never wrap.
//
// Displacement is Robin Hood: an insert walking the probe chain swaps with
// any resident whose distance-to-initial-bucket (DIB) is smaller than the
// prober's, and Erase backward-shifts the following chain instead of
// leaving a tombstone. Two consequences the operators rely on: probe chains
// are contiguous (a lookup can stop at the first empty control byte), and
// load factor can run to 7/8 without degenerate chains. Iteration order is
// unspecified — every caller either sorts its output afterwards or is
// insensitive to order, which is what keeps hash_impl swaps bit-identical.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace mpfdb::exec {

// Which hash-table implementation the hash operators use. kStd keeps the
// pre-existing std::unordered_map / linear-probe PackedHashMap structures;
// kSwiss routes every build/probe/fold through the tables in this header.
// Both produce bit-identical results (differentially tested, tol 0.0).
enum class HashImpl { kStd, kSwiss };

// Runtime kill switch for the SSE2 probe loop (scalar fallback is always
// compiled). Reads MPFDB_SCALAR_HASH=1 from the environment once at startup;
// tests flip it explicitly to cover both paths on one binary.
bool ScalarHashProbesForced();
void SetForceScalarHashProbes(bool force);

namespace swiss {

inline constexpr size_t kGroup = 16;
inline constexpr uint8_t kEmpty = 0x80;

inline uint64_t MixU64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// 64-bit FNV-1a, then a splitmix finalize so short keys still spread over
// both the H1 (slot) and H2 (control byte) ranges.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return MixU64(h);
}

inline uint8_t H2(uint64_t hash) { return static_cast<uint8_t>(hash & 0x7f); }
inline size_t H1(uint64_t hash) { return static_cast<size_t>(hash >> 7); }

// Bitmasks over one 16-byte control group starting at `ctrl` (which may
// read into the mirrored tail): bit i of `match` set iff ctrl[i] == h2,
// bit i of `empty` set iff ctrl[i] is empty.
struct GroupMask {
  uint32_t match;
  uint32_t empty;
};

inline GroupMask ScanGroupScalar(const uint8_t* ctrl, uint8_t h2) {
  GroupMask m{0, 0};
  for (size_t i = 0; i < kGroup; ++i) {
    if (ctrl[i] == h2) m.match |= 1u << i;
    if (ctrl[i] == kEmpty) m.empty |= 1u << i;
  }
  return m;
}

inline GroupMask ScanGroup(const uint8_t* ctrl, uint8_t h2) {
#if defined(__SSE2__)
  if (!ScalarHashProbesForced()) {
    __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    __m128i match = _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(h2)));
    GroupMask m;
    m.match = static_cast<uint32_t>(_mm_movemask_epi8(match));
    // kEmpty (0x80) is the only control value with the sign bit set, so the
    // group's own movemask is exactly the empty mask.
    m.empty = static_cast<uint32_t>(_mm_movemask_epi8(group));
    return m;
  }
#endif
  return ScanGroupScalar(ctrl, h2);
}

inline int CountTrailingZeros(uint32_t x) { return __builtin_ctz(x); }

}  // namespace swiss

// Swiss table from packed uint64 keys to a small payload. API-compatible
// with PackedHashMap (FindOrInsert/Find/Reserve/ForEach/ForEachMutable)
// so the operators can switch per ExecOptions::hash_impl, plus Erase and
// the DIB invariant check the unit tests assert.
template <typename V>
class SwissTable {
 public:
  explicit SwissTable(size_t expected = 64) { Init(SlotCountFor(expected)); }

  // Payload slot for `key`, inserting `init` if absent; second is true iff
  // the key was newly inserted. Pointers are invalidated by the next
  // mutating call.
  std::pair<V*, bool> FindOrInsert(uint64_t key, const V& init) {
    if ((size_ + 1) * 8 > capacity_ * 7) Grow(capacity_ * 2);
    uint64_t hash = swiss::MixU64(key);
    size_t i = FindSlot(key, hash);
    if (i != kNoSlot) return {&vals_[i], false};
    size_t slot = InsertFresh(key, hash, V(init));
    return {&vals_[slot], true};
  }

  V* Find(uint64_t key) {
    size_t i = FindSlot(key, swiss::MixU64(key));
    return i == kNoSlot ? nullptr : &vals_[i];
  }
  const V* Find(uint64_t key) const {
    size_t i = FindSlot(key, swiss::MixU64(key));
    return i == kNoSlot ? nullptr : &vals_[i];
  }

  // Removes `key` if present, backward-shifting the displaced run so no
  // tombstone is left behind. Returns true iff a key was removed.
  bool Erase(uint64_t key) {
    size_t i = FindSlot(key, swiss::MixU64(key));
    if (i == kNoSlot) return false;
    size_t mask = capacity_ - 1;
    size_t next = (i + 1) & mask;
    while (ctrl_[next] != swiss::kEmpty && DibOf(next) > 0) {
      keys_[i] = keys_[next];
      vals_[i] = std::move(vals_[next]);
      SetCtrl(i, ctrl_[next]);
      i = next;
      next = (next + 1) & mask;
    }
    SetCtrl(i, swiss::kEmpty);
    vals_[i] = V();
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  void Reserve(size_t expected) {
    size_t want = SlotCountFor(expected);
    if (want > capacity_) Grow(want);
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != swiss::kEmpty) fn(keys_[i], vals_[i]);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != swiss::kEmpty) fn(keys_[i], vals_[i]);
    }
  }

  // Robin Hood structural invariants, for the unit tests: every occupied
  // slot's DIB is at most one greater than its predecessor's, a slot after
  // an empty has DIB 0, and no control byte disagrees with its key's H2.
  bool ValidateInvariants() const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == swiss::kEmpty) continue;
      uint64_t hash = swiss::MixU64(keys_[i]);
      if (ctrl_[i] != swiss::H2(hash)) return false;
      size_t prev = (i + capacity_ - 1) & (capacity_ - 1);
      size_t dib = DibOf(i);
      if (ctrl_[prev] == swiss::kEmpty) {
        if (dib != 0) return false;
      } else if (dib > DibOf(prev) + 1) {
        return false;
      }
    }
    for (size_t j = 0; j < swiss::kGroup; ++j) {
      if (ctrl_[capacity_ + j] != ctrl_[j]) return false;
    }
    return true;
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  static size_t SlotCountFor(size_t expected) {
    size_t slots = swiss::kGroup;
    while (slots * 7 < expected * 8) slots <<= 1;
    return slots;
  }

  void Init(size_t cap) {
    capacity_ = cap;
    ctrl_.assign(cap + swiss::kGroup, swiss::kEmpty);
    keys_.assign(cap, 0);
    vals_.assign(cap, V());
    size_ = 0;
  }

  void SetCtrl(size_t i, uint8_t v) {
    ctrl_[i] = v;
    if (i < swiss::kGroup) ctrl_[capacity_ + i] = v;
  }

  size_t DibOf(size_t slot) const {
    size_t home = swiss::H1(swiss::MixU64(keys_[slot])) & (capacity_ - 1);
    return (slot - home) & (capacity_ - 1);
  }

  // Probe groups of 16 control bytes from the home slot; the chain is
  // tombstone-free, so the first empty byte bounds the search.
  size_t FindSlot(uint64_t key, uint64_t hash) const {
    size_t mask = capacity_ - 1;
    size_t i = swiss::H1(hash) & mask;
    uint8_t h2 = swiss::H2(hash);
    for (size_t probed = 0; probed <= capacity_; probed += swiss::kGroup) {
      swiss::GroupMask m = swiss::ScanGroup(ctrl_.data() + i, h2);
      uint32_t candidates = m.match;
      if (m.empty) candidates &= (1u << swiss::CountTrailingZeros(m.empty)) - 1;
      while (candidates) {
        size_t slot = (i + swiss::CountTrailingZeros(candidates)) & mask;
        if (keys_[slot] == key) return slot;
        candidates &= candidates - 1;
      }
      if (m.empty) return kNoSlot;
      i = (i + swiss::kGroup) & mask;
    }
    return kNoSlot;
  }

  // Robin Hood insertion of a key known to be absent: walk from the home
  // slot, swapping with any resident closer to its own home than we are to
  // ours. Returns the slot where `key` itself landed.
  size_t InsertFresh(uint64_t key, uint64_t hash, V&& val) {
    size_t mask = capacity_ - 1;
    size_t i = swiss::H1(hash) & mask;
    size_t dib = 0;
    size_t landed = kNoSlot;
    uint8_t h2 = swiss::H2(hash);
    while (true) {
      if (ctrl_[i] == swiss::kEmpty) {
        keys_[i] = key;
        vals_[i] = std::move(val);
        SetCtrl(i, h2);
        ++size_;
        return landed == kNoSlot ? i : landed;
      }
      size_t resident_dib = DibOf(i);
      if (resident_dib < dib) {
        std::swap(keys_[i], key);
        std::swap(vals_[i], val);
        uint8_t evicted_h2 = ctrl_[i];
        SetCtrl(i, h2);
        h2 = evicted_h2;
        if (landed == kNoSlot) landed = i;
        dib = resident_dib;
      }
      i = (i + 1) & mask;
      ++dib;
    }
  }

  void Grow(size_t new_cap) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    size_t old_cap = capacity_;
    Init(new_cap);
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_ctrl[i] == swiss::kEmpty) continue;
      InsertFresh(old_keys[i], swiss::MixU64(old_keys[i]),
                  std::move(old_vals[i]));
    }
  }

  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<uint8_t> ctrl_;
  std::vector<uint64_t> keys_;
  std::vector<V> vals_;
};

// Swiss table keyed by arbitrary byte strings (vector<VarValue> keys cast
// to bytes, plan-cache string keys). Keys are interned into one contiguous
// arena; each slot stores the full 64-bit hash (reused for the DIB
// computation and as a cheap pre-compare) plus the arena offset/length.
// Erase backward-shifts like SwissTable and leaves its key bytes dead in
// the arena; rehash rebuilds the arena from live entries, and a mutation
// that finds more dead than live bytes triggers that compaction early so
// churn-heavy callers (the plan cache) can't grow the arena without bound.
template <typename V>
class SwissBytesTable {
 public:
  explicit SwissBytesTable(size_t expected = 16) { Init(SlotCountFor(expected)); }

  std::pair<V*, bool> FindOrInsert(const void* key, size_t len, const V& init) {
    MaybeCompact();
    if ((size_ + 1) * 8 > capacity_ * 7) Grow(capacity_ * 2);
    uint64_t hash = swiss::HashBytes(key, len);
    size_t i = FindSlot(key, len, hash);
    if (i != kNoSlot) return {&vals_[i], false};
    Slot fresh;
    fresh.hash = hash;
    fresh.off = arena_.size();
    fresh.len = static_cast<uint32_t>(len);
    arena_.insert(arena_.end(), static_cast<const char*>(key),
                  static_cast<const char*>(key) + len);
    size_t slot = InsertFresh(fresh, V(init));
    return {&vals_[slot], true};
  }

  V* Find(const void* key, size_t len) {
    size_t i = FindSlot(key, len, swiss::HashBytes(key, len));
    return i == kNoSlot ? nullptr : &vals_[i];
  }
  const V* Find(const void* key, size_t len) const {
    size_t i = FindSlot(key, len, swiss::HashBytes(key, len));
    return i == kNoSlot ? nullptr : &vals_[i];
  }

  bool Erase(const void* key, size_t len) {
    size_t i = FindSlot(key, len, swiss::HashBytes(key, len));
    if (i == kNoSlot) return false;
    dead_bytes_ += slots_[i].len;
    size_t mask = capacity_ - 1;
    size_t next = (i + 1) & mask;
    while (ctrl_[next] != swiss::kEmpty && DibOf(next) > 0) {
      slots_[i] = slots_[next];
      vals_[i] = std::move(vals_[next]);
      SetCtrl(i, ctrl_[next]);
      i = next;
      next = (next + 1) & mask;
    }
    SetCtrl(i, swiss::kEmpty);
    vals_[i] = V();
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  size_t arena_bytes() const { return arena_.size(); }

  void Reserve(size_t expected) {
    size_t want = SlotCountFor(expected);
    if (want > capacity_) Grow(want);
  }

  // fn(const char* key, size_t len, const V& value), unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != swiss::kEmpty) {
        fn(arena_.data() + slots_[i].off, slots_[i].len, vals_[i]);
      }
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != swiss::kEmpty) {
        fn(arena_.data() + slots_[i].off, slots_[i].len, vals_[i]);
      }
    }
  }

  bool ValidateInvariants() const {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == swiss::kEmpty) continue;
      if (ctrl_[i] != swiss::H2(slots_[i].hash)) return false;
      size_t prev = (i + capacity_ - 1) & (capacity_ - 1);
      size_t dib = DibOf(i);
      if (ctrl_[prev] == swiss::kEmpty) {
        if (dib != 0) return false;
      } else if (dib > DibOf(prev) + 1) {
        return false;
      }
    }
    for (size_t j = 0; j < swiss::kGroup; ++j) {
      if (ctrl_[capacity_ + j] != ctrl_[j]) return false;
    }
    return true;
  }

 private:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  struct Slot {
    uint64_t hash = 0;
    size_t off = 0;
    uint32_t len = 0;
  };

  static size_t SlotCountFor(size_t expected) {
    size_t slots = swiss::kGroup;
    while (slots * 7 < expected * 8) slots <<= 1;
    return slots;
  }

  void Init(size_t cap) {
    capacity_ = cap;
    ctrl_.assign(cap + swiss::kGroup, swiss::kEmpty);
    slots_.assign(cap, Slot{});
    vals_.assign(cap, V());
    size_ = 0;
  }

  void SetCtrl(size_t i, uint8_t v) {
    ctrl_[i] = v;
    if (i < swiss::kGroup) ctrl_[capacity_ + i] = v;
  }

  size_t DibOf(size_t slot) const {
    size_t home = swiss::H1(slots_[slot].hash) & (capacity_ - 1);
    return (slot - home) & (capacity_ - 1);
  }

  bool KeyEquals(const Slot& s, const void* key, size_t len,
                 uint64_t hash) const {
    return s.hash == hash && s.len == len &&
           std::memcmp(arena_.data() + s.off, key, len) == 0;
  }

  size_t FindSlot(const void* key, size_t len, uint64_t hash) const {
    size_t mask = capacity_ - 1;
    size_t i = swiss::H1(hash) & mask;
    uint8_t h2 = swiss::H2(hash);
    for (size_t probed = 0; probed <= capacity_; probed += swiss::kGroup) {
      swiss::GroupMask m = swiss::ScanGroup(ctrl_.data() + i, h2);
      uint32_t candidates = m.match;
      if (m.empty) candidates &= (1u << swiss::CountTrailingZeros(m.empty)) - 1;
      while (candidates) {
        size_t slot = (i + swiss::CountTrailingZeros(candidates)) & mask;
        if (KeyEquals(slots_[slot], key, len, hash)) return slot;
        candidates &= candidates - 1;
      }
      if (m.empty) return kNoSlot;
      i = (i + swiss::kGroup) & mask;
    }
    return kNoSlot;
  }

  size_t InsertFresh(Slot entry, V&& val) {
    size_t mask = capacity_ - 1;
    size_t i = swiss::H1(entry.hash) & mask;
    size_t dib = 0;
    size_t landed = kNoSlot;
    uint8_t h2 = swiss::H2(entry.hash);
    while (true) {
      if (ctrl_[i] == swiss::kEmpty) {
        slots_[i] = entry;
        vals_[i] = std::move(val);
        SetCtrl(i, h2);
        ++size_;
        return landed == kNoSlot ? i : landed;
      }
      size_t resident_dib = DibOf(i);
      if (resident_dib < dib) {
        std::swap(slots_[i], entry);
        std::swap(vals_[i], val);
        uint8_t evicted_h2 = ctrl_[i];
        SetCtrl(i, h2);
        h2 = evicted_h2;
        if (landed == kNoSlot) landed = i;
        dib = resident_dib;
      }
      i = (i + 1) & mask;
      ++dib;
    }
  }

  void MaybeCompact() {
    if (dead_bytes_ > 0 && dead_bytes_ * 2 > arena_.size()) Grow(capacity_);
  }

  // Rebuild at `new_cap` (which may equal capacity_: arena compaction
  // only), re-interning every live key so dead bytes are dropped.
  void Grow(size_t new_cap) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<char> old_arena = std::move(arena_);
    size_t old_cap = capacity_;
    Init(new_cap);
    arena_.reserve(old_arena.size() - dead_bytes_);
    dead_bytes_ = 0;
    for (size_t i = 0; i < old_cap; ++i) {
      if (old_ctrl[i] == swiss::kEmpty) continue;
      Slot s = old_slots[i];
      size_t off = arena_.size();
      arena_.insert(arena_.end(), old_arena.data() + s.off,
                    old_arena.data() + s.off + s.len);
      s.off = off;
      InsertFresh(s, std::move(old_vals[i]));
    }
  }

  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t dead_bytes_ = 0;
  std::vector<uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::vector<V> vals_;
  std::vector<char> arena_;
};

// CHD-style minimal perfect hash over a fixed set of distinct uint64 keys,
// built once when the key set freezes (epoch commit / BuildCache) and
// probed collision-free afterwards. Lookup returns the key's position in
// the vector passed to Build (so callers index side arrays built in that
// order), kNotFound for absent keys, and rejects probes tagged with a
// different epoch than the build — a structure that outlives its key set
// fails loudly instead of returning stale positions.
class PerfectHashIndex {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  // Builds over `keys` (which must be distinct; duplicate keys fail the
  // build). Returns false on failure — duplicates, or displacement search
  // exhaustion — in which case callers keep their generic-hash fallback.
  static bool Build(const std::vector<uint64_t>& keys, uint64_t epoch,
                    PerfectHashIndex* out);

  // Position of `key` in the build vector, or kNotFound if absent or if
  // `epoch` differs from the build epoch.
  size_t Lookup(uint64_t key, uint64_t epoch) const {
    if (epoch != epoch_ || keys_by_slot_.empty()) return kNotFound;
    uint64_t h = swiss::MixU64(key ^ round_salt_);
    uint32_t d = seeds_[h & (seeds_.size() - 1)];
    if (d == 0) return kNotFound;
    // Seeds above the search budget encode a direct slot index — singleton
    // buckets are placed straight into leftover free slots at build time,
    // which is what lets the table stay minimal (load factor 1.0) without
    // the displacement search having to hit one specific slot among n.
    size_t slot = d >= kDirectBase
                      ? static_cast<size_t>(d - kDirectBase)
                      : PositionFor(h, d, keys_by_slot_.size());
    if (keys_by_slot_[slot] != key) return kNotFound;
    return ids_by_slot_[slot];
  }

  uint64_t epoch() const { return epoch_; }
  size_t size() const { return keys_by_slot_.size(); }
  // Bytes of auxiliary state per key, for the cost model: seeds plus the
  // verification keys and id permutation.
  double BytesPerKey() const {
    if (keys_by_slot_.empty()) return 0.0;
    return static_cast<double>(seeds_.size() * sizeof(uint32_t) +
                               keys_by_slot_.size() * (sizeof(uint64_t) +
                                                       sizeof(uint32_t))) /
           static_cast<double>(keys_by_slot_.size());
  }

 private:
  // Displacement seeds 1..kMaxSeed are search results; kDirectBase + slot
  // encodes a directly assigned slot for a singleton bucket.
  static constexpr uint32_t kMaxSeed = 100000;
  static constexpr uint32_t kDirectBase = kMaxSeed + 1;

  static size_t PositionFor(uint64_t key_hash, uint32_t d, size_t n) {
    return static_cast<size_t>(
        swiss::MixU64(key_hash ^ (0x9e3779b97f4a7c15ull * d)) % n);
  }

  uint64_t epoch_ = 0;
  // Salt of the build round that succeeded (bucket assignment hash input).
  uint64_t round_salt_ = 0;
  // Per-bucket displacement seeds (power-of-two count); 0 = empty bucket.
  std::vector<uint32_t> seeds_;
  // Slot -> key (membership verification) and slot -> original position.
  std::vector<uint64_t> keys_by_slot_;
  std::vector<uint32_t> ids_by_slot_;
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_HASH_TABLE_H_
