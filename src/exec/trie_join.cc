#include "exec/trie_join.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace mpfdb::exec {

// --- TrieIterator -----------------------------------------------------------

TrieIterator::TrieIterator(const VarValue* rows, size_t num_rows, size_t arity)
    : rows_(rows), num_rows_(num_rows), arity_(arity), stats_(arity) {
  levels_.reserve(arity);
}

size_t TrieIterator::LowerBound(size_t col, size_t lo, size_t hi,
                                VarValue v) const {
  // Galloping start: LFTJ seeks are usually short hops, so probe
  // exponentially from `lo` before the binary search narrows in.
  size_t bound = 1;
  while (lo + bound < hi && At(lo + bound, col) < v) bound <<= 1;
  size_t lo2 = lo + (bound >> 1);
  size_t hi2 = std::min(hi, lo + bound + 1);
  while (lo2 < hi2) {
    size_t mid = lo2 + (hi2 - lo2) / 2;
    if (At(mid, col) < v) {
      lo2 = mid + 1;
    } else {
      hi2 = mid;
    }
  }
  return lo2;
}

size_t TrieIterator::RunEnd(size_t col, size_t pos, size_t hi) const {
  const VarValue v = At(pos, col);
  size_t bound = 1;
  while (pos + bound < hi && At(pos + bound, col) == v) bound <<= 1;
  size_t lo = pos + (bound >> 1);
  size_t hi2 = std::min(hi, pos + bound + 1);
  while (lo < hi2) {
    size_t mid = lo + (hi2 - lo) / 2;
    if (At(mid, col) == v) {
      lo = mid + 1;
    } else {
      hi2 = mid;
    }
  }
  return lo;
}

void TrieIterator::Open() {
  size_t begin, end;
  if (levels_.empty()) {
    begin = 0;
    end = num_rows_;
  } else {
    begin = levels_.back().pos;
    end = levels_.back().end;
  }
  Level level;
  level.range_begin = begin;
  level.range_end = end;
  level.pos = begin;
  const size_t col = levels_.size();
  level.end = begin < end ? RunEnd(col, begin, end) : end;
  levels_.push_back(level);
}

void TrieIterator::Up() { levels_.pop_back(); }

bool TrieIterator::AtEnd() const {
  const Level& level = levels_.back();
  return level.pos >= level.range_end;
}

VarValue TrieIterator::Key() const {
  return At(levels_.back().pos, levels_.size() - 1);
}

void TrieIterator::Next() {
  Level& level = levels_.back();
  const size_t col = levels_.size() - 1;
  ++stats_[col].nexts;
  level.pos = level.end;
  if (level.pos < level.range_end) {
    level.end = RunEnd(col, level.pos, level.range_end);
  }
}

void TrieIterator::Seek(VarValue v) {
  Level& level = levels_.back();
  const size_t col = levels_.size() - 1;
  ++stats_[col].seeks;
  level.pos = LowerBound(col, level.pos, level.range_end, v);
  if (level.pos < level.range_end) {
    level.end = RunEnd(col, level.pos, level.range_end);
  }
}

// --- Degraded-mode helpers --------------------------------------------------

namespace {

// Streaming scan over one spilled child relation. Rewind-and-read only; the
// SpillFile stays owned by the TrieJoin stage so its lifetime (and on-disk
// cleanup) follows the operator's.
class SpillScan : public PhysicalOperator {
 public:
  SpillScan(SpillFile* file, Schema schema)
      : file_(file), schema_(std::move(schema)) {}

  Status Open() override {
    scratch_.resize(schema_.arity());
    return file_->Rewind();
  }

  StatusOr<bool> Next(Row* row) override {
    double measure = 0;
    MPFDB_ASSIGN_OR_RETURN(bool has, file_->Next(scratch_.data(), &measure));
    if (!has) return false;
    MPFDB_RETURN_IF_ERROR(PollContext(1));
    row->vars.assign(scratch_.begin(), scratch_.end());
    row->measure = measure;
    return true;
  }

  void Close() override {}
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "SpillScan"; }

 private:
  SpillFile* file_;
  Schema schema_;
  std::vector<VarValue> scratch_;
};

}  // namespace

// --- TrieJoin ---------------------------------------------------------------

TrieJoin::TrieJoin(std::vector<OperatorPtr> children,
                   std::vector<std::string> var_order, Semiring semiring)
    : children_(std::move(children)),
      var_order_(std::move(var_order)),
      semiring_(semiring),
      schema_(var_order_, children_.empty()
                              ? std::string("f")
                              : children_[0]->output_schema().measure_name()) {}

TrieJoin::TrieJoin(const TrieJoin* owner, VarValue lo, VarValue hi)
    : var_order_(owner->var_order_),
      semiring_(owner->semiring_),
      schema_(owner->schema_),
      staged_(true),
      stage_view_(&owner->stages_),
      active_(owner->active_),
      owner_(owner),
      v0_lo_(lo),
      v0_hi_(hi) {}

TrieJoin::~TrieJoin() = default;

void TrieJoin::BindContext(QueryContext* ctx) {
  ctx_ = ctx;
  memory_.Bind(ctx);
  for (auto& child : children_) child->BindContext(ctx);
}

Status TrieJoin::Open() {
  if (owner_ == nullptr) {
    if (children_.size() < 2) {
      return Status::Internal("TrieJoin requires at least two children");
    }
    std::vector<std::string> covered;
    for (const auto& child : children_) {
      covered = varset::Union(covered, child->output_schema().variables());
    }
    if (!varset::SetEquals(covered, var_order_)) {
      return Status::Internal(
          "TrieJoin variable order does not cover its children");
    }
    memory_.set_stats(stats_);
    MPFDB_RETURN_IF_ERROR(EnsureStaged());
  }
  if (degraded_) return Status::Ok();
  return InitMachine();
}

Status TrieJoin::EnsureStaged() {
  if (staged_) return Status::Ok();
  MPFDB_RETURN_IF_ERROR(StageChildren());
  if (degraded_) MPFDB_RETURN_IF_ERROR(BuildDegradedPipeline());
  staged_ = true;
  return Status::Ok();
}

Status TrieJoin::StageChildren() {
  stages_.clear();
  stages_.resize(children_.size());
  for (size_t c = 0; c < children_.size(); ++c) {
    ChildStage& stage = stages_[c];
    const Schema& child_schema = children_[c]->output_schema();
    stage.vars = varset::Intersect(var_order_, child_schema.variables());
    stage.arity = stage.vars.size();
    if (stage.arity == 0) {
      return Status::Internal("TrieJoin child shares no variable");
    }
    stage.from_child.reserve(stage.arity);
    for (const auto& var : stage.vars) {
      stage.from_child.push_back(*child_schema.IndexOf(var));
    }
  }

  RowBatch batch;
  for (size_t c = 0; c < children_.size(); ++c) {
    ChildStage& stage = stages_[c];
    MPFDB_RETURN_IF_ERROR(children_[c]->Open());
    // Drain through a lambda so the child is Closed on every exit path —
    // blocking operators must tear down build state before errors surface.
    Status drained = [&]() -> Status {
      while (true) {
        MPFDB_ASSIGN_OR_RETURN(bool has, children_[c]->NextBatch(&batch));
        if (!has) break;
        const size_t n = batch.num_rows();
        MPFDB_RETURN_IF_ERROR(PollContext(n));
        if (!degraded_) {
          const size_t bytes =
              n * (stage.arity * sizeof(VarValue) + sizeof(double));
          Status charged = memory_.Charge(bytes, "TrieJoin");
          if (!charged.ok()) {
            if (charged.code() != StatusCode::kResourceExhausted ||
                ctx_ == nullptr || !ctx_->spill_enabled()) {
              return charged;
            }
            MPFDB_RETURN_IF_ERROR(DegradeToSpill());
          }
        }
        if (degraded_) {
          MPFDB_RETURN_IF_ERROR(AppendToSpill(&stage, batch));
        } else {
          const size_t base = stage.rows.size();
          stage.rows.resize(base + n * stage.arity);
          for (size_t d = 0; d < stage.arity; ++d) {
            const VarValue* col = batch.col(stage.from_child[d]);
            VarValue* out = stage.rows.data() + base + d;
            for (size_t r = 0; r < n; ++r) out[r * stage.arity] = col[r];
          }
          stage.measures.insert(stage.measures.end(), batch.measures(),
                                batch.measures() + n);
        }
      }
      return Status::Ok();
    }();
    children_[c]->Close();
    MPFDB_RETURN_IF_ERROR(drained);
  }

  if (!degraded_) {
    for (ChildStage& stage : stages_) {
      Status sorted = SortStage(&stage);
      if (!sorted.ok()) {
        if (sorted.code() != StatusCode::kResourceExhausted ||
            ctx_ == nullptr || !ctx_->spill_enabled()) {
          return sorted;
        }
        // The sort scratch overflowed the budget: spill everything (the
        // cascade does not need sorted inputs) and fall through.
        MPFDB_RETURN_IF_ERROR(DegradeToSpill());
        break;
      }
    }
  }
  return Status::Ok();
}

Status TrieJoin::SortStage(ChildStage* stage) {
  const size_t n = stage->measures.size();
  if (n <= 1) return Status::Ok();
  const size_t arity = stage->arity;
  // The permutation plus the reordered copies live alongside the arena for
  // the duration of the sort; a scoped guard keeps the peak honest and
  // releases the transient on every exit path.
  MemoryGuard scratch(ctx_);
  scratch.set_stats(stats_);
  MPFDB_RETURN_IF_ERROR(scratch.Charge(
      n * (sizeof(uint32_t) + arity * sizeof(VarValue) + sizeof(double)),
      "TrieJoin sort"));
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  const VarValue* rows = stage->rows.data();
  std::stable_sort(perm.begin(), perm.end(),
                   [rows, arity](uint32_t a, uint32_t b) {
                     const VarValue* ra = rows + static_cast<size_t>(a) * arity;
                     const VarValue* rb = rows + static_cast<size_t>(b) * arity;
                     return std::lexicographical_compare(ra, ra + arity, rb,
                                                         rb + arity);
                   });
  std::vector<VarValue> sorted_rows(n * arity);
  std::vector<double> sorted_measures(n);
  for (size_t i = 0; i < n; ++i) {
    const VarValue* src = rows + static_cast<size_t>(perm[i]) * arity;
    std::copy(src, src + arity, sorted_rows.data() + i * arity);
    sorted_measures[i] = stage->measures[perm[i]];
  }
  stage->rows = std::move(sorted_rows);
  stage->measures = std::move(sorted_measures);
  return Status::Ok();
}

Status TrieJoin::DegradeToSpill() {
  degraded_ = true;
  for (ChildStage& stage : stages_) {
    if (stage.measures.empty() && stage.rows.empty()) continue;
    MPFDB_ASSIGN_OR_RETURN(
        stage.spill, SpillFile::Create(ctx_->NextSpillPath(), stage.arity));
    if (stats_ != nullptr) ++stats_->spill_partitions;
    const size_t n = stage.measures.size();
    for (size_t r = 0; r < n; ++r) {
      MPFDB_RETURN_IF_ERROR(PollContext(1));
      MPFDB_RETURN_IF_ERROR(stage.spill->Append(
          stage.rows.data() + r * stage.arity, stage.measures[r]));
    }
    ctx_->RecordSpill(n, stage.spill->bytes_written());
    stage.rows.clear();
    stage.rows.shrink_to_fit();
    stage.measures.clear();
    stage.measures.shrink_to_fit();
  }
  memory_.ReleaseAll();
  return Status::Ok();
}

Status TrieJoin::AppendToSpill(ChildStage* stage, const RowBatch& batch) {
  if (stage->spill == nullptr) {
    MPFDB_ASSIGN_OR_RETURN(
        stage->spill, SpillFile::Create(ctx_->NextSpillPath(), stage->arity));
    if (stats_ != nullptr) ++stats_->spill_partitions;
  }
  const size_t n = batch.num_rows();
  std::vector<VarValue> scratch(stage->arity);
  uint64_t before = stage->spill->bytes_written();
  for (size_t r = 0; r < n; ++r) {
    for (size_t d = 0; d < stage->arity; ++d) {
      scratch[d] = batch.col(stage->from_child[d])[r];
    }
    MPFDB_RETURN_IF_ERROR(stage->spill->Append(scratch.data(),
                                               batch.measures()[r]));
  }
  ctx_->RecordSpill(n, stage->spill->bytes_written() - before);
  return Status::Ok();
}

Status TrieJoin::BuildDegradedPipeline() {
  // Greedy connected join order (first-seen tie-break) so the hash cascade
  // avoids cross products whenever the hypergraph is connected.
  const size_t n = stages_.size();
  std::vector<bool> picked(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  order.push_back(0);
  picked[0] = true;
  std::vector<std::string> joined_vars = stages_[0].vars;
  while (order.size() < n) {
    size_t next = n;
    for (size_t c = 0; c < n; ++c) {
      if (picked[c]) continue;
      if (!varset::Intersect(joined_vars, stages_[c].vars).empty()) {
        next = c;
        break;
      }
    }
    if (next == n) {
      // Disconnected: take the first remaining child (cross product).
      for (size_t c = 0; c < n; ++c) {
        if (!picked[c]) {
          next = c;
          break;
        }
      }
    }
    picked[next] = true;
    order.push_back(next);
    joined_vars = varset::Union(joined_vars, stages_[next].vars);
  }

  const std::string& measure = schema_.measure_name();
  auto scan_for = [&](size_t c) -> OperatorPtr {
    return std::make_unique<SpillScan>(stages_[c].spill.get(),
                                       Schema(stages_[c].vars, measure));
  };
  OperatorPtr root = scan_for(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    root = std::make_unique<HashProductJoin>(std::move(root),
                                             scan_for(order[i]), semiring_);
  }
  if (root->output_schema().variables() != var_order_) {
    root = std::make_unique<StreamProject>(std::move(root), var_order_);
  }
  root->BindContext(ctx_);
  MPFDB_RETURN_IF_ERROR(root->Open());
  degraded_root_ = std::move(root);
  return Status::Ok();
}

// --- LFTJ machine -----------------------------------------------------------

Status TrieJoin::InitMachine() {
  const std::vector<ChildStage>& stages = *stage_view_;
  const size_t num_levels = var_order_.size();
  active_.assign(num_levels, {});
  for (size_t k = 0; k < num_levels; ++k) {
    for (size_t c = 0; c < stages.size(); ++c) {
      if (varset::Contains(stages[c].vars, var_order_[k])) {
        active_[k].push_back(c);
      }
    }
    if (active_[k].empty()) {
      return Status::Internal("TrieJoin level has no participating child");
    }
  }
  iters_.clear();
  iters_.reserve(stages.size());
  for (const ChildStage& stage : stages) {
    iters_.push_back(std::make_unique<TrieIterator>(
        stage.rows.data(), stage.measures.size(), stage.arity));
  }
  bound_.assign(num_levels, 0);
  odo_.assign(stages.size(), 0);
  started_ = false;
  done_ = false;
  have_match_ = false;
  row_pos_ = 0;
  return Status::Ok();
}

void TrieJoin::OpenLevel(size_t k) {
  for (size_t c : active_[k]) {
    iters_[c]->Open();
    if (k == 0 && v0_lo_ > std::numeric_limits<VarValue>::min() &&
        !iters_[c]->AtEnd() && iters_[c]->Key() < v0_lo_) {
      iters_[c]->Seek(v0_lo_);
    }
  }
}

void TrieJoin::CloseLevel(size_t k) {
  for (size_t c : active_[k]) iters_[c]->Up();
}

StatusOr<bool> TrieJoin::SearchLevel(size_t k) {
  const std::vector<size_t>& act = active_[k];
  for (size_t c : act) {
    if (iters_[c]->AtEnd()) return false;
  }
  while (true) {
    VarValue max_key = iters_[act[0]]->Key();
    bool all_equal = true;
    for (size_t i = 1; i < act.size(); ++i) {
      VarValue key = iters_[act[i]]->Key();
      if (key != max_key) all_equal = false;
      if (key > max_key) max_key = key;
    }
    // A morsel stream stops at its outermost-variable fence: any common key
    // from here on would be >= max_key.
    if (k == 0 && max_key > v0_hi_) return false;
    if (all_equal) {
      bound_[k] = max_key;
      return true;
    }
    for (size_t c : act) {
      if (iters_[c]->Key() >= max_key) continue;
      MPFDB_RETURN_IF_ERROR(PollContext(1));
      iters_[c]->Seek(max_key);
      if (iters_[c]->AtEnd()) return false;
    }
  }
}

StatusOr<bool> TrieJoin::AdvanceLevel(size_t k) {
  TrieIterator& lead = *iters_[active_[k][0]];
  if (lead.AtEnd()) return false;
  lead.Next();
  if (lead.AtEnd()) return false;
  return SearchLevel(k);
}

StatusOr<bool> TrieJoin::FindNextMatch() {
  if (done_) return false;
  const size_t num_levels = var_order_.size();
  size_t k;
  bool opening;
  if (!started_) {
    started_ = true;
    k = 0;
    opening = true;
  } else {
    k = num_levels - 1;
    opening = false;
  }
  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext(1));
    bool matched;
    if (opening) {
      OpenLevel(k);
      MPFDB_ASSIGN_OR_RETURN(matched, SearchLevel(k));
    } else {
      MPFDB_ASSIGN_OR_RETURN(matched, AdvanceLevel(k));
    }
    if (matched) {
      if (k == num_levels - 1) return true;
      ++k;
      opening = true;
    } else {
      CloseLevel(k);
      if (k == 0) {
        done_ = true;
        return false;
      }
      --k;
      opening = false;
    }
  }
}

StatusOr<bool> TrieJoin::NextBatch(RowBatch* batch) {
  if (degraded_) return degraded_root_->NextBatch(batch);
  const size_t arity = var_order_.size();
  const std::vector<ChildStage>& stages = *stage_view_;
  batch->Prepare(arity);
  while (!batch->full()) {
    if (!have_match_) {
      MPFDB_ASSIGN_OR_RETURN(bool found, FindNextMatch());
      if (!found) break;
      have_match_ = true;
      for (size_t c = 0; c < iters_.size(); ++c) {
        odo_[c] = iters_[c]->block_begin();
      }
    }
    while (!batch->full()) {
      const size_t r = batch->num_rows();
      for (size_t k = 0; k < arity; ++k) batch->col(k)[r] = bound_[k];
      double measure = stages[0].measures[odo_[0]];
      for (size_t c = 1; c < stages.size(); ++c) {
        measure = semiring_.Multiply(measure, stages[c].measures[odo_[c]]);
      }
      batch->measures()[r] = measure;
      batch->set_num_rows(r + 1);
      // Odometer over the duplicate-row match runs, child-major (the last
      // child varies fastest). The single-row common case exits in one step.
      size_t c = iters_.size();
      while (c-- > 0) {
        if (++odo_[c] < iters_[c]->block_end()) break;
        odo_[c] = iters_[c]->block_begin();
        if (c == 0) have_match_ = false;
      }
      if (!have_match_) break;
    }
  }
  MPFDB_RETURN_IF_ERROR(PollContext(batch->num_rows()));
  return !batch->empty();
}

StatusOr<bool> TrieJoin::Next(Row* row) {
  if (row_pos_ >= row_buf_.num_rows()) {
    MPFDB_ASSIGN_OR_RETURN(bool has, NextBatch(&row_buf_));
    if (!has) return false;
    row_pos_ = 0;
  }
  const size_t arity = var_order_.size();
  row->vars.resize(arity);
  for (size_t k = 0; k < arity; ++k) row->vars[k] = row_buf_.col(k)[row_pos_];
  row->measure = row_buf_.measures()[row_pos_];
  ++row_pos_;
  return true;
}

void TrieJoin::CollectIteratorStats() {
  if (stats_ == nullptr || iters_.empty()) return;
  const std::vector<ChildStage>& stages = *stage_view_;
  for (const auto& var : var_order_) {
    TrieVarStats entry;
    entry.var = var;
    for (size_t c = 0; c < stages.size(); ++c) {
      const ChildStage& stage = stages[c];
      for (size_t d = 0; d < stage.arity; ++d) {
        if (stage.vars[d] != var) continue;
        entry.seeks += iters_[c]->level_stats()[d].seeks;
        entry.nexts += iters_[c]->level_stats()[d].nexts;
      }
    }
    bool merged = false;
    for (TrieVarStats& existing : stats_->trie_vars) {
      if (existing.var == var) {
        existing.seeks += entry.seeks;
        existing.nexts += entry.nexts;
        merged = true;
        break;
      }
    }
    if (!merged) stats_->trie_vars.push_back(std::move(entry));
  }
}

void TrieJoin::TearDownMachine() {
  CollectIteratorStats();
  iters_.clear();
  started_ = false;
  done_ = false;
  have_match_ = false;
  row_pos_ = 0;
}

void TrieJoin::Close() {
  TearDownMachine();
  if (degraded_root_ != nullptr) {
    degraded_root_->Close();
    degraded_root_.reset();
  }
  if (owner_ == nullptr) {
    stages_.clear();
    staged_ = false;
    degraded_ = false;
    memory_.ReleaseAll();
  }
}

size_t TrieJoin::MorselSourceRows() const {
  if (staged_ && !degraded_) {
    size_t total = 0;
    for (const ChildStage& stage : *stage_view_) {
      total += stage.measures.size();
    }
    return total;
  }
  size_t total = 0;
  for (const auto& child : children_) total += child->MorselSourceRows();
  return total;
}

StatusOr<std::vector<OperatorPtr>> TrieJoin::MakeMorselStreams(size_t n) {
  // Streams do not split further, and spill mode has no shareable arenas.
  if (owner_ != nullptr || n <= 1) return std::vector<OperatorPtr>{};
  MPFDB_RETURN_IF_ERROR(EnsureStaged());
  if (degraded_) return std::vector<OperatorPtr>{};

  // Candidate outermost values: the distinct first-column keys of the first
  // child containing the outermost variable (the intersection is a subset).
  // Contiguous value ranges keep each stream's output a contiguous slice of
  // the serial lexicographic emission.
  if (active_.empty()) {
    // Open has not run yet (parallel drivers open first, but be safe).
    MPFDB_RETURN_IF_ERROR(InitMachine());
    TearDownMachine();
  }
  const ChildStage& first = (*stage_view_)[active_[0][0]];
  std::vector<VarValue> keys;
  const size_t rows = first.measures.size();
  for (size_t r = 0; r < rows;) {
    VarValue v = first.rows[r * first.arity];
    keys.push_back(v);
    while (r < rows && first.rows[r * first.arity] == v) ++r;
  }
  if (keys.size() < 2) return std::vector<OperatorPtr>{};

  const size_t m = std::min(n, keys.size());
  std::vector<OperatorPtr> streams;
  streams.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t begin = i * keys.size() / m;
    const size_t end = (i + 1) * keys.size() / m;
    const VarValue lo = keys[begin];
    const VarValue hi = end < keys.size()
                            ? keys[end] - 1
                            : std::numeric_limits<VarValue>::max();
    streams.push_back(
        std::unique_ptr<PhysicalOperator>(new TrieJoin(this, lo, hi)));
  }
  return streams;
}

}  // namespace mpfdb::exec
