#ifndef MPFDB_EXEC_EXECUTOR_H_
#define MPFDB_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "exec/operator.h"
#include "plan/physical.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace mpfdb::exec {

// Physical algorithm choices, shared with the physical planner.
using JoinAlgorithm = ::mpfdb::JoinAlgorithm;
using AggAlgorithm = ::mpfdb::AggAlgorithm;

struct ExecOptions {
  // Physical algorithm selection. Precedence, highest first:
  //   1. join/agg != kAuto: a force-override — every join (resp. group-by)
  //      node in the plan runs that algorithm, exactly like the pre-planner
  //      global knob. Used by the ablation benches and differential tests.
  //      Forcing bypasses the planner's admissibility rules, so e.g. forcing
  //      sort-merge under a sum semiring may legally perturb low-order float
  //      bits relative to hash (it reorders the Add folds).
  //   2. kAuto (the default): the physical planner picks per node from the
  //      memory-aware cost model with interesting-order reuse; every choice
  //      it makes is bit-identical to the forced-hash baseline.
  JoinAlgorithm join = JoinAlgorithm::kAuto;
  AggAlgorithm agg = AggAlgorithm::kAuto;
  // Drive the operator tree batch-at-a-time (NextBatch) instead of one row
  // at a time. Results are bit-identical either way.
  bool vectorized = true;
  // Let hash join/aggregation pack composite keys into 64-bit integers when
  // the catalog's domain statistics fit (batch path only; falls back to
  // vector keys per operator when they don't).
  bool packed_keys = true;
  // Hash-table implementation for the hash join/aggregation operators.
  // kSwiss (the default) is the SIMD open-addressing table; kStd keeps the
  // chaining tables as a differential baseline. Results are bit-identical.
  HashImpl hash_impl = HashImpl::kSwiss;
  // Let epoch-built minimal-perfect-hash indexes back repeated-probe
  // structures (storage hash indexes, workload-cache base-row lookups) when
  // a build over the live key set succeeds. Pure lookup accelerator; results
  // are bit-identical with it off.
  bool mph_indexes = true;
  // Worker threads for intra-query morsel parallelism (batch path only).
  // 0 resolves to std::thread::hardware_concurrency(); 1 reproduces the
  // serial engine exactly. The Executor itself only reads the pool off the
  // QueryContext — Database owns the pool and wires it up from this knob.
  // Results are bit-identical for every thread count.
  size_t num_threads = 0;
  // Default seed of the approximate-inference sampling backend (the Gibbs
  // chain behind Database::QueryApprox) when the per-query ApproxOptions
  // leaves its seed at 0. Threaded through so every sampled estimate in a
  // process is bit-reproducible from configuration alone; never consulted
  // by the exact execution paths.
  uint64_t sampling_seed = 1;
};

// Maps an annotated logical plan to a physical plan (per-node algorithm
// selection) and on to a physical operator tree, then runs it. Stateless
// apart from the bound catalog and semiring, so one Executor can run many
// plans.
class Executor {
 public:
  Executor(const Catalog& catalog, Semiring semiring, ExecOptions options = {})
      : catalog_(catalog), semiring_(semiring), options_(options) {}

  // Runs the logical->physical pass: per-node algorithm selection under the
  // page cost model, force-overridden by non-kAuto ExecOptions. `ctx` (may
  // be null) supplies the memory budget the planner plans for — under a
  // finite budget auto mode stays on the spill-capable hash operators.
  StatusOr<std::unique_ptr<PhysicalPlanNode>> PlanPhysical(
      const PlanNode& plan, QueryContext* ctx = nullptr) const;

  // Builds the operator tree for a physical plan (scans resolve against the
  // bound catalog).
  StatusOr<OperatorPtr> BuildPhysical(const PhysicalPlanNode& plan) const;
  // Convenience: plan physically (no memory budget), then build.
  StatusOr<OperatorPtr> BuildPhysical(const PlanNode& plan) const;

  // Builds, runs to completion, and returns the materialized result sorted
  // canonically on its variable columns. When `ctx` is non-null the whole
  // operator tree runs governed: memory charges against its budget,
  // cooperative cancellation/deadline polls, and spill-based degradation.
  StatusOr<TablePtr> Execute(const PlanNode& plan,
                             const std::string& result_name,
                             QueryContext* ctx = nullptr) const;

  // Runs an already-planned physical tree (the plan-cache hit path of
  // concurrent serving: the physical plan is memoized across queries, while
  // the operator tree is rebuilt per execution so scans resolve against this
  // executor's catalog and no runtime state is shared between concurrent
  // executions of the same cached plan). Same result contract as Execute.
  StatusOr<TablePtr> ExecutePhysical(const PhysicalPlanNode& plan,
                                     const std::string& result_name,
                                     QueryContext* ctx = nullptr) const;

  // Execute with the per-operator runtime stats spine attached: output
  // rows/batches, wall nanos (inclusive of the subtree), peak bytes charged
  // and spill partitions, keyed by the *logical* node each physical operator
  // implements (a fused IndexScan is keyed by the Select node it absorbed).
  // The returned physical plan is the one that ran.
  struct AnalyzedResult {
    TablePtr table;
    std::unique_ptr<PhysicalPlanNode> physical;
    std::map<const PlanNode*, OperatorStats> stats;
  };
  StatusOr<AnalyzedResult> ExecuteAnalyze(const PlanNode& plan,
                                          const std::string& result_name,
                                          QueryContext* ctx = nullptr) const;

 private:
  StatusOr<OperatorPtr> BuildNode(
      const PhysicalPlanNode& phys,
      std::map<const PlanNode*, OperatorStats>* stats) const;

  const Catalog& catalog_;
  Semiring semiring_;
  ExecOptions options_;
};

// Renders the physical plan annotated with estimates vs runtime actuals:
// per node `est=` / `actual=` / `q=` (cardinality q-error, max(est/actual,
// actual/est)) plus rows/batches/peak bytes/spill partitions/wall time from
// the stats spine.
std::string ExplainAnalyzePlan(
    const PhysicalPlanNode& root,
    const std::map<const PlanNode*, OperatorStats>& stats);

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_EXECUTOR_H_
