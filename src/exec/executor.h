#ifndef MPFDB_EXEC_EXECUTOR_H_
#define MPFDB_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "exec/operator.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace mpfdb::exec {

// Physical algorithm choices; the default mirrors what the optimizers' cost
// models assume (hash join + hash aggregation).
enum class JoinAlgorithm { kHash, kSortMerge, kNestedLoop };
enum class AggAlgorithm { kHash, kSort };

struct ExecOptions {
  JoinAlgorithm join = JoinAlgorithm::kHash;
  AggAlgorithm agg = AggAlgorithm::kHash;
  // Drive the operator tree batch-at-a-time (NextBatch) instead of one row
  // at a time. Results are bit-identical either way.
  bool vectorized = true;
  // Let hash join/aggregation pack composite keys into 64-bit integers when
  // the catalog's domain statistics fit (batch path only; falls back to
  // vector keys per operator when they don't).
  bool packed_keys = true;
  // Worker threads for intra-query morsel parallelism (batch path only).
  // 0 resolves to std::thread::hardware_concurrency(); 1 reproduces the
  // serial engine exactly. The Executor itself only reads the pool off the
  // QueryContext — Database owns the pool and wires it up from this knob.
  // Results are bit-identical for every thread count.
  size_t num_threads = 0;
};

// Maps an annotated logical plan to a physical operator tree and runs it.
// Stateless apart from the bound catalog and semiring, so one Executor can
// run many plans.
class Executor {
 public:
  Executor(const Catalog& catalog, Semiring semiring, ExecOptions options = {})
      : catalog_(catalog), semiring_(semiring), options_(options) {}

  // Builds the physical operator tree for `plan` (scans resolve against the
  // bound catalog).
  StatusOr<OperatorPtr> BuildPhysical(const PlanNode& plan) const;

  // Builds, runs to completion, and returns the materialized result sorted
  // canonically on its variable columns. When `ctx` is non-null the whole
  // operator tree runs governed: memory charges against its budget,
  // cooperative cancellation/deadline polls, and spill-based degradation.
  StatusOr<TablePtr> Execute(const PlanNode& plan,
                             const std::string& result_name,
                             QueryContext* ctx = nullptr) const;

  // Execute with per-node instrumentation: actual output row counts keyed by
  // plan node, for EXPLAIN ANALYZE-style estimate validation.
  struct AnalyzedResult {
    TablePtr table;
    std::map<const PlanNode*, size_t> actual_rows;
  };
  StatusOr<AnalyzedResult> ExecuteAnalyze(const PlanNode& plan,
                                          const std::string& result_name,
                                          QueryContext* ctx = nullptr) const;

 private:
  StatusOr<OperatorPtr> BuildNode(
      const PlanNode& plan,
      std::map<const PlanNode*, std::shared_ptr<size_t>>* counters) const;

  const Catalog& catalog_;
  Semiring semiring_;
  ExecOptions options_;
};

// Renders the plan with both estimated and actual row counts.
std::string ExplainAnalyzePlan(
    const PlanNode& root, const std::map<const PlanNode*, size_t>& actual_rows);

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_EXECUTOR_H_
