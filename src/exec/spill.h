#ifndef MPFDB_EXEC_SPILL_H_
#define MPFDB_EXEC_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/paged_file.h"
#include "util/status.h"

namespace mpfdb {

// Number of Grace-style partitions an operator fans its state into when the
// memory budget is hit. Partition choice uses the TOP bits of the key hash
// (hash >> 60) so it stays independent of the low bits the in-partition
// hash tables mask on.
inline constexpr size_t kSpillPartitions = 16;

// One spilled run of fixed-arity rows: `arity` VarValues plus a double
// measure per record, packed into kPageSize pages with the same layout as
// DataPage (so the format is shared with the rest of the paged storage
// layer). Records are written append-only through a one-page buffer, then
// read back in insertion order after Rewind(). The backing file is created
// under the query's spill directory and removed by the destructor, so
// spills never outlive the operator that wrote them — including on error
// paths.
//
// All IO goes through PagedFile, which means spill traffic is visible to
// FaultInjector and to the IO counters like any other storage traffic.
class SpillFile {
 public:
  static StatusOr<std::unique_ptr<SpillFile>> Create(const std::string& path,
                                                     size_t arity);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Appends one record. `vars` may be null when arity is 0.
  Status Append(const VarValue* vars, double measure);

  // Flushes the tail page and positions the read cursor at the first
  // record. Appends are not allowed after Rewind.
  Status Rewind();

  // Reads the next record; returns false at end of run.
  StatusOr<bool> Next(VarValue* vars, double* measure);

  uint64_t num_rows() const { return rows_; }
  uint64_t bytes_written() const;

 private:
  SpillFile(std::string path, std::unique_ptr<PagedFile> file, size_t arity);

  Status FlushBuffer();
  Status LoadPage(uint32_t page_id);

  std::string path_;
  std::unique_ptr<PagedFile> file_;
  size_t arity_;
  size_t rows_per_page_;
  std::vector<std::byte> buffer_;
  size_t rows_in_buffer_ = 0;
  uint64_t rows_ = 0;
  bool reading_ = false;
  uint32_t read_page_ = 0;
  size_t read_slot_ = 0;
  uint64_t read_row_ = 0;
};

}  // namespace mpfdb

#endif  // MPFDB_EXEC_SPILL_H_
