#ifndef MPFDB_EXEC_THREAD_POOL_H_
#define MPFDB_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace mpfdb::exec {

// Work-stealing pool for intra-query morsel parallelism. The pool owns
// num_threads - 1 worker threads; the thread that calls ParallelFor is the
// remaining worker, so a pool of size 1 spawns nothing and runs everything
// inline. Tasks within one ParallelFor are claimed from a shared atomic
// cursor, which is the stealing mechanism: a worker that finishes its task
// immediately claims the next unclaimed index, so skew in per-morsel cost
// balances out without any static assignment.
//
// Determinism contract: task indices carry the semantics (a morsel's range,
// a partition's id), never the executing thread, so callers get identical
// results regardless of which worker ran what. Error reporting follows the
// same rule: when several tasks fail, ParallelFor returns the failure with
// the lowest task index, not the first to be observed.
//
// Concurrent queries share one pool: any number of threads may call
// ParallelFor at the same time. Each call posts its own job onto a shared
// list; idle workers pick any job that still has unclaimed tasks, and every
// coordinator drives its own job inline, so a call always makes progress
// even when all workers are busy with other queries' jobs (no cross-query
// deadlock, merely less speedup under contention).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Runs fn(i) for every i in [0, num_tasks). The calling thread
  // participates; the call returns only after every claimed task finished.
  // Once any task fails, unclaimed tasks are abandoned (their fn never
  // runs); the returned Status is the lowest-indexed failure. Nested calls
  // from inside a task run inline on the calling worker, so task bodies may
  // themselves use ParallelFor without deadlocking the pool.
  Status ParallelFor(size_t num_tasks, const std::function<Status(size_t)>& fn);

 private:
  struct Job;

  void WorkerLoop();
  static void RunJob(Job& job);

  size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::deque<Job*> jobs_;  // guarded by mu_; every entry has unretired tasks
  bool shutdown_ = false;  // guarded by mu_
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_THREAD_POOL_H_
