#include "exec/thread_pool.h"

#include <algorithm>

namespace mpfdb::exec {

namespace {
// Set while this thread executes a task body, so nested ParallelFor calls
// degrade to inline serial execution instead of waiting on workers that are
// already busy running the outer job.
thread_local bool t_in_task = false;
}  // namespace

struct ThreadPool::Job {
  size_t num_tasks = 0;
  const std::function<Status(size_t)>* fn = nullptr;
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> tasks_done{0};
  std::atomic<bool> failed{false};
  // Workers currently inside RunJob for this job; the coordinator only
  // destroys the job once this drops to zero.
  std::atomic<size_t> active_workers{0};

  // Lowest-indexed failure wins, so callers see a stable error when several
  // morsels fail together. Guarded by `error_mu`.
  std::mutex error_mu;
  size_t first_error_index = 0;
  Status first_error = Status::Ok();

  std::mutex done_mu;
  std::condition_variable done_cv;
};

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::RunJob(Job& job) {
  for (;;) {
    size_t i = job.next_task.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.num_tasks) break;
    // A claimed index is always counted as done, even when the job already
    // failed and the body is skipped, so completion accounting stays exact.
    if (!job.failed.load(std::memory_order_relaxed)) {
      t_in_task = true;
      Status s = (*job.fn)(i);
      t_in_task = false;
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (job.first_error.ok() || i < job.first_error_index) {
          job.first_error = s;
          job.first_error_index = i;
        }
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.tasks_done.fetch_add(1, std::memory_order_relaxed);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Joining a job is only useful while it still has unclaimed tasks;
      // exhausted jobs stay on the list merely until their coordinator
      // retires them, and workers skip those instead of spinning.
      job_ready_.wait(lock, [this, &job] {
        if (shutdown_) return true;
        for (Job* j : jobs_) {
          if (j->next_task.load(std::memory_order_relaxed) < j->num_tasks) {
            job = j;
            return true;
          }
        }
        return false;
      });
      if (shutdown_) return;
      // Taking the pointer and registering as active happen under the same
      // lock the coordinator uses to retire the job, so a retired job can
      // never gain new workers.
      job->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    RunJob(*job);
    {
      std::lock_guard<std::mutex> lock(job->done_mu);
      job->active_workers.fetch_sub(1, std::memory_order_relaxed);
      job->done_cv.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t num_tasks,
                               const std::function<Status(size_t)>& fn) {
  if (num_tasks == 0) return Status::Ok();
  if (num_threads_ == 1 || num_tasks == 1 || t_in_task) {
    // Inline serial execution: pool of one, a trivial job, or a nested call
    // from inside a task body (the workers are busy with the outer job).
    bool was_in_task = t_in_task;
    for (size_t i = 0; i < num_tasks; ++i) {
      t_in_task = true;
      Status s = fn(i);
      t_in_task = was_in_task;
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }

  Job job;
  job.num_tasks = num_tasks;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(&job);
  }
  job_ready_.notify_all();

  // The calling thread is a full participant in the claim loop.
  RunJob(job);

  // Stop new workers from joining, then wait for the ones already inside.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == &job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&job] {
      return job.tasks_done.load(std::memory_order_relaxed) == job.num_tasks &&
             job.active_workers.load(std::memory_order_relaxed) == 0;
    });
  }

  std::lock_guard<std::mutex> lock(job.error_mu);
  return job.first_error;
}

}  // namespace mpfdb::exec
