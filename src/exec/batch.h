#ifndef MPFDB_EXEC_BATCH_H_
#define MPFDB_EXEC_BATCH_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "storage/schema.h"

namespace mpfdb::exec {

// Rows per RowBatch. Sized so one batch's columns plus measures stay well
// inside L2 for typical arities while amortizing the per-batch virtual call.
inline constexpr size_t kBatchSize = 1024;

// Fixed-capacity columnar batch of rows flowing between operators in
// vectorized mode: one flat VarValue buffer holding `arity` columns of
// kBatchSize values each (column stride kBatchSize) plus a contiguous
// measure vector. Producers overwrite the batch in place, so its contents
// are only valid until the producer's next NextBatch call.
class RowBatch {
 public:
  // Sets the batch to `arity` columns and zero rows. Buffers are reused when
  // the arity is unchanged, so a steady-state pipeline never allocates here.
  void Prepare(size_t arity) {
    if (arity_ != arity || measures_.size() != kBatchSize) {
      arity_ = arity;
      var_data_.resize(arity * kBatchSize);
      measures_.resize(kBatchSize);
    }
    num_rows_ = 0;
  }

  size_t arity() const { return arity_; }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }
  bool full() const { return num_rows_ == kBatchSize; }
  void set_num_rows(size_t n) { num_rows_ = n; }

  VarValue* col(size_t c) { return var_data_.data() + c * kBatchSize; }
  const VarValue* col(size_t c) const {
    return var_data_.data() + c * kBatchSize;
  }
  double* measures() { return measures_.data(); }
  const double* measures() const { return measures_.data(); }

  // Appends one row given in row-major order (the Next(Row*) adapter path).
  void AppendRow(const VarValue* vars, double measure) {
    for (size_t c = 0; c < arity_; ++c) col(c)[num_rows_] = vars[c];
    measures_[num_rows_] = measure;
    ++num_rows_;
  }

 private:
  size_t arity_ = 0;
  size_t num_rows_ = 0;
  std::vector<VarValue> var_data_;  // column-major, stride kBatchSize
  std::vector<double> measures_;
};

// Packs a composite categorical key into a single uint64 when the catalog's
// domain statistics show every component fits: a variable with domain size D
// occupies bit_width(D - 1) bits. The first variable lands in the most
// significant bits, so comparing packed keys as integers reproduces the
// lexicographic order of the decoded tuples — HashMarginalize relies on this
// for its deterministic output order.
class PackedKeyCodec {
 public:
  // Builds a codec for key components with the given domain sizes, or
  // nullopt when the total bit width exceeds 64 (callers then fall back to
  // the std::vector<VarValue> key representation).
  static std::optional<PackedKeyCodec> Make(
      const std::vector<int64_t>& domains) {
    std::vector<uint8_t> bits;
    bits.reserve(domains.size());
    size_t total = 0;
    for (int64_t d : domains) {
      if (d <= 0) return std::nullopt;
      uint8_t b = static_cast<uint8_t>(
          std::bit_width(static_cast<uint64_t>(d - 1)));
      bits.push_back(b);
      total += b;
    }
    if (total > 64) return std::nullopt;
    PackedKeyCodec codec;
    codec.bits_ = std::move(bits);
    codec.shifts_.resize(codec.bits_.size());
    size_t shift = total;
    for (size_t i = 0; i < codec.bits_.size(); ++i) {
      shift -= codec.bits_[i];
      codec.shifts_[i] = static_cast<uint8_t>(shift);
    }
    return codec;
  }

  size_t num_vars() const { return bits_.size(); }

  // Total packed width: every encoded key is < 2^total_bits(), which lets
  // small-domain callers swap the head hash map for a dense array indexed
  // directly by the packed key.
  size_t total_bits() const {
    size_t total = 0;
    for (uint8_t b : bits_) total += b;
    return total;
  }

  // Packs vals[0..num_vars). Returns false if a value falls outside its bit
  // budget — data violating the catalog's declared domain contract.
  bool Encode(const VarValue* vals, uint64_t* key) const {
    uint64_t packed = 0;
    uint32_t overflow = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      uint32_t v = static_cast<uint32_t>(vals[i]);
      overflow |= bits_[i] >= 32 ? 0u : (v >> bits_[i]);
      packed |= static_cast<uint64_t>(v) << shifts_[i];
    }
    *key = packed;
    return overflow == 0;
  }

  // Columnar Encode: packs `n` keys whose i-th components live in cols[i].
  // Returns false if any value overflows its bit budget. The column-major
  // loop lets the compiler vectorize the shift-and-or per component.
  bool EncodeColumnar(const VarValue* const* cols, size_t n,
                      uint64_t* keys) const {
    if (bits_.empty()) {
      for (size_t r = 0; r < n; ++r) keys[r] = 0;
      return true;
    }
    uint32_t overflow = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      const VarValue* col = cols[i];
      const uint8_t shift = shifts_[i];
      const uint8_t bits = bits_[i];
      if (i == 0) {
        for (size_t r = 0; r < n; ++r) {
          uint32_t v = static_cast<uint32_t>(col[r]);
          overflow |= bits >= 32 ? 0u : (v >> bits);
          keys[r] = static_cast<uint64_t>(v) << shift;
        }
      } else {
        for (size_t r = 0; r < n; ++r) {
          uint32_t v = static_cast<uint32_t>(col[r]);
          overflow |= bits >= 32 ? 0u : (v >> bits);
          keys[r] |= static_cast<uint64_t>(v) << shift;
        }
      }
    }
    return overflow == 0;
  }

  // XOR-mask with each component's sign bit set. For full-width (32-bit)
  // components — the catalog-free fallback layout — unsigned comparison of
  // (key ^ mask) reproduces the signed lexicographic order of the decoded
  // tuples, so callers can sort raw integers instead of decoded vectors.
  uint64_t SignFlipMask() const {
    uint64_t mask = 0;
    for (size_t i = 0; i < bits_.size(); ++i) {
      mask |= 1ull << (shifts_[i] + bits_[i] - 1);
    }
    return mask;
  }

  void Decode(uint64_t key, VarValue* vals) const {
    for (size_t i = 0; i < bits_.size(); ++i) {
      uint64_t mask =
          bits_[i] >= 64 ? ~0ull : (1ull << bits_[i]) - 1;
      vals[i] = static_cast<VarValue>((key >> shifts_[i]) & mask);
    }
  }

 private:
  PackedKeyCodec() = default;

  std::vector<uint8_t> bits_;
  std::vector<uint8_t> shifts_;
};

// Finalizer-style mixer (splitmix64). Packed keys are near-dense integers,
// so they need real mixing before masking to a power-of-two table.
struct PackedKeyHash {
  size_t operator()(uint64_t x) const {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

// Open-addressing hash table from packed uint64 keys to a small payload,
// used by the vectorized hash join and hash marginalize. Linear probing over
// a power-of-two slot array, growing at ~70% load; keys are never erased.
// Returned payload pointers are invalidated by the next FindOrInsert.
template <typename V>
class PackedHashMap {
 public:
  explicit PackedHashMap(size_t expected = 64) { Rehash(SlotCountFor(expected)); }

  // Payload slot for `key`, inserting `init` if absent; second is true iff
  // the key was newly inserted.
  std::pair<V*, bool> FindOrInsert(uint64_t key, const V& init) {
    if ((size_ + 1) * 10 > slots_.size() * 7) Rehash(slots_.size() * 2);
    size_t i = Probe(key);
    bool inserted = !used_[i];
    if (inserted) {
      used_[i] = 1;
      slots_[i].first = key;
      slots_[i].second = init;
      ++size_;
    }
    return {&slots_[i].second, inserted};
  }

  // Payload for `key`, or nullptr if absent.
  V* Find(uint64_t key) {
    size_t i = Probe(key);
    return used_[i] ? &slots_[i].second : nullptr;
  }

  size_t size() const { return size_; }

  void Reserve(size_t expected) {
    size_t want = SlotCountFor(expected);
    if (want > slots_.size()) Rehash(want);
  }

  // Invokes fn(key, payload) for every entry, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

  // ForEach with a mutable payload reference.
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

 private:
  static size_t SlotCountFor(size_t expected) {
    size_t slots = 16;
    while (slots * 7 < expected * 10) slots <<= 1;
    return slots;
  }

  size_t Probe(uint64_t key) const {
    size_t mask = slots_.size() - 1;
    size_t i = PackedKeyHash()(key) & mask;
    while (used_[i] && slots_[i].first != key) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_slots) {
    std::vector<std::pair<uint64_t, V>> old = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_.assign(new_slots, {});
    used_.assign(new_slots, 0);
    size_t mask = new_slots - 1;
    for (size_t i = 0; i < old.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = PackedKeyHash()(old[i].first) & mask;
      while (used_[j]) j = (j + 1) & mask;
      used_[j] = 1;
      slots_[j] = old[i];
    }
  }

  std::vector<std::pair<uint64_t, V>> slots_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_BATCH_H_
