#include "exec/gibbs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace mpfdb::exec {

namespace {

// Converts a factor's additive potential total into a sampling weight:
// exp-normalization against the per-candidate best keeps the weights finite
// (the normalizer cancels in the categorical draw).
double AdditiveWeight(SemiringKind kind, double total, double best) {
  if (kind == SemiringKind::kMinSum) return std::exp(best - total);
  return std::exp(total - best);
}

}  // namespace

StatusOr<std::unique_ptr<GibbsEstimator>> GibbsEstimator::Create(
    const MpfViewDef& view, const MpfQuerySpec& query, const Catalog& catalog,
    const GibbsOptions& options, QueryContext* ctx) {
  if (options.sweeps_per_round == 0) {
    return Status::InvalidArgument("gibbs: sweeps_per_round must be > 0");
  }
  MPFDB_ASSIGN_OR_RETURN(std::vector<std::string> all_vars,
                         view.AllVariables(catalog));
  std::unique_ptr<GibbsEstimator> g(
      new GibbsEstimator(view.semiring, options, ctx));
  g->guard_.Bind(ctx);
  g->var_names_ = all_vars;
  std::map<std::string, size_t> var_index;
  for (size_t i = 0; i < all_vars.size(); ++i) {
    var_index[all_vars[i]] = i;
    MPFDB_ASSIGN_OR_RETURN(int64_t domain, catalog.DomainSize(all_vars[i]));
    g->domains_.push_back(domain);
  }
  g->fixed_.assign(all_vars.size(), false);
  g->state_.assign(all_vars.size(), 0);
  for (const auto& sel : query.selections) {
    auto it = var_index.find(sel.var);
    if (it == var_index.end()) {
      return Status::InvalidArgument("gibbs: selection variable '" + sel.var +
                                     "' not in view");
    }
    if (sel.value < 0 || sel.value >= g->domains_[it->second]) {
      return Status::InvalidArgument("gibbs: selection value out of domain for '" +
                                     sel.var + "'");
    }
    g->fixed_[it->second] = true;
    g->state_[it->second] = sel.value;
  }
  for (const auto& gv : query.group_vars) {
    auto it = var_index.find(gv);
    if (it == var_index.end()) {
      return Status::InvalidArgument("gibbs: group variable '" + gv +
                                     "' not in view");
    }
    g->group_idx_.push_back(it->second);
  }

  const bool needs_nonneg =
      view.semiring.kind() == SemiringKind::kSumProduct ||
      view.semiring.kind() == SemiringKind::kMaxProduct ||
      view.semiring.kind() == SemiringKind::kBoolOrAnd;
  g->factors_of_var_.assign(all_vars.size(), {});
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    FactorTable f;
    uint64_t stride = 1;
    for (const auto& v : table->schema().variables()) {
      size_t idx = var_index.at(v);
      f.var_idx.push_back(idx);
      f.stride.push_back(stride);
      uint64_t domain = static_cast<uint64_t>(g->domains_[idx]);
      if (domain == 0 ||
          stride > std::numeric_limits<uint64_t>::max() / domain) {
        return Status::Unimplemented(
            "gibbs: factor '" + rel + "' domain product overflows packed keys");
      }
      stride *= domain;
    }
    MPFDB_RETURN_IF_ERROR(g->guard_.Charge(
        table->NumRows() * (sizeof(uint64_t) + sizeof(double)) * 2,
        "GibbsEstimator"));
    f.rows.reserve(table->NumRows() * 2);
    for (size_t i = 0; i < table->NumRows(); ++i) {
      RowView row = table->Row(i);
      if (needs_nonneg && row.measure < 0) {
        return Status::FailedPrecondition(
            "gibbs sampling under " + view.semiring.name() +
            " requires non-negative measures; table '" + rel +
            "' has a negative measure");
      }
      uint64_t key = 0;
      for (size_t c = 0; c < row.arity; ++c) {
        key += static_cast<uint64_t>(row.var(c)) * f.stride[c];
      }
      f.rows[key] = row.measure;
    }
    size_t fi = g->factors_.size();
    for (size_t idx : f.var_idx) g->factors_of_var_[idx].push_back(fi);
    g->factors_.push_back(std::move(f));
  }

  // Deterministic initial assignment: walk the factors in view order and,
  // per factor, adopt the first stored row consistent with everything
  // already pinned (selections first, earlier factors after). Variables no
  // factor could seed stay at 0. The chain repairs any remaining
  // inconsistency during burn-in.
  std::vector<bool> assigned = g->fixed_;
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    const auto& vars = table->schema().variables();
    std::vector<size_t> idx;
    for (const auto& v : vars) idx.push_back(var_index.at(v));
    for (size_t i = 0; i < table->NumRows(); ++i) {
      RowView row = table->Row(i);
      bool consistent = true;
      for (size_t c = 0; c < row.arity; ++c) {
        if (assigned[idx[c]] && g->state_[idx[c]] != row.var(c)) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      for (size_t c = 0; c < row.arity; ++c) {
        g->state_[idx[c]] = row.var(c);
        assigned[idx[c]] = true;
      }
      break;
    }
  }
  if (!g->domains_.empty()) {
    g->weight_scratch_.reserve(static_cast<size_t>(
        *std::max_element(g->domains_.begin(), g->domains_.end())));
  }
  return g;
}

bool GibbsEstimator::FactorMeasureAt(const FactorTable& f, size_t var,
                                     VarValue value, double* measure) const {
  uint64_t key = 0;
  for (size_t c = 0; c < f.var_idx.size(); ++c) {
    VarValue v = f.var_idx[c] == var ? value : state_[f.var_idx[c]];
    key += static_cast<uint64_t>(v) * f.stride[c];
  }
  auto it = f.rows.find(key);
  if (it == f.rows.end()) return false;
  *measure = it->second;
  return true;
}

void GibbsEstimator::ResampleVariable(size_t var) {
  const auto& touching = factors_of_var_[var];
  const size_t domain = static_cast<size_t>(domains_[var]);
  std::vector<double>& w = weight_scratch_;
  w.assign(domain, 0.0);
  const SemiringKind kind = semiring_.kind();
  const bool multiplicative = kind == SemiringKind::kSumProduct ||
                              kind == SemiringKind::kMaxProduct ||
                              kind == SemiringKind::kBoolOrAnd;
  if (multiplicative) {
    for (size_t v = 0; v < domain; ++v) {
      double prod = 1.0;
      bool ok = true;
      for (size_t fi : touching) {
        double m;
        if (!FactorMeasureAt(factors_[fi], var, static_cast<VarValue>(v), &m)) {
          ok = false;
          break;
        }
        prod *= m;
      }
      w[v] = ok ? prod : 0.0;
    }
  } else {
    // Additive potentials (min_sum / max_sum / log_sum_product): collect the
    // per-candidate totals, then exp-normalize against the best so the
    // categorical weights stay finite.
    std::vector<double> total(domain, 0.0);
    std::vector<bool> valid(domain, false);
    double best = 0.0;
    bool have_best = false;
    for (size_t v = 0; v < domain; ++v) {
      double sum = 0.0;
      bool ok = true;
      for (size_t fi : touching) {
        double m;
        if (!FactorMeasureAt(factors_[fi], var, static_cast<VarValue>(v), &m)) {
          ok = false;
          break;
        }
        sum += m;
      }
      if (!ok) continue;
      total[v] = sum;
      valid[v] = true;
      bool better = kind == SemiringKind::kMinSum ? (!have_best || sum < best)
                                                  : (!have_best || sum > best);
      if (better) {
        best = sum;
        have_best = true;
      }
    }
    if (!have_best) return;  // no candidate has support; keep current value
    for (size_t v = 0; v < domain; ++v) {
      if (valid[v]) w[v] = AdditiveWeight(kind, total[v], best);
    }
  }
  size_t pick = rng_.Categorical(w);
  if (pick < domain) state_[var] = static_cast<VarValue>(pick);
}

bool GibbsEstimator::StateScore(double* score) const {
  double acc = semiring_.MultiplyIdentity();
  for (const auto& f : factors_) {
    uint64_t key = 0;
    for (size_t c = 0; c < f.var_idx.size(); ++c) {
      key += static_cast<uint64_t>(state_[f.var_idx[c]]) * f.stride[c];
    }
    auto it = f.rows.find(key);
    if (it == f.rows.end()) return false;
    acc = semiring_.Multiply(acc, it->second);
    if (semiring_.kind() == SemiringKind::kBoolOrAnd && acc == 0.0) {
      return false;  // an explicit false row: state outside the support
    }
  }
  *score = acc;
  return true;
}

void GibbsEstimator::RecordState() {
  std::vector<VarValue> group;
  group.reserve(group_idx_.size());
  for (size_t idx : group_idx_) group.push_back(state_[idx]);
  ++visits_[group];
  ++samples_;
  double score;
  if (StateScore(&score)) {
    // Under the sum kinds Add is not idempotent, so folding a revisited
    // assignment would double-count its term and push the incumbent past
    // the exact total — no longer a bound. Fold each distinct assignment
    // once; when the dedup set hits the memory budget the incumbent simply
    // stops tightening (it stays a valid bound).
    const bool idempotent_add =
        semiring_.kind() != SemiringKind::kSumProduct &&
        semiring_.kind() != SemiringKind::kLogSumProduct;
    if (!idempotent_add) {
      if (seen_states_saturated_) return;
      auto [state_it, fresh] = seen_states_.insert(state_);
      if (!fresh) return;
      if (!guard_
               .Charge(state_.size() * sizeof(VarValue) + 48,
                       "GibbsEstimator")
               .ok()) {
        seen_states_.erase(state_it);
        seen_states_saturated_ = true;
        return;
      }
    }
    auto it = incumbent_.find(group);
    if (it == incumbent_.end()) {
      incumbent_.emplace(std::move(group), score);
    } else {
      it->second = semiring_.Add(it->second, score);
    }
  }
}

Status GibbsEstimator::RunRound() {
  size_t free_vars = 0;
  for (bool f : fixed_) free_vars += f ? 0 : 1;
  if (ctx_ != nullptr) {
    // Rounds are the anytime granularity, so force a real clock check at
    // every round boundary: on small models the per-sweep polls below may
    // never accumulate enough row-units to observe the deadline at all.
    MPFDB_RETURN_IF_ERROR(ctx_->Poll(QueryContext::kPollIntervalRows));
  }
  for (size_t sweep = 0; sweep < options_.sweeps_per_round; ++sweep) {
    if (ctx_ != nullptr) {
      MPFDB_RETURN_IF_ERROR(ctx_->Poll(std::max<size_t>(free_vars, 1)));
    }
    for (size_t var = 0; var < state_.size(); ++var) {
      if (!fixed_[var]) ResampleVariable(var);
    }
    ++total_sweeps_;
    if (total_sweeps_ > options_.burn_in_sweeps) RecordState();
  }
  // Publish: the estimate moves only here, so a failed round can never tear
  // what callers read.
  std::map<std::vector<VarValue>, double> fresh = ComputeEstimate();
  double delta = 0;
  for (const auto& [group, value] : fresh) {
    auto it = published_estimate_.find(group);
    double prev = it == published_estimate_.end()
                      ? semiring_.AddIdentity()
                      : it->second;
    double d = std::abs(value - prev);
    if (std::isnan(d) || std::isinf(d)) d = std::numeric_limits<double>::max();
    delta = std::max(delta, d);
  }
  last_delta_ = delta;
  published_estimate_ = std::move(fresh);
  published_incumbent_ = incumbent_;
  ++rounds_;
  return Status::Ok();
}

std::map<std::vector<VarValue>, double> GibbsEstimator::ComputeEstimate()
    const {
  std::map<std::vector<VarValue>, double> out;
  switch (semiring_.kind()) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kLogSumProduct: {
      if (samples_ == 0) return out;
      double total = static_cast<double>(samples_);
      for (const auto& [group, count] : visits_) {
        double freq = static_cast<double>(count) / total;
        out[group] = semiring_.kind() == SemiringKind::kLogSumProduct
                         ? std::log(freq)
                         : freq;
      }
      return out;
    }
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
    case SemiringKind::kMaxProduct:
    case SemiringKind::kBoolOrAnd:
      return incumbent_;
  }
  return out;
}

TablePtr GibbsEstimator::RenderTable(
    const std::string& name,
    const std::map<std::vector<VarValue>, double>& groups) const {
  std::vector<std::string> vars;
  for (size_t idx : group_idx_) vars.push_back(var_names_[idx]);
  auto table = std::make_shared<Table>(name, Schema(std::move(vars), "f"));
  for (const auto& [group, value] : groups) table->AppendRow(group, value);
  return table;
}

TablePtr GibbsEstimator::EstimateTable(const std::string& name) const {
  return RenderTable(name, published_estimate_);
}

TablePtr GibbsEstimator::IncumbentTable(const std::string& name) const {
  return RenderTable(name, published_incumbent_);
}

bool GibbsEstimator::IncumbentIsLowerBound() const {
  // Add-folding visited assignments tightens toward the exact answer from
  // below for every kind except kMinSum: a subset of assignments can only
  // under-shoot a sum/max/or, and over-shoot a min.
  return semiring_.kind() != SemiringKind::kMinSum;
}

}  // namespace mpfdb::exec
