#include "exec/hash_table.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>

namespace mpfdb::exec {

namespace {

std::atomic<bool> g_force_scalar{[] {
  const char* env = std::getenv("MPFDB_SCALAR_HASH");
  return env != nullptr && env[0] == '1';
}()};

}  // namespace

bool ScalarHashProbesForced() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

void SetForceScalarHashProbes(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

// CHD construction: hash every key into one of r = ~n/4 buckets, then
// assign buckets in decreasing-size order, searching each bucket for a
// displacement seed d under which all of its keys land on distinct free
// slots of the n-slot output array. Large buckets place first while the
// array is still mostly free, so the expected search per bucket stays
// small. Singleton buckets skip the search entirely: they are assigned
// leftover free slots directly (seed kDirectBase + slot), because at load
// factor 1.0 the tail singleton would otherwise need to hit one specific
// free slot among n — an expected n seeds, far past any sane budget. If a
// multi-key bucket exhausts the seed budget the whole build restarts with
// a rotated bucket hash, and after a few rounds it reports failure so the
// caller keeps its generic-hash fallback.
bool PerfectHashIndex::Build(const std::vector<uint64_t>& keys, uint64_t epoch,
                             PerfectHashIndex* out) {
  const size_t n = keys.size();
  *out = PerfectHashIndex();
  out->epoch_ = epoch;
  if (n == 0) return true;

  size_t r = 1;
  while (r * 4 < n) r <<= 1;

  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds; ++round) {
    // Rotating the pre-mix re-deals keys into different buckets per round.
    const uint64_t round_salt = 0x6a09e667f3bcc909ull * (round + 1);
    std::vector<std::vector<uint32_t>> buckets(r);
    bool duplicate = false;
    for (size_t i = 0; i < n; ++i) {
      uint64_t h = swiss::MixU64(keys[i] ^ round_salt);
      buckets[h & (r - 1)].push_back(static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> order(r);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (buckets[a].size() != buckets[b].size())
        return buckets[a].size() > buckets[b].size();
      return a < b;
    });

    std::vector<uint32_t> seeds(r, 0);
    std::vector<uint64_t> keys_by_slot(n, 0);
    std::vector<uint32_t> ids_by_slot(n, 0);
    std::vector<uint8_t> used(n, 0);
    bool failed = false;
    std::vector<uint32_t> singletons;
    for (uint32_t b : order) {
      const auto& bucket = buckets[b];
      if (bucket.empty()) continue;
      if (bucket.size() == 1) {
        // Direct-placed after every multi-key bucket has claimed its slots.
        singletons.push_back(b);
        continue;
      }
      // Duplicate keys can never occupy distinct slots; detect them once
      // here instead of burning the whole seed budget.
      for (size_t x = 1; x < bucket.size() && !duplicate; ++x) {
        for (size_t y = 0; y < x; ++y) {
          if (keys[bucket[x]] == keys[bucket[y]]) {
            duplicate = true;
            break;
          }
        }
      }
      if (duplicate) break;
      bool placed = false;
      std::vector<size_t> positions(bucket.size());
      for (uint32_t d = 1; d <= kMaxSeed; ++d) {
        bool ok = true;
        for (size_t k = 0; k < bucket.size() && ok; ++k) {
          uint64_t h = swiss::MixU64(keys[bucket[k]] ^ round_salt);
          size_t pos = PositionFor(h, d, n);
          if (used[pos]) {
            ok = false;
            break;
          }
          for (size_t j = 0; j < k; ++j) {
            if (positions[j] == pos) {
              ok = false;
              break;
            }
          }
          positions[k] = pos;
        }
        if (ok) {
          for (size_t k = 0; k < bucket.size(); ++k) {
            used[positions[k]] = 1;
            keys_by_slot[positions[k]] = keys[bucket[k]];
            ids_by_slot[positions[k]] = bucket[k];
          }
          seeds[b] = d;
          placed = true;
          break;
        }
      }
      if (!placed) {
        failed = true;
        break;
      }
    }
    if (duplicate) return false;
    if (!failed) {
      // Hand each singleton bucket the next free slot. Exactly as many free
      // slots remain as there are singletons, so this cannot fail.
      size_t next_free = 0;
      for (uint32_t b : singletons) {
        while (used[next_free]) ++next_free;
        used[next_free] = 1;
        keys_by_slot[next_free] = keys[buckets[b][0]];
        ids_by_slot[next_free] = buckets[b][0];
        seeds[b] = kDirectBase + static_cast<uint32_t>(next_free);
        ++next_free;
      }
      out->round_salt_ = round_salt;
      out->seeds_ = std::move(seeds);
      out->keys_by_slot_ = std::move(keys_by_slot);
      out->ids_by_slot_ = std::move(ids_by_slot);
      return true;
    }
  }
  return false;
}

}  // namespace mpfdb::exec
