#include "exec/operator.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "exec/spill.h"
#include "exec/thread_pool.h"

namespace mpfdb::exec {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);
constexpr uint32_t kNoChain = 0xffffffffu;

// Deterministic per-entry footprint estimates for memory accounting. They
// do not chase malloc's exact behavior; what matters is that charges are
// repeatable, roughly proportional to real usage, and made BEFORE growth so
// the budget is a ceiling rather than a post-mortem.
constexpr size_t kHashEntryOverhead = 48;     // node + bucket, amortized
constexpr size_t kPackedAggEntryBytes = 24;   // open-addressing slot at load

size_t RowFootprint(size_t arity) {
  return arity * sizeof(VarValue) + sizeof(double);
}

size_t MaterializedRowFootprint(const Row& row) {
  return sizeof(Row) + row.vars.size() * sizeof(VarValue);
}

struct KeyHash {
  size_t operator()(const std::vector<VarValue>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (VarValue v : key) {
      uint32_t u = static_cast<uint32_t>(v);
      for (int i = 0; i < 4; ++i) {
        h ^= (u >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    }
    return static_cast<size_t>(h);
  }
};

// Runtime-dispatch wrappers selecting between the legacy tables and the
// Swiss tables per ExecOptions::hash_impl. One instance is constructed per
// operator open, so the `swiss_` test is a single predictable branch in
// front of a 10-30 cycle probe — cheap enough that the big drain loops stay
// un-templated. APIs mirror PackedHashMap.
template <typename V>
class PackedMap {
 public:
  explicit PackedMap(HashImpl impl = HashImpl::kSwiss, size_t expected = 64) {
    if (impl == HashImpl::kSwiss) {
      swiss_.emplace(expected);
    } else {
      probe_.emplace(expected);
    }
  }
  std::pair<V*, bool> FindOrInsert(uint64_t key, const V& init) {
    if (swiss_) return swiss_->FindOrInsert(key, init);
    return probe_->FindOrInsert(key, init);
  }
  V* Find(uint64_t key) {
    if (swiss_) return swiss_->Find(key);
    return probe_->Find(key);
  }
  size_t size() const { return swiss_ ? swiss_->size() : probe_->size(); }
  void Reserve(size_t expected) {
    if (swiss_) {
      swiss_->Reserve(expected);
    } else {
      probe_->Reserve(expected);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (swiss_) {
      swiss_->ForEach(fn);
    } else {
      probe_->ForEach(fn);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    if (swiss_) {
      swiss_->ForEachMutable(fn);
    } else {
      probe_->ForEachMutable(fn);
    }
  }

 private:
  std::optional<SwissTable<V>> swiss_;
  std::optional<PackedHashMap<V>> probe_;
};

// Same dispatch for std::vector<VarValue> keys: the Swiss variant hashes and
// interns the raw key bytes (no per-row vector allocation, memcmp compare),
// the legacy variant keeps the node-based std::unordered_map. ForEach hands
// the key back as a vector either way; the Swiss path decodes into one
// scratch vector reused across entries.
template <typename V>
class VecKeyMap {
 public:
  explicit VecKeyMap(HashImpl impl = HashImpl::kSwiss, size_t expected = 16) {
    if (impl == HashImpl::kSwiss) {
      swiss_.emplace(expected);
    } else {
      std_.emplace();
    }
  }
  std::pair<V*, bool> FindOrInsert(const std::vector<VarValue>& key,
                                   const V& init) {
    if (swiss_) {
      return swiss_->FindOrInsert(key.data(), key.size() * sizeof(VarValue),
                                  init);
    }
    auto [it, inserted] = std_->try_emplace(key, init);
    return {&it->second, inserted};
  }
  V* Find(const std::vector<VarValue>& key) {
    if (swiss_) {
      return swiss_->Find(key.data(), key.size() * sizeof(VarValue));
    }
    auto it = std_->find(key);
    return it == std_->end() ? nullptr : &it->second;
  }
  size_t size() const { return swiss_ ? swiss_->size() : std_->size(); }
  void clear() {
    if (swiss_) {
      *swiss_ = SwissBytesTable<V>();
    } else {
      std_->clear();
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (swiss_) {
      std::vector<VarValue> key;
      swiss_->ForEach([&](const char* bytes, size_t len, const V& val) {
        key.resize(len / sizeof(VarValue));
        std::memcpy(key.data(), bytes, len);
        fn(key, val);
      });
    } else {
      for (const auto& [key, val] : *std_) fn(key, val);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    if (swiss_) {
      std::vector<VarValue> key;
      swiss_->ForEachMutable([&](const char* bytes, size_t len, V& val) {
        key.resize(len / sizeof(VarValue));
        std::memcpy(key.data(), bytes, len);
        fn(key, val);
      });
    } else {
      for (auto& [key, val] : *std_) fn(key, val);
    }
  }

 private:
  std::optional<SwissBytesTable<V>> swiss_;
  std::optional<std::unordered_map<std::vector<VarValue>, V, KeyHash>> std_;
};

std::vector<size_t> IndicesOf(const Schema& schema,
                              const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) indices.push_back(*schema.IndexOf(name));
  return indices;
}

// Computes the join output schema and per-side column mappings.
struct JoinLayout {
  Schema schema;
  std::vector<std::string> shared;
  std::vector<size_t> shared_left;
  std::vector<size_t> shared_right;
  std::vector<size_t> out_from_left;   // output col -> left col or kNpos
  std::vector<size_t> out_from_right;  // output col -> right col or kNpos
};

JoinLayout MakeJoinLayout(const Schema& left, const Schema& right) {
  JoinLayout layout;
  layout.shared = varset::Intersect(left.variables(), right.variables());
  std::vector<std::string> out_vars =
      varset::Union(left.variables(), right.variables());
  layout.schema = Schema(out_vars, left.measure_name());
  layout.shared_left = IndicesOf(left, layout.shared);
  layout.shared_right = IndicesOf(right, layout.shared);
  layout.out_from_left.resize(out_vars.size(), kNpos);
  layout.out_from_right.resize(out_vars.size(), kNpos);
  for (size_t c = 0; c < out_vars.size(); ++c) {
    if (auto idx = left.IndexOf(out_vars[c])) {
      layout.out_from_left[c] = *idx;
    } else {
      layout.out_from_right[c] = *right.IndexOf(out_vars[c]);
    }
  }
  return layout;
}

// Drains `child` into `out`, charging every materialized row against
// `memory` (a guard bound to a null context charges nothing). `who` names
// the draining operator for budget errors and error-context annotation.
Status DrainChild(PhysicalOperator& child, std::vector<Row>* out,
                  MemoryGuard* memory, const char* who) {
  Row row;
  while (true) {
    auto has = child.Next(&row);
    if (!has.ok()) return Annotate(has.status(), who);
    if (!*has) break;
    MPFDB_RETURN_IF_ERROR(memory->Charge(MaterializedRowFootprint(row), who));
    out->push_back(row);
  }
  return Status::Ok();
}

// Drains `child` into a flat row-major arena, avoiding the per-tuple vector
// allocation that materializing std::vector<Row> incurs.
Status DrainToArena(PhysicalOperator& child, std::vector<VarValue>* vars,
                    std::vector<double>* measures, MemoryGuard* memory,
                    const char* who) {
  Row row;
  while (true) {
    auto has = child.Next(&row);
    if (!has.ok()) return Annotate(has.status(), who);
    if (!*has) break;
    MPFDB_RETURN_IF_ERROR(memory->Charge(RowFootprint(row.vars.size()), who));
    vars->insert(vars->end(), row.vars.begin(), row.vars.end());
    measures->push_back(row.measure);
  }
  return Status::Ok();
}

// Drains `child` through NextBatch into a flat row-major arena — the
// vectorized counterpart of DrainToArena, used by the sort operators' native
// batch paths so a sort node doesn't force its subtree back to row-at-a-time
// pulls. Row order is the child's batch emission order, which equals its row
// emission order by the NextBatch contract.
Status DrainToArenaBatches(PhysicalOperator& child, std::vector<VarValue>* vars,
                           std::vector<double>* measures, MemoryGuard* memory,
                           const char* who) {
  const size_t arity = child.output_schema().arity();
  RowBatch batch;
  while (true) {
    auto has = child.NextBatch(&batch);
    if (!has.ok()) return Annotate(has.status(), who);
    if (!*has) break;
    const size_t n = batch.num_rows();
    MPFDB_RETURN_IF_ERROR(memory->Charge(n * RowFootprint(arity), who));
    const size_t base = measures->size();
    vars->resize((base + n) * arity);
    for (size_t c = 0; c < arity; ++c) {
      const VarValue* col = batch.col(c);
      VarValue* dst = vars->data() + base * arity + c;
      for (size_t r = 0; r < n; ++r) dst[r * arity] = col[r];
    }
    const double* m = batch.measures();
    measures->insert(measures->end(), m, m + n);
  }
  return Status::Ok();
}

// Spill partition for a key hash. The TOP bits are used so the choice stays
// independent of the low bits the per-partition hash tables mask on —
// otherwise every key in a partition would collide into 1/16th of the table.
size_t SpillPartOf(size_t hash) {
  static_assert((kSpillPartitions & (kSpillPartitions - 1)) == 0,
                "partition count must be a power of two");
  return (hash >> 60) & (kSpillPartitions - 1);
}

// Creates one spill run per partition, each holding records of `arity`
// VarValues plus a measure.
StatusOr<std::vector<std::unique_ptr<SpillFile>>> MakeSpillPartitions(
    QueryContext* ctx, size_t arity) {
  std::vector<std::unique_ptr<SpillFile>> parts(kSpillPartitions);
  for (auto& part : parts) {
    MPFDB_ASSIGN_OR_RETURN(part, SpillFile::Create(ctx->NextSpillPath(), arity));
  }
  return parts;
}

// Re-aggregates spilled (group key, measure) records partition by partition,
// appending the resulting groups to `entries` (unsorted). Within a key the
// records appear in the file in arrival order with the pre-spill partial
// aggregate first, so the semiring Adds replay in exactly the order the
// in-memory table would have applied them — results stay bit-identical.
Status DrainAggSpill(std::vector<std::unique_ptr<SpillFile>>& parts,
                     const Semiring& semiring, size_t nkeys, QueryContext* ctx,
                     HashImpl hash_impl,
                     std::vector<std::pair<std::vector<VarValue>, double>>* entries) {
  std::vector<VarValue> key(nkeys);
  double measure = 0;
  for (auto& part : parts) {
    ctx->RecordSpill(part->num_rows(), part->bytes_written());
    MPFDB_RETURN_IF_ERROR(part->Rewind());
    // Each partition's table holds ~1/kSpillPartitions of the groups; its
    // transient footprint is tracked but not failed (a single partition is
    // the smallest unit this strategy can degrade to).
    MemoryGuard part_memory(ctx);
    VecKeyMap<double> table(hash_impl);
    while (true) {
      MPFDB_ASSIGN_OR_RETURN(bool has, part->Next(key.data(), &measure));
      if (!has) break;
      MPFDB_RETURN_IF_ERROR(ctx->Poll(1));
      auto [slot, inserted] = table.FindOrInsert(key, measure);
      if (inserted) {
        part_memory.ChargeUnchecked(kHashEntryOverhead + RowFootprint(nkeys));
      } else {
        *slot = semiring.Add(*slot, measure);
      }
    }
    table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
      entries->emplace_back(k, m);
    });
    part.reset();  // unlink the run as soon as it is drained
  }
  return Status::Ok();
}

// Builds a packed-key codec for `vars` from the catalog's domain statistics,
// or nullopt when there is no catalog, a variable is unregistered, or the
// key does not fit in 64 bits.
std::optional<PackedKeyCodec> MakeCodecFor(
    const Catalog* catalog, const std::vector<std::string>& vars) {
  if (catalog == nullptr) return std::nullopt;
  std::vector<int64_t> domains;
  domains.reserve(vars.size());
  for (const auto& var : vars) {
    auto domain = catalog->DomainSize(var);
    if (!domain.ok()) return std::nullopt;
    domains.push_back(*domain);
  }
  return PackedKeyCodec::Make(domains);
}

Status PackedDomainViolation(const char* op) {
  return Status::InvalidArgument(
      std::string(op) +
      ": key value outside its variable's declared catalog domain; cannot "
      "pack the key");
}

// The shape of the semiring's Multiply, resolved once per pipeline so the
// batch emit loops can inline the arithmetic. The fast paths perform exactly
// the IEEE operation Semiring::Multiply performs, so results stay
// bit-identical to the row-at-a-time engine.
enum class MulOp { kTimes, kPlus, kGeneric };

MulOp MulOpFor(const Semiring& semiring) {
  switch (semiring.kind()) {
    case SemiringKind::kSumProduct:
    case SemiringKind::kMaxProduct:
      return MulOp::kTimes;
    case SemiringKind::kMinSum:
    case SemiringKind::kMaxSum:
    case SemiringKind::kLogSumProduct:
      return MulOp::kPlus;
    default:
      return MulOp::kGeneric;
  }
}

// Compacts `batch` in place to the rows listed in `sel` (ascending).
void CompactBatch(RowBatch* batch, const std::vector<uint32_t>& sel) {
  for (size_t c = 0; c < batch->arity(); ++c) {
    VarValue* col = batch->col(c);
    for (size_t i = 0; i < sel.size(); ++i) col[i] = col[sel[i]];
  }
  double* measures = batch->measures();
  for (size_t i = 0; i < sel.size(); ++i) measures[i] = measures[sel[i]];
  batch->set_num_rows(sel.size());
}

// --- Morsel parallelism helpers --------------------------------------------

// The pool driving a parallel batch pipeline, or null when execution stays
// on the calling thread.
ThreadPool* PoolOf(QueryContext* ctx) {
  if (ctx == nullptr) return nullptr;
  ThreadPool* pool = ctx->thread_pool();
  return (pool != nullptr && pool->num_threads() > 1) ? pool : nullptr;
}

// Morsels per pipeline: aim for ~16K source rows each so claims amortize the
// per-stream setup, but never fewer than one per worker (otherwise cores sit
// idle) and never more than 8 per worker (clone state is not free). The
// count only shapes scheduling; results are identical for every choice.
size_t MorselCount(size_t source_rows, size_t num_threads) {
  constexpr size_t kMorselRows = 16 * 1024;
  const size_t by_rows =
      source_rows == 0 ? 1 : (source_rows + kMorselRows - 1) / kMorselRows;
  return std::clamp(by_rows, num_threads, 8 * num_threads);
}

// Splits [0, total) into exactly `n` contiguous ranges in order (some may be
// empty). Deterministic: stream i always covers the same rows, so outputs
// concatenated by stream index reproduce the serial row order.
std::vector<std::pair<size_t, size_t>> SplitRanges(size_t total, size_t n) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(n);
  const size_t chunk = total / n;
  const size_t extra = total % n;
  size_t begin = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t len = chunk + (i < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

// Key-hash partitions for parallel aggregation. Uses bits 56..59 so the
// choice is independent of both the low bits PackedHashMap masks on and the
// top-4 bits SpillPartOf uses — a spill triggered mid-parallel run must not
// see all of a partition's keys collide into one spill file.
constexpr size_t kAggPartitions = 16;
size_t AggPartOf(size_t hash) {
  static_assert((kAggPartitions & (kAggPartitions - 1)) == 0,
                "partition count must be a power of two");
  return (hash >> 56) & (kAggPartitions - 1);
}

// Dispatches `body` with a monomorphized Add for each built-in semiring so
// hot accumulate loops inline the arithmetic. Every fast path performs
// exactly the IEEE operation Semiring::Add performs; serial and parallel
// folds both go through here, so their per-key arithmetic is identical.
template <class Body>
void DispatchAdd(const Semiring& semiring, Body&& body) {
  switch (semiring.kind()) {
    case SemiringKind::kSumProduct:
      body([](double a, double b) { return a + b; });
      break;
    case SemiringKind::kMinSum:
      body([](double a, double b) { return std::min(a, b); });
      break;
    case SemiringKind::kMaxSum:
    case SemiringKind::kMaxProduct:
      body([](double a, double b) { return std::max(a, b); });
      break;
    default:
      body([&semiring](double a, double b) { return semiring.Add(a, b); });
      break;
  }
}

// Range-restricted scan over an in-memory table: one morsel of a SeqScan.
class SeqScanRangeStream : public PhysicalOperator {
 public:
  SeqScanRangeStream(TablePtr table, size_t begin, size_t end)
      : table_(std::move(table)), begin_(begin), end_(end) {}

  Status Open() override {
    next_row_ = begin_;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row*) override {
    return Status::Internal("morsel streams are batch-only");
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    batch->Prepare(table_->schema().arity());
    if (next_row_ >= end_) return false;
    const size_t n = std::min(kBatchSize, end_ - next_row_);
    MPFDB_RETURN_IF_ERROR(PollContext(n));
    table_->ReadRangeColumnar(next_row_, n, kBatchSize, batch->col(0),
                              batch->measures());
    batch->set_num_rows(n);
    next_row_ += n;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override {
    return "SeqScanRange(" + table_->name() + ")";
  }

 private:
  TablePtr table_;
  size_t begin_, end_;
  size_t next_row_ = 0;
};

// Range-restricted scan over a disk table. Page reads go through the
// table's buffer pool, which serializes them internally; the transpose and
// all downstream work still run per-morsel.
class DiskScanRangeStream : public PhysicalOperator {
 public:
  DiskScanRangeStream(DiskTable* table, uint64_t begin, uint64_t end)
      : table_(table), schema_(table->schema()), begin_(begin), end_(end) {}

  Status Open() override {
    next_row_ = begin_;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row*) override {
    return Status::Internal("morsel streams are batch-only");
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    const size_t arity = schema_.arity();
    batch->Prepare(arity);
    if (next_row_ >= end_) return false;
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(kBatchSize, end_ - next_row_));
    MPFDB_RETURN_IF_ERROR(PollContext(n));
    scratch_vars_.resize(n * arity);
    scratch_measures_.resize(n);
    MPFDB_RETURN_IF_ERROR(table_->ReadRange(next_row_, n, scratch_vars_.data(),
                                            scratch_measures_.data()));
    for (size_t c = 0; c < arity; ++c) {
      VarValue* out = batch->col(c);
      const VarValue* in = scratch_vars_.data() + c;
      for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
    }
    std::copy(scratch_measures_.begin(), scratch_measures_.end(),
              batch->measures());
    batch->set_num_rows(n);
    next_row_ += n;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override {
    return "DiskScanRange(" + table_->name() + ")";
  }

 private:
  DiskTable* table_;
  Schema schema_;
  uint64_t begin_, end_;
  uint64_t next_row_ = 0;
  std::vector<VarValue> scratch_vars_;
  std::vector<double> scratch_measures_;
};

// Batch reader over a row-major materialized result owned by a blocking
// operator (HashMarginalize's sorted groups). The owner must outlive the
// stream.
class MaterializedRangeStream : public PhysicalOperator {
 public:
  MaterializedRangeStream(Schema schema, const VarValue* vars,
                          const double* measures, size_t begin, size_t end)
      : schema_(std::move(schema)),
        vars_(vars),
        measures_(measures),
        begin_(begin),
        end_(end) {}

  Status Open() override {
    next_row_ = begin_;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row*) override {
    return Status::Internal("morsel streams are batch-only");
  }
  StatusOr<bool> NextBatch(RowBatch* batch) override {
    const size_t arity = schema_.arity();
    batch->Prepare(arity);
    if (next_row_ >= end_) return false;
    const size_t n = std::min(kBatchSize, end_ - next_row_);
    MPFDB_RETURN_IF_ERROR(PollContext(n));
    for (size_t c = 0; c < arity; ++c) {
      VarValue* out = batch->col(c);
      const VarValue* in = vars_ + next_row_ * arity + c;
      for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
    }
    std::copy(measures_ + next_row_, measures_ + next_row_ + n,
              batch->measures());
    batch->set_num_rows(n);
    next_row_ += n;
    return true;
  }
  void Close() override {}
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "MaterializedRange"; }

 private:
  Schema schema_;
  const VarValue* vars_;
  const double* measures_;
  size_t begin_, end_;
  size_t next_row_ = 0;
};

// Wraps each of the child's morsel streams in a fresh copy of a streaming
// unary operator built by `wrap`. Shared by Filter/MeasureFilter/
// StreamProject, whose per-stream state is rebuilt by their own Open.
template <class Wrap>
StatusOr<std::vector<OperatorPtr>> WrapChildStreams(PhysicalOperator& child,
                                                    size_t n, Wrap&& wrap) {
  MPFDB_ASSIGN_OR_RETURN(std::vector<OperatorPtr> streams,
                         child.MakeMorselStreams(n));
  std::vector<OperatorPtr> wrapped;
  wrapped.reserve(streams.size());
  for (auto& stream : streams) wrapped.push_back(wrap(std::move(stream)));
  return wrapped;
}

}  // namespace

StatusOr<bool> PhysicalOperator::NextBatch(RowBatch* batch) {
  // Adapter: any operator without a native batch implementation is driven
  // one row at a time into the caller's batch. An error from Next surfaces
  // with this operator's name attached so batch-mode failures are
  // attributable even through the adapter; a partially filled batch is
  // discarded, never returned as if it were a clean result.
  batch->Prepare(output_schema().arity());
  Row row;
  while (!batch->full()) {
    auto has = Next(&row);
    if (!has.ok()) return Annotate(has.status(), name());
    if (!*has) break;
    batch->AppendRow(row.vars.data(), row.measure);
  }
  return !batch->empty();
}

StatusOr<TablePtr> Run(PhysicalOperator& op, const std::string& result_name,
                       QueryContext* ctx) {
  Status opened = op.Open();
  if (!opened.ok()) {
    // Blocking operators may have drained (and charged for) part of their
    // input before failing; Close releases it.
    op.Close();
    return opened;
  }
  auto table = std::make_shared<Table>(result_name, op.output_schema());
  // One scratch row reused across the whole drain, so the steady state does
  // not allocate per tuple.
  Row row;
  row.vars.reserve(op.output_schema().arity());
  while (true) {
    auto has = op.Next(&row);
    if (!has.ok()) {
      // Tear the tree down before surfacing the error so blocking operators
      // drop their build state and spill files immediately.
      op.Close();
      return has.status();
    }
    if (!*has) break;
    if (ctx != nullptr) {
      Status live = ctx->Poll(1);
      if (!live.ok()) {
        op.Close();
        return live;
      }
    }
    table->AppendRowRaw(row.vars.data(), row.measure);
  }
  op.Close();
  return table;
}

namespace {

// Drains `op` through morsel streams, one pool task per stream, buffering
// each stream's rows separately and appending the buffers to `table` in
// stream-index order — exactly the serial row order. Returns false when the
// operator cannot split (no pool, unsupported shape, spill mode); the
// caller then drains serially.
StatusOr<bool> TryRunBatchParallel(PhysicalOperator& op, Table* table,
                                   QueryContext* ctx) {
  ThreadPool* pool = PoolOf(ctx);
  if (pool == nullptr || !op.SupportsMorselStreams()) return false;
  auto streams_or = op.MakeMorselStreams(
      MorselCount(op.MorselSourceRows(), pool->num_threads()));
  if (!streams_or.ok()) return streams_or.status();
  std::vector<OperatorPtr> streams = std::move(*streams_or);
  if (streams.empty()) return false;

  const size_t arity = op.output_schema().arity();
  struct Chunk {
    std::vector<VarValue> vars;  // row-major
    std::vector<double> measures;
  };
  std::vector<Chunk> chunks(streams.size());
  Status run = pool->ParallelFor(streams.size(), [&](size_t i) -> Status {
    PhysicalOperator& stream = *streams[i];
    stream.BindContext(ctx);
    Status opened = stream.Open();
    if (!opened.ok()) {
      stream.Close();
      return opened;
    }
    Chunk& chunk = chunks[i];
    RowBatch batch;
    Status result = Status::Ok();
    while (true) {
      auto has = stream.NextBatch(&batch);
      if (!has.ok()) {
        result = has.status();
        break;
      }
      if (!*has) break;
      const size_t n = batch.num_rows();
      Status live = ctx->Poll(n);
      if (!live.ok()) {
        result = live;
        break;
      }
      const size_t base = chunk.measures.size();
      chunk.vars.resize((base + n) * arity);
      for (size_t c = 0; c < arity; ++c) {
        const VarValue* col = batch.col(c);
        VarValue* out = chunk.vars.data() + base * arity + c;
        for (size_t r = 0; r < n; ++r) out[r * arity] = col[r];
      }
      chunk.measures.insert(chunk.measures.end(), batch.measures(),
                            batch.measures() + n);
    }
    stream.Close();
    return result;
  });
  MPFDB_RETURN_IF_ERROR(run);
  for (const Chunk& chunk : chunks) {
    for (size_t r = 0; r < chunk.measures.size(); ++r) {
      table->AppendRowRaw(chunk.vars.data() + r * arity, chunk.measures[r]);
    }
  }
  return true;
}

}  // namespace

StatusOr<TablePtr> RunBatch(PhysicalOperator& op,
                            const std::string& result_name,
                            QueryContext* ctx) {
  Status opened = op.Open();
  if (!opened.ok()) {
    op.Close();
    return opened;
  }
  auto table = std::make_shared<Table>(result_name, op.output_schema());
  auto parallel = TryRunBatchParallel(op, table.get(), ctx);
  if (!parallel.ok()) {
    op.Close();
    return parallel.status();
  }
  if (*parallel) {
    op.Close();
    return table;
  }
  const size_t arity = op.output_schema().arity();
  RowBatch batch;
  std::vector<VarValue> row(arity);
  while (true) {
    auto has = op.NextBatch(&batch);
    if (!has.ok()) {
      op.Close();
      return has.status();
    }
    if (!*has) break;
    const size_t n = batch.num_rows();
    if (ctx != nullptr) {
      Status live = ctx->Poll(n);
      if (!live.ok()) {
        op.Close();
        return live;
      }
    }
    const double* measures = batch.measures();
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < arity; ++c) row[c] = batch.col(c)[r];
      table->AppendRowRaw(row.data(), measures[r]);
    }
  }
  op.Close();
  return table;
}

// --- SeqScan ---------------------------------------------------------------

Status SeqScan::Open() {
  next_row_ = 0;
  return Status::Ok();
}

StatusOr<bool> SeqScan::Next(Row* row) {
  MPFDB_RETURN_IF_ERROR(PollContext());
  if (next_row_ >= table_->NumRows()) return false;
  RowView view = table_->Row(next_row_++);
  row->vars.assign(view.vars, view.vars + view.arity);
  row->measure = view.measure;
  return true;
}

StatusOr<bool> SeqScan::NextBatch(RowBatch* batch) {
  batch->Prepare(table_->schema().arity());
  const size_t total = table_->NumRows();
  if (next_row_ >= total) return false;
  const size_t n = std::min(kBatchSize, total - next_row_);
  MPFDB_RETURN_IF_ERROR(PollContext(n));
  table_->ReadRangeColumnar(next_row_, n, kBatchSize, batch->col(0),
                            batch->measures());
  batch->set_num_rows(n);
  next_row_ += n;
  return true;
}

void SeqScan::Close() {}

StatusOr<std::vector<OperatorPtr>> SeqScan::MakeMorselStreams(size_t n) {
  std::vector<OperatorPtr> streams;
  streams.reserve(n);
  for (auto [begin, end] : SplitRanges(table_->NumRows(), n)) {
    streams.push_back(std::make_unique<SeqScanRangeStream>(table_, begin, end));
  }
  return streams;
}

// --- DiskScan ----------------------------------------------------------------

StatusOr<bool> DiskScan::Next(Row* row) {
  MPFDB_RETURN_IF_ERROR(PollContext());
  if (next_row_ >= table_->NumRows()) return false;
  MPFDB_RETURN_IF_ERROR(table_->ReadRow(next_row_++, &row->vars, &row->measure));
  return true;
}

StatusOr<bool> DiskScan::NextBatch(RowBatch* batch) {
  const size_t arity = schema_.arity();
  batch->Prepare(arity);
  if (next_row_ >= table_->NumRows()) return false;
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(kBatchSize, table_->NumRows() - next_row_));
  MPFDB_RETURN_IF_ERROR(PollContext(n));
  scratch_vars_.resize(n * arity);
  scratch_measures_.resize(n);
  MPFDB_RETURN_IF_ERROR(table_->ReadRange(next_row_, n, scratch_vars_.data(),
                                          scratch_measures_.data()));
  for (size_t c = 0; c < arity; ++c) {
    VarValue* out = batch->col(c);
    const VarValue* in = scratch_vars_.data() + c;
    for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
  }
  std::copy(scratch_measures_.begin(), scratch_measures_.end(),
            batch->measures());
  batch->set_num_rows(n);
  next_row_ += n;
  return true;
}

StatusOr<std::vector<OperatorPtr>> DiskScan::MakeMorselStreams(size_t n) {
  std::vector<OperatorPtr> streams;
  streams.reserve(n);
  for (auto [begin, end] :
       SplitRanges(static_cast<size_t>(table_->NumRows()), n)) {
    streams.push_back(
        std::make_unique<DiskScanRangeStream>(table_, begin, end));
  }
  return streams;
}

// --- IndexScan ---------------------------------------------------------------

Status IndexScan::Open() {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("IndexScan without an index");
  }
  if (index_->indexed_rows() != table_->NumRows()) {
    return Status::FailedPrecondition(
        "index on " + table_->name() +
        " is stale (table changed since the index was built)");
  }
  matches_ = &index_->Lookup(value_);
  cursor_ = 0;
  return Status::Ok();
}

StatusOr<bool> IndexScan::Next(Row* row) {
  MPFDB_RETURN_IF_ERROR(PollContext());
  if (matches_ == nullptr || cursor_ >= matches_->size()) return false;
  RowView view = table_->Row((*matches_)[cursor_++]);
  row->vars.assign(view.vars, view.vars + view.arity);
  row->measure = view.measure;
  return true;
}

// --- Filter ----------------------------------------------------------------

Filter::Filter(OperatorPtr child, std::string var, VarValue value)
    : child_(std::move(child)), var_(std::move(var)), value_(value) {}

Status Filter::Open() {
  auto idx = child_->output_schema().IndexOf(var_);
  if (!idx) {
    return Status::InvalidArgument("filter variable '" + var_ +
                                   "' not in child schema");
  }
  var_index_ = *idx;
  return child_->Open();
}

StatusOr<bool> Filter::Next(Row* row) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (row->vars[var_index_] == value_) return true;
  }
}

StatusOr<bool> Filter::NextBatch(RowBatch* batch) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    const size_t n = batch->num_rows();
    const VarValue* key = batch->col(var_index_);
    sel_.clear();
    for (size_t r = 0; r < n; ++r) {
      if (key[r] == value_) sel_.push_back(static_cast<uint32_t>(r));
    }
    if (sel_.size() == n) return true;
    if (!sel_.empty()) {
      CompactBatch(batch, sel_);
      return true;
    }
    // Entire batch filtered out: pull the next one.
  }
}

void Filter::Close() { child_->Close(); }

StatusOr<std::vector<OperatorPtr>> Filter::MakeMorselStreams(size_t n) {
  return WrapChildStreams(*child_, n, [this](OperatorPtr stream) {
    return std::make_unique<Filter>(std::move(stream), var_, value_);
  });
}

// --- MeasureFilter -----------------------------------------------------------

StatusOr<bool> MeasureFilter::Next(Row* row) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (EvalCompare(having_.op, row->measure, having_.threshold)) return true;
  }
}

StatusOr<bool> MeasureFilter::NextBatch(RowBatch* batch) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    const size_t n = batch->num_rows();
    const double* measures = batch->measures();
    sel_.clear();
    for (size_t r = 0; r < n; ++r) {
      if (EvalCompare(having_.op, measures[r], having_.threshold)) {
        sel_.push_back(static_cast<uint32_t>(r));
      }
    }
    if (sel_.size() == n) return true;
    if (!sel_.empty()) {
      CompactBatch(batch, sel_);
      return true;
    }
  }
}

StatusOr<std::vector<OperatorPtr>> MeasureFilter::MakeMorselStreams(size_t n) {
  return WrapChildStreams(*child_, n, [this](OperatorPtr stream) {
    return std::make_unique<MeasureFilter>(std::move(stream), having_);
  });
}

// --- StreamProject -----------------------------------------------------------

StreamProject::StreamProject(OperatorPtr child,
                             std::vector<std::string> keep_vars)
    : child_(std::move(child)),
      keep_vars_(std::move(keep_vars)),
      schema_(keep_vars_, child_->output_schema().measure_name()) {}

Status StreamProject::Open() {
  for (const auto& var : keep_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("projected variable '" + var +
                                     "' not in child schema");
    }
  }
  keep_indices_ = IndicesOf(child_->output_schema(), keep_vars_);
  return child_->Open();
}

StatusOr<bool> StreamProject::Next(Row* row) {
  MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(&scratch_));
  if (!has) return false;
  row->vars.resize(keep_indices_.size());
  for (size_t k = 0; k < keep_indices_.size(); ++k) {
    row->vars[k] = scratch_.vars[keep_indices_[k]];
  }
  row->measure = scratch_.measure;
  return true;
}

StatusOr<bool> StreamProject::NextBatch(RowBatch* batch) {
  MPFDB_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&child_batch_));
  if (!has) return false;
  batch->Prepare(schema_.arity());
  const size_t n = child_batch_.num_rows();
  for (size_t k = 0; k < keep_indices_.size(); ++k) {
    const VarValue* src = child_batch_.col(keep_indices_[k]);
    std::copy(src, src + n, batch->col(k));
  }
  std::copy(child_batch_.measures(), child_batch_.measures() + n,
            batch->measures());
  batch->set_num_rows(n);
  return true;
}

void StreamProject::Close() { child_->Close(); }

StatusOr<std::vector<OperatorPtr>> StreamProject::MakeMorselStreams(size_t n) {
  return WrapChildStreams(*child_, n, [this](OperatorPtr stream) {
    return std::make_unique<StreamProject>(std::move(stream), keep_vars_);
  });
}

// --- HashMarginalize -------------------------------------------------------

HashMarginalize::HashMarginalize(OperatorPtr child,
                                 std::vector<std::string> group_vars,
                                 Semiring semiring, const Catalog* catalog,
                                 HashImpl hash_impl)
    : child_(std::move(child)),
      group_vars_(std::move(group_vars)),
      semiring_(semiring),
      catalog_(catalog),
      hash_impl_(hash_impl),
      schema_(group_vars_, child_->output_schema().measure_name()) {}

Status HashMarginalize::Open() {
  for (const auto& var : group_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("group variable '" + var +
                                     "' not in child schema");
    }
  }
  key_indices_ = IndicesOf(child_->output_schema(), group_vars_);
  drained_ = false;
  groups_.clear();
  out_vars_.clear();
  out_measures_.clear();
  next_group_ = 0;
  memory_.Bind(ctx_);
  memory_.set_stats(stats_);
  return child_->Open();
}

Status HashMarginalize::DrainRows() {
  const size_t nkeys = key_indices_.size();
  const size_t entry_bytes = kHashEntryOverhead + RowFootprint(nkeys);
  VecKeyMap<double> table(hash_impl_);
  MemoryGuard table_memory(ctx_);
  std::vector<std::unique_ptr<SpillFile>> parts;
  Row row;
  std::vector<VarValue> key(nkeys);
  while (true) {
    auto has = child_->Next(&row);
    if (!has.ok()) return Annotate(has.status(), "HashMarginalize: input");
    if (!*has) break;
    for (size_t k = 0; k < nkeys; ++k) key[k] = row.vars[key_indices_[k]];
    if (!parts.empty()) {
      MPFDB_RETURN_IF_ERROR(
          parts[SpillPartOf(KeyHash()(key))]->Append(key.data(), row.measure));
      continue;
    }
    auto [slot, inserted] = table.FindOrInsert(key, row.measure);
    if (!inserted) {
      *slot = semiring_.Add(*slot, row.measure);
      continue;
    }
    Status charge = table_memory.Charge(entry_bytes, "HashMarginalize");
    if (charge.ok()) continue;
    if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
    // Budget hit: flush every key's partial aggregate (one record per key),
    // then route the remaining input straight to the partitions.
    MPFDB_ASSIGN_OR_RETURN(parts, MakeSpillPartitions(ctx_, nkeys));
    if (stats_ != nullptr) stats_->spill_partitions = parts.size();
    Status flush = Status::Ok();
    table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
      if (!flush.ok()) return;
      flush = parts[SpillPartOf(KeyHash()(k))]->Append(k.data(), m);
    });
    MPFDB_RETURN_IF_ERROR(flush);
    table.clear();
    table_memory.ReleaseAll();
  }

  std::vector<std::pair<std::vector<VarValue>, double>> entries;
  if (!parts.empty()) {
    MPFDB_RETURN_IF_ERROR(
        DrainAggSpill(parts, semiring_, nkeys, ctx_, hash_impl_, &entries));
  } else {
    entries.reserve(table.size());
    table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
      entries.emplace_back(k, m);
    });
  }
  // Deterministic output order.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // The sorted groups are the operator's minimal output; their footprint is
  // recorded but not failed (no representation can be smaller).
  memory_.ChargeUnchecked(entries.size() * (sizeof(Row) + nkeys * sizeof(VarValue)));
  groups_.reserve(entries.size());
  for (auto& [k, m] : entries) {
    groups_.push_back(Row{std::move(k), m});
  }
  return Status::Ok();
}

Status HashMarginalize::DrainBatches() {
  auto parallel = TryDrainBatchesParallel();
  if (parallel.ok() && *parallel) return Status::Ok();
  if (!parallel.ok()) {
    // A budget breach during the parallel attempt falls back to the serial
    // drain below, which degrades to a Grace-style spill; anything else
    // (cancellation, deadline, input error) is fatal.
    if (parallel.status().code() != StatusCode::kResourceExhausted ||
        ctx_ == nullptr || !ctx_->spill_enabled()) {
      return parallel.status();
    }
  }
  const size_t nkeys = key_indices_.size();
  std::optional<PackedKeyCodec> codec = MakeCodecFor(catalog_, group_vars_);
  // Without catalog statistics a short key still fits a uint64 at 32 bits
  // per component — same fold machinery as the packed path, just not
  // order-preserving (a negative VarValue packs above the non-negatives),
  // so emission below sorts decoded tuples instead of packed integers.
  // This is what closed the historical hash_marginalize/batch gap: the
  // per-row arena probe and Add dispatch were eating the batch win.
  const bool codec_is_lexicographic = codec.has_value();
  if (!codec && nkeys * 32 <= 64) {
    codec = PackedKeyCodec::Make(
        std::vector<int64_t>(nkeys, int64_t{1} << 32));
  }
  RowBatch batch;
  std::vector<VarValue> key_vals(nkeys);
  std::vector<const VarValue*> key_cols(nkeys);
  MemoryGuard table_memory(ctx_);
  std::vector<std::unique_ptr<SpillFile>> parts;

  // Routes one batch's rows straight to the spill partitions (used once the
  // operator has degraded to Grace-style partitioned aggregation).
  auto spill_batch = [&](size_t n) -> Status {
    const double* measures = batch.measures();
    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < nkeys; ++k) key_vals[k] = key_cols[k][r];
      MPFDB_RETURN_IF_ERROR(parts[SpillPartOf(KeyHash()(key_vals))]->Append(
          key_vals.data(), measures[r]));
    }
    return Status::Ok();
  };

  if (codec) {
    PackedMap<double> agg(hash_impl_, 1024);
    std::vector<uint64_t> keys(kBatchSize);
    size_t charged_entries = 0;
    while (true) {
      auto has = child_->NextBatch(&batch);
      if (!has.ok()) return Annotate(has.status(), "HashMarginalize: input");
      if (!*has) break;
      for (size_t k = 0; k < nkeys; ++k) key_cols[k] = batch.col(key_indices_[k]);
      const double* measures = batch.measures();
      const size_t n = batch.num_rows();
      if (!parts.empty()) {
        MPFDB_RETURN_IF_ERROR(spill_batch(n));
        continue;
      }
      if (!codec->EncodeColumnar(key_cols.data(), n, keys.data())) {
        return PackedDomainViolation("HashMarginalize");
      }
      // The accumulate loop is specialized on the semiring's Add; each fast
      // path performs exactly the operation Semiring::Add performs, keeping
      // results bit-identical to the row path (and to the parallel drain,
      // which folds through the same dispatch).
      DispatchAdd(semiring_, [&](auto add) {
        for (size_t r = 0; r < n; ++r) {
          auto [slot, inserted] = agg.FindOrInsert(keys[r], measures[r]);
          if (!inserted) *slot = add(*slot, measures[r]);
        }
      });
      // Charge the table's growth after each batch; on budget breach flush
      // the partial aggregates to the partitions and degrade.
      if (agg.size() > charged_entries) {
        Status charge = table_memory.Charge(
            (agg.size() - charged_entries) * kPackedAggEntryBytes,
            "HashMarginalize");
        if (charge.ok()) {
          charged_entries = agg.size();
          continue;
        }
        if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
        MPFDB_ASSIGN_OR_RETURN(parts, MakeSpillPartitions(ctx_, nkeys));
        if (stats_ != nullptr) stats_->spill_partitions = parts.size();
        Status flush = Status::Ok();
        std::vector<VarValue> decoded(nkeys);
        agg.ForEach([&](uint64_t key, const double& measure) {
          if (!flush.ok()) return;
          codec->Decode(key, decoded.data());
          flush = parts[SpillPartOf(KeyHash()(decoded))]->Append(
              decoded.data(), measure);
        });
        MPFDB_RETURN_IF_ERROR(flush);
        agg = PackedMap<double>(hash_impl_, 1024);
        charged_entries = 0;
        table_memory.ReleaseAll();
      }
    }
    if (parts.empty()) {
      if (codec_is_lexicographic) {
        // Packed keys sort exactly as their decoded tuples (MSB-first
        // layout), so integer-sorting reproduces the row path's
        // lexicographic order.
        std::vector<std::pair<uint64_t, double>> entries;
        entries.reserve(agg.size());
        agg.ForEach([&](uint64_t key, const double& measure) {
          entries.emplace_back(key, measure);
        });
        std::sort(
            entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        out_vars_.resize(entries.size() * nkeys);
        out_measures_.resize(entries.size());
        for (size_t i = 0; i < entries.size(); ++i) {
          codec->Decode(entries[i].first, out_vars_.data() + i * nkeys);
          out_measures_[i] = entries[i].second;
        }
      } else {
        // Catalog-free 32-bit packing: flipping each lane's sign bit makes
        // unsigned integer order match the row path's signed lexicographic
        // order, so the sort runs on raw uint64s (no per-entry decode, no
        // tuple materialization).
        const uint64_t flip = codec->SignFlipMask();
        std::vector<std::pair<uint64_t, double>> entries;
        entries.reserve(agg.size());
        agg.ForEach([&](uint64_t key, const double& measure) {
          entries.emplace_back(key ^ flip, measure);
        });
        std::sort(
            entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        out_vars_.resize(entries.size() * nkeys);
        out_measures_.resize(entries.size());
        for (size_t i = 0; i < entries.size(); ++i) {
          codec->Decode(entries[i].first ^ flip,
                        out_vars_.data() + i * nkeys);
          out_measures_[i] = entries[i].second;
        }
      }
      memory_.ChargeUnchecked(out_vars_.size() * sizeof(VarValue) +
                              out_measures_.size() * sizeof(double));
      return Status::Ok();
    }
  } else {
    const size_t entry_bytes = kHashEntryOverhead + RowFootprint(nkeys);
    // The fold runs on the byte-keyed Swiss table by default: probing hashes
    // the key bytes in place (no per-row vector materialization in the map,
    // no node allocation, no modulo), which is what closed the historical
    // hash_marginalize/batch gap against the packed path.
    VecKeyMap<double> table(hash_impl_);
    while (true) {
      auto has = child_->NextBatch(&batch);
      if (!has.ok()) return Annotate(has.status(), "HashMarginalize: input");
      if (!*has) break;
      for (size_t k = 0; k < nkeys; ++k) key_cols[k] = batch.col(key_indices_[k]);
      const double* measures = batch.measures();
      const size_t n = batch.num_rows();
      if (!parts.empty()) {
        MPFDB_RETURN_IF_ERROR(spill_batch(n));
        continue;
      }
      for (size_t r = 0; r < n; ++r) {
        for (size_t k = 0; k < nkeys; ++k) key_vals[k] = key_cols[k][r];
        if (!parts.empty()) {
          // Mid-batch degrade: the rest of this batch goes to disk.
          MPFDB_RETURN_IF_ERROR(parts[SpillPartOf(KeyHash()(key_vals))]->Append(
              key_vals.data(), measures[r]));
          continue;
        }
        auto [slot, inserted] = table.FindOrInsert(key_vals, measures[r]);
        if (!inserted) {
          *slot = semiring_.Add(*slot, measures[r]);
          continue;
        }
        Status charge = table_memory.Charge(entry_bytes, "HashMarginalize");
        if (charge.ok()) continue;
        if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
        MPFDB_ASSIGN_OR_RETURN(parts, MakeSpillPartitions(ctx_, nkeys));
        if (stats_ != nullptr) stats_->spill_partitions = parts.size();
        Status flush = Status::Ok();
        table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
          if (!flush.ok()) return;
          flush = parts[SpillPartOf(KeyHash()(k))]->Append(k.data(), m);
        });
        MPFDB_RETURN_IF_ERROR(flush);
        table.clear();
        table_memory.ReleaseAll();
      }
    }
    if (parts.empty()) {
      std::vector<std::pair<std::vector<VarValue>, double>> entries;
      entries.reserve(table.size());
      table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
        entries.emplace_back(k, m);
      });
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      out_vars_.resize(entries.size() * nkeys);
      out_measures_.resize(entries.size());
      for (size_t i = 0; i < entries.size(); ++i) {
        std::copy(entries[i].first.begin(), entries[i].first.end(),
                  out_vars_.begin() + static_cast<ptrdiff_t>(i * nkeys));
        out_measures_[i] = entries[i].second;
      }
      memory_.ChargeUnchecked(out_vars_.size() * sizeof(VarValue) +
                              out_measures_.size() * sizeof(double));
      return Status::Ok();
    }
  }

  // Spilled: re-aggregate every partition, then lay out the sorted groups —
  // per-key Add replay order matches the in-memory path, so the result is
  // bit-identical to an unconstrained run.
  std::vector<std::pair<std::vector<VarValue>, double>> entries;
  MPFDB_RETURN_IF_ERROR(
      DrainAggSpill(parts, semiring_, nkeys, ctx_, hash_impl_, &entries));
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out_vars_.resize(entries.size() * nkeys);
  out_measures_.resize(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    std::copy(entries[i].first.begin(), entries[i].first.end(),
              out_vars_.begin() + static_cast<ptrdiff_t>(i * nkeys));
    out_measures_[i] = entries[i].second;
  }
  memory_.ChargeUnchecked(out_vars_.size() * sizeof(VarValue) +
                          out_measures_.size() * sizeof(double));
  return Status::Ok();
}

StatusOr<bool> HashMarginalize::TryDrainBatchesParallel() {
  ThreadPool* pool = PoolOf(ctx_);
  if (pool == nullptr || !child_->SupportsMorselStreams()) return false;
  // Thread-local buffering regroups updates for different keys relative to
  // the serial schedule; only a commutative Add licenses that. (Per-key
  // order is preserved regardless — see the partition fold below.)
  if (!semiring_.AddIsCommutative()) return false;
  const size_t nkeys = key_indices_.size();
  std::optional<PackedKeyCodec> codec = MakeCodecFor(catalog_, group_vars_);
  MPFDB_ASSIGN_OR_RETURN(
      std::vector<OperatorPtr> streams,
      child_->MakeMorselStreams(
          MorselCount(child_->MorselSourceRows(), pool->num_threads())));
  if (streams.empty()) return false;
  const size_t num_morsels = streams.size();

  // Phase 1: every morsel stream drains into per-(morsel, partition)
  // buffers of raw (key, measure) pairs, routed by high key-hash bits so
  // each key lands in exactly one partition. Raw pairs — not per-worker
  // partial aggregates — because folding a key's updates in any order other
  // than the serial one would re-associate floating-point Adds.
  //
  // Phase 2: each partition folds its buffers in morsel-index order.
  // Morsels are contiguous input ranges in index order, so every key's
  // updates replay in exactly the serial input order: results are
  // bit-identical to the single-threaded drain for any thread count.
  std::deque<MemoryGuard> guards;
  for (size_t i = 0; i < num_morsels; ++i) guards.emplace_back(ctx_);

  if (codec) {
    struct Buf {
      std::vector<uint64_t> keys;
      std::vector<double> measures;
    };
    std::vector<std::array<Buf, kAggPartitions>> bufs(num_morsels);
    Status phase1 = pool->ParallelFor(num_morsels, [&](size_t i) -> Status {
      PhysicalOperator& stream = *streams[i];
      stream.BindContext(ctx_);
      Status opened = stream.Open();
      if (!opened.ok()) {
        stream.Close();
        return Annotate(opened, "HashMarginalize: input");
      }
      RowBatch batch;
      std::vector<uint64_t> keys(kBatchSize);
      std::vector<const VarValue*> key_cols(nkeys);
      Status result = Status::Ok();
      while (true) {
        auto has = stream.NextBatch(&batch);
        if (!has.ok()) {
          result = Annotate(has.status(), "HashMarginalize: input");
          break;
        }
        if (!*has) break;
        const size_t n = batch.num_rows();
        for (size_t k = 0; k < nkeys; ++k) {
          key_cols[k] = batch.col(key_indices_[k]);
        }
        if (!codec->EncodeColumnar(key_cols.data(), n, keys.data())) {
          result = PackedDomainViolation("HashMarginalize");
          break;
        }
        result = guards[i].Charge(n * (sizeof(uint64_t) + sizeof(double)),
                                  "HashMarginalize");
        if (!result.ok()) break;
        const double* measures = batch.measures();
        for (size_t r = 0; r < n; ++r) {
          Buf& buf = bufs[i][AggPartOf(PackedKeyHash()(keys[r]))];
          buf.keys.push_back(keys[r]);
          buf.measures.push_back(measures[r]);
        }
      }
      stream.Close();
      return result;
    });
    MPFDB_RETURN_IF_ERROR(phase1);

    std::deque<MemoryGuard> fold_guards;
    for (size_t p = 0; p < kAggPartitions; ++p) fold_guards.emplace_back(ctx_);
    std::array<std::vector<std::pair<uint64_t, double>>, kAggPartitions>
        part_entries;
    Status phase2 = pool->ParallelFor(kAggPartitions, [&](size_t p) -> Status {
      PackedMap<double> agg(hash_impl_, 1024);
      size_t charged_entries = 0;
      Status fold = Status::Ok();
      DispatchAdd(semiring_, [&](auto add) {
        for (size_t i = 0; i < num_morsels && fold.ok(); ++i) {
          const Buf& buf = bufs[i][p];
          const size_t n = buf.measures.size();
          for (size_t r = 0; r < n; ++r) {
            auto [slot, inserted] =
                agg.FindOrInsert(buf.keys[r], buf.measures[r]);
            if (!inserted) *slot = add(*slot, buf.measures[r]);
          }
          if (agg.size() > charged_entries) {
            fold = fold_guards[p].Charge(
                (agg.size() - charged_entries) * kPackedAggEntryBytes,
                "HashMarginalize");
            charged_entries = agg.size();
          }
          if (fold.ok() && ctx_ != nullptr && n > 0) fold = ctx_->Poll(n);
        }
      });
      MPFDB_RETURN_IF_ERROR(fold);
      auto& entries = part_entries[p];
      entries.reserve(agg.size());
      agg.ForEach([&](uint64_t key, const double& measure) {
        entries.emplace_back(key, measure);
      });
      return Status::Ok();
    });
    MPFDB_RETURN_IF_ERROR(phase2);

    // Merge is concatenation — the partitions' key sets are disjoint — and
    // the same packed-key integer sort the serial drain performs.
    std::vector<std::pair<uint64_t, double>> entries;
    size_t total = 0;
    for (const auto& pe : part_entries) total += pe.size();
    entries.reserve(total);
    for (const auto& pe : part_entries) {
      entries.insert(entries.end(), pe.begin(), pe.end());
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out_vars_.resize(entries.size() * nkeys);
    out_measures_.resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      codec->Decode(entries[i].first, out_vars_.data() + i * nkeys);
      out_measures_[i] = entries[i].second;
    }
  } else {
    struct Buf {
      std::vector<VarValue> keys;  // nkeys values per row
      std::vector<double> measures;
    };
    std::vector<std::array<Buf, kAggPartitions>> bufs(num_morsels);
    Status phase1 = pool->ParallelFor(num_morsels, [&](size_t i) -> Status {
      PhysicalOperator& stream = *streams[i];
      stream.BindContext(ctx_);
      Status opened = stream.Open();
      if (!opened.ok()) {
        stream.Close();
        return Annotate(opened, "HashMarginalize: input");
      }
      RowBatch batch;
      std::vector<VarValue> key_vals(nkeys);
      std::vector<const VarValue*> key_cols(nkeys);
      Status result = Status::Ok();
      while (true) {
        auto has = stream.NextBatch(&batch);
        if (!has.ok()) {
          result = Annotate(has.status(), "HashMarginalize: input");
          break;
        }
        if (!*has) break;
        const size_t n = batch.num_rows();
        for (size_t k = 0; k < nkeys; ++k) {
          key_cols[k] = batch.col(key_indices_[k]);
        }
        result = guards[i].Charge(n * RowFootprint(nkeys), "HashMarginalize");
        if (!result.ok()) break;
        const double* measures = batch.measures();
        for (size_t r = 0; r < n; ++r) {
          for (size_t k = 0; k < nkeys; ++k) key_vals[k] = key_cols[k][r];
          Buf& buf = bufs[i][AggPartOf(KeyHash()(key_vals))];
          buf.keys.insert(buf.keys.end(), key_vals.begin(), key_vals.end());
          buf.measures.push_back(measures[r]);
        }
      }
      stream.Close();
      return result;
    });
    MPFDB_RETURN_IF_ERROR(phase1);

    const size_t entry_bytes = kHashEntryOverhead + RowFootprint(nkeys);
    std::deque<MemoryGuard> fold_guards;
    for (size_t p = 0; p < kAggPartitions; ++p) fold_guards.emplace_back(ctx_);
    std::array<std::vector<std::pair<std::vector<VarValue>, double>>,
               kAggPartitions>
        part_entries;
    Status phase2 = pool->ParallelFor(kAggPartitions, [&](size_t p) -> Status {
      VecKeyMap<double> table(hash_impl_);
      std::vector<VarValue> key_vals(nkeys);
      for (size_t i = 0; i < num_morsels; ++i) {
        const Buf& buf = bufs[i][p];
        const size_t n = buf.measures.size();
        for (size_t r = 0; r < n; ++r) {
          key_vals.assign(buf.keys.begin() + static_cast<ptrdiff_t>(r * nkeys),
                          buf.keys.begin() +
                              static_cast<ptrdiff_t>((r + 1) * nkeys));
          auto [slot, inserted] = table.FindOrInsert(key_vals, buf.measures[r]);
          if (inserted) {
            MPFDB_RETURN_IF_ERROR(
                fold_guards[p].Charge(entry_bytes, "HashMarginalize"));
          } else {
            *slot = semiring_.Add(*slot, buf.measures[r]);
          }
        }
        if (ctx_ != nullptr && n > 0) MPFDB_RETURN_IF_ERROR(ctx_->Poll(n));
      }
      auto& entries = part_entries[p];
      entries.reserve(table.size());
      table.ForEach([&](const std::vector<VarValue>& k, const double& m) {
        entries.emplace_back(k, m);
      });
      return Status::Ok();
    });
    MPFDB_RETURN_IF_ERROR(phase2);

    std::vector<std::pair<std::vector<VarValue>, double>> entries;
    size_t total = 0;
    for (const auto& pe : part_entries) total += pe.size();
    entries.reserve(total);
    for (auto& pe : part_entries) {
      for (auto& e : pe) entries.push_back(std::move(e));
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out_vars_.resize(entries.size() * nkeys);
    out_measures_.resize(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
      std::copy(entries[i].first.begin(), entries[i].first.end(),
                out_vars_.begin() + static_cast<ptrdiff_t>(i * nkeys));
      out_measures_[i] = entries[i].second;
    }
  }

  memory_.ChargeUnchecked(out_vars_.size() * sizeof(VarValue) +
                          out_measures_.size() * sizeof(double));
  return true;
}

StatusOr<std::vector<OperatorPtr>> HashMarginalize::MakeMorselStreams(
    size_t n) {
  // Vending streams forces the blocking drain, exactly as the first
  // NextBatch pull would; the streams then read disjoint ranges of the
  // sorted groups this operator owns.
  if (!drained_) {
    Status drained = DrainBatches();
    child_->Close();
    MPFDB_RETURN_IF_ERROR(drained);
    drained_ = true;
  }
  std::vector<OperatorPtr> streams;
  streams.reserve(n);
  for (auto [begin, end] : SplitRanges(out_measures_.size(), n)) {
    streams.push_back(std::make_unique<MaterializedRangeStream>(
        schema_, out_vars_.data(), out_measures_.data(), begin, end));
  }
  return streams;
}

StatusOr<bool> HashMarginalize::Next(Row* row) {
  if (!drained_) {
    Status drained = DrainRows();
    child_->Close();
    MPFDB_RETURN_IF_ERROR(drained);
    drained_ = true;
  }
  MPFDB_RETURN_IF_ERROR(PollContext());
  if (next_group_ >= groups_.size()) return false;
  *row = groups_[next_group_++];
  return true;
}

StatusOr<bool> HashMarginalize::NextBatch(RowBatch* batch) {
  if (!drained_) {
    Status drained = DrainBatches();
    child_->Close();
    MPFDB_RETURN_IF_ERROR(drained);
    drained_ = true;
  }
  const size_t arity = schema_.arity();
  batch->Prepare(arity);
  const size_t total = out_measures_.size();
  if (next_group_ >= total) return false;
  const size_t n = std::min(kBatchSize, total - next_group_);
  MPFDB_RETURN_IF_ERROR(PollContext(n));
  for (size_t c = 0; c < arity; ++c) {
    VarValue* out = batch->col(c);
    const VarValue* in = out_vars_.data() + next_group_ * arity + c;
    for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
  }
  std::copy(out_measures_.begin() + static_cast<ptrdiff_t>(next_group_),
            out_measures_.begin() + static_cast<ptrdiff_t>(next_group_ + n),
            batch->measures());
  batch->set_num_rows(n);
  next_group_ += n;
  return true;
}

void HashMarginalize::Close() {
  groups_.clear();
  out_vars_.clear();
  out_measures_.clear();
  memory_.ReleaseAll();
}

// --- SortMarginalize -------------------------------------------------------

SortMarginalize::SortMarginalize(OperatorPtr child,
                                 std::vector<std::string> group_vars,
                                 Semiring semiring, bool input_presorted)
    : child_(std::move(child)),
      group_vars_(std::move(group_vars)),
      semiring_(semiring),
      input_presorted_(input_presorted),
      schema_(group_vars_, child_->output_schema().measure_name()) {}

Status SortMarginalize::Open() {
  for (const auto& var : group_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("group variable '" + var +
                                     "' not in child schema");
    }
  }
  key_indices_ = IndicesOf(child_->output_schema(), group_vars_);
  memory_.Bind(ctx_);
  memory_.set_stats(stats_);
  drained_ = false;
  cursor_ = 0;
  next_group_ = 0;
  // The input is drained on the first pull (Next or NextBatch), not here, so
  // the sort's materialization is charged where the drive loop can observe a
  // budget breach and the batch path can drain the child vectorized.
  return child_->Open();
}

// Row-mode drain: materialize, then stable-sort on the group key. Stability
// keeps equal-key rows in child arrival order, which makes the per-run folds
// in Next bit-identical to HashMarginalize's arrival-order folds. When the
// physical planner proved the input already arrives sorted by the group
// variables the sort is skipped (a stable sort of sorted input is the
// identity permutation).
Status SortMarginalize::DrainRows() {
  sorted_input_.clear();
  MPFDB_RETURN_IF_ERROR(
      DrainChild(*child_, &sorted_input_, &memory_, "SortMarginalize: input"));
  if (!input_presorted_) {
    std::stable_sort(sorted_input_.begin(), sorted_input_.end(),
                     [this](const Row& a, const Row& b) {
                       for (size_t k : key_indices_) {
                         if (a.vars[k] != b.vars[k]) return a.vars[k] < b.vars[k];
                       }
                       return false;
                     });
  }
  cursor_ = 0;
  return Status::Ok();
}

// Batch-mode drain: pull the child through NextBatch into a row-major arena,
// stable-sort row indices on the group key, and fold each run into the
// output layout HashMarginalize uses. The index sort applies the same
// comparator and stability as the row path's sort of Row objects, so both
// paths visit rows in the same order and produce identical bits.
Status SortMarginalize::DrainBatches() {
  const size_t in_arity = child_->output_schema().arity();
  const size_t nkeys = key_indices_.size();
  std::vector<VarValue> in_vars;
  std::vector<double> in_measures;
  MPFDB_RETURN_IF_ERROR(DrainToArenaBatches(*child_, &in_vars, &in_measures,
                                            &memory_,
                                            "SortMarginalize: input"));
  const size_t num_rows = in_measures.size();
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  if (!input_presorted_) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const VarValue* ra = in_vars.data() + a * in_arity;
      const VarValue* rb = in_vars.data() + b * in_arity;
      for (size_t k : key_indices_) {
        if (ra[k] != rb[k]) return ra[k] < rb[k];
      }
      return false;
    });
  }

  out_vars_.clear();
  out_measures_.clear();
  size_t i = 0;
  while (i < num_rows) {
    const VarValue* first = in_vars.data() + order[i] * in_arity;
    const size_t group_base = out_vars_.size();
    out_vars_.resize(group_base + nkeys);
    for (size_t k = 0; k < nkeys; ++k) {
      out_vars_[group_base + k] = first[key_indices_[k]];
    }
    double acc = in_measures[order[i]];
    ++i;
    while (i < num_rows) {
      const VarValue* next = in_vars.data() + order[i] * in_arity;
      bool same = true;
      for (size_t k : key_indices_) {
        if (next[k] != first[k]) {
          same = false;
          break;
        }
      }
      if (!same) break;
      acc = semiring_.Add(acc, in_measures[order[i]]);
      ++i;
    }
    out_measures_.push_back(acc);
    MPFDB_RETURN_IF_ERROR(PollContext());
  }
  memory_.ChargeUnchecked(out_vars_.size() * sizeof(VarValue) +
                          out_measures_.size() * sizeof(double));
  next_group_ = 0;
  return Status::Ok();
}

StatusOr<bool> SortMarginalize::Next(Row* row) {
  if (!drained_) {
    Status drained = DrainRows();
    child_->Close();
    MPFDB_RETURN_IF_ERROR(drained);
    drained_ = true;
  }
  MPFDB_RETURN_IF_ERROR(PollContext());
  if (cursor_ >= sorted_input_.size()) return false;
  // Aggregate the current key run.
  const Row& first = sorted_input_[cursor_];
  row->vars.resize(key_indices_.size());
  for (size_t k = 0; k < key_indices_.size(); ++k) {
    row->vars[k] = first.vars[key_indices_[k]];
  }
  row->measure = first.measure;
  ++cursor_;
  while (cursor_ < sorted_input_.size()) {
    const Row& next = sorted_input_[cursor_];
    bool same = true;
    for (size_t k = 0; k < key_indices_.size(); ++k) {
      if (next.vars[key_indices_[k]] != row->vars[k]) {
        same = false;
        break;
      }
    }
    if (!same) break;
    row->measure = semiring_.Add(row->measure, next.measure);
    ++cursor_;
  }
  return true;
}

StatusOr<bool> SortMarginalize::NextBatch(RowBatch* batch) {
  // Presorted input streams: groups arrive contiguously, so each run folds
  // on the fly (in child arrival order, like every other path) and the
  // input is never materialized. The group being folded carries across
  // child batch boundaries in cur_key_/cur_acc_.
  if (input_presorted_) {
    const size_t arity = schema_.arity();
    const size_t nkeys = key_indices_.size();
    batch->Prepare(arity);
    size_t emitted = 0;
    auto emit_group = [&]() {
      for (size_t c = 0; c < arity; ++c) batch->col(c)[emitted] = cur_key_[c];
      batch->measures()[emitted] = cur_acc_;
      ++emitted;
    };
    bool out_full = false;
    while (!out_full) {
      if (in_pos_ >= in_batch_.num_rows()) {
        if (stream_done_) break;
        MPFDB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&in_batch_));
        if (!more) {
          stream_done_ = true;
          child_->Close();
          break;
        }
        in_pos_ = 0;
        MPFDB_RETURN_IF_ERROR(PollContext(in_batch_.num_rows()));
        continue;
      }
      const size_t n = in_batch_.num_rows();
      while (in_pos_ < n) {
        const size_t r = in_pos_;
        bool same = have_group_;
        if (same) {
          for (size_t k = 0; k < nkeys; ++k) {
            if (in_batch_.col(key_indices_[k])[r] != cur_key_[k]) {
              same = false;
              break;
            }
          }
        }
        if (same) {
          cur_acc_ = semiring_.Add(cur_acc_, in_batch_.measures()[r]);
        } else {
          if (have_group_) {
            if (emitted == kBatchSize) {
              // Output batch full; resume at this row on the next call.
              out_full = true;
              break;
            }
            emit_group();
          }
          cur_key_.resize(nkeys);
          for (size_t k = 0; k < nkeys; ++k) {
            cur_key_[k] = in_batch_.col(key_indices_[k])[r];
          }
          cur_acc_ = in_batch_.measures()[r];
          have_group_ = true;
        }
        ++in_pos_;
      }
    }
    if (stream_done_ && have_group_ && emitted < kBatchSize) {
      emit_group();
      have_group_ = false;
    }
    batch->set_num_rows(emitted);
    MPFDB_RETURN_IF_ERROR(PollContext(emitted == 0 ? 1 : emitted));
    return emitted > 0;
  }
  if (!drained_) {
    Status drained = DrainBatches();
    child_->Close();
    MPFDB_RETURN_IF_ERROR(drained);
    drained_ = true;
  }
  const size_t arity = schema_.arity();
  batch->Prepare(arity);
  const size_t total = out_measures_.size();
  if (next_group_ >= total) return false;
  const size_t n = std::min(kBatchSize, total - next_group_);
  MPFDB_RETURN_IF_ERROR(PollContext(n));
  for (size_t c = 0; c < arity; ++c) {
    VarValue* out = batch->col(c);
    const VarValue* in = out_vars_.data() + next_group_ * arity + c;
    for (size_t r = 0; r < n; ++r) out[r] = in[r * arity];
  }
  std::copy(out_measures_.begin() + static_cast<ptrdiff_t>(next_group_),
            out_measures_.begin() + static_cast<ptrdiff_t>(next_group_ + n),
            batch->measures());
  batch->set_num_rows(n);
  next_group_ += n;
  return true;
}

void SortMarginalize::Close() {
  sorted_input_.clear();
  out_vars_.clear();
  out_measures_.clear();
  drained_ = false;
  in_pos_ = 0;
  stream_done_ = false;
  cur_key_.clear();
  have_group_ = false;
  memory_.ReleaseAll();
}

// --- HashProductJoin -------------------------------------------------------

namespace {

// Per-consumer probe state for the batch hash join: the current left batch,
// its packed keys, and the match run being emitted. The serial operator owns
// one cursor; every parallel probe stream owns its own, all reading the same
// immutable build-side arena.
struct ProbeCursor {
  RowBatch left_batch;
  size_t left_pos = 0;   // next unconsumed row of left_batch
  size_t cur_left = 0;   // row whose match run is being emitted
  bool left_done = false;
  std::vector<uint64_t> probe_keys;  // packed keys of the current left batch
  size_t match_start = 0;            // current match run in the arena
  size_t match_len = 0;
  size_t match_off = 0;
  std::vector<VarValue> key_vals;
  std::vector<const VarValue*> key_cols;
};

// Emits (a slice of) the current left row's contiguous match run: constant
// fills for left-side outputs, contiguous column copies for right-side
// outputs, one vectorizable multiply for the measures. Shared between the
// serial in-memory probe loop, the spill-partition probe loop, and the
// parallel probe streams. ImplT is HashProductJoin::Impl, deduced because
// the type is private; only build-side state is read through it.
template <class ImplT>
void EmitJoinRunSlice(ImplT& st, ProbeCursor& pc, const Semiring& semiring,
                      RowBatch* out) {
  const size_t o = out->num_rows();
  const size_t m = std::min(pc.match_len - pc.match_off, kBatchSize - o);
  const size_t src = pc.match_start + pc.match_off;
  for (auto [out_c, left_c] : st.out_left_cols) {
    VarValue* dst = out->col(out_c) + o;
    const VarValue v = pc.left_batch.col(left_c)[pc.cur_left];
    std::fill(dst, dst + m, v);
  }
  for (auto [out_c, right_c] : st.out_right_cols) {
    const VarValue* arena =
        st.arena_cols.data() + right_c * st.arena_rows + src;
    std::copy(arena, arena + m, out->col(out_c) + o);
  }
  double* dst_m = out->measures() + o;
  const double lm = pc.left_batch.measures()[pc.cur_left];
  const double* am = st.arena_measures.data() + src;
  switch (st.mul_op) {
    case MulOp::kTimes:
      for (size_t i = 0; i < m; ++i) dst_m[i] = lm * am[i];
      break;
    case MulOp::kPlus:
      for (size_t i = 0; i < m; ++i) dst_m[i] = lm + am[i];
      break;
    case MulOp::kGeneric:
      for (size_t i = 0; i < m; ++i) {
        dst_m[i] = semiring.Multiply(lm, am[i]);
      }
      break;
  }
  out->set_num_rows(o + m);
  pc.match_off += m;
}

// The in-memory probe loop: pulls left batches from `left`, looks match runs
// up in the (frozen) build-side head maps, and emits run slices. The build
// state reached through `st` is only read, so any number of cursors can
// probe it concurrently.
template <class ImplT>
StatusOr<bool> JoinProbeNextBatch(ImplT& st, ProbeCursor& pc,
                                  PhysicalOperator& left,
                                  const Semiring& semiring, QueryContext* ctx,
                                  RowBatch* out) {
  const JoinLayout& layout = st.layout;
  const size_t nkeys = layout.shared.size();
  out->Prepare(layout.schema.arity());
  while (!out->full()) {
    if (pc.match_off < pc.match_len) {
      EmitJoinRunSlice(st, pc, semiring, out);
      continue;
    }
    if (pc.left_pos >= pc.left_batch.num_rows()) {
      if (pc.left_done) break;
      auto has = left.NextBatch(&pc.left_batch);
      if (!has.ok()) {
        return Annotate(has.status(), "HashProductJoin: probe side");
      }
      if (!*has) {
        pc.left_done = true;
        break;
      }
      if (ctx != nullptr) {
        MPFDB_RETURN_IF_ERROR(ctx->Poll(pc.left_batch.num_rows()));
      }
      pc.left_pos = 0;
      if (st.codec) {
        // Pack every probe key of the incoming left batch at once.
        const size_t n = pc.left_batch.num_rows();
        pc.key_cols.resize(nkeys);
        for (size_t k = 0; k < nkeys; ++k) {
          pc.key_cols[k] = pc.left_batch.col(layout.shared_left[k]);
        }
        pc.probe_keys.resize(n);
        if (!st.codec->EncodeColumnar(pc.key_cols.data(), n,
                                      pc.probe_keys.data())) {
          return PackedDomainViolation("HashProductJoin");
        }
      }
      continue;
    }
    pc.cur_left = pc.left_pos++;
    pc.match_off = 0;
    pc.match_len = 0;
    if (st.dense) {
      // Perfect index: the packed key addresses its head range directly.
      const auto& range = st.dense_heads[pc.probe_keys[pc.cur_left]];
      pc.match_start = range.first;
      pc.match_len = range.second;
    } else if (st.codec) {
      auto* range = st.packed_heads.Find(pc.probe_keys[pc.cur_left]);
      if (range != nullptr) {
        pc.match_start = range->first;
        pc.match_len = range->second;
      }
    } else {
      pc.key_vals.resize(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        pc.key_vals[k] = pc.left_batch.col(layout.shared_left[k])[pc.cur_left];
      }
      auto* range = st.vec_heads.Find(pc.key_vals);
      if (range != nullptr) {
        pc.match_start = range->first;
        pc.match_len = range->second;
      }
    }
  }
  return !out->empty();
}

// One parallel probe stream: a morsel stream of the join's left child joined
// against the shared in-memory build side through a private ProbeCursor.
// ImplT is HashProductJoin::Impl; the referenced build state must outlive
// the stream (the parent operator stays open until its streams are done).
template <class ImplT>
class HashJoinProbeStream : public PhysicalOperator {
 public:
  HashJoinProbeStream(ImplT& st, OperatorPtr left, Semiring semiring)
      : st_(st), left_(std::move(left)), semiring_(semiring) {}

  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    left_->BindContext(ctx);
  }
  Status Open() override { return left_->Open(); }
  StatusOr<bool> Next(Row*) override {
    return Status::Internal("morsel streams are batch-only");
  }
  StatusOr<bool> NextBatch(RowBatch* out) override {
    return JoinProbeNextBatch(st_, probe_, *left_, semiring_, ctx_, out);
  }
  void Close() override { left_->Close(); }
  const Schema& output_schema() const override { return st_.layout.schema; }
  std::string name() const override { return "HashJoinProbeStream"; }

 private:
  ImplT& st_;
  OperatorPtr left_;
  Semiring semiring_;
  ProbeCursor probe_;
};

}  // namespace

struct HashProductJoin::Impl {
  JoinLayout layout;
  HashImpl hash_impl = HashImpl::kSwiss;
  bool built = false;
  bool left_open = false;
  bool right_open = false;

  // Row mode (legacy): per-key vectors of materialized right rows.
  VecKeyMap<std::vector<Row>> build;
  Row left_row;
  const std::vector<Row>* matches = nullptr;
  size_t match_index = 0;
  std::vector<VarValue> probe_key;

  // Batch mode. The build side is drained into a row-major arena chained per
  // key in insertion order, then compacted into a column-major arena where
  // every key's matches are contiguous: the head maps then hold
  // (start, count) ranges, so probe emission is constant fills, contiguous
  // column copies, and one vectorizable multiply over the measure run.
  std::optional<PackedKeyCodec> codec;
  MulOp mul_op = MulOp::kGeneric;
  size_t right_arity = 0;
  size_t arena_rows = 0;
  std::vector<VarValue> arena_cols;     // column-major, stride arena_rows
  std::vector<double> arena_measures;   // aligned with arena_cols rows
  PackedMap<std::pair<uint32_t, uint32_t>> packed_heads;
  VecKeyMap<std::pair<uint32_t, uint32_t>> vec_heads;
  // Perfect-index head "map": when the packed-key universe is small enough
  // (catalog domains are fixed per epoch), (start, count) ranges live in a
  // dense array indexed by the packed key itself — collision-free probes
  // with no hashing at all.
  bool mph_indexes = true;
  bool dense = false;
  std::vector<std::pair<uint32_t, uint32_t>> dense_heads;
  std::vector<std::pair<size_t, size_t>> out_left_cols;   // (out col, left col)
  std::vector<std::pair<size_t, size_t>> out_right_cols;  // (out col, right col)
  ProbeCursor probe;  // the serial consumer's probe state
  std::vector<VarValue> key_vals;
  std::vector<const VarValue*> key_cols;

  // Resource governance. `memory` covers the in-memory build state; when the
  // budget is hit both sides are partitioned to disk (Grace-style) and the
  // partitions are joined pairwise, one resident partition at a time
  // (`part_memory`).
  MemoryGuard memory;
  MemoryGuard part_memory;
  bool spilling = false;
  std::vector<std::unique_ptr<SpillFile>> right_parts;
  std::vector<std::unique_ptr<SpillFile>> left_parts;
  size_t cur_part = 0;
  bool part_loaded = false;
  size_t left_arity = 0;
  std::vector<VarValue> spill_row;
};

HashProductJoin::~HashProductJoin() = default;

HashProductJoin::HashProductJoin(OperatorPtr left, OperatorPtr right,
                                 Semiring semiring, const Catalog* catalog,
                                 HashImpl hash_impl, bool mph_indexes)
    : left_(std::move(left)),
      right_(std::move(right)),
      semiring_(semiring),
      catalog_(catalog),
      hash_impl_(hash_impl),
      mph_indexes_(mph_indexes) {
  schema_ = MakeJoinLayout(left_->output_schema(), right_->output_schema()).schema;
}

Status HashProductJoin::Open() {
  impl_ = std::make_unique<Impl>();
  impl_->layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());
  impl_->hash_impl = hash_impl_;
  impl_->mph_indexes = mph_indexes_;
  impl_->build = VecKeyMap<std::vector<Row>>(hash_impl_);
  impl_->packed_heads = PackedMap<std::pair<uint32_t, uint32_t>>(hash_impl_, 16);
  impl_->vec_heads = VecKeyMap<std::pair<uint32_t, uint32_t>>(hash_impl_);
  impl_->memory.Bind(ctx_);
  impl_->memory.set_stats(stats_);
  impl_->part_memory.Bind(ctx_);
  return Status::Ok();
}

Status HashProductJoin::BuildRows() {
  Impl& st = *impl_;
  const size_t nkeys = st.layout.shared.size();
  const size_t right_arity = right_->output_schema().arity();
  MPFDB_RETURN_IF_ERROR(right_->Open());
  st.right_open = true;
  Row row;
  std::vector<VarValue> key(nkeys);
  // Accounting is chunked: footprints accumulate locally and hit the
  // governor every kChargeChunkBytes, so the common path costs one add per
  // row instead of a Charge call. The budget can transiently be overshot by
  // at most one chunk before the spill kicks in.
  constexpr size_t kChargeChunkBytes = 32 * 1024;
  size_t uncharged_bytes = 0;
  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext());
    auto has = right_->Next(&row);
    if (!has.ok()) return Annotate(has.status(), "HashProductJoin: build side");
    if (!*has) break;
    for (size_t k = 0; k < nkeys; ++k) {
      key[k] = row.vars[st.layout.shared_right[k]];
    }
    if (st.spilling) {
      MPFDB_RETURN_IF_ERROR(st.right_parts[SpillPartOf(KeyHash()(key))]->Append(
          row.vars.data(), row.measure));
      continue;
    }
    uncharged_bytes += MaterializedRowFootprint(row) + kHashEntryOverhead;
    Status charge = Status::Ok();
    if (uncharged_bytes >= kChargeChunkBytes) {
      charge = st.memory.Charge(uncharged_bytes, "HashProductJoin: build side");
      uncharged_bytes = 0;
    }
    if (charge.ok()) {
      st.build.FindOrInsert(key, {}).first->push_back(row);
      continue;
    }
    if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
    // Budget hit: flush the build table to key-hash partitions and keep
    // routing the rest of the build side straight to disk.
    MPFDB_ASSIGN_OR_RETURN(st.right_parts,
                           MakeSpillPartitions(ctx_, right_arity));
    if (stats_ != nullptr) stats_->spill_partitions = st.right_parts.size();
    Status flush = Status::Ok();
    st.build.ForEach([&](const std::vector<VarValue>& k,
                         const std::vector<Row>& rows) {
      if (!flush.ok()) return;
      SpillFile& part = *st.right_parts[SpillPartOf(KeyHash()(k))];
      for (const Row& r : rows) {
        flush = part.Append(r.vars.data(), r.measure);
        if (!flush.ok()) return;
      }
    });
    MPFDB_RETURN_IF_ERROR(flush);
    st.build.clear();
    st.memory.ReleaseAll();
    st.spilling = true;
    MPFDB_RETURN_IF_ERROR(st.right_parts[SpillPartOf(KeyHash()(key))]->Append(
        row.vars.data(), row.measure));
  }
  right_->Close();
  st.right_open = false;
  // Record the sub-chunk tail so stats stay honest; it is at most one chunk,
  // matching the documented transient overshoot, so it is not worth a spill.
  if (!st.spilling && uncharged_bytes > 0) {
    st.memory.ChargeUnchecked(uncharged_bytes);
  }

  MPFDB_RETURN_IF_ERROR(left_->Open());
  st.left_open = true;
  st.probe_key.resize(nkeys);
  if (!st.spilling) return Status::Ok();

  // Partition the probe side by the same key hash so each partition pair can
  // be joined independently in NextSpill.
  st.left_arity = left_->output_schema().arity();
  MPFDB_ASSIGN_OR_RETURN(st.left_parts, MakeSpillPartitions(ctx_, st.left_arity));
  if (stats_ != nullptr) stats_->spill_partitions = st.left_parts.size();
  Row lrow;
  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext());
    auto has = left_->Next(&lrow);
    if (!has.ok()) return Annotate(has.status(), "HashProductJoin: probe side");
    if (!*has) break;
    for (size_t k = 0; k < nkeys; ++k) {
      st.probe_key[k] = lrow.vars[st.layout.shared_left[k]];
    }
    MPFDB_RETURN_IF_ERROR(
        st.left_parts[SpillPartOf(KeyHash()(st.probe_key))]->Append(
            lrow.vars.data(), lrow.measure));
  }
  left_->Close();
  st.left_open = false;
  return Status::Ok();
}

Status HashProductJoin::BuildBatches() {
  Impl& st = *impl_;
  const size_t nkeys = st.layout.shared.size();
  st.codec = MakeCodecFor(catalog_, st.layout.shared);
  st.mul_op = MulOpFor(semiring_);
  st.right_arity = right_->output_schema().arity();
  st.key_vals.resize(nkeys);
  st.key_cols.resize(nkeys);
  for (size_t c = 0; c < st.layout.schema.arity(); ++c) {
    if (st.layout.out_from_left[c] != kNpos) {
      st.out_left_cols.emplace_back(c, st.layout.out_from_left[c]);
    } else {
      st.out_right_cols.emplace_back(c, st.layout.out_from_right[c]);
    }
  }

  // Drain the right child into a columnar staging copy. With a packed-key
  // codec the drain stages only (column appends plus one EncodeColumnar per
  // batch — no hash work at all); grouping happens afterwards as a counting
  // sort. Without a codec, rows with equal keys are linked into
  // insertion-ordered chains (head/tail per key) as before.
  MPFDB_RETURN_IF_ERROR(right_->Open());
  st.right_open = true;
  std::vector<std::vector<VarValue>> staging_cols(st.right_arity);
  std::vector<double> staging_measures;
  std::vector<uint64_t> staged_keys;  // packed key per staged row (codec only)
  std::vector<uint32_t> next_row;     // insertion chains (vector keys only)
  // Children that can report their source cardinality (scans and filters)
  // let the staging vectors skip the doubling reallocations.
  if (const size_t hint = right_->MorselSourceRows(); hint > 0) {
    for (auto& col : staging_cols) col.reserve(hint);
    staging_measures.reserve(hint);
    if (st.codec) staged_keys.reserve(hint);
  }
  // A packed-key universe of <= 2^16 slots is cheap unconditionally, so the
  // dense perfect index is committed before the drain and counts piggyback
  // on each batch's just-encoded (cache-hot) keys. Larger universes are
  // decided after the drain, when the staged row count is known.
  if (st.codec && st.mph_indexes && st.codec->total_bits() <= 16) {
    const size_t universe = size_t{1} << st.codec->total_bits();
    if (st.memory
            .Charge(universe * sizeof(std::pair<uint32_t, uint32_t>),
                    "HashProductJoin: build side")
            .ok()) {
      st.dense = true;
      st.dense_heads.assign(universe, {0, 0});
    }
  }
  RowBatch batch;
  st.spill_row.resize(st.right_arity);
  size_t charged_bytes = 0;
  const size_t staged_row_bytes = st.right_arity * sizeof(VarValue) +
                                  sizeof(double) + sizeof(uint64_t);
  // Flushes the staged build rows to key-hash partitions and frees the
  // staging state; after this the drain loop routes rows straight to disk.
  auto spill_staged = [&]() -> Status {
    MPFDB_ASSIGN_OR_RETURN(st.right_parts,
                           MakeSpillPartitions(ctx_, st.right_arity));
    if (stats_ != nullptr) stats_->spill_partitions = st.right_parts.size();
    std::vector<VarValue> key(nkeys);
    const size_t staged = staging_measures.size();
    for (size_t r = 0; r < staged; ++r) {
      for (size_t k = 0; k < nkeys; ++k) {
        key[k] = staging_cols[st.layout.shared_right[k]][r];
      }
      for (size_t c = 0; c < st.right_arity; ++c) {
        st.spill_row[c] = staging_cols[c][r];
      }
      MPFDB_RETURN_IF_ERROR(st.right_parts[SpillPartOf(KeyHash()(key))]->Append(
          st.spill_row.data(), staging_measures[r]));
    }
    for (auto& col : staging_cols) std::vector<VarValue>().swap(col);
    std::vector<double>().swap(staging_measures);
    std::vector<uint64_t>().swap(staged_keys);
    std::vector<uint32_t>().swap(next_row);
    st.packed_heads = PackedMap<std::pair<uint32_t, uint32_t>>(st.hash_impl, 16);
    st.vec_heads.clear();
    st.dense = false;
    std::vector<std::pair<uint32_t, uint32_t>>().swap(st.dense_heads);
    st.memory.ReleaseAll();
    charged_bytes = 0;
    st.spilling = true;
    return Status::Ok();
  };
  auto process_batch = [&](const RowBatch& batch) -> Status {
    const size_t n = batch.num_rows();
    MPFDB_RETURN_IF_ERROR(PollContext(n));
    for (size_t k = 0; k < nkeys; ++k) {
      st.key_cols[k] = batch.col(st.layout.shared_right[k]);
    }
    if (st.spilling) {
      const double* measures = batch.measures();
      for (size_t r = 0; r < n; ++r) {
        for (size_t k = 0; k < nkeys; ++k) st.key_vals[k] = st.key_cols[k][r];
        for (size_t c = 0; c < st.right_arity; ++c) {
          st.spill_row[c] = batch.col(c)[r];
        }
        MPFDB_RETURN_IF_ERROR(
            st.right_parts[SpillPartOf(KeyHash()(st.key_vals))]->Append(
                st.spill_row.data(), measures[r]));
      }
      return Status::Ok();
    }
    const size_t base = staging_measures.size();
    for (size_t c = 0; c < st.right_arity; ++c) {
      const VarValue* col = batch.col(c);
      staging_cols[c].insert(staging_cols[c].end(), col, col + n);
    }
    staging_measures.insert(staging_measures.end(), batch.measures(),
                            batch.measures() + n);
    if (st.codec) {
      staged_keys.resize(base + n);
      if (!st.codec->EncodeColumnar(st.key_cols.data(), n,
                                    staged_keys.data() + base)) {
        return PackedDomainViolation("HashProductJoin");
      }
      if (st.dense) {
        const uint64_t* keys = staged_keys.data() + base;
        for (size_t r = 0; r < n; ++r) ++st.dense_heads[keys[r]].second;
      }
    } else {
      next_row.resize(base + n, kNoChain);
      for (size_t r = 0; r < n; ++r) {
        const uint32_t idx = static_cast<uint32_t>(base + r);
        for (size_t k = 0; k < nkeys; ++k) st.key_vals[k] = st.key_cols[k][r];
        auto [slot, inserted] =
            st.vec_heads.FindOrInsert(st.key_vals, {idx, idx});
        if (!inserted) {
          next_row[slot->second] = idx;
          slot->second = idx;
        }
      }
    }
    // Charge the staged rows plus head-map growth (the codec path builds
    // its heads after the drain and charges them there); on budget breach
    // flush everything staged so far to the partitions and degrade.
    const size_t heads_bytes =
        st.codec ? 0
                 : st.vec_heads.size() *
                       (kHashEntryOverhead + RowFootprint(nkeys));
    const size_t total_bytes =
        staging_measures.size() * staged_row_bytes + heads_bytes;
    if (total_bytes > charged_bytes) {
      Status charge = st.memory.Charge(total_bytes - charged_bytes,
                                       "HashProductJoin: build side");
      if (!charge.ok()) {
        if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
        MPFDB_RETURN_IF_ERROR(spill_staged());
      } else {
        charged_bytes = total_bytes;
      }
    }
    return Status::Ok();
  };
  // Parallel pre-drain of the build side when a pool is available: morsel
  // streams of the right child buffer their batches per stream, and the
  // buffered batches replay through process_batch in stream order — exactly
  // the serial staging order, so chaining and compaction stay byte-for-byte
  // deterministic. Only the (usually dominant) production of build rows runs
  // in parallel; hash-table insertion stays single-threaded.
  bool drained_parallel = false;
  if (ThreadPool* pool = PoolOf(ctx_);
      pool != nullptr && right_->SupportsMorselStreams()) {
    auto streams_or = right_->MakeMorselStreams(
        MorselCount(right_->MorselSourceRows(), pool->num_threads()));
    if (!streams_or.ok()) {
      // A budget breach while materializing a blocking child falls back to
      // the serial drain (which degrades to spill); real errors propagate.
      if (streams_or.status().code() != StatusCode::kResourceExhausted ||
          ctx_ == nullptr || !ctx_->spill_enabled()) {
        return streams_or.status();
      }
    } else if (!streams_or->empty()) {
      std::vector<OperatorPtr>& streams = *streams_or;
      const size_t num_morsels = streams.size();
      std::vector<std::vector<RowBatch>> buffered(num_morsels);
      std::deque<MemoryGuard> guards;
      for (size_t i = 0; i < num_morsels; ++i) guards.emplace_back(ctx_);
      const size_t batch_row_bytes =
          st.right_arity * sizeof(VarValue) + sizeof(double);
      Status drain = pool->ParallelFor(num_morsels, [&](size_t i) -> Status {
        PhysicalOperator& stream = *streams[i];
        stream.BindContext(ctx_);
        Status opened = stream.Open();
        if (!opened.ok()) {
          stream.Close();
          return Annotate(opened, "HashProductJoin: build side");
        }
        RowBatch b;
        Status result = Status::Ok();
        while (true) {
          auto has = stream.NextBatch(&b);
          if (!has.ok()) {
            result = Annotate(has.status(), "HashProductJoin: build side");
            break;
          }
          if (!*has) break;
          const size_t n = b.num_rows();
          if (ctx_ != nullptr) {
            result = ctx_->Poll(n);
            if (!result.ok()) break;
          }
          result = guards[i].Charge(n * batch_row_bytes,
                                    "HashProductJoin: build side");
          if (!result.ok()) break;
          buffered[i].push_back(std::move(b));
          b = RowBatch();
        }
        stream.Close();
        return result;
      });
      if (drain.ok()) {
        for (auto& chunk : buffered) {
          for (RowBatch& b : chunk) MPFDB_RETURN_IF_ERROR(process_batch(b));
        }
        drained_parallel = true;
      } else if (drain.code() != StatusCode::kResourceExhausted ||
                 ctx_ == nullptr || !ctx_->spill_enabled()) {
        return drain;
      }
      // On kResourceExhausted the buffered batches and their reservations
      // are dropped here and the untouched right_ child drains serially,
      // degrading to a Grace-style spill as usual.
    }
  }
  if (!drained_parallel) {
    while (true) {
      auto has = right_->NextBatch(&batch);
      if (!has.ok()) {
        return Annotate(has.status(), "HashProductJoin: build side");
      }
      if (!*has) break;
      MPFDB_RETURN_IF_ERROR(process_batch(batch));
    }
  }
  right_->Close();
  st.right_open = false;

  // Codec path: group the staged rows now that the drain is done. Count the
  // rows per key — either into a dense array indexed by the packed key
  // itself (small domains; collision-free probes with zero hash work) or
  // into the head hash map, assigning dense ids as keys first appear — and
  // remember each row's group so compaction is a pure counting-sort scatter.
  std::vector<uint32_t> staged_ids;   // per-row head id (codec hash path)
  std::vector<uint32_t> head_counts;  // rows per head id (codec hash path)
  if (!st.spilling && st.codec) {
    const size_t total = staging_measures.size();
    const size_t bits = st.codec->total_bits();
    // Universes above the pre-drain 2^16 threshold are worth a dense index
    // only when the staged row count amortizes them (counts then need a
    // second pass over the staged keys).
    if (!st.dense && st.mph_indexes && bits > 16 && bits <= 24 &&
        (size_t{1} << bits) <= total * 8) {
      const size_t universe = size_t{1} << bits;
      Status charge =
          st.memory.Charge(universe * sizeof(std::pair<uint32_t, uint32_t>),
                           "HashProductJoin: build side");
      if (charge.ok()) {  // the perfect index is optional; hash on breach
        st.dense = true;
        st.dense_heads.assign(universe, {0, 0});
        for (size_t r = 0; r < total; ++r) {
          ++st.dense_heads[staged_keys[r]].second;
        }
      }
    }
    if (!st.dense) {
      staged_ids.resize(total);
      for (size_t r = 0; r < total; ++r) {
        auto [slot, inserted] = st.packed_heads.FindOrInsert(
            staged_keys[r], {static_cast<uint32_t>(head_counts.size()), 0});
        if (inserted) head_counts.push_back(0);
        ++head_counts[slot->first];
        staged_ids[r] = slot->first;
      }
      Status charge =
          st.memory.Charge(st.packed_heads.size() * kPackedAggEntryBytes,
                           "HashProductJoin: build side");
      if (!charge.ok()) {
        if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
        MPFDB_RETURN_IF_ERROR(spill_staged());
      }
    }
  }
  if (!st.spilling) {
    // The columnar arena briefly coexists with the staging copy; charge it
    // before allocating so the peak is accounted. A breach here still
    // degrades cleanly — the staged rows all flush to disk.
    Status charge = st.memory.Charge(
        staging_measures.size() *
            (st.right_arity * sizeof(VarValue) + sizeof(double)),
        "HashProductJoin: build side");
    if (!charge.ok()) {
      if (ctx_ == nullptr || !ctx_->spill_enabled()) return charge;
      MPFDB_RETURN_IF_ERROR(spill_staged());
    }
  }
  if (st.spilling) {
    MPFDB_RETURN_IF_ERROR(left_->Open());
    st.left_open = true;
    // Partition the probe side by the same key hash so each partition pair
    // can be joined independently in NextBatchSpill.
    st.left_arity = left_->output_schema().arity();
    MPFDB_ASSIGN_OR_RETURN(st.left_parts,
                           MakeSpillPartitions(ctx_, st.left_arity));
    if (stats_ != nullptr) stats_->spill_partitions = st.left_parts.size();
    st.spill_row.resize(std::max(st.spill_row.size(), st.left_arity));
    RowBatch lbatch;
    while (true) {
      auto lhas = left_->NextBatch(&lbatch);
      if (!lhas.ok()) {
        return Annotate(lhas.status(), "HashProductJoin: probe side");
      }
      if (!*lhas) break;
      const size_t n = lbatch.num_rows();
      MPFDB_RETURN_IF_ERROR(PollContext(n));
      const double* measures = lbatch.measures();
      for (size_t r = 0; r < n; ++r) {
        for (size_t k = 0; k < nkeys; ++k) {
          st.key_vals[k] = lbatch.col(st.layout.shared_left[k])[r];
        }
        for (size_t c = 0; c < st.left_arity; ++c) {
          st.spill_row[c] = lbatch.col(c)[r];
        }
        MPFDB_RETURN_IF_ERROR(
            st.left_parts[SpillPartOf(KeyHash()(st.key_vals))]->Append(
                st.spill_row.data(), measures[r]));
      }
    }
    left_->Close();
    st.left_open = false;
    return Status::Ok();
  }

  // Compact the staging copy so each key's rows are contiguous (preserving
  // their insertion order) and column-major; the heads switch to
  // (start, count) ranges. The codec path is a counting sort: prefix-sum
  // the per-key counts into starts, compute every row's destination with
  // the starts as bump cursors, then scatter column by column. The
  // vector-key path walks its insertion chains as before.
  const size_t total = staging_measures.size();
  st.arena_rows = total;
  st.arena_cols.resize(total * st.right_arity);
  st.arena_measures.resize(total);
  if (st.codec) {
    std::vector<uint32_t> row_pos(total);
    if (st.dense) {
      uint32_t pos = 0;
      for (auto& h : st.dense_heads) {
        h.first = pos;
        pos += h.second;
      }
      for (size_t r = 0; r < total; ++r) {
        row_pos[r] = st.dense_heads[staged_keys[r]].first++;
      }
      for (auto& h : st.dense_heads) h.first -= h.second;
    } else {
      std::vector<uint32_t> starts(head_counts.size());
      uint32_t pos = 0;
      for (size_t id = 0; id < head_counts.size(); ++id) {
        starts[id] = pos;
        pos += head_counts[id];
      }
      for (size_t r = 0; r < total; ++r) row_pos[r] = starts[staged_ids[r]]++;
      for (size_t id = 0; id < head_counts.size(); ++id) {
        starts[id] -= head_counts[id];
      }
      st.packed_heads.ForEachMutable(
          [&](uint64_t, std::pair<uint32_t, uint32_t>& payload) {
            const uint32_t id = payload.first;
            payload = {starts[id], head_counts[id]};
          });
    }
    for (size_t c = 0; c < st.right_arity; ++c) {
      const VarValue* src = staging_cols[c].data();
      VarValue* dst = st.arena_cols.data() + c * total;
      for (size_t r = 0; r < total; ++r) dst[row_pos[r]] = src[r];
    }
    for (size_t r = 0; r < total; ++r) {
      st.arena_measures[row_pos[r]] = staging_measures[r];
    }
  } else {
    size_t pos = 0;
    st.vec_heads.ForEachMutable([&](const std::vector<VarValue>&,
                                    std::pair<uint32_t, uint32_t>& payload) {
      const size_t start = pos;
      for (uint32_t idx = payload.first; idx != kNoChain; idx = next_row[idx]) {
        for (size_t c = 0; c < st.right_arity; ++c) {
          st.arena_cols[c * total + pos] = staging_cols[c][idx];
        }
        st.arena_measures[pos] = staging_measures[idx];
        ++pos;
      }
      payload = {static_cast<uint32_t>(start),
                 static_cast<uint32_t>(pos - start)};
    });
  }
  MPFDB_RETURN_IF_ERROR(left_->Open());
  st.left_open = true;
  return Status::Ok();
}

StatusOr<bool> HashProductJoin::Next(Row* row) {
  Impl& st = *impl_;
  if (!st.built) {
    MPFDB_RETURN_IF_ERROR(BuildRows());
    st.built = true;
  }
  if (st.spilling) return NextSpill(row);
  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext());
    if (st.matches != nullptr && st.match_index < st.matches->size()) {
      const Row& right_row = (*st.matches)[st.match_index++];
      const JoinLayout& layout = st.layout;
      row->vars.resize(layout.schema.arity());
      for (size_t c = 0; c < row->vars.size(); ++c) {
        row->vars[c] = layout.out_from_left[c] != kNpos
                           ? st.left_row.vars[layout.out_from_left[c]]
                           : right_row.vars[layout.out_from_right[c]];
      }
      row->measure = semiring_.Multiply(st.left_row.measure, right_row.measure);
      return true;
    }
    // Advance to the next probing left row.
    auto has = left_->Next(&st.left_row);
    if (!has.ok()) return Annotate(has.status(), "HashProductJoin: probe side");
    if (!*has) return false;
    for (size_t k = 0; k < st.probe_key.size(); ++k) {
      st.probe_key[k] = st.left_row.vars[st.layout.shared_left[k]];
    }
    st.matches = st.build.Find(st.probe_key);
    st.match_index = 0;
  }
}

StatusOr<bool> HashProductJoin::NextSpill(Row* row) {
  Impl& st = *impl_;
  const JoinLayout& layout = st.layout;
  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext());
    if (st.matches != nullptr && st.match_index < st.matches->size()) {
      const Row& right_row = (*st.matches)[st.match_index++];
      row->vars.resize(layout.schema.arity());
      for (size_t c = 0; c < row->vars.size(); ++c) {
        row->vars[c] = layout.out_from_left[c] != kNpos
                           ? st.left_row.vars[layout.out_from_left[c]]
                           : right_row.vars[layout.out_from_right[c]];
      }
      row->measure = semiring_.Multiply(st.left_row.measure, right_row.measure);
      return true;
    }
    if (st.cur_part >= kSpillPartitions) return false;
    if (!st.part_loaded) {
      // Rebuild the hash table from this partition's build rows.
      st.build.clear();
      st.part_memory.ReleaseAll();
      SpillFile& rp = *st.right_parts[st.cur_part];
      MPFDB_RETURN_IF_ERROR(rp.Rewind());
      if (ctx_ != nullptr) ctx_->RecordSpill(rp.num_rows(), rp.bytes_written());
      Row rec;
      rec.vars.resize(right_->output_schema().arity());
      std::vector<VarValue> key(layout.shared.size());
      while (true) {
        MPFDB_RETURN_IF_ERROR(PollContext());
        MPFDB_ASSIGN_OR_RETURN(bool has,
                               rp.Next(rec.vars.data(), &rec.measure));
        if (!has) break;
        for (size_t k = 0; k < key.size(); ++k) {
          key[k] = rec.vars[layout.shared_right[k]];
        }
        st.part_memory.ChargeUnchecked(MaterializedRowFootprint(rec) +
                                       kHashEntryOverhead);
        st.build.FindOrInsert(key, {}).first->push_back(rec);
      }
      MPFDB_RETURN_IF_ERROR(st.left_parts[st.cur_part]->Rewind());
      if (ctx_ != nullptr) {
        ctx_->RecordSpill(st.left_parts[st.cur_part]->num_rows(),
                          st.left_parts[st.cur_part]->bytes_written());
      }
      st.part_loaded = true;
    }
    // Pull the next probe row of this partition.
    st.left_row.vars.resize(st.left_arity);
    MPFDB_ASSIGN_OR_RETURN(
        bool has, st.left_parts[st.cur_part]->Next(st.left_row.vars.data(),
                                                   &st.left_row.measure));
    if (!has) {
      st.right_parts[st.cur_part].reset();
      st.left_parts[st.cur_part].reset();
      ++st.cur_part;
      st.part_loaded = false;
      st.matches = nullptr;
      continue;
    }
    for (size_t k = 0; k < st.probe_key.size(); ++k) {
      st.probe_key[k] = st.left_row.vars[layout.shared_left[k]];
    }
    st.matches = st.build.Find(st.probe_key);
    st.match_index = 0;
  }
}

StatusOr<bool> HashProductJoin::NextBatch(RowBatch* out) {
  Impl& st = *impl_;
  if (!st.built) {
    MPFDB_RETURN_IF_ERROR(BuildBatches());
    st.built = true;
  }
  if (st.spilling) return NextBatchSpill(out);
  return JoinProbeNextBatch(st, st.probe, *left_, semiring_, ctx_, out);
}

Status HashProductJoin::LoadSpillPartition() {
  Impl& st = *impl_;
  const size_t nkeys = st.layout.shared.size();
  SpillFile& rp = *st.right_parts[st.cur_part];
  MPFDB_RETURN_IF_ERROR(rp.Rewind());
  if (ctx_ != nullptr) ctx_->RecordSpill(rp.num_rows(), rp.bytes_written());
  // Same staging-then-compact build as BuildBatches, restricted to one
  // partition. Probing uses vec_heads: partitioning hashed decoded keys, so
  // the packed codec plays no role on the spill path.
  const size_t total = static_cast<size_t>(rp.num_rows());
  std::vector<VarValue> staging_vars(total * st.right_arity);
  std::vector<double> staging_measures(total);
  std::vector<uint32_t> next_row(total, kNoChain);
  st.vec_heads.clear();
  std::vector<VarValue> key(nkeys);
  for (size_t r = 0; r < total; ++r) {
    MPFDB_ASSIGN_OR_RETURN(
        bool has,
        rp.Next(staging_vars.data() + r * st.right_arity, &staging_measures[r]));
    if (!has) return Status::Internal("spill partition shorter than expected");
    const VarValue* src = staging_vars.data() + r * st.right_arity;
    for (size_t k = 0; k < nkeys; ++k) key[k] = src[st.layout.shared_right[k]];
    const uint32_t idx = static_cast<uint32_t>(r);
    auto [slot, inserted] = st.vec_heads.FindOrInsert(key, {idx, idx});
    if (!inserted) {
      next_row[slot->second] = idx;
      slot->second = idx;
    }
  }
  MPFDB_RETURN_IF_ERROR(PollContext(total));
  st.arena_rows = total;
  st.arena_cols.assign(total * st.right_arity, 0);
  st.arena_measures.assign(total, 0.0);
  size_t pos = 0;
  st.vec_heads.ForEachMutable([&](const std::vector<VarValue>&,
                                  std::pair<uint32_t, uint32_t>& payload) {
    const size_t start = pos;
    for (uint32_t idx = payload.first; idx != kNoChain; idx = next_row[idx]) {
      const VarValue* src =
          staging_vars.data() + static_cast<size_t>(idx) * st.right_arity;
      for (size_t c = 0; c < st.right_arity; ++c) {
        st.arena_cols[c * total + pos] = src[c];
      }
      st.arena_measures[pos] = staging_measures[idx];
      ++pos;
    }
    payload = {static_cast<uint32_t>(start),
               static_cast<uint32_t>(pos - start)};
  });
  st.part_memory.ReleaseAll();
  st.part_memory.ChargeUnchecked(
      total * (st.right_arity * sizeof(VarValue) + sizeof(double)));
  MPFDB_RETURN_IF_ERROR(st.left_parts[st.cur_part]->Rewind());
  if (ctx_ != nullptr) {
    ctx_->RecordSpill(st.left_parts[st.cur_part]->num_rows(),
                      st.left_parts[st.cur_part]->bytes_written());
  }
  st.part_loaded = true;
  return Status::Ok();
}

StatusOr<bool> HashProductJoin::NextBatchSpill(RowBatch* out) {
  Impl& st = *impl_;
  ProbeCursor& pc = st.probe;
  const JoinLayout& layout = st.layout;
  const size_t nkeys = layout.shared.size();
  out->Prepare(layout.schema.arity());
  while (!out->full()) {
    if (pc.match_off < pc.match_len) {
      EmitJoinRunSlice(st, pc, semiring_, out);
      continue;
    }
    if (pc.left_pos >= pc.left_batch.num_rows()) {
      if (st.cur_part >= kSpillPartitions) break;
      if (!st.part_loaded) MPFDB_RETURN_IF_ERROR(LoadSpillPartition());
      // Refill the probe batch from the current partition's probe run.
      pc.left_batch.Prepare(st.left_arity);
      size_t n = 0;
      double measure = 0.0;
      while (n < kBatchSize) {
        MPFDB_ASSIGN_OR_RETURN(
            bool has,
            st.left_parts[st.cur_part]->Next(st.spill_row.data(), &measure));
        if (!has) break;
        pc.left_batch.AppendRow(st.spill_row.data(), measure);
        ++n;
      }
      MPFDB_RETURN_IF_ERROR(PollContext(n == 0 ? 1 : n));
      if (n == 0) {
        st.right_parts[st.cur_part].reset();
        st.left_parts[st.cur_part].reset();
        ++st.cur_part;
        st.part_loaded = false;
        continue;
      }
      pc.left_pos = 0;
      continue;
    }
    pc.cur_left = pc.left_pos++;
    pc.match_off = 0;
    pc.match_len = 0;
    for (size_t k = 0; k < nkeys; ++k) {
      st.key_vals[k] = pc.left_batch.col(layout.shared_left[k])[pc.cur_left];
    }
    auto* range = st.vec_heads.Find(st.key_vals);
    if (range != nullptr) {
      pc.match_start = range->first;
      pc.match_len = range->second;
    }
  }
  return !out->empty();
}

StatusOr<std::vector<OperatorPtr>> HashProductJoin::MakeMorselStreams(
    size_t n) {
  Impl& st = *impl_;
  // Vending streams forces the blocking build, exactly as the first
  // NextBatch pull would. Afterwards the head maps and arena are frozen:
  // each stream probes them through a private cursor over a disjoint range
  // of the left child, so concatenating stream outputs in index order
  // reproduces the serial probe output.
  if (!st.built) {
    MPFDB_RETURN_IF_ERROR(BuildBatches());
    st.built = true;
  }
  // The spill path rebuilds per-partition state as it probes; that is
  // inherently sequential, so a degraded join drains serially.
  if (st.spilling) return std::vector<OperatorPtr>{};
  MPFDB_ASSIGN_OR_RETURN(std::vector<OperatorPtr> left_streams,
                         left_->MakeMorselStreams(n));
  std::vector<OperatorPtr> streams;
  streams.reserve(left_streams.size());
  for (auto& ls : left_streams) {
    streams.push_back(std::make_unique<HashJoinProbeStream<Impl>>(
        st, std::move(ls), semiring_));
  }
  return streams;
}

void HashProductJoin::Close() {
  if (impl_) {
    if (impl_->left_open) left_->Close();
    if (impl_->right_open) right_->Close();
  }
  impl_.reset();
}

// --- SortMergeProductJoin ----------------------------------------------------

struct SortMergeProductJoin::Impl {
  JoinLayout layout;
  MemoryGuard memory;
  bool drained = false;
  // Row mode: materialized, stable-sorted inputs.
  std::vector<Row> left_rows;
  std::vector<Row> right_rows;
  // Batch mode: flat row-major arenas plus stable-sorted row index orders
  // (the cursors below then index into l_order/r_order instead of the row
  // vectors — same comparator, same stability, same merge sequence).
  size_t l_arity = 0, r_arity = 0;
  std::vector<VarValue> l_vars, r_vars;
  std::vector<double> l_measures, r_measures;
  std::vector<size_t> l_order, r_order;
  size_t li = 0, ri = 0;
  // Current matching run on both sides (half-open): rows with equal keys.
  size_t l_end = 0, r_end = 0;
  size_t l_cursor = 0, r_cursor = 0;
  bool in_run = false;
};

SortMergeProductJoin::~SortMergeProductJoin() = default;

SortMergeProductJoin::SortMergeProductJoin(OperatorPtr left, OperatorPtr right,
                                           Semiring semiring,
                                           bool left_presorted,
                                           bool right_presorted)
    : left_(std::move(left)),
      right_(std::move(right)),
      semiring_(semiring),
      left_presorted_(left_presorted),
      right_presorted_(right_presorted) {
  schema_ = MakeJoinLayout(left_->output_schema(), right_->output_schema()).schema;
}

Status SortMergeProductJoin::Open() {
  impl_ = std::make_unique<Impl>();
  impl_->layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());
  impl_->memory.Bind(ctx_);
  impl_->memory.set_stats(stats_);
  // Inputs are drained on the first pull (Next or NextBatch), not here, so
  // the batch path can drain both children vectorized.
  MPFDB_RETURN_IF_ERROR(left_->Open());
  return right_->Open();
}

// Row-mode drain: materialize both inputs and stable-sort them on the shared
// variables. Stability keeps equal-key rows in arrival order, which makes
// the run emission a key-restricted subsequence of hash join's output (see
// the class comment). A presorted side (interesting-order reuse) skips its
// sort — a stable sort of sorted input is the identity permutation.
Status SortMergeProductJoin::DrainRows() {
  Impl& st = *impl_;
  Status drained = DrainChild(*left_, &st.left_rows, &st.memory,
                              "SortMergeProductJoin: left input");
  left_->Close();
  MPFDB_RETURN_IF_ERROR(drained);
  drained = DrainChild(*right_, &st.right_rows, &st.memory,
                       "SortMergeProductJoin: right input");
  right_->Close();
  MPFDB_RETURN_IF_ERROR(drained);

  auto sorter = [](const std::vector<size_t>& keys) {
    return [&keys](const Row& a, const Row& b) {
      for (size_t k : keys) {
        if (a.vars[k] != b.vars[k]) return a.vars[k] < b.vars[k];
      }
      return false;
    };
  };
  if (!left_presorted_) {
    std::stable_sort(st.left_rows.begin(), st.left_rows.end(),
                     sorter(st.layout.shared_left));
  }
  if (!right_presorted_) {
    std::stable_sort(st.right_rows.begin(), st.right_rows.end(),
                     sorter(st.layout.shared_right));
  }
  return Status::Ok();
}

// Batch-mode drain: pull both children through NextBatch into arenas and
// stable-sort row indices with the same comparator as the row path, so both
// drive modes merge rows in the same order and produce identical bits.
Status SortMergeProductJoin::DrainBatches() {
  Impl& st = *impl_;
  st.l_arity = left_->output_schema().arity();
  st.r_arity = right_->output_schema().arity();
  Status drained = DrainToArenaBatches(*left_, &st.l_vars, &st.l_measures,
                                       &st.memory,
                                       "SortMergeProductJoin: left input");
  left_->Close();
  MPFDB_RETURN_IF_ERROR(drained);
  drained = DrainToArenaBatches(*right_, &st.r_vars, &st.r_measures,
                                &st.memory,
                                "SortMergeProductJoin: right input");
  right_->Close();
  MPFDB_RETURN_IF_ERROR(drained);

  auto sort_indices = [](std::vector<size_t>* order, size_t count,
                         const std::vector<VarValue>& vars, size_t arity,
                         const std::vector<size_t>& keys, bool presorted) {
    order->resize(count);
    for (size_t i = 0; i < count; ++i) (*order)[i] = i;
    if (presorted) return;
    std::stable_sort(order->begin(), order->end(), [&](size_t a, size_t b) {
      const VarValue* ra = vars.data() + a * arity;
      const VarValue* rb = vars.data() + b * arity;
      for (size_t k : keys) {
        if (ra[k] != rb[k]) return ra[k] < rb[k];
      }
      return false;
    });
  };
  sort_indices(&st.l_order, st.l_measures.size(), st.l_vars, st.l_arity,
               st.layout.shared_left, left_presorted_);
  sort_indices(&st.r_order, st.r_measures.size(), st.r_vars, st.r_arity,
               st.layout.shared_right, right_presorted_);
  return Status::Ok();
}

StatusOr<bool> SortMergeProductJoin::Next(Row* row) {
  Impl& st = *impl_;
  if (!st.drained) {
    MPFDB_RETURN_IF_ERROR(DrainRows());
    st.drained = true;
  }
  const JoinLayout& layout = st.layout;
  auto compare_keys = [&](const Row& l, const Row& r) {
    for (size_t k = 0; k < layout.shared.size(); ++k) {
      VarValue lv = l.vars[layout.shared_left[k]];
      VarValue rv = r.vars[layout.shared_right[k]];
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };

  while (true) {
    MPFDB_RETURN_IF_ERROR(PollContext());
    if (st.in_run) {
      if (st.r_cursor < st.r_end) {
        const Row& l = st.left_rows[st.l_cursor];
        const Row& r = st.right_rows[st.r_cursor++];
        row->vars.resize(layout.schema.arity());
        for (size_t c = 0; c < row->vars.size(); ++c) {
          row->vars[c] = layout.out_from_left[c] != kNpos
                             ? l.vars[layout.out_from_left[c]]
                             : r.vars[layout.out_from_right[c]];
        }
        row->measure = semiring_.Multiply(l.measure, r.measure);
        return true;
      }
      // Advance to next left row in the run.
      ++st.l_cursor;
      st.r_cursor = st.ri;
      if (st.l_cursor >= st.l_end) {
        st.in_run = false;
        st.li = st.l_end;
        st.ri = st.r_end;
      }
      continue;
    }
    if (st.li >= st.left_rows.size() || st.ri >= st.right_rows.size()) {
      return false;
    }
    int cmp = compare_keys(st.left_rows[st.li], st.right_rows[st.ri]);
    if (cmp < 0) {
      ++st.li;
    } else if (cmp > 0) {
      ++st.ri;
    } else {
      // Find the extent of the equal-key run on both sides.
      st.l_end = st.li + 1;
      while (st.l_end < st.left_rows.size() &&
             compare_keys(st.left_rows[st.l_end], st.right_rows[st.ri]) == 0) {
        ++st.l_end;
      }
      st.r_end = st.ri + 1;
      while (st.r_end < st.right_rows.size() &&
             compare_keys(st.left_rows[st.li], st.right_rows[st.r_end]) == 0) {
        ++st.r_end;
      }
      st.l_cursor = st.li;
      st.r_cursor = st.ri;
      st.in_run = true;
    }
  }
}

StatusOr<bool> SortMergeProductJoin::NextBatch(RowBatch* out) {
  Impl& st = *impl_;
  if (!st.drained) {
    MPFDB_RETURN_IF_ERROR(DrainBatches());
    st.drained = true;
  }
  const JoinLayout& layout = st.layout;
  const size_t arity = layout.schema.arity();
  out->Prepare(arity);

  auto lrow = [&](size_t i) {
    return st.l_vars.data() + st.l_order[i] * st.l_arity;
  };
  auto rrow = [&](size_t i) {
    return st.r_vars.data() + st.r_order[i] * st.r_arity;
  };
  auto compare_keys = [&](const VarValue* l, const VarValue* r) {
    for (size_t k = 0; k < layout.shared.size(); ++k) {
      VarValue lv = l[layout.shared_left[k]];
      VarValue rv = r[layout.shared_right[k]];
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };

  std::vector<VarValue*> cols(arity);
  for (size_t c = 0; c < arity; ++c) cols[c] = out->col(c);
  double* measures = out->measures();
  size_t emitted = 0;
  // Same merge automaton as the row path, over sorted index arrays: the
  // (l_cursor, r_cursor) visit sequence is identical, so the batch engine
  // emits exactly the row engine's output.
  while (emitted < kBatchSize) {
    if (st.in_run) {
      if (st.r_cursor < st.r_end) {
        const VarValue* l = lrow(st.l_cursor);
        const VarValue* r = rrow(st.r_cursor);
        for (size_t c = 0; c < arity; ++c) {
          cols[c][emitted] = layout.out_from_left[c] != kNpos
                                 ? l[layout.out_from_left[c]]
                                 : r[layout.out_from_right[c]];
        }
        measures[emitted] =
            semiring_.Multiply(st.l_measures[st.l_order[st.l_cursor]],
                               st.r_measures[st.r_order[st.r_cursor]]);
        ++st.r_cursor;
        ++emitted;
        continue;
      }
      ++st.l_cursor;
      st.r_cursor = st.ri;
      if (st.l_cursor >= st.l_end) {
        st.in_run = false;
        st.li = st.l_end;
        st.ri = st.r_end;
      }
      continue;
    }
    if (st.li >= st.l_order.size() || st.ri >= st.r_order.size()) break;
    int cmp = compare_keys(lrow(st.li), rrow(st.ri));
    if (cmp < 0) {
      ++st.li;
    } else if (cmp > 0) {
      ++st.ri;
    } else {
      st.l_end = st.li + 1;
      while (st.l_end < st.l_order.size() &&
             compare_keys(lrow(st.l_end), rrow(st.ri)) == 0) {
        ++st.l_end;
      }
      st.r_end = st.ri + 1;
      while (st.r_end < st.r_order.size() &&
             compare_keys(lrow(st.li), rrow(st.r_end)) == 0) {
        ++st.r_end;
      }
      st.l_cursor = st.li;
      st.r_cursor = st.ri;
      st.in_run = true;
    }
  }
  MPFDB_RETURN_IF_ERROR(PollContext(emitted == 0 ? 1 : emitted));
  out->set_num_rows(emitted);
  return emitted > 0;
}

void SortMergeProductJoin::Close() { impl_.reset(); }

// --- NestedLoopProductJoin ---------------------------------------------------

NestedLoopProductJoin::NestedLoopProductJoin(OperatorPtr left, OperatorPtr right,
                                             Semiring semiring)
    : left_(std::move(left)), right_(std::move(right)), semiring_(semiring) {
  JoinLayout layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());
  schema_ = layout.schema;
  shared_left_ = layout.shared_left;
  shared_right_ = layout.shared_right;
  out_from_left_ = layout.out_from_left;
  out_from_right_ = layout.out_from_right;
}

Status NestedLoopProductJoin::Open() {
  left_vars_.clear();
  right_vars_.clear();
  left_measures_.clear();
  right_measures_.clear();
  left_arity_ = left_->output_schema().arity();
  right_arity_ = right_->output_schema().arity();
  memory_.Bind(ctx_);
  memory_.set_stats(stats_);
  MPFDB_RETURN_IF_ERROR(left_->Open());
  Status drained = DrainToArena(*left_, &left_vars_, &left_measures_, &memory_,
                                "NestedLoopProductJoin: left input");
  left_->Close();
  MPFDB_RETURN_IF_ERROR(drained);
  MPFDB_RETURN_IF_ERROR(right_->Open());
  drained = DrainToArena(*right_, &right_vars_, &right_measures_, &memory_,
                         "NestedLoopProductJoin: right input");
  right_->Close();
  MPFDB_RETURN_IF_ERROR(drained);
  i_ = 0;
  j_ = 0;
  return Status::Ok();
}

StatusOr<bool> NestedLoopProductJoin::Next(Row* row) {
  const size_t num_left = left_measures_.size();
  const size_t num_right = right_measures_.size();
  while (i_ < num_left) {
    // One poll per outer row, weighted by the inner-side cardinality so the
    // deadline check keeps up with the quadratic work.
    if (j_ == 0) {
      MPFDB_RETURN_IF_ERROR(PollContext(num_right == 0 ? 1 : num_right));
    }
    const VarValue* l = left_vars_.data() + i_ * left_arity_;
    while (j_ < num_right) {
      const VarValue* r = right_vars_.data() + j_ * right_arity_;
      const double right_measure = right_measures_[j_];
      ++j_;
      bool match = true;
      for (size_t k = 0; k < shared_left_.size(); ++k) {
        if (l[shared_left_[k]] != r[shared_right_[k]]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      row->vars.resize(schema_.arity());
      for (size_t c = 0; c < row->vars.size(); ++c) {
        row->vars[c] = out_from_left_[c] != kNpos ? l[out_from_left_[c]]
                                                  : r[out_from_right_[c]];
      }
      row->measure = semiring_.Multiply(left_measures_[i_], right_measure);
      return true;
    }
    j_ = 0;
    ++i_;
  }
  return false;
}

void NestedLoopProductJoin::Close() {
  left_vars_.clear();
  right_vars_.clear();
  left_measures_.clear();
  right_measures_.clear();
  memory_.ReleaseAll();
}

}  // namespace mpfdb::exec
