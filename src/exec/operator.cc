#include "exec/operator.h"

#include <algorithm>
#include <unordered_map>

namespace mpfdb::exec {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

struct KeyHash {
  size_t operator()(const std::vector<VarValue>& key) const {
    uint64_t h = 1469598103934665603ull;
    for (VarValue v : key) {
      uint32_t u = static_cast<uint32_t>(v);
      for (int i = 0; i < 4; ++i) {
        h ^= (u >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    }
    return static_cast<size_t>(h);
  }
};

std::vector<size_t> IndicesOf(const Schema& schema,
                              const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const auto& name : names) indices.push_back(*schema.IndexOf(name));
  return indices;
}

// Computes the join output schema and per-side column mappings.
struct JoinLayout {
  Schema schema;
  std::vector<std::string> shared;
  std::vector<size_t> shared_left;
  std::vector<size_t> shared_right;
  std::vector<size_t> out_from_left;   // output col -> left col or kNpos
  std::vector<size_t> out_from_right;  // output col -> right col or kNpos
};

JoinLayout MakeJoinLayout(const Schema& left, const Schema& right) {
  JoinLayout layout;
  layout.shared = varset::Intersect(left.variables(), right.variables());
  std::vector<std::string> out_vars =
      varset::Union(left.variables(), right.variables());
  layout.schema = Schema(out_vars, left.measure_name());
  layout.shared_left = IndicesOf(left, layout.shared);
  layout.shared_right = IndicesOf(right, layout.shared);
  layout.out_from_left.resize(out_vars.size(), kNpos);
  layout.out_from_right.resize(out_vars.size(), kNpos);
  for (size_t c = 0; c < out_vars.size(); ++c) {
    if (auto idx = left.IndexOf(out_vars[c])) {
      layout.out_from_left[c] = *idx;
    } else {
      layout.out_from_right[c] = *right.IndexOf(out_vars[c]);
    }
  }
  return layout;
}

Status DrainChild(PhysicalOperator& child, std::vector<Row>* out) {
  Row row;
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child.Next(&row));
    if (!has) break;
    out->push_back(row);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<TablePtr> Run(PhysicalOperator& op, const std::string& result_name) {
  MPFDB_RETURN_IF_ERROR(op.Open());
  auto table = std::make_shared<Table>(result_name, op.output_schema());
  Row row;
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, op.Next(&row));
    if (!has) break;
    table->AppendRow(row.vars, row.measure);
  }
  op.Close();
  return table;
}

// --- SeqScan ---------------------------------------------------------------

Status SeqScan::Open() {
  next_row_ = 0;
  return Status::Ok();
}

StatusOr<bool> SeqScan::Next(Row* row) {
  if (next_row_ >= table_->NumRows()) return false;
  RowView view = table_->Row(next_row_++);
  row->vars.assign(view.vars, view.vars + view.arity);
  row->measure = view.measure;
  return true;
}

void SeqScan::Close() {}

// --- DiskScan ----------------------------------------------------------------

StatusOr<bool> DiskScan::Next(Row* row) {
  if (next_row_ >= table_->NumRows()) return false;
  MPFDB_RETURN_IF_ERROR(table_->ReadRow(next_row_++, &row->vars, &row->measure));
  return true;
}

// --- IndexScan ---------------------------------------------------------------

Status IndexScan::Open() {
  if (index_ == nullptr) {
    return Status::FailedPrecondition("IndexScan without an index");
  }
  if (index_->indexed_rows() != table_->NumRows()) {
    return Status::FailedPrecondition(
        "index on " + table_->name() +
        " is stale (table changed since the index was built)");
  }
  matches_ = &index_->Lookup(value_);
  cursor_ = 0;
  return Status::Ok();
}

StatusOr<bool> IndexScan::Next(Row* row) {
  if (matches_ == nullptr || cursor_ >= matches_->size()) return false;
  RowView view = table_->Row((*matches_)[cursor_++]);
  row->vars.assign(view.vars, view.vars + view.arity);
  row->measure = view.measure;
  return true;
}

// --- Filter ----------------------------------------------------------------

Filter::Filter(OperatorPtr child, std::string var, VarValue value)
    : child_(std::move(child)), var_(std::move(var)), value_(value) {}

Status Filter::Open() {
  auto idx = child_->output_schema().IndexOf(var_);
  if (!idx) {
    return Status::InvalidArgument("filter variable '" + var_ +
                                   "' not in child schema");
  }
  var_index_ = *idx;
  return child_->Open();
}

StatusOr<bool> Filter::Next(Row* row) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (row->vars[var_index_] == value_) return true;
  }
}

void Filter::Close() { child_->Close(); }

// --- MeasureFilter -----------------------------------------------------------

StatusOr<bool> MeasureFilter::Next(Row* row) {
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (EvalCompare(having_.op, row->measure, having_.threshold)) return true;
  }
}

// --- StreamProject -----------------------------------------------------------

StreamProject::StreamProject(OperatorPtr child,
                             std::vector<std::string> keep_vars)
    : child_(std::move(child)),
      keep_vars_(std::move(keep_vars)),
      schema_(keep_vars_, child_->output_schema().measure_name()) {}

Status StreamProject::Open() {
  for (const auto& var : keep_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("projected variable '" + var +
                                     "' not in child schema");
    }
  }
  keep_indices_ = IndicesOf(child_->output_schema(), keep_vars_);
  return child_->Open();
}

StatusOr<bool> StreamProject::Next(Row* row) {
  MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(&scratch_));
  if (!has) return false;
  row->vars.resize(keep_indices_.size());
  for (size_t k = 0; k < keep_indices_.size(); ++k) {
    row->vars[k] = scratch_.vars[keep_indices_[k]];
  }
  row->measure = scratch_.measure;
  return true;
}

void StreamProject::Close() { child_->Close(); }

// --- HashMarginalize -------------------------------------------------------

HashMarginalize::HashMarginalize(OperatorPtr child,
                                 std::vector<std::string> group_vars,
                                 Semiring semiring)
    : child_(std::move(child)),
      group_vars_(std::move(group_vars)),
      semiring_(semiring),
      schema_(group_vars_, child_->output_schema().measure_name()) {}

Status HashMarginalize::Open() {
  for (const auto& var : group_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("group variable '" + var +
                                     "' not in child schema");
    }
  }
  key_indices_ = IndicesOf(child_->output_schema(), group_vars_);
  MPFDB_RETURN_IF_ERROR(child_->Open());

  std::unordered_map<std::vector<VarValue>, double, KeyHash> table;
  Row row;
  std::vector<VarValue> key(key_indices_.size());
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    for (size_t k = 0; k < key_indices_.size(); ++k) {
      key[k] = row.vars[key_indices_[k]];
    }
    auto [it, inserted] = table.try_emplace(key, row.measure);
    if (!inserted) it->second = semiring_.Add(it->second, row.measure);
  }
  child_->Close();

  groups_.clear();
  groups_.reserve(table.size());
  for (auto& [k, measure] : table) {
    groups_.push_back(Row{k, measure});
  }
  // Deterministic output order.
  std::sort(groups_.begin(), groups_.end(),
            [](const Row& a, const Row& b) { return a.vars < b.vars; });
  next_group_ = 0;
  return Status::Ok();
}

StatusOr<bool> HashMarginalize::Next(Row* row) {
  if (next_group_ >= groups_.size()) return false;
  *row = groups_[next_group_++];
  return true;
}

void HashMarginalize::Close() { groups_.clear(); }

// --- SortMarginalize -------------------------------------------------------

SortMarginalize::SortMarginalize(OperatorPtr child,
                                 std::vector<std::string> group_vars,
                                 Semiring semiring)
    : child_(std::move(child)),
      group_vars_(std::move(group_vars)),
      semiring_(semiring),
      schema_(group_vars_, child_->output_schema().measure_name()) {}

Status SortMarginalize::Open() {
  for (const auto& var : group_vars_) {
    if (!child_->output_schema().HasVariable(var)) {
      return Status::InvalidArgument("group variable '" + var +
                                     "' not in child schema");
    }
  }
  key_indices_ = IndicesOf(child_->output_schema(), group_vars_);
  MPFDB_RETURN_IF_ERROR(child_->Open());
  sorted_input_.clear();
  MPFDB_RETURN_IF_ERROR(DrainChild(*child_, &sorted_input_));
  child_->Close();
  std::sort(sorted_input_.begin(), sorted_input_.end(),
            [this](const Row& a, const Row& b) {
              for (size_t k : key_indices_) {
                if (a.vars[k] != b.vars[k]) return a.vars[k] < b.vars[k];
              }
              return false;
            });
  cursor_ = 0;
  return Status::Ok();
}

StatusOr<bool> SortMarginalize::Next(Row* row) {
  if (cursor_ >= sorted_input_.size()) return false;
  // Aggregate the current key run.
  const Row& first = sorted_input_[cursor_];
  row->vars.resize(key_indices_.size());
  for (size_t k = 0; k < key_indices_.size(); ++k) {
    row->vars[k] = first.vars[key_indices_[k]];
  }
  row->measure = first.measure;
  ++cursor_;
  while (cursor_ < sorted_input_.size()) {
    const Row& next = sorted_input_[cursor_];
    bool same = true;
    for (size_t k = 0; k < key_indices_.size(); ++k) {
      if (next.vars[key_indices_[k]] != row->vars[k]) {
        same = false;
        break;
      }
    }
    if (!same) break;
    row->measure = semiring_.Add(row->measure, next.measure);
    ++cursor_;
  }
  return true;
}

void SortMarginalize::Close() { sorted_input_.clear(); }

// --- HashProductJoin -------------------------------------------------------

struct HashProductJoin::Impl {
  JoinLayout layout;
  std::unordered_map<std::vector<VarValue>, std::vector<Row>, KeyHash> build;
  // Probe state: current left row and the match list being emitted.
  Row left_row;
  const std::vector<Row>* matches = nullptr;
  size_t match_index = 0;
  bool left_open = false;
};

HashProductJoin::~HashProductJoin() = default;

HashProductJoin::HashProductJoin(OperatorPtr left, OperatorPtr right,
                                 Semiring semiring)
    : left_(std::move(left)), right_(std::move(right)), semiring_(semiring) {
  schema_ = MakeJoinLayout(left_->output_schema(), right_->output_schema()).schema;
}

Status HashProductJoin::Open() {
  impl_ = std::make_unique<Impl>();
  impl_->layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());

  // Build phase over the right child.
  MPFDB_RETURN_IF_ERROR(right_->Open());
  Row row;
  std::vector<VarValue> key(impl_->layout.shared.size());
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    for (size_t k = 0; k < key.size(); ++k) {
      key[k] = row.vars[impl_->layout.shared_right[k]];
    }
    impl_->build[key].push_back(row);
  }
  right_->Close();

  MPFDB_RETURN_IF_ERROR(left_->Open());
  impl_->left_open = true;
  return Status::Ok();
}

StatusOr<bool> HashProductJoin::Next(Row* row) {
  while (true) {
    if (impl_->matches != nullptr &&
        impl_->match_index < impl_->matches->size()) {
      const Row& right_row = (*impl_->matches)[impl_->match_index++];
      const JoinLayout& layout = impl_->layout;
      row->vars.resize(layout.schema.arity());
      for (size_t c = 0; c < row->vars.size(); ++c) {
        row->vars[c] = layout.out_from_left[c] != kNpos
                           ? impl_->left_row.vars[layout.out_from_left[c]]
                           : right_row.vars[layout.out_from_right[c]];
      }
      row->measure =
          semiring_.Multiply(impl_->left_row.measure, right_row.measure);
      return true;
    }
    // Advance to the next probing left row.
    MPFDB_ASSIGN_OR_RETURN(bool has, left_->Next(&impl_->left_row));
    if (!has) return false;
    std::vector<VarValue> key(impl_->layout.shared.size());
    for (size_t k = 0; k < key.size(); ++k) {
      key[k] = impl_->left_row.vars[impl_->layout.shared_left[k]];
    }
    auto it = impl_->build.find(key);
    impl_->matches = it == impl_->build.end() ? nullptr : &it->second;
    impl_->match_index = 0;
  }
}

void HashProductJoin::Close() {
  if (impl_ && impl_->left_open) left_->Close();
  impl_.reset();
}

// --- SortMergeProductJoin ----------------------------------------------------

struct SortMergeProductJoin::Impl {
  JoinLayout layout;
  std::vector<Row> left_rows;
  std::vector<Row> right_rows;
  size_t li = 0, ri = 0;
  // Current matching run on both sides (half-open): rows with equal keys.
  size_t l_end = 0, r_end = 0;
  size_t l_cursor = 0, r_cursor = 0;
  bool in_run = false;
};

SortMergeProductJoin::~SortMergeProductJoin() = default;

SortMergeProductJoin::SortMergeProductJoin(OperatorPtr left, OperatorPtr right,
                                           Semiring semiring)
    : left_(std::move(left)), right_(std::move(right)), semiring_(semiring) {
  schema_ = MakeJoinLayout(left_->output_schema(), right_->output_schema()).schema;
}

Status SortMergeProductJoin::Open() {
  impl_ = std::make_unique<Impl>();
  impl_->layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());

  MPFDB_RETURN_IF_ERROR(left_->Open());
  MPFDB_RETURN_IF_ERROR(DrainChild(*left_, &impl_->left_rows));
  left_->Close();
  MPFDB_RETURN_IF_ERROR(right_->Open());
  MPFDB_RETURN_IF_ERROR(DrainChild(*right_, &impl_->right_rows));
  right_->Close();

  auto sorter = [](const std::vector<size_t>& keys) {
    return [&keys](const Row& a, const Row& b) {
      for (size_t k : keys) {
        if (a.vars[k] != b.vars[k]) return a.vars[k] < b.vars[k];
      }
      return false;
    };
  };
  std::sort(impl_->left_rows.begin(), impl_->left_rows.end(),
            sorter(impl_->layout.shared_left));
  std::sort(impl_->right_rows.begin(), impl_->right_rows.end(),
            sorter(impl_->layout.shared_right));
  return Status::Ok();
}

StatusOr<bool> SortMergeProductJoin::Next(Row* row) {
  Impl& st = *impl_;
  const JoinLayout& layout = st.layout;
  auto compare_keys = [&](const Row& l, const Row& r) {
    for (size_t k = 0; k < layout.shared.size(); ++k) {
      VarValue lv = l.vars[layout.shared_left[k]];
      VarValue rv = r.vars[layout.shared_right[k]];
      if (lv != rv) return lv < rv ? -1 : 1;
    }
    return 0;
  };

  while (true) {
    if (st.in_run) {
      if (st.r_cursor < st.r_end) {
        const Row& l = st.left_rows[st.l_cursor];
        const Row& r = st.right_rows[st.r_cursor++];
        row->vars.resize(layout.schema.arity());
        for (size_t c = 0; c < row->vars.size(); ++c) {
          row->vars[c] = layout.out_from_left[c] != kNpos
                             ? l.vars[layout.out_from_left[c]]
                             : r.vars[layout.out_from_right[c]];
        }
        row->measure = semiring_.Multiply(l.measure, r.measure);
        return true;
      }
      // Advance to next left row in the run.
      ++st.l_cursor;
      st.r_cursor = st.ri;
      if (st.l_cursor >= st.l_end) {
        st.in_run = false;
        st.li = st.l_end;
        st.ri = st.r_end;
      }
      continue;
    }
    if (st.li >= st.left_rows.size() || st.ri >= st.right_rows.size()) {
      return false;
    }
    int cmp = compare_keys(st.left_rows[st.li], st.right_rows[st.ri]);
    if (cmp < 0) {
      ++st.li;
    } else if (cmp > 0) {
      ++st.ri;
    } else {
      // Find the extent of the equal-key run on both sides.
      st.l_end = st.li + 1;
      while (st.l_end < st.left_rows.size() &&
             compare_keys(st.left_rows[st.l_end], st.right_rows[st.ri]) == 0) {
        ++st.l_end;
      }
      st.r_end = st.ri + 1;
      while (st.r_end < st.right_rows.size() &&
             compare_keys(st.left_rows[st.li], st.right_rows[st.r_end]) == 0) {
        ++st.r_end;
      }
      st.l_cursor = st.li;
      st.r_cursor = st.ri;
      st.in_run = true;
    }
  }
}

void SortMergeProductJoin::Close() { impl_.reset(); }

// --- NestedLoopProductJoin ---------------------------------------------------

NestedLoopProductJoin::NestedLoopProductJoin(OperatorPtr left, OperatorPtr right,
                                             Semiring semiring)
    : left_(std::move(left)), right_(std::move(right)), semiring_(semiring) {
  JoinLayout layout = MakeJoinLayout(left_->output_schema(), right_->output_schema());
  schema_ = layout.schema;
  shared_left_ = layout.shared_left;
  shared_right_ = layout.shared_right;
  out_from_left_ = layout.out_from_left;
  out_from_right_ = layout.out_from_right;
}

Status NestedLoopProductJoin::Open() {
  left_rows_.clear();
  right_rows_.clear();
  MPFDB_RETURN_IF_ERROR(left_->Open());
  MPFDB_RETURN_IF_ERROR(DrainChild(*left_, &left_rows_));
  left_->Close();
  MPFDB_RETURN_IF_ERROR(right_->Open());
  MPFDB_RETURN_IF_ERROR(DrainChild(*right_, &right_rows_));
  right_->Close();
  i_ = 0;
  j_ = 0;
  return Status::Ok();
}

StatusOr<bool> NestedLoopProductJoin::Next(Row* row) {
  while (i_ < left_rows_.size()) {
    while (j_ < right_rows_.size()) {
      const Row& l = left_rows_[i_];
      const Row& r = right_rows_[j_++];
      bool match = true;
      for (size_t k = 0; k < shared_left_.size(); ++k) {
        if (l.vars[shared_left_[k]] != r.vars[shared_right_[k]]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      row->vars.resize(schema_.arity());
      for (size_t c = 0; c < row->vars.size(); ++c) {
        row->vars[c] = out_from_left_[c] != kNpos
                           ? l.vars[out_from_left_[c]]
                           : r.vars[out_from_right_[c]];
      }
      row->measure = semiring_.Multiply(l.measure, r.measure);
      return true;
    }
    j_ = 0;
    ++i_;
  }
  return false;
}

void NestedLoopProductJoin::Close() {
  left_rows_.clear();
  right_rows_.clear();
}

}  // namespace mpfdb::exec
