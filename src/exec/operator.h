#ifndef MPFDB_EXEC_OPERATOR_H_
#define MPFDB_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/hash_table.h"
#include "plan/plan.h"
#include "semiring/semiring.h"
#include "storage/catalog.h"
#include "storage/disk_table.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "util/query_context.h"
#include "util/status.h"

namespace mpfdb::exec {

// A produced row flowing between operators.
struct Row {
  std::vector<VarValue> vars;
  double measure = 0;
};

// Volcano-style physical operator. Usage: Open(), then Next() until it
// returns false, then Close(). Operators own their children.
//
// Every operator also supports batch-at-a-time execution through NextBatch;
// the base implementation adapts Next(Row*), and the hot operators override
// it with native columnar implementations. A given operator instance must be
// driven through either Next or NextBatch for its whole lifetime, never a
// mix of both (blocking operators pick their internal drain strategy on the
// first pull).
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  virtual Status Open() = 0;
  // Fills `row` and returns true, or returns false at end of stream.
  virtual StatusOr<bool> Next(Row* row) = 0;
  // Fills `batch` with 1..kBatchSize rows and returns true, or returns false
  // at end of stream. The batch is Prepare()d to output_schema().arity() by
  // the callee; callers just pass the same RowBatch on every pull so its
  // buffers are reused.
  virtual StatusOr<bool> NextBatch(RowBatch* batch);
  virtual void Close() = 0;

  // Binds the per-query resource context (memory budget, deadline,
  // cancellation, spill configuration). Must be called before Open;
  // operators with children override it to propagate the binding down the
  // tree. A null context — the default — disables all governance.
  virtual void BindContext(QueryContext* ctx) { ctx_ = ctx; }

  // --- Morsel-driven parallel protocol (batch engine only) -----------------
  // A parallel-capable operator can split its batch output into `n` disjoint
  // single-threaded streams: the streams' outputs, concatenated in stream
  // index order, reproduce exactly the rows AND row order of driving this
  // operator serially through NextBatch — that ordering contract is what
  // makes parallel results bit-identical to serial. Splitting may first
  // complete a blocking phase on the calling thread (a hash join builds its
  // table before vending probe streams). Streams share immutable state with
  // this operator, which must stay open — and must not be pulled — until
  // every stream is Closed and destroyed. Streams are returned unbound and
  // un-Opened; the driver calls BindContext and Open on each, normally from
  // its worker task. An empty vector means the split is unavailable right
  // now (e.g. the operator degraded to spill mode); callers fall back to
  // pulling this operator serially.
  virtual bool SupportsMorselStreams() const { return false; }
  virtual StatusOr<std::vector<std::unique_ptr<PhysicalOperator>>>
  MakeMorselStreams(size_t n) {
    (void)n;
    return std::vector<std::unique_ptr<PhysicalOperator>>{};
  }
  // Approximate number of source rows feeding this operator's stream, used
  // only to pick a morsel count; 0 when unknown.
  virtual size_t MorselSourceRows() const { return 0; }

  virtual const Schema& output_schema() const = 0;
  virtual std::string name() const = 0;

  // Attaches this operator's runtime stats record (EXPLAIN ANALYZE). The
  // operator routes its MemoryGuard high-water marks and spill partition
  // counts into it; rows/batches/wall time are measured from outside by the
  // executor's instrumentation decorator. Must be set before Open; the
  // record must outlive the operator. Null (the default) disables the hook.
  void set_stats(OperatorStats* stats) { stats_ = stats; }

 protected:
  // How many locally processed rows PollContext accumulates before it
  // forwards to QueryContext::Poll. Amortizes the poll's atomic load across
  // row-at-a-time loops while keeping cancellation latency far below one
  // batch (each polling operator adds at most this many rows of slack).
  static constexpr size_t kPollStride = 64;

  // Cancellation/deadline check; called from operator loops with the number
  // of rows processed since the last check. Free when no context is bound.
  Status PollContext(size_t rows = 1) {
    if (ctx_ == nullptr) return Status::Ok();
    pending_poll_rows_ += rows;
    if (pending_poll_rows_ < kPollStride) return Status::Ok();
    size_t pending = pending_poll_rows_;
    pending_poll_rows_ = 0;
    return ctx_->Poll(pending);
  }

  QueryContext* ctx_ = nullptr;
  OperatorStats* stats_ = nullptr;

 private:
  size_t pending_poll_rows_ = 0;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

// Runs `op` to completion one row at a time and materializes its output.
// When `ctx` is supplied the drive loop polls it as a backstop for operators
// that emit many rows per leaf pull, and the operator is Closed on error so
// partial state is torn down before the Status propagates.
StatusOr<TablePtr> Run(PhysicalOperator& op, const std::string& result_name,
                       QueryContext* ctx = nullptr);

// Runs `op` to completion batch-at-a-time (the vectorized engine entry
// point) and materializes its output.
StatusOr<TablePtr> RunBatch(PhysicalOperator& op,
                            const std::string& result_name,
                            QueryContext* ctx = nullptr);

// --- Leaf ------------------------------------------------------------------

// Full scan of an in-memory table.
class SeqScan : public PhysicalOperator {
 public:
  explicit SeqScan(TablePtr table) : table_(std::move(table)) {}

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  bool SupportsMorselStreams() const override { return true; }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override { return table_->NumRows(); }
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override { return "SeqScan(" + table_->name() + ")"; }

 private:
  TablePtr table_;
  size_t next_row_ = 0;
};

// Streaming scan of a disk-resident table: rows are read page by page
// through the table's buffer pool, so a full pipeline can run without ever
// materializing the base relation in memory — the paper's disk-resident
// operand setting.
class DiskScan : public PhysicalOperator {
 public:
  // `table` must outlive the operator.
  explicit DiskScan(DiskTable* table)
      : table_(table), schema_(table->schema()) {}

  Status Open() override {
    next_row_ = 0;
    return Status::Ok();
  }
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override {}
  bool SupportsMorselStreams() const override { return true; }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return static_cast<size_t>(table_->NumRows());
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override {
    return "DiskScan(" + table_->name() + ")";
  }

 private:
  DiskTable* table_;
  Schema schema_;
  uint64_t next_row_ = 0;
  // Row-major staging area for page-wise batch readout.
  std::vector<VarValue> scratch_vars_;
  std::vector<double> scratch_measures_;
};

// Equality scan served by a hash index: emits exactly the rows whose indexed
// variable equals `value`.
class IndexScan : public PhysicalOperator {
 public:
  // `index` must index `table` (same snapshot) and outlive this operator.
  IndexScan(TablePtr table, const HashIndex* index, VarValue value)
      : table_(std::move(table)), index_(index), value_(value) {}

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  void Close() override {}
  const Schema& output_schema() const override { return table_->schema(); }
  std::string name() const override {
    return "IndexScan(" + table_->name() + ")";
  }

 private:
  TablePtr table_;
  const HashIndex* index_;
  VarValue value_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t cursor_ = 0;
};

// --- Unary -----------------------------------------------------------------

// Streaming equality filter var = value.
class Filter : public PhysicalOperator {
 public:
  Filter(OperatorPtr child, std::string var, VarValue value);

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  bool SupportsMorselStreams() const override {
    return child_->SupportsMorselStreams();
  }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return child_->MorselSourceRows();
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override {
    return "Filter(" + var_ + "=" + std::to_string(value_) + ")";
  }

 private:
  OperatorPtr child_;
  std::string var_;
  VarValue value_;
  size_t var_index_ = 0;
  std::vector<uint32_t> sel_;  // surviving row indices, reused per batch
};

// Streaming filter on the measure value (the HAVING clause of
// constrained-range MPF queries). Placed above the final marginalization.
class MeasureFilter : public PhysicalOperator {
 public:
  MeasureFilter(OperatorPtr child, HavingClause having)
      : child_(std::move(child)), having_(having) {}

  Status Open() override { return child_->Open(); }
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  bool SupportsMorselStreams() const override {
    return child_->SupportsMorselStreams();
  }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return child_->MorselSourceRows();
  }
  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "MeasureFilter"; }

 private:
  OperatorPtr child_;
  HavingClause having_;
  std::vector<uint32_t> sel_;
};

// Streaming column-dropping projection (no deduplication). Only legal when
// the retained variables functionally determine the dropped ones
// (Proposition 1); the optimizer is responsible for that precondition.
class StreamProject : public PhysicalOperator {
 public:
  StreamProject(OperatorPtr child, std::vector<std::string> keep_vars);

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  bool SupportsMorselStreams() const override {
    return child_->SupportsMorselStreams();
  }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return child_->MorselSourceRows();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "StreamProject"; }

 private:
  OperatorPtr child_;
  std::vector<std::string> keep_vars_;
  Schema schema_;
  std::vector<size_t> keep_indices_;
  Row scratch_;
  RowBatch child_batch_;
};

// Blocking hash aggregation implementing the marginalizing GroupBy: groups on
// `group_vars`, combines measures with the semiring's Add.
//
// When a `catalog` is supplied and its domain statistics show the group
// variables pack into 64 bits, the batch path hashes one uint64 per row
// instead of a std::vector<VarValue>; otherwise it falls back to vector
// keys. `hash_impl` selects the table family every path folds into
// (ExecOptions::hash_impl): the SIMD Swiss tables by default, or the legacy
// std::unordered_map / linear-probe structures — results are bit-identical
// either way because every drain sorts its groups before emitting.
class HashMarginalize : public PhysicalOperator {
 public:
  HashMarginalize(OperatorPtr child, std::vector<std::string> group_vars,
                  Semiring semiring, const Catalog* catalog = nullptr,
                  HashImpl hash_impl = HashImpl::kSwiss);

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  // A marginalize always materializes its (small) result, so after the
  // blocking drain it can vend range streams over the sorted groups; the
  // drain itself runs in parallel when the child supports morsel streams.
  bool SupportsMorselStreams() const override { return true; }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return drained_ ? out_measures_.size() : child_->MorselSourceRows();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashMarginalize"; }

 private:
  Status DrainRows();
  Status DrainBatches();
  // Morsel-parallel drain: partitions (key, measure) pairs by key hash so
  // every key is folded on exactly one partition in global input order.
  // Returns false when parallel execution is unavailable (no pool, child
  // cannot split); kResourceExhausted means the caller should fall back to
  // the serial drain, which handles the budget by spilling.
  StatusOr<bool> TryDrainBatchesParallel();

  OperatorPtr child_;
  std::vector<std::string> group_vars_;
  Semiring semiring_;
  const Catalog* catalog_;
  HashImpl hash_impl_;
  Schema schema_;
  std::vector<size_t> key_indices_;
  bool drained_ = false;
  // Accounting for the materialized groups (released on Close/re-Open); the
  // transient aggregation tables use drain-local guards.
  MemoryGuard memory_;
  // Row-mode result: materialized groups emitted by Next.
  std::vector<Row> groups_;
  // Batch-mode result: row-major group keys plus parallel measures.
  std::vector<VarValue> out_vars_;
  std::vector<double> out_measures_;
  size_t next_group_ = 0;
};

// Sort-based marginalization: materializes and (stable-)sorts the child's
// output on the group key, then folds each run into one row per group. The
// stable sort keeps equal-key rows in arrival order, so per-group folds —
// and the sorted group emission — are bit-identical to HashMarginalize.
// `input_presorted` (set by the physical planner's interesting-order pass)
// promises the input already arrives sorted by `group_vars`; the row path
// then skips the sort (a stable sort of sorted input is the identity
// permutation, so the skip cannot change results) and the batch path goes
// further: groups arrive contiguously, so it folds runs batch-by-batch as
// they stream past without materializing the input at all — the avoided
// re-sort also avoids the drain. Otherwise the input is drained lazily on
// the first pull (not in Open), and the batch path folds a columnar arena
// natively instead of falling back to the row adapter. Either way the
// per-group fold order is child arrival order, bit-identical to
// HashMarginalize.
class SortMarginalize : public PhysicalOperator {
 public:
  SortMarginalize(OperatorPtr child, std::vector<std::string> group_vars,
                  Semiring semiring, bool input_presorted = false);

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    child_->BindContext(ctx);
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "SortMarginalize"; }

 private:
  Status DrainRows();
  Status DrainBatches();

  OperatorPtr child_;
  std::vector<std::string> group_vars_;
  Semiring semiring_;
  bool input_presorted_;
  Schema schema_;
  std::vector<size_t> key_indices_;
  bool drained_ = false;
  // Row mode: sorted input rows; Next folds runs from cursor_.
  std::vector<Row> sorted_input_;
  size_t cursor_ = 0;
  // Batch mode: folded groups (row-major keys + parallel measures), emitted
  // in slices from next_group_.
  std::vector<VarValue> out_vars_;
  std::vector<double> out_measures_;
  size_t next_group_ = 0;
  // Streaming presorted batch mode: the in-flight child batch and the group
  // run currently being folded across batch boundaries.
  RowBatch in_batch_;
  size_t in_pos_ = 0;
  bool stream_done_ = false;
  std::vector<VarValue> cur_key_;
  double cur_acc_ = 0;
  bool have_group_ = false;
  MemoryGuard memory_;
};

// --- Binary ----------------------------------------------------------------

// Hash product join: builds a hash table over the right child on the shared
// variables, then streams the left child, producing one output row per match
// with measure Multiply(left.f, right.f). With no shared variables this
// degenerates to a cross product.
//
// The batch path materializes the build side into a flat arena with packed
// 64-bit keys when `catalog` domain statistics allow (vector-key fallback
// otherwise); the row path keeps the legacy per-key Row vectors. Every head
// map runs on the table family `hash_impl` selects (Swiss by default); the
// arena compaction order may differ between families, but each key's match
// run stays contiguous and insertion-ordered, so emission is bit-identical.
class HashProductJoin : public PhysicalOperator {
 public:
  // `mph_indexes` lets the batch build replace its head hash map with a
  // dense perfect-index array when the packed-key universe is small — the
  // catalog fixes domains per epoch, so the array is collision-free by
  // construction. Pure lookup accelerator; results are bit-identical.
  HashProductJoin(OperatorPtr left, OperatorPtr right, Semiring semiring,
                  const Catalog* catalog = nullptr,
                  HashImpl hash_impl = HashImpl::kSwiss,
                  bool mph_indexes = true);
  ~HashProductJoin() override;

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    left_->BindContext(ctx);
    right_->BindContext(ctx);
  }
  // Probe-side parallelism: once the build side is materialized (shared,
  // read-only), every morsel stream of the probe side is wrapped in its own
  // probe cursor over the shared table. Unavailable once the join degraded
  // to spill partitions.
  bool SupportsMorselStreams() const override {
    return left_->SupportsMorselStreams();
  }
  StatusOr<std::vector<OperatorPtr>> MakeMorselStreams(size_t n) override;
  size_t MorselSourceRows() const override {
    return left_->MorselSourceRows();
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "HashProductJoin"; }

 private:
  struct Impl;
  Status BuildRows();
  Status BuildBatches();
  StatusOr<bool> NextSpill(Row* row);
  StatusOr<bool> NextBatchSpill(RowBatch* out);
  Status LoadSpillPartition();

  OperatorPtr left_;
  OperatorPtr right_;
  Semiring semiring_;
  const Catalog* catalog_;
  HashImpl hash_impl_;
  bool mph_indexes_;
  Schema schema_;
  std::unique_ptr<Impl> impl_;
};

// Sort-merge product join: materializes and (stable-)sorts both inputs on
// the shared variables, then merges. Duplicate keys on both sides produce
// the full pairwise product, as the product join requires; within a run the
// emission is left-major with both sides in arrival order (stable sort), so
// restricted to any one shared-key value the output sequence matches hash
// join's exactly. `left/right_presorted` (interesting-order reuse) skip the
// corresponding sort. Inputs are drained lazily on the first pull, and the
// batch path merges columnar arenas natively instead of falling back to the
// row adapter.
class SortMergeProductJoin : public PhysicalOperator {
 public:
  SortMergeProductJoin(OperatorPtr left, OperatorPtr right, Semiring semiring,
                       bool left_presorted = false,
                       bool right_presorted = false);
  ~SortMergeProductJoin() override;

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  StatusOr<bool> NextBatch(RowBatch* batch) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    left_->BindContext(ctx);
    right_->BindContext(ctx);
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "SortMergeProductJoin"; }

 private:
  struct Impl;
  Status DrainRows();
  Status DrainBatches();

  OperatorPtr left_;
  OperatorPtr right_;
  Semiring semiring_;
  bool left_presorted_;
  bool right_presorted_;
  Schema schema_;
  std::unique_ptr<Impl> impl_;
};

// Nested-loop product join; quadratic, present as the fallback comparison
// point for the operator ablation bench. Inputs are drained into flat
// arenas (not per-row vectors) so Open performs no per-tuple allocation.
class NestedLoopProductJoin : public PhysicalOperator {
 public:
  NestedLoopProductJoin(OperatorPtr left, OperatorPtr right, Semiring semiring);

  Status Open() override;
  StatusOr<bool> Next(Row* row) override;
  void Close() override;
  void BindContext(QueryContext* ctx) override {
    ctx_ = ctx;
    left_->BindContext(ctx);
    right_->BindContext(ctx);
  }
  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "NestedLoopProductJoin"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Semiring semiring_;
  Schema schema_;
  MemoryGuard memory_;
  size_t left_arity_ = 0, right_arity_ = 0;
  std::vector<VarValue> left_vars_, right_vars_;  // row-major arenas
  std::vector<double> left_measures_, right_measures_;
  std::vector<size_t> shared_left_;
  std::vector<size_t> shared_right_;
  std::vector<size_t> out_from_left_;   // output col -> left col (or npos)
  std::vector<size_t> out_from_right_;  // output col -> right col (or npos)
  size_t i_ = 0, j_ = 0;
};

}  // namespace mpfdb::exec

#endif  // MPFDB_EXEC_OPERATOR_H_
