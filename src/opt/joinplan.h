#ifndef MPFDB_OPT_JOINPLAN_H_
#define MPFDB_OPT_JOINPLAN_H_

#include <cstdint>
#include <vector>

#include "opt/optimizer.h"

namespace mpfdb::opt {

// Factor (the planning unit: subplan + covered-leaves bitmask) lives in
// optimizer.h, shared with the elimination searches.

struct JoinPlanOptions {
  // Search bushy (nonlinear) join trees instead of left-linear only
  // (Section 5.1's nonlinear extension).
  bool bushy = false;
  // Apply the greedy-conservative GroupBy pushdown of Chaudhuri-Shim at each
  // join: compare joining each operand as-is against joining it under a
  // GroupBy on its semantically safe variable set, and keep the cheaper
  // (Algorithm 1 lines 2-4; four candidates in the bushy case).
  bool groupby_pushdown = false;
  // Never join operands that share no variables unless the subset admits no
  // connected decomposition (cross products as a last resort).
  bool avoid_cross_products = true;
  // When true, candidates covering the FULL factor set are compared by
  // est_cost + GroupByCost(est_card) — the cost including the root
  // marginalization onto the query variables, which Algorithm 1's optPlan
  // for the complete query includes. Without this, a plan with a cheaper
  // join tree but a larger pre-aggregation result wrongly beats one whose
  // operand GroupBys shrank the final join.
  bool charge_root_groupby = false;
};

// Exhaustive dynamic-programming join planning over `factors` under `opts`.
// Returns the best plan covering all factors. Requires factors.size() <= 16
// when bushy (the DP is O(3^n)) and <= 20 otherwise.
StatusOr<PlanPtr> BestJoinPlan(const QueryContext& ctx,
                               const std::vector<Factor>& factors,
                               const JoinPlanOptions& opts);

// Chains `factors` in ascending estimated-cardinality order with plain joins
// (no GroupBys). This is the "fixed linear join ordering" overestimate the
// paper uses to implement the elimination-cost heuristic cheaply.
StatusOr<PlanPtr> FixedOrderJoinPlan(const QueryContext& ctx,
                                     std::vector<Factor> factors);

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_JOINPLAN_H_
