#ifndef MPFDB_OPT_CS_H_
#define MPFDB_OPT_CS_H_

#include <string>

#include "opt/optimizer.h"

namespace mpfdb::opt {

// The unmodified Chaudhuri-Shim baseline applied to MPF queries: Selinger
// dynamic programming over left-linear join orders with a single GroupBy at
// the root (Figure 3 of the paper). CS as published pushes GroupBys for
// single-column aggregates, but it cannot recognize the distributivity of
// the aggregate with the *product* join, so for MPF queries it degenerates
// to the no-GDL plan the paper describes in Section 5.
class CsOptimizer : public Optimizer {
 public:
  std::string name() const override { return "CS"; }

  StatusOr<PlanPtr> Optimize(const MpfViewDef& view, const MpfQuerySpec& query,
                             const Catalog& catalog,
                             const CostModel& cost_model) override;
};

// CS+ (Section 5): joins annotated as product joins, distributivity of the
// semiring aggregate verified, and the greedy-conservative GroupBy pushdown
// of Algorithm 1 applied at every join. The nonlinear variant searches bushy
// join trees and compares the four GroupBy placements of Section 5.1.
class CsPlusOptimizer : public Optimizer {
 public:
  explicit CsPlusOptimizer(bool nonlinear) : nonlinear_(nonlinear) {}

  std::string name() const override {
    return nonlinear_ ? "CS+(nonlinear)" : "CS+(linear)";
  }

  StatusOr<PlanPtr> Optimize(const MpfViewDef& view, const MpfQuerySpec& query,
                             const Catalog& catalog,
                             const CostModel& cost_model) override;

 private:
  bool nonlinear_;
};

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_CS_H_
