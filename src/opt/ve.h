#ifndef MPFDB_OPT_VE_H_
#define MPFDB_OPT_VE_H_

#include <cstdint>
#include <string>

#include "opt/optimizer.h"

namespace mpfdb::opt {

// Elimination-order heuristics (Section 5.5).
enum class VeHeuristic {
  // Minimizes the estimated size of the post-elimination relation (the
  // domain product of the clique minus the eliminated variable).
  kDegree,
  // Minimizes the estimated size of the pre-elimination relation (the
  // domain product of the whole clique).
  kWidth,
  // Minimizes the estimated cost of the elimination plan, computed with the
  // paper's overestimate: a fixed linear join ordering of rels(v).
  kElimCost,
  // Normalized product of degree and width scores.
  kDegreeWidth,
  // Normalized product of degree and elimination-cost scores.
  kDegreeElimCost,
  // Uniformly random choice (Table 3's experiment); seeded via VeOptions.
  kRandom,
  // Minimizes the number of fill edges elimination introduces in the
  // variable graph — the classic triangulation heuristic from the VE
  // literature the paper cites ([9]); an extension beyond the paper's
  // evaluated set.
  kMinFill,
};

std::string VeHeuristicName(VeHeuristic heuristic);

struct VeOptions {
  VeHeuristic heuristic = VeHeuristic::kDegree;
  // Section 5.4's space extension (VE+): joinplan() uses the CS+
  // greedy-conservative GroupBy pushdown and elimination is delayed —
  // GroupBys appear only where they are locally cost-effective.
  bool extended = false;
  // Proposition 1: variables outside every base relation's declared primary
  // key are removed from the elimination candidates and handled by a root
  // projection instead of aggregation. Requires every base relation to have
  // a declared key; silently disabled otherwise.
  bool fd_pruning = false;
  // Seed for the kRandom heuristic.
  uint64_t seed = 0;
};

// The Variable Elimination optimizer (Algorithm 2) and its extended-space
// variant (Section 5.4). Produces bushy plans: all joins touching the
// variable being eliminated are contiguous, followed by a GroupBy (plain VE),
// or GroupBys placed by local cost decisions (extended).
class VeOptimizer : public Optimizer {
 public:
  explicit VeOptimizer(VeOptions options) : options_(options) {}

  std::string name() const override;

  StatusOr<PlanPtr> Optimize(const MpfViewDef& view, const MpfQuerySpec& query,
                             const Catalog& catalog,
                             const CostModel& cost_model) override;

  // The elimination order chosen by the most recent Optimize call — the
  // VE-flavored name for the shared variable-order IR.
  const std::vector<std::string>& last_elimination_order() const {
    return last_variable_order();
  }

 private:
  // One full VE pass under the given options; fills last_order_ (the shared
  // variable-order IR on the Optimizer base).
  StatusOr<PlanPtr> RunVe(const MpfViewDef& view, const MpfQuerySpec& query,
                          const Catalog& catalog, const CostModel& cost_model,
                          const VeOptions& options);

  VeOptions options_;
};

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_VE_H_
