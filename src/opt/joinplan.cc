#include "opt/joinplan.h"

#include <algorithm>
#include <unordered_map>

namespace mpfdb::opt {
namespace {

bool SharesVariables(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  return !varset::Intersect(a, b).empty();
}

// Wraps `plan` in a GroupBy on its safe variable set if that drops at least
// one variable; returns nullptr otherwise.
StatusOr<PlanPtr> MaybeGroupBy(const QueryContext& ctx, const Factor& factor) {
  std::vector<std::string> safe =
      SafeRetainVars(ctx, factor.covered, factor.plan->output_vars);
  if (safe.size() == factor.plan->output_vars.size()) return PlanPtr(nullptr);
  return ctx.builder.GroupBy(factor.plan, std::move(safe));
}

// Enumerates the (up to four) join candidates between two factors, applying
// the greedy-conservative GroupBy pushdown when enabled, and returns the
// cheapest. When `at_root` and the options charge the root GroupBy, the
// candidates are compared including that final aggregation's cost (which
// depends on each candidate's output cardinality).
StatusOr<PlanPtr> BestJoinOfPair(const QueryContext& ctx, const Factor& left,
                                 const Factor& right,
                                 const JoinPlanOptions& opts, bool at_root) {
  const bool charge_root = opts.charge_root_groupby && at_root;
  auto keep = [&](PlanPtr candidate, PlanPtr* best) {
    if (candidate == nullptr) return;
    auto cost = [&](const PlanPtr& p) {
      if (!charge_root) return p->est_cost;
      return p->est_cost + ctx.builder.cost_model().GroupByCost(p->est_card);
    };
    if (*best == nullptr || cost(candidate) < cost(*best)) {
      *best = std::move(candidate);
    }
  };
  PlanPtr best;
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plain, ctx.builder.Join(left.plan, right.plan));
  keep(std::move(plain), &best);
  if (opts.groupby_pushdown) {
    MPFDB_ASSIGN_OR_RETURN(PlanPtr left_gb, MaybeGroupBy(ctx, left));
    MPFDB_ASSIGN_OR_RETURN(PlanPtr right_gb, MaybeGroupBy(ctx, right));
    if (left_gb != nullptr) {
      MPFDB_ASSIGN_OR_RETURN(PlanPtr p, ctx.builder.Join(left_gb, right.plan));
      keep(std::move(p), &best);
    }
    if (right_gb != nullptr) {
      MPFDB_ASSIGN_OR_RETURN(PlanPtr p, ctx.builder.Join(left.plan, right_gb));
      keep(std::move(p), &best);
    }
    if (left_gb != nullptr && right_gb != nullptr) {
      MPFDB_ASSIGN_OR_RETURN(PlanPtr p, ctx.builder.Join(left_gb, right_gb));
      keep(std::move(p), &best);
    }
  }
  return best;
}

int PopCount(uint64_t x) { return __builtin_popcountll(x); }

}  // namespace

StatusOr<PlanPtr> BestJoinPlan(const QueryContext& ctx,
                               const std::vector<Factor>& factors,
                               const JoinPlanOptions& opts) {
  const size_t n = factors.size();
  if (n == 0) return Status::InvalidArgument("no factors to join");
  if (n == 1) return factors[0].plan;
  if (opts.bushy && n > 16) {
    return Status::InvalidArgument("bushy join planning limited to 16 factors");
  }
  if (n > 20) {
    return Status::InvalidArgument("join planning limited to 20 factors");
  }

  // dp[mask] = best Factor covering exactly the factors in `mask` (a local
  // mask over `factors`; Factor::covered stays a global base-relation mask).
  const uint64_t full = (n == 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  std::vector<Factor> dp(full + 1);
  for (size_t i = 0; i < n; ++i) dp[uint64_t{1} << i] = factors[i];

  // Candidates for the full set are compared including the root
  // marginalization they will receive (see JoinPlanOptions).
  auto effective_cost = [&](const PlanPtr& plan, uint64_t mask) {
    if (!opts.charge_root_groupby || mask != full) return plan->est_cost;
    return plan->est_cost +
           ctx.builder.cost_model().GroupByCost(plan->est_card);
  };

  // Process masks in increasing popcount via plain increasing order: every
  // proper submask of m is < m.
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (PopCount(mask) < 2) continue;
    // Two passes: first connected decompositions only, then (if none
    // produced a plan) cross products.
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1 && (dp[mask].plan != nullptr || opts.avoid_cross_products == false)) {
        break;
      }
      const bool require_connection = opts.avoid_cross_products && pass == 0;
      if (opts.bushy) {
        // All partitions (s1, s2); anchor the lowest bit in s1 to halve work.
        const uint64_t low = mask & (~mask + 1);
        for (uint64_t s1 = mask; s1 != 0; s1 = (s1 - 1) & mask) {
          if (!(s1 & low) || s1 == mask) continue;
          const uint64_t s2 = mask ^ s1;
          const Factor& f1 = dp[s1];
          const Factor& f2 = dp[s2];
          if (f1.plan == nullptr || f2.plan == nullptr) continue;
          if (require_connection &&
              !SharesVariables(f1.plan->output_vars, f2.plan->output_vars)) {
            continue;
          }
          MPFDB_ASSIGN_OR_RETURN(PlanPtr candidate,
                                 BestJoinOfPair(ctx, f1, f2, opts, mask == full));
          if (candidate != nullptr &&
              (dp[mask].plan == nullptr ||
               effective_cost(candidate, mask) <
                   effective_cost(dp[mask].plan, mask))) {
            dp[mask] =
                Factor{std::move(candidate), f1.covered | f2.covered};
          }
        }
      } else {
        // Left-linear: peel off one factor at a time.
        for (size_t j = 0; j < n; ++j) {
          const uint64_t bit = uint64_t{1} << j;
          if (!(mask & bit)) continue;
          const uint64_t rest = mask ^ bit;
          const Factor& accumulated = dp[rest];
          const Factor& leaf = factors[j];
          if (accumulated.plan == nullptr) continue;
          if (require_connection &&
              !SharesVariables(accumulated.plan->output_vars,
                               leaf.plan->output_vars)) {
            continue;
          }
          MPFDB_ASSIGN_OR_RETURN(
              PlanPtr candidate,
              BestJoinOfPair(ctx, accumulated, leaf, opts, mask == full));
          if (candidate != nullptr &&
              (dp[mask].plan == nullptr ||
               effective_cost(candidate, mask) <
                   effective_cost(dp[mask].plan, mask))) {
            dp[mask] =
                Factor{std::move(candidate), accumulated.covered | leaf.covered};
          }
        }
      }
      if (!opts.avoid_cross_products) break;
    }
  }
  if (dp[full].plan == nullptr) {
    return Status::Internal("join planning produced no plan for full set");
  }
  return dp[full].plan;
}

StatusOr<PlanPtr> FixedOrderJoinPlan(const QueryContext& ctx,
                                     std::vector<Factor> factors) {
  if (factors.empty()) return Status::InvalidArgument("no factors to join");
  std::stable_sort(factors.begin(), factors.end(),
                   [](const Factor& a, const Factor& b) {
                     return a.plan->est_card < b.plan->est_card;
                   });
  PlanPtr plan = factors[0].plan;
  for (size_t i = 1; i < factors.size(); ++i) {
    MPFDB_ASSIGN_OR_RETURN(plan, ctx.builder.Join(plan, factors[i].plan));
  }
  return plan;
}

}  // namespace mpfdb::opt
