#include "opt/optimizer.h"

#include <cmath>

namespace mpfdb::opt {

StatusOr<QueryContext> QueryContext::Make(const MpfViewDef& view,
                                          const MpfQuerySpec& query,
                                          const Catalog& catalog,
                                          const CostModel& cost_model) {
  if (view.relations.empty()) {
    return Status::InvalidArgument("view '" + view.name + "' has no relations");
  }
  if (view.relations.size() > 64) {
    return Status::InvalidArgument(
        "optimizers support at most 64 base relations");
  }
  QueryContext ctx{PlanBuilder(catalog, cost_model),
                   query.group_vars,
                   query.having,
                   {},
                   {},
                   {}};

  for (const auto& rel : view.relations) {
    // Access path choice for the leaf: if exactly one pushed-down selection
    // can be served by an index, start from an IndexScan; further
    // selections layer as filters. (The paper's Section 5.4 point that
    // access methods change which plans are optimal enters here.)
    PlanPtr leaf;
    std::string index_var;
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    for (const auto& sel : query.selections) {
      if (table->schema().HasVariable(sel.var) &&
          catalog.GetIndex(rel, sel.var) != nullptr) {
        MPFDB_ASSIGN_OR_RETURN(leaf,
                               ctx.builder.IndexScan(rel, sel.var, sel.value));
        index_var = sel.var;
        break;
      }
    }
    if (leaf == nullptr) {
      MPFDB_ASSIGN_OR_RETURN(leaf, ctx.builder.Scan(rel));
    }
    // Push every applicable selection not already served by the index.
    bool index_applied = false;
    for (const auto& sel : query.selections) {
      if (sel.var == index_var && !index_applied) {
        index_applied = true;
        continue;
      }
      if (varset::Contains(leaf->output_vars, sel.var)) {
        MPFDB_ASSIGN_OR_RETURN(leaf,
                               ctx.builder.Select(leaf, sel.var, sel.value));
      }
    }
    ctx.leaf_vars.push_back(leaf->output_vars);
    ctx.all_vars = varset::Union(ctx.all_vars, leaf->output_vars);
    ctx.leaves.push_back(std::move(leaf));
  }

  for (const auto& var : query.group_vars) {
    if (!varset::Contains(ctx.all_vars, var)) {
      return Status::InvalidArgument("query variable '" + var +
                                     "' does not appear in view '" +
                                     view.name + "'");
    }
  }
  for (const auto& sel : query.selections) {
    if (!varset::Contains(ctx.all_vars, sel.var)) {
      return Status::InvalidArgument("selection variable '" + sel.var +
                                     "' does not appear in view '" +
                                     view.name + "'");
    }
  }
  return ctx;
}

std::vector<std::string> SafeRetainVars(
    const QueryContext& ctx, uint64_t covered,
    const std::vector<std::string>& out_vars) {
  // needed = X ∪ Var(relations outside `covered`).
  std::vector<std::string> needed = ctx.query_vars;
  for (size_t i = 0; i < ctx.leaves.size(); ++i) {
    if (covered & (uint64_t{1} << i)) continue;
    needed = varset::Union(needed, ctx.leaf_vars[i]);
  }
  return varset::Intersect(out_vars, needed);
}

StatusOr<PlanPtr> ApplyHaving(const QueryContext& ctx, PlanPtr plan) {
  if (!ctx.having.has_value()) return plan;
  return ctx.builder.MeasureFilter(std::move(plan), *ctx.having);
}

StatusOr<PlanPtr> FinalizePlan(const QueryContext& ctx, PlanPtr plan) {
  if (plan == nullptr) return Status::Internal("null plan to finalize");
  const bool already_grouped =
      (plan->kind == PlanNodeKind::kGroupBy ||
       plan->kind == PlanNodeKind::kProject) &&
      varset::SetEquals(plan->group_vars, ctx.query_vars);
  if (already_grouped) return ApplyHaving(ctx, std::move(plan));
  // A join of functional relations whose output is exactly X is itself a
  // functional relation over X only if no other variables were ever joined
  // away without aggregation — which FinalizePlan cannot see. A root GroupBy
  // over an FR on exactly X is a cheap no-op pass, so add it whenever the
  // top node is not already a grouping on X.
  MPFDB_ASSIGN_OR_RETURN(plan,
                         ctx.builder.GroupBy(std::move(plan), ctx.query_vars));
  return ApplyHaving(ctx, std::move(plan));
}

bool LinearPlanAdmissible(double sigma_x, double sigma_hat_x) {
  double log_term =
      sigma_hat_x <= 2.0 ? sigma_hat_x : sigma_hat_x * std::log2(sigma_hat_x);
  return sigma_x * sigma_x + log_term >= sigma_x * sigma_hat_x;
}

StatusOr<bool> LinearPlanAdmissible(const MpfViewDef& view,
                                    const std::string& var,
                                    const Catalog& catalog) {
  MPFDB_ASSIGN_OR_RETURN(int64_t sigma, catalog.DomainSize(var));
  MPFDB_ASSIGN_OR_RETURN(int64_t sigma_hat,
                         catalog.SmallestRelationWith(var, view.relations));
  return LinearPlanAdmissible(static_cast<double>(sigma),
                              static_cast<double>(sigma_hat));
}

}  // namespace mpfdb::opt
