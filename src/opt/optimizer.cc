#include "opt/optimizer.h"

#include <cmath>

namespace mpfdb::opt {

StatusOr<QueryContext> QueryContext::Make(const MpfViewDef& view,
                                          const MpfQuerySpec& query,
                                          const Catalog& catalog,
                                          const CostModel& cost_model) {
  if (view.relations.empty()) {
    return Status::InvalidArgument("view '" + view.name + "' has no relations");
  }
  if (view.relations.size() > 64) {
    return Status::InvalidArgument(
        "optimizers support at most 64 base relations");
  }
  QueryContext ctx{PlanBuilder(catalog, cost_model),
                   query.group_vars,
                   query.having,
                   {},
                   {},
                   {}};

  for (const auto& rel : view.relations) {
    // Access path choice for the leaf: if exactly one pushed-down selection
    // can be served by an index, start from an IndexScan; further
    // selections layer as filters. (The paper's Section 5.4 point that
    // access methods change which plans are optimal enters here.)
    PlanPtr leaf;
    std::string index_var;
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    for (const auto& sel : query.selections) {
      if (table->schema().HasVariable(sel.var) &&
          catalog.GetIndex(rel, sel.var) != nullptr) {
        MPFDB_ASSIGN_OR_RETURN(leaf,
                               ctx.builder.IndexScan(rel, sel.var, sel.value));
        index_var = sel.var;
        break;
      }
    }
    if (leaf == nullptr) {
      MPFDB_ASSIGN_OR_RETURN(leaf, ctx.builder.Scan(rel));
    }
    // Push every applicable selection not already served by the index.
    bool index_applied = false;
    for (const auto& sel : query.selections) {
      if (sel.var == index_var && !index_applied) {
        index_applied = true;
        continue;
      }
      if (varset::Contains(leaf->output_vars, sel.var)) {
        MPFDB_ASSIGN_OR_RETURN(leaf,
                               ctx.builder.Select(leaf, sel.var, sel.value));
      }
    }
    ctx.leaf_vars.push_back(leaf->output_vars);
    ctx.all_vars = varset::Union(ctx.all_vars, leaf->output_vars);
    ctx.leaves.push_back(std::move(leaf));
  }

  for (const auto& var : query.group_vars) {
    if (!varset::Contains(ctx.all_vars, var)) {
      return Status::InvalidArgument("query variable '" + var +
                                     "' does not appear in view '" +
                                     view.name + "'");
    }
  }
  for (const auto& sel : query.selections) {
    if (!varset::Contains(ctx.all_vars, sel.var)) {
      return Status::InvalidArgument("selection variable '" + sel.var +
                                     "' does not appear in view '" +
                                     view.name + "'");
    }
  }
  return ctx;
}

std::vector<Factor> LeafFactors(const QueryContext& ctx) {
  std::vector<Factor> factors;
  factors.reserve(ctx.leaves.size());
  for (size_t i = 0; i < ctx.leaves.size(); ++i) {
    factors.push_back(Factor{ctx.leaves[i], uint64_t{1} << i});
  }
  return factors;
}

namespace {

// Shared core of both retained-variable rules: needed = X ∪ Var(everything
// outside the covered subplan), intersected with what the subplan emits.
std::vector<std::string> RetainNeeded(
    const QueryContext& ctx, const std::vector<std::string>& out_vars,
    const std::vector<const std::vector<std::string>*>& outside) {
  std::vector<std::string> needed = ctx.query_vars;
  for (const auto* vars : outside) needed = varset::Union(needed, *vars);
  return varset::Intersect(out_vars, needed);
}

}  // namespace

std::vector<std::string> SafeRetainVars(
    const QueryContext& ctx, uint64_t covered,
    const std::vector<std::string>& out_vars) {
  std::vector<const std::vector<std::string>*> outside;
  for (size_t i = 0; i < ctx.leaves.size(); ++i) {
    if (covered & (uint64_t{1} << i)) continue;
    outside.push_back(&ctx.leaf_vars[i]);
  }
  return RetainNeeded(ctx, out_vars, outside);
}

std::vector<std::string> RetainedVars(const QueryContext& ctx,
                                      const std::vector<std::string>& out_vars,
                                      const std::vector<Factor>& others) {
  std::vector<const std::vector<std::string>*> outside;
  outside.reserve(others.size());
  for (const Factor& f : others) outside.push_back(&f.plan->output_vars);
  return RetainNeeded(ctx, out_vars, outside);
}

double CountFillEdges(const std::vector<std::string>& clique_vars,
                      const std::string& var,
                      const std::vector<Factor>& all_factors) {
  std::vector<std::string> neighbors = varset::Difference(clique_vars, {var});
  double fill = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      bool connected = false;
      for (const Factor& f : all_factors) {
        if (varset::Contains(f.plan->output_vars, neighbors[i]) &&
            varset::Contains(f.plan->output_vars, neighbors[j])) {
          connected = true;
          break;
        }
      }
      if (!connected) ++fill;
    }
  }
  return fill;
}

size_t PickMinScore(const std::vector<double>& scores) {
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    // Strict < : the earliest candidate wins exact ties.
    if (scores[i] < scores[best]) best = i;
  }
  return best;
}

namespace {

void EliminationOrderRec(const PlanNode& node, std::vector<std::string>* out) {
  if (node.left) EliminationOrderRec(*node.left, out);
  if (node.right) EliminationOrderRec(*node.right, out);
  for (const auto& child : node.children) EliminationOrderRec(*child, out);
  if (node.kind != PlanNodeKind::kGroupBy &&
      node.kind != PlanNodeKind::kProject) {
    return;
  }
  const std::vector<std::string> dropped =
      varset::Difference(node.left->output_vars, node.output_vars);
  for (const auto& var : dropped) {
    if (!varset::Contains(*out, var)) out->push_back(var);
  }
}

}  // namespace

std::vector<std::string> EliminationOrderFromPlan(const PlanNode& root) {
  std::vector<std::string> order;
  EliminationOrderRec(root, &order);
  return order;
}

StatusOr<PlanPtr> ApplyHaving(const QueryContext& ctx, PlanPtr plan) {
  if (!ctx.having.has_value()) return plan;
  return ctx.builder.MeasureFilter(std::move(plan), *ctx.having);
}

StatusOr<PlanPtr> FinalizePlan(const QueryContext& ctx, PlanPtr plan) {
  if (plan == nullptr) return Status::Internal("null plan to finalize");
  const bool already_grouped =
      (plan->kind == PlanNodeKind::kGroupBy ||
       plan->kind == PlanNodeKind::kProject) &&
      varset::SetEquals(plan->group_vars, ctx.query_vars);
  if (already_grouped) return ApplyHaving(ctx, std::move(plan));
  // A join of functional relations whose output is exactly X is itself a
  // functional relation over X only if no other variables were ever joined
  // away without aggregation — which FinalizePlan cannot see. A root GroupBy
  // over an FR on exactly X is a cheap no-op pass, so add it whenever the
  // top node is not already a grouping on X.
  MPFDB_ASSIGN_OR_RETURN(plan,
                         ctx.builder.GroupBy(std::move(plan), ctx.query_vars));
  return ApplyHaving(ctx, std::move(plan));
}

bool LinearPlanAdmissible(double sigma_x, double sigma_hat_x) {
  double log_term =
      sigma_hat_x <= 2.0 ? sigma_hat_x : sigma_hat_x * std::log2(sigma_hat_x);
  return sigma_x * sigma_x + log_term >= sigma_x * sigma_hat_x;
}

StatusOr<bool> LinearPlanAdmissible(const MpfViewDef& view,
                                    const std::string& var,
                                    const Catalog& catalog) {
  MPFDB_ASSIGN_OR_RETURN(int64_t sigma, catalog.DomainSize(var));
  MPFDB_ASSIGN_OR_RETURN(int64_t sigma_hat,
                         catalog.SmallestRelationWith(var, view.relations));
  return LinearPlanAdmissible(static_cast<double>(sigma),
                              static_cast<double>(sigma_hat));
}

}  // namespace mpfdb::opt
