#ifndef MPFDB_OPT_OPTIMIZER_H_
#define MPFDB_OPT_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace mpfdb::opt {

// Common interface of all MPF query optimizers (Section 5). An optimizer
// takes the view definition, the query, the catalog, and a cost model, and
// produces an annotated logical plan whose root yields a functional relation
// over exactly the query variables X. Logical plans fix the join shape and
// marginalization order only; per-node physical algorithm selection (hash vs
// sort-merge vs nested-loop joins, hash vs sort marginalize, index fusion)
// happens in the shared logical->physical pass every optimizer's output
// flows through (PhysicalPlanner in plan/physical.h, driven by the
// Executor).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  virtual StatusOr<PlanPtr> Optimize(const MpfViewDef& view,
                                     const MpfQuerySpec& query,
                                     const Catalog& catalog,
                                     const CostModel& cost_model) = 0;
};

// Shared per-query state set up identically by every optimizer: validated
// inputs, one leaf plan per base relation (scan plus any pushed-down
// selections), and the variable -> relations index.
struct QueryContext {
  PlanBuilder builder;
  std::vector<std::string> query_vars;
  // HAVING clause to apply at the plan root, if any.
  std::optional<HavingClause> having;
  // Leaf plan for each base relation, in view order.
  std::vector<PlanPtr> leaves;
  // Variables of each leaf (after selections; selections do not drop vars).
  std::vector<std::vector<std::string>> leaf_vars;
  // All variables of the view.
  std::vector<std::string> all_vars;

  // Builds the context or reports why the query is invalid (unknown
  // relation, query variable absent from the view, ...).
  static StatusOr<QueryContext> Make(const MpfViewDef& view,
                                     const MpfQuerySpec& query,
                                     const Catalog& catalog,
                                     const CostModel& cost_model);
};

// The semantic-safety grouping set of Chaudhuri-Shim adapted to MPF queries:
// for a subplan that covers exactly the base relations indexed by
// `covered` (bitmask over ctx.leaves), a GroupBy placed on top of it must
// retain the query variables plus every variable shared with a relation not
// yet covered. Returns the retained variables in output order.
std::vector<std::string> SafeRetainVars(const QueryContext& ctx,
                                        uint64_t covered,
                                        const std::vector<std::string>& out_vars);

// Adds a final GroupBy onto X unless the plan already ends with a
// GroupBy/Project on exactly X, then applies the HAVING filter if the query
// has one.
StatusOr<PlanPtr> FinalizePlan(const QueryContext& ctx, PlanPtr plan);

// Wraps `plan` in the context's HAVING measure filter (no-op without one).
StatusOr<PlanPtr> ApplyHaving(const QueryContext& ctx, PlanPtr plan);

// The plan-linearity admissibility test of Section 5.1 (Equation 1): a
// linear plan is admissible for query variable X when
//   sigma_X^2 + sigma_hat_X * log(sigma_hat_X) >= sigma_X * sigma_hat_X,
// where sigma_X = |domain(X)| and sigma_hat_X is the size of the smallest
// base relation containing X. When it fails, nonlinear plans should be
// considered.
bool LinearPlanAdmissible(double sigma_x, double sigma_hat_x);

// Convenience wrapper reading both statistics from the catalog for query
// variable `var` over the view's relations.
StatusOr<bool> LinearPlanAdmissible(const MpfViewDef& view,
                                    const std::string& var,
                                    const Catalog& catalog);

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_OPTIMIZER_H_
