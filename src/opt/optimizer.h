#ifndef MPFDB_OPT_OPTIMIZER_H_
#define MPFDB_OPT_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace mpfdb::opt {

// Common interface of all MPF query optimizers (Section 5). An optimizer
// takes the view definition, the query, the catalog, and a cost model, and
// produces an annotated logical plan whose root yields a functional relation
// over exactly the query variables X. Logical plans fix the join shape and
// marginalization order only; per-node physical algorithm selection (hash vs
// sort-merge vs nested-loop joins, hash vs sort marginalize, index fusion)
// happens in the shared logical->physical pass every optimizer's output
// flows through (PhysicalPlanner in plan/physical.h, driven by the
// Executor).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::string name() const = 0;

  virtual StatusOr<PlanPtr> Optimize(const MpfViewDef& view,
                                     const MpfQuerySpec& query,
                                     const Catalog& catalog,
                                     const CostModel& cost_model) = 0;

  // The common variable-order IR every optimizer produces alongside its
  // plan: the order in which non-query variables are marginalized away by
  // the most recent Optimize call. VE and FAQ fill it from their search
  // directly; CS/CS+ derive it from the finished plan (the order GroupBy /
  // Project nodes drop variables, bottom-up). Empty before the first call.
  // EXPLAIN renders it, and FAQ scores candidate orders in this same
  // representation.
  const std::vector<std::string>& last_variable_order() const {
    return last_order_;
  }

 protected:
  std::vector<std::string> last_order_;
};

// Shared per-query state set up identically by every optimizer: validated
// inputs, one leaf plan per base relation (scan plus any pushed-down
// selections), and the variable -> relations index.
struct QueryContext {
  PlanBuilder builder;
  std::vector<std::string> query_vars;
  // HAVING clause to apply at the plan root, if any.
  std::optional<HavingClause> having;
  // Leaf plan for each base relation, in view order.
  std::vector<PlanPtr> leaves;
  // Variables of each leaf (after selections; selections do not drop vars).
  std::vector<std::vector<std::string>> leaf_vars;
  // All variables of the view.
  std::vector<std::string> all_vars;

  // Builds the context or reports why the query is invalid (unknown
  // relation, query variable absent from the view, ...).
  static StatusOr<QueryContext> Make(const MpfViewDef& view,
                                     const MpfQuerySpec& query,
                                     const Catalog& catalog,
                                     const CostModel& cost_model);
};

// A unit of join planning: an already-built subplan plus the bitmask of base
// relations (indices into QueryContext::leaves) it covers. Base relations are
// factors with a single bit set; VE's intermediate elimination results and
// FAQ's multiway bags are factors with several.
struct Factor {
  PlanPtr plan;
  uint64_t covered = 0;
};

// One Factor per context leaf, in view order — the starting factor set of
// every optimizer's search.
std::vector<Factor> LeafFactors(const QueryContext& ctx);

// The semantic-safety grouping set of Chaudhuri-Shim adapted to MPF queries:
// for a subplan that covers exactly the base relations indexed by
// `covered` (bitmask over ctx.leaves), a GroupBy placed on top of it must
// retain the query variables plus every variable shared with a relation not
// yet covered. Returns the retained variables in output order.
std::vector<std::string> SafeRetainVars(const QueryContext& ctx,
                                        uint64_t covered,
                                        const std::vector<std::string>& out_vars);

// Factor-set form of the same rule, used inside elimination searches: the
// variables of `out_vars` a GroupBy over a clique's join must retain are the
// query variables plus everything shared with a factor outside the clique.
// Everything else — the eliminated variable and any variable local to the
// clique — is grouped away at once, exactly as Algorithm 2's "grouped by the
// variables not eliminated yet" implies.
std::vector<std::string> RetainedVars(const QueryContext& ctx,
                                      const std::vector<std::string>& out_vars,
                                      const std::vector<Factor>& others);

// Number of fill edges eliminating `var` adds to the variable graph induced
// by the current factor scopes: pairs of var's neighbors (the clique's other
// variables) that do not already co-occur in some factor. Used by VE's
// min-fill heuristic and FAQ's order search.
double CountFillEdges(const std::vector<std::string>& clique_vars,
                      const std::string& var,
                      const std::vector<Factor>& all_factors);

// The single deterministic argmin rule every order search uses: the smallest
// score wins, and exact ties go to the earliest index (candidate lists are
// built in first-seen variable order, which is platform-independent). Keeping
// one tie-break here is what makes plan choice reproducible across
// optimizers and platforms. Returns 0 on an empty input.
size_t PickMinScore(const std::vector<double>& scores);

// Derives the variable-order IR from a finished plan: the order in which
// GroupBy/Project nodes drop variables, collected bottom-up (children before
// parents, left before right). This is how the CS family — which searches
// join orders, not variable orders — reports through the shared interface.
std::vector<std::string> EliminationOrderFromPlan(const PlanNode& root);

// Adds a final GroupBy onto X unless the plan already ends with a
// GroupBy/Project on exactly X, then applies the HAVING filter if the query
// has one.
StatusOr<PlanPtr> FinalizePlan(const QueryContext& ctx, PlanPtr plan);

// Wraps `plan` in the context's HAVING measure filter (no-op without one).
StatusOr<PlanPtr> ApplyHaving(const QueryContext& ctx, PlanPtr plan);

// The plan-linearity admissibility test of Section 5.1 (Equation 1): a
// linear plan is admissible for query variable X when
//   sigma_X^2 + sigma_hat_X * log(sigma_hat_X) >= sigma_X * sigma_hat_X,
// where sigma_X = |domain(X)| and sigma_hat_X is the size of the smallest
// base relation containing X. When it fails, nonlinear plans should be
// considered.
bool LinearPlanAdmissible(double sigma_x, double sigma_hat_x);

// Convenience wrapper reading both statistics from the catalog for query
// variable `var` over the view's relations.
StatusOr<bool> LinearPlanAdmissible(const MpfViewDef& view,
                                    const std::string& var,
                                    const Catalog& catalog);

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_OPTIMIZER_H_
