#include "opt/dissociate.h"

#include <algorithm>
#include <map>
#include <set>

#include "opt/faq.h"
#include "storage/schema.h"

namespace mpfdb::opt {

namespace {

// The view's join hypergraph: one edge per relation, vertices = variables.
StatusOr<std::vector<std::vector<std::string>>> ViewEdges(
    const MpfViewDef& view, const Catalog& catalog) {
  std::vector<std::vector<std::string>> edges;
  edges.reserve(view.relations.size());
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    edges.push_back(table->schema().variables());
  }
  return edges;
}

}  // namespace

BoundSide DissociatedBoundSide(const Semiring& semiring) {
  return semiring.AddMonotoneNondecreasing() ? BoundSide::kUpper
                                             : BoundSide::kLower;
}

StatusOr<std::vector<std::string>> ChooseSplitVars(const MpfViewDef& view,
                                                   const MpfQuerySpec& query,
                                                   const Catalog& catalog) {
  MPFDB_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> edges,
                         ViewEdges(view, catalog));
  std::set<std::string> protected_vars(query.group_vars.begin(),
                                       query.group_vars.end());
  for (const auto& sel : query.selections) protected_vars.insert(sel.var);

  std::vector<std::string> split;
  // Each round: find the cyclic core; split the max-degree unprotected core
  // variable by renaming it apart per edge (mirroring what DissociateView
  // will do), then re-reduce. Terminates: every split strictly decreases the
  // number of shared occurrences of some variable.
  for (;;) {
    std::vector<size_t> core = GyoCyclicCore(edges);
    if (core.empty()) break;
    std::map<std::string, size_t> degree;
    for (size_t e : core) {
      for (const auto& v : edges[e]) {
        if (protected_vars.count(v) == 0) ++degree[v];
      }
    }
    // Highest degree wins; ties to the lexicographically smallest name so
    // the split set is deterministic.
    std::string best;
    size_t best_degree = 1;  // must appear in >= 2 core edges to matter
    for (const auto& [v, d] : degree) {
      if (d > best_degree || (d == best_degree && !best.empty() && v < best)) {
        best = v;
        best_degree = d;
      }
    }
    if (best.empty()) break;  // core held together by protected vars only
    split.push_back(best);
    size_t copy = 0;
    for (auto& edge : edges) {
      for (auto& v : edge) {
        if (v == best) v = best + "__d" + std::to_string(copy++);
      }
    }
  }
  return split;
}

StatusOr<DissociatedQuery> DissociateView(
    const MpfViewDef& view, const MpfQuerySpec& query, const Catalog& catalog,
    const std::vector<std::string>& split_vars, const std::string& suffix) {
  for (const auto& v : split_vars) {
    if (varset::Contains(query.group_vars, v)) {
      return Status::InvalidArgument("cannot dissociate group variable '" + v +
                                     "'");
    }
  }

  DissociatedQuery out;
  out.catalog = catalog;
  out.view = view;
  out.view.name = view.name + suffix;
  out.query = query;

  // The superset (dissociated) and subset (conditioned) comparisons both
  // reason term-by-term over full products, so a single negative measure
  // anywhere in the view voids the bound under plain sum.
  if (view.semiring.AddMonotoneNeedsNonNegative() && !split_vars.empty()) {
    for (const auto& rel : view.relations) {
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
      for (size_t i = 0; i < table->NumRows(); ++i) {
        if (table->measure(i) < 0) {
          return Status::FailedPrecondition(
              "dissociation bounds under " + view.semiring.name() +
              " require non-negative measures; table '" + rel +
              "' has a negative measure");
        }
      }
    }
  }
  std::set<std::string> split_set(split_vars.begin(), split_vars.end());

  // Selections on split variables are pinned per copy below; strip them from
  // the rewritten query first (each copy gets its own).
  std::vector<QuerySelection> split_selections;
  out.query.selections.clear();
  for (const auto& sel : query.selections) {
    if (split_set.count(sel.var)) {
      split_selections.push_back(sel);
    } else {
      out.query.selections.push_back(sel);
    }
  }

  // Per split variable, the running copy index (copies are numbered in view
  // relation order, matching ChooseSplitVars' rename simulation).
  std::map<std::string, size_t> next_copy;

  for (size_t r = 0; r < view.relations.size(); ++r) {
    const std::string& rel = view.relations[r];
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, out.catalog.GetTable(rel));
    const std::vector<std::string>& vars = table->schema().variables();
    bool touched = false;
    std::vector<std::string> renamed = vars;
    for (auto& v : renamed) {
      if (split_set.count(v) == 0) continue;
      touched = true;
      size_t copy = next_copy[v]++;
      std::string copy_name = v + "__d" + std::to_string(copy);
      MPFDB_ASSIGN_OR_RETURN(int64_t domain, out.catalog.DomainSize(v));
      MPFDB_RETURN_IF_ERROR(out.catalog.RegisterVariable(copy_name, domain));
      out.copy_vars.push_back(copy_name);
      // Selections on the original pin every copy to the same value.
      for (const auto& sel : split_selections) {
        if (sel.var == v) {
          out.query.selections.push_back({copy_name, sel.value});
        }
      }
      v = copy_name;
    }
    if (!touched) continue;
    TablePtr clone(table->CloneRenamed(rel + suffix, std::move(renamed)));
    MPFDB_RETURN_IF_ERROR(out.catalog.RegisterTable(clone));
    out.view.relations[r] = clone->name();
  }
  return out;
}

StatusOr<MpfQuerySpec> ConditionQuery(const MpfViewDef& view,
                                      const MpfQuerySpec& query,
                                      const Catalog& catalog,
                                      const std::vector<std::string>& split_vars) {
  const Semiring& sr = view.semiring;
  MpfQuerySpec out = query;
  std::set<std::string> already;
  for (const auto& sel : query.selections) already.insert(sel.var);
  for (const auto& var : split_vars) {
    if (already.count(var)) continue;  // an existing selection already pins it
    MPFDB_ASSIGN_OR_RETURN(int64_t domain, catalog.DomainSize(var));
    // score[v] = Multiply over factors containing `var` of the Add-fold of
    // that factor's measures at var = v. A factor with no row at var = v
    // contributes AddIdentity, the Multiply annihilator — that value is
    // unsupported there.
    std::vector<double> score(static_cast<size_t>(domain),
                              sr.MultiplyIdentity());
    std::vector<bool> supported(static_cast<size_t>(domain), true);
    for (const auto& rel : view.relations) {
      MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
      auto idx = table->schema().IndexOf(var);
      if (!idx) continue;
      std::vector<double> fold(static_cast<size_t>(domain), sr.AddIdentity());
      std::vector<bool> seen(static_cast<size_t>(domain), false);
      for (size_t i = 0; i < table->NumRows(); ++i) {
        RowView row = table->Row(i);
        auto v = static_cast<size_t>(row.var(*idx));
        if (v >= fold.size()) continue;
        fold[v] = seen[v] ? sr.Add(fold[v], row.measure) : row.measure;
        seen[v] = true;
      }
      for (size_t v = 0; v < fold.size(); ++v) {
        if (!seen[v]) {
          supported[v] = false;
        } else {
          score[v] = sr.Multiply(score[v], fold[v]);
        }
      }
    }
    // argbest over supported values: max under superset-monotone semirings
    // (tightest lower bound), min under kMinSum (tightest upper bound).
    // Ties, and the no-supported-value edge case, go to the lowest value.
    const bool want_max = sr.AddMonotoneNondecreasing();
    VarValue best = 0;
    bool have = false;
    double best_score = 0;
    for (size_t v = 0; v < score.size(); ++v) {
      if (!supported[v]) continue;
      if (!have || (want_max ? score[v] > best_score : score[v] < best_score)) {
        best = static_cast<VarValue>(v);
        best_score = score[v];
        have = true;
      }
    }
    out.selections.push_back({var, best});
  }
  return out;
}

}  // namespace mpfdb::opt
