#include "opt/ve.h"

#include <algorithm>
#include <limits>

#include "opt/joinplan.h"
#include "util/rng.h"

namespace mpfdb::opt {
namespace {

// Per-candidate heuristic scores; lower is better. RetainedVars and
// CountFillEdges live in the shared optimizer interface (optimizer.h), used
// here and by the FAQ planner's order search.
struct Scores {
  double degree = 0;
  double width = 0;
  double elim_cost = 0;
  double fill = 0;
};

StatusOr<Scores> ScoreCandidate(const QueryContext& ctx,
                                const std::vector<Factor>& clique,
                                const std::vector<Factor>& others,
                                const std::vector<Factor>& all_factors,
                                const std::string& var, bool need_elim_cost,
                                bool need_fill) {
  std::vector<std::string> clique_vars;
  for (const Factor& f : clique) {
    clique_vars = varset::Union(clique_vars, f.plan->output_vars);
  }
  Scores scores;
  // Width estimates the pre-elimination relation: the clique's domain
  // product. Degree estimates the post-elimination relation: the domain
  // product of what the GroupBy retains (this is what makes degree pick the
  // star schema's common variable — the retained set shrinks to the query
  // variable, see Section 7.3).
  MPFDB_ASSIGN_OR_RETURN(scores.width, ctx.builder.DomainProduct(clique_vars));
  MPFDB_ASSIGN_OR_RETURN(
      scores.degree,
      ctx.builder.DomainProduct(RetainedVars(ctx, clique_vars, others)));
  if (need_elim_cost) {
    MPFDB_ASSIGN_OR_RETURN(PlanPtr overestimate,
                           FixedOrderJoinPlan(ctx, clique));
    scores.elim_cost = overestimate->est_cost;
  }
  if (need_fill) {
    scores.fill = CountFillEdges(clique_vars, var, all_factors);
  }
  return scores;
}

// Normalizes each score dimension by the maximum over candidates, as the
// paper's footnote describes, combines per the heuristic, and delegates the
// argmin to the shared deterministic tie-break rule.
size_t PickCandidate(VeHeuristic heuristic, const std::vector<Scores>& scores) {
  double max_degree = 0, max_width = 0, max_elim = 0;
  for (const Scores& s : scores) {
    max_degree = std::max(max_degree, s.degree);
    max_width = std::max(max_width, s.width);
    max_elim = std::max(max_elim, s.elim_cost);
  }
  auto norm = [](double v, double m) { return m > 0 ? v / m : 0.0; };
  std::vector<double> combined(scores.size(), 0.0);
  for (size_t i = 0; i < scores.size(); ++i) {
    const Scores& s = scores[i];
    switch (heuristic) {
      case VeHeuristic::kDegree:
        combined[i] = s.degree;
        break;
      case VeHeuristic::kWidth:
        combined[i] = s.width;
        break;
      case VeHeuristic::kElimCost:
        combined[i] = s.elim_cost;
        break;
      case VeHeuristic::kDegreeWidth:
        combined[i] = norm(s.degree, max_degree) * norm(s.width, max_width);
        break;
      case VeHeuristic::kDegreeElimCost:
        combined[i] = norm(s.degree, max_degree) * norm(s.elim_cost, max_elim);
        break;
      case VeHeuristic::kMinFill:
        // Tie-break zero-fill candidates by the post-elimination size.
        combined[i] = s.fill + norm(s.degree, max_degree);
        break;
      case VeHeuristic::kRandom:
        break;  // handled by the caller
    }
  }
  return PickMinScore(combined);
}

}  // namespace

std::string VeHeuristicName(VeHeuristic heuristic) {
  switch (heuristic) {
    case VeHeuristic::kDegree:
      return "deg";
    case VeHeuristic::kWidth:
      return "width";
    case VeHeuristic::kElimCost:
      return "elim_cost";
    case VeHeuristic::kDegreeWidth:
      return "deg&width";
    case VeHeuristic::kDegreeElimCost:
      return "deg&elim_cost";
    case VeHeuristic::kRandom:
      return "random";
    case VeHeuristic::kMinFill:
      return "min_fill";
  }
  return "unknown";
}

std::string VeOptimizer::name() const {
  std::string result = "VE(" + VeHeuristicName(options_.heuristic) + ")";
  if (options_.extended) result += " ext.";
  return result;
}

StatusOr<PlanPtr> VeOptimizer::Optimize(const MpfViewDef& view,
                                        const MpfQuerySpec& query,
                                        const Catalog& catalog,
                                        const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan,
                         RunVe(view, query, catalog, cost_model, options_));
  if (options_.extended) {
    // The extension's greedy local decisions can diverge from the plain-VE
    // elimination order. Theorem 3's guarantee — the extended space contains
    // every plain VE plan — is realized by also computing the plain plan
    // under the same heuristic and keeping the cheaper.
    VeOptions plain = options_;
    plain.extended = false;
    std::vector<std::string> extended_order = std::move(last_order_);
    MPFDB_ASSIGN_OR_RETURN(PlanPtr plain_plan,
                           RunVe(view, query, catalog, cost_model, plain));
    if (plain_plan->est_cost < plan->est_cost) {
      return plain_plan;  // last_order_ already holds the plain order
    }
    last_order_ = std::move(extended_order);
  }
  return plan;
}

StatusOr<PlanPtr> VeOptimizer::RunVe(const MpfViewDef& view,
                                     const MpfQuerySpec& query,
                                     const Catalog& catalog,
                                     const CostModel& cost_model,
                                     const VeOptions& options) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  last_order_.clear();
  Rng rng(options.seed);

  // Current factor set S (Algorithm 2 line 1).
  std::vector<Factor> factors = LeafFactors(ctx);

  // V = Var(r) \ X (line 2).
  std::vector<std::string> to_eliminate =
      varset::Difference(ctx.all_vars, ctx.query_vars);

  // Proposition 1: drop from the candidate set every variable not in any
  // declared primary key, provided all base relations declare keys. Such
  // variables never cause row merging, so a root projection handles them.
  bool all_keys_known = true;
  std::vector<std::string> key_union;
  for (const auto& rel : view.relations) {
    MPFDB_ASSIGN_OR_RETURN(TablePtr table, catalog.GetTable(rel));
    if (table->key_vars().empty()) {
      all_keys_known = false;
      break;
    }
    key_union = varset::Union(key_union, table->key_vars());
  }
  std::vector<std::string> projection_only;
  if (options.fd_pruning && all_keys_known) {
    projection_only = varset::Difference(to_eliminate, key_union);
    to_eliminate = varset::Intersect(to_eliminate, key_union);
  }

  // Within a clique, joins are planned left-linear — the extension adds only
  // the CS+ greedy-conservative GroupBy pushdown (Section 5.4), keeping VE's
  // planning-time advantage (Theorem 2). Nonlinear plan shapes still arise
  // across eliminations, as in Figure 5.
  const JoinPlanOptions clique_join_opts{
      /*bushy=*/false,
      /*groupby_pushdown=*/options.extended,
      /*avoid_cross_products=*/true};

  while (!to_eliminate.empty()) {
    // Score every candidate over the current factor set.
    const bool need_elim_cost =
        options.heuristic == VeHeuristic::kElimCost ||
        options.heuristic == VeHeuristic::kDegreeElimCost;
    const bool need_fill = options.heuristic == VeHeuristic::kMinFill;
    std::vector<std::vector<Factor>> cliques(to_eliminate.size());
    std::vector<std::vector<Factor>> others(to_eliminate.size());
    std::vector<Scores> scores(to_eliminate.size());
    for (size_t c = 0; c < to_eliminate.size(); ++c) {
      for (const Factor& f : factors) {
        if (varset::Contains(f.plan->output_vars, to_eliminate[c])) {
          cliques[c].push_back(f);
        } else {
          others[c].push_back(f);
        }
      }
      if (cliques[c].empty()) {
        // The variable vanished from every factor (it was grouped away by an
        // extended-space GroupBy); it is already eliminated.
        continue;
      }
      MPFDB_ASSIGN_OR_RETURN(
          scores[c],
          ScoreCandidate(ctx, cliques[c], others[c], factors, to_eliminate[c],
                         need_elim_cost, need_fill));
    }
    // Drop already-vanished variables.
    for (size_t c = to_eliminate.size(); c-- > 0;) {
      if (cliques[c].empty()) {
        to_eliminate.erase(to_eliminate.begin() + c);
        cliques.erase(cliques.begin() + c);
        others.erase(others.begin() + c);
        scores.erase(scores.begin() + c);
      }
    }
    if (to_eliminate.empty()) break;

    size_t pick;
    if (options.heuristic == VeHeuristic::kRandom) {
      pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(to_eliminate.size()) - 1));
    } else {
      pick = PickCandidate(options.heuristic, scores);
    }
    const std::string var = to_eliminate[pick];
    std::vector<Factor> clique = cliques[pick];
    last_order_.push_back(var);

    // Join the clique (line 6). Plain VE: best join order with no inner
    // GroupBys, then a forced GroupBy eliminating the variable. Extended VE:
    // cost-based GroupBy placement inside the joinplan and no forced
    // elimination (Section 5.4).
    MPFDB_ASSIGN_OR_RETURN(PlanPtr joined,
                           BestJoinPlan(ctx, clique, clique_join_opts));
    uint64_t covered = 0;
    for (const Factor& f : clique) covered |= f.covered;

    PlanPtr replacement;
    if (options.extended) {
      replacement = std::move(joined);
    } else {
      // Group by the variables still needed (query variables and variables
      // shared with factors outside the clique): this eliminates `var` plus
      // any variable local to the clique in one GroupBy, as the paper's
      // Algorithm 2 describes.
      std::vector<std::string> keep =
          RetainedVars(ctx, joined->output_vars, others[pick]);
      MPFDB_ASSIGN_OR_RETURN(replacement,
                             ctx.builder.GroupBy(std::move(joined), keep));
    }

    // Replace the clique's factors by the new one (lines 8-9).
    std::vector<Factor> next;
    for (const Factor& f : factors) {
      bool in_clique = false;
      for (const Factor& cf : clique) {
        if (cf.plan == f.plan) {
          in_clique = true;
          break;
        }
      }
      if (!in_clique) next.push_back(f);
    }
    next.push_back(Factor{std::move(replacement), covered});
    factors = std::move(next);

    to_eliminate.erase(to_eliminate.begin() + pick);
  }

  // Join whatever remains (factors over query variables only, plus — in the
  // extended / fd-pruned cases — variables awaiting the root GroupBy).
  JoinPlanOptions final_opts = clique_join_opts;
  final_opts.charge_root_groupby = true;
  PlanPtr plan;
  if (factors.size() <= 16) {
    MPFDB_ASSIGN_OR_RETURN(plan, BestJoinPlan(ctx, factors, final_opts));
  } else {
    MPFDB_ASSIGN_OR_RETURN(plan, FixedOrderJoinPlan(ctx, factors));
  }

  // Root: if every variable to drop is projection-only (Proposition 1),
  // project; otherwise aggregate.
  std::vector<std::string> extra =
      varset::Difference(plan->output_vars, ctx.query_vars);
  if (!extra.empty() && varset::IsSubset(extra, projection_only)) {
    MPFDB_ASSIGN_OR_RETURN(plan,
                           ctx.builder.Project(std::move(plan), ctx.query_vars));
    return ApplyHaving(ctx, std::move(plan));
  }
  return FinalizePlan(ctx, std::move(plan));
}

}  // namespace mpfdb::opt
