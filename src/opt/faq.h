#ifndef MPFDB_OPT_FAQ_H_
#define MPFDB_OPT_FAQ_H_

#include <cstddef>
#include <string>
#include <vector>

#include "opt/optimizer.h"

namespace mpfdb::opt {

// The FAQ planner (Abo Khamis-Ngo-Rudra's InsideOut applied to MPF views):
// searches variable orders instead of join orders, scoring candidate orders
// by the AGM bound of each elimination bag (the fractional-hypertree-width
// criterion). Where the view's join hypergraph is alpha-acyclic the search
// coincides with the CS+/VE space, so FAQ delegates to the shared binary
// join planner and its plans stay bit-identical to the hash/sort plans every
// other optimizer produces. Where a cyclic core remains after GYO reduction
// — triangles, grids, anything pairwise estimates misprice — FAQ plans a
// kMultiwayJoin node over the core (executed worst-case-optimally by the
// LeapFrog TrieJoin) whose variable order puts the retained variables first
// (presorting the downstream GroupBy) and orders the eliminated core
// variables by greedy minimum bag AGM bound. The multiway candidate is kept
// only when its estimated cost beats the best pure-binary plan, so FAQ never
// regresses a query binary planning already handles well.
class FaqOptimizer : public Optimizer {
 public:
  std::string name() const override { return "FAQ"; }

  StatusOr<PlanPtr> Optimize(const MpfViewDef& view, const MpfQuerySpec& query,
                             const Catalog& catalog,
                             const CostModel& cost_model) override;
};

// GYO ear-removal reduction: repeatedly deletes vertices that occur in a
// single hyperedge and hyperedges contained in another hyperedge. Returns
// the indices (into `edges`) of the hyperedges whose reduced form survives —
// empty exactly when the hypergraph is alpha-acyclic; otherwise the
// surviving edges are the cyclic core the multiway join must cover.
// Deterministic: on equal sets the earliest index survives.
std::vector<size_t> GyoCyclicCore(
    const std::vector<std::vector<std::string>>& edges);

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_FAQ_H_
