#include "opt/cs.h"

#include "opt/joinplan.h"

namespace mpfdb::opt {
namespace {

std::vector<Factor> LeafFactors(const QueryContext& ctx) {
  std::vector<Factor> factors;
  factors.reserve(ctx.leaves.size());
  for (size_t i = 0; i < ctx.leaves.size(); ++i) {
    factors.push_back(Factor{ctx.leaves[i], uint64_t{1} << i});
  }
  return factors;
}

}  // namespace

StatusOr<PlanPtr> CsOptimizer::Optimize(const MpfViewDef& view,
                                        const MpfQuerySpec& query,
                                        const Catalog& catalog,
                                        const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  JoinPlanOptions opts;
  opts.bushy = false;
  opts.groupby_pushdown = false;
  opts.charge_root_groupby = true;
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan, BestJoinPlan(ctx, LeafFactors(ctx), opts));
  return FinalizePlan(ctx, std::move(plan));
}

StatusOr<PlanPtr> CsPlusOptimizer::Optimize(const MpfViewDef& view,
                                            const MpfQuerySpec& query,
                                            const Catalog& catalog,
                                            const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  JoinPlanOptions opts;
  opts.bushy = nonlinear_;
  opts.groupby_pushdown = true;
  opts.charge_root_groupby = true;
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan, BestJoinPlan(ctx, LeafFactors(ctx), opts));
  return FinalizePlan(ctx, std::move(plan));
}

}  // namespace mpfdb::opt
