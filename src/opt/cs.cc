#include "opt/cs.h"

#include "opt/joinplan.h"

namespace mpfdb::opt {

StatusOr<PlanPtr> CsOptimizer::Optimize(const MpfViewDef& view,
                                        const MpfQuerySpec& query,
                                        const Catalog& catalog,
                                        const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  JoinPlanOptions opts;
  opts.bushy = false;
  opts.groupby_pushdown = false;
  opts.charge_root_groupby = true;
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan, BestJoinPlan(ctx, LeafFactors(ctx), opts));
  MPFDB_ASSIGN_OR_RETURN(plan, FinalizePlan(ctx, std::move(plan)));
  last_order_ = EliminationOrderFromPlan(*plan);
  return plan;
}

StatusOr<PlanPtr> CsPlusOptimizer::Optimize(const MpfViewDef& view,
                                            const MpfQuerySpec& query,
                                            const Catalog& catalog,
                                            const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  JoinPlanOptions opts;
  opts.bushy = nonlinear_;
  opts.groupby_pushdown = true;
  opts.charge_root_groupby = true;
  MPFDB_ASSIGN_OR_RETURN(PlanPtr plan, BestJoinPlan(ctx, LeafFactors(ctx), opts));
  MPFDB_ASSIGN_OR_RETURN(plan, FinalizePlan(ctx, std::move(plan)));
  last_order_ = EliminationOrderFromPlan(*plan);
  return plan;
}

}  // namespace mpfdb::opt
