#include "opt/faq.h"

#include <algorithm>
#include <map>
#include <utility>

#include "cost/agm.h"
#include "opt/joinplan.h"

namespace mpfdb::opt {
namespace {

// Greedy minimum-domain order over `vars`; ties go to the earliest index via
// the shared deterministic rule. Used for the retained prefix of the
// multiway variable order, where the first variable also becomes the morsel
// partitioning key.
StatusOr<std::vector<std::string>> OrderByDomain(const QueryContext& ctx,
                                                 std::vector<std::string> vars) {
  std::vector<std::string> out;
  out.reserve(vars.size());
  while (!vars.empty()) {
    std::vector<double> scores(vars.size(), 0.0);
    for (size_t i = 0; i < vars.size(); ++i) {
      MPFDB_ASSIGN_OR_RETURN(scores[i], ctx.builder.DomainProduct({vars[i]}));
    }
    size_t pick = PickMinScore(scores);
    out.push_back(std::move(vars[pick]));
    vars.erase(vars.begin() + pick);
  }
  return out;
}

// Greedy fractional-hypertree-width order for the eliminated core variables:
// at each step the candidate whose bag (the union of its incident
// hyperedges) has the smallest AGM bound is eliminated next, and its
// incident edges are contracted into one bag edge of that bound — the
// standard width-style evaluation of a variable order, with the AGM bound
// standing in for N^{rho*} per bag.
std::vector<std::string> OrderEliminatedByAgm(std::vector<std::string> vars,
                                              std::vector<agm::Edge> edges) {
  std::vector<std::string> out;
  out.reserve(vars.size());
  while (!vars.empty()) {
    std::vector<double> scores(vars.size(), 0.0);
    for (size_t c = 0; c < vars.size(); ++c) {
      std::vector<std::string> bag;
      std::vector<agm::Edge> incident;
      for (const agm::Edge& e : edges) {
        if (!varset::Contains(e.vars, vars[c])) continue;
        incident.push_back(e);
        bag = varset::Union(bag, e.vars);
      }
      scores[c] = incident.empty() ? 1.0 : agm::AgmBound(bag, incident);
    }
    size_t pick = PickMinScore(scores);
    const std::string var = std::move(vars[pick]);
    vars.erase(vars.begin() + pick);

    // Contract: incident edges collapse to one bag edge without `var`.
    std::vector<agm::Edge> next;
    std::vector<std::string> bag;
    for (agm::Edge& e : edges) {
      if (varset::Contains(e.vars, var)) {
        bag = varset::Union(bag, e.vars);
      } else {
        next.push_back(std::move(e));
      }
    }
    bag = varset::Difference(bag, {var});
    if (!bag.empty()) {
      next.push_back(agm::Edge{std::move(bag), std::max(1.0, scores[pick])});
    }
    edges = std::move(next);
    out.push_back(var);
  }
  return out;
}

// Binary planning shared by the acyclic path and the periphery around the
// multiway core: the CS+ nonlinear search space (bushy trees with greedy
// GroupBy pushdown) when the factor count admits the DP, the fixed-order
// chain otherwise, finalized onto the query variables.
StatusOr<PlanPtr> BinaryPlan(const QueryContext& ctx,
                             std::vector<Factor> factors) {
  JoinPlanOptions opts;
  opts.bushy = true;
  opts.groupby_pushdown = true;
  opts.charge_root_groupby = true;
  PlanPtr plan;
  if (factors.size() <= 16) {
    MPFDB_ASSIGN_OR_RETURN(plan, BestJoinPlan(ctx, factors, opts));
  } else {
    MPFDB_ASSIGN_OR_RETURN(plan, FixedOrderJoinPlan(ctx, std::move(factors)));
  }
  return FinalizePlan(ctx, std::move(plan));
}

}  // namespace

std::vector<size_t> GyoCyclicCore(
    const std::vector<std::vector<std::string>>& edges) {
  std::vector<std::vector<std::string>> e = edges;
  std::vector<bool> alive(e.size(), true);
  bool changed = true;
  while (changed) {
    changed = false;
    // Vertex rule: a variable occurring in exactly one surviving edge is an
    // ear tip — delete it.
    std::map<std::string, int> occurrences;
    for (size_t i = 0; i < e.size(); ++i) {
      if (!alive[i]) continue;
      for (const std::string& v : e[i]) ++occurrences[v];
    }
    for (size_t i = 0; i < e.size(); ++i) {
      if (!alive[i]) continue;
      std::vector<std::string> kept;
      for (const std::string& v : e[i]) {
        if (occurrences[v] >= 2) kept.push_back(v);
      }
      if (kept.size() != e[i].size()) {
        e[i] = std::move(kept);
        changed = true;
      }
    }
    // Edge rule: an edge that became empty, or is contained in another
    // surviving edge, is removed. Equal sets keep the earliest index.
    for (size_t i = 0; i < e.size(); ++i) {
      if (!alive[i]) continue;
      if (e[i].empty()) {
        alive[i] = false;
        changed = true;
        continue;
      }
      for (size_t j = 0; j < e.size(); ++j) {
        if (j == i || !alive[j]) continue;
        if (varset::IsSubset(e[i], e[j]) &&
            (!varset::SetEquals(e[i], e[j]) || j < i)) {
          alive[i] = false;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<size_t> core;
  for (size_t i = 0; i < e.size(); ++i) {
    if (alive[i]) core.push_back(i);
  }
  return core;
}

StatusOr<PlanPtr> FaqOptimizer::Optimize(const MpfViewDef& view,
                                         const MpfQuerySpec& query,
                                         const Catalog& catalog,
                                         const CostModel& cost_model) {
  MPFDB_ASSIGN_OR_RETURN(QueryContext ctx,
                         QueryContext::Make(view, query, catalog, cost_model));
  last_order_.clear();
  std::vector<Factor> factors = LeafFactors(ctx);

  // Pure-binary baseline over the full factor set. On an acyclic hypergraph
  // this IS the FAQ plan (every GYO ear order is realizable as a join tree),
  // which keeps acyclic FAQ results bit-identical to the other optimizers'
  // hash/sort plans.
  MPFDB_ASSIGN_OR_RETURN(PlanPtr binary, BinaryPlan(ctx, factors));

  std::vector<std::vector<std::string>> scopes;
  scopes.reserve(factors.size());
  for (const Factor& f : factors) scopes.push_back(f.plan->output_vars);
  std::vector<size_t> core = GyoCyclicCore(scopes);
  // A cyclic core has at least three edges; anything smaller means the GYO
  // reduction finished (alpha-acyclic view).
  if (core.size() < 3) {
    last_order_ = EliminationOrderFromPlan(*binary);
    return binary;
  }

  // Multiway candidate: one worst-case-optimal join node covering the whole
  // cyclic core, binary planning for the periphery hanging off it.
  std::vector<bool> in_core(factors.size(), false);
  for (size_t idx : core) in_core[idx] = true;
  std::vector<PlanPtr> children;
  std::vector<Factor> periphery;
  std::vector<agm::Edge> core_edges;
  std::vector<std::string> core_vars;
  uint64_t covered = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    if (!in_core[i]) {
      periphery.push_back(factors[i]);
      continue;
    }
    children.push_back(factors[i].plan);
    covered |= factors[i].covered;
    core_vars = varset::Union(core_vars, factors[i].plan->output_vars);
    core_edges.push_back(agm::Edge{factors[i].plan->output_vars,
                                   std::max(1.0, factors[i].plan->est_card)});
  }

  // Variable order: retained variables first — the LeapFrog emission order
  // then presorts the eliminating GroupBy — followed by the eliminated core
  // variables in greedy min-bag-AGM order.
  std::vector<std::string> retained = SafeRetainVars(ctx, covered, core_vars);
  std::vector<std::string> eliminated = varset::Difference(core_vars, retained);
  MPFDB_ASSIGN_OR_RETURN(retained, OrderByDomain(ctx, std::move(retained)));
  eliminated = OrderEliminatedByAgm(std::move(eliminated), core_edges);
  std::vector<std::string> var_order = retained;
  var_order.insert(var_order.end(), eliminated.begin(), eliminated.end());

  MPFDB_ASSIGN_OR_RETURN(
      PlanPtr merged, ctx.builder.MultiwayJoin(std::move(children), var_order));
  if (!eliminated.empty()) {
    MPFDB_ASSIGN_OR_RETURN(merged,
                           ctx.builder.GroupBy(std::move(merged), retained));
  }
  periphery.push_back(Factor{std::move(merged), covered});
  MPFDB_ASSIGN_OR_RETURN(PlanPtr faq, BinaryPlan(ctx, std::move(periphery)));

  if (faq->est_cost < binary->est_cost) {
    last_order_ = EliminationOrderFromPlan(*faq);
    return faq;
  }
  last_order_ = EliminationOrderFromPlan(*binary);
  return binary;
}

}  // namespace mpfdb::opt
