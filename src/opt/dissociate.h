#ifndef MPFDB_OPT_DISSOCIATE_H_
#define MPFDB_OPT_DISSOCIATE_H_

#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace mpfdb::opt {

// Dissociation-based bounds (Gatterbauer & Suciu): splitting a variable x
// that couples k factors into per-factor copies x__d0..x__d{k-1} — each
// marginalized independently — makes the view's hypergraph strictly less
// cyclic while aggregating a *superset* of the exact query's assignments
// (the exact answer is the diagonal x__d0 = ... = x__d{k-1}). Under a
// semiring whose Add is superset-monotone (Semiring::AddMonotoneNondecreasing)
// the dissociated query therefore bounds the exact answer from above; under
// kMinSum, from below. The opposite bound comes from *conditioning*: pinning
// each split variable to one value via ordinary query selections aggregates
// a subset of the assignments. Both relaxations are plain MPF queries the
// existing optimizer/executor stack runs unchanged — the whole pass is a
// query rewrite plus a scratch catalog of renamed-column table clones that
// share all row data with the originals.

// Which side of the exact answer a rewritten query bounds.
enum class BoundSide { kLower, kUpper };

// The side a dissociated (superset) query bounds under `semiring`; the
// conditioned (subset) query bounds the other side.
BoundSide DissociatedBoundSide(const Semiring& semiring);

// Picks the variables to split: GYO-reduce the view's hypergraph and, while
// a cyclic core remains, split the variable with the highest degree (number
// of core hyperedges containing it). Query group variables and variables
// pinned by a selection are never split — a group variable must survive to
// the output, and a selection already decouples its variable. Returns the
// split set in split order (deterministic; empty for acyclic views, where
// the exact query is the bound).
StatusOr<std::vector<std::string>> ChooseSplitVars(const MpfViewDef& view,
                                                   const MpfQuerySpec& query,
                                                   const Catalog& catalog);

// A dissociated view: a scratch catalog (sharing every unsplit table with
// `catalog`) plus the rewritten view/query to run against it.
struct DissociatedQuery {
  Catalog catalog;
  MpfViewDef view;
  MpfQuerySpec query;
  // Copy variables introduced, e.g. {"x__d0", "x__d1"} for a split of x
  // across two factors. Registered in `catalog` with x's domain size.
  std::vector<std::string> copy_vars;
};

// Rewrites `view` by splitting each variable of `split_vars` into per-factor
// copies. Tables containing a split variable are cloned with renamed columns
// (row data shared); the clone of table T is registered as T + `suffix`.
// Selections on split variables are duplicated onto every copy; group
// variables must not be split (kInvalidArgument). Fails with
// kFailedPrecondition when the semiring's bound orientation requires
// non-negative measures (sum_product) and a factor violates it.
StatusOr<DissociatedQuery> DissociateView(const MpfViewDef& view,
                                          const MpfQuerySpec& query,
                                          const Catalog& catalog,
                                          const std::vector<std::string>& split_vars,
                                          const std::string& suffix = "__dissoc");

// The conditioned companion query: `query` plus one selection per split
// variable pinning it to a heuristically chosen value — the value whose
// per-factor Add-folds, Multiply-combined across the factors containing the
// variable, score best (argmax under superset-monotone semirings for a tight
// lower bound; argmin under kMinSum for a tight upper bound; ties to the
// lowest value). Runs against the *original* catalog and view.
StatusOr<MpfQuerySpec> ConditionQuery(const MpfViewDef& view,
                                      const MpfQuerySpec& query,
                                      const Catalog& catalog,
                                      const std::vector<std::string>& split_vars);

}  // namespace mpfdb::opt

#endif  // MPFDB_OPT_DISSOCIATE_H_
