#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mpfdb {

namespace {
double Log2Safe(double x) { return x <= 2.0 ? 1.0 : std::log2(x); }
}  // namespace

double SimpleCostModel::ScanCost(double card) const { return card; }

double SimpleCostModel::JoinCost(double left_card, double right_card) const {
  return left_card * right_card;
}

double SimpleCostModel::GroupByCost(double input_card) const {
  return input_card * Log2Safe(input_card);
}

double SimpleCostModel::SelectCost(double input_card) const {
  return input_card;
}

double SimpleCostModel::IndexScanCost(double output_card) const {
  return 1.0 + output_card;
}

double PageCostModel::Pages(double card) const {
  return std::max(1.0, std::ceil(card / rows_per_page_));
}

double PageCostModel::ScanCost(double card) const { return Pages(card); }

double PageCostModel::JoinCost(double left_card, double right_card) const {
  // Hash join: read both inputs; the build side (smaller) is written and
  // re-read once when it spills, charged unconditionally to keep the model
  // monotone in operand size.
  double pl = Pages(left_card);
  double pr = Pages(right_card);
  return pl + pr + 2.0 * std::min(pl, pr);
}

double PageCostModel::GroupByCost(double input_card) const {
  double p = Pages(input_card);
  return p * Log2Safe(p) + p;
}

double PageCostModel::SelectCost(double input_card) const {
  return Pages(input_card);
}

double PageCostModel::IndexScanCost(double output_card) const {
  // One lookup page plus the matching rows' pages.
  return 1.0 + Pages(output_card);
}

}  // namespace mpfdb
