#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mpfdb {

namespace {
double Log2Safe(double x) { return x <= 2.0 ? 1.0 : std::log2(x); }
}  // namespace

double CostModel::SortMergeJoinCost(double left_card, double right_card,
                                    bool left_sorted,
                                    bool right_sorted) const {
  double cost = left_card + right_card;
  if (!left_sorted) cost += left_card * Log2Safe(left_card);
  if (!right_sorted) cost += right_card * Log2Safe(right_card);
  return cost;
}

double CostModel::NestedLoopJoinCost(double left_card,
                                     double right_card) const {
  return left_card * right_card;
}

double CostModel::SortGroupByCost(double input_card, bool input_sorted) const {
  if (input_sorted) return input_card;
  return input_card * Log2Safe(input_card) + input_card;
}

double CostModel::MultiwayJoinCost(const std::vector<double>& input_cards,
                                   double output_card) const {
  // Stage + sort every input, then the leapfrog walk touches each emitted
  // row with one log-sized gallop per input.
  double cost = 0.0;
  for (double card : input_cards) {
    cost += card + card * Log2Safe(card);
  }
  double seek = 0.0;
  for (double card : input_cards) seek += Log2Safe(card);
  return cost + output_card * std::max(1.0, seek);
}

double SimpleCostModel::ScanCost(double card) const { return card; }

double SimpleCostModel::JoinCost(double left_card, double right_card) const {
  return left_card * right_card;
}

double SimpleCostModel::GroupByCost(double input_card) const {
  return input_card * Log2Safe(input_card);
}

double SimpleCostModel::SelectCost(double input_card) const {
  return input_card;
}

double SimpleCostModel::IndexScanCost(double output_card) const {
  return 1.0 + output_card;
}

double PageCostModel::Pages(double card) const {
  return std::max(1.0, std::ceil(card / rows_per_page_));
}

double PageCostModel::ScanCost(double card) const { return Pages(card); }

double PageCostModel::JoinCost(double left_card, double right_card) const {
  // Hash join: read both inputs; the build side (smaller) is written and
  // re-read once when it spills, charged unconditionally to keep the model
  // monotone in operand size.
  double pl = Pages(left_card);
  double pr = Pages(right_card);
  return pl + pr + 2.0 * std::min(pl, pr);
}

double PageCostModel::GroupByCost(double input_card) const {
  double p = Pages(input_card);
  return p * Log2Safe(p) + p;
}

double PageCostModel::SelectCost(double input_card) const {
  return Pages(input_card);
}

double PageCostModel::IndexScanCost(double output_card) const {
  // One lookup page plus the matching rows' pages.
  return 1.0 + Pages(output_card);
}

double PageCostModel::PerfectIndexScanCost(double output_card) const {
  // The MPH probe touches exactly one slot — half the generic lookup page,
  // which keeps the perfect-hash access path strictly cheaper than the
  // generic one at equal output cardinality.
  return 0.5 + Pages(output_card);
}

double PageCostModel::GracePenalty(double pages) const {
  // Overflow partitions are written once and read back once.
  if (pages <= memory_pages_) return 0.0;
  return 2.0 * (pages - memory_pages_);
}

double PageCostModel::HashJoinCost(double left_card, double right_card) const {
  // Read both inputs; build the smaller side in memory. Overflow beyond the
  // memory budget pays a Grace partition round-trip.
  double pl = Pages(left_card);
  double pr = Pages(right_card);
  double build = std::min(pl, pr);
  return pl + pr + GracePenalty(build);
}

double PageCostModel::SortMergeJoinCost(double left_card, double right_card,
                                        bool left_sorted,
                                        bool right_sorted) const {
  // Each unsorted side pays an in-memory sort (p log p) plus an external
  // merge round-trip when it exceeds memory; a presorted side streams.
  double pl = Pages(left_card);
  double pr = Pages(right_card);
  double cost = pl + pr;
  if (!left_sorted) cost += pl * Log2Safe(pl) + GracePenalty(pl);
  if (!right_sorted) cost += pr * Log2Safe(pr) + GracePenalty(pr);
  return cost;
}

double PageCostModel::NestedLoopJoinCost(double left_card,
                                         double right_card) const {
  // Outer read plus one inner pass per outer page.
  double pl = Pages(left_card);
  double pr = Pages(right_card);
  return pl + pl * pr;
}

double PageCostModel::HashGroupByCost(double input_card,
                                      double output_card) const {
  // Hashing every input row costs roughly two page-units of CPU per input
  // page (hash + probe/fold, measured in the operator ablation bench as
  // ~2x a streaming fold pass) plus emitting the sorted groups. The CPU
  // factor is what lets a presorted streaming sort-marginalize win.
  double pin = Pages(input_card);
  double pout = Pages(output_card);
  return 2.0 * pin + pout + GracePenalty(pout);
}

double PageCostModel::SortGroupByCost(double input_card,
                                      bool input_sorted) const {
  double pin = Pages(input_card);
  if (input_sorted) return pin;  // single streaming fold pass
  return pin * Log2Safe(pin) + pin + GracePenalty(pin);
}

double PageCostModel::MultiwayJoinCost(const std::vector<double>& input_cards,
                                       double output_card) const {
  // Every input is staged into a sorted trie arena (read + in-memory sort,
  // with the same Grace penalty an oversized sort side pays), then the
  // leapfrog intersection emits the output with a per-row gallop whose CPU
  // cost is charged like the hash group-by's per-page factor.
  double cost = 0.0;
  double total_in = 0.0;
  for (double card : input_cards) {
    double p = Pages(card);
    cost += p + p * Log2Safe(p) + GracePenalty(p);
    total_in += p;
  }
  double pout = Pages(output_card);
  return cost + 2.0 * pout + GracePenalty(std::min(total_in, pout));
}

}  // namespace mpfdb
