#include "cost/agm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mpfdb::agm {
namespace {

constexpr double kEps = 1e-9;

// Maximizes 1^T y subject to A y <= b, y >= 0 (a packing LP; every b_i >= 0
// so the slack basis is feasible) with a dense tableau simplex. Bland's rule
// for both the entering and leaving choice makes the pivot sequence — and
// thus the floating-point result — deterministic and cycle-free.
double SolvePackingLp(size_t num_vars, const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b) {
  const size_t m = b.size();
  const size_t n = num_vars;
  const size_t cols = n + m + 1;  // decision vars, slacks, rhs
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = b[i];
  }
  // Objective row holds the reduced costs; positive means improving.
  for (size_t j = 0; j < n; ++j) t[m][j] = 1.0;

  std::vector<size_t> basis(m);
  for (size_t i = 0; i < m; ++i) basis[i] = n + i;

  // Far more pivots than any bag-sized LP needs; Bland's rule precludes
  // cycling, so this is purely a hard stop against numerical pathology.
  const size_t max_iters = 64 * (m + n + 4);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    // Entering variable: smallest-index improving column (Bland).
    size_t enter = cols - 1;
    for (size_t j = 0; j + 1 < cols; ++j) {
      if (t[m][j] > kEps) {
        enter = j;
        break;
      }
    }
    if (enter == cols - 1) break;  // optimal

    // Leaving row: minimum ratio, ties by smallest basic-variable index.
    size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (t[i][enter] <= kEps) continue;
      double ratio = t[i][cols - 1] / t[i][enter];
      if (ratio < best_ratio - kEps ||
          (ratio < best_ratio + kEps &&
           (leave == m || basis[i] < basis[leave]))) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == m) break;  // unbounded column; callers exclude these

    // Pivot on (leave, enter).
    double pivot = t[leave][enter];
    for (size_t j = 0; j < cols; ++j) t[leave][j] /= pivot;
    for (size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      double factor = t[i][enter];
      if (factor == 0.0) continue;
      for (size_t j = 0; j < cols; ++j) t[i][j] -= factor * t[leave][j];
    }
    basis[leave] = enter;
  }

  // The objective row's rhs accumulates -z for a maximization tableau.
  return -t[m][cols - 1];
}

double CoverLpValue(const std::vector<std::string>& vars,
                    const std::vector<Edge>& edges,
                    const std::vector<double>& weights) {
  // Keep only variables some edge covers; an uncovered variable would make
  // the dual unbounded (and the primal infeasible), which callers preclude.
  std::vector<std::string> covered;
  for (const auto& v : vars) {
    bool found = false;
    for (const Edge& e : edges) {
      if (std::find(e.vars.begin(), e.vars.end(), v) != e.vars.end()) {
        found = true;
        break;
      }
    }
    if (found) covered.push_back(v);
  }
  if (covered.empty()) return 0.0;

  std::vector<std::vector<double>> a(edges.size(),
                                     std::vector<double>(covered.size(), 0.0));
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = 0; j < covered.size(); ++j) {
      if (std::find(edges[i].vars.begin(), edges[i].vars.end(), covered[j]) !=
          edges[i].vars.end()) {
        a[i][j] = 1.0;
      }
    }
  }
  return SolvePackingLp(covered.size(), a, weights);
}

}  // namespace

double AgmBound(const std::vector<std::string>& vars,
                const std::vector<Edge>& edges) {
  if (vars.empty()) return 1.0;
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (const Edge& e : edges) weights.push_back(std::log(std::max(1.0, e.card)));
  // LP duality: the packing optimum equals the fractional-cover optimum
  // min Σ x_R ln|R|, whose exponential is the AGM bound.
  return std::exp(CoverLpValue(vars, edges, weights));
}

double FractionalEdgeCoverNumber(const std::vector<std::string>& vars,
                                 const std::vector<Edge>& edges) {
  if (vars.empty()) return 0.0;
  std::vector<double> weights(edges.size(), 1.0);
  return CoverLpValue(vars, edges, weights);
}

}  // namespace mpfdb::agm
