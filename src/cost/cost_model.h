#ifndef MPFDB_COST_COST_MODEL_H_
#define MPFDB_COST_COST_MODEL_H_

#include <memory>
#include <string>
#include <vector>

namespace mpfdb {

// Abstract cost model consumed by every optimizer. Costs are in abstract
// units; only relative comparisons matter, exactly as in the paper's
// experiments, where plan cost (not wall time) is reported for Tables 2-3.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  // Cost of scanning a base relation of `card` rows.
  virtual double ScanCost(double card) const = 0;
  // Cost of joining operands of `left_card` and `right_card` rows.
  virtual double JoinCost(double left_card, double right_card) const = 0;
  // Cost of grouping/aggregating an input of `input_card` rows.
  virtual double GroupByCost(double input_card) const = 0;
  // Cost of an equality selection over `input_card` rows.
  virtual double SelectCost(double input_card) const = 0;
  // Cost of an index lookup producing `output_card` rows (vs scanning and
  // filtering the whole relation).
  virtual double IndexScanCost(double output_card) const = 0;
  // Cost of the same lookup through a minimal-perfect-hash-backed index:
  // exactly one slot touch, no bucket chain or displacement scan. Defaults
  // to the generic index cost for models that don't distinguish.
  virtual double PerfectIndexScanCost(double output_card) const {
    return IndexScanCost(output_card);
  }

  // --- Per-algorithm costs for the physical planner ------------------------
  //
  // The logical optimizers only consume JoinCost/GroupByCost (algorithm
  // agnostic, as in the paper). The physical pass additionally asks for the
  // cost of each concrete algorithm so it can pick per node. Defaults keep
  // derived models working: hash costs fall back to the generic methods,
  // sort-based costs add an n log n term unless the input is presorted, and
  // nested loop is quadratic.
  virtual double HashJoinCost(double left_card, double right_card) const {
    return JoinCost(left_card, right_card);
  }
  // `left_sorted` / `right_sorted` report whether that input already arrives
  // sorted by the shared variables (interesting-order reuse): a presorted
  // side skips its sort entirely.
  virtual double SortMergeJoinCost(double left_card, double right_card,
                                   bool left_sorted, bool right_sorted) const;
  virtual double NestedLoopJoinCost(double left_card, double right_card) const;
  virtual double HashGroupByCost(double input_card, double output_card) const {
    (void)output_card;
    return GroupByCost(input_card);
  }
  // `input_sorted`: the input already arrives sorted by the group variables,
  // so sort-marginalize degenerates to a single streaming fold pass.
  virtual double SortGroupByCost(double input_card, bool input_sorted) const;
  // Cost of a worst-case-optimal multiway join (LeapFrog TrieJoin) over
  // `input_cards` staged inputs producing `output_card` rows: every input is
  // materialized and sorted into a trie arena, then the leapfrog intersection
  // walks at most the output plus logarithmic seek overhead per input. The
  // default charges the sorts like sort-merge sides plus a linear output
  // pass, which prices LFTJ above a binary hash join whenever the pairwise
  // intermediates are no bigger than the output — so the planner only picks
  // it where pairwise plans genuinely blow up.
  virtual double MultiwayJoinCost(const std::vector<double>& input_cards,
                                  double output_card) const;
};

// The paper's analytical model (Section 5.1): joining R and S costs |R||S|
// and computing an aggregate on R costs |R| log |R|. Scans and selections
// are charged linearly so plans with useless nodes are never free.
//
// Per-tuple CPU constants are implicitly calibrated against the row-at-a-time
// engine. The vectorized engine (ExecOptions::vectorized) lowers the join and
// aggregation constants by several x — see bench/ablate_exec_operators'
// mode ablation — but uniformly enough that relative plan comparisons, which
// are all the optimizers consume, are unaffected.
class SimpleCostModel : public CostModel {
 public:
  std::string name() const override { return "simple"; }
  double ScanCost(double card) const override;
  double JoinCost(double left_card, double right_card) const override;
  double GroupByCost(double input_card) const override;
  double SelectCost(double input_card) const override;
  double IndexScanCost(double output_card) const override;
};

// Page-IO cost model in the Selinger tradition: operands are charged in
// pages of `rows_per_page` rows. Hash join reads both inputs and writes the
// build side once; aggregation is a sort in pages. Used by the ablation
// benches to show plan choices are stable across cost models, and by the
// physical planner (which also passes the query memory budget expressed in
// pages, so hash operators whose build footprint exceeds memory are charged
// a Grace-style partition-spill pass).
class PageCostModel : public CostModel {
 public:
  // `memory_pages` is the working memory the physical planner may assume;
  // the default is effectively unbounded (no spill penalties).
  explicit PageCostModel(double rows_per_page = 100.0,
                         double memory_pages = 1e18)
      : rows_per_page_(rows_per_page), memory_pages_(memory_pages) {}

  std::string name() const override { return "page"; }
  double ScanCost(double card) const override;
  double JoinCost(double left_card, double right_card) const override;
  double GroupByCost(double input_card) const override;
  double SelectCost(double input_card) const override;
  double IndexScanCost(double output_card) const override;
  double PerfectIndexScanCost(double output_card) const override;

  double HashJoinCost(double left_card, double right_card) const override;
  double SortMergeJoinCost(double left_card, double right_card,
                           bool left_sorted, bool right_sorted) const override;
  double NestedLoopJoinCost(double left_card,
                            double right_card) const override;
  double HashGroupByCost(double input_card,
                         double output_card) const override;
  double SortGroupByCost(double input_card, bool input_sorted) const override;
  double MultiwayJoinCost(const std::vector<double>& input_cards,
                          double output_card) const override;

 private:
  double Pages(double card) const;
  // Extra IO charged when a hash table of `pages` pages exceeds memory:
  // one write + one read of the overflow partitions (Grace hash).
  double GracePenalty(double pages) const;

  double rows_per_page_;
  double memory_pages_;
};

}  // namespace mpfdb

#endif  // MPFDB_COST_COST_MODEL_H_
