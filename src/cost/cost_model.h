#ifndef MPFDB_COST_COST_MODEL_H_
#define MPFDB_COST_COST_MODEL_H_

#include <memory>
#include <string>

namespace mpfdb {

// Abstract cost model consumed by every optimizer. Costs are in abstract
// units; only relative comparisons matter, exactly as in the paper's
// experiments, where plan cost (not wall time) is reported for Tables 2-3.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string name() const = 0;

  // Cost of scanning a base relation of `card` rows.
  virtual double ScanCost(double card) const = 0;
  // Cost of joining operands of `left_card` and `right_card` rows.
  virtual double JoinCost(double left_card, double right_card) const = 0;
  // Cost of grouping/aggregating an input of `input_card` rows.
  virtual double GroupByCost(double input_card) const = 0;
  // Cost of an equality selection over `input_card` rows.
  virtual double SelectCost(double input_card) const = 0;
  // Cost of an index lookup producing `output_card` rows (vs scanning and
  // filtering the whole relation).
  virtual double IndexScanCost(double output_card) const = 0;
};

// The paper's analytical model (Section 5.1): joining R and S costs |R||S|
// and computing an aggregate on R costs |R| log |R|. Scans and selections
// are charged linearly so plans with useless nodes are never free.
//
// Per-tuple CPU constants are implicitly calibrated against the row-at-a-time
// engine. The vectorized engine (ExecOptions::vectorized) lowers the join and
// aggregation constants by several x — see bench/ablate_exec_operators'
// mode ablation — but uniformly enough that relative plan comparisons, which
// are all the optimizers consume, are unaffected.
class SimpleCostModel : public CostModel {
 public:
  std::string name() const override { return "simple"; }
  double ScanCost(double card) const override;
  double JoinCost(double left_card, double right_card) const override;
  double GroupByCost(double input_card) const override;
  double SelectCost(double input_card) const override;
  double IndexScanCost(double output_card) const override;
};

// Page-IO cost model in the Selinger tradition: operands are charged in
// pages of `rows_per_page` rows. Hash join reads both inputs and writes the
// build side once; aggregation is a sort in pages. Used by the ablation
// benches to show plan choices are stable across cost models.
class PageCostModel : public CostModel {
 public:
  explicit PageCostModel(double rows_per_page = 100.0)
      : rows_per_page_(rows_per_page) {}

  std::string name() const override { return "page"; }
  double ScanCost(double card) const override;
  double JoinCost(double left_card, double right_card) const override;
  double GroupByCost(double input_card) const override;
  double SelectCost(double input_card) const override;
  double IndexScanCost(double output_card) const override;

 private:
  double Pages(double card) const;

  double rows_per_page_;
};

}  // namespace mpfdb

#endif  // MPFDB_COST_COST_MODEL_H_
