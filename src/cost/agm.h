#ifndef MPFDB_COST_AGM_H_
#define MPFDB_COST_AGM_H_

#include <string>
#include <vector>

namespace mpfdb::agm {

// One hyperedge of a join hypergraph: the variables a relation (or
// intermediate factor) covers plus its cardinality.
struct Edge {
  std::vector<std::string> vars;
  double card = 0;
};

// The AGM bound (Atserias-Grohe-Marx): the worst-case output size of the
// natural join of `edges` restricted to `vars` is
//   min over fractional edge covers x of  Π |R|^{x_R},
// equivalently exp of the optimum of the covering LP. We solve the LP dual —
//   max Σ_v y_v  s.t.  Σ_{v ∈ R} y_v ≤ ln|R| for every edge R,  y ≥ 0
// — with a small dense simplex using Bland's rule, so the result is
// deterministic across platforms. Variables of `vars` not covered by any
// edge make the bound infinite conceptually; here they are ignored (the
// caller guarantees every variable is covered). Empty `vars` yields 1.
// Edges with card < 1 are treated as card 1.
double AgmBound(const std::vector<std::string>& vars,
                const std::vector<Edge>& edges);

// The fractional edge cover number rho* of `vars` under `edges`: the optimal
// LP value with every edge weight ln|R| replaced by 1. This is the exponent
// that makes AgmBound = N^rho* for equal-size relations, and the quantity
// fractional-hypertree-width scoring minimizes per bag.
double FractionalEdgeCoverNumber(const std::vector<std::string>& vars,
                                 const std::vector<Edge>& edges);

}  // namespace mpfdb::agm

#endif  // MPFDB_COST_AGM_H_
