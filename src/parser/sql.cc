#include "parser/sql.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "parser/tokenizer.h"
#include "util/strings.h"

namespace mpfdb::parser {
namespace {

StatusOr<SqlResult> CreateVariable(TokenCursor& cursor, Database& db) {
  MPFDB_ASSIGN_OR_RETURN(std::string name, cursor.ExpectIdentifier());
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("domain"));
  MPFDB_ASSIGN_OR_RETURN(int64_t domain, cursor.ExpectInteger());
  MPFDB_RETURN_IF_ERROR(db.catalog().RegisterVariable(name, domain));
  return SqlResult{"registered variable " + name + " with domain " +
                       std::to_string(domain),
                   nullptr};
}

StatusOr<SqlResult> SelectQueryForSubquery(TokenCursor& cursor, Database& db);

StatusOr<SqlResult> CreateTable(TokenCursor& cursor, Database& db) {
  MPFDB_ASSIGN_OR_RETURN(std::string name, cursor.ExpectIdentifier());
  // CREATE TABLE <name> AS SELECT ... — the result of an MPF query is
  // itself a functional relation (Section 2), so it can be materialized and
  // used in further MPF views; the query variables form its key.
  if (cursor.TryKeyword("as")) {
    MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("select"));
    MPFDB_ASSIGN_OR_RETURN(SqlResult inner, SelectQueryForSubquery(cursor, db));
    if (inner.table == nullptr) {
      return Status::Internal("subquery produced no table");
    }
    TablePtr materialized(inner.table->Clone(name));
    MPFDB_RETURN_IF_ERROR(
        materialized->SetKeyVars(materialized->schema().variables()));
    MPFDB_RETURN_IF_ERROR(db.CreateTable(std::move(materialized)));
    return SqlResult{"created table " + name + " from query (" +
                         std::to_string(inner.table->NumRows()) + " rows)",
                     nullptr};
  }
  MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("("));
  std::vector<std::string> columns;
  do {
    MPFDB_ASSIGN_OR_RETURN(std::string column, cursor.ExpectIdentifier());
    columns.push_back(std::move(column));
  } while (cursor.TrySymbol(","));
  if (columns.size() < 1) {
    return Status::InvalidArgument("table needs at least a measure column");
  }
  // Accept "(a, b; f)" or "(a, b, f)" — the last column is the measure when
  // no semicolon separates it.
  std::string measure;
  if (cursor.TrySymbol(";")) {
    MPFDB_ASSIGN_OR_RETURN(measure, cursor.ExpectIdentifier());
  } else {
    measure = columns.back();
    columns.pop_back();
  }
  MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(")"));
  auto table = std::make_shared<Table>(name, Schema(columns, measure));
  if (cursor.TryKeyword("key")) {
    MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("("));
    std::vector<std::string> key;
    do {
      MPFDB_ASSIGN_OR_RETURN(std::string column, cursor.ExpectIdentifier());
      key.push_back(std::move(column));
    } while (cursor.TrySymbol(","));
    MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(")"));
    MPFDB_RETURN_IF_ERROR(table->SetKeyVars(std::move(key)));
  }
  MPFDB_RETURN_IF_ERROR(db.CreateTable(std::move(table)));
  return SqlResult{"created table " + name, nullptr};
}

StatusOr<SqlResult> InsertInto(TokenCursor& cursor, Database& db) {
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("into"));
  MPFDB_ASSIGN_OR_RETURN(std::string name, cursor.ExpectIdentifier());
  MPFDB_ASSIGN_OR_RETURN(TablePtr table, db.catalog().GetTable(name));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("values"));
  size_t inserted = 0;
  do {
    MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("("));
    std::vector<VarValue> vars;
    for (size_t i = 0; i < table->schema().arity(); ++i) {
      MPFDB_ASSIGN_OR_RETURN(int64_t value, cursor.ExpectInteger());
      MPFDB_ASSIGN_OR_RETURN(int64_t domain,
                             db.catalog().DomainSize(
                                 table->schema().variables()[i]));
      if (value < 0 || value >= domain) {
        return Status::OutOfRange(
            "value " + std::to_string(value) + " outside domain of '" +
            table->schema().variables()[i] + "'");
      }
      vars.push_back(static_cast<VarValue>(value));
      MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(","));
    }
    MPFDB_ASSIGN_OR_RETURN(double measure, cursor.ExpectNumber());
    MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(")"));
    table->AppendRow(vars, measure);
    ++inserted;
  } while (cursor.TrySymbol(","));
  return SqlResult{"inserted " + std::to_string(inserted) + " rows into " +
                       name,
                   nullptr};
}

StatusOr<SqlResult> CreateMpfView(TokenCursor& cursor, Database& db) {
  MPFDB_ASSIGN_OR_RETURN(std::string name, cursor.ExpectIdentifier());
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("as"));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("select"));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("*"));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("from"));
  MpfViewDef view;
  view.name = name;
  do {
    MPFDB_ASSIGN_OR_RETURN(std::string rel, cursor.ExpectIdentifier());
    view.relations.push_back(std::move(rel));
  } while (cursor.TrySymbol(","));
  if (cursor.TryKeyword("using")) {
    MPFDB_ASSIGN_OR_RETURN(std::string semiring_name, cursor.ExpectIdentifier());
    MPFDB_ASSIGN_OR_RETURN(view.semiring, Semiring::FromName(semiring_name));
  }
  MPFDB_RETURN_IF_ERROR(db.CreateMpfView(std::move(view)));
  return SqlResult{"created mpfview " + name, nullptr};
}

// EXPLAIN renders the optimizer's logical plan followed by the physical
// plan (per-node join/agg algorithm selection); EXPLAIN ANALYZE runs the
// query and renders the physical plan with per-operator runtime stats and
// cardinality q-errors.
enum class SelectMode { kRun, kExplain, kExplainAnalyze };

// Parses "SELECT vars, AGG(f) FROM [CACHE] view [WHERE ...] GROUP BY vars
// [HAVING ...] [USING OPTIMIZER spec]" after the SELECT keyword was consumed.
StatusOr<SqlResult> SelectQuery(TokenCursor& cursor, Database& db,
                                SelectMode mode) {
  // Select list: identifiers until we hit AGG(...) — i.e., an identifier
  // followed by '('.
  std::vector<std::string> select_vars;
  std::string aggregate;
  while (true) {
    MPFDB_ASSIGN_OR_RETURN(std::string item, cursor.ExpectIdentifier());
    if (cursor.TrySymbol("(")) {
      aggregate = ToLower(item);
      MPFDB_ASSIGN_OR_RETURN(std::string measure, cursor.ExpectIdentifier());
      (void)measure;  // any measure alias is accepted
      MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(")"));
      break;
    }
    select_vars.push_back(std::move(item));
    MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(","));
  }
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("from"));
  bool from_cache = cursor.TryKeyword("cache");
  MPFDB_ASSIGN_OR_RETURN(std::string view_name, cursor.ExpectIdentifier());

  MpfQuerySpec query;
  if (cursor.TryKeyword("where")) {
    do {
      MPFDB_ASSIGN_OR_RETURN(std::string var, cursor.ExpectIdentifier());
      MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("="));
      MPFDB_ASSIGN_OR_RETURN(int64_t value, cursor.ExpectInteger());
      query.selections.push_back(
          QuerySelection{std::move(var), static_cast<VarValue>(value)});
    } while (cursor.TryKeyword("and"));
  }
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("group"));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("by"));
  do {
    MPFDB_ASSIGN_OR_RETURN(std::string var, cursor.ExpectIdentifier());
    query.group_vars.push_back(std::move(var));
  } while (cursor.TrySymbol(","));

  // HAVING <measure-alias> <op> <number> — the constrained-range form.
  if (cursor.TryKeyword("having")) {
    MPFDB_ASSIGN_OR_RETURN(std::string measure_alias,
                           cursor.ExpectIdentifier());
    (void)measure_alias;
    HavingClause having;
    if (cursor.TrySymbol("<")) {
      having.op = cursor.TrySymbol("=") ? CompareOp::kLe
                  : cursor.TrySymbol(">") ? CompareOp::kNe
                                          : CompareOp::kLt;
    } else if (cursor.TrySymbol(">")) {
      having.op = cursor.TrySymbol("=") ? CompareOp::kGe : CompareOp::kGt;
    } else if (cursor.TrySymbol("=")) {
      having.op = CompareOp::kEq;
    } else {
      return Status::InvalidArgument("expected a comparison after HAVING");
    }
    MPFDB_ASSIGN_OR_RETURN(having.threshold, cursor.ExpectNumber());
    query.having = having;
  }

  // ORDER BY <measure-alias> [ASC|DESC] [LIMIT k] — top-k decision support.
  bool order_by_measure = false;
  bool descending = true;
  int64_t limit = -1;
  if (cursor.TryKeyword("order")) {
    MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("by"));
    MPFDB_ASSIGN_OR_RETURN(std::string alias, cursor.ExpectIdentifier());
    (void)alias;
    order_by_measure = true;
    if (cursor.TryKeyword("asc")) {
      descending = false;
    } else {
      (void)cursor.TryKeyword("desc");
    }
  }
  if (cursor.TryKeyword("limit")) {
    MPFDB_ASSIGN_OR_RETURN(limit, cursor.ExpectInteger());
    if (limit < 0) return Status::InvalidArgument("LIMIT must be >= 0");
  }

  std::string optimizer_spec = "cs+nonlinear";
  if (cursor.TryKeyword("using")) {
    MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("optimizer"));
    // The spec may span several tokens: ve ( deg ) ext.
    std::string spec;
    while (!cursor.AtEnd()) {
      spec += cursor.Next().text;
    }
    optimizer_spec = spec;
  }

  // The select list must name the same variables as GROUP BY.
  if (!varset::SetEquals(select_vars, query.group_vars)) {
    return Status::InvalidArgument(
        "select list must contain exactly the GROUP BY variables");
  }
  // The aggregate must match the view's semiring.
  MPFDB_ASSIGN_OR_RETURN(const MpfViewDef* view, db.GetView(view_name));
  if (aggregate != ToLower(view->semiring.aggregate_name())) {
    return Status::InvalidArgument(
        "aggregate '" + aggregate + "' does not match the view's semiring (" +
        view->semiring.name() + " expects " + view->semiring.aggregate_name() +
        ")");
  }

  if (mode == SelectMode::kExplain) {
    MPFDB_ASSIGN_OR_RETURN(std::string text,
                           db.Explain(view_name, query, optimizer_spec));
    return SqlResult{std::move(text), nullptr};
  }
  if (mode == SelectMode::kExplainAnalyze) {
    MPFDB_ASSIGN_OR_RETURN(std::string text,
                           db.ExplainAnalyze(view_name, query, optimizer_spec));
    return SqlResult{std::move(text), nullptr};
  }
  TablePtr table;
  std::string message = "ok";
  if (from_cache) {
    MPFDB_ASSIGN_OR_RETURN(table, db.QueryCached(view_name, query));
    message = "answered from VE-cache";
  } else {
    MPFDB_ASSIGN_OR_RETURN(QueryResult result,
                           db.Query(view_name, query, optimizer_spec));
    table = result.table;
  }
  if (order_by_measure || limit >= 0) {
    // Post-process: order rows by measure and truncate. This is
    // presentation, not plan work — the MPF result is already computed.
    std::vector<size_t> order(table->NumRows());
    std::iota(order.begin(), order.end(), 0);
    if (order_by_measure) {
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return descending
                                    ? table->measure(a) > table->measure(b)
                                    : table->measure(a) < table->measure(b);
                       });
    }
    size_t keep = limit >= 0
                      ? std::min<size_t>(static_cast<size_t>(limit),
                                         order.size())
                      : order.size();
    auto sorted = std::make_shared<Table>(table->name(), table->schema());
    sorted->Reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      RowView row = table->Row(order[i]);
      sorted->AppendRowRaw(row.vars, row.measure);
    }
    table = std::move(sorted);
  }
  return SqlResult{std::move(message), std::move(table)};
}

StatusOr<SqlResult> SelectQueryForSubquery(TokenCursor& cursor, Database& db) {
  return SelectQuery(cursor, db, SelectMode::kRun);
}

StatusOr<SqlResult> BuildCache(TokenCursor& cursor, Database& db) {
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("cache"));
  MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("on"));
  MPFDB_ASSIGN_OR_RETURN(std::string view_name, cursor.ExpectIdentifier());
  MPFDB_RETURN_IF_ERROR(db.BuildCache(view_name));
  return SqlResult{"built VE-cache on " + view_name, nullptr};
}

}  // namespace

StatusOr<SqlResult> SqlSession::Execute(const std::string& statement) {
  MPFDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  TokenCursor cursor(std::move(tokens));
  StatusOr<SqlResult> result = Status::Internal("unhandled statement");
  if (cursor.TryKeyword("create")) {
    if (cursor.TryKeyword("variable")) {
      result = CreateVariable(cursor, db_);
    } else if (cursor.TryKeyword("table")) {
      result = CreateTable(cursor, db_);
    } else if (cursor.TryKeyword("mpfview")) {
      result = CreateMpfView(cursor, db_);
    } else if (cursor.TryKeyword("index")) {
      // CREATE INDEX ON <table> (<var>)
      MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("on"));
      auto table = cursor.ExpectIdentifier();
      if (!table.ok()) return table.status();
      MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol("("));
      auto var = cursor.ExpectIdentifier();
      if (!var.ok()) return var.status();
      MPFDB_RETURN_IF_ERROR(cursor.ExpectSymbol(")"));
      MPFDB_RETURN_IF_ERROR(db_.catalog().CreateIndex(*table, *var));
      result = SqlResult{"created index on " + *table + "(" + *var + ")",
                         nullptr};
    } else {
      return Status::InvalidArgument(
          "expected VARIABLE, TABLE, MPFVIEW or INDEX after CREATE");
    }
  } else if (cursor.TryKeyword("insert")) {
    result = InsertInto(cursor, db_);
  } else if (cursor.TryKeyword("select")) {
    result = SelectQuery(cursor, db_, SelectMode::kRun);
  } else if (cursor.TryKeyword("explain")) {
    SelectMode mode = cursor.TryKeyword("analyze") ? SelectMode::kExplainAnalyze
                                                   : SelectMode::kExplain;
    MPFDB_RETURN_IF_ERROR(cursor.ExpectKeyword("select"));
    result = SelectQuery(cursor, db_, mode);
  } else if (cursor.TryKeyword("build")) {
    result = BuildCache(cursor, db_);
  } else if (cursor.TryKeyword("drop")) {
    if (cursor.TryKeyword("table")) {
      auto name = cursor.ExpectIdentifier();
      if (!name.ok()) return name.status();
      MPFDB_RETURN_IF_ERROR(db_.DropTable(*name));
      result = SqlResult{"dropped table " + *name, nullptr};
    } else if (cursor.TryKeyword("mpfview")) {
      auto name = cursor.ExpectIdentifier();
      if (!name.ok()) return name.status();
      MPFDB_RETURN_IF_ERROR(db_.DropMpfView(*name));
      result = SqlResult{"dropped mpfview " + *name, nullptr};
    } else {
      return Status::InvalidArgument("expected TABLE or MPFVIEW after DROP");
    }
  } else if (cursor.TryKeyword("show")) {
    if (cursor.TryKeyword("tables")) {
      std::string listing;
      for (const auto& name : db_.catalog().TableNames()) {
        TablePtr table = *db_.catalog().GetTable(name);
        listing += name + " " + table->schema().ToString() + " [" +
                   std::to_string(table->NumRows()) + " rows]\n";
      }
      result = SqlResult{std::move(listing), nullptr};
    } else if (cursor.TryKeyword("views")) {
      std::string listing;
      for (const auto& name : db_.ViewNames()) {
        const MpfViewDef* view = *db_.GetView(name);
        listing += name + " (" + view->semiring.name() + ") over " +
                   Join(view->relations, ", ") + "\n";
      }
      result = SqlResult{std::move(listing), nullptr};
    } else {
      return Status::InvalidArgument("expected TABLES or VIEWS after SHOW");
    }
  } else {
    return Status::InvalidArgument("unrecognized statement: " + statement);
  }
  if (!result.ok()) return result;
  if (!cursor.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after statement: '" +
                                   cursor.Peek().text + "'");
  }
  return result;
}

}  // namespace mpfdb::parser
