#ifndef MPFDB_PARSER_SQL_H_
#define MPFDB_PARSER_SQL_H_

#include <string>

#include "core/database.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::parser {

// Result of executing one SQL statement: DDL/DML produce a message, queries
// produce a table (and the plan text for EXPLAIN).
struct SqlResult {
  std::string message;
  TablePtr table;
};

// A small SQL frontend over the Database facade, implementing the paper's
// language extensions (Section 2) plus the DDL needed to stand a schema up:
//
//   CREATE VARIABLE <name> DOMAIN <n>;
//   CREATE TABLE <name> (<var>, ..., <var>; <measure>) [KEY (<var>, ...)];
//   INSERT INTO <name> VALUES (<v>, ..., <measure>)[, (...)]...;
//   CREATE MPFVIEW <name> AS SELECT * FROM <t1>, <t2>, ... [USING <semiring>];
//   SELECT <vars>, <AGG>(<f>) FROM <view> [WHERE <var>=<c> [AND ...]]
//     GROUP BY <vars> [USING OPTIMIZER <spec>];
//   EXPLAIN SELECT ...;
//   BUILD CACHE ON <view>;
//   SELECT ... FROM CACHE <view> ... ;   -- answer from the VE-cache
//
// The aggregate name must match the view's semiring (SUM for sum_product,
// MIN for min_sum, MAX for max_sum/max_product, OR for bool_or_and).
class SqlSession {
 public:
  explicit SqlSession(Database& db) : db_(db) {}

  StatusOr<SqlResult> Execute(const std::string& statement);

 private:
  Database& db_;
};

}  // namespace mpfdb::parser

#endif  // MPFDB_PARSER_SQL_H_
