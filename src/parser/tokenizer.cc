#include "parser/tokenizer.h"

#include <cctype>

#include "util/strings.h"

namespace mpfdb::parser {
namespace {

bool IsIdentifierStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& statement) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = statement.size();
  while (i < n) {
    char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentifierStart(c)) {
      size_t start = i;
      while (i < n && IsIdentifierChar(statement[i])) ++i;
      tokens.push_back(
          Token{TokenKind::kIdentifier, statement.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(statement[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(statement[i])) ||
                       statement[i] == '.' || statement[i] == 'e' ||
                       statement[i] == 'E' ||
                       ((statement[i] == '-' || statement[i] == '+') && i > start &&
                        (statement[i - 1] == 'e' || statement[i - 1] == 'E')))) {
        ++i;
      }
      tokens.push_back(
          Token{TokenKind::kNumber, statement.substr(start, i - start), start});
      continue;
    }
    static const std::string kSymbols = "(),;=*&.+<>";
    if (kSymbols.find(c) != std::string::npos) {
      tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c), i});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(i));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", n});
  return tokens;
}

const Token& TokenCursor::Peek() const { return tokens_[position_]; }

Token TokenCursor::Next() {
  Token token = tokens_[position_];
  if (position_ + 1 < tokens_.size()) ++position_;
  return token;
}

bool TokenCursor::AtEnd() const {
  return tokens_[position_].kind == TokenKind::kEnd ||
         (tokens_[position_].kind == TokenKind::kSymbol &&
          tokens_[position_].text == ";");
}

bool TokenCursor::TryKeyword(const std::string& keyword) {
  const Token& token = Peek();
  if (token.kind == TokenKind::kIdentifier &&
      ToLower(token.text) == ToLower(keyword)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectKeyword(const std::string& keyword) {
  if (TryKeyword(keyword)) return Status::Ok();
  return Status::InvalidArgument("expected '" + keyword + "' but found '" +
                                 Peek().text + "' at offset " +
                                 std::to_string(Peek().offset));
}

Status TokenCursor::ExpectSymbol(const std::string& symbol) {
  if (TrySymbol(symbol)) return Status::Ok();
  return Status::InvalidArgument("expected '" + symbol + "' but found '" +
                                 Peek().text + "' at offset " +
                                 std::to_string(Peek().offset));
}

bool TokenCursor::TrySymbol(const std::string& symbol) {
  const Token& token = Peek();
  if (token.kind == TokenKind::kSymbol && token.text == symbol) {
    Next();
    return true;
  }
  return false;
}

StatusOr<std::string> TokenCursor::ExpectIdentifier() {
  const Token& token = Peek();
  if (token.kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected an identifier but found '" +
                                   token.text + "' at offset " +
                                   std::to_string(token.offset));
  }
  return Next().text;
}

StatusOr<int64_t> TokenCursor::ExpectInteger() {
  const Token& token = Peek();
  if (token.kind != TokenKind::kNumber ||
      token.text.find_first_of(".eE") != std::string::npos) {
    return Status::InvalidArgument("expected an integer but found '" +
                                   token.text + "' at offset " +
                                   std::to_string(token.offset));
  }
  return static_cast<int64_t>(std::stoll(Next().text));
}

StatusOr<double> TokenCursor::ExpectNumber() {
  const Token& token = Peek();
  if (token.kind != TokenKind::kNumber) {
    return Status::InvalidArgument("expected a number but found '" +
                                   token.text + "' at offset " +
                                   std::to_string(token.offset));
  }
  return std::stod(Next().text);
}

}  // namespace mpfdb::parser
