#ifndef MPFDB_PARSER_TOKENIZER_H_
#define MPFDB_PARSER_TOKENIZER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mpfdb::parser {

enum class TokenKind {
  kIdentifier,  // bare word: names, keywords (case kept; matching is
                // case-insensitive)
  kNumber,      // integer or decimal literal, optional leading '-'
  kSymbol,      // one of ( ) , ; = * & . +
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;  // byte offset in the statement, for error messages
};

// Splits a statement into tokens. Unknown characters are an error.
StatusOr<std::vector<Token>> Tokenize(const std::string& statement);

// Cursor over a token stream with the conveniences a recursive-descent
// parser needs. Keyword matching is ASCII case-insensitive.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const;
  Token Next();
  bool AtEnd() const;

  // True (and consumes) if the next token is an identifier equal to
  // `keyword` case-insensitively.
  bool TryKeyword(const std::string& keyword);
  // Error unless the next token is `keyword`.
  Status ExpectKeyword(const std::string& keyword);
  // Error unless the next token is the symbol `symbol`.
  Status ExpectSymbol(const std::string& symbol);
  bool TrySymbol(const std::string& symbol);
  // Consumes and returns an identifier.
  StatusOr<std::string> ExpectIdentifier();
  // Consumes and returns an integer literal.
  StatusOr<int64_t> ExpectInteger();
  // Consumes and returns a numeric literal (integer or decimal).
  StatusOr<double> ExpectNumber();

 private:
  std::vector<Token> tokens_;
  size_t position_ = 0;
};

}  // namespace mpfdb::parser

#endif  // MPFDB_PARSER_TOKENIZER_H_
