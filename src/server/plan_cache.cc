#include "server/plan_cache.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mpfdb::server {

std::string CanonicalQueryKey(const MpfQuerySpec& spec) {
  std::ostringstream os;
  os << "g:";
  for (const auto& var : spec.group_vars) os << var << ',';
  std::vector<QuerySelection> selections = spec.selections;
  std::sort(selections.begin(), selections.end(),
            [](const QuerySelection& a, const QuerySelection& b) {
              return a.var != b.var ? a.var < b.var : a.value < b.value;
            });
  os << "|s:";
  for (const auto& sel : selections) os << sel.var << '=' << sel.value << ',';
  os << "|h:";
  if (spec.having.has_value()) {
    os << CompareOpSymbol(spec.having->op) << spec.having->threshold;
  }
  return os.str();
}

std::string ExecFingerprint(const exec::ExecOptions& options,
                            size_t planner_memory_limit) {
  std::ostringstream os;
  os << "j" << static_cast<int>(options.join) << "a"
     << static_cast<int>(options.agg) << "v" << (options.vectorized ? 1 : 0)
     << "p" << (options.packed_keys ? 1 : 0) << "h"
     << static_cast<int>(options.hash_impl) << "x"
     << (options.mph_indexes ? 1 : 0) << "m" << planner_memory_limit;
  return os.str();
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = entries_.Find(key.data(), key.size());
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  if (entry->epoch != epoch) {
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(key, entry);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, entry->lru_pos);
  return entry->plan;
}

void PlanCache::Insert(const std::string& key, uint64_t epoch,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* existing = entries_.Find(key.data(), key.size());
      existing != nullptr) {
    EraseLocked(key, existing);
  }
  lru_.push_front(key);
  entries_.FindOrInsert(key.data(), key.size(),
                        Entry{epoch, std::move(plan), lru_.begin()});
  ++stats_.inserts;
  while (entries_.size() > capacity_) {
    const std::string victim = lru_.back();
    ++stats_.evictions;
    EraseLocked(victim, entries_.Find(victim.data(), victim.size()));
  }
}

void PlanCache::OnEpochBump(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Collect-then-erase: Erase may compact the key arena, so the sweep must
  // not walk the table while dropping entries.
  std::vector<std::string> stale;
  entries_.ForEach([&](const char* k, size_t len, const Entry& entry) {
    if (entry.epoch < epoch) stale.emplace_back(k, len);
  });
  for (const std::string& key : stale) {
    ++stats_.invalidations;
    EraseLocked(key, entries_.Find(key.data(), key.size()));
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = exec::SwissBytesTable<Entry>();
  lru_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void PlanCache::EraseLocked(const std::string& key, Entry* entry) {
  lru_.erase(entry->lru_pos);
  entries_.Erase(key.data(), key.size());
}

}  // namespace mpfdb::server
