#include "server/plan_cache.h"

#include <algorithm>
#include <sstream>

namespace mpfdb::server {

std::string CanonicalQueryKey(const MpfQuerySpec& spec) {
  std::ostringstream os;
  os << "g:";
  for (const auto& var : spec.group_vars) os << var << ',';
  std::vector<QuerySelection> selections = spec.selections;
  std::sort(selections.begin(), selections.end(),
            [](const QuerySelection& a, const QuerySelection& b) {
              return a.var != b.var ? a.var < b.var : a.value < b.value;
            });
  os << "|s:";
  for (const auto& sel : selections) os << sel.var << '=' << sel.value << ',';
  os << "|h:";
  if (spec.having.has_value()) {
    os << CompareOpSymbol(spec.having->op) << spec.having->threshold;
  }
  return os.str();
}

std::string ExecFingerprint(const exec::ExecOptions& options,
                            size_t planner_memory_limit) {
  std::ostringstream os;
  os << "j" << static_cast<int>(options.join) << "a"
     << static_cast<int>(options.agg) << "v" << (options.vectorized ? 1 : 0)
     << "p" << (options.packed_keys ? 1 : 0) << "m" << planner_memory_limit;
  return os.str();
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.epoch != epoch) {
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(it);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, uint64_t epoch,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) EraseLocked(it);
  lru_.push_front(key);
  entries_[key] = Entry{epoch, std::move(plan), lru_.begin()};
  ++stats_.inserts;
  while (entries_.size() > capacity_) {
    auto victim = entries_.find(lru_.back());
    ++stats_.evictions;
    EraseLocked(victim);
  }
}

void PlanCache::OnEpochBump(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.epoch < epoch) {
      ++stats_.invalidations;
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
    } else {
      ++it;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

void PlanCache::EraseLocked(std::map<std::string, Entry>::iterator it) {
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

}  // namespace mpfdb::server
