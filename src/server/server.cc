#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "server/plan_cache.h"

namespace mpfdb::server {

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

size_t PickNextTicket(const std::vector<Ticket>& waiting,
                      const std::map<uint64_t, size_t>& in_flight_per_session) {
  size_t best = waiting.size();
  size_t best_load = 0;
  for (size_t i = 0; i < waiting.size(); ++i) {
    auto it = in_flight_per_session.find(waiting[i].session_id);
    size_t load = it == in_flight_per_session.end() ? 0 : it->second;
    if (best == waiting.size() || load < best_load ||
        (load == best_load && waiting[i].seq < waiting[best].seq)) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

uint64_t Session::queries_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_run_;
}

StatusOr<QueryResult> Session::Query(const std::string& view_name,
                                     const MpfQuerySpec& query,
                                     const std::string& optimizer_spec,
                                     QueryContext* ctx) {
  QueryContext local_ctx;
  QueryContext* qctx = ctx != nullptr ? ctx : &local_ctx;
  MPFDB_RETURN_IF_ERROR(server_->Admit(*this, qctx));
  size_t old_limit = qctx->memory_limit();
  qctx->TightenMemoryLimit(server_->SlotMemoryLimit());
  auto start = SteadyClock::now();
  auto result = server_->db_.Query(view_name, query, optimizer_spec, qctx);
  double seconds = SecondsSince(start);
  if (qctx == ctx) ctx->set_memory_limit(old_limit);
  server_->Release(*this, result.ok(), seconds);
  server_->MaybeRecordSlowQuery(*this, view_name, query, seconds,
                                qctx->stats());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_run_;
  }
  return result;
}

StatusOr<ApproxResult> Session::QueryApprox(const std::string& view_name,
                                            const MpfQuerySpec& query,
                                            const ApproxOptions& approx,
                                            const std::string& optimizer_spec,
                                            QueryContext* ctx) {
  QueryContext local_ctx;
  QueryContext* qctx = ctx != nullptr ? ctx : &local_ctx;
  MPFDB_RETURN_IF_ERROR(server_->Admit(*this, qctx));
  size_t old_limit = qctx->memory_limit();
  qctx->TightenMemoryLimit(server_->SlotMemoryLimit());
  auto start = SteadyClock::now();
  auto result =
      server_->db_.QueryApprox(view_name, query, approx, optimizer_spec, qctx);
  double seconds = SecondsSince(start);
  if (qctx == ctx) ctx->set_memory_limit(old_limit);
  server_->Release(*this, result.ok(), seconds);
  server_->MaybeRecordSlowQuery(*this, view_name, query, seconds,
                                qctx->stats());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_run_;
  }
  return result;
}

StatusOr<TablePtr> Session::QueryCached(const std::string& view_name,
                                        const MpfQuerySpec& query,
                                        QueryContext* ctx) {
  // VE-cache answering itself is not context-governed yet, but the wait for
  // admission honors the context's deadline and cancel token like any query.
  QueryContext local_ctx;
  QueryContext* qctx = ctx != nullptr ? ctx : &local_ctx;
  MPFDB_RETURN_IF_ERROR(server_->Admit(*this, qctx));
  auto start = SteadyClock::now();
  auto result = server_->db_.QueryCached(view_name, query);
  double seconds = SecondsSince(start);
  server_->Release(*this, result.ok(), seconds);
  server_->MaybeRecordSlowQuery(*this, view_name, query, seconds,
                                qctx->stats());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_run_;
  }
  return result;
}

Status Session::Update(const std::string& table,
                       const std::vector<VarValue>& row_vars,
                       double new_measure, uint64_t* commit_epoch) {
  return Update(std::vector<MeasureUpdateSpec>{{table, row_vars,
                                                new_measure}},
                commit_epoch);
}

Status Session::Update(const std::vector<MeasureUpdateSpec>& specs,
                       uint64_t* commit_epoch) {
  // No admission: writers coalesce in the database's group-commit queue
  // instead of occupying reader slots.
  Status status = server_->db_.ApplyMeasureUpdates(specs, commit_epoch);
  server_->RecordUpdate(status.ok());
  return status;
}

void MpfServer::RecordUpdate(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++stats_.updates;
  } else {
    ++stats_.update_failures;
  }
}

MpfServer::MpfServer(Database& db, ServerOptions options)
    : db_(db), options_(options) {}

MpfServer::~MpfServer() { Shutdown(); }

std::shared_ptr<Session> MpfServer::CreateSession(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  // Not make_shared: the constructor is private to MpfServer.
  return std::shared_ptr<Session>(new Session(this, id, std::move(name)));
}

size_t MpfServer::SlotMemoryLimit() const {
  if (options_.global_memory_limit == 0) return 0;
  size_t slots = std::max<size_t>(1, options_.max_concurrent);
  return std::max<size_t>(1, options_.global_memory_limit / slots);
}

std::chrono::nanoseconds MpfServer::EstimatedQueueWaitLocked(
    size_t queue_position) const {
  if (ema_query_seconds_ <= 0) return std::chrono::nanoseconds(0);
  size_t slots = std::max<size_t>(1, options_.max_concurrent);
  // Tickets ahead of this one drain through the slots at roughly one EMA
  // apiece; queries already in flight are assumed halfway done.
  double ahead = static_cast<double>(queue_position) +
                 0.5 * static_cast<double>(in_flight_);
  return std::chrono::nanoseconds(static_cast<int64_t>(
      ema_query_seconds_ * 1e9 * ahead / static_cast<double>(slots)));
}

Status MpfServer::Admit(const Session& session, QueryContext* ctx) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (shutdown_) {
    ++stats_.rejected;
    return Status::Cancelled("server is shut down");
  }
  if (waiting_.size() >= options_.max_queued) {
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_.size()) + "/" +
        std::to_string(options_.max_queued) + " waiting)");
  }
  const bool has_deadline = ctx != nullptr && ctx->has_deadline();
  if (options_.shed_doomed_queries && has_deadline) {
    auto wait = EstimatedQueueWaitLocked(waiting_.size());
    if (wait.count() > 0 && SteadyClock::now() + wait > ctx->deadline()) {
      ++stats_.shed;
      auto wait_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(wait).count();
      return Status::ResourceExhausted(
          "request shed: estimated queue wait " + std::to_string(wait_ms) +
          "ms exceeds the request deadline; retry with backoff");
    }
  }
  auto state = std::make_shared<WaitState>();
  state->session_id = session.id();
  state->seq = next_seq_++;
  state->session_name = session.name();
  waiting_.push_back(state);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, waiting_.size());
  AdmitWaitingLocked();
  const bool watch_ctx = ctx != nullptr;
  for (;;) {
    if (state->admitted) return Status::Ok();
    if (shutdown_) break;
    if (watch_ctx) {
      // A queued query must fail fast on its own cancel/deadline, not sit
      // dead in the queue until a slot frees up. Nothing signals our cv on
      // RequestCancel (the token is shared state, not a server event), so
      // the wait polls: exact wake at the deadline, 10ms cadence for cancel.
      Status doomed = Status::Ok();
      if (ctx->cancel_token()->cancelled()) {
        doomed = Status::Cancelled("query cancelled while queued");
      } else if (has_deadline && SteadyClock::now() >= ctx->deadline()) {
        doomed = Status::DeadlineExceeded("deadline expired while queued");
      }
      if (!doomed.ok()) {
        waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), state),
                       waiting_.end());
        ++stats_.timed_out;
        return doomed;
      }
      auto wake = SteadyClock::now() + std::chrono::milliseconds(10);
      if (has_deadline && ctx->deadline() < wake) wake = ctx->deadline();
      cv_.wait_until(lock, wake);
    } else {
      cv_.wait(lock);
    }
  }
  // Shutdown won the race: drop our ticket.
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), state),
                 waiting_.end());
  ++stats_.rejected;
  return Status::Cancelled("server shut down while queued");
}

void MpfServer::AdmitWaitingLocked() {
  while (!paused_ && !shutdown_ && in_flight_ < options_.max_concurrent &&
         !waiting_.empty()) {
    std::vector<Ticket> tickets;
    tickets.reserve(waiting_.size());
    for (const auto& w : waiting_) {
      tickets.push_back(Ticket{w->session_id, w->seq});
    }
    size_t pick = PickNextTicket(tickets, in_flight_per_session_);
    std::shared_ptr<WaitState> state = waiting_[pick];
    waiting_.erase(waiting_.begin() + pick);
    state->admitted = true;
    ++in_flight_;
    ++in_flight_per_session_[state->session_id];
    ++stats_.admitted;
    if (options_.record_admission_trace) {
      admission_trace_.push_back(state->session_name);
    }
  }
  cv_.notify_all();
}

void MpfServer::Release(const Session& session, bool ok, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  auto it = in_flight_per_session_.find(session.id());
  if (it != in_flight_per_session_.end() && --it->second == 0) {
    in_flight_per_session_.erase(it);
  }
  if (ok) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  // Service-time EMA for the load shedder (1/8 new weight: smooth enough to
  // ride out one outlier, fresh enough to track a regime change quickly).
  ema_query_seconds_ = ema_query_seconds_ <= 0
                           ? seconds
                           : 0.875 * ema_query_seconds_ + 0.125 * seconds;
  AdmitWaitingLocked();
}

void MpfServer::MaybeRecordSlowQuery(const Session& session,
                                     const std::string& view_name,
                                     const MpfQuerySpec& query, double seconds,
                                     const QueryContext::Stats& exec_stats) {
  if (options_.slow_query_seconds <= 0 ||
      seconds < options_.slow_query_seconds) {
    return;
  }
  SlowQuery entry;
  entry.session = session.name();
  entry.view = view_name;
  entry.canonical_query = CanonicalQueryKey(query);
  entry.seconds = seconds;
  entry.peak_bytes = exec_stats.peak_bytes;
  entry.spill_bytes = exec_stats.spill_bytes;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.slow_queries;
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > std::max<size_t>(1, options_.slow_query_log_capacity)) {
    slow_log_.pop_front();
  }
}

void MpfServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MpfServer::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  AdmitWaitingLocked();
}

void MpfServer::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

ServerStats MpfServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.in_flight = in_flight_;
  s.queued = waiting_.size();
  return s;
}

std::vector<std::string> MpfServer::admission_trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_trace_;
}

std::vector<SlowQuery> MpfServer::slow_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQuery>(slow_log_.begin(), slow_log_.end());
}

uint64_t MpfServer::RetryAfterHintMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto wait = EstimatedQueueWaitLocked(waiting_.size());
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(wait);
  return std::max<uint64_t>(1, static_cast<uint64_t>(ms.count()));
}

std::string MpfServer::MetricsText() const {
  ServerStats s = stats();
  PlanCache::Stats p = db_.plan_cache().stats();
  std::vector<SlowQuery> slow = slow_queries();
  std::ostringstream out;
  out << "server_submitted " << s.submitted << "\n"
      << "server_admitted " << s.admitted << "\n"
      << "server_completed " << s.completed << "\n"
      << "server_failed " << s.failed << "\n"
      << "server_updates " << s.updates << "\n"
      << "server_update_failures " << s.update_failures << "\n"
      << "server_rejected " << s.rejected << "\n"
      << "server_shed " << s.shed << "\n"
      << "server_timed_out " << s.timed_out << "\n"
      << "server_slow_queries " << s.slow_queries << "\n"
      << "server_in_flight " << s.in_flight << "\n"
      << "server_queued " << s.queued << "\n"
      << "server_max_queue_depth " << s.max_queue_depth << "\n"
      << "plan_cache_hits " << p.hits << "\n"
      << "plan_cache_misses " << p.misses << "\n"
      << "plan_cache_inserts " << p.inserts << "\n"
      << "plan_cache_invalidations " << p.invalidations << "\n"
      << "plan_cache_evictions " << p.evictions << "\n"
      << "plan_cache_entries " << p.entries << "\n"
      << "plan_cache_hit_rate " << p.hit_rate() << "\n";
  for (const SlowQuery& q : slow) {
    out << "slow_query session=" << q.session << " view=" << q.view
        << " seconds=" << q.seconds << " peak_bytes=" << q.peak_bytes
        << " spill_bytes=" << q.spill_bytes << " query=" << q.canonical_query
        << "\n";
  }
  return out.str();
}

}  // namespace mpfdb::server
