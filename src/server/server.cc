#include "server/server.h"

#include <algorithm>
#include <utility>

namespace mpfdb::server {

size_t PickNextTicket(const std::vector<Ticket>& waiting,
                      const std::map<uint64_t, size_t>& in_flight_per_session) {
  size_t best = waiting.size();
  size_t best_load = 0;
  for (size_t i = 0; i < waiting.size(); ++i) {
    auto it = in_flight_per_session.find(waiting[i].session_id);
    size_t load = it == in_flight_per_session.end() ? 0 : it->second;
    if (best == waiting.size() || load < best_load ||
        (load == best_load && waiting[i].seq < waiting[best].seq)) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

uint64_t Session::queries_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_run_;
}

StatusOr<QueryResult> Session::Query(const std::string& view_name,
                                     const MpfQuerySpec& query,
                                     const std::string& optimizer_spec,
                                     QueryContext* ctx) {
  MPFDB_RETURN_IF_ERROR(server_->Admit(*this));
  QueryContext local_ctx;
  QueryContext* qctx = ctx != nullptr ? ctx : &local_ctx;
  size_t old_limit = qctx->memory_limit();
  qctx->TightenMemoryLimit(server_->SlotMemoryLimit());
  auto result = server_->db_.Query(view_name, query, optimizer_spec, qctx);
  if (qctx == ctx) ctx->set_memory_limit(old_limit);
  server_->Release(*this, result.ok());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_run_;
  }
  return result;
}

StatusOr<TablePtr> Session::QueryCached(const std::string& view_name,
                                        const MpfQuerySpec& query,
                                        QueryContext* ctx) {
  (void)ctx;  // VE-cache answering is not context-governed yet
  MPFDB_RETURN_IF_ERROR(server_->Admit(*this));
  auto result = server_->db_.QueryCached(view_name, query);
  server_->Release(*this, result.ok());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_run_;
  }
  return result;
}

MpfServer::MpfServer(Database& db, ServerOptions options)
    : db_(db), options_(options) {}

MpfServer::~MpfServer() { Shutdown(); }

std::shared_ptr<Session> MpfServer::CreateSession(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_id_++;
  if (name.empty()) name = "session-" + std::to_string(id);
  // Not make_shared: the constructor is private to MpfServer.
  return std::shared_ptr<Session>(new Session(this, id, std::move(name)));
}

size_t MpfServer::SlotMemoryLimit() const {
  if (options_.global_memory_limit == 0) return 0;
  size_t slots = std::max<size_t>(1, options_.max_concurrent);
  return std::max<size_t>(1, options_.global_memory_limit / slots);
}

Status MpfServer::Admit(const Session& session) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (shutdown_) {
    ++stats_.rejected;
    return Status::Cancelled("server is shut down");
  }
  if (waiting_.size() >= options_.max_queued) {
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_.size()) + "/" +
        std::to_string(options_.max_queued) + " waiting)");
  }
  auto state = std::make_shared<WaitState>();
  state->session_id = session.id();
  state->seq = next_seq_++;
  state->session_name = session.name();
  waiting_.push_back(state);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, waiting_.size());
  AdmitWaitingLocked();
  cv_.wait(lock, [&] { return state->admitted || shutdown_; });
  if (!state->admitted) {
    // Shutdown won the race: drop our ticket.
    waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), state),
                   waiting_.end());
    ++stats_.rejected;
    return Status::Cancelled("server shut down while queued");
  }
  return Status::Ok();
}

void MpfServer::AdmitWaitingLocked() {
  while (!paused_ && !shutdown_ && in_flight_ < options_.max_concurrent &&
         !waiting_.empty()) {
    std::vector<Ticket> tickets;
    tickets.reserve(waiting_.size());
    for (const auto& w : waiting_) {
      tickets.push_back(Ticket{w->session_id, w->seq});
    }
    size_t pick = PickNextTicket(tickets, in_flight_per_session_);
    std::shared_ptr<WaitState> state = waiting_[pick];
    waiting_.erase(waiting_.begin() + pick);
    state->admitted = true;
    ++in_flight_;
    ++in_flight_per_session_[state->session_id];
    ++stats_.admitted;
    if (options_.record_admission_trace) {
      admission_trace_.push_back(state->session_name);
    }
  }
  cv_.notify_all();
}

void MpfServer::Release(const Session& session, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  auto it = in_flight_per_session_.find(session.id());
  if (it != in_flight_per_session_.end() && --it->second == 0) {
    in_flight_per_session_.erase(it);
  }
  if (ok) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  AdmitWaitingLocked();
}

void MpfServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MpfServer::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  AdmitWaitingLocked();
}

void MpfServer::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

ServerStats MpfServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats s = stats_;
  s.in_flight = in_flight_;
  s.queued = waiting_.size();
  return s;
}

std::vector<std::string> MpfServer::admission_trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_trace_;
}

}  // namespace mpfdb::server
