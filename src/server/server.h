#ifndef MPFDB_SERVER_SERVER_H_
#define MPFDB_SERVER_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/database.h"
#include "util/query_context.h"
#include "util/status.h"

namespace mpfdb::server {

struct ServerOptions {
  // In-flight query slots: at most this many queries execute at once;
  // further submissions wait in the admission queue.
  size_t max_concurrent = 4;
  // Waiting tickets beyond which submissions are rejected with
  // kResourceExhausted instead of queued.
  size_t max_queued = 256;
  // Global memory budget in bytes, statically partitioned across the
  // admission slots: each admitted query runs under a QueryContext whose
  // limit is tightened to global_memory_limit / max_concurrent (spill-based
  // degradation, not failure, once the engine hits it). 0 = unlimited.
  size_t global_memory_limit = 0;
  // Record the session name of every admission, in admission order
  // (admission_trace()). For tests and audits; off by default.
  bool record_admission_trace = false;
  // Deadline-aware load shedding: a submission whose QueryContext deadline
  // is already closer than the estimated queue wait (EMA of completed query
  // durations, scaled by queue depth over the slot count) is rejected at
  // enqueue with kResourceExhausted instead of queueing work that is doomed
  // to time out. Estimation needs at least one completed query; until then
  // nothing is shed.
  bool shed_doomed_queries = true;
  // Wall-time threshold for the slow-query log; completed queries (OK or
  // failed) at or above it are recorded. <= 0 disables the log.
  double slow_query_seconds = 0.0;
  // Bounded ring capacity of the slow-query log (oldest entries drop).
  size_t slow_query_log_capacity = 64;
};

struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;  // admitted queries that returned OK
  uint64_t failed = 0;     // admitted queries that returned an error
  uint64_t updates = 0;        // measure-update calls that committed OK
  uint64_t update_failures = 0;  // measure-update calls that errored
  uint64_t rejected = 0;   // refused before admission (queue full / shutdown)
  uint64_t shed = 0;       // rejected at enqueue: queue wait exceeds deadline
  uint64_t timed_out = 0;  // left the queue on deadline/cancel pre-admission
  uint64_t slow_queries = 0;  // recorded in the slow-query log
  size_t max_queue_depth = 0;
  size_t in_flight = 0;  // current
  size_t queued = 0;     // current
};

// One slow-query log record (ServerOptions::slow_query_seconds).
struct SlowQuery {
  std::string session;
  std::string view;
  std::string canonical_query;  // server::CanonicalQueryKey rendering
  double seconds = 0;
  size_t peak_bytes = 0;    // QueryContext high-water memory
  uint64_t spill_bytes = 0;  // bytes degraded to disk, if any
};

// One waiting admission request.
struct Ticket {
  uint64_t session_id = 0;
  uint64_t seq = 0;  // global arrival order, strictly increasing
};

// The admission policy, extracted pure so it can be unit-tested: among the
// waiting tickets, pick the one from the session with the fewest in-flight
// queries, breaking ties by arrival order. With a single session (or all
// sessions equally loaded) this is plain FIFO; under contention it prevents
// one chatty session from starving the others. Returns an index into
// `waiting`, or `waiting.size()` if empty.
size_t PickNextTicket(const std::vector<Ticket>& waiting,
                      const std::map<uint64_t, size_t>& in_flight_per_session);

class MpfServer;

// A client handle: identifies the submitter for admission fairness and
// carries per-session counters. Create via MpfServer::CreateSession; safe to
// use from multiple threads, though a session's queries then contend with
// each other for fairness credit like any other same-session queries.
class Session {
 public:
  // Admission-controlled query: blocks in the admission queue when the
  // server is saturated, then runs against the database's current snapshot.
  // A caller-provided `ctx` governs the execution (cancellation, deadline,
  // memory); its memory limit is tightened to the slot partition for the
  // duration of the query and restored afterwards.
  StatusOr<QueryResult> Query(const std::string& view_name,
                              const MpfQuerySpec& query,
                              const std::string& optimizer_spec =
                                  "cs+nonlinear",
                              QueryContext* ctx = nullptr);

  // Admission-controlled anytime approximate query (Database::QueryApprox):
  // same admission / slot-memory / slow-query treatment as Query. An
  // expiring `ctx` deadline degrades to best bounds so far (OK +
  // deadline_hit) per the QueryApprox contract.
  StatusOr<ApproxResult> QueryApprox(const std::string& view_name,
                                     const MpfQuerySpec& query,
                                     const ApproxOptions& approx = {},
                                     const std::string& optimizer_spec =
                                         "cs+nonlinear",
                                     QueryContext* ctx = nullptr);

  // Admission-controlled QueryCached (answers from the view's VE-cache).
  StatusOr<TablePtr> QueryCached(const std::string& view_name,
                                 const MpfQuerySpec& query,
                                 QueryContext* ctx = nullptr);

  // Measure updates. Writers do NOT take admission slots: they enter the
  // database's group-commit pipeline directly (concurrent callers coalesce
  // into one version bump), so an update stream cannot starve queued
  // readers of execution slots. Returns once this call's updates are
  // durable in the published state. A non-null `commit_epoch` receives the
  // exact epoch of the commit that applied the batch.
  Status Update(const std::string& table,
                const std::vector<VarValue>& row_vars, double new_measure,
                uint64_t* commit_epoch = nullptr);
  Status Update(const std::vector<MeasureUpdateSpec>& specs,
                uint64_t* commit_epoch = nullptr);

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t queries_run() const;

 private:
  friend class MpfServer;
  Session(MpfServer* server, uint64_t id, std::string name)
      : server_(server), id_(id), name_(std::move(name)) {}

  MpfServer* server_;
  uint64_t id_;
  std::string name_;
  mutable std::mutex mu_;
  uint64_t queries_run_ = 0;  // guarded by mu_
};

// The concurrent serving front end: sessions submit queries, an admission
// controller bounds how many run at once (FIFO with per-session fairness,
// see PickNextTicket), the global memory budget is partitioned across the
// admitted slots, and every query runs against a database snapshot — so any
// interleaving of queries and updates yields, per query, a result
// bit-identical to running that query alone at its snapshot epoch.
class MpfServer {
 public:
  explicit MpfServer(Database& db, ServerOptions options = {});
  ~MpfServer();  // implies Shutdown()

  MpfServer(const MpfServer&) = delete;
  MpfServer& operator=(const MpfServer&) = delete;

  // Creates a session handle. The default name is "session-<id>".
  std::shared_ptr<Session> CreateSession(std::string name = "");

  // Stops admitting: submissions still queue (up to max_queued) but nothing
  // is admitted until Resume. For tests that need a deterministic queue.
  void Pause();
  void Resume();

  // Rejects all waiting and future submissions with kCancelled. In-flight
  // queries finish normally. Idempotent.
  void Shutdown();

  ServerStats stats() const;
  // Session names in admission order; empty unless
  // ServerOptions::record_admission_trace.
  std::vector<std::string> admission_trace() const;

  // The slow-query log, oldest first (bounded by
  // ServerOptions::slow_query_log_capacity).
  std::vector<SlowQuery> slow_queries() const;

  // How long a client should wait before retrying after a rejection:
  // the estimated time for the current queue to drain through the slots,
  // floored at 1ms. The wire layer stamps this into retryable error frames.
  uint64_t RetryAfterHintMs() const;

  // Plain-text ops dump: every ServerStats counter, the shared plan-cache
  // counters, and the slow-query log, one `name value` line each (log lines
  // are `slow_query` followed by key=value fields). Served by the net
  // layer's metrics frame and handy in tests/ops scripts.
  std::string MetricsText() const;

  Database& database() { return db_; }
  const ServerOptions& options() const { return options_; }

 private:
  friend class Session;

  struct WaitState {
    uint64_t session_id = 0;
    uint64_t seq = 0;
    std::string session_name;
    bool admitted = false;  // guarded by MpfServer::mu_
  };

  // Blocks until a slot is granted (OK), the server shuts down (kCancelled),
  // the queue is full or the request is shed (kResourceExhausted, immediate),
  // or — while queued — `ctx`'s deadline passes (kDeadlineExceeded) or its
  // cancel token fires (kCancelled). A dead ticket is removed from the queue
  // so it can never be picked.
  Status Admit(const Session& session, QueryContext* ctx);
  void Release(const Session& session, bool ok, double seconds);
  void RecordUpdate(bool ok);
  // Records a completed query in the slow-query log when it crossed the
  // configured threshold.
  void MaybeRecordSlowQuery(const Session& session,
                            const std::string& view_name,
                            const MpfQuerySpec& query, double seconds,
                            const QueryContext::Stats& exec_stats);
  // Admits as many waiting tickets as slots allow. Caller holds mu_.
  void AdmitWaitingLocked();
  // Estimated wait for a ticket entering the queue at `queue_position`
  // (EMA-based; zero until a query has completed). Caller holds mu_.
  std::chrono::nanoseconds EstimatedQueueWaitLocked(
      size_t queue_position) const;
  // The per-slot share of the global memory budget (0 = unlimited).
  size_t SlotMemoryLimit() const;

  Database& db_;
  const ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool paused_ = false;
  bool shutdown_ = false;
  uint64_t next_session_id_ = 1;
  uint64_t next_seq_ = 1;
  std::vector<std::shared_ptr<WaitState>> waiting_;     // arrival order
  std::map<uint64_t, size_t> in_flight_per_session_;    // session -> count
  size_t in_flight_ = 0;
  ServerStats stats_;
  std::vector<std::string> admission_trace_;
  // Exponential moving average of completed-query wall time, the load
  // shedder's service-time estimate. 0 until the first completion.
  double ema_query_seconds_ = 0;       // guarded by mu_
  std::deque<SlowQuery> slow_log_;     // guarded by mu_
};

}  // namespace mpfdb::server

#endif  // MPFDB_SERVER_SERVER_H_
