#ifndef MPFDB_SERVER_PLAN_CACHE_H_
#define MPFDB_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "exec/executor.h"
#include "exec/hash_table.h"
#include "plan/physical.h"
#include "plan/plan.h"

namespace mpfdb::server {

// One memoized plan: the logical tree (kept alive because the physical
// nodes point into it) plus the chosen physical tree. Immutable once
// published — concurrent hits share the trees read-only and each execution
// builds its own operator state.
struct CachedPlan {
  PlanPtr logical;
  std::shared_ptr<const PhysicalPlanNode> physical;
};

// Canonical cache-key fragment for a query spec: group variables in query
// order (order is semantically irrelevant to the result rows, but keeping it
// preserves the plan's output schema exactly), selections sorted by
// (var, value) so syntactic permutations of the WHERE clause share one
// entry, and the HAVING clause rendered verbatim.
std::string CanonicalQueryKey(const MpfQuerySpec& spec);

// Fingerprint of everything besides view + query + optimizer that changes
// which physical plan gets built: the ExecOptions algorithm/engine knobs and
// the planner-visible memory budget (a finite budget restricts auto mode to
// spill-capable hash operators, so plans are not interchangeable across
// budgets).
std::string ExecFingerprint(const exec::ExecOptions& options,
                            size_t planner_memory_limit);

// Shared physical-plan cache for concurrent serving. Keyed on
// (view, canonical query, optimizer spec, exec fingerprint) with the
// database stats epoch stored per entry: a lookup at a newer epoch treats
// the entry as invalid (counted, evicted), and OnEpochBump sweeps stale
// entries eagerly so counters reflect invalidation at update time. LRU
// bounded by `capacity`. All methods are thread-safe.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  // The entry under `key` if present and built at `epoch`, else nullptr.
  // Counts a hit or a miss; a present-but-stale entry additionally counts an
  // invalidation and is evicted.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t epoch);

  // Publishes a plan built at `epoch`. Replaces any existing entry under the
  // key; evicts the least-recently-used entry beyond capacity.
  void Insert(const std::string& key, uint64_t epoch,
              std::shared_ptr<const CachedPlan> plan);

  // Eagerly drops every entry older than `epoch` (a catalog/table/view
  // mutation committed). Each dropped entry counts as an invalidation.
  void OnEpochBump(uint64_t epoch);

  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t invalidations = 0;  // entries dropped by epoch bumps/staleness
    uint64_t evictions = 0;      // entries dropped by the LRU capacity bound
    size_t entries = 0;
    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  Stats stats() const;

 private:
  struct Entry {
    uint64_t epoch = 0;
    std::shared_ptr<const CachedPlan> plan;
    std::list<std::string>::iterator lru_pos;
  };

  // Callers hold mu_. `entry` must be the live slot for `key`; the slot
  // pointer is dead after this returns (the table may compact its arena).
  void EraseLocked(const std::string& key, Entry* entry);

  const size_t capacity_;
  mutable std::mutex mu_;
  // Swiss bytes table keyed on the composite cache-key string: the arena
  // interns keys contiguously and Erase-triggered compaction bounds churn
  // from epoch sweeps, so lookups stay cache-friendly at any fill.
  exec::SwissBytesTable<Entry> entries_;  // guarded by mu_
  std::list<std::string> lru_;            // guarded by mu_; front = most recent
  Stats stats_;                           // guarded by mu_ (entries_ filled on read)
};

}  // namespace mpfdb::server

#endif  // MPFDB_SERVER_PLAN_CACHE_H_
