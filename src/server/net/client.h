#ifndef MPFDB_SERVER_NET_CLIENT_H_
#define MPFDB_SERVER_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "plan/plan.h"
#include "server/net/wire.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::server::net {

// A minimal blocking client for the mpfdb wire protocol (wire.h). One
// connection, one thread: Query() writes a frame and reads until the
// matching response arrives. For pipelining (many requests in flight on one
// connection) use the raw SendQuery/ReadFrame pair and match responses by
// request id yourself.
//
// The client deliberately does NOT consult util::FaultInjector — in chaos
// tests both ends share a process, and the point is to fault the server's
// socket handling while the client observes the consequences.
class NetClient {
 public:
  struct Result {
    TablePtr table;
    uint64_t snapshot_epoch = 0;
    bool plan_cache_hit = false;
    bool epoch_inexact = false;
    // Approximate-query extras (QueryApprox): when `approximate` is set,
    // `table` is the point estimate and lower/upper carry the
    // semiring-guaranteed bounds. `deadline_degraded` means the deadline
    // expired mid-sampling and this is the best answer published so far.
    bool approximate = false;
    bool deadline_degraded = false;
    uint64_t samples = 0;
    double bound_gap = 0;
    TablePtr lower;
    TablePtr upper;
  };

  // Detail of the last error frame received (valid after a failed Query /
  // Metrics whose status came from an error frame rather than the socket).
  struct ErrorInfo {
    bool from_frame = false;
    bool retryable = false;
    uint32_t retry_after_ms = 0;
  };

  static StatusOr<std::unique_ptr<NetClient>> Connect(uint16_t port);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Bounds every blocking read on the socket; 0 (default) blocks forever.
  // A timeout surfaces as kDeadlineExceeded from ReadFrame.
  Status set_recv_timeout_ms(uint32_t ms);

  // Shrinks SO_RCVBUF (tests: simulate a slow reader with a tiny window).
  Status set_recv_buffer_bytes(int bytes);

  // One full request/response cycle. `deadline_ms` is shipped to the server
  // (0 = none); `optimizer` empty = server default; `cached` answers from
  // the view's VE-cache.
  StatusOr<Result> Query(const std::string& view, const MpfQuerySpec& query,
                         const std::string& optimizer = "",
                         uint32_t deadline_ms = 0, bool cached = false);

  // Anytime approximate query: bounds + estimate under an eps target. A
  // server-side deadline expiring mid-sampling still returns a Result
  // (deadline_degraded set) rather than an error. `seed` 0 defers to the
  // server's configured sampling seed.
  StatusOr<Result> QueryApprox(const std::string& view,
                               const MpfQuerySpec& query, double eps = 0.05,
                               uint32_t max_rounds = 64, uint64_t seed = 0,
                               const std::string& optimizer = "",
                               uint32_t deadline_ms = 0);

  // Commits a measure-update batch (one version bump server-side); returns
  // the database epoch at/after which the updates are visible.
  StatusOr<uint64_t> Update(const std::vector<UpdateOp>& ops);
  StatusOr<uint64_t> Update(const std::string& table,
                            const std::vector<VarValue>& row_vars,
                            double new_measure);

  StatusOr<std::string> Metrics();

  const ErrorInfo& last_error() const { return last_error_; }

  // --- raw frame access (pipelining / protocol tests) ---------------------
  Status SendQuery(const QueryRequestFrame& frame);
  Status SendMetricsRequest(uint64_t request_id);
  Status SendUpdate(const UpdateRequestFrame& frame);
  // Writes arbitrary bytes to the socket (malformed-input tests).
  Status SendRaw(const uint8_t* data, size_t n);
  // Blocks until one complete frame arrives. Server closing the connection
  // surfaces as kUnavailable-style kCancelled("connection closed").
  StatusOr<Frame> ReadFrame();

  uint64_t NextRequestId() { return next_request_id_++; }

 private:
  explicit NetClient(int fd) : fd_(fd) {}

  // Reads until `request_id`'s result/error frame; turns an error frame
  // into a Status and records last_error_.
  StatusOr<Frame> ReadResponseFor(uint64_t request_id);

  int fd_ = -1;
  FrameReader reader_;
  uint64_t next_request_id_ = 1;
  ErrorInfo last_error_;
};

}  // namespace mpfdb::server::net

#endif  // MPFDB_SERVER_NET_CLIENT_H_
