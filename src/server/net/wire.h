#ifndef MPFDB_SERVER_NET_WIRE_H_
#define MPFDB_SERVER_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/table.h"
#include "util/status.h"

namespace mpfdb::server::net {

// The mpfdb wire protocol: length-prefixed binary frames over a byte
// stream.
//
//   offset 0  u32  payload length (little-endian, excludes the header)
//   offset 4  u8   frame type
//   offset 5  ...  payload
//
// All integers are little-endian fixed width; strings are a u32 length
// followed by raw bytes; doubles are IEEE-754 bit patterns. Every frame
// carries the client-chosen request id it answers, so requests may be
// pipelined on one connection and responses matched by id (responses to one
// connection are delivered in completion order, not submission order).
//
// The protocol is deliberately boring: no compression, no negotiation, no
// partial results. What it does take seriously is overload: every error
// frame says whether the request is safe to retry and how long to back off
// (`retry_after_ms`), so a polite client under shedding becomes a closed
// control loop instead of a thundering herd.

enum class FrameType : uint8_t {
  kQuery = 1,         // client -> server: run an MPF query
  kResult = 2,        // server -> client: the result table
  kError = 3,         // server -> client: definite failure for one request
  kMetrics = 4,       // client -> server: request the ops metrics dump
  kMetricsReply = 5,  // server -> client: plain-text metrics
  kUpdate = 6,        // client -> server: commit a measure-update batch
  kUpdateAck = 7,     // server -> client: batch committed at `epoch`
};

// Frames above this payload size are rejected as malformed (protects the
// server from a hostile or corrupted length prefix).
constexpr uint32_t kMaxFramePayload = 64u << 20;
constexpr size_t kFrameHeaderBytes = 5;

struct QueryRequestFrame {
  uint64_t request_id = 0;
  bool cached = false;       // answer from the view's VE-cache
  // Anytime approximate query (Session::QueryApprox). When set, the frame
  // carries eps/max_rounds/seed after the having clause, and the result
  // frame answers with bounds + estimate instead of the exact table. A
  // deadline that expires mid-sampling degrades the answer (result flag
  // deadline_degraded) instead of producing an error frame.
  bool approx = false;
  uint32_t deadline_ms = 0;  // relative deadline; 0 = none
  std::string view;
  std::string optimizer;  // empty = server default ("cs+nonlinear")
  MpfQuerySpec query;
  // Approx knobs; on the wire only when `approx` is set.
  double eps = 0.05;
  uint32_t max_rounds = 64;
  uint64_t seed = 0;  // 0 = server-configured sampling seed
};

struct ResultFrame {
  uint64_t request_id = 0;
  uint64_t snapshot_epoch = 0;
  bool plan_cache_hit = false;
  // True when snapshot_epoch is approximate: a cached-path answer raced a
  // concurrent update, so no single epoch is guaranteed to reproduce this
  // result exactly. Differential replay harnesses skip such records.
  bool epoch_inexact = false;
  // The answer is approximate (an approx query on a cyclic view): `table`
  // is the point estimate and `lower`/`upper`/`samples`/`bound_gap` are
  // populated. An approx query on an acyclic view answers exactly, with
  // this flag clear.
  bool approximate = false;
  // The request deadline expired mid-sampling; this result is the best
  // published so far rather than a converged one.
  bool deadline_degraded = false;
  TablePtr table;
  // Approximate-result extras; on the wire only when `approximate` is set.
  uint64_t samples = 0;   // post-burn-in Gibbs samples recorded
  double bound_gap = 0;   // max per-group bound gap
  TablePtr lower;         // semiring-guaranteed bounds per group
  TablePtr upper;
};

struct ErrorFrame {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kInternal;
  // Whether the request was definitely not executed and can be resubmitted
  // verbatim (queue full, shed, draining). False for semantic errors.
  bool retryable = false;
  // Suggested client backoff before the retry; 0 when not retryable.
  uint32_t retry_after_ms = 0;
  std::string message;
};

struct MetricsRequestFrame {
  uint64_t request_id = 0;
};

// One row's measure update inside an update batch.
struct UpdateOp {
  std::string table;
  std::vector<VarValue> row_vars;  // full assignment, schema order
  double new_measure = 0;
};

struct UpdateRequestFrame {
  uint64_t request_id = 0;
  std::vector<UpdateOp> ops;  // committed atomically under one version bump
};

struct UpdateAckFrame {
  uint64_t request_id = 0;
  // Exact epoch of the commit that applied this batch: a snapshot at or
  // past it sees every update (a batch of all no-ops acks the epoch it was
  // validated against).
  uint64_t epoch = 0;
};

struct MetricsReplyFrame {
  uint64_t request_id = 0;
  std::string text;
};

// One decoded frame; `type` says which member is meaningful.
struct Frame {
  FrameType type = FrameType::kQuery;
  QueryRequestFrame query;
  ResultFrame result;
  ErrorFrame error;
  MetricsRequestFrame metrics;
  MetricsReplyFrame metrics_reply;
  UpdateRequestFrame update;
  UpdateAckFrame update_ack;
};

// Encoders append one complete frame (header + payload) to `out`.
void EncodeQuery(const QueryRequestFrame& frame, std::vector<uint8_t>* out);
void EncodeResult(const ResultFrame& frame, std::vector<uint8_t>* out);
void EncodeError(const ErrorFrame& frame, std::vector<uint8_t>* out);
void EncodeMetricsRequest(const MetricsRequestFrame& frame,
                          std::vector<uint8_t>* out);
void EncodeMetricsReply(const MetricsReplyFrame& frame,
                        std::vector<uint8_t>* out);
void EncodeUpdate(const UpdateRequestFrame& frame, std::vector<uint8_t>* out);
void EncodeUpdateAck(const UpdateAckFrame& frame, std::vector<uint8_t>* out);

// Incremental frame decoder for one connection: Append() whatever bytes the
// socket produced, then drain complete frames with Next(). Malformed input
// — unknown type, payload length above kMaxFramePayload, a payload that
// decodes short or leaves trailing garbage — returns kInvalidArgument; the
// connection should then be closed (framing is lost for good).
class FrameReader {
 public:
  void Append(const uint8_t* data, size_t n);

  // True: `*out` holds one decoded frame. False: need more bytes.
  StatusOr<bool> Next(Frame* out);

  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // prefix of buf_ already handed out
};

}  // namespace mpfdb::server::net

#endif  // MPFDB_SERVER_NET_WIRE_H_
