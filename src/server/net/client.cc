#include "server/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace mpfdb::server::net {

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    return Status::Internal(std::string("connect(): ") + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<NetClient>(new NetClient(fd));
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status NetClient::set_recv_timeout_ms(uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::Internal(std::string("setsockopt(SO_RCVTIMEO): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status NetClient::set_recv_buffer_bytes(int bytes) {
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) < 0) {
    return Status::Internal(std::string("setsockopt(SO_RCVBUF): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status NetClient::SendRaw(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Cancelled(std::string("send(): ") +
                               std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status NetClient::SendQuery(const QueryRequestFrame& frame) {
  std::vector<uint8_t> bytes;
  EncodeQuery(frame, &bytes);
  return SendRaw(bytes.data(), bytes.size());
}

Status NetClient::SendMetricsRequest(uint64_t request_id) {
  std::vector<uint8_t> bytes;
  EncodeMetricsRequest(MetricsRequestFrame{request_id}, &bytes);
  return SendRaw(bytes.data(), bytes.size());
}

Status NetClient::SendUpdate(const UpdateRequestFrame& frame) {
  std::vector<uint8_t> bytes;
  EncodeUpdate(frame, &bytes);
  return SendRaw(bytes.data(), bytes.size());
}

StatusOr<Frame> NetClient::ReadFrame() {
  for (;;) {
    Frame frame;
    MPFDB_ASSIGN_OR_RETURN(bool got, reader_.Next(&frame));
    if (got) return frame;
    uint8_t buf[16384];
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("client receive timeout");
      }
      return Status::Cancelled(std::string("read(): ") +
                               std::strerror(errno));
    }
    if (r == 0) {
      return Status::Cancelled("connection closed by server");
    }
    reader_.Append(buf, static_cast<size_t>(r));
  }
}

StatusOr<Frame> NetClient::ReadResponseFor(uint64_t request_id) {
  for (;;) {
    MPFDB_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    uint64_t id = 0;
    switch (frame.type) {
      case FrameType::kResult:
        id = frame.result.request_id;
        break;
      case FrameType::kError:
        id = frame.error.request_id;
        break;
      case FrameType::kMetricsReply:
        id = frame.metrics_reply.request_id;
        break;
      case FrameType::kUpdateAck:
        id = frame.update_ack.request_id;
        break;
      default:
        return Status::Internal("server sent a request frame");
    }
    // id 0 marks connection-scoped errors (protocol violation, drain notice
    // for a request the server could not parse): deliver to whoever waits.
    if (id == request_id || id == 0) return frame;
    // A response to an older pipelined request we no longer care about.
  }
}

StatusOr<NetClient::Result> NetClient::Query(const std::string& view,
                                             const MpfQuerySpec& query,
                                             const std::string& optimizer,
                                             uint32_t deadline_ms,
                                             bool cached) {
  last_error_ = ErrorInfo{};
  QueryRequestFrame req;
  req.request_id = NextRequestId();
  req.cached = cached;
  req.deadline_ms = deadline_ms;
  req.view = view;
  req.optimizer = optimizer;
  req.query = query;
  MPFDB_RETURN_IF_ERROR(SendQuery(req));
  MPFDB_ASSIGN_OR_RETURN(Frame frame, ReadResponseFor(req.request_id));
  if (frame.type == FrameType::kError) {
    last_error_.from_frame = true;
    last_error_.retryable = frame.error.retryable;
    last_error_.retry_after_ms = frame.error.retry_after_ms;
    return Status(frame.error.code, frame.error.message);
  }
  if (frame.type != FrameType::kResult) {
    return Status::Internal("unexpected response frame type");
  }
  Result result;
  result.table = std::move(frame.result.table);
  result.snapshot_epoch = frame.result.snapshot_epoch;
  result.plan_cache_hit = frame.result.plan_cache_hit;
  result.epoch_inexact = frame.result.epoch_inexact;
  result.approximate = frame.result.approximate;
  result.deadline_degraded = frame.result.deadline_degraded;
  result.samples = frame.result.samples;
  result.bound_gap = frame.result.bound_gap;
  result.lower = std::move(frame.result.lower);
  result.upper = std::move(frame.result.upper);
  return result;
}

StatusOr<NetClient::Result> NetClient::QueryApprox(
    const std::string& view, const MpfQuerySpec& query, double eps,
    uint32_t max_rounds, uint64_t seed, const std::string& optimizer,
    uint32_t deadline_ms) {
  last_error_ = ErrorInfo{};
  QueryRequestFrame req;
  req.request_id = NextRequestId();
  req.approx = true;
  req.eps = eps;
  req.max_rounds = max_rounds;
  req.seed = seed;
  req.deadline_ms = deadline_ms;
  req.view = view;
  req.optimizer = optimizer;
  req.query = query;
  MPFDB_RETURN_IF_ERROR(SendQuery(req));
  MPFDB_ASSIGN_OR_RETURN(Frame frame, ReadResponseFor(req.request_id));
  if (frame.type == FrameType::kError) {
    last_error_.from_frame = true;
    last_error_.retryable = frame.error.retryable;
    last_error_.retry_after_ms = frame.error.retry_after_ms;
    return Status(frame.error.code, frame.error.message);
  }
  if (frame.type != FrameType::kResult) {
    return Status::Internal("unexpected response frame type");
  }
  Result result;
  result.table = std::move(frame.result.table);
  result.snapshot_epoch = frame.result.snapshot_epoch;
  result.plan_cache_hit = frame.result.plan_cache_hit;
  result.epoch_inexact = frame.result.epoch_inexact;
  result.approximate = frame.result.approximate;
  result.deadline_degraded = frame.result.deadline_degraded;
  result.samples = frame.result.samples;
  result.bound_gap = frame.result.bound_gap;
  result.lower = std::move(frame.result.lower);
  result.upper = std::move(frame.result.upper);
  return result;
}

StatusOr<uint64_t> NetClient::Update(const std::vector<UpdateOp>& ops) {
  last_error_ = ErrorInfo{};
  UpdateRequestFrame req;
  req.request_id = NextRequestId();
  req.ops = ops;
  MPFDB_RETURN_IF_ERROR(SendUpdate(req));
  MPFDB_ASSIGN_OR_RETURN(Frame frame, ReadResponseFor(req.request_id));
  if (frame.type == FrameType::kError) {
    last_error_.from_frame = true;
    last_error_.retryable = frame.error.retryable;
    last_error_.retry_after_ms = frame.error.retry_after_ms;
    return Status(frame.error.code, frame.error.message);
  }
  if (frame.type != FrameType::kUpdateAck) {
    return Status::Internal("unexpected response frame type");
  }
  return frame.update_ack.epoch;
}

StatusOr<uint64_t> NetClient::Update(const std::string& table,
                                     const std::vector<VarValue>& row_vars,
                                     double new_measure) {
  return Update(std::vector<UpdateOp>{{table, row_vars, new_measure}});
}

StatusOr<std::string> NetClient::Metrics() {
  last_error_ = ErrorInfo{};
  uint64_t id = NextRequestId();
  MPFDB_RETURN_IF_ERROR(SendMetricsRequest(id));
  MPFDB_ASSIGN_OR_RETURN(Frame frame, ReadResponseFor(id));
  if (frame.type == FrameType::kError) {
    last_error_.from_frame = true;
    last_error_.retryable = frame.error.retryable;
    last_error_.retry_after_ms = frame.error.retry_after_ms;
    return Status(frame.error.code, frame.error.message);
  }
  if (frame.type != FrameType::kMetricsReply) {
    return Status::Internal("unexpected response frame type");
  }
  return std::move(frame.metrics_reply.text);
}

}  // namespace mpfdb::server::net
